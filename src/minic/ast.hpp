// AST for mini-C, the C subset the embedded software is written in.
//
// The subset covers what the paper's case study needs — state-machine style
// automotive code: 32-bit integer/bool/unsigned scalars and arrays, enums for
// state and return codes, functions, full structured control flow, direct
// memory access `*(addr)` for hardware registers (the accesses the C2SystemC
// translator redirects to the virtual memory model), the `__in(name)`
// intrinsic for external stimulus, and `assert(e)` for the formal baselines.
//
// One front end, three consumers:
//   - cpu/codegen     compiles the AST to microprocessor bytecode (approach 1)
//   - esw/interpreter executes the AST statement-by-statement inside a
//                     SystemC process (approach 2, the derived ESW_SC model)
//   - formal/*        unwinds the AST for BMC / predicate abstraction
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace esv::minic {

struct Function;

enum class UnaryOp { kNot, kNeg, kBitNot };

enum class BinaryOp {
  kMul, kDiv, kMod, kAdd, kSub,
  kShl, kShr,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kBitAnd, kBitXor, kBitOr,
  kLogicalAnd, kLogicalOr,
};

/// How an identifier reference was resolved by sema.
enum class RefKind {
  kUnresolved,
  kGlobal,  // address holds the byte address in the data segment
  kLocal,   // slot holds the frame slot (params first, then locals)
  kConst,   // value holds the enum constant
};

struct Expr {
  enum class Kind {
    kIntLit,   // value
    kBoolLit,  // value (0/1)
    kVarRef,   // name (+ resolution)
    kIndex,    // children[0] = index expression; name = array (+ resolution)
    kCall,     // name, children = arguments (+ callee)
    kUnary,    // unary_op, children[0]
    kBinary,   // binary_op, children[0], children[1]
    kTernary,  // children[0] ? children[1] : children[2]
    kMemRead,  // *(children[0]) — direct memory access
    kInput,    // __in(name) — external stimulus
  };

  Kind kind;
  int line = 0;

  std::int64_t value = 0;
  std::string name;
  UnaryOp unary_op = UnaryOp::kNot;
  BinaryOp binary_op = BinaryOp::kAdd;
  std::vector<std::unique_ptr<Expr>> children;

  // Filled in by sema:
  RefKind ref = RefKind::kUnresolved;
  std::uint32_t address = 0;       // kGlobal / kIndex on a global array
  int slot = -1;                   // kLocal
  const Function* callee = nullptr;  // kCall
  int input_id = -1;               // kInput: dense id for the CPU backend
};

struct Stmt {
  enum class Kind {
    kExpr,       // expr
    kAssign,     // target = expr (target: kVarRef, kIndex, or kMemRead)
    kLocalDecl,  // name, optional init expr (+ slot)
    kIf,         // cond, body, else_body
    kWhile,      // cond, body
    kDoWhile,    // body, cond
    kFor,        // init, cond, step, body
    kSwitch,     // cond, cases
    kReturn,     // optional expr
    kBreak,
    kContinue,
    kAssert,     // expr
    kAssume,     // expr (verification assumption)
    kBlock,      // body
  };

  struct Case {
    std::int64_t value = 0;
    bool is_default = false;
    std::vector<std::unique_ptr<Stmt>> body;
    int line = 0;
  };

  Kind kind;
  int line = 0;

  std::unique_ptr<Expr> expr;    // condition / value
  std::unique_ptr<Expr> target;  // kAssign lvalue
  std::vector<std::unique_ptr<Stmt>> body;
  std::vector<std::unique_ptr<Stmt>> else_body;
  std::unique_ptr<Stmt> init;  // kFor
  std::unique_ptr<Stmt> step;  // kFor
  std::vector<Case> cases;     // kSwitch

  std::string name;  // kLocalDecl
  int slot = -1;     // kLocalDecl
};

struct GlobalVar {
  std::string name;
  std::uint32_t words = 1;           // 1 for scalars, N for arrays
  std::uint32_t address = 0;         // byte address (assigned by sema)
  std::vector<std::int32_t> init;    // initial values (zero-filled)
  bool is_array = false;
  int line = 0;
};

struct Function {
  std::string name;
  std::vector<std::string> params;
  std::vector<std::unique_ptr<Stmt>> body;
  bool returns_value = false;  // declared non-void
  int max_slots = 0;           // frame size: params + locals (sema)
  int index = -1;              // dense function id; fname value is index + 1
  int line = 0;
};

struct Program {
  std::vector<GlobalVar> globals;
  std::vector<std::unique_ptr<Function>> functions;
  std::vector<std::string> input_names;  // dense __in() ids
  /// Enum constants in declaration order (name, value).
  std::vector<std::pair<std::string, std::int64_t>> enum_constants;

  /// Address of the implicit `fname` global the toolchain maintains: every
  /// function body begins by storing its function id there (paper step (c):
  /// "for all functions, add the assignment fname=FUNCTION_NAME").
  std::uint32_t fname_address = 0;

  /// First byte address of the data segment (globals).
  static constexpr std::uint32_t kGlobalsBase = 0x1000;

  const Function* find_function(const std::string& name) const {
    for (const auto& f : functions) {
      if (f->name == name) return f.get();
    }
    return nullptr;
  }

  const GlobalVar* find_global(const std::string& name) const {
    for (const auto& g : globals) {
      if (g.name == name) return &g;
    }
    return nullptr;
  }

  /// fname value for a function ("Read" -> id). 0 means "no function yet".
  std::uint32_t fname_id(const std::string& function_name) const {
    const Function* f = find_function(function_name);
    return f == nullptr ? 0 : static_cast<std::uint32_t>(f->index + 1);
  }

  /// Total data-segment size in bytes (for memory sizing).
  std::uint32_t data_segment_end() const {
    std::uint32_t end = kGlobalsBase;
    for (const auto& g : globals) {
      end = std::max(end, g.address + g.words * 4);
    }
    return end;
  }
};

}  // namespace esv::minic

// Lexer for mini-C.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace esv::minic {

enum class Tok {
  kEnd,
  kIdent,
  kNumber,
  // keywords
  kInt, kUnsigned, kBool, kVoid, kEnum,
  kIf, kElse, kWhile, kDo, kFor, kSwitch, kCase, kDefault,
  kBreak, kContinue, kReturn, kTrue, kFalse, kAssert, kAssume, kInput,
  // punctuation
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kSemi, kComma, kColon, kQuestion,
  kAssign,   // =
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAmp, kPipe, kCaret, kTilde, kNot,
  kAmpAmp, kPipePipe,
  kShl, kShr,
  kLt, kLe, kGt, kGe, kEqEq, kNe,
  kPlusPlus, kMinusMinus,
  kPlusAssign, kMinusAssign,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;        // identifier text
  std::int64_t number = 0; // kNumber
  int line = 1;
  int column = 1;
};

/// Error with source location ("line 12: unexpected character").
class LexError : public std::runtime_error {
 public:
  LexError(const std::string& message, int line)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Tokenizes the whole source. Supports // and /* */ comments, decimal and
/// hexadecimal (0x...) literals.
std::vector<Token> tokenize(std::string_view source);

}  // namespace esv::minic

// Semantic analysis for mini-C.
//
// Resolves every identifier (global address / frame slot / enum constant /
// callee), lays out the data segment, allocates frame slots, assigns dense
// ids to __in() inputs, and injects the implicit `fname` global used for
// function-sequence properties (the paper's "fname = FUNCTION_NAME"
// instrumentation; both backends store the function id into it on entry).
//
// Checks performed (each failure throws SemaError with a line number):
//   - duplicate / undefined globals, locals, functions, parameters
//   - calls: unknown callee, wrong arity, void function used as a value
//   - assignment to enum constants or whole arrays
//   - indexing a scalar / using an array as a scalar
//   - break/continue outside a loop or switch
//   - a `main` function must exist and take no parameters
#pragma once

#include <stdexcept>
#include <string>

#include "minic/ast.hpp"

namespace esv::minic {

class SemaError : public std::runtime_error {
 public:
  SemaError(const std::string& message, int line)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Resolves `program` in place. Must be called exactly once, after
/// parse_program and before any backend consumes the AST.
void analyze(Program& program);

/// parse + analyze in one call.
Program compile(std::string_view source);

}  // namespace esv::minic

#include "minic/parser.hpp"

#include <utility>

#include "minic/lexer.hpp"

namespace esv::minic {

namespace {

std::unique_ptr<Expr> make_expr(Expr::Kind kind, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->line = line;
  return e;
}

std::unique_ptr<Stmt> make_stmt(Stmt::Kind kind, int line) {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  s->line = line;
  return s;
}

class Parser {
 public:
  explicit Parser(std::string_view source) : tokens_(tokenize(source)) {}

  Program parse() {
    Program program;
    while (!at(Tok::kEnd)) {
      parse_top_level(program);
    }
    return program;
  }

 private:
  // --- token helpers ---------------------------------------------------------
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool at(Tok kind) const { return peek().kind == kind; }
  Token take() { return tokens_[pos_++]; }
  bool accept(Tok kind) {
    if (!at(kind)) return false;
    ++pos_;
    return true;
  }
  Token expect(Tok kind, const std::string& what) {
    if (!at(kind)) fail("expected " + what);
    return take();
  }
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message, peek().line);
  }
  int line() const { return peek().line; }

  bool at_type() const {
    return at(Tok::kInt) || at(Tok::kUnsigned) || at(Tok::kBool) ||
           at(Tok::kVoid);
  }

  /// Consumes a type keyword; returns true if it declares a value (non-void).
  bool take_type() {
    if (accept(Tok::kVoid)) return false;
    if (accept(Tok::kInt) || accept(Tok::kUnsigned) || accept(Tok::kBool)) {
      return true;
    }
    fail("expected a type");
  }

  // --- top level --------------------------------------------------------------
  void parse_top_level(Program& program) {
    if (at(Tok::kEnum)) {
      parse_enum(program);
      return;
    }
    if (!at_type()) fail("expected a declaration");
    const bool has_value = take_type();
    const Token name = expect(Tok::kIdent, "identifier");
    if (at(Tok::kLParen)) {
      parse_function(program, name, has_value);
    } else {
      parse_global(program, name);
    }
  }

  void parse_enum(Program& program) {
    expect(Tok::kEnum, "'enum'");
    if (at(Tok::kIdent)) take();  // optional tag, ignored
    expect(Tok::kLBrace, "'{'");
    std::int64_t next_value = 0;
    while (!at(Tok::kRBrace)) {
      const Token name = expect(Tok::kIdent, "enumerator name");
      if (accept(Tok::kAssign)) {
        next_value = parse_const_value();
      }
      enum_constants_.emplace_back(name.text, next_value);
      ++next_value;
      if (!accept(Tok::kComma)) break;
    }
    expect(Tok::kRBrace, "'}'");
    expect(Tok::kSemi, "';'");
    // Enum constants are recorded as zero-word pseudo-globals? No: they are
    // resolved by sema from this table, carried via the program's functions.
    // We stash them in the Program as synthetic const globals is wrong; sema
    // reads them from the parser through parse_program's return channel.
    (void)program;
  }

  /// Constant expression in enum initializers / global initializers:
  /// number, optionally negated, or a previously defined enum constant.
  std::int64_t parse_const_value() {
    bool negate = false;
    while (accept(Tok::kMinus)) negate = !negate;
    if (at(Tok::kNumber)) {
      const std::int64_t v = take().number;
      return negate ? -v : v;
    }
    if (at(Tok::kIdent)) {
      const Token t = take();
      for (const auto& [name, value] : enum_constants_) {
        if (name == t.text) return negate ? -value : value;
      }
      throw ParseError("unknown constant '" + t.text + "'", t.line);
    }
    fail("expected a constant");
  }

  void parse_global(Program& program, const Token& name) {
    GlobalVar var;
    var.name = name.text;
    var.line = name.line;
    if (accept(Tok::kLBracket)) {
      const Token size = expect(Tok::kNumber, "array size");
      if (size.number <= 0) {
        throw ParseError("array size must be positive", size.line);
      }
      var.words = static_cast<std::uint32_t>(size.number);
      var.is_array = true;
      expect(Tok::kRBracket, "']'");
    }
    if (accept(Tok::kAssign)) {
      if (accept(Tok::kLBrace)) {
        if (!var.is_array) {
          throw ParseError("brace initializer on a scalar", name.line);
        }
        while (!at(Tok::kRBrace)) {
          var.init.push_back(static_cast<std::int32_t>(parse_const_value()));
          if (!accept(Tok::kComma)) break;
        }
        expect(Tok::kRBrace, "'}'");
        if (var.init.size() > var.words) {
          throw ParseError("too many initializers", name.line);
        }
      } else {
        var.init.push_back(static_cast<std::int32_t>(parse_const_value()));
      }
    }
    expect(Tok::kSemi, "';'");
    program.globals.push_back(std::move(var));
  }

  void parse_function(Program& program, const Token& name, bool has_value) {
    auto fn = std::make_unique<Function>();
    fn->name = name.text;
    fn->returns_value = has_value;
    fn->line = name.line;
    expect(Tok::kLParen, "'('");
    if (!accept(Tok::kRParen)) {
      if (at(Tok::kVoid) && peek(1).kind == Tok::kRParen) {
        take();  // (void)
      } else {
        for (;;) {
          if (!at_type()) fail("expected parameter type");
          if (!take_type()) fail("void parameter");
          const Token param = expect(Tok::kIdent, "parameter name");
          fn->params.push_back(param.text);
          if (!accept(Tok::kComma)) break;
        }
      }
      expect(Tok::kRParen, "')'");
    }
    expect(Tok::kLBrace, "'{'");
    while (!at(Tok::kRBrace)) fn->body.push_back(parse_stmt());
    expect(Tok::kRBrace, "'}'");
    program.functions.push_back(std::move(fn));
  }

  // --- statements --------------------------------------------------------------
  std::unique_ptr<Stmt> parse_stmt() {
    const int ln = line();
    if (at(Tok::kLBrace)) {
      auto s = make_stmt(Stmt::Kind::kBlock, ln);
      take();
      while (!at(Tok::kRBrace)) s->body.push_back(parse_stmt());
      expect(Tok::kRBrace, "'}'");
      return s;
    }
    if (at(Tok::kIf)) return parse_if();
    if (at(Tok::kWhile)) return parse_while();
    if (at(Tok::kDo)) return parse_do_while();
    if (at(Tok::kFor)) return parse_for();
    if (at(Tok::kSwitch)) return parse_switch();
    if (accept(Tok::kBreak)) {
      expect(Tok::kSemi, "';'");
      return make_stmt(Stmt::Kind::kBreak, ln);
    }
    if (accept(Tok::kContinue)) {
      expect(Tok::kSemi, "';'");
      return make_stmt(Stmt::Kind::kContinue, ln);
    }
    if (accept(Tok::kReturn)) {
      auto s = make_stmt(Stmt::Kind::kReturn, ln);
      if (!at(Tok::kSemi)) s->expr = parse_expr();
      expect(Tok::kSemi, "';'");
      return s;
    }
    if (accept(Tok::kAssert)) {
      auto s = make_stmt(Stmt::Kind::kAssert, ln);
      expect(Tok::kLParen, "'('");
      s->expr = parse_expr();
      expect(Tok::kRParen, "')'");
      expect(Tok::kSemi, "';'");
      return s;
    }
    if (accept(Tok::kAssume)) {
      auto s = make_stmt(Stmt::Kind::kAssume, ln);
      expect(Tok::kLParen, "'('");
      s->expr = parse_expr();
      expect(Tok::kRParen, "')'");
      expect(Tok::kSemi, "';'");
      return s;
    }
    auto s = parse_simple_stmt();
    expect(Tok::kSemi, "';'");
    return s;
  }

  /// Declaration, assignment, or expression — without the trailing ';'
  /// (shared between plain statements and for-headers).
  std::unique_ptr<Stmt> parse_simple_stmt() {
    const int ln = line();
    if (at_type()) {
      if (!take_type()) fail("void local variable");
      const Token name = expect(Tok::kIdent, "variable name");
      auto s = make_stmt(Stmt::Kind::kLocalDecl, ln);
      s->name = name.text;
      if (accept(Tok::kAssign)) s->expr = parse_expr();
      return s;
    }
    auto lhs = parse_expr();
    const auto lvalue_ok = [&] {
      if (lhs->kind != Expr::Kind::kVarRef && lhs->kind != Expr::Kind::kIndex &&
          lhs->kind != Expr::Kind::kMemRead) {
        fail("assignment target must be a variable, array element, or *(addr)");
      }
    };
    const auto make_aug = [&](BinaryOp op, std::unique_ptr<Expr> rhs) {
      // x op= e  ==>  x = x op e (the target is re-evaluated; fine for our
      // side-effect-free lvalues).
      auto s = make_stmt(Stmt::Kind::kAssign, ln);
      auto value = make_expr(Expr::Kind::kBinary, ln);
      value->binary_op = op;
      value->children.push_back(clone_expr(*lhs));
      value->children.push_back(std::move(rhs));
      s->target = std::move(lhs);
      s->expr = std::move(value);
      return s;
    };
    if (accept(Tok::kAssign)) {
      lvalue_ok();
      auto s = make_stmt(Stmt::Kind::kAssign, ln);
      s->target = std::move(lhs);
      s->expr = parse_expr();
      return s;
    }
    if (accept(Tok::kPlusAssign)) {
      lvalue_ok();
      return make_aug(BinaryOp::kAdd, parse_expr());
    }
    if (accept(Tok::kMinusAssign)) {
      lvalue_ok();
      return make_aug(BinaryOp::kSub, parse_expr());
    }
    if (accept(Tok::kPlusPlus)) {
      lvalue_ok();
      auto one = make_expr(Expr::Kind::kIntLit, ln);
      one->value = 1;
      return make_aug(BinaryOp::kAdd, std::move(one));
    }
    if (accept(Tok::kMinusMinus)) {
      lvalue_ok();
      auto one = make_expr(Expr::Kind::kIntLit, ln);
      one->value = 1;
      return make_aug(BinaryOp::kSub, std::move(one));
    }
    auto s = make_stmt(Stmt::Kind::kExpr, ln);
    s->expr = std::move(lhs);
    return s;
  }

  std::unique_ptr<Stmt> parse_if() {
    const int ln = line();
    expect(Tok::kIf, "'if'");
    auto s = make_stmt(Stmt::Kind::kIf, ln);
    expect(Tok::kLParen, "'('");
    s->expr = parse_expr();
    expect(Tok::kRParen, "')'");
    s->body.push_back(parse_stmt());
    if (accept(Tok::kElse)) s->else_body.push_back(parse_stmt());
    return s;
  }

  std::unique_ptr<Stmt> parse_while() {
    const int ln = line();
    expect(Tok::kWhile, "'while'");
    auto s = make_stmt(Stmt::Kind::kWhile, ln);
    expect(Tok::kLParen, "'('");
    s->expr = parse_expr();
    expect(Tok::kRParen, "')'");
    s->body.push_back(parse_stmt());
    return s;
  }

  std::unique_ptr<Stmt> parse_do_while() {
    const int ln = line();
    expect(Tok::kDo, "'do'");
    auto s = make_stmt(Stmt::Kind::kDoWhile, ln);
    s->body.push_back(parse_stmt());
    expect(Tok::kWhile, "'while'");
    expect(Tok::kLParen, "'('");
    s->expr = parse_expr();
    expect(Tok::kRParen, "')'");
    expect(Tok::kSemi, "';'");
    return s;
  }

  std::unique_ptr<Stmt> parse_for() {
    const int ln = line();
    expect(Tok::kFor, "'for'");
    auto s = make_stmt(Stmt::Kind::kFor, ln);
    expect(Tok::kLParen, "'('");
    if (!at(Tok::kSemi)) s->init = parse_simple_stmt();
    expect(Tok::kSemi, "';'");
    if (!at(Tok::kSemi)) s->expr = parse_expr();
    expect(Tok::kSemi, "';'");
    if (!at(Tok::kRParen)) s->step = parse_simple_stmt();
    expect(Tok::kRParen, "')'");
    s->body.push_back(parse_stmt());
    return s;
  }

  std::unique_ptr<Stmt> parse_switch() {
    const int ln = line();
    expect(Tok::kSwitch, "'switch'");
    auto s = make_stmt(Stmt::Kind::kSwitch, ln);
    expect(Tok::kLParen, "'('");
    s->expr = parse_expr();
    expect(Tok::kRParen, "')'");
    expect(Tok::kLBrace, "'{'");
    bool saw_default = false;
    while (!at(Tok::kRBrace)) {
      Stmt::Case c;
      c.line = line();
      if (accept(Tok::kCase)) {
        c.value = parse_const_value();
      } else if (accept(Tok::kDefault)) {
        if (saw_default) fail("duplicate default label");
        saw_default = true;
        c.is_default = true;
      } else {
        fail("expected 'case' or 'default'");
      }
      expect(Tok::kColon, "':'");
      while (!at(Tok::kCase) && !at(Tok::kDefault) && !at(Tok::kRBrace)) {
        c.body.push_back(parse_stmt());
      }
      s->cases.push_back(std::move(c));
    }
    expect(Tok::kRBrace, "'}'");
    return s;
  }

  // --- expressions --------------------------------------------------------------
  std::unique_ptr<Expr> parse_expr() { return parse_ternary(); }

  std::unique_ptr<Expr> parse_ternary() {
    auto cond = parse_binary(0);
    if (!accept(Tok::kQuestion)) return cond;
    const int ln = cond->line;
    auto e = make_expr(Expr::Kind::kTernary, ln);
    e->children.push_back(std::move(cond));
    e->children.push_back(parse_expr());
    expect(Tok::kColon, "':'");
    e->children.push_back(parse_expr());
    return e;
  }

  struct BinLevel {
    Tok token;
    BinaryOp op;
  };

  /// Precedence-climbing over C's binary operator table.
  std::unique_ptr<Expr> parse_binary(int level) {
    static const std::vector<std::vector<BinLevel>> kLevels = {
        {{Tok::kPipePipe, BinaryOp::kLogicalOr}},
        {{Tok::kAmpAmp, BinaryOp::kLogicalAnd}},
        {{Tok::kPipe, BinaryOp::kBitOr}},
        {{Tok::kCaret, BinaryOp::kBitXor}},
        {{Tok::kAmp, BinaryOp::kBitAnd}},
        {{Tok::kEqEq, BinaryOp::kEq}, {Tok::kNe, BinaryOp::kNe}},
        {{Tok::kLt, BinaryOp::kLt},
         {Tok::kLe, BinaryOp::kLe},
         {Tok::kGt, BinaryOp::kGt},
         {Tok::kGe, BinaryOp::kGe}},
        {{Tok::kShl, BinaryOp::kShl}, {Tok::kShr, BinaryOp::kShr}},
        {{Tok::kPlus, BinaryOp::kAdd}, {Tok::kMinus, BinaryOp::kSub}},
        {{Tok::kStar, BinaryOp::kMul},
         {Tok::kSlash, BinaryOp::kDiv},
         {Tok::kPercent, BinaryOp::kMod}},
    };
    if (level >= static_cast<int>(kLevels.size())) return parse_unary();
    auto lhs = parse_binary(level + 1);
    for (;;) {
      const BinLevel* match = nullptr;
      for (const BinLevel& candidate : kLevels[static_cast<std::size_t>(level)]) {
        if (at(candidate.token)) {
          match = &candidate;
          break;
        }
      }
      if (match == nullptr) return lhs;
      const int ln = line();
      take();
      auto e = make_expr(Expr::Kind::kBinary, ln);
      e->binary_op = match->op;
      e->children.push_back(std::move(lhs));
      e->children.push_back(parse_binary(level + 1));
      lhs = std::move(e);
    }
  }

  std::unique_ptr<Expr> parse_unary() {
    const int ln = line();
    if (accept(Tok::kNot)) {
      auto e = make_expr(Expr::Kind::kUnary, ln);
      e->unary_op = UnaryOp::kNot;
      e->children.push_back(parse_unary());
      return e;
    }
    if (accept(Tok::kMinus)) {
      auto e = make_expr(Expr::Kind::kUnary, ln);
      e->unary_op = UnaryOp::kNeg;
      e->children.push_back(parse_unary());
      return e;
    }
    if (accept(Tok::kTilde)) {
      auto e = make_expr(Expr::Kind::kUnary, ln);
      e->unary_op = UnaryOp::kBitNot;
      e->children.push_back(parse_unary());
      return e;
    }
    if (accept(Tok::kStar)) {
      // Direct memory access *(addr); parenthesized address required, as in
      // the paper's examples.
      auto e = make_expr(Expr::Kind::kMemRead, ln);
      expect(Tok::kLParen, "'(' after '*'");
      e->children.push_back(parse_expr());
      expect(Tok::kRParen, "')'");
      return e;
    }
    return parse_postfix();
  }

  std::unique_ptr<Expr> parse_postfix() {
    auto e = parse_primary();
    for (;;) {
      if (at(Tok::kLBracket)) {
        if (e->kind != Expr::Kind::kVarRef) {
          fail("only named arrays can be indexed");
        }
        take();
        auto idx = make_expr(Expr::Kind::kIndex, e->line);
        idx->name = e->name;
        idx->children.push_back(parse_expr());
        expect(Tok::kRBracket, "']'");
        e = std::move(idx);
        continue;
      }
      if (at(Tok::kLParen)) {
        if (e->kind != Expr::Kind::kVarRef) fail("call of a non-function");
        take();
        auto call = make_expr(Expr::Kind::kCall, e->line);
        call->name = e->name;
        if (!at(Tok::kRParen)) {
          for (;;) {
            call->children.push_back(parse_expr());
            if (!accept(Tok::kComma)) break;
          }
        }
        expect(Tok::kRParen, "')'");
        e = std::move(call);
        continue;
      }
      return e;
    }
  }

  std::unique_ptr<Expr> parse_primary() {
    const int ln = line();
    if (at(Tok::kNumber)) {
      auto e = make_expr(Expr::Kind::kIntLit, ln);
      e->value = take().number;
      return e;
    }
    if (accept(Tok::kTrue)) {
      auto e = make_expr(Expr::Kind::kBoolLit, ln);
      e->value = 1;
      return e;
    }
    if (accept(Tok::kFalse)) {
      auto e = make_expr(Expr::Kind::kBoolLit, ln);
      e->value = 0;
      return e;
    }
    if (accept(Tok::kInput)) {
      expect(Tok::kLParen, "'('");
      const Token name = expect(Tok::kIdent, "input name");
      expect(Tok::kRParen, "')'");
      auto e = make_expr(Expr::Kind::kInput, ln);
      e->name = name.text;
      return e;
    }
    if (at(Tok::kIdent)) {
      auto e = make_expr(Expr::Kind::kVarRef, ln);
      e->name = take().text;
      return e;
    }
    if (accept(Tok::kLParen)) {
      auto e = parse_expr();
      expect(Tok::kRParen, "')'");
      return e;
    }
    fail("expected an expression");
  }

  /// Deep copy (needed to desugar `x += e` into `x = x + e`).
  static std::unique_ptr<Expr> clone_expr(const Expr& e) {
    auto copy = std::make_unique<Expr>();
    copy->kind = e.kind;
    copy->line = e.line;
    copy->value = e.value;
    copy->name = e.name;
    copy->unary_op = e.unary_op;
    copy->binary_op = e.binary_op;
    for (const auto& child : e.children) {
      copy->children.push_back(clone_expr(*child));
    }
    return copy;
  }

 public:
  /// Enum constants collected while parsing; consumed by sema.
  std::vector<std::pair<std::string, std::int64_t>> enum_constants_;

 private:
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse_program(std::string_view source) {
  Parser parser(source);
  Program program = parser.parse();
  program.enum_constants = std::move(parser.enum_constants_);
  return program;
}

}  // namespace esv::minic

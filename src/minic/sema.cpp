#include "minic/sema.hpp"

#include <unordered_map>
#include <unordered_set>

#include "minic/parser.hpp"

namespace esv::minic {

namespace {

class Sema {
 public:
  explicit Sema(Program& program) : program_(program) {}

  void run() {
    layout_globals();
    collect_functions();
    for (auto& fn : program_.functions) analyze_function(*fn);
    const Function* main_fn = program_.find_function("main");
    if (main_fn == nullptr) {
      throw SemaError("program has no main() function", 1);
    }
    if (!main_fn->params.empty()) {
      throw SemaError("main() must not take parameters", main_fn->line);
    }
  }

 private:
  void layout_globals() {
    // The implicit fname global sits at the very start of the data segment so
    // monitors can always find it.
    if (program_.find_global("fname") == nullptr) {
      GlobalVar fname;
      fname.name = "fname";
      fname.words = 1;
      program_.globals.insert(program_.globals.begin(), std::move(fname));
    }
    std::uint32_t address = Program::kGlobalsBase;
    std::unordered_set<std::string> seen;
    for (auto& g : program_.globals) {
      if (!seen.insert(g.name).second) {
        throw SemaError("duplicate global '" + g.name + "'", g.line);
      }
      for (const auto& [name, value] : program_.enum_constants) {
        (void)value;
        if (name == g.name) {
          throw SemaError("'" + g.name + "' is already an enum constant",
                          g.line);
        }
      }
      g.address = address;
      address += g.words * 4;
      globals_[g.name] = &g;
    }
    program_.fname_address = program_.find_global("fname")->address;
    for (const auto& [name, value] : program_.enum_constants) {
      constants_[name] = value;
    }
  }

  void collect_functions() {
    int index = 0;
    for (auto& fn : program_.functions) {
      if (functions_.count(fn->name) != 0) {
        throw SemaError("duplicate function '" + fn->name + "'", fn->line);
      }
      if (globals_.count(fn->name) != 0 || constants_.count(fn->name) != 0) {
        throw SemaError("'" + fn->name + "' already names a value", fn->line);
      }
      fn->index = index++;
      functions_[fn->name] = fn.get();
    }
  }

  // --- per-function analysis -------------------------------------------------

  struct Scope {
    std::unordered_map<std::string, int> slots;
  };

  void analyze_function(Function& fn) {
    current_ = &fn;
    next_slot_ = 0;
    max_slots_ = 0;
    loop_depth_ = 0;
    switch_depth_ = 0;
    scopes_.clear();
    push_scope();
    for (const std::string& param : fn.params) {
      declare_local(param, fn.line);
    }
    for (auto& stmt : fn.body) analyze_stmt(*stmt);
    pop_scope();
    fn.max_slots = max_slots_;
    current_ = nullptr;
  }

  void push_scope() { scopes_.emplace_back(); }
  void pop_scope() {
    next_slot_ -= static_cast<int>(scopes_.back().slots.size());
    scopes_.pop_back();
  }

  int declare_local(const std::string& name, int line) {
    if (scopes_.back().slots.count(name) != 0) {
      throw SemaError("duplicate local '" + name + "'", line);
    }
    if (constants_.count(name) != 0) {
      throw SemaError("'" + name + "' shadows an enum constant", line);
    }
    const int slot = next_slot_++;
    max_slots_ = std::max(max_slots_, next_slot_);
    scopes_.back().slots[name] = slot;
    return slot;
  }

  /// Finds a local slot, innermost scope first; -1 if not a local.
  int find_local(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto hit = it->slots.find(name);
      if (hit != it->slots.end()) return hit->second;
    }
    return -1;
  }

  void analyze_stmt(Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::kExpr:
        analyze_expr(*s.expr, /*value_needed=*/false);
        break;
      case Stmt::Kind::kAssign:
        analyze_lvalue(*s.target);
        analyze_expr(*s.expr, true);
        break;
      case Stmt::Kind::kLocalDecl:
        if (s.expr) analyze_expr(*s.expr, true);
        s.slot = declare_local(s.name, s.line);
        break;
      case Stmt::Kind::kIf:
        analyze_expr(*s.expr, true);
        analyze_body(s.body);
        analyze_body(s.else_body);
        break;
      case Stmt::Kind::kWhile:
      case Stmt::Kind::kDoWhile:
        analyze_expr(*s.expr, true);
        ++loop_depth_;
        analyze_body(s.body);
        --loop_depth_;
        break;
      case Stmt::Kind::kFor:
        push_scope();  // for-init declarations live in the header scope
        if (s.init) analyze_stmt(*s.init);
        if (s.expr) analyze_expr(*s.expr, true);
        if (s.step) analyze_stmt(*s.step);
        ++loop_depth_;
        analyze_body(s.body);
        --loop_depth_;
        pop_scope();
        break;
      case Stmt::Kind::kSwitch: {
        analyze_expr(*s.expr, true);
        ++switch_depth_;
        std::unordered_set<std::int64_t> labels;
        for (auto& c : s.cases) {
          if (!c.is_default && !labels.insert(c.value).second) {
            throw SemaError("duplicate case label " + std::to_string(c.value),
                            c.line);
          }
          analyze_body(c.body);
        }
        --switch_depth_;
        break;
      }
      case Stmt::Kind::kReturn:
        if (s.expr) {
          if (!current_->returns_value) {
            throw SemaError("void function returns a value", s.line);
          }
          analyze_expr(*s.expr, true);
        } else if (current_->returns_value) {
          throw SemaError("non-void function returns nothing", s.line);
        }
        break;
      case Stmt::Kind::kBreak:
        if (loop_depth_ == 0 && switch_depth_ == 0) {
          throw SemaError("break outside loop or switch", s.line);
        }
        break;
      case Stmt::Kind::kContinue:
        if (loop_depth_ == 0) {
          throw SemaError("continue outside loop", s.line);
        }
        break;
      case Stmt::Kind::kAssert:
      case Stmt::Kind::kAssume:
        analyze_expr(*s.expr, true);
        break;
      case Stmt::Kind::kBlock:
        analyze_body(s.body);
        break;
    }
  }

  void analyze_body(std::vector<std::unique_ptr<Stmt>>& body) {
    push_scope();
    for (auto& stmt : body) analyze_stmt(*stmt);
    pop_scope();
  }

  void analyze_lvalue(Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kVarRef: {
        resolve_var(e);
        if (e.ref == RefKind::kConst) {
          throw SemaError("cannot assign to constant '" + e.name + "'", e.line);
        }
        if (e.ref == RefKind::kGlobal) {
          const GlobalVar* g = program_.find_global(e.name);
          if (g != nullptr && g->is_array) {
            throw SemaError("cannot assign to whole array '" + e.name + "'",
                            e.line);
          }
        }
        break;
      }
      case Expr::Kind::kIndex:
      case Expr::Kind::kMemRead:
        analyze_expr(e, true);
        break;
      default:
        throw SemaError("invalid assignment target", e.line);
    }
  }

  void analyze_expr(Expr& e, bool value_needed) {
    switch (e.kind) {
      case Expr::Kind::kIntLit:
      case Expr::Kind::kBoolLit:
        break;
      case Expr::Kind::kVarRef:
        resolve_var(e);
        if (e.ref == RefKind::kGlobal) {
          const GlobalVar* g = program_.find_global(e.name);
          if (g != nullptr && g->is_array) {
            throw SemaError("array '" + e.name + "' used as a scalar", e.line);
          }
        }
        break;
      case Expr::Kind::kIndex: {
        const GlobalVar* g = program_.find_global(e.name);
        if (g == nullptr) {
          throw SemaError("unknown array '" + e.name + "'", e.line);
        }
        if (!g->is_array) {
          throw SemaError("'" + e.name + "' is not an array", e.line);
        }
        e.ref = RefKind::kGlobal;
        e.address = g->address;
        analyze_expr(*e.children[0], true);
        break;
      }
      case Expr::Kind::kCall: {
        auto it = functions_.find(e.name);
        if (it == functions_.end()) {
          throw SemaError("call of unknown function '" + e.name + "'", e.line);
        }
        const Function* callee = it->second;
        if (callee->params.size() != e.children.size()) {
          throw SemaError("'" + e.name + "' expects " +
                              std::to_string(callee->params.size()) +
                              " argument(s), got " +
                              std::to_string(e.children.size()),
                          e.line);
        }
        if (value_needed && !callee->returns_value) {
          throw SemaError("void function '" + e.name + "' used as a value",
                          e.line);
        }
        e.callee = callee;
        for (auto& arg : e.children) analyze_expr(*arg, true);
        break;
      }
      case Expr::Kind::kUnary:
        analyze_expr(*e.children[0], true);
        break;
      case Expr::Kind::kBinary:
        analyze_expr(*e.children[0], true);
        analyze_expr(*e.children[1], true);
        break;
      case Expr::Kind::kTernary:
        for (auto& child : e.children) analyze_expr(*child, true);
        break;
      case Expr::Kind::kMemRead:
        analyze_expr(*e.children[0], true);
        break;
      case Expr::Kind::kInput: {
        // Assign dense input ids in first-use order.
        for (std::size_t i = 0; i < program_.input_names.size(); ++i) {
          if (program_.input_names[i] == e.name) {
            e.input_id = static_cast<int>(i);
            break;
          }
        }
        if (e.input_id < 0) {
          e.input_id = static_cast<int>(program_.input_names.size());
          program_.input_names.push_back(e.name);
        }
        break;
      }
    }
  }

  void resolve_var(Expr& e) {
    const int slot = find_local(e.name);
    if (slot >= 0) {
      e.ref = RefKind::kLocal;
      e.slot = slot;
      return;
    }
    auto constant = constants_.find(e.name);
    if (constant != constants_.end()) {
      e.ref = RefKind::kConst;
      e.value = constant->second;
      return;
    }
    auto global = globals_.find(e.name);
    if (global != globals_.end()) {
      e.ref = RefKind::kGlobal;
      e.address = global->second->address;
      return;
    }
    throw SemaError("unknown identifier '" + e.name + "'", e.line);
  }

  Program& program_;
  std::unordered_map<std::string, GlobalVar*> globals_;
  std::unordered_map<std::string, std::int64_t> constants_;
  std::unordered_map<std::string, Function*> functions_;

  Function* current_ = nullptr;
  std::vector<Scope> scopes_;
  int next_slot_ = 0;
  int max_slots_ = 0;
  int loop_depth_ = 0;
  int switch_depth_ = 0;
};

}  // namespace

void analyze(Program& program) { Sema(program).run(); }

Program compile(std::string_view source) {
  Program program = parse_program(source);
  analyze(program);
  return program;
}

}  // namespace esv::minic

// Runtime support interface for the mini-C `__in(name)` intrinsic.
//
// `__in(name)` models an external input of the embedded software (sensor
// values, requests from the application layer, ...). Execution platforms ask
// an InputProvider for the value; the stimulus module implements constrained-
// random providers, tests implement scripted ones.
#pragma once

#include <cstdint>
#include <string>

namespace esv::minic {

class InputProvider {
 public:
  virtual ~InputProvider() = default;
  /// Returns the next value of the input `name` (dense `input_id` as
  /// assigned by sema, for fast dispatch).
  virtual std::uint32_t input(int input_id, const std::string& name) = 0;
};

/// Provider that returns 0 for every input (the "unconnected" default).
class ZeroInputProvider final : public InputProvider {
 public:
  std::uint32_t input(int, const std::string&) override { return 0; }
};

}  // namespace esv::minic

// Recursive-descent parser for mini-C: tokens -> unresolved AST (Program).
// Run sema (sema.hpp) afterwards to resolve names, lay out globals, and
// type-check; only a resolved Program may be executed or compiled.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "minic/ast.hpp"

namespace esv::minic {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, int line)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Parses a full translation unit. Throws LexError/ParseError on bad input.
Program parse_program(std::string_view source);

}  // namespace esv::minic

#include "minic/lexer.hpp"

#include <cctype>
#include <unordered_map>

namespace esv::minic {

namespace {

const std::unordered_map<std::string_view, Tok>& keywords() {
  static const std::unordered_map<std::string_view, Tok> kMap = {
      {"int", Tok::kInt},         {"unsigned", Tok::kUnsigned},
      {"bool", Tok::kBool},       {"void", Tok::kVoid},
      {"enum", Tok::kEnum},       {"if", Tok::kIf},
      {"else", Tok::kElse},       {"while", Tok::kWhile},
      {"do", Tok::kDo},           {"for", Tok::kFor},
      {"switch", Tok::kSwitch},   {"case", Tok::kCase},
      {"default", Tok::kDefault}, {"break", Tok::kBreak},
      {"continue", Tok::kContinue}, {"return", Tok::kReturn},
      {"true", Tok::kTrue},       {"false", Tok::kFalse},
      {"assert", Tok::kAssert},   {"__in", Tok::kInput},
      {"__assume", Tok::kAssume},
  };
  return kMap;
}

}  // namespace

std::vector<Token> tokenize(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  int line = 1;
  int line_start = 0;

  const auto col = [&](std::size_t pos) {
    return static_cast<int>(pos) - line_start + 1;
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = static_cast<int>(i);
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < src.size()) {
      if (src[i + 1] == '/') {
        while (i < src.size() && src[i] != '\n') ++i;
        continue;
      }
      if (src[i + 1] == '*') {
        i += 2;
        while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) {
          if (src[i] == '\n') {
            ++line;
            line_start = static_cast<int>(i) + 1;
          }
          ++i;
        }
        if (i + 1 >= src.size()) throw LexError("unterminated comment", line);
        i += 2;
        continue;
      }
    }

    Token t;
    t.line = line;
    t.column = col(i);

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < src.size() && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                                src[i] == '_')) {
        ++i;
      }
      const std::string_view word = src.substr(start, i - start);
      auto it = keywords().find(word);
      if (it != keywords().end()) {
        t.kind = it->second;
      } else {
        t.kind = Tok::kIdent;
        t.text = std::string(word);
      }
      out.push_back(std::move(t));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::int64_t value = 0;
      if (c == '0' && i + 1 < src.size() &&
          (src[i + 1] == 'x' || src[i + 1] == 'X')) {
        i += 2;
        if (i >= src.size() ||
            !std::isxdigit(static_cast<unsigned char>(src[i]))) {
          throw LexError("malformed hex literal", line);
        }
        while (i < src.size() &&
               std::isxdigit(static_cast<unsigned char>(src[i]))) {
          const char d = src[i];
          const int digit = std::isdigit(static_cast<unsigned char>(d))
                                ? d - '0'
                                : std::tolower(d) - 'a' + 10;
          value = value * 16 + digit;
          ++i;
        }
      } else {
        while (i < src.size() &&
               std::isdigit(static_cast<unsigned char>(src[i]))) {
          value = value * 10 + (src[i] - '0');
          ++i;
        }
      }
      if (i < src.size() && (std::isalpha(static_cast<unsigned char>(src[i])) ||
                             src[i] == '_')) {
        throw LexError("malformed number literal", line);
      }
      t.kind = Tok::kNumber;
      t.number = value;
      out.push_back(std::move(t));
      continue;
    }

    const auto two = [&](char a, char b) {
      return c == a && i + 1 < src.size() && src[i + 1] == b;
    };
    const auto push2 = [&](Tok kind) {
      t.kind = kind;
      out.push_back(t);
      i += 2;
    };
    if (two('&', '&')) { push2(Tok::kAmpAmp); continue; }
    if (two('|', '|')) { push2(Tok::kPipePipe); continue; }
    if (two('<', '<')) { push2(Tok::kShl); continue; }
    if (two('>', '>')) { push2(Tok::kShr); continue; }
    if (two('<', '=')) { push2(Tok::kLe); continue; }
    if (two('>', '=')) { push2(Tok::kGe); continue; }
    if (two('=', '=')) { push2(Tok::kEqEq); continue; }
    if (two('!', '=')) { push2(Tok::kNe); continue; }
    if (two('+', '+')) { push2(Tok::kPlusPlus); continue; }
    if (two('-', '-')) { push2(Tok::kMinusMinus); continue; }
    if (two('+', '=')) { push2(Tok::kPlusAssign); continue; }
    if (two('-', '=')) { push2(Tok::kMinusAssign); continue; }

    const auto push1 = [&](Tok kind) {
      t.kind = kind;
      out.push_back(t);
      ++i;
    };
    switch (c) {
      case '(': push1(Tok::kLParen); continue;
      case ')': push1(Tok::kRParen); continue;
      case '{': push1(Tok::kLBrace); continue;
      case '}': push1(Tok::kRBrace); continue;
      case '[': push1(Tok::kLBracket); continue;
      case ']': push1(Tok::kRBracket); continue;
      case ';': push1(Tok::kSemi); continue;
      case ',': push1(Tok::kComma); continue;
      case ':': push1(Tok::kColon); continue;
      case '?': push1(Tok::kQuestion); continue;
      case '=': push1(Tok::kAssign); continue;
      case '+': push1(Tok::kPlus); continue;
      case '-': push1(Tok::kMinus); continue;
      case '*': push1(Tok::kStar); continue;
      case '/': push1(Tok::kSlash); continue;
      case '%': push1(Tok::kPercent); continue;
      case '&': push1(Tok::kAmp); continue;
      case '|': push1(Tok::kPipe); continue;
      case '^': push1(Tok::kCaret); continue;
      case '~': push1(Tok::kTilde); continue;
      case '!': push1(Tok::kNot); continue;
      case '<': push1(Tok::kLt); continue;
      case '>': push1(Tok::kGt); continue;
      default:
        throw LexError(std::string("unexpected character '") + c + "'", line);
    }
  }

  Token end;
  end.kind = Tok::kEnd;
  end.line = line;
  out.push_back(end);
  return out;
}

}  // namespace esv::minic

#include "can/can_controller.hpp"

namespace esv::can {

std::uint32_t CanController::mmio_read(std::uint32_t offset) {
  switch (offset) {
    case kRegRxStatus: {
      std::uint32_t status = 0;
      if (!rx_fifo_.empty()) status |= kRxMsgAvailable;
      if (overrun_) status |= kRxOverrun;
      return status;
    }
    case kRegRxId:
      return rx_fifo_.empty() ? 0 : rx_fifo_.front().id;
    case kRegRxData:
      return rx_fifo_.empty() ? 0 : rx_fifo_.front().data;
    case kRegTxId:
      return tx_id_;
    case kRegTxData:
      return tx_data_;
    case kRegTxStatus: {
      std::uint32_t status = 0;
      if (tx_busy()) status |= kTxBusy;
      if (tx_done_) status |= kTxDone;
      if (tx_error_) status |= kTxError;
      return status;
    }
    default:
      return 0;
  }
}

void CanController::mmio_write(std::uint32_t offset, std::uint32_t value) {
  switch (offset) {
    case kRegRxPop:
      if (!rx_fifo_.empty()) rx_fifo_.pop_front();
      return;
    case kRegRxClearOverrun:
      overrun_ = false;
      return;
    case kRegTxId:
      tx_id_ = value;
      return;
    case kRegTxData:
      tx_data_ = value;
      return;
    case kRegTxCtrl:
      if (value != 1 || tx_busy()) return;  // ignore while busy
      tx_done_ = false;
      tx_error_ = false;
      tx_busy_ticks_left_ = config_.tx_busy_ticks;
      if (tx_busy_ticks_left_ == 0) tx_busy_ticks_left_ = 1;
      // Injected delay stretches this transmission, then disarms.
      tx_busy_ticks_left_ += fault_delay_;
      fault_delay_ = 0;
      return;
    default:
      return;
  }
}

void CanController::tick() {
  if (tx_busy_ticks_left_ == 0) return;
  if (--tx_busy_ticks_left_ != 0) return;
  if (tx_fault_) {
    tx_fault_ = false;
    tx_error_ = true;
    return;
  }
  tx_done_ = true;
  CanFrame frame{tx_id_, tx_data_};
  if (fault_corrupt_mask_ != 0) {
    frame.data ^= fault_corrupt_mask_;
    fault_corrupt_mask_ = 0;
  }
  if (fault_drop_) {
    // Lost on the bus: the sender saw DONE, the frame never arrives.
    fault_drop_ = false;
    return;
  }
  tx_log_.push_back(frame);
}

bool CanController::inject_rx(std::uint32_t id, std::uint32_t data) {
  if (rx_fifo_.size() >= config_.rx_fifo_depth) {
    overrun_ = true;
    ++rx_dropped_;
    return false;
  }
  rx_fifo_.push_back(CanFrame{id, data});
  return true;
}

}  // namespace esv::can

// CAN controller model — a second hardware substrate for automotive
// workloads (the paper's motivation names body/comfort functions; message
// gateways between CAN buses are the classic one).
//
// Models the software-visible behaviour of a basic full-CAN controller:
// a receive FIFO with overrun detection, and a single transmit mailbox with
// multi-cycle send latency and an optional acknowledge error (bus-off-style
// fault injection). The testbench injects frames into the RX path and
// observes the TX log.
//
// Register map (word offsets from the mapping base):
//   +0x00 RX_STATUS (r) bit0 MSG_AVAILABLE, bit1 OVERRUN (sticky)
//   +0x04 RX_ID     (r) id of the head frame
//   +0x08 RX_DATA   (r) payload of the head frame
//   +0x0C RX_POP    (w) any value: consume the head frame
//   +0x10 RX_CLROVR (w) any value: clear the overrun flag
//   +0x14 TX_ID     (rw)
//   +0x18 TX_DATA   (rw)
//   +0x1C TX_CTRL   (w) 1 = send
//   +0x20 TX_STATUS (r) bit0 BUSY, bit1 DONE (cleared by send), bit2 ERROR
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "mem/address_space.hpp"

namespace esv::can {

struct CanFrame {
  std::uint32_t id = 0;
  std::uint32_t data = 0;

  bool operator==(const CanFrame&) const = default;
};

struct CanConfig {
  std::size_t rx_fifo_depth = 4;
  std::uint32_t tx_busy_ticks = 6;
};

class CanController final : public mem::MmioDevice {
 public:
  static constexpr std::uint32_t kRegRxStatus = 0x00;
  static constexpr std::uint32_t kRegRxId = 0x04;
  static constexpr std::uint32_t kRegRxData = 0x08;
  static constexpr std::uint32_t kRegRxPop = 0x0C;
  static constexpr std::uint32_t kRegRxClearOverrun = 0x10;
  static constexpr std::uint32_t kRegTxId = 0x14;
  static constexpr std::uint32_t kRegTxData = 0x18;
  static constexpr std::uint32_t kRegTxCtrl = 0x1C;
  static constexpr std::uint32_t kRegTxStatus = 0x20;

  static constexpr std::uint32_t kRxMsgAvailable = 1u << 0;
  static constexpr std::uint32_t kRxOverrun = 1u << 1;
  static constexpr std::uint32_t kTxBusy = 1u << 0;
  static constexpr std::uint32_t kTxDone = 1u << 1;
  static constexpr std::uint32_t kTxError = 1u << 2;

  static constexpr std::uint32_t kWindowBytes = 0x40;

  explicit CanController(CanConfig config = {}) : config_(config) {}

  // mem::MmioDevice
  std::uint32_t mmio_read(std::uint32_t offset) override;
  void mmio_write(std::uint32_t offset, std::uint32_t value) override;
  void tick() override;

  // --- testbench side ---
  /// Delivers a frame from the bus; returns false (and sets OVERRUN) when
  /// the FIFO is full and the frame was dropped.
  bool inject_rx(std::uint32_t id, std::uint32_t data);
  /// Frames the software transmitted, in order.
  const std::vector<CanFrame>& tx_log() const { return tx_log_; }
  /// Fails the next transmission with the ERROR bit.
  void inject_tx_fault() { tx_fault_ = true; }

  // --- fault-engine hooks (fault::FaultEngine) ---
  /// XORs the next completed transmission's payload with `xor_mask`
  /// (bus-level frame corruption; the sender still sees DONE).
  void fault_corrupt_next_tx(std::uint32_t xor_mask) {
    fault_corrupt_mask_ = xor_mask;
  }
  /// Silently loses the next completed transmission: the sender sees DONE
  /// but the frame never reaches the bus (tx_log).
  void fault_drop_next_tx() { fault_drop_ = true; }
  /// Stretches the next transmission by `extra_ticks` busy ticks
  /// (arbitration loss / retransmission delay).
  void fault_delay_next_tx(std::uint32_t extra_ticks) {
    fault_delay_ += extra_ticks;
  }

  std::size_t rx_pending() const { return rx_fifo_.size(); }
  bool overrun() const { return overrun_; }
  std::uint64_t rx_dropped() const { return rx_dropped_; }
  bool tx_busy() const { return tx_busy_ticks_left_ > 0; }

 private:
  CanConfig config_;
  std::deque<CanFrame> rx_fifo_;
  bool overrun_ = false;
  std::uint64_t rx_dropped_ = 0;

  std::uint32_t tx_id_ = 0;
  std::uint32_t tx_data_ = 0;
  std::uint32_t tx_busy_ticks_left_ = 0;
  bool tx_done_ = false;
  bool tx_error_ = false;
  bool tx_fault_ = false;
  std::uint32_t fault_corrupt_mask_ = 0;
  bool fault_drop_ = false;
  std::uint32_t fault_delay_ = 0;
  std::vector<CanFrame> tx_log_;
};

}  // namespace esv::can

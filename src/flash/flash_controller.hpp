// Data-flash controller model.
//
// Stand-in for the case study's flash hardware: the NEC EEPROM-emulation
// software sits on a Data Flash Access layer (DFALib) that talks to a real
// data-flash macro. Our controller models the properties that shape that
// software: page-erase granularity, program-only-after-erase cells, multi-
// cycle busy times, and failing operations (injectable), all behind a small
// MMIO register file.
//
// Register map (word offsets from the mapping base):
//   +0x00 CMD     (w) 1 = ERASE_PAGE (ADDR selects the page)
//                     2 = PROGRAM_WORD (ADDR = byte offset, DATA = value)
//   +0x04 ADDR    (rw) byte offset into the flash array
//   +0x08 DATA    (rw) program data / last read data
//   +0x0C STATUS  (r)  bit0 BUSY, bit1 ERROR, bit2 READY (= !busy)
//   +0x10 ACK     (w) any value clears the ERROR bit
//   +0x14 INJECT  (w) 1 = fail the next command, 2 = fail the next erase,
//                     3 = fail the next program (test hook; stimulus and the
//                     fault engine use the C++ API instead)
//
// The flash array itself is readable (and only readable) at
// [kArrayOffset, kArrayOffset + size); erased cells read kErasedWord.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/address_space.hpp"

namespace esv::flash {

struct FlashConfig {
  std::uint32_t pages = 8;
  std::uint32_t words_per_page = 64;
  std::uint32_t erase_busy_ticks = 20;
  std::uint32_t program_busy_ticks = 4;
};

class FlashController final : public mem::MmioDevice {
 public:
  static constexpr std::uint32_t kRegCmd = 0x00;
  static constexpr std::uint32_t kRegAddr = 0x04;
  static constexpr std::uint32_t kRegData = 0x08;
  static constexpr std::uint32_t kRegStatus = 0x0C;
  static constexpr std::uint32_t kRegAck = 0x10;
  static constexpr std::uint32_t kRegInject = 0x14;
  static constexpr std::uint32_t kArrayOffset = 0x100;

  static constexpr std::uint32_t kCmdErasePage = 1;
  static constexpr std::uint32_t kCmdProgramWord = 2;

  static constexpr std::uint32_t kStatusBusy = 1u << 0;
  static constexpr std::uint32_t kStatusError = 1u << 1;
  static constexpr std::uint32_t kStatusReady = 1u << 2;

  static constexpr std::uint32_t kErasedWord = 0xFFFFFFFFu;

  explicit FlashController(FlashConfig config = {});

  /// Size of the flash array in bytes.
  std::uint32_t array_bytes() const {
    return config_.pages * config_.words_per_page * 4;
  }
  /// Total MMIO window size needed when mapping this device.
  std::uint32_t window_bytes() const { return kArrayOffset + array_bytes(); }

  // mem::MmioDevice
  std::uint32_t mmio_read(std::uint32_t offset) override;
  void mmio_write(std::uint32_t offset, std::uint32_t value) override;
  void tick() override;

  // --- direct model access (testbench / stimulus side) ---
  bool busy() const { return busy_ticks_ > 0; }
  bool error() const { return error_; }
  std::uint32_t word_at(std::uint32_t byte_offset) const;
  /// Directly programs a cell, bypassing timing (test setup).
  void backdoor_write(std::uint32_t byte_offset, std::uint32_t value);
  /// Erases everything (power-on state is all-erased).
  void erase_all();

  /// Command kinds a pending injected fault applies to. A targeted fault
  /// stays armed until a matching command starts; kAny fails the very next
  /// command (the historic behaviour).
  enum class FaultOp : std::uint32_t { kAny = 0, kErase = 1, kProgram = 2 };

  /// Makes the next matching command fail with the ERROR bit (fault
  /// injection: transient erase/program failures).
  void inject_fault(FaultOp op = FaultOp::kAny) {
    inject_fault_ = true;
    inject_op_ = op;
  }

  std::uint64_t erase_count() const { return erase_count_; }
  std::uint64_t program_count() const { return program_count_; }
  std::uint64_t failed_op_count() const { return failed_op_count_; }

 private:
  void start_command(std::uint32_t cmd);
  void complete_command();

  FlashConfig config_;
  std::vector<std::uint32_t> cells_;
  std::uint32_t reg_addr_ = 0;
  std::uint32_t reg_data_ = 0;
  bool error_ = false;
  bool inject_fault_ = false;
  FaultOp inject_op_ = FaultOp::kAny;

  std::uint32_t busy_ticks_ = 0;
  std::uint32_t active_cmd_ = 0;
  bool active_fails_ = false;

  std::uint64_t erase_count_ = 0;
  std::uint64_t program_count_ = 0;
  std::uint64_t failed_op_count_ = 0;
};

}  // namespace esv::flash

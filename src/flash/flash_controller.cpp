#include "flash/flash_controller.hpp"

namespace esv::flash {

FlashController::FlashController(FlashConfig config) : config_(config) {
  cells_.assign(config_.pages * config_.words_per_page, kErasedWord);
}

std::uint32_t FlashController::word_at(std::uint32_t byte_offset) const {
  const std::uint32_t index = byte_offset / 4;
  if (index >= cells_.size()) {
    throw mem::MemoryFault("flash read out of range", byte_offset);
  }
  return cells_[index];
}

void FlashController::backdoor_write(std::uint32_t byte_offset,
                                     std::uint32_t value) {
  const std::uint32_t index = byte_offset / 4;
  if (index >= cells_.size()) {
    throw mem::MemoryFault("flash backdoor write out of range", byte_offset);
  }
  cells_[index] = value;
}

void FlashController::erase_all() {
  cells_.assign(cells_.size(), kErasedWord);
  error_ = false;
  busy_ticks_ = 0;
  active_cmd_ = 0;
}

std::uint32_t FlashController::mmio_read(std::uint32_t offset) {
  if (offset >= kArrayOffset) {
    return word_at(offset - kArrayOffset);
  }
  switch (offset) {
    case kRegAddr: return reg_addr_;
    case kRegData: return reg_data_;
    case kRegStatus: {
      std::uint32_t status = 0;
      if (busy()) status |= kStatusBusy;
      if (error_) status |= kStatusError;
      if (!busy()) status |= kStatusReady;
      return status;
    }
    default:
      return 0;
  }
}

void FlashController::mmio_write(std::uint32_t offset, std::uint32_t value) {
  if (offset >= kArrayOffset) {
    // The array is not directly writable; this is the constraint DFALib
    // exists to manage. Set the error bit instead of faulting: real flash
    // macros ignore stray writes.
    error_ = true;
    ++failed_op_count_;
    return;
  }
  switch (offset) {
    case kRegCmd:
      start_command(value);
      return;
    case kRegAddr:
      reg_addr_ = value;
      return;
    case kRegData:
      reg_data_ = value;
      return;
    case kRegAck:
      error_ = false;
      return;
    case kRegInject:
      if (value == 2) {
        inject_fault(FaultOp::kErase);
      } else if (value == 3) {
        inject_fault(FaultOp::kProgram);
      } else if (value != 0) {
        inject_fault(FaultOp::kAny);
      }
      return;
    default:
      return;
  }
}

void FlashController::start_command(std::uint32_t cmd) {
  if (busy()) {
    // Command while busy: rejected with error, the in-flight op continues.
    error_ = true;
    ++failed_op_count_;
    return;
  }
  if (cmd != kCmdErasePage && cmd != kCmdProgramWord) {
    error_ = true;
    ++failed_op_count_;
    return;
  }
  active_cmd_ = cmd;
  const bool fault_matches =
      inject_fault_ &&
      (inject_op_ == FaultOp::kAny ||
       (inject_op_ == FaultOp::kErase && cmd == kCmdErasePage) ||
       (inject_op_ == FaultOp::kProgram && cmd == kCmdProgramWord));
  active_fails_ = fault_matches;
  if (fault_matches) inject_fault_ = false;
  busy_ticks_ = cmd == kCmdErasePage ? config_.erase_busy_ticks
                                     : config_.program_busy_ticks;
  if (busy_ticks_ == 0) complete_command();
}

void FlashController::tick() {
  if (busy_ticks_ == 0) return;
  if (--busy_ticks_ == 0) complete_command();
}

void FlashController::complete_command() {
  const std::uint32_t cmd = active_cmd_;
  active_cmd_ = 0;
  if (active_fails_) {
    active_fails_ = false;
    error_ = true;
    ++failed_op_count_;
    return;
  }
  if (cmd == kCmdErasePage) {
    const std::uint32_t page = reg_addr_ / (config_.words_per_page * 4);
    if (page >= config_.pages) {
      error_ = true;
      ++failed_op_count_;
      return;
    }
    const std::uint32_t first = page * config_.words_per_page;
    for (std::uint32_t i = 0; i < config_.words_per_page; ++i) {
      cells_[first + i] = kErasedWord;
    }
    ++erase_count_;
    return;
  }
  if (cmd == kCmdProgramWord) {
    const std::uint32_t index = reg_addr_ / 4;
    if (index >= cells_.size() || cells_[index] != kErasedWord) {
      // Programming a non-erased cell is the canonical flash misuse.
      error_ = true;
      ++failed_op_count_;
      return;
    }
    cells_[index] = reg_data_;
    ++program_count_;
  }
}

}  // namespace esv::flash

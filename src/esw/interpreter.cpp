#include "esw/interpreter.hpp"

namespace esv::esw {

using minic::BinaryOp;
using minic::Expr;
using minic::RefKind;
using minic::UnaryOp;

Interpreter::Interpreter(const minic::Program& program,
                         const EswProgram& lowered, mem::AddressSpace& memory,
                         minic::InputProvider& inputs)
    : program_(program), lowered_(lowered), memory_(memory), inputs_(inputs) {
  reset();
}

void Interpreter::init_globals() {
  for (const auto& g : program_.globals) {
    for (std::uint32_t i = 0; i < g.words; ++i) {
      const std::int32_t v =
          i < g.init.size() ? g.init[i] : 0;
      memory_.write_word(g.address + i * 4, static_cast<std::uint32_t>(v));
    }
  }
}

void Interpreter::reset() {
  frames_.clear();
  steps_ = 0;
  init_globals();
  const minic::Function* main_fn = program_.find_function("main");
  push_frame(*main_fn, {}, /*result_slot=*/-1);
}

void Interpreter::push_frame(const minic::Function& fn,
                             const std::vector<std::uint32_t>& args,
                             int result_slot) {
  const LoweredFunction& lowered_fn = lowered_.function_of(fn);
  Frame frame;
  frame.fn = &lowered_fn;
  frame.slots.assign(static_cast<std::size_t>(lowered_fn.frame_slots), 0);
  for (std::size_t i = 0; i < args.size(); ++i) frame.slots[i] = args[i];
  frame.result_slot = result_slot;
  frames_.push_back(std::move(frame));
}

int Interpreter::current_line() const {
  if (frames_.empty()) return 0;
  const Frame& f = frames_.back();
  if (f.pc >= f.fn->ops.size()) return 0;
  return f.fn->ops[f.pc].line;
}

const std::string& Interpreter::current_function() const {
  if (frames_.empty()) return empty_name_;
  return frames_.back().fn->source->name;
}

std::uint32_t Interpreter::global_address(const std::string& name) const {
  const minic::GlobalVar* g = program_.find_global(name);
  if (g == nullptr) {
    throw std::invalid_argument("unknown global '" + name + "'");
  }
  return g->address;
}

std::uint32_t Interpreter::global(const std::string& name) const {
  return memory_.sctc_read_uint(global_address(name));
}

void Interpreter::set_global(const std::string& name, std::uint32_t value) {
  memory_.write_word(global_address(name), value);
}

std::uint64_t Interpreter::run(std::uint64_t max_steps) {
  std::uint64_t executed = 0;
  while (executed < max_steps && step()) ++executed;
  return executed;
}

bool Interpreter::step() {
  if (frames_.empty()) return false;
  Frame* frame = &frames_.back();

  // Structural jumps are free: resolve them before executing the step.
  while (frame->fn->ops[frame->pc].kind == EswOp::Kind::kJump) {
    frame->pc = frame->fn->ops[frame->pc].jump_true;
  }

  const EswOp& op = frame->fn->ops[frame->pc];
  ++steps_;

  switch (op.kind) {
    case EswOp::Kind::kSetFname: {
      memory_.write_word(
          program_.fname_address,
          static_cast<std::uint32_t>(op.callee->index + 1));
      ++frame->pc;
      break;
    }
    case EswOp::Kind::kEval: {
      const std::uint32_t value = eval(*op.expr, *frame);
      if (op.target != nullptr) store(*op.target, value, *frame);
      ++frame->pc;
      break;
    }
    case EswOp::Kind::kCondJump: {
      frame->pc = eval(*op.expr, *frame) != 0 ? op.jump_true : op.jump_false;
      break;
    }
    case EswOp::Kind::kSwitchJump: {
      const auto selector = static_cast<std::int64_t>(
          static_cast<std::int32_t>(eval(*op.expr, *frame)));
      std::size_t target = op.switch_default;
      for (const auto& entry : op.switch_targets) {
        if (entry.value == selector) {
          target = entry.target;
          break;
        }
      }
      frame->pc = target;
      break;
    }
    case EswOp::Kind::kCall: {
      std::vector<std::uint32_t> args;
      args.reserve(op.args.size());
      for (const Expr* arg : op.args) args.push_back(eval(*arg, *frame));
      ++frame->pc;  // continue after the call when the callee returns
      push_frame(*op.callee, args, op.result_slot);
      break;
    }
    case EswOp::Kind::kReturn: {
      const std::uint32_t value =
          op.expr != nullptr ? eval(*op.expr, *frame) : 0;
      const int result_slot = frame->result_slot;
      frames_.pop_back();
      if (!frames_.empty()) {
        if (result_slot >= 0) {
          frames_.back().slots[static_cast<std::size_t>(result_slot)] = value;
        }
        // Restore the caller's fname: the paper's instrumentation updates
        // fname "in each function context", so returning re-enters the
        // caller's context.
        memory_.write_word(
            program_.fname_address,
            static_cast<std::uint32_t>(
                frames_.back().fn->source->index + 1));
      }
      break;
    }
    case EswOp::Kind::kAssert: {
      if (eval(*op.expr, *frame) == 0) {
        throw AssertionFailure(op.line, steps_);
      }
      ++frame->pc;
      break;
    }
    case EswOp::Kind::kAssume: {
      // A violated assumption means the stimulus left the constrained
      // space: the run ends quietly (all frames unwound, finished()).
      if (eval(*op.expr, *frame) == 0) {
        frames_.clear();
        break;
      }
      ++frame->pc;
      break;
    }
    case EswOp::Kind::kJump:
    case EswOp::Kind::kHalt:
      // kJump handled above; kHalt never emitted.
      ++frame->pc;
      break;
  }

  // One statement == one device tick (the derived model's time base).
  memory_.tick_devices();
  return !frames_.empty();
}

std::uint32_t Interpreter::eval(const Expr& e, Frame& frame) {
  switch (e.kind) {
    case Expr::Kind::kIntLit:
    case Expr::Kind::kBoolLit:
      return static_cast<std::uint32_t>(e.value);
    case Expr::Kind::kVarRef:
      switch (e.ref) {
        case RefKind::kLocal:
          return frame.slots[static_cast<std::size_t>(e.slot)];
        case RefKind::kGlobal:
          return memory_.read_word(e.address);
        case RefKind::kConst:
          return static_cast<std::uint32_t>(e.value);
        case RefKind::kUnresolved:
          break;
      }
      throw RuntimeFault("unresolved variable '" + e.name + "'", e.line);
    case Expr::Kind::kIndex: {
      const std::uint32_t index = eval(*e.children[0], frame);
      return memory_.read_word(e.address + index * 4);
    }
    case Expr::Kind::kUnary: {
      const std::uint32_t v = eval(*e.children[0], frame);
      switch (e.unary_op) {
        case UnaryOp::kNot: return v == 0 ? 1u : 0u;
        case UnaryOp::kNeg: return static_cast<std::uint32_t>(-static_cast<std::int32_t>(v));
        case UnaryOp::kBitNot: return ~v;
      }
      return 0;
    }
    case Expr::Kind::kBinary: {
      // Short-circuit forms must not evaluate the right side eagerly.
      if (e.binary_op == BinaryOp::kLogicalAnd) {
        if (eval(*e.children[0], frame) == 0) return 0;
        return eval(*e.children[1], frame) != 0 ? 1u : 0u;
      }
      if (e.binary_op == BinaryOp::kLogicalOr) {
        if (eval(*e.children[0], frame) != 0) return 1;
        return eval(*e.children[1], frame) != 0 ? 1u : 0u;
      }
      const std::uint32_t a = eval(*e.children[0], frame);
      const std::uint32_t b = eval(*e.children[1], frame);
      const auto sa = static_cast<std::int32_t>(a);
      const auto sb = static_cast<std::int32_t>(b);
      switch (e.binary_op) {
        case BinaryOp::kMul: return a * b;
        case BinaryOp::kDiv:
          if (b == 0) throw RuntimeFault("division by zero", e.line);
          return static_cast<std::uint32_t>(sa / sb);
        case BinaryOp::kMod:
          if (b == 0) throw RuntimeFault("modulo by zero", e.line);
          return static_cast<std::uint32_t>(sa % sb);
        case BinaryOp::kAdd: return a + b;
        case BinaryOp::kSub: return a - b;
        case BinaryOp::kShl: return a << (b & 31u);
        case BinaryOp::kShr: return a >> (b & 31u);
        case BinaryOp::kLt: return sa < sb ? 1u : 0u;
        case BinaryOp::kLe: return sa <= sb ? 1u : 0u;
        case BinaryOp::kGt: return sa > sb ? 1u : 0u;
        case BinaryOp::kGe: return sa >= sb ? 1u : 0u;
        case BinaryOp::kEq: return a == b ? 1u : 0u;
        case BinaryOp::kNe: return a != b ? 1u : 0u;
        case BinaryOp::kBitAnd: return a & b;
        case BinaryOp::kBitXor: return a ^ b;
        case BinaryOp::kBitOr: return a | b;
        case BinaryOp::kLogicalAnd:
        case BinaryOp::kLogicalOr:
          break;  // handled above
      }
      return 0;
    }
    case Expr::Kind::kTernary:
      return eval(*e.children[0], frame) != 0 ? eval(*e.children[1], frame)
                                              : eval(*e.children[2], frame);
    case Expr::Kind::kMemRead:
      // Direct memory access through the virtual memory model.
      return memory_.read_word(eval(*e.children[0], frame));
    case Expr::Kind::kInput:
      return inputs_.input(e.input_id, e.name);
    case Expr::Kind::kCall:
      // Calls were extracted into kCall ops by the lowering pass.
      throw RuntimeFault("internal: call survived lowering", e.line);
  }
  throw RuntimeFault("internal: unknown expression", e.line);
}

void Interpreter::store(const Expr& target, std::uint32_t value,
                        Frame& frame) {
  switch (target.kind) {
    case Expr::Kind::kVarRef:
      if (target.ref == RefKind::kLocal) {
        frame.slots[static_cast<std::size_t>(target.slot)] = value;
        return;
      }
      if (target.ref == RefKind::kGlobal) {
        memory_.write_word(target.address, value);
        return;
      }
      break;
    case Expr::Kind::kIndex: {
      const std::uint32_t index = eval(*target.children[0], frame);
      memory_.write_word(target.address + index * 4, value);
      return;
    }
    case Expr::Kind::kMemRead:
      memory_.write_word(eval(*target.children[0], frame), value);
      return;
    default:
      break;
  }
  throw RuntimeFault("invalid store target", target.line);
}

}  // namespace esv::esw

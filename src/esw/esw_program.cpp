#include "esw/esw_program.hpp"

namespace esv::esw {

using minic::Expr;
using minic::Function;
using minic::Program;
using minic::Stmt;

namespace {

bool contains_call(const Expr& e) {
  if (e.kind == Expr::Kind::kCall) return true;
  for (const auto& child : e.children) {
    if (contains_call(*child)) return true;
  }
  return false;
}

class Lowerer {
 public:
  explicit Lowerer(const Program& program, EswProgram& out)
      : program_(program), out_(out) {}

  void run() {
    out_.source = &program_;
    out_.functions.resize(program_.functions.size());
    for (const auto& fn : program_.functions) {
      lower_function(*fn);
    }
  }

 private:
  std::size_t emit(EswOp op) {
    current_->ops.push_back(std::move(op));
    return current_->ops.size() - 1;
  }

  std::size_t next_index() const { return current_->ops.size(); }

  void lower_function(const Function& fn) {
    current_ = &out_.functions[static_cast<std::size_t>(fn.index)];
    current_->source = &fn;
    temp_base_ = fn.max_slots;
    temp_max_ = 0;
    break_stack_.clear();
    continue_stack_.clear();

    // Function-entry instrumentation: fname = FUNCTION_NAME.
    EswOp entry;
    entry.kind = EswOp::Kind::kSetFname;
    entry.line = fn.line;
    entry.callee = &fn;
    emit(std::move(entry));

    for (const auto& stmt : fn.body) lower_stmt(*stmt);

    // Implicit return for functions that fall off the end.
    EswOp ret;
    ret.kind = EswOp::Kind::kReturn;
    ret.line = fn.line;
    emit(std::move(ret));

    current_->frame_slots = fn.max_slots + temp_max_;
    current_ = nullptr;
  }

  // --- statements -------------------------------------------------------------

  void lower_stmt(const Stmt& s) {
    temp_next_ = 0;  // ANF temporaries are per-statement scratch
    switch (s.kind) {
      case Stmt::Kind::kBlock:
        for (const auto& child : s.body) lower_stmt(*child);
        return;
      case Stmt::Kind::kExpr: {
        EswOp op;
        op.kind = EswOp::Kind::kEval;
        op.line = s.line;
        if (s.expr->kind == Expr::Kind::kCall) {
          // A bare call statement: emit the call op directly (discarding the
          // result) instead of kCall + empty kEval.
          lower_call(*s.expr, /*result_slot=*/-1, s.line);
          return;
        }
        op.expr = lower_expr(*s.expr);
        emit(std::move(op));
        return;
      }
      case Stmt::Kind::kAssign: {
        // Plain `x = f(...)` stores the call result straight into a local.
        if (s.expr->kind == Expr::Kind::kCall &&
            s.target->kind == Expr::Kind::kVarRef &&
            s.target->ref == minic::RefKind::kLocal) {
          lower_call(*s.expr, s.target->slot, s.line);
          return;
        }
        EswOp op;
        op.kind = EswOp::Kind::kEval;
        op.line = s.line;
        op.expr = lower_expr(*s.expr);
        op.target = lower_expr(*s.target);
        emit(std::move(op));
        return;
      }
      case Stmt::Kind::kLocalDecl: {
        if (!s.expr) return;  // bare declaration: no executable effect
        EswOp op;
        op.kind = EswOp::Kind::kEval;
        op.line = s.line;
        op.expr = lower_expr(*s.expr);
        op.target = make_local_ref(s.slot, s.line);
        emit(std::move(op));
        return;
      }
      case Stmt::Kind::kIf: {
        EswOp branch;
        branch.kind = EswOp::Kind::kCondJump;
        branch.line = s.line;
        branch.expr = lower_expr(*s.expr);
        const std::size_t branch_at = emit(std::move(branch));
        current_->ops[branch_at].jump_true = next_index();
        for (const auto& child : s.body) lower_stmt(*child);
        if (s.else_body.empty()) {
          current_->ops[branch_at].jump_false = next_index();
        } else {
          EswOp skip;
          skip.kind = EswOp::Kind::kJump;
          skip.line = s.line;
          const std::size_t skip_at = emit(std::move(skip));
          current_->ops[branch_at].jump_false = next_index();
          for (const auto& child : s.else_body) lower_stmt(*child);
          current_->ops[skip_at].jump_true = next_index();
        }
        return;
      }
      case Stmt::Kind::kWhile: {
        const std::size_t cond_at = next_index();
        EswOp branch;
        branch.kind = EswOp::Kind::kCondJump;
        branch.line = s.line;
        branch.expr = lower_expr(*s.expr);
        const std::size_t branch_at = emit(std::move(branch));
        current_->ops[branch_at].jump_true = next_index();
        push_loop();
        for (const auto& child : s.body) lower_stmt(*child);
        EswOp back;
        back.kind = EswOp::Kind::kJump;
        back.line = s.line;
        back.jump_true = cond_at;
        emit(std::move(back));
        current_->ops[branch_at].jump_false = next_index();
        pop_loop(next_index(), cond_at);
        return;
      }
      case Stmt::Kind::kDoWhile: {
        const std::size_t body_at = next_index();
        push_loop();
        for (const auto& child : s.body) lower_stmt(*child);
        const std::size_t cond_at = next_index();
        temp_next_ = 0;
        EswOp branch;
        branch.kind = EswOp::Kind::kCondJump;
        branch.line = s.line;
        branch.expr = lower_expr(*s.expr);
        const std::size_t branch_at = emit(std::move(branch));
        current_->ops[branch_at].jump_true = body_at;
        current_->ops[branch_at].jump_false = next_index();
        pop_loop(next_index(), cond_at);
        return;
      }
      case Stmt::Kind::kFor: {
        if (s.init) lower_stmt(*s.init);
        const std::size_t cond_at = next_index();
        std::size_t branch_at = 0;
        bool has_cond = s.expr != nullptr;
        if (has_cond) {
          temp_next_ = 0;
          EswOp branch;
          branch.kind = EswOp::Kind::kCondJump;
          branch.line = s.line;
          branch.expr = lower_expr(*s.expr);
          branch_at = emit(std::move(branch));
          current_->ops[branch_at].jump_true = next_index();
        }
        push_loop();
        for (const auto& child : s.body) lower_stmt(*child);
        const std::size_t step_at = next_index();
        if (s.step) lower_stmt(*s.step);
        EswOp back;
        back.kind = EswOp::Kind::kJump;
        back.line = s.line;
        back.jump_true = cond_at;
        emit(std::move(back));
        if (has_cond) current_->ops[branch_at].jump_false = next_index();
        pop_loop(next_index(), step_at);
        return;
      }
      case Stmt::Kind::kSwitch: {
        EswOp sel;
        sel.kind = EswOp::Kind::kSwitchJump;
        sel.line = s.line;
        sel.expr = lower_expr(*s.expr);
        const std::size_t sel_at = emit(std::move(sel));
        break_stack_.emplace_back();  // switch is a break target
        std::vector<std::size_t> case_starts;
        std::size_t default_start = 0;
        bool has_default = false;
        for (const auto& c : s.cases) {
          case_starts.push_back(next_index());
          if (c.is_default) {
            has_default = true;
            default_start = next_index();
          }
          for (const auto& child : c.body) lower_stmt(*child);
          // fallthrough into the next case body, as in C
        }
        const std::size_t end = next_index();
        EswOp& sel_op = current_->ops[sel_at];
        for (std::size_t i = 0; i < s.cases.size(); ++i) {
          if (!s.cases[i].is_default) {
            sel_op.switch_targets.push_back(
                EswOp::SwitchTarget{s.cases[i].value, case_starts[i]});
          }
        }
        sel_op.switch_default = has_default ? default_start : end;
        for (std::size_t patch : break_stack_.back()) {
          current_->ops[patch].jump_true = end;
        }
        break_stack_.pop_back();
        return;
      }
      case Stmt::Kind::kReturn: {
        EswOp op;
        op.kind = EswOp::Kind::kReturn;
        op.line = s.line;
        if (s.expr) op.expr = lower_expr(*s.expr);
        emit(std::move(op));
        return;
      }
      case Stmt::Kind::kBreak: {
        if (break_stack_.empty()) {
          throw LoweringError("break without target", s.line);
        }
        EswOp op;
        op.kind = EswOp::Kind::kJump;
        op.line = s.line;
        break_stack_.back().push_back(emit(std::move(op)));
        return;
      }
      case Stmt::Kind::kContinue: {
        if (continue_stack_.empty()) {
          throw LoweringError("continue without target", s.line);
        }
        EswOp op;
        op.kind = EswOp::Kind::kJump;
        op.line = s.line;
        continue_stack_.back().push_back(emit(std::move(op)));
        return;
      }
      case Stmt::Kind::kAssert: {
        EswOp op;
        op.kind = EswOp::Kind::kAssert;
        op.line = s.line;
        op.expr = lower_expr(*s.expr);
        emit(std::move(op));
        return;
      }
      case Stmt::Kind::kAssume: {
        EswOp op;
        op.kind = EswOp::Kind::kAssume;
        op.line = s.line;
        op.expr = lower_expr(*s.expr);
        emit(std::move(op));
        return;
      }
    }
  }

  void push_loop() {
    break_stack_.emplace_back();
    continue_stack_.emplace_back();
  }

  void pop_loop(std::size_t break_target, std::size_t continue_target) {
    for (std::size_t patch : break_stack_.back()) {
      current_->ops[patch].jump_true = break_target;
    }
    break_stack_.pop_back();
    for (std::size_t patch : continue_stack_.back()) {
      current_->ops[patch].jump_true = continue_target;
    }
    continue_stack_.pop_back();
  }

  // --- expressions / ANF call extraction ---------------------------------------

  void lower_call(const Expr& call, int result_slot, int line) {
    EswOp op;
    op.kind = EswOp::Kind::kCall;
    op.line = line;
    op.callee = call.callee;
    op.result_slot = result_slot;
    for (const auto& arg : call.children) {
      op.args.push_back(lower_expr(*arg));
    }
    emit(std::move(op));
  }

  /// Returns an expression equivalent to `e` in which every call has been
  /// hoisted into a preceding kCall op writing an ANF temporary.
  const Expr* lower_expr(const Expr& e) {
    if (!contains_call(e)) return &e;
    std::unique_ptr<Expr> owned = rewrite(e);
    const Expr* ptr = owned.get();
    out_.owned_exprs.push_back(std::move(owned));
    return ptr;
  }

  std::unique_ptr<Expr> rewrite(const Expr& e) {
    if (e.kind == Expr::Kind::kCall) {
      const int slot = alloc_temp();
      EswOp op;
      op.kind = EswOp::Kind::kCall;
      op.line = e.line;
      op.callee = e.callee;
      op.result_slot = slot;
      for (const auto& arg : e.children) {
        op.args.push_back(lower_expr(*arg));
      }
      emit(std::move(op));
      auto ref = std::make_unique<Expr>();
      ref->kind = Expr::Kind::kVarRef;
      ref->line = e.line;
      ref->name = "$anf_tmp";
      ref->ref = minic::RefKind::kLocal;
      ref->slot = slot;
      return ref;
    }
    if (e.kind == Expr::Kind::kBinary &&
        (e.binary_op == minic::BinaryOp::kLogicalAnd ||
         e.binary_op == minic::BinaryOp::kLogicalOr) &&
        contains_call(*e.children[1])) {
      throw LoweringError(
          "call on the short-circuited side of &&/|| cannot be derived; "
          "rewrite as an if-statement",
          e.line);
    }
    if (e.kind == Expr::Kind::kTernary &&
        (contains_call(*e.children[1]) || contains_call(*e.children[2]))) {
      throw LoweringError(
          "call inside ?: branch cannot be derived; rewrite as an "
          "if-statement",
          e.line);
    }
    auto copy = std::make_unique<Expr>();
    copy->kind = e.kind;
    copy->line = e.line;
    copy->value = e.value;
    copy->name = e.name;
    copy->unary_op = e.unary_op;
    copy->binary_op = e.binary_op;
    copy->ref = e.ref;
    copy->address = e.address;
    copy->slot = e.slot;
    copy->callee = e.callee;
    copy->input_id = e.input_id;
    for (const auto& child : e.children) {
      copy->children.push_back(rewrite(*child));
    }
    return copy;
  }

  int alloc_temp() {
    const int slot = temp_base_ + temp_next_++;
    temp_max_ = std::max(temp_max_, temp_next_);
    return slot;
  }

  const Expr* make_local_ref(int slot, int line) {
    auto ref = std::make_unique<Expr>();
    ref->kind = Expr::Kind::kVarRef;
    ref->line = line;
    ref->ref = minic::RefKind::kLocal;
    ref->slot = slot;
    const Expr* ptr = ref.get();
    out_.owned_exprs.push_back(std::move(ref));
    return ptr;
  }

  const Program& program_;
  EswProgram& out_;
  LoweredFunction* current_ = nullptr;
  int temp_base_ = 0;
  int temp_next_ = 0;
  int temp_max_ = 0;
  std::vector<std::vector<std::size_t>> break_stack_;
  std::vector<std::vector<std::size_t>> continue_stack_;
};

}  // namespace

std::size_t EswProgram::op_count() const {
  std::size_t n = 0;
  for (const auto& fn : functions) n += fn.ops.size();
  return n;
}

EswProgram lower_program(const Program& program) {
  EswProgram out;
  Lowerer(program, out).run();
  return out;
}

}  // namespace esv::esw

// C2SystemC derivation: statement-level lowering of a mini-C program.
//
// This is the translator of the paper's Fig. 5. The derived model is "as
// precise as the original C program": every C statement becomes exactly one
// executable operation, and the program-counter event fires after each one
// (the derived model's timing reference — one statement == one temporal
// step). Control flow is made explicit with (step-free) jumps, condition
// evaluations are their own operations, and every function body is prefixed
// with the `fname = FUNCTION_NAME` instrumentation op (Fig. 5 lines 11-12).
//
// Calls nested in expressions are extracted into A-normal form (tmp = f(...))
// so that the callee's statements can be stepped individually, which the
// per-statement event requires. Calls in the right-hand side of && / || or
// inside ?: branches would change evaluation semantics under this extraction
// and are rejected (LoweringError); write them as explicit if-statements.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "minic/ast.hpp"

namespace esv::esw {

class LoweringError : public std::runtime_error {
 public:
  LoweringError(const std::string& message, int line)
      : std::runtime_error("line " + std::to_string(line) + ": " + message) {}
};

struct EswOp {
  enum class Kind {
    kEval,       // evaluate expr; if target != null, store into it
    kCondJump,   // pc = expr ? jump_true : jump_false
    kJump,       // structural jump (consumes no temporal step)
    kSwitchJump, // evaluate expr, jump to matching case / default
    kCall,       // call callee(args), result into result_slot (or discarded)
    kReturn,     // return expr (optional)
    kAssert,     // check expr; records / raises assertion failure
    kAssume,     // verification assumption: ends the run if violated
    kSetFname,   // function-entry instrumentation: fname = function id
    kHalt,       // end of main
  };

  Kind kind;
  int line = 0;

  const minic::Expr* expr = nullptr;    // condition / value / selector
  const minic::Expr* target = nullptr;  // kEval lvalue (VarRef/Index/MemRead)
  std::size_t jump_true = 0;
  std::size_t jump_false = 0;
  struct SwitchTarget {
    std::int64_t value;
    std::size_t target;
  };
  std::vector<SwitchTarget> switch_targets;  // kSwitchJump
  std::size_t switch_default = 0;

  const minic::Function* callee = nullptr;      // kCall
  std::vector<const minic::Expr*> args;         // kCall
  int result_slot = -1;                         // kCall: -1 discards
};

struct LoweredFunction {
  const minic::Function* source = nullptr;
  std::vector<EswOp> ops;
  /// Frame size: params + locals + ANF temporaries.
  int frame_slots = 0;
};

/// The whole derived model ("ESW_SC class"): one lowered body per function.
struct EswProgram {
  const minic::Program* source = nullptr;
  std::vector<LoweredFunction> functions;  // indexed by Function::index
  /// Expressions synthesized during lowering (ANF temps); keeps them alive.
  std::vector<std::unique_ptr<minic::Expr>> owned_exprs;

  const LoweredFunction& function_of(const minic::Function& fn) const {
    return functions[static_cast<std::size_t>(fn.index)];
  }
  /// Total number of statement-level ops (diagnostics).
  std::size_t op_count() const;
};

/// Runs the C2SystemC translation on a resolved program.
EswProgram lower_program(const minic::Program& program);

}  // namespace esv::esw

// Executor for the derived ESW model.
//
// Runs the lowered statement program one operation per step(). Globals live
// at their sema-assigned addresses inside an AddressSpace (the virtual
// memory model), so the SCTC observes variables exactly as it does on the
// microprocessor — by address. Locals and ANF temporaries live in frames.
//
// One step() == one executed statement == one program-counter event in the
// derived model. Structural jumps are free.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "esw/esw_program.hpp"
#include "mem/address_space.hpp"
#include "minic/io.hpp"

namespace esv::esw {

/// A failed `assert(e)` in the software under test.
class AssertionFailure : public std::runtime_error {
 public:
  AssertionFailure(int line, std::uint64_t step)
      : std::runtime_error("assertion failed at line " + std::to_string(line) +
                           " (step " + std::to_string(step) + ")"),
        line_(line),
        step_(step) {}
  int line() const { return line_; }
  std::uint64_t step() const { return step_; }

 private:
  int line_;
  std::uint64_t step_;
};

/// Arithmetic faults (division by zero) in the software under test.
class RuntimeFault : public std::runtime_error {
 public:
  RuntimeFault(const std::string& what, int line)
      : std::runtime_error("line " + std::to_string(line) + ": " + what) {}
};

class Interpreter {
 public:
  /// `program` and `lowered` must outlive the interpreter. Globals are
  /// initialized into `memory` on construction (and again on reset()).
  Interpreter(const minic::Program& program, const EswProgram& lowered,
              mem::AddressSpace& memory,
              minic::InputProvider& inputs);

  /// Executes one statement of the software. Returns false once main has
  /// returned (further calls keep returning false). Mapped devices are
  /// ticked once per executed statement.
  bool step();

  /// Runs at most `max_steps` more statements; returns the number executed.
  std::uint64_t run(std::uint64_t max_steps);

  bool finished() const { return frames_.empty(); }
  std::uint64_t steps_executed() const { return steps_; }

  /// Restarts main from scratch; re-initializes globals.
  void reset();

  /// Value of a global variable (reads the virtual memory model).
  std::uint32_t global(const std::string& name) const;
  void set_global(const std::string& name, std::uint32_t value);

  /// Line of the next statement to execute (0 when finished).
  int current_line() const;

  /// Name of the function currently executing ("" when finished).
  const std::string& current_function() const;

  mem::AddressSpace& memory() { return memory_; }

 private:
  struct Frame {
    const LoweredFunction* fn;
    std::size_t pc = 0;
    std::vector<std::uint32_t> slots;
    int result_slot = -1;  // slot in the CALLER frame; -1 discards
  };

  void push_frame(const minic::Function& fn,
                  const std::vector<std::uint32_t>& args, int result_slot);
  std::uint32_t eval(const minic::Expr& e, Frame& frame);
  void store(const minic::Expr& target, std::uint32_t value, Frame& frame);
  void init_globals();
  std::uint32_t global_address(const std::string& name) const;

  const minic::Program& program_;
  const EswProgram& lowered_;
  mem::AddressSpace& memory_;
  minic::InputProvider& inputs_;
  std::vector<Frame> frames_;
  std::uint64_t steps_ = 0;
  std::string empty_name_;
};

}  // namespace esv::esw

#include "esw/esw_model.hpp"

namespace esv::esw {

EswModel::EswModel(sim::Simulation& sim, std::string name,
                   const minic::Program& program, const EswProgram& lowered,
                   mem::AddressSpace& memory, minic::InputProvider& inputs,
                   sim::Time statement_time)
    : sim::Module(sim, std::move(name)),
      interpreter_(program, lowered, memory, inputs),
      pc_event_(sim, sub_name("esw_pc_event")),
      statement_time_(statement_time) {
  sim_.spawn(sub_name("esw_sc_thread"), run());
}

sim::Task EswModel::run() {
  while (interpreter_.step()) {
    pc_event_.notify();
    co_await sim_.delay(statement_time_);
  }
  // Final event so monitors observe the state after the last statement.
  pc_event_.notify();
}

std::uint64_t run_standalone(Interpreter& interpreter,
                             sctc::TemporalChecker& checker,
                             std::uint64_t max_steps) {
  std::uint64_t executed = 0;
  while (executed < max_steps) {
    if (!interpreter.step()) break;
    ++executed;
    checker.step_all();
    if (checker.all_decided()) break;
  }
  return executed;
}

}  // namespace esv::esw

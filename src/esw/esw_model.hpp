// EswModel: the derived SystemC model (the paper's ESW_SC class).
//
// Wraps the interpreter in a thread process. After every executed statement
// the model notifies `esw_pc_event` — the derived model's timing reference —
// and suspends for one statement-time quantum, so an SCTC bound to the event
// advances one temporal step per statement (paper Fig. 5, lines 13-15).
//
// For maximum-speed experiments that do not need kernel interleaving, use
// run_standalone() below instead: same semantics, no scheduler.
#pragma once

#include <cstdint>
#include <string>

#include "esw/interpreter.hpp"
#include "sctc/checker.hpp"
#include "sim/module.hpp"

namespace esv::esw {

class EswModel : public sim::Module {
 public:
  /// Each statement consumes `statement_time` of simulated time (default
  /// 1 ns; any non-zero quantum works since the pc event, not the clock, is
  /// the temporal reference).
  EswModel(sim::Simulation& sim, std::string name,
           const minic::Program& program, const EswProgram& lowered,
           mem::AddressSpace& memory, minic::InputProvider& inputs,
           sim::Time statement_time = sim::Time::ns(1));

  /// The program-counter event: fires after every executed statement.
  sim::Event& pc_event() { return pc_event_; }

  Interpreter& interpreter() { return interpreter_; }
  const Interpreter& interpreter() const { return interpreter_; }
  bool finished() const { return interpreter_.finished(); }

 private:
  sim::Task run();

  Interpreter interpreter_;
  sim::Event pc_event_;
  sim::Time statement_time_;
};

/// Kernel-free execution: steps the interpreter and the checker in lockstep
/// until the program ends, every property is decided, or `max_steps` is
/// reached. Returns the number of statements executed.
std::uint64_t run_standalone(Interpreter& interpreter,
                             sctc::TemporalChecker& checker,
                             std::uint64_t max_steps);

}  // namespace esv::esw

// Minimal leveled logging. Off by default so tests and benches stay quiet;
// enable with Logger::set_level(Level::kDebug) when debugging a simulation.
#pragma once

#include <sstream>
#include <string>

namespace esv::common {

enum class LogLevel { kSilent = 0, kError, kWarn, kInfo, kDebug };

class Logger {
 public:
  static void set_level(LogLevel level);
  static LogLevel level();

  /// Emits one line to stderr if `level` is enabled.
  static void log(LogLevel level, const std::string& message);
};

#define ESV_LOG(level, expr)                                                  \
  do {                                                                        \
    if (static_cast<int>(::esv::common::Logger::level()) >=                   \
        static_cast<int>(level)) {                                            \
      std::ostringstream esv_log_stream_;                                     \
      esv_log_stream_ << expr;                                                \
      ::esv::common::Logger::log(level, esv_log_stream_.str());               \
    }                                                                         \
  } while (false)

#define ESV_DEBUG(expr) ESV_LOG(::esv::common::LogLevel::kDebug, expr)
#define ESV_INFO(expr) ESV_LOG(::esv::common::LogLevel::kInfo, expr)
#define ESV_WARN(expr) ESV_LOG(::esv::common::LogLevel::kWarn, expr)
#define ESV_ERROR(expr) ESV_LOG(::esv::common::LogLevel::kError, expr)

}  // namespace esv::common

#include "common/logging.hpp"

#include <iostream>

namespace esv::common {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kSilent: return "";
  }
  return "";
}
}  // namespace

void Logger::set_level(LogLevel level) { g_level = level; }
LogLevel Logger::level() { return g_level; }

void Logger::log(LogLevel level, const std::string& message) {
  if (static_cast<int>(g_level) >= static_cast<int>(level)) {
    std::cerr << "[" << level_tag(level) << "] " << message << "\n";
  }
}

}  // namespace esv::common

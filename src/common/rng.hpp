// Deterministic random number generation for constrained-random stimulus.
//
// All randomness in the library flows through Rng so that every experiment is
// reproducible from a single 64-bit seed. The generator is xoshiro256**, which
// is small, fast, and has no observable bias for the value ranges we draw.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <vector>

namespace esv::common {

/// Deterministic pseudo-random generator (xoshiro256**).
class Rng {
 public:
  /// Seeds the generator. Two Rng instances built from the same seed produce
  /// identical streams on every platform.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform value in the inclusive range [lo, hi].
  std::int64_t next_in_range(std::int64_t lo, std::int64_t hi);

  /// True with probability num/den (e.g. next_chance(1, 100) == 1%).
  bool next_chance(std::uint32_t num, std::uint32_t den);

  /// Picks an index in [0, weights.size()) with probability proportional to
  /// the weight at that index. At least one weight must be non-zero.
  std::size_t next_weighted(std::span<const std::uint32_t> weights);

  /// Convenience overload for brace-initialized weight lists.
  std::size_t next_weighted(std::initializer_list<std::uint32_t> weights);

 private:
  std::uint64_t state_[4];
};

}  // namespace esv::common

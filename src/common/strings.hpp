// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace esv::common {

/// Joins the elements of `parts` with `sep` between them.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` at every occurrence of `sep` (single character). Empty
/// fields are preserved.
std::vector<std::string> split(std::string_view text, char sep);

/// Strips leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Renders a byte count / large integer with thousands separators ("12,345").
std::string with_thousands(std::uint64_t value);

}  // namespace esv::common

#include "common/rng.hpp"

namespace esv::common {

namespace {

// splitmix64 is the recommended seeder for xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: bound must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = bound * ((~std::uint64_t{0}) / bound);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % bound;
}

std::int64_t Rng::next_in_range(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::next_in_range: lo > hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 means the full 64-bit range.
  const std::uint64_t off = (span == 0) ? next_u64() : next_below(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + off);
}

bool Rng::next_chance(std::uint32_t num, std::uint32_t den) {
  if (den == 0) throw std::invalid_argument("Rng::next_chance: den must be > 0");
  if (num >= den) return true;
  return next_below(den) < num;
}

std::size_t Rng::next_weighted(std::span<const std::uint32_t> weights) {
  std::uint64_t total = 0;
  for (auto w : weights) total += w;
  if (total == 0) throw std::invalid_argument("Rng::next_weighted: all weights zero");
  std::uint64_t pick = next_below(total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (pick < weights[i]) return i;
    pick -= weights[i];
  }
  return weights.size() - 1;  // unreachable; silences the compiler
}

std::size_t Rng::next_weighted(std::initializer_list<std::uint32_t> weights) {
  const std::vector<std::uint32_t> v(weights);
  return next_weighted(std::span<const std::uint32_t>(v));
}

}  // namespace esv::common

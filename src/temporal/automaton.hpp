// Eager Accept/Reject automaton synthesis.
//
// The paper's SCTC "synthesis engine" translates a property into an
// Accept/Reject automaton represented in an Intermediate Language (IL) and
// then into an executable SystemC monitor. We reproduce that pipeline: the
// automaton is built by exhaustive formula progression — states are the
// distinct pending obligations reachable from the property, the alphabet is
// the set of valuations of the property's propositions, and two distinguished
// sinks mark validation (accept) and violation (reject).
//
// Synthesis cost grows with the time bounds in the property (every F[b]
// contributes up to b+1 obligations), which is exactly the effect the paper
// reports for its TB-10000 experiments ("V.T. includes large AR-automaton
// generation time"); bench_ablation_ar_synthesis measures it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "temporal/formula.hpp"
#include "temporal/monitor.hpp"

namespace esv::temporal {

struct SynthesisOptions {
  /// Hard cap on the number of automaton states; synthesis throws
  /// SynthesisLimitError beyond it.
  std::size_t max_states = 2'000'000;
  /// Maximum distinct propositions (the alphabet is 2^n assignments).
  std::size_t max_props = 16;
};

class SynthesisLimitError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ArAutomaton {
 public:
  struct State {
    FormulaRef obligation;           // the pending formula this state encodes
    Verdict verdict;                 // verdict when the run is in this state
    std::vector<std::uint32_t> next; // indexed by assignment (2^prop_count)
  };

  const std::vector<State>& states() const { return states_; }
  std::uint32_t initial() const { return initial_; }
  /// Proposition indices, ascending; assignment bit i is the value of
  /// prop_indices()[i].
  const std::vector<int>& prop_indices() const { return prop_indices_; }
  std::size_t state_count() const { return states_.size(); }
  std::size_t assignment_count() const {
    return std::size_t{1} << prop_indices_.size();
  }

  /// Computes the assignment index for the given valuation.
  std::size_t assignment_of(const PropValuation& values) const;

  /// Renders the automaton in the textual Intermediate Language (IL).
  std::string to_il(const FormulaFactory& factory,
                    const std::string& name = "property") const;

 private:
  friend ArAutomaton synthesize(FormulaFactory&, FormulaRef,
                                const SynthesisOptions&);
  std::vector<State> states_;
  std::uint32_t initial_ = 0;
  std::vector<int> prop_indices_;
};

/// Builds the AR-automaton for `formula`. Deterministic: the same formula
/// always yields the same automaton.
ArAutomaton synthesize(FormulaFactory& factory, FormulaRef formula,
                       const SynthesisOptions& options = {});

/// Executable monitor over a synthesized automaton. Equivalent verdict
/// behaviour to ProgressionMonitor, but each step is a table lookup.
class AutomatonMonitor {
 public:
  explicit AutomatonMonitor(const ArAutomaton& automaton);

  Verdict step(const PropValuation& values);
  Verdict verdict() const;
  std::uint32_t state() const { return state_; }
  std::uint64_t steps() const { return steps_; }
  void reset();

 private:
  const ArAutomaton& automaton_;
  std::uint32_t state_;
  std::uint64_t steps_ = 0;
};

}  // namespace esv::temporal

// Property monitors.
//
// A monitor consumes one proposition valuation per temporal step and reports
// a three-valued verdict, exactly like the paper's AR-automata: kValidated
// (the property is satisfied on every extension of the trace seen so far),
// kViolated (falsified on every extension), or kPending (no decision yet).
//
// ProgressionMonitor evaluates by formula rewriting (each step progresses the
// pending obligation); it is the lazy, build-free mode. The eager mode — an
// explicitly synthesized AR-automaton — lives in automaton.hpp; both produce
// identical verdicts (asserted by property tests).
#pragma once

#include <cstdint>
#include <string>

#include "temporal/formula.hpp"

namespace esv::temporal {

enum class Verdict : std::uint8_t { kPending, kValidated, kViolated };

/// Human-readable verdict name ("pending" / "validated" / "violated").
const char* to_string(Verdict v);

class ProgressionMonitor {
 public:
  /// `factory` must own `formula` and outlive the monitor.
  ProgressionMonitor(FormulaFactory& factory, FormulaRef formula);

  /// Consumes one step of the trace. Returns the verdict after the step.
  /// Further steps after a final verdict are no-ops.
  Verdict step(const PropValuation& values);

  Verdict verdict() const { return verdict_; }
  /// The pending obligation (kTrue/kFalse once decided).
  FormulaRef current() const { return current_; }
  FormulaRef property() const { return property_; }
  std::uint64_t steps() const { return steps_; }

  /// Finite-trace verdict if the trace ends now: resolves a pending
  /// obligation with empty-suffix semantics (strong operators fail, weak
  /// operators hold). Does not change the monitor state.
  Verdict verdict_at_end() const;

  /// Restarts monitoring from the original property.
  void reset();

 private:
  FormulaFactory& factory_;
  FormulaRef property_;
  FormulaRef current_;
  Verdict verdict_ = Verdict::kPending;
  std::uint64_t steps_ = 0;
};

}  // namespace esv::temporal

#include "temporal/formula.hpp"

#include <algorithm>
#include <stdexcept>

namespace esv::temporal {

namespace {

std::size_t hash_combine(std::size_t seed, std::size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

std::size_t structural_hash(Op op, const std::string& prop_name,
                            const std::vector<FormulaRef>& operands,
                            std::optional<std::uint32_t> bound) {
  std::size_t h = static_cast<std::size_t>(op) * 0x100000001b3ULL;
  h = hash_combine(h, std::hash<std::string>{}(prop_name));
  for (FormulaRef f : operands) h = hash_combine(h, f->id());
  h = hash_combine(h, bound ? (*bound + 1) : 0);
  return h;
}

bool structurally_equal(const Formula& node, Op op, const std::string& prop_name,
                        const std::vector<FormulaRef>& operands,
                        std::optional<std::uint32_t> bound) {
  if (node.op() != op || node.bound() != bound) return false;
  if (node.prop_name() != prop_name) return false;
  const auto ops = node.operands();
  if (ops.size() != operands.size()) return false;
  for (std::size_t i = 0; i < operands.size(); ++i) {
    if (ops[i] != operands[i]) return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// FormulaFactory

FormulaFactory::FormulaFactory() {
  Formula t;
  t.op_ = Op::kTrue;
  true_ = intern(std::move(t));
  Formula f;
  f.op_ = Op::kFalse;
  false_ = intern(std::move(f));
}

FormulaFactory::~FormulaFactory() = default;

FormulaRef FormulaFactory::intern(Formula node) {
  const std::size_t h =
      structural_hash(node.op_, node.prop_name_, node.operands_, node.bound_);
  auto& bucket = buckets_[h];
  for (FormulaRef existing : bucket) {
    if (structurally_equal(*existing, node.op_, node.prop_name_,
                           node.operands_, node.bound_)) {
      return existing;
    }
  }
  node.id_ = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(std::make_unique<Formula>(std::move(node)));
  FormulaRef ref = nodes_.back().get();
  bucket.push_back(ref);
  return ref;
}

FormulaRef FormulaFactory::prop(const std::string& name) {
  if (name.empty()) throw std::invalid_argument("prop: empty name");
  auto it = props_.find(name);
  if (it != props_.end()) return it->second;
  Formula node;
  node.op_ = Op::kProp;
  node.prop_name_ = name;
  node.prop_index_ = static_cast<int>(props_by_index_.size());
  FormulaRef ref = intern(std::move(node));
  props_.emplace(name, ref);
  props_by_index_.push_back(ref);
  return ref;
}

const std::string& FormulaFactory::prop_name(int index) const {
  return props_by_index_.at(static_cast<std::size_t>(index))->prop_name();
}

FormulaRef FormulaFactory::not_(FormulaRef f) {
  if (f->op() == Op::kTrue) return false_;
  if (f->op() == Op::kFalse) return true_;
  if (f->op() == Op::kNot) return f->operands()[0];  // double negation
  Formula node;
  node.op_ = Op::kNot;
  node.operands_ = {f};
  return intern(std::move(node));
}

FormulaRef FormulaFactory::and_(std::vector<FormulaRef> fs) {
  // Flatten nested conjunctions, drop `true`, fold `false`.
  std::vector<FormulaRef> flat;
  for (FormulaRef f : fs) {
    if (f->op() == Op::kFalse) return false_;
    if (f->op() == Op::kTrue) continue;
    if (f->op() == Op::kAnd) {
      for (FormulaRef g : f->operands()) flat.push_back(g);
    } else {
      flat.push_back(f);
    }
  }
  merge_bounded_operators(flat, /*conjunction=*/true);
  // Canonical order + idempotence.
  std::sort(flat.begin(), flat.end(),
            [](FormulaRef a, FormulaRef b) { return a->id() < b->id(); });
  flat.erase(std::unique(flat.begin(), flat.end()), flat.end());
  // Complement detection: f && !f == false.
  for (FormulaRef f : flat) {
    if (f->op() == Op::kNot) {
      FormulaRef pos = f->operands()[0];
      if (std::binary_search(flat.begin(), flat.end(), pos,
                             [](FormulaRef a, FormulaRef b) {
                               return a->id() < b->id();
                             })) {
        return false_;
      }
    }
  }
  if (flat.empty()) return true_;
  if (flat.size() == 1) return flat[0];
  Formula node;
  node.op_ = Op::kAnd;
  node.operands_ = std::move(flat);
  return intern(std::move(node));
}

FormulaRef FormulaFactory::or_(std::vector<FormulaRef> fs) {
  std::vector<FormulaRef> flat;
  for (FormulaRef f : fs) {
    if (f->op() == Op::kTrue) return true_;
    if (f->op() == Op::kFalse) continue;
    if (f->op() == Op::kOr) {
      for (FormulaRef g : f->operands()) flat.push_back(g);
    } else {
      flat.push_back(f);
    }
  }
  merge_bounded_operators(flat, /*conjunction=*/false);
  std::sort(flat.begin(), flat.end(),
            [](FormulaRef a, FormulaRef b) { return a->id() < b->id(); });
  flat.erase(std::unique(flat.begin(), flat.end()), flat.end());
  for (FormulaRef f : flat) {
    if (f->op() == Op::kNot) {
      FormulaRef pos = f->operands()[0];
      if (std::binary_search(flat.begin(), flat.end(), pos,
                             [](FormulaRef a, FormulaRef b) {
                               return a->id() < b->id();
                             })) {
        return true_;
      }
    }
  }
  if (flat.empty()) return false_;
  if (flat.size() == 1) return flat[0];
  Formula node;
  node.op_ = Op::kOr;
  node.operands_ = std::move(flat);
  return intern(std::move(node));
}

void FormulaFactory::merge_bounded_operators(std::vector<FormulaRef>& operands,
                                             bool conjunction) {
  // Group operands of the form OP[bound](args...) by (OP, args). For F and U
  // a smaller bound is the *stronger* formula; for G and R a larger bound is
  // stronger (with "no bound" strongest of all). In a conjunction the
  // stronger one subsumes the weaker; in a disjunction the weaker wins.
  struct GroupKey {
    Op op;
    FormulaRef first;
    FormulaRef second;
    bool operator==(const GroupKey&) const = default;
  };
  struct GroupKeyHash {
    std::size_t operator()(const GroupKey& k) const {
      std::size_t h = static_cast<std::size_t>(k.op);
      h = hash_combine(h, reinterpret_cast<std::size_t>(k.first));
      h = hash_combine(h, reinterpret_cast<std::size_t>(k.second));
      return h;
    }
  };

  std::unordered_map<GroupKey, std::size_t, GroupKeyHash> group_pos;
  std::vector<FormulaRef> merged;
  merged.reserve(operands.size());
  for (FormulaRef f : operands) {
    const Op op = f->op();
    const bool mergeable = op == Op::kEventually || op == Op::kAlways ||
                           op == Op::kUntil || op == Op::kRelease;
    if (!mergeable) {
      merged.push_back(f);
      continue;
    }
    const auto ops = f->operands();
    GroupKey key{op, ops[0], ops.size() > 1 ? ops[1] : nullptr};
    auto [it, inserted] = group_pos.emplace(key, merged.size());
    if (inserted) {
      merged.push_back(f);
      continue;
    }
    FormulaRef other = merged[it->second];
    // "No bound" acts as +infinity.
    const auto as_inf = [](std::optional<std::uint32_t> b) {
      return b ? static_cast<std::uint64_t>(*b)
               : ~std::uint64_t{0};
    };
    const std::uint64_t bf = as_inf(f->bound());
    const std::uint64_t bo = as_inf(other->bound());
    // Strength direction: smaller bound is stronger for F/U, weaker for G/R.
    const bool smaller_is_stronger = op == Op::kEventually || op == Op::kUntil;
    const bool keep_f = conjunction == smaller_is_stronger ? bf < bo : bf > bo;
    if (keep_f) merged[it->second] = f;
  }
  operands = std::move(merged);
}

FormulaRef FormulaFactory::iff(FormulaRef a, FormulaRef b) {
  return or_(and_(a, b), and_(not_(a), not_(b)));
}

FormulaRef FormulaFactory::next(FormulaRef f, std::uint32_t steps) {
  if (steps == 0) return f;
  if (f->is_constant()) return f;  // X c == c under progression semantics
  if (f->op() == Op::kNext) {
    steps += f->bound().value();
    f = f->operands()[0];
  }
  Formula node;
  node.op_ = Op::kNext;
  node.operands_ = {f};
  node.bound_ = steps;
  return intern(std::move(node));
}

FormulaRef FormulaFactory::eventually(FormulaRef f,
                                      std::optional<std::uint32_t> bound) {
  if (f->is_constant()) return f;
  if (bound && *bound == 0) return f;  // F[0] f == f
  if (!bound && f->op() == Op::kEventually && !f->bound()) return f;  // FF == F
  Formula node;
  node.op_ = Op::kEventually;
  node.operands_ = {f};
  node.bound_ = bound;
  return intern(std::move(node));
}

FormulaRef FormulaFactory::always(FormulaRef f,
                                  std::optional<std::uint32_t> bound) {
  if (f->is_constant()) return f;
  if (bound && *bound == 0) return f;  // G[0] f == f
  if (!bound && f->op() == Op::kAlways && !f->bound()) return f;  // GG == G
  Formula node;
  node.op_ = Op::kAlways;
  node.operands_ = {f};
  node.bound_ = bound;
  return intern(std::move(node));
}

FormulaRef FormulaFactory::until(FormulaRef a, FormulaRef b,
                                 std::optional<std::uint32_t> bound) {
  if (b->is_constant()) return b;          // a U true == true; a U false == false
  if (a->op() == Op::kFalse) return b;     // false U b == b
  if (a->op() == Op::kTrue) return eventually(b, bound);  // true U b == F b
  if (bound && *bound == 0) return b;      // window of one step
  Formula node;
  node.op_ = Op::kUntil;
  node.operands_ = {a, b};
  node.bound_ = bound;
  return intern(std::move(node));
}

FormulaRef FormulaFactory::release(FormulaRef a, FormulaRef b,
                                   std::optional<std::uint32_t> bound) {
  if (b->is_constant()) return b;       // a R true == true; a R false == false
  if (a->op() == Op::kTrue) return b;   // true R b == b
  if (a->op() == Op::kFalse) return always(b, bound);  // false R b == G b
  if (bound && *bound == 0) return b;
  Formula node;
  node.op_ = Op::kRelease;
  node.operands_ = {a, b};
  node.bound_ = bound;
  return intern(std::move(node));
}

FormulaRef FormulaFactory::weak_until(FormulaRef a, FormulaRef b) {
  return release(b, or_(a, b));
}

FormulaRef FormulaFactory::progress(FormulaRef f, const PropValuation& values) {
  switch (f->op()) {
    case Op::kTrue:
    case Op::kFalse:
      return f;
    case Op::kProp:
      return constant(values(f->prop_index()));
    case Op::kNot:
      return not_(progress(f->operands()[0], values));
    case Op::kAnd: {
      std::vector<FormulaRef> parts;
      parts.reserve(f->operands().size());
      for (FormulaRef g : f->operands()) parts.push_back(progress(g, values));
      return and_(std::move(parts));
    }
    case Op::kOr: {
      std::vector<FormulaRef> parts;
      parts.reserve(f->operands().size());
      for (FormulaRef g : f->operands()) parts.push_back(progress(g, values));
      return or_(std::move(parts));
    }
    case Op::kNext: {
      const std::uint32_t n = f->bound().value();
      return next(f->operands()[0], n - 1);
    }
    case Op::kEventually: {
      FormulaRef now = progress(f->operands()[0], values);
      if (!f->bound()) return or_(now, f);
      const std::uint32_t b = *f->bound();
      if (b == 0) return now;  // unreachable: F[0] simplifies away
      return or_(now, eventually(f->operands()[0], b - 1));
    }
    case Op::kAlways: {
      FormulaRef now = progress(f->operands()[0], values);
      if (!f->bound()) return and_(now, f);
      const std::uint32_t b = *f->bound();
      if (b == 0) return now;
      return and_(now, always(f->operands()[0], b - 1));
    }
    case Op::kUntil: {
      FormulaRef pa = progress(f->operands()[0], values);
      FormulaRef pb = progress(f->operands()[1], values);
      FormulaRef cont;
      if (!f->bound()) {
        cont = f;
      } else if (*f->bound() == 0) {
        cont = constant(false);
      } else {
        cont = until(f->operands()[0], f->operands()[1], *f->bound() - 1);
      }
      return or_(pb, and_(pa, cont));
    }
    case Op::kRelease: {
      FormulaRef pa = progress(f->operands()[0], values);
      FormulaRef pb = progress(f->operands()[1], values);
      FormulaRef cont;
      if (!f->bound()) {
        cont = f;
      } else if (*f->bound() == 0) {
        cont = constant(true);  // window satisfied to its end
      } else {
        cont = release(f->operands()[0], f->operands()[1], *f->bound() - 1);
      }
      return and_(pb, or_(pa, cont));
    }
  }
  throw std::logic_error("progress: unknown operator");
}

namespace {

/// Negation-aware empty-suffix evaluation (see holds_on_empty). `negated`
/// tracks an enclosing odd number of negations, i.e. the node is evaluated
/// as if the formula were in negation normal form.
bool empty_eval(FormulaRef f, bool negated) {
  switch (f->op()) {
    case Op::kTrue:
      return !negated;
    case Op::kFalse:
      return negated;
    case Op::kProp:
      // There is no state to constrain: a literal fails in either polarity
      // (in NNF both p and !p are false on the empty suffix).
      return false;
    case Op::kNot:
      return empty_eval(f->operands()[0], !negated);
    case Op::kAnd: {
      // Under negation, !(a && b) == !a || !b.
      for (FormulaRef g : f->operands()) {
        const bool v = empty_eval(g, negated);
        if (negated && v) return true;
        if (!negated && !v) return false;
      }
      return !negated;
    }
    case Op::kOr: {
      for (FormulaRef g : f->operands()) {
        const bool v = empty_eval(g, negated);
        if (negated && !v) return false;
        if (!negated && v) return true;
      }
      return negated;
    }
    case Op::kNext:
    case Op::kEventually:
    case Op::kUntil:
      // Strong operators fail on the empty suffix; negated they are weak
      // (!F f == G !f) and hold.
      return negated;
    case Op::kAlways:
    case Op::kRelease:
      return !negated;  // weak operators hold vacuously; negated they fail
  }
  throw std::logic_error("holds_on_empty: unknown operator");
}

}  // namespace

bool FormulaFactory::holds_on_empty(FormulaRef f, bool negated) const {
  return empty_eval(f, negated);
}

void FormulaFactory::collect_props_rec(FormulaRef f,
                                       std::vector<int>& out) const {
  if (f->op() == Op::kProp) {
    out.push_back(f->prop_index());
    return;
  }
  for (FormulaRef g : f->operands()) collect_props_rec(g, out);
}

std::vector<int> FormulaFactory::collect_prop_indices(FormulaRef f) const {
  std::vector<int> out;
  collect_props_rec(f, out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::string> FormulaFactory::collect_prop_names(
    FormulaRef f) const {
  std::vector<std::string> names;
  for (int idx : collect_prop_indices(f)) names.push_back(prop_name(idx));
  return names;
}

// ---------------------------------------------------------------------------
// Printing

namespace {

int precedence(Op op) {
  switch (op) {
    case Op::kOr: return 1;
    case Op::kAnd: return 2;
    case Op::kUntil:
    case Op::kRelease: return 3;
    case Op::kNot:
    case Op::kNext:
    case Op::kEventually:
    case Op::kAlways: return 4;
    default: return 5;  // atoms
  }
}

void print(const Formula& f, int parent_prec, std::string& out) {
  const int prec = precedence(f.op());
  const bool parens = prec < parent_prec;
  if (parens) out += "(";
  switch (f.op()) {
    case Op::kTrue: out += "true"; break;
    case Op::kFalse: out += "false"; break;
    case Op::kProp: out += f.prop_name(); break;
    case Op::kNot:
      out += "!";
      print(*f.operands()[0], precedence(Op::kNot) + 1, out);
      break;
    case Op::kAnd:
    case Op::kOr: {
      const char* sep = f.op() == Op::kAnd ? " && " : " || ";
      bool first = true;
      for (FormulaRef g : f.operands()) {
        if (!first) out += sep;
        first = false;
        print(*g, prec + 1, out);
      }
      break;
    }
    case Op::kNext:
      out += "X";
      if (f.bound().value() != 1) out += "[" + std::to_string(*f.bound()) + "]";
      out += " ";
      print(*f.operands()[0], prec, out);
      break;
    case Op::kEventually:
    case Op::kAlways:
      out += f.op() == Op::kEventually ? "F" : "G";
      if (f.bound()) out += "[" + std::to_string(*f.bound()) + "]";
      out += " ";
      print(*f.operands()[0], prec, out);
      break;
    case Op::kUntil:
    case Op::kRelease:
      print(*f.operands()[0], prec + 1, out);
      out += f.op() == Op::kUntil ? " U" : " R";
      if (f.bound()) out += "[" + std::to_string(*f.bound()) + "]";
      out += " ";
      print(*f.operands()[1], prec + 1, out);
      break;
  }
  if (parens) out += ")";
}

}  // namespace

std::string Formula::to_string() const {
  std::string out;
  print(*this, 0, out);
  return out;
}

}  // namespace esv::temporal

#include "temporal/automaton.hpp"

#include <deque>
#include <unordered_map>

namespace esv::temporal {

std::size_t ArAutomaton::assignment_of(const PropValuation& values) const {
  std::size_t idx = 0;
  for (std::size_t bit = 0; bit < prop_indices_.size(); ++bit) {
    if (values(prop_indices_[bit])) idx |= (std::size_t{1} << bit);
  }
  return idx;
}

ArAutomaton synthesize(FormulaFactory& factory, FormulaRef formula,
                       const SynthesisOptions& options) {
  ArAutomaton automaton;
  automaton.prop_indices_ = factory.collect_prop_indices(formula);
  const std::size_t prop_count = automaton.prop_indices_.size();
  if (prop_count > options.max_props) {
    throw SynthesisLimitError(
        "synthesize: property has " + std::to_string(prop_count) +
        " propositions; limit is " + std::to_string(options.max_props));
  }
  const std::size_t assignments = std::size_t{1} << prop_count;

  std::unordered_map<FormulaRef, std::uint32_t> index_of;
  std::deque<FormulaRef> worklist;

  auto state_for = [&](FormulaRef f) -> std::uint32_t {
    auto it = index_of.find(f);
    if (it != index_of.end()) return it->second;
    if (automaton.states_.size() >= options.max_states) {
      throw SynthesisLimitError("synthesize: state limit of " +
                                std::to_string(options.max_states) +
                                " exceeded");
    }
    const auto id = static_cast<std::uint32_t>(automaton.states_.size());
    ArAutomaton::State state;
    state.obligation = f;
    state.verdict = f->op() == Op::kTrue    ? Verdict::kValidated
                    : f->op() == Op::kFalse ? Verdict::kViolated
                                            : Verdict::kPending;
    automaton.states_.push_back(std::move(state));
    index_of.emplace(f, id);
    if (!f->is_constant()) worklist.push_back(f);
    return id;
  };

  automaton.initial_ = state_for(formula);
  while (!worklist.empty()) {
    FormulaRef f = worklist.front();
    worklist.pop_front();
    const std::uint32_t from = index_of.at(f);
    automaton.states_[from].next.resize(assignments);
    for (std::size_t a = 0; a < assignments; ++a) {
      // Valuation for assignment index `a`: bit i gives prop_indices[i].
      const auto valuation = [&](int prop_index) {
        for (std::size_t bit = 0; bit < prop_count; ++bit) {
          if (automaton.prop_indices_[bit] == prop_index) {
            return (a >> bit & 1u) != 0;
          }
        }
        return false;
      };
      FormulaRef succ = factory.progress(f, valuation);
      automaton.states_[from].next[a] = state_for(succ);
    }
  }
  // The accept/reject sinks self-loop.
  for (auto& state : automaton.states_) {
    if (state.verdict != Verdict::kPending && state.next.empty()) {
      state.next.assign(assignments, index_of.at(state.obligation));
    }
  }
  return automaton;
}

std::string ArAutomaton::to_il(const FormulaFactory& factory,
                               const std::string& name) const {
  std::string out;
  out += "ar-automaton \"" + name + "\" {\n";
  out += "  props:";
  for (std::size_t bit = 0; bit < prop_indices_.size(); ++bit) {
    out += " b" + std::to_string(bit) + "=" + factory.prop_name(prop_indices_[bit]);
  }
  out += "\n  initial: s" + std::to_string(initial_) + "\n";
  for (std::size_t i = 0; i < states_.size(); ++i) {
    const State& s = states_[i];
    out += "  state s" + std::to_string(i) + " [" +
           std::string(temporal::to_string(s.verdict)) + "] " +
           s.obligation->to_string() + "\n";
    if (s.verdict != Verdict::kPending) continue;  // sinks are implicit
    for (std::size_t a = 0; a < s.next.size(); ++a) {
      std::string bits(prop_indices_.size(), '0');
      for (std::size_t bit = 0; bit < prop_indices_.size(); ++bit) {
        if (a >> bit & 1u) bits[bit] = '1';
      }
      out += "    on " + (bits.empty() ? std::string("-") : bits) + " -> s" +
             std::to_string(s.next[a]) + "\n";
    }
  }
  out += "}\n";
  return out;
}

AutomatonMonitor::AutomatonMonitor(const ArAutomaton& automaton)
    : automaton_(automaton), state_(automaton.initial()) {}

Verdict AutomatonMonitor::step(const PropValuation& values) {
  if (verdict() != Verdict::kPending) return verdict();
  ++steps_;
  state_ = automaton_.states()[state_].next[automaton_.assignment_of(values)];
  return verdict();
}

Verdict AutomatonMonitor::verdict() const {
  return automaton_.states()[state_].verdict;
}

void AutomatonMonitor::reset() {
  state_ = automaton_.initial();
  steps_ = 0;
}

}  // namespace esv::temporal

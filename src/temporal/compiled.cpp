#include "temporal/compiled.hpp"

#include <limits>
#include <string>

namespace esv::temporal {

CompiledMonitor CompiledMonitorPool::compile(const ArAutomaton& automaton,
                                             const FormulaFactory& factory) {
  const std::vector<int>& props = automaton.prop_indices();
  for (int prop_index : props) {
    if (prop_index < 0 || prop_index >= kMaxPropWordBits) {
      throw CompileError(
          "compile: proposition index " + std::to_string(prop_index) +
          " does not fit the " + std::to_string(kMaxPropWordBits) +
          "-bit proposition word (register at most " +
          std::to_string(kMaxPropWordBits) +
          " propositions for compiled monitor modes)");
    }
  }

  const std::size_t state_count = automaton.state_count();
  const std::size_t stride = automaton.assignment_count();
  if (state_count == 0 ||
      state_count > std::numeric_limits<std::uint32_t>::max() / stride) {
    throw CompileError("compile: automaton table does not fit 32-bit offsets");
  }

  Entry entry;
  entry.table_off = static_cast<std::uint32_t>(table_.size());
  entry.state_base = static_cast<std::uint32_t>(verdicts_.size());
  entry.bits_off = static_cast<std::uint32_t>(bit_sources_.size());
  entry.bit_count = static_cast<std::uint32_t>(props.size());
  entry.initial = automaton.initial();
  entry.state = automaton.initial();
  entry.state_count = static_cast<std::uint32_t>(state_count);

  for (int prop_index : props) {
    bit_sources_.push_back(static_cast<std::uint8_t>(prop_index));
  }

  // Dense row-major lowering, state numbering preserved: row s of this
  // monitor's slab is exactly ArAutomaton state s, so compiled state ids are
  // interchangeable with AutomatonMonitor states in traces and oracles.
  table_.reserve(table_.size() + state_count * stride);
  verdicts_.reserve(verdicts_.size() + state_count);
  end_verdicts_.reserve(end_verdicts_.size() + state_count);
  obligations_.reserve(obligations_.size() + state_count);
  for (const ArAutomaton::State& state : automaton.states()) {
    verdicts_.push_back(static_cast<std::uint8_t>(state.verdict));
    // End-of-trace resolution is a pure function of the pending obligation,
    // precomputed here so verdict_at_end() is a table read like everything
    // else on the query path.
    const Verdict at_end =
        state.verdict != Verdict::kPending
            ? state.verdict
            : (factory.holds_on_empty(state.obligation) ? Verdict::kValidated
                                                        : Verdict::kViolated);
    end_verdicts_.push_back(static_cast<std::uint8_t>(at_end));
    obligations_.push_back(state.obligation);
    for (std::size_t a = 0; a < stride; ++a) {
      table_.push_back(state.next[a]);
    }
  }

  entries_.push_back(entry);
  return CompiledMonitor(this,
                         static_cast<std::uint32_t>(entries_.size() - 1));
}

void CompiledMonitorPool::corrupt_state_for_test(std::uint32_t id,
                                                 std::uint32_t state) {
  entries_.at(id).state = state;
}

}  // namespace esv::temporal

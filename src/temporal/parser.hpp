// Property parsers for the two specification languages SCTC accepts:
//
//   FLTL  - LTL with optional time bounds on temporal operators:
//             G (req -> F[100] ack)
//             F (Read && X (busy U[20] done))
//           Operators: ! && || -> <-> X F G U R W, bounds as OP[n].
//
//   PSL   - the simple subset of PSL's foundation language:
//             always (req -> eventually! ack)
//             never (error)
//             always (req -> next[3] (ack until! done))
//           Keywords: always, never, eventually!, next, next[n],
//           until!, until (weak), before!, plus the boolean layer.
//
// Both dialects produce the same hash-consed FLTL core AST. Atomic
// propositions are identifiers (or double-quoted strings for free-form names
// like "var1 == 0"); they are resolved against registered Proposition objects
// by the checker, not here.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "temporal/formula.hpp"

namespace esv::temporal {

enum class Dialect { kFltl, kPsl };

/// Error with the offending position (byte offset into the property text).
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, std::size_t position)
      : std::runtime_error(message + " (at offset " +
                           std::to_string(position) + ")"),
        position_(position) {}
  std::size_t position() const { return position_; }

 private:
  std::size_t position_;
};

/// Parses an FLTL property. Throws ParseError on malformed input.
FormulaRef parse_fltl(std::string_view text, FormulaFactory& factory);

/// Parses a PSL (simple subset) property. Throws ParseError on malformed
/// input.
FormulaRef parse_psl(std::string_view text, FormulaFactory& factory);

/// Dialect-dispatching convenience wrapper.
FormulaRef parse_property(std::string_view text, Dialect dialect,
                          FormulaFactory& factory);

}  // namespace esv::temporal

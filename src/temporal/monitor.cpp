#include "temporal/monitor.hpp"

namespace esv::temporal {

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kPending: return "pending";
    case Verdict::kValidated: return "validated";
    case Verdict::kViolated: return "violated";
  }
  return "?";
}

ProgressionMonitor::ProgressionMonitor(FormulaFactory& factory,
                                       FormulaRef formula)
    : factory_(factory), property_(formula), current_(formula) {
  if (formula->op() == Op::kTrue) verdict_ = Verdict::kValidated;
  if (formula->op() == Op::kFalse) verdict_ = Verdict::kViolated;
}

Verdict ProgressionMonitor::step(const PropValuation& values) {
  if (verdict_ != Verdict::kPending) return verdict_;
  ++steps_;
  current_ = factory_.progress(current_, values);
  if (current_->op() == Op::kTrue) {
    verdict_ = Verdict::kValidated;
  } else if (current_->op() == Op::kFalse) {
    verdict_ = Verdict::kViolated;
  }
  return verdict_;
}

Verdict ProgressionMonitor::verdict_at_end() const {
  if (verdict_ != Verdict::kPending) return verdict_;
  return factory_.holds_on_empty(current_) ? Verdict::kValidated
                                           : Verdict::kViolated;
}

void ProgressionMonitor::reset() {
  current_ = property_;
  steps_ = 0;
  verdict_ = Verdict::kPending;
  if (property_->op() == Op::kTrue) verdict_ = Verdict::kValidated;
  if (property_->op() == Op::kFalse) verdict_ = Verdict::kViolated;
}

}  // namespace esv::temporal

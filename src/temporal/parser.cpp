#include "temporal/parser.hpp"

#include <cctype>
#include <optional>
#include <vector>

namespace esv::temporal {

namespace {

enum class TokKind {
  kEnd,
  kIdent,    // identifiers and keywords
  kString,   // "quoted proposition name"
  kNumber,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kNot,      // !
  kAnd,      // && or &
  kOr,       // || or |
  kImplies,  // ->
  kIff,      // <->
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  std::uint64_t number = 0;
  std::size_t position = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

 private:
  void advance() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    current_ = Token{};
    current_.position = pos_;
    if (pos_ >= text_.size()) {
      current_.kind = TokKind::kEnd;
      return;
    }
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      current_.kind = TokKind::kIdent;
      current_.text = std::string(text_.substr(start, pos_ - start));
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::uint64_t v = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        v = v * 10 + static_cast<std::uint64_t>(text_[pos_] - '0');
        ++pos_;
      }
      current_.kind = TokKind::kNumber;
      current_.number = v;
      return;
    }
    if (c == '"') {
      std::size_t start = ++pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') ++pos_;
      if (pos_ >= text_.size()) {
        throw ParseError("unterminated string", start - 1);
      }
      current_.kind = TokKind::kString;
      current_.text = std::string(text_.substr(start, pos_ - start));
      ++pos_;  // closing quote
      return;
    }
    auto two = [&](char a, char b) {
      return c == a && pos_ + 1 < text_.size() && text_[pos_ + 1] == b;
    };
    if (two('&', '&')) { current_.kind = TokKind::kAnd; pos_ += 2; return; }
    if (two('|', '|')) { current_.kind = TokKind::kOr; pos_ += 2; return; }
    if (two('-', '>')) { current_.kind = TokKind::kImplies; pos_ += 2; return; }
    if (c == '<' && pos_ + 2 < text_.size() + 1 &&
        text_.substr(pos_, 3) == "<->") {
      current_.kind = TokKind::kIff;
      pos_ += 3;
      return;
    }
    switch (c) {
      case '(': current_.kind = TokKind::kLParen; ++pos_; return;
      case ')': current_.kind = TokKind::kRParen; ++pos_; return;
      case '[': current_.kind = TokKind::kLBracket; ++pos_; return;
      case ']': current_.kind = TokKind::kRBracket; ++pos_; return;
      case '!': current_.kind = TokKind::kNot; ++pos_; return;
      case '&': current_.kind = TokKind::kAnd; ++pos_; return;
      case '|': current_.kind = TokKind::kOr; ++pos_; return;
      default:
        throw ParseError(std::string("unexpected character '") + c + "'", pos_);
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  Token current_;
};

// ---------------------------------------------------------------------------
// Shared parser machinery. The two dialects differ only in which identifiers
// act as temporal operators.

class ParserBase {
 public:
  ParserBase(std::string_view text, FormulaFactory& factory)
      : lexer_(text), factory_(factory) {}

 protected:
  [[noreturn]] void fail(const std::string& message) {
    throw ParseError(message, lexer_.peek().position);
  }

  bool at(TokKind kind) const { return lexer_.peek().kind == kind; }

  bool at_ident(std::string_view word) const {
    return at(TokKind::kIdent) && lexer_.peek().text == word;
  }

  Token expect(TokKind kind, const std::string& what) {
    if (!at(kind)) fail("expected " + what);
    return lexer_.take();
  }

  bool accept(TokKind kind) {
    if (!at(kind)) return false;
    lexer_.take();
    return true;
  }

  bool accept_ident(std::string_view word) {
    if (!at_ident(word)) return false;
    lexer_.take();
    return true;
  }

  /// Parses an optional "[n]" bound.
  std::optional<std::uint32_t> parse_bound() {
    if (!accept(TokKind::kLBracket)) return std::nullopt;
    Token n = expect(TokKind::kNumber, "time bound");
    expect(TokKind::kRBracket, "']'");
    return static_cast<std::uint32_t>(n.number);
  }

  void expect_end() {
    if (!at(TokKind::kEnd)) fail("unexpected trailing input");
  }

  Lexer lexer_;
  FormulaFactory& factory_;
};

// ---------------------------------------------------------------------------
// FLTL parser

class FltlParser : public ParserBase {
 public:
  using ParserBase::ParserBase;

  FormulaRef parse() {
    FormulaRef f = parse_iff();
    expect_end();
    return f;
  }

 private:
  FormulaRef parse_iff() {
    FormulaRef lhs = parse_implies();
    while (accept(TokKind::kIff)) lhs = factory_.iff(lhs, parse_implies());
    return lhs;
  }

  FormulaRef parse_implies() {
    FormulaRef lhs = parse_or();
    if (accept(TokKind::kImplies)) {
      return factory_.implies(lhs, parse_implies());  // right associative
    }
    return lhs;
  }

  FormulaRef parse_or() {
    FormulaRef lhs = parse_and();
    while (accept(TokKind::kOr) || accept_ident("or")) {
      lhs = factory_.or_(lhs, parse_and());
    }
    return lhs;
  }

  FormulaRef parse_and() {
    FormulaRef lhs = parse_until();
    while (accept(TokKind::kAnd) || accept_ident("and")) {
      lhs = factory_.and_(lhs, parse_until());
    }
    return lhs;
  }

  FormulaRef parse_until() {
    FormulaRef lhs = parse_unary();
    if (at_ident("U")) {
      lexer_.take();
      auto bound = parse_bound();
      return factory_.until(lhs, parse_until(), bound);  // right associative
    }
    if (at_ident("R")) {
      lexer_.take();
      auto bound = parse_bound();
      return factory_.release(lhs, parse_until(), bound);
    }
    if (at_ident("W")) {
      lexer_.take();
      return factory_.weak_until(lhs, parse_until());
    }
    return lhs;
  }

  FormulaRef parse_unary() {
    if (accept(TokKind::kNot) || accept_ident("not")) {
      return factory_.not_(parse_unary());
    }
    if (at_ident("X")) {
      lexer_.take();
      const auto bound = parse_bound();
      return factory_.next(parse_unary(), bound.value_or(1));
    }
    if (at_ident("F")) {
      lexer_.take();
      const auto bound = parse_bound();
      return factory_.eventually(parse_unary(), bound);
    }
    if (at_ident("G")) {
      lexer_.take();
      const auto bound = parse_bound();
      return factory_.always(parse_unary(), bound);
    }
    return parse_primary();
  }

  FormulaRef parse_primary() {
    if (accept(TokKind::kLParen)) {
      FormulaRef f = parse_iff();
      expect(TokKind::kRParen, "')'");
      return f;
    }
    if (at(TokKind::kString)) return factory_.prop(lexer_.take().text);
    if (at(TokKind::kIdent)) {
      const Token t = lexer_.take();
      if (t.text == "true") return factory_.constant(true);
      if (t.text == "false") return factory_.constant(false);
      if (t.text == "X" || t.text == "F" || t.text == "G" || t.text == "U" ||
          t.text == "R" || t.text == "W") {
        throw ParseError("'" + t.text + "' is a reserved FLTL operator",
                         t.position);
      }
      return factory_.prop(t.text);
    }
    fail("expected a formula");
  }
};

// ---------------------------------------------------------------------------
// PSL parser (simple subset of the foundation language)

class PslParser : public ParserBase {
 public:
  using ParserBase::ParserBase;

  FormulaRef parse() {
    FormulaRef f = parse_property();
    expect_end();
    return f;
  }

 private:
  FormulaRef parse_property() {
    if (accept_ident("always")) return factory_.always(parse_property());
    if (accept_ident("never")) {
      return factory_.always(factory_.not_(parse_property()));
    }
    if (accept_ident("eventually")) {
      expect(TokKind::kNot, "'!' (PSL eventually is strong: eventually!)");
      const auto bound = parse_bound();
      return factory_.eventually(parse_property(), bound);
    }
    if (accept_ident("next")) {
      const auto bound = parse_bound();
      return factory_.next(parse_property(), bound.value_or(1));
    }
    return parse_iff();
  }

  FormulaRef parse_iff() {
    FormulaRef lhs = parse_implies();
    while (accept(TokKind::kIff)) lhs = factory_.iff(lhs, parse_implies());
    return lhs;
  }

  FormulaRef parse_implies() {
    FormulaRef lhs = parse_or();
    if (accept(TokKind::kImplies)) {
      return factory_.implies(lhs, parse_property_tail());
    }
    return lhs;
  }

  /// The right-hand side of -> may again use the temporal keywords:
  /// "always (req -> eventually! ack)".
  FormulaRef parse_property_tail() { return parse_property(); }

  FormulaRef parse_or() {
    FormulaRef lhs = parse_and();
    while (accept(TokKind::kOr)) lhs = factory_.or_(lhs, parse_and());
    return lhs;
  }

  FormulaRef parse_and() {
    FormulaRef lhs = parse_until();
    while (accept(TokKind::kAnd)) lhs = factory_.and_(lhs, parse_until());
    return lhs;
  }

  FormulaRef parse_until() {
    FormulaRef lhs = parse_unary();
    if (at_ident("until")) {
      lexer_.take();
      const bool strong = accept(TokKind::kNot);  // until!
      const auto bound = parse_bound();
      FormulaRef rhs = parse_until();
      if (strong) return factory_.until(lhs, rhs, bound);
      if (bound) {
        // Weak bounded until: hold lhs up to the bound unless rhs releases.
        return factory_.or_(factory_.until(lhs, rhs, bound),
                            factory_.always(lhs, *bound));
      }
      return factory_.weak_until(lhs, rhs);
    }
    if (at_ident("before")) {
      lexer_.take();
      const bool strong = accept(TokKind::kNot);  // before!
      FormulaRef rhs = parse_until();
      // a before b: a occurs strictly before b does.
      FormulaRef core = factory_.until(factory_.not_(rhs),
                                       factory_.and_(lhs, factory_.not_(rhs)));
      if (strong) return core;
      return factory_.or_(core, factory_.always(factory_.not_(rhs)));
    }
    return lhs;
  }

  FormulaRef parse_unary() {
    if (accept(TokKind::kNot)) return factory_.not_(parse_unary());
    return parse_primary();
  }

  FormulaRef parse_primary() {
    if (accept(TokKind::kLParen)) {
      FormulaRef f = parse_property();
      expect(TokKind::kRParen, "')'");
      return f;
    }
    if (at(TokKind::kString)) return factory_.prop(lexer_.take().text);
    if (at(TokKind::kIdent)) {
      const Token t = lexer_.take();
      if (t.text == "true") return factory_.constant(true);
      if (t.text == "false") return factory_.constant(false);
      return factory_.prop(t.text);
    }
    fail("expected a property");
  }
};

}  // namespace

FormulaRef parse_fltl(std::string_view text, FormulaFactory& factory) {
  return FltlParser(text, factory).parse();
}

FormulaRef parse_psl(std::string_view text, FormulaFactory& factory) {
  return PslParser(text, factory).parse();
}

FormulaRef parse_property(std::string_view text, Dialect dialect,
                          FormulaFactory& factory) {
  return dialect == Dialect::kFltl ? parse_fltl(text, factory)
                                   : parse_psl(text, factory);
}

}  // namespace esv::temporal

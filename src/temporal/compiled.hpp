// Compiled monitors: flat transition tables stepped by dense lookup.
//
// The AR-automaton pipeline (automaton.hpp) already turns a property into an
// explicit Accept/Reject automaton, but AutomatonMonitor still evaluates the
// alphabet through a PropValuation closure per step, and every monitor owns
// its own heap-allocated state vectors. This layer lowers a synthesized
// automaton one stage further, into the shape ROADMAP item 1 asks for:
//
//   - Propositions are evaluated ONCE per step by the checker into a single
//     uint64_t PropWord (bit i = factory proposition index i).
//   - Each monitor's compiled form gathers its own propositions out of the
//     word into a *word class* — the local assignment index over just the
//     propositions the property mentions — and takes one dense table lookup:
//     next = table[state << bit_count | class].
//   - All monitors of a run live in one CompiledMonitorPool: transition
//     rows, per-state verdicts, end-of-trace verdicts, and gather specs are
//     arena-allocated in flat contiguous arrays. Stepping performs zero heap
//     allocations in steady state (asserted under a counting allocator in
//     tests/monitor_compile_test.cpp).
//
// State numbering is preserved exactly from the source ArAutomaton, so a
// compiled monitor's state ids are directly comparable with AutomatonMonitor
// states and — through the per-state obligation formulas kept for oracle
// checks — with the ProgressionMonitor's pending obligation. The checker's
// `both` mode uses that correspondence to run the interpreted monitor as a
// permanent differential oracle for this fast path (docs/MONITORS.md).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "temporal/automaton.hpp"
#include "temporal/formula.hpp"
#include "temporal/monitor.hpp"

namespace esv::temporal {

/// One step's proposition values, bit i = value of factory prop index i.
using PropWord = std::uint64_t;

/// PropWord is a single machine word, so compiled monitors can only see the
/// first 64 factory proposition indices.
inline constexpr int kMaxPropWordBits = 64;

class CompileError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class CompiledMonitorPool;

/// Lightweight handle to one compiled monitor inside a pool. Copyable; all
/// state (including the current automaton state) lives in the pool's flat
/// arrays, so copies alias the same monitor.
class CompiledMonitor {
 public:
  CompiledMonitor() = default;

  bool valid() const { return pool_ != nullptr; }

  /// Advances by one step on the given proposition word. No-op once decided
  /// (the sinks self-loop). Never allocates.
  inline Verdict step(PropWord word);
  inline Verdict verdict() const;
  /// Finite-trace verdict if the trace ended now (precomputed per state at
  /// compile time from FormulaFactory::holds_on_empty).
  inline Verdict verdict_at_end() const;
  /// Current automaton state id (identical numbering to the source
  /// ArAutomaton).
  inline std::uint32_t state() const;
  /// The pending obligation formula of the current state — the compiled
  /// counterpart of ProgressionMonitor::current(), used by the differential
  /// oracle for transition-level lockstep comparison.
  inline FormulaRef obligation() const;
  inline std::uint64_t steps() const;
  inline void reset();
  /// Test hook: forces the monitor into an arbitrary state (see
  /// CompiledMonitorPool::corrupt_state_for_test).
  inline void corrupt_state_for_test(std::uint32_t state);

 private:
  friend class CompiledMonitorPool;
  CompiledMonitor(CompiledMonitorPool* pool, std::uint32_t id)
      : pool_(pool), id_(id) {}

  CompiledMonitorPool* pool_ = nullptr;
  std::uint32_t id_ = 0;
};

/// Arena for a run's compiled monitors. compile() may grow the arenas (and
/// is therefore not for the hot path); step() touches only preallocated
/// flat storage.
class CompiledMonitorPool {
 public:
  CompiledMonitorPool() = default;
  CompiledMonitorPool(const CompiledMonitorPool&) = delete;
  CompiledMonitorPool& operator=(const CompiledMonitorPool&) = delete;

  /// Lowers a synthesized automaton into the pool. `factory` resolves the
  /// end-of-trace verdict of every state's obligation. Throws CompileError
  /// if the automaton reads a proposition index >= kMaxPropWordBits.
  CompiledMonitor compile(const ArAutomaton& automaton,
                          const FormulaFactory& factory);

  std::size_t monitor_count() const { return entries_.size(); }
  /// Total dense transition-table entries across all monitors (diagnostics).
  std::size_t table_entries() const { return table_.size(); }

  /// Test hook: forces the monitor into an arbitrary state so the `both`
  /// mode's divergence reporting can be exercised (a correct build never
  /// diverges on its own).
  void corrupt_state_for_test(std::uint32_t id, std::uint32_t state);

 private:
  friend class CompiledMonitor;

  struct Entry {
    std::uint32_t table_off = 0;   // into table_
    std::uint32_t state_base = 0;  // into verdicts_/end_verdicts_/obligations_
    std::uint32_t bits_off = 0;    // into bit_sources_
    std::uint32_t bit_count = 0;   // propositions gathered from the word
    std::uint32_t initial = 0;
    std::uint32_t state = 0;
    std::uint32_t state_count = 0;
    std::uint64_t steps = 0;
  };

  // Flat arenas shared by every monitor in the pool. table_ holds each
  // monitor's dense `state x class -> state` rows back to back; the three
  // per-state arrays are index-aligned at state_base + state.
  std::vector<std::uint32_t> table_;
  std::vector<std::uint8_t> verdicts_;      // Verdict per state
  std::vector<std::uint8_t> end_verdicts_;  // Verdict if the trace ends here
  std::vector<FormulaRef> obligations_;     // oracle mapping per state
  std::vector<std::uint8_t> bit_sources_;   // PropWord bit per local bit
  std::vector<Entry> entries_;
};

inline Verdict CompiledMonitor::step(PropWord word) {
  CompiledMonitorPool::Entry& e = pool_->entries_[id_];
  const std::uint8_t* verdicts = pool_->verdicts_.data() + e.state_base;
  if (static_cast<Verdict>(verdicts[e.state]) != Verdict::kPending) {
    return static_cast<Verdict>(verdicts[e.state]);
  }
  ++e.steps;
  const std::uint8_t* bits = pool_->bit_sources_.data() + e.bits_off;
  std::uint32_t word_class = 0;
  for (std::uint32_t i = 0; i < e.bit_count; ++i) {
    word_class |= static_cast<std::uint32_t>(word >> bits[i] & 1u) << i;
  }
  e.state =
      pool_->table_[e.table_off + (e.state << e.bit_count) + word_class];
  return static_cast<Verdict>(verdicts[e.state]);
}

inline Verdict CompiledMonitor::verdict() const {
  const CompiledMonitorPool::Entry& e = pool_->entries_[id_];
  return static_cast<Verdict>(pool_->verdicts_[e.state_base + e.state]);
}

inline Verdict CompiledMonitor::verdict_at_end() const {
  const CompiledMonitorPool::Entry& e = pool_->entries_[id_];
  return static_cast<Verdict>(pool_->end_verdicts_[e.state_base + e.state]);
}

inline std::uint32_t CompiledMonitor::state() const {
  return pool_->entries_[id_].state;
}

inline FormulaRef CompiledMonitor::obligation() const {
  const CompiledMonitorPool::Entry& e = pool_->entries_[id_];
  return pool_->obligations_[e.state_base + e.state];
}

inline std::uint64_t CompiledMonitor::steps() const {
  return pool_->entries_[id_].steps;
}

inline void CompiledMonitor::reset() {
  CompiledMonitorPool::Entry& e = pool_->entries_[id_];
  e.state = e.initial;
  e.steps = 0;
}

inline void CompiledMonitor::corrupt_state_for_test(std::uint32_t state) {
  pool_->corrupt_state_for_test(id_, state);
}

}  // namespace esv::temporal

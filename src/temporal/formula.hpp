// FLTL formula representation.
//
// FLTL (Finite Linear time Temporal Logic, Ruf et al., DATE 2001) is LTL
// extended with time bounds on the temporal operators: F[b] f ("f within b
// steps"), G[b] f ("f for the next b steps"), f U[b] g, X[n] f. The paper's
// SCTC translates properties in FLTL or a PSL subset into Accept/Reject
// automata; we do the same on top of this AST.
//
// Nodes are hash-consed through FormulaFactory: structurally equal formulas
// are the same pointer, so the progression-based monitor can detect revisited
// states by pointer identity and the AR-automaton synthesis terminates.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace esv::temporal {

enum class Op : std::uint8_t {
  kTrue,
  kFalse,
  kProp,        // atomic proposition (named; evaluated by the checker)
  kNot,         // !f
  kAnd,         // f1 && f2 && ... (n-ary, flattened, sorted, deduplicated)
  kOr,          // f1 || f2 || ...
  kNext,        // X[n] f  (n >= 1; X == X[1])
  kEventually,  // F f, or F[b] f when bounded
  kAlways,      // G f, or G[b] f when bounded
  kUntil,       // f U g, or f U[b] g
  kRelease,     // f R g, or f R[b] g (dual of Until)
};

class Formula;
/// Formulas are interned: refer to them by pointer; the factory owns them.
using FormulaRef = const Formula*;

class Formula {
 public:
  Op op() const { return op_; }
  /// Unique, creation-ordered id; used for canonical operand ordering.
  std::uint32_t id() const { return id_; }
  /// Proposition name (kProp only).
  const std::string& prop_name() const { return prop_name_; }
  /// Proposition index assigned by the factory (kProp only).
  int prop_index() const { return prop_index_; }
  /// Operands (empty for kTrue/kFalse/kProp).
  std::span<const FormulaRef> operands() const { return operands_; }
  /// Bound: steps for kNext; window for kEventually/kAlways/kUntil/kRelease.
  /// nullopt means unbounded.
  std::optional<std::uint32_t> bound() const { return bound_; }

  bool is_constant() const { return op_ == Op::kTrue || op_ == Op::kFalse; }

  /// Canonical text form (FLTL syntax).
  std::string to_string() const;

 private:
  friend class FormulaFactory;
  Formula() = default;

  Op op_ = Op::kTrue;
  std::uint32_t id_ = 0;
  std::string prop_name_;
  int prop_index_ = -1;
  std::vector<FormulaRef> operands_;
  std::optional<std::uint32_t> bound_;
};

/// Evaluates propositions during progression: maps a proposition index to its
/// current truth value.
using PropValuation = std::function<bool(int prop_index)>;

/// Owns every formula node and provides hash-consing smart constructors with
/// built-in simplification (constant folding, flattening, idempotence,
/// complement detection).
class FormulaFactory {
 public:
  FormulaFactory();
  ~FormulaFactory();
  FormulaFactory(const FormulaFactory&) = delete;
  FormulaFactory& operator=(const FormulaFactory&) = delete;

  FormulaRef constant(bool value) const { return value ? true_ : false_; }

  /// Returns the (unique) proposition node for `name`, creating it and
  /// assigning the next proposition index on first use.
  FormulaRef prop(const std::string& name);

  FormulaRef not_(FormulaRef f);
  FormulaRef and_(std::vector<FormulaRef> fs);
  FormulaRef or_(std::vector<FormulaRef> fs);
  FormulaRef and_(FormulaRef a, FormulaRef b) { return and_({a, b}); }
  FormulaRef or_(FormulaRef a, FormulaRef b) { return or_({a, b}); }
  FormulaRef implies(FormulaRef a, FormulaRef b) { return or_(not_(a), b); }
  FormulaRef iff(FormulaRef a, FormulaRef b);
  FormulaRef next(FormulaRef f, std::uint32_t steps = 1);
  FormulaRef eventually(FormulaRef f,
                        std::optional<std::uint32_t> bound = std::nullopt);
  FormulaRef always(FormulaRef f,
                    std::optional<std::uint32_t> bound = std::nullopt);
  FormulaRef until(FormulaRef a, FormulaRef b,
                   std::optional<std::uint32_t> bound = std::nullopt);
  FormulaRef release(FormulaRef a, FormulaRef b,
                     std::optional<std::uint32_t> bound = std::nullopt);
  /// Weak until: a W b == (a U b) || G a, encoded as b R (a || b).
  FormulaRef weak_until(FormulaRef a, FormulaRef b);

  /// One step of formula progression: the returned formula must hold of the
  /// trace suffix starting at the *next* step, given the current values of
  /// the propositions. kTrue means the original formula is validated on the
  /// trace seen so far; kFalse means it is violated.
  FormulaRef progress(FormulaRef f, const PropValuation& values);

  /// Finite-trace verdict of a pending obligation when the trace ends here:
  /// there is no further state, so strong operators (X, F, U) fail, weak
  /// operators (G, R) pass, and literal constraints fail in either polarity
  /// (negations are pushed inward, NNF-style: both p and !p are false on
  /// the missing state). `negated` evaluates the formula under an enclosing
  /// negation.
  bool holds_on_empty(FormulaRef f, bool negated = false) const;

  /// All proposition indices occurring in `f`, ascending.
  std::vector<int> collect_prop_indices(FormulaRef f) const;
  /// All proposition names occurring in `f`, in index order.
  std::vector<std::string> collect_prop_names(FormulaRef f) const;

  /// Name of the proposition with the given index.
  const std::string& prop_name(int index) const;
  /// Number of distinct propositions interned so far.
  int prop_count() const { return static_cast<int>(props_by_index_.size()); }
  /// Number of distinct formula nodes interned (diagnostics, benches).
  std::size_t node_count() const { return nodes_.size(); }

 private:
  struct Key;
  struct KeyHash;
  struct KeyEq;

  FormulaRef intern(Formula node);
  void collect_props_rec(FormulaRef f, std::vector<int>& out) const;
  /// Bound subsumption within one conjunction/disjunction: merges temporal
  /// operators that differ only in their bound (e.g. F[3]f && F[7]f == F[3]f,
  /// F[3]f || F[7]f == F[7]f). Without this, progression of bounded-response
  /// properties accumulates one obligation per step and the AR-automaton
  /// state space explodes.
  void merge_bounded_operators(std::vector<FormulaRef>& operands,
                               bool conjunction);

  std::vector<std::unique_ptr<Formula>> nodes_;
  std::unordered_map<std::size_t, std::vector<FormulaRef>> buckets_;
  std::unordered_map<std::string, FormulaRef> props_;
  std::vector<FormulaRef> props_by_index_;
  FormulaRef true_ = nullptr;
  FormulaRef false_ = nullptr;
};

}  // namespace esv::temporal

#include "formal/absref/absref.hpp"

#include <chrono>
#include <deque>
#include <optional>
#include <stdexcept>
#include <unordered_set>

#include "esw/esw_program.hpp"
#include "esw/interpreter.hpp"
#include "mem/address_space.hpp"

namespace esv::formal::absref {

using esw::EswOp;
using minic::BinaryOp;
using minic::Expr;
using minic::Program;
using minic::RefKind;
using minic::UnaryOp;

namespace {

/// The prover's precision limit was exceeded (BLAST's 2^30 - 1 behaviour).
class ProverOverflow : public std::runtime_error {
 public:
  explicit ProverOverflow(std::int64_t value)
      : std::runtime_error("prover integer overflow: |" +
                           std::to_string(value) + "| exceeds 2^30 - 1") {}
};

enum class PredOp { kEq, kNe, kLt, kLe, kGt, kGe };

PredOp negate(PredOp op) {
  switch (op) {
    case PredOp::kEq: return PredOp::kNe;
    case PredOp::kNe: return PredOp::kEq;
    case PredOp::kLt: return PredOp::kGe;
    case PredOp::kLe: return PredOp::kGt;
    case PredOp::kGt: return PredOp::kLe;
    case PredOp::kGe: return PredOp::kLt;
  }
  return PredOp::kEq;
}

bool pred_holds(std::int64_t lhs, PredOp op, std::int64_t rhs) {
  switch (op) {
    case PredOp::kEq: return lhs == rhs;
    case PredOp::kNe: return lhs != rhs;
    case PredOp::kLt: return lhs < rhs;
    case PredOp::kLe: return lhs <= rhs;
    case PredOp::kGt: return lhs > rhs;
    case PredOp::kGe: return lhs >= rhs;
  }
  return false;
}

/// Predicate over a scalar global: (global @address) op constant.
struct Predicate {
  std::uint32_t address;
  PredOp op;
  std::int64_t constant;

  bool operator==(const Predicate&) const = default;
};

struct Frame {
  int fn = 0;
  std::uint32_t pc = 0;
  bool operator==(const Frame&) const = default;
};

struct AbstractState {
  std::vector<Frame> stack;
  std::uint64_t known = 0;
  std::uint64_t values = 0;

  bool operator==(const AbstractState&) const = default;
};

struct StateHash {
  std::size_t operator()(const AbstractState& s) const {
    std::size_t h = s.known * 0x9e3779b97f4a7c15ULL ^ s.values;
    for (const Frame& f : s.stack) {
      h = h * 1000003u + static_cast<std::size_t>(f.fn) * 131u + f.pc;
    }
    return h;
  }
};

class Analyzer {
 public:
  Analyzer(const Program& program, const esw::EswProgram& lowered,
           const AbsRefOptions& options)
      : program_(program), lowered_(lowered), options_(options) {}

  AbsRefResult run() {
    AbsRefResult result;
    const auto start = std::chrono::steady_clock::now();
    const auto elapsed = [&] {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
          .count();
    };

    try {
      mine_initial_predicates();
      for (std::size_t round = 0; round <= options_.max_refinements; ++round) {
        result.refinements = round;
        result.predicates = predicates_.size();
        int failing_line = 0;
        const ExploreOutcome outcome = explore(result, failing_line, start);
        if (outcome == ExploreOutcome::kSafe) {
          result.status = AbsRefResult::Status::kSafe;
          result.seconds = elapsed();
          return result;
        }
        if (outcome == ExploreOutcome::kBudget) {
          result.status = AbsRefResult::Status::kBudgetExceeded;
          result.detail = "abstract-state budget exhausted";
          result.seconds = elapsed();
          return result;
        }
        // Abstract counterexample: replay concretely.
        const std::optional<int> concrete = replay();
        if (concrete.has_value()) {
          result.status = AbsRefResult::Status::kCounterexample;
          result.failing_line = *concrete;
          result.detail =
              "assertion fails at line " + std::to_string(*concrete);
          result.seconds = elapsed();
          return result;
        }
        // Spurious: refine the predicate set and try again.
        if (!refine(round)) {
          result.status = AbsRefResult::Status::kBudgetExceeded;
          result.detail = "refinement produced no new predicates (abstract "
                          "counterexample at line " +
                          std::to_string(failing_line) + " remains)";
          result.seconds = elapsed();
          return result;
        }
      }
      result.status = AbsRefResult::Status::kBudgetExceeded;
      result.detail = "refinement budget exhausted";
    } catch (const ProverOverflow& e) {
      result.status = AbsRefResult::Status::kException;
      result.detail = e.what();
    }
    result.seconds = elapsed();
    result.predicates = predicates_.size();
    return result;
  }

 private:
  enum class ExploreOutcome { kSafe, kAbstractCex, kBudget };

  // --- predicate mining ------------------------------------------------------

  /// Checks every integer constant the prover would touch.
  std::int64_t checked(std::int64_t v) const {
    if (v > options_.prover_magnitude_limit ||
        v < -options_.prover_magnitude_limit) {
      throw ProverOverflow(v);
    }
    return v;
  }

  void add_predicate(Predicate p) {
    if (predicates_.size() >= options_.max_predicates) return;
    for (const Predicate& existing : predicates_) {
      if (existing == p) return;
    }
    predicates_.push_back(p);
  }

  /// Extracts a predicate from a boolean condition if it has the shape
  /// (global op const), (const op global), global, or !global.
  std::optional<std::pair<Predicate, bool>> match_condition(const Expr& e) {
    if (e.kind == Expr::Kind::kUnary && e.unary_op == UnaryOp::kNot) {
      auto inner = match_condition(*e.children[0]);
      if (!inner) return std::nullopt;
      inner->second = !inner->second;
      return inner;
    }
    if (e.kind == Expr::Kind::kVarRef && e.ref == RefKind::kGlobal) {
      return std::make_pair(Predicate{e.address, PredOp::kNe, 0}, true);
    }
    if (e.kind != Expr::Kind::kBinary) return std::nullopt;
    PredOp op;
    switch (e.binary_op) {
      case BinaryOp::kEq: op = PredOp::kEq; break;
      case BinaryOp::kNe: op = PredOp::kNe; break;
      case BinaryOp::kLt: op = PredOp::kLt; break;
      case BinaryOp::kLe: op = PredOp::kLe; break;
      case BinaryOp::kGt: op = PredOp::kGt; break;
      case BinaryOp::kGe: op = PredOp::kGe; break;
      default: return std::nullopt;
    }
    const Expr& lhs = *e.children[0];
    const Expr& rhs = *e.children[1];
    const auto const_of = [&](const Expr& c) -> std::optional<std::int64_t> {
      if (c.kind == Expr::Kind::kIntLit || c.kind == Expr::Kind::kBoolLit) {
        return checked(c.value);
      }
      if (c.kind == Expr::Kind::kVarRef && c.ref == RefKind::kConst) {
        return checked(c.value);
      }
      return std::nullopt;
    };
    if (lhs.kind == Expr::Kind::kVarRef && lhs.ref == RefKind::kGlobal) {
      if (auto c = const_of(rhs)) {
        return std::make_pair(Predicate{lhs.address, op, *c}, true);
      }
    }
    if (rhs.kind == Expr::Kind::kVarRef && rhs.ref == RefKind::kGlobal) {
      if (auto c = const_of(lhs)) {
        // const op global  ==  global (swapped op) const
        PredOp swapped = op;
        switch (op) {
          case PredOp::kLt: swapped = PredOp::kGt; break;
          case PredOp::kLe: swapped = PredOp::kGe; break;
          case PredOp::kGt: swapped = PredOp::kLt; break;
          case PredOp::kGe: swapped = PredOp::kLe; break;
          default: break;
        }
        return std::make_pair(Predicate{rhs.address, swapped, *c}, true);
      }
    }
    return std::nullopt;
  }

  void mine_expr(const Expr& e, bool conditions_only) {
    if (auto m = match_condition(e)) {
      add_predicate(m->first);
    }
    for (const auto& child : e.children) mine_expr(*child, conditions_only);
  }

  void mine_initial_predicates() {
    // Round 0: predicates from assertion conditions.
    for (const auto& fn : lowered_.functions) {
      for (const EswOp& op : fn.ops) {
        if (op.kind == EswOp::Kind::kAssert && op.expr != nullptr) {
          mine_expr(*op.expr, true);
        }
      }
    }
  }

  bool refine(std::size_t round) {
    const std::size_t before = predicates_.size();
    if (round == 0) {
      // Round 1: branch and switch conditions over globals.
      for (const auto& fn : lowered_.functions) {
        for (const EswOp& op : fn.ops) {
          if ((op.kind == EswOp::Kind::kCondJump ||
               op.kind == EswOp::Kind::kSwitchJump) &&
              op.expr != nullptr) {
            mine_expr(*op.expr, true);
            if (op.kind == EswOp::Kind::kSwitchJump) {
              // selector == case-value predicates.
              if (op.expr->kind == Expr::Kind::kVarRef &&
                  op.expr->ref == RefKind::kGlobal) {
                for (const auto& target : op.switch_targets) {
                  add_predicate(Predicate{op.expr->address, PredOp::kEq,
                                          checked(target.value)});
                }
              }
            }
          }
        }
      }
      // Also mirror predicates across global-to-global copies so the copy-
      // propagation transfer has something to transfer (e.g. witness = fname
      // mirrors (witness op c) onto fname). Fixpoint to follow copy chains.
      bool changed = true;
      while (changed) {
        changed = false;
        const std::size_t count = predicates_.size();
        for (const auto& fn : lowered_.functions) {
          for (const EswOp& op : fn.ops) {
            if (op.kind != EswOp::Kind::kEval || op.target == nullptr) continue;
            if (op.target->kind != Expr::Kind::kVarRef ||
                op.target->ref != RefKind::kGlobal) {
              continue;
            }
            if (op.expr->kind != Expr::Kind::kVarRef ||
                op.expr->ref != RefKind::kGlobal) {
              continue;
            }
            for (std::size_t i = 0; i < predicates_.size(); ++i) {
              if (predicates_[i].address == op.target->address) {
                add_predicate(Predicate{op.expr->address, predicates_[i].op,
                                        predicates_[i].constant});
              }
            }
          }
        }
        changed = predicates_.size() != count;
      }
    } else if (round == 1) {
      // Round 2: equality predicates from constant stores to globals.
      for (const auto& fn : lowered_.functions) {
        for (const EswOp& op : fn.ops) {
          if (op.kind != EswOp::Kind::kEval || op.target == nullptr) continue;
          if (op.target->kind != Expr::Kind::kVarRef ||
              op.target->ref != RefKind::kGlobal) {
            continue;
          }
          const Expr& value = *op.expr;
          if (value.kind == Expr::Kind::kIntLit ||
              value.kind == Expr::Kind::kBoolLit ||
              (value.kind == Expr::Kind::kVarRef &&
               value.ref == RefKind::kConst)) {
            add_predicate(Predicate{op.target->address, PredOp::kEq,
                                    checked(value.value)});
          }
        }
      }
    }
    return predicates_.size() > before;
  }

  // --- the abstract domain ---------------------------------------------------

  /// Exact value of a global under the predicate valuation (from a true
  /// equality predicate), if any.
  std::optional<std::int64_t> exact_global(const AbstractState& s,
                                           std::uint32_t address) const {
    for (std::size_t i = 0; i < predicates_.size(); ++i) {
      const Predicate& p = predicates_[i];
      if (p.address == address && p.op == PredOp::kEq &&
          (s.known >> i & 1) != 0 && (s.values >> i & 1) != 0) {
        return p.constant;
      }
    }
    return std::nullopt;
  }

  /// The prover: exact evaluation under the abstraction, with overflow
  /// checking on every intermediate value. nullopt == "don't know".
  std::optional<std::int64_t> eval_exact(const Expr& e,
                                         const AbstractState& s) const {
    switch (e.kind) {
      case Expr::Kind::kIntLit:
      case Expr::Kind::kBoolLit:
        return checked(e.value);
      case Expr::Kind::kVarRef:
        if (e.ref == RefKind::kConst) return checked(e.value);
        if (e.ref == RefKind::kGlobal) return exact_global(s, e.address);
        return std::nullopt;  // locals are abstracted away
      case Expr::Kind::kUnary: {
        auto v = eval_exact(*e.children[0], s);
        if (!v) return std::nullopt;
        switch (e.unary_op) {
          case UnaryOp::kNot: return *v == 0 ? 1 : 0;
          case UnaryOp::kNeg: return checked(-*v);
          case UnaryOp::kBitNot: return std::nullopt;  // beyond the prover
        }
        return std::nullopt;
      }
      case Expr::Kind::kBinary: {
        auto a = eval_exact(*e.children[0], s);
        // Short-circuit with a decided left side.
        if (e.binary_op == BinaryOp::kLogicalAnd && a && *a == 0) return 0;
        if (e.binary_op == BinaryOp::kLogicalOr && a && *a != 0) return 1;
        auto b = eval_exact(*e.children[1], s);
        if (!a || !b) return std::nullopt;
        switch (e.binary_op) {
          case BinaryOp::kMul: return checked(*a * *b);
          case BinaryOp::kDiv:
            if (*b == 0) return std::nullopt;
            return checked(*a / *b);
          case BinaryOp::kMod:
            if (*b == 0) return std::nullopt;
            return checked(*a % *b);
          case BinaryOp::kAdd: return checked(*a + *b);
          case BinaryOp::kSub: return checked(*a - *b);
          case BinaryOp::kShl: return checked(*a << (*b & 31));
          case BinaryOp::kShr:
            return checked(static_cast<std::int64_t>(
                static_cast<std::uint32_t>(*a) >> (*b & 31)));
          case BinaryOp::kLt: return *a < *b ? 1 : 0;
          case BinaryOp::kLe: return *a <= *b ? 1 : 0;
          case BinaryOp::kGt: return *a > *b ? 1 : 0;
          case BinaryOp::kGe: return *a >= *b ? 1 : 0;
          case BinaryOp::kEq: return *a == *b ? 1 : 0;
          case BinaryOp::kNe: return *a != *b ? 1 : 0;
          case BinaryOp::kBitAnd: return checked(*a & *b);
          case BinaryOp::kBitXor: return checked(*a ^ *b);
          case BinaryOp::kBitOr: return checked(*a | *b);
          case BinaryOp::kLogicalAnd: return (*a != 0 && *b != 0) ? 1 : 0;
          case BinaryOp::kLogicalOr: return (*a != 0 || *b != 0) ? 1 : 0;
        }
        return std::nullopt;
      }
      case Expr::Kind::kTernary: {
        auto c = eval_exact(*e.children[0], s);
        if (!c) return std::nullopt;
        return eval_exact(*e.children[*c != 0 ? 1 : 2], s);
      }
      case Expr::Kind::kIndex:
      case Expr::Kind::kCall:
      case Expr::Kind::kMemRead:
      case Expr::Kind::kInput:
        // Still visit children so constants inside (e.g. register
        // addresses) pass through the prover — that is where the overflow
        // exception fires on automotive code.
        for (const auto& child : e.children) eval_exact(*child, s);
        if (e.kind == Expr::Kind::kMemRead || e.kind == Expr::Kind::kInput) {
          return std::nullopt;
        }
        return std::nullopt;
    }
    return std::nullopt;
  }

  /// Three-valued condition evaluation: 1/0, or nullopt with an optional
  /// learnable predicate index.
  std::optional<bool> decide(const Expr& cond, const AbstractState& s,
                             int& learn_index, bool& learn_polarity) const {
    learn_index = -1;
    // Try structural predicate match first (it also tells us what to learn).
    if (auto m = const_cast<Analyzer*>(this)->match_condition_no_add(cond)) {
      for (std::size_t i = 0; i < predicates_.size(); ++i) {
        if (predicates_[i] == m->first) {
          learn_index = static_cast<int>(i);
          learn_polarity = m->second;
          if (s.known >> i & 1) {
            const bool value = (s.values >> i & 1) != 0;
            return m->second ? value : !value;
          }
          break;
        }
        // The negated form may be in the list instead.
        Predicate negated{m->first.address, negate(m->first.op),
                          m->first.constant};
        if (predicates_[i] == negated) {
          learn_index = static_cast<int>(i);
          learn_polarity = !m->second;
          if (s.known >> i & 1) {
            const bool value = (s.values >> i & 1) != 0;
            return !m->second ? value : !value;
          }
          break;
        }
      }
    }
    if (auto v = eval_exact(cond, s)) return *v != 0;
    return std::nullopt;
  }

  /// match_condition without predicate-list side effects.
  std::optional<std::pair<Predicate, bool>> match_condition_no_add(
      const Expr& e) {
    return match_condition(e);
  }

  /// Applies an assignment global := expr to the predicate valuation.
  void transfer_store(AbstractState& s, std::uint32_t address,
                      const Expr& value) const {
    const auto exact = eval_exact(value, s);
    // Copy propagation: globalA = globalB transfers matching predicates.
    const bool is_copy = !exact && value.kind == Expr::Kind::kVarRef &&
                         value.ref == RefKind::kGlobal;
    for (std::size_t i = 0; i < predicates_.size(); ++i) {
      const Predicate& p = predicates_[i];
      if (p.address != address) continue;
      if (is_copy) {
        // Look for the mirrored predicate on the source global.
        bool transferred = false;
        for (std::size_t j = 0; j < predicates_.size(); ++j) {
          const Predicate& q = predicates_[j];
          if (q.address == value.address && q.op == p.op &&
              q.constant == p.constant) {
            if (s.known >> j & 1) {
              s.known |= (std::uint64_t{1} << i);
              if (s.values >> j & 1) {
                s.values |= (std::uint64_t{1} << i);
              } else {
                s.values &= ~(std::uint64_t{1} << i);
              }
              transferred = true;
            }
            break;
          }
        }
        if (!transferred) {
          s.known &= ~(std::uint64_t{1} << i);
          s.values &= ~(std::uint64_t{1} << i);
        }
        continue;
      }
      if (exact) {
        s.known |= (std::uint64_t{1} << i);
        if (pred_holds(*exact, p.op, p.constant)) {
          s.values |= (std::uint64_t{1} << i);
        } else {
          s.values &= ~(std::uint64_t{1} << i);
        }
      } else {
        s.known &= ~(std::uint64_t{1} << i);
        s.values &= ~(std::uint64_t{1} << i);
      }
    }
  }

  void learn(AbstractState& s, int index, bool value) const {
    if (index < 0) return;
    s.known |= (std::uint64_t{1} << index);
    if (value) {
      s.values |= (std::uint64_t{1} << index);
    } else {
      s.values &= ~(std::uint64_t{1} << index);
    }
  }

  // --- abstract reachability --------------------------------------------------

  ExploreOutcome explore(AbsRefResult& result, int& failing_line,
                         std::chrono::steady_clock::time_point start) {
    std::unordered_set<AbstractState, StateHash> visited;
    std::deque<AbstractState> queue;

    AbstractState initial;
    const minic::Function* main_fn = program_.find_function("main");
    initial.stack.push_back(Frame{main_fn->index, 0});
    // Global initializers are concrete: predicates start decided.
    for (std::size_t i = 0; i < predicates_.size(); ++i) {
      const Predicate& p = predicates_[i];
      for (const auto& g : program_.globals) {
        if (g.is_array || g.address != p.address) continue;
        const std::int64_t init = g.init.empty() ? 0 : checked(g.init[0]);
        initial.known |= (std::uint64_t{1} << i);
        if (pred_holds(init, p.op, p.constant)) {
          initial.values |= (std::uint64_t{1} << i);
        }
      }
    }
    queue.push_back(initial);
    visited.insert(initial);

    while (!queue.empty()) {
      if (visited.size() > options_.max_states) return ExploreOutcome::kBudget;
      if (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count() > options_.max_seconds) {
        return ExploreOutcome::kBudget;
      }
      AbstractState state = queue.front();
      queue.pop_front();
      result.explored_states = visited.size();

      std::vector<AbstractState> successors;
      if (!step(state, successors, failing_line)) {
        return ExploreOutcome::kAbstractCex;
      }
      for (AbstractState& next : successors) {
        if (visited.insert(next).second) queue.push_back(std::move(next));
      }
    }
    return ExploreOutcome::kSafe;
  }

  /// Computes abstract successors; returns false on an abstract
  /// counterexample (failing_line set).
  bool step(AbstractState state, std::vector<AbstractState>& successors,
            int& failing_line) {
    if (state.stack.empty()) return true;  // program ended
    Frame& top = state.stack.back();
    const esw::LoweredFunction& fn =
        lowered_.functions[static_cast<std::size_t>(top.fn)];
    // Structural jumps are free, as in the concrete executor.
    while (fn.ops[top.pc].kind == EswOp::Kind::kJump) {
      top.pc = static_cast<std::uint32_t>(fn.ops[top.pc].jump_true);
    }
    const EswOp& op = fn.ops[top.pc];

    switch (op.kind) {
      case EswOp::Kind::kSetFname: {
        // fname := constant id.
        for (std::size_t i = 0; i < predicates_.size(); ++i) {
          const Predicate& p = predicates_[i];
          if (p.address != program_.fname_address) continue;
          state.known |= (std::uint64_t{1} << i);
          if (pred_holds(op.callee->index + 1, p.op, p.constant)) {
            state.values |= (std::uint64_t{1} << i);
          } else {
            state.values &= ~(std::uint64_t{1} << i);
          }
        }
        ++top.pc;
        successors.push_back(std::move(state));
        return true;
      }
      case EswOp::Kind::kEval: {
        eval_exact(*op.expr, state);  // runs constants through the prover
        if (op.target != nullptr &&
            op.target->kind == Expr::Kind::kVarRef &&
            op.target->ref == RefKind::kGlobal) {
          transfer_store(state, op.target->address, *op.expr);
        } else if (op.target != nullptr) {
          // Array / memory / local target: visit for overflow, no transfer.
          eval_exact(*op.target, state);
        }
        ++top.pc;
        successors.push_back(std::move(state));
        return true;
      }
      case EswOp::Kind::kCondJump: {
        int learn_index = -1;
        bool learn_polarity = true;
        const auto decided = decide(*op.expr, state, learn_index,
                                    learn_polarity);
        if (decided.has_value()) {
          top.pc = static_cast<std::uint32_t>(*decided ? op.jump_true
                                                       : op.jump_false);
          successors.push_back(std::move(state));
          return true;
        }
        AbstractState then_state = state;
        then_state.stack.back().pc =
            static_cast<std::uint32_t>(op.jump_true);
        learn(then_state, learn_index, learn_polarity);
        AbstractState else_state = std::move(state);
        else_state.stack.back().pc =
            static_cast<std::uint32_t>(op.jump_false);
        learn(else_state, learn_index, !learn_polarity);
        successors.push_back(std::move(then_state));
        successors.push_back(std::move(else_state));
        return true;
      }
      case EswOp::Kind::kSwitchJump: {
        const auto exact = eval_exact(*op.expr, state);
        if (exact.has_value()) {
          std::size_t target = op.switch_default;
          for (const auto& entry : op.switch_targets) {
            if (entry.value == *exact) {
              target = entry.target;
              break;
            }
          }
          top.pc = static_cast<std::uint32_t>(target);
          successors.push_back(std::move(state));
          return true;
        }
        // Unknown selector: one successor per case plus default.
        const bool selector_is_global =
            op.expr->kind == Expr::Kind::kVarRef &&
            op.expr->ref == RefKind::kGlobal;
        for (const auto& entry : op.switch_targets) {
          AbstractState next = state;
          next.stack.back().pc = static_cast<std::uint32_t>(entry.target);
          if (selector_is_global) {
            for (std::size_t i = 0; i < predicates_.size(); ++i) {
              if (predicates_[i] ==
                  Predicate{op.expr->address, PredOp::kEq, entry.value}) {
                learn(next, static_cast<int>(i), true);
              }
            }
          }
          successors.push_back(std::move(next));
        }
        AbstractState def = std::move(state);
        def.stack.back().pc = static_cast<std::uint32_t>(op.switch_default);
        if (selector_is_global) {
          for (std::size_t i = 0; i < predicates_.size(); ++i) {
            for (const auto& entry : op.switch_targets) {
              if (predicates_[i] ==
                  Predicate{op.expr->address, PredOp::kEq, entry.value}) {
                learn(def, static_cast<int>(i), false);
              }
            }
          }
        }
        successors.push_back(std::move(def));
        return true;
      }
      case EswOp::Kind::kCall: {
        for (const Expr* arg : op.args) eval_exact(*arg, state);
        if (state.stack.size() >= options_.max_stack_depth) {
          // Deep/recursive call: havoc everything the callee could touch.
          state.known = 0;
          state.values = 0;
          ++top.pc;
          successors.push_back(std::move(state));
          return true;
        }
        ++top.pc;  // resume after the call on return
        state.stack.push_back(Frame{op.callee->index, 0});
        successors.push_back(std::move(state));
        return true;
      }
      case EswOp::Kind::kReturn: {
        if (op.expr != nullptr) eval_exact(*op.expr, state);
        state.stack.pop_back();
        // fname reverts to the caller's id.
        if (!state.stack.empty()) {
          const int caller_fn = state.stack.back().fn;
          for (std::size_t i = 0; i < predicates_.size(); ++i) {
            const Predicate& p = predicates_[i];
            if (p.address != program_.fname_address) continue;
            state.known |= (std::uint64_t{1} << i);
            if (pred_holds(caller_fn + 1, p.op, p.constant)) {
              state.values |= (std::uint64_t{1} << i);
            } else {
              state.values &= ~(std::uint64_t{1} << i);
            }
          }
        }
        successors.push_back(std::move(state));
        return true;
      }
      case EswOp::Kind::kAssert: {
        int learn_index = -1;
        bool learn_polarity = true;
        const auto decided = decide(*op.expr, state, learn_index,
                                    learn_polarity);
        if (decided.has_value() && *decided) {
          ++top.pc;
          successors.push_back(std::move(state));
          return true;
        }
        failing_line = op.line;
        return false;  // abstract counterexample (false or unknown)
      }
      case EswOp::Kind::kAssume: {
        int learn_index = -1;
        bool learn_polarity = true;
        const auto decided = decide(*op.expr, state, learn_index,
                                    learn_polarity);
        if (decided.has_value() && !*decided) {
          return true;  // path excluded: no successors
        }
        // Continue under the assumption, learning it when it matches a
        // tracked predicate.
        learn(state, learn_index, learn_polarity);
        ++top.pc;
        successors.push_back(std::move(state));
        return true;
      }
      case EswOp::Kind::kJump:
      case EswOp::Kind::kHalt:
        ++top.pc;
        successors.push_back(std::move(state));
        return true;
    }
    return true;
  }

  // --- concrete replay ---------------------------------------------------------

  /// Runs the program concretely (zero inputs, devices unmapped -> reads
  /// fault and end the replay). Returns the line of a real assertion
  /// failure, or nullopt if none was confirmed.
  std::optional<int> replay() const {
    try {
      mem::AddressSpace memory(
          (program_.data_segment_end() + 0xFFFu) & ~0xFFFu);
      minic::ZeroInputProvider inputs;
      esw::Interpreter interp(program_, lowered_, memory, inputs);
      interp.run(options_.replay_steps);
      return std::nullopt;
    } catch (const esw::AssertionFailure& failure) {
      return failure.line();
    } catch (const mem::MemoryFault&) {
      return std::nullopt;  // touched unmodeled hardware: inconclusive
    } catch (const esw::RuntimeFault&) {
      return std::nullopt;
    }
  }

  const Program& program_;
  const esw::EswProgram& lowered_;
  const AbsRefOptions& options_;
  std::vector<Predicate> predicates_;
};

}  // namespace

const char* to_string(AbsRefResult::Status status) {
  switch (status) {
    case AbsRefResult::Status::kSafe: return "safe";
    case AbsRefResult::Status::kCounterexample: return "counterexample";
    case AbsRefResult::Status::kException: return "exception";
    case AbsRefResult::Status::kBudgetExceeded: return "budget-exceeded";
  }
  return "?";
}

AbsRefResult check_assertions(const Program& program,
                              const AbsRefOptions& options) {
  const esw::EswProgram lowered = esw::lower_program(program);
  return Analyzer(program, lowered, options).run();
}

}  // namespace esv::formal::absref

// Predicate-abstraction checker with abstract-check-refine (the BLAST-role
// baseline of Fig. 7).
//
// The program's statement-level CFG (reused from the C2SystemC lowering) is
// explored abstractly: an abstract state is a call stack of program points
// plus a three-valued assignment to a set of *predicates* over global
// variables. Branches whose condition the abstraction cannot decide split
// the state; assertions that are not provably true yield an abstract
// counterexample, which is replayed concretely — confirmed violations are
// reported, spurious ones trigger a refinement round that mines new
// predicates from the failing path's branch conditions and constant
// assignments (abstract-check-refine, as in BLAST).
//
// The embedded "theorem prover" evaluates predicates with explicit-precision
// integer arithmetic and — faithfully reproducing the limitation the paper
// reports for BLAST — throws ProverOverflow whenever a value's magnitude
// exceeds 2^30 - 1. Automotive code full of memory-mapped register addresses
// (0xF0000000...) hits this immediately, which is exactly the "Exception"
// column of Fig. 7.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "minic/ast.hpp"

namespace esv::formal::absref {

struct AbsRefOptions {
  /// Abstract-state budget across all refinement rounds.
  std::size_t max_states = 200000;
  std::size_t max_refinements = 16;
  std::size_t max_predicates = 24;
  /// Call-stack depth bound during abstract exploration.
  std::size_t max_stack_depth = 64;
  double max_seconds = 30.0;
  /// The prover's precision limit; values beyond it throw (BLAST's
  /// documented 2^30 - 1 overflow behaviour).
  std::int64_t prover_magnitude_limit = (std::int64_t{1} << 30) - 1;
  /// Concrete replay budget (statements).
  std::uint64_t replay_steps = 2'000'000;
};

struct AbsRefResult {
  enum class Status {
    kSafe,            // fixpoint reached, no assertion reachable
    kCounterexample,  // concretely confirmed assertion violation
    kException,       // prover overflow / internal abort (the Fig. 7 rows)
    kBudgetExceeded,  // state/refinement/time budget exhausted
  };

  Status status = Status::kBudgetExceeded;
  double seconds = 0.0;
  std::string detail;
  int failing_line = 0;

  std::size_t predicates = 0;
  std::size_t explored_states = 0;
  std::size_t refinements = 0;
};

const char* to_string(AbsRefResult::Status status);

/// Checks all assert() statements of a resolved program.
AbsRefResult check_assertions(const minic::Program& program,
                              const AbsRefOptions& options = {});

}  // namespace esv::formal::absref

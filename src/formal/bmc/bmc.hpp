// Bounded model checker for mini-C (the CBMC-role baseline of Fig. 7).
//
// Pipeline: the program is symbolically executed with guarded updates —
// functions inlined (bounded depth), loops unwound to a bound (the paper's
// experiments use 20) — into a bit-level formula over the CDCL solver.
// Checked properties are the program's assert() statements plus automatic
// division-by-zero checks. Loops that are not fully unwound produce
// *unwinding assertions*: if any remain, an UNSAT result only means
// "bounded-safe" ("due to the boundedness CBMC can be used for finding
// errors and not for proving correctness").
//
// All nondeterministic inputs (__in) must be constrained with ranges, as the
// paper stresses; unconstrained inputs get the full 32-bit range.
//
// Resource budgets (formula gates, solver conflicts/time) turn the EEPROM
// case study's unbounded main loop into the ">5 h unwinding" failure mode of
// the paper's Fig. 7 instead of a hang.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "minic/ast.hpp"

namespace esv::formal::bmc {

struct BmcOptions {
  /// Loop unwinding bound (paper: 20).
  std::uint32_t unwind = 20;
  /// Maximum function-inlining depth (recursion bound).
  std::uint32_t max_inline_depth = 64;
  /// Formula-size budget: abort unwinding beyond this many gates.
  std::uint64_t max_gates = 20'000'000;
  /// SAT budget.
  std::uint64_t max_conflicts = 2'000'000;
  double max_seconds = 60.0;
  /// Ranges for __in() inputs (inclusive); unlisted inputs are unconstrained.
  std::map<std::string, std::pair<std::int64_t, std::int64_t>> input_ranges;
  /// Concrete initial values for scalar globals (byte address -> value),
  /// overriding the program's initializers. Used by the hybrid engine to
  /// start the unwinding from a live simulation state.
  std::map<std::uint32_t, std::uint32_t> initial_globals;
};

struct BmcResult {
  enum class Status {
    kSafe,            // all assertions proven, every loop fully unwound
    kBoundedSafe,     // no violation within the bound; unwinding incomplete
    kCounterexample,  // an assertion (or div-by-zero) can fail
    kBudgetExceeded,  // unwinding blew the gate budget (the ">5h" row)
    kSolverTimeout,   // SAT budget exhausted
  };

  Status status = Status::kBoundedSafe;
  double seconds = 0.0;
  std::string detail;
  int failing_line = 0;  // counterexample: line of the failing assertion

  // Statistics.
  std::uint64_t gates = 0;
  int solver_vars = 0;
  std::uint64_t solver_conflicts = 0;
  std::size_t property_assertions = 0;
  std::size_t unwinding_assertions = 0;
  /// Counterexample input values, in first-read order.
  std::vector<std::pair<std::string, std::uint32_t>> inputs;
};

const char* to_string(BmcResult::Status status);

/// Checks all assertions in `program` (which must be resolved by sema).
BmcResult check(const minic::Program& program, const BmcOptions& options = {});

}  // namespace esv::formal::bmc

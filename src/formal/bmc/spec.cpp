#include "formal/bmc/spec.hpp"

#include <stdexcept>

namespace esv::formal {

std::string instrument_response(const std::string& source, int op_code,
                                const std::string& ret_global,
                                const std::vector<std::uint32_t>& codes) {
  if (codes.empty()) {
    throw std::invalid_argument("instrument_response: empty code set");
  }
  const std::string marker = "test_cases = test_cases + 1;";
  const std::size_t at = source.find(marker);
  if (at == std::string::npos) {
    throw std::invalid_argument(
        "instrument_response: application-loop marker not found");
  }
  std::string condition;
  for (std::size_t i = 0; i < codes.size(); ++i) {
    if (i != 0) condition += " || ";
    condition += ret_global + " == " + std::to_string(codes[i]);
  }
  const std::string monitor =
      "/* Spec-tool generated response monitor */\n"
      "    if (current_op == " + std::to_string(op_code) + ") {\n"
      "      assert(" + condition + ");\n"
      "    }\n"
      "    ";
  std::string out = source;
  out.insert(at, monitor);
  return out;
}

std::string instrument_reachability(const std::string& source, int op_code,
                                    const std::string& ret_global,
                                    std::uint32_t code) {
  const std::string marker = "test_cases = test_cases + 1;";
  const std::size_t at = source.find(marker);
  if (at == std::string::npos) {
    throw std::invalid_argument(
        "instrument_reachability: application-loop marker not found");
  }
  const std::string monitor =
      "/* Spec-tool generated reachability query */\n"
      "    if (current_op == " + std::to_string(op_code) + ") {\n"
      "      assert(" + ret_global + " != " + std::to_string(code) + ");\n"
      "    }\n"
      "    ";
  std::string out = source;
  out.insert(at, monitor);
  return out;
}

std::string single_iteration(const std::string& source) {
  const std::string main_marker = "void main(void) {";
  const std::string loop = "while (1) {";
  const std::size_t main_at = source.find(main_marker);
  if (main_at == std::string::npos) {
    throw std::invalid_argument("single_iteration: main() not found");
  }
  const std::size_t loop_at = source.find(loop, main_at);
  if (loop_at == std::string::npos) {
    throw std::invalid_argument(
        "single_iteration: application loop not found");
  }
  // Drop main's initialization preamble (the query starts from a concrete
  // state snapshot, which re-running the initializers would destroy) and
  // reduce the infinite loop to one iteration.
  std::string out = source;
  const std::size_t preamble_begin = main_at + main_marker.size();
  out.replace(preamble_begin, loop_at + loop.size() - preamble_begin,
              "\n      if (1) {");
  return out;
}

}  // namespace esv::formal

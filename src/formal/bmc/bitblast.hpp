// Bit-level circuit construction over the SAT solver (Tseitin encoding).
//
// BitVec is a 32-bit vector of literals (LSB first) mirroring the execution
// platforms' semantics exactly: wrap-around arithmetic, signed comparisons
// and division, shift counts masked to 5 bits. The builder constant-folds
// aggressively so that fully concrete programs produce (almost) no clauses.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "formal/sat/solver.hpp"

namespace esv::formal::bmc {

using sat::Lit;

class CircuitBuilder {
 public:
  explicit CircuitBuilder(sat::Solver& solver);

  sat::Solver& solver() { return solver_; }

  Lit true_lit() const { return true_lit_; }
  Lit false_lit() const { return -true_lit_; }
  Lit constant(bool b) const { return b ? true_lit() : false_lit(); }
  bool is_const(Lit l) const { return l == true_lit_ || l == -true_lit_; }
  bool const_value(Lit l) const { return l == true_lit_; }

  Lit fresh();

  // Gates (with folding on constants and equal/complementary inputs).
  Lit and_(Lit a, Lit b);
  Lit or_(Lit a, Lit b);
  Lit xor_(Lit a, Lit b);
  Lit not_(Lit a) { return -a; }
  Lit mux(Lit sel, Lit then_lit, Lit else_lit);
  Lit and_many(const std::vector<Lit>& lits);
  Lit or_many(const std::vector<Lit>& lits);

  /// Asserts that `l` holds (assume).
  void require(Lit l) { solver_.add_unit(l); }

  std::uint64_t gate_count() const { return gates_; }

 private:
  sat::Solver& solver_;
  Lit true_lit_;
  std::uint64_t gates_ = 0;
};

struct BitVec {
  std::array<Lit, 32> bits{};  // bits[0] = LSB
};

class BvBuilder {
 public:
  explicit BvBuilder(CircuitBuilder& circuit) : c_(circuit) {}

  CircuitBuilder& circuit() { return c_; }

  BitVec constant(std::uint32_t value) const;
  BitVec fresh();
  /// Constant value if every bit is constant.
  bool try_constant(const BitVec& v, std::uint32_t& out) const;

  // Bitwise.
  BitVec and_(const BitVec& a, const BitVec& b);
  BitVec or_(const BitVec& a, const BitVec& b);
  BitVec xor_(const BitVec& a, const BitVec& b);
  BitVec not_(const BitVec& a);

  // Arithmetic (wrap-around).
  BitVec add(const BitVec& a, const BitVec& b);
  BitVec sub(const BitVec& a, const BitVec& b);
  BitVec neg(const BitVec& a);
  BitVec mul(const BitVec& a, const BitVec& b);
  /// Signed division/remainder with C truncation semantics. The caller must
  /// check divisor != 0 separately (division-by-zero assertion).
  BitVec sdiv(const BitVec& a, const BitVec& b);
  BitVec srem(const BitVec& a, const BitVec& b);

  // Shifts (count masked to 5 bits, as on the execution platforms).
  BitVec shl(const BitVec& a, const BitVec& count);
  BitVec lshr(const BitVec& a, const BitVec& count);
  BitVec shl_const(const BitVec& a, unsigned count) const;
  BitVec lshr_const(const BitVec& a, unsigned count) const;

  // Predicates.
  Lit eq(const BitVec& a, const BitVec& b);
  Lit ult(const BitVec& a, const BitVec& b);
  Lit ule(const BitVec& a, const BitVec& b);
  Lit slt(const BitVec& a, const BitVec& b);
  Lit sle(const BitVec& a, const BitVec& b);
  Lit is_zero(const BitVec& a);
  Lit to_bool(const BitVec& a) { return -is_zero(a); }

  /// Bool (0/1) to BitVec.
  BitVec from_bool(Lit l) const;

  BitVec ite(Lit sel, const BitVec& then_v, const BitVec& else_v);

  /// Reads a concrete value out of a SAT model.
  std::uint32_t model_value(const BitVec& v) const;

 private:
  void udivrem(const BitVec& a, const BitVec& b, BitVec& quotient,
               BitVec& remainder);

  CircuitBuilder& c_;
};

}  // namespace esv::formal::bmc

#include "formal/bmc/bmc.hpp"

#include <chrono>
#include <stdexcept>
#include <unordered_map>

#include "formal/bmc/bitblast.hpp"

namespace esv::formal::bmc {

using minic::BinaryOp;
using minic::Expr;
using minic::Function;
using minic::Program;
using minic::RefKind;
using minic::Stmt;
using minic::UnaryOp;

namespace {

/// Unwinding aborted: formula grew past the gate budget.
class GateBudgetExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class InlineDepthExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct CheckedAssertion {
  Lit failure;  // true in a model iff the assertion fails on that path
  int line;
  std::string what;
};

class Unwinder {
 public:
  Unwinder(const Program& program, const BmcOptions& options,
           sat::Solver& solver)
      : program_(program),
        options_(options),
        circuit_(solver),
        bv_(circuit_) {}

  void run() {
    init_globals();
    const Function* main_fn = program_.find_function("main");
    Lit returned = circuit_.false_lit();
    BitVec ret_value = bv_.constant(0);
    FrameCtx frame{std::vector<BitVec>(
                       static_cast<std::size_t>(main_fn->max_slots),
                       bv_.constant(0)),
                   &returned, &ret_value, 0};
    exec_body(main_fn->body, circuit_.true_lit(), frame);
  }

  CircuitBuilder& circuit() { return circuit_; }
  BvBuilder& bv() { return bv_; }
  const std::vector<CheckedAssertion>& properties() const {
    return property_assertions_;
  }
  const std::vector<CheckedAssertion>& unwinding() const {
    return unwinding_assertions_;
  }
  const std::vector<std::pair<std::string, BitVec>>& inputs() const {
    return input_symbols_;
  }

 private:
  struct FrameCtx {
    std::vector<BitVec> slots;
    Lit* returned;
    BitVec* return_value;
    std::uint32_t depth;
  };

  struct LoopCtx {
    Lit broke;
    Lit continued;  // per-iteration; reset by the loop driver
  };

  void budget_check() {
    if (circuit_.gate_count() > options_.max_gates) {
      throw GateBudgetExceeded("formula exceeded " +
                               std::to_string(options_.max_gates) + " gates");
    }
  }

  void init_globals() {
    for (const auto& g : program_.globals) {
      if (g.is_array) {
        std::vector<BitVec> cells;
        for (std::uint32_t i = 0; i < g.words; ++i) {
          std::uint32_t v =
              static_cast<std::uint32_t>(i < g.init.size() ? g.init[i] : 0);
          auto it = options_.initial_globals.find(g.address + i * 4);
          if (it != options_.initial_globals.end()) v = it->second;
          cells.push_back(bv_.constant(v));
        }
        arrays_.emplace(g.address, std::move(cells));
      } else {
        std::uint32_t v =
            static_cast<std::uint32_t>(g.init.empty() ? 0 : g.init[0]);
        auto it = options_.initial_globals.find(g.address);
        if (it != options_.initial_globals.end()) v = it->second;
        scalars_.emplace(g.address, bv_.constant(v));
      }
    }
  }

  // --- statements ------------------------------------------------------------

  /// live(ctx-local): conjunction of the block guard with "not returned /
  /// broke / continued yet".
  Lit live_of(Lit guard, const FrameCtx& frame, const LoopCtx* loop) {
    Lit live = circuit_.and_(guard, -*frame.returned);
    if (loop != nullptr) {
      live = circuit_.and_(live, -loop->broke);
      live = circuit_.and_(live, -loop->continued);
    }
    return live;
  }

  void exec_body(const std::vector<std::unique_ptr<Stmt>>& body, Lit guard,
                 FrameCtx& frame, LoopCtx* loop = nullptr) {
    for (const auto& stmt : body) {
      budget_check();
      exec_stmt(*stmt, live_of(guard, frame, loop), frame, loop);
    }
  }

  void exec_stmt(const Stmt& s, Lit live, FrameCtx& frame, LoopCtx* loop) {
    // Dead code under a constant-false guard contributes nothing: skip it
    // entirely (this is what makes pinned-input queries cheap).
    if (circuit_.is_const(live) && !circuit_.const_value(live)) return;
    switch (s.kind) {
      case Stmt::Kind::kBlock:
        exec_body(s.body, live, frame, loop);
        return;
      case Stmt::Kind::kExpr:
        eval(*s.expr, live, frame);
        return;
      case Stmt::Kind::kAssign: {
        const BitVec value = eval(*s.expr, live, frame);
        store(*s.target, value, live, frame);
        return;
      }
      case Stmt::Kind::kLocalDecl: {
        const BitVec value = s.expr != nullptr ? eval(*s.expr, live, frame)
                                               : bv_.constant(0);
        frame.slots[static_cast<std::size_t>(s.slot)] =
            bv_.ite(live, value, frame.slots[static_cast<std::size_t>(s.slot)]);
        return;
      }
      case Stmt::Kind::kIf: {
        const Lit c = bv_.to_bool(eval(*s.expr, live, frame));
        exec_body(s.body, circuit_.and_(live, c), frame, loop);
        exec_body(s.else_body, circuit_.and_(live, -c), frame, loop);
        return;
      }
      case Stmt::Kind::kWhile:
        unwind_loop(live, frame, /*init=*/nullptr, s.expr.get(),
                    /*step=*/nullptr, s.body, /*check_before=*/true, s.line);
        return;
      case Stmt::Kind::kDoWhile:
        unwind_loop(live, frame, nullptr, s.expr.get(), nullptr, s.body,
                    /*check_before=*/false, s.line);
        return;
      case Stmt::Kind::kFor:
        unwind_loop(live, frame, s.init.get(), s.expr.get(), s.step.get(),
                    s.body, true, s.line);
        return;
      case Stmt::Kind::kSwitch:
        exec_switch(s, live, frame);
        return;
      case Stmt::Kind::kReturn: {
        if (s.expr != nullptr) {
          const BitVec value = eval(*s.expr, live, frame);
          *frame.return_value = bv_.ite(live, value, *frame.return_value);
        }
        *frame.returned = circuit_.or_(*frame.returned, live);
        return;
      }
      case Stmt::Kind::kBreak:
        loop->broke = circuit_.or_(loop->broke, live);
        return;
      case Stmt::Kind::kContinue:
        loop->continued = circuit_.or_(loop->continued, live);
        return;
      case Stmt::Kind::kAssert: {
        const Lit ok = bv_.to_bool(eval(*s.expr, live, frame));
        property_assertions_.push_back(CheckedAssertion{
            circuit_.and_(live, -ok), s.line, "assertion"});
        return;
      }
      case Stmt::Kind::kAssume: {
        // Constrain the search space: paths reaching here with the condition
        // false are excluded (live -> cond).
        const Lit ok = bv_.to_bool(eval(*s.expr, live, frame));
        circuit_.require(circuit_.or_(-live, ok));
        return;
      }
    }
  }

  void unwind_loop(Lit live, FrameCtx& frame, const Stmt* init,
                   const Expr* cond, const Stmt* step,
                   const std::vector<std::unique_ptr<Stmt>>& body,
                   bool check_before, int line) {
    // A dedicated loop context: break leaves the loop for good; continue
    // only skips the rest of one iteration.
    LoopCtx ctx{circuit_.false_lit(), circuit_.false_lit()};
    if (init != nullptr) exec_stmt(*init, live, frame, nullptr);

    Lit iter_live = live;
    for (std::uint32_t i = 0; i < options_.unwind; ++i) {
      budget_check();
      iter_live = circuit_.and_(iter_live, -*frame.returned);
      iter_live = circuit_.and_(iter_live, -ctx.broke);
      if (check_before || i > 0) {
        if (cond != nullptr) {
          const Lit c = bv_.to_bool(eval(*cond, iter_live, frame));
          iter_live = circuit_.and_(iter_live, c);
        }
      }
      if (circuit_.is_const(iter_live) && !circuit_.const_value(iter_live)) {
        return;  // loop provably exited: fully unwound
      }
      ctx.continued = circuit_.false_lit();
      exec_body(body, iter_live, frame, &ctx);
      // `continue` jumps to the step; `break`/`return` skip it.
      if (step != nullptr) {
        const Lit step_live = circuit_.and_(
            circuit_.and_(iter_live, -ctx.broke), -*frame.returned);
        exec_stmt(*step, step_live, frame, nullptr);
      }
    }
    // Unwinding assertion: no path may still be able to iterate.
    Lit more = circuit_.and_(iter_live, -*frame.returned);
    more = circuit_.and_(more, -ctx.broke);
    if (cond != nullptr) {
      more = circuit_.and_(more, bv_.to_bool(eval(*cond, more, frame)));
    }
    if (!(circuit_.is_const(more) && !circuit_.const_value(more))) {
      unwinding_assertions_.push_back(
          CheckedAssertion{more, line, "unwinding"});
    }
  }

  void exec_switch(const Stmt& s, Lit live, FrameCtx& frame) {
    const BitVec selector = eval(*s.expr, live, frame);
    LoopCtx ctx{circuit_.false_lit(), circuit_.false_lit()};  // break target
    // Which case matches: exact equality; default fires when nothing else.
    Lit any_match = circuit_.false_lit();
    std::vector<Lit> matches(s.cases.size());
    for (std::size_t i = 0; i < s.cases.size(); ++i) {
      if (s.cases[i].is_default) continue;
      matches[i] = bv_.eq(
          selector, bv_.constant(static_cast<std::uint32_t>(s.cases[i].value)));
      any_match = circuit_.or_(any_match, matches[i]);
    }
    for (std::size_t i = 0; i < s.cases.size(); ++i) {
      if (s.cases[i].is_default) matches[i] = -any_match;
    }
    // Fallthrough: once entered, execution continues across case bodies
    // until a break.
    Lit entered = circuit_.false_lit();
    for (std::size_t i = 0; i < s.cases.size(); ++i) {
      entered = circuit_.or_(entered, matches[i]);
      const Lit case_live = circuit_.and_(
          circuit_.and_(circuit_.and_(live, entered), -ctx.broke),
          -*frame.returned);
      exec_body(s.cases[i].body, case_live, frame, &ctx);
    }
  }

  // --- expressions -------------------------------------------------------------

  BitVec eval(const Expr& e, Lit guard, FrameCtx& frame) {
    switch (e.kind) {
      case Expr::Kind::kIntLit:
      case Expr::Kind::kBoolLit:
        return bv_.constant(static_cast<std::uint32_t>(e.value));
      case Expr::Kind::kVarRef:
        switch (e.ref) {
          case RefKind::kLocal:
            return frame.slots[static_cast<std::size_t>(e.slot)];
          case RefKind::kGlobal:
            return scalars_.at(e.address);
          case RefKind::kConst:
            return bv_.constant(static_cast<std::uint32_t>(e.value));
          case RefKind::kUnresolved:
            break;
        }
        throw std::logic_error("bmc: unresolved variable");
      case Expr::Kind::kIndex: {
        const BitVec index = eval(*e.children[0], guard, frame);
        const auto& cells = arrays_.at(e.address);
        std::uint32_t k = 0;
        if (bv_.try_constant(index, k)) {
          return k < cells.size() ? cells[k] : bv_.constant(0);
        }
        // Symbolic index: chain of muxes over the array.
        BitVec out = bv_.constant(0);
        for (std::size_t i = 0; i < cells.size(); ++i) {
          const Lit hit = bv_.eq(
              index, bv_.constant(static_cast<std::uint32_t>(i)));
          out = bv_.ite(hit, cells[i], out);
        }
        return out;
      }
      case Expr::Kind::kCall:
        return exec_call(e, guard, frame);
      case Expr::Kind::kUnary: {
        const BitVec v = eval(*e.children[0], guard, frame);
        switch (e.unary_op) {
          case UnaryOp::kNot: return bv_.from_bool(bv_.is_zero(v));
          case UnaryOp::kNeg: return bv_.neg(v);
          case UnaryOp::kBitNot: return bv_.not_(v);
        }
        return v;
      }
      case Expr::Kind::kBinary:
        return eval_binary(e, guard, frame);
      case Expr::Kind::kTernary: {
        const Lit c = bv_.to_bool(eval(*e.children[0], guard, frame));
        const BitVec t = eval(*e.children[1], circuit_.and_(guard, c), frame);
        const BitVec f = eval(*e.children[2], circuit_.and_(guard, -c), frame);
        return bv_.ite(c, t, f);
      }
      case Expr::Kind::kMemRead:
        // Hardware registers are outside the program: havoc (fresh value),
        // matching CBMC's treatment of unmodeled volatile reads.
        eval(*e.children[0], guard, frame);  // address side effects (calls)
        return bv_.fresh();
      case Expr::Kind::kInput:
        return read_input(e);
    }
    throw std::logic_error("bmc: unknown expression");
  }

  BitVec eval_binary(const Expr& e, Lit guard, FrameCtx& frame) {
    const BinaryOp op = e.binary_op;
    if (op == BinaryOp::kLogicalAnd) {
      const Lit a = bv_.to_bool(eval(*e.children[0], guard, frame));
      const Lit b = bv_.to_bool(
          eval(*e.children[1], circuit_.and_(guard, a), frame));
      return bv_.from_bool(circuit_.and_(a, b));
    }
    if (op == BinaryOp::kLogicalOr) {
      const Lit a = bv_.to_bool(eval(*e.children[0], guard, frame));
      const Lit b = bv_.to_bool(
          eval(*e.children[1], circuit_.and_(guard, -a), frame));
      return bv_.from_bool(circuit_.or_(a, b));
    }
    const BitVec a = eval(*e.children[0], guard, frame);
    const BitVec b = eval(*e.children[1], guard, frame);
    switch (op) {
      case BinaryOp::kMul: return bv_.mul(a, b);
      case BinaryOp::kDiv:
      case BinaryOp::kMod: {
        // Automatic division-by-zero check (as CBMC adds).
        property_assertions_.push_back(CheckedAssertion{
            circuit_.and_(guard, bv_.is_zero(b)), e.line, "division by zero"});
        return op == BinaryOp::kDiv ? bv_.sdiv(a, b) : bv_.srem(a, b);
      }
      case BinaryOp::kAdd: return bv_.add(a, b);
      case BinaryOp::kSub: return bv_.sub(a, b);
      case BinaryOp::kShl: return bv_.shl(a, b);
      case BinaryOp::kShr: return bv_.lshr(a, b);
      case BinaryOp::kLt: return bv_.from_bool(bv_.slt(a, b));
      case BinaryOp::kLe: return bv_.from_bool(bv_.sle(a, b));
      case BinaryOp::kGt: return bv_.from_bool(bv_.slt(b, a));
      case BinaryOp::kGe: return bv_.from_bool(bv_.sle(b, a));
      case BinaryOp::kEq: return bv_.from_bool(bv_.eq(a, b));
      case BinaryOp::kNe: return bv_.from_bool(-bv_.eq(a, b));
      case BinaryOp::kBitAnd: return bv_.and_(a, b);
      case BinaryOp::kBitXor: return bv_.xor_(a, b);
      case BinaryOp::kBitOr: return bv_.or_(a, b);
      case BinaryOp::kLogicalAnd:
      case BinaryOp::kLogicalOr:
        break;
    }
    throw std::logic_error("bmc: unknown binary operator");
  }

  BitVec exec_call(const Expr& e, Lit guard, FrameCtx& frame) {
    if (frame.depth >= options_.max_inline_depth) {
      throw InlineDepthExceeded("inlining depth " +
                                std::to_string(options_.max_inline_depth) +
                                " exceeded at line " + std::to_string(e.line));
    }
    const Function& callee = *e.callee;
    FrameCtx inner;
    inner.slots.assign(static_cast<std::size_t>(callee.max_slots),
                       bv_.constant(0));
    for (std::size_t i = 0; i < e.children.size(); ++i) {
      inner.slots[i] = eval(*e.children[i], guard, frame);
    }
    Lit returned = circuit_.false_lit();
    BitVec ret_value = bv_.constant(0);
    inner.returned = &returned;
    inner.return_value = &ret_value;
    inner.depth = frame.depth + 1;
    exec_body(callee.body, guard, inner);
    return ret_value;
  }

  void store(const Expr& target, const BitVec& value, Lit live,
             FrameCtx& frame) {
    switch (target.kind) {
      case Expr::Kind::kVarRef:
        if (target.ref == RefKind::kLocal) {
          auto& slot = frame.slots[static_cast<std::size_t>(target.slot)];
          slot = bv_.ite(live, value, slot);
          return;
        }
        if (target.ref == RefKind::kGlobal) {
          auto& cell = scalars_.at(target.address);
          cell = bv_.ite(live, value, cell);
          return;
        }
        break;
      case Expr::Kind::kIndex: {
        const BitVec index = eval(*target.children[0], live, frame);
        auto& cells = arrays_.at(target.address);
        std::uint32_t k = 0;
        if (bv_.try_constant(index, k)) {
          if (k < cells.size()) cells[k] = bv_.ite(live, value, cells[k]);
          return;
        }
        for (std::size_t i = 0; i < cells.size(); ++i) {
          const Lit hit = circuit_.and_(
              live,
              bv_.eq(index, bv_.constant(static_cast<std::uint32_t>(i))));
          cells[i] = bv_.ite(hit, value, cells[i]);
        }
        return;
      }
      case Expr::Kind::kMemRead:
        // Store to a hardware register: no effect on program state.
        eval(*target.children[0], live, frame);
        return;
      default:
        break;
    }
    throw std::logic_error("bmc: invalid store target");
  }

  BitVec read_input(const Expr& e) {
    auto pinned = options_.input_ranges.find(e.name);
    if (pinned != options_.input_ranges.end() &&
        pinned->second.first == pinned->second.second) {
      // Pinned input: a build-time constant, so everything it decides
      // (e.g. which dispatch branch runs) folds away instead of bloating
      // the formula.
      const BitVec v = bv_.constant(
          static_cast<std::uint32_t>(pinned->second.first));
      input_symbols_.emplace_back(e.name, v);
      return v;
    }
    BitVec v = bv_.fresh();
    input_symbols_.emplace_back(e.name, v);
    auto it = options_.input_ranges.find(e.name);
    if (it != options_.input_ranges.end()) {
      const auto [lo, hi] = it->second;
      const BitVec lo_v = bv_.constant(static_cast<std::uint32_t>(lo));
      const BitVec hi_v = bv_.constant(static_cast<std::uint32_t>(hi));
      if (lo >= 0) {
        circuit_.require(bv_.ule(lo_v, v));
        circuit_.require(bv_.ule(v, hi_v));
      } else {
        circuit_.require(bv_.sle(lo_v, v));
        circuit_.require(bv_.sle(v, hi_v));
      }
    }
    return v;
  }

  const Program& program_;
  const BmcOptions& options_;
  CircuitBuilder circuit_;
  BvBuilder bv_;
  std::unordered_map<std::uint32_t, BitVec> scalars_;
  std::unordered_map<std::uint32_t, std::vector<BitVec>> arrays_;
  std::vector<CheckedAssertion> property_assertions_;
  std::vector<CheckedAssertion> unwinding_assertions_;
  std::vector<std::pair<std::string, BitVec>> input_symbols_;
};

}  // namespace

const char* to_string(BmcResult::Status status) {
  switch (status) {
    case BmcResult::Status::kSafe: return "safe";
    case BmcResult::Status::kBoundedSafe: return "bounded-safe";
    case BmcResult::Status::kCounterexample: return "counterexample";
    case BmcResult::Status::kBudgetExceeded: return "unwind-budget-exceeded";
    case BmcResult::Status::kSolverTimeout: return "solver-timeout";
  }
  return "?";
}

BmcResult check(const Program& program, const BmcOptions& options) {
  BmcResult result;
  const auto start = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  sat::Solver solver;
  Unwinder unwinder(program, options, solver);
  try {
    unwinder.run();
  } catch (const GateBudgetExceeded& e) {
    result.status = BmcResult::Status::kBudgetExceeded;
    result.detail = e.what();
    result.seconds = elapsed();
    result.gates = unwinder.circuit().gate_count();
    return result;
  } catch (const InlineDepthExceeded& e) {
    result.status = BmcResult::Status::kBudgetExceeded;
    result.detail = e.what();
    result.seconds = elapsed();
    result.gates = unwinder.circuit().gate_count();
    return result;
  }

  result.gates = unwinder.circuit().gate_count();
  result.property_assertions = unwinder.properties().size();
  result.unwinding_assertions = unwinder.unwinding().size();

  // One failure selector per assertion so counterexamples can be attributed.
  std::vector<Lit> failures;
  for (const CheckedAssertion& a : unwinder.properties()) {
    failures.push_back(a.failure);
  }
  const Lit any_failure = unwinder.circuit().or_many(failures);
  if (unwinder.circuit().is_const(any_failure) &&
      !unwinder.circuit().const_value(any_failure)) {
    result.status = result.unwinding_assertions == 0
                        ? BmcResult::Status::kSafe
                        : BmcResult::Status::kBoundedSafe;
    result.seconds = elapsed();
    result.solver_vars = solver.num_vars();
    return result;
  }
  solver.add_unit(any_failure);

  sat::Limits limits;
  limits.max_conflicts = options.max_conflicts;
  limits.max_seconds = options.max_seconds;
  const sat::Result sat_result = solver.solve(limits);
  result.seconds = elapsed();
  result.solver_vars = solver.num_vars();
  result.solver_conflicts = solver.stats().conflicts;

  switch (sat_result) {
    case sat::Result::kSat: {
      result.status = BmcResult::Status::kCounterexample;
      for (const CheckedAssertion& a : unwinder.properties()) {
        const Lit f = a.failure;
        const bool failed = unwinder.circuit().is_const(f)
                                ? unwinder.circuit().const_value(f)
                                : solver.lit_value(f);
        if (failed) {
          result.failing_line = a.line;
          result.detail = a.what + " at line " + std::to_string(a.line);
          break;
        }
      }
      for (const auto& [name, symbol] : unwinder.inputs()) {
        result.inputs.emplace_back(name, unwinder.bv().model_value(symbol));
      }
      break;
    }
    case sat::Result::kUnsat:
      result.status = result.unwinding_assertions == 0
                          ? BmcResult::Status::kSafe
                          : BmcResult::Status::kBoundedSafe;
      break;
    case sat::Result::kUnknown:
      result.status = BmcResult::Status::kSolverTimeout;
      result.detail = "SAT budget exhausted";
      break;
  }
  return result;
}

}  // namespace esv::formal::bmc

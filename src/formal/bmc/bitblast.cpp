#include "formal/bmc/bitblast.hpp"

namespace esv::formal::bmc {

CircuitBuilder::CircuitBuilder(sat::Solver& solver) : solver_(solver) {
  true_lit_ = solver_.new_var();
  solver_.add_unit(true_lit_);
}

Lit CircuitBuilder::fresh() { return solver_.new_var(); }

Lit CircuitBuilder::and_(Lit a, Lit b) {
  if (is_const(a)) return const_value(a) ? b : false_lit();
  if (is_const(b)) return const_value(b) ? a : false_lit();
  if (a == b) return a;
  if (a == -b) return false_lit();
  const Lit out = fresh();
  ++gates_;
  solver_.add_clause({-out, a});
  solver_.add_clause({-out, b});
  solver_.add_clause({out, -a, -b});
  return out;
}

Lit CircuitBuilder::or_(Lit a, Lit b) { return -and_(-a, -b); }

Lit CircuitBuilder::xor_(Lit a, Lit b) {
  if (is_const(a)) return const_value(a) ? -b : b;
  if (is_const(b)) return const_value(b) ? -a : a;
  if (a == b) return false_lit();
  if (a == -b) return true_lit();
  const Lit out = fresh();
  ++gates_;
  solver_.add_clause({-out, a, b});
  solver_.add_clause({-out, -a, -b});
  solver_.add_clause({out, -a, b});
  solver_.add_clause({out, a, -b});
  return out;
}

Lit CircuitBuilder::mux(Lit sel, Lit then_lit, Lit else_lit) {
  if (is_const(sel)) return const_value(sel) ? then_lit : else_lit;
  if (then_lit == else_lit) return then_lit;
  return or_(and_(sel, then_lit), and_(-sel, else_lit));
}

Lit CircuitBuilder::and_many(const std::vector<Lit>& lits) {
  Lit acc = true_lit();
  for (Lit l : lits) acc = and_(acc, l);
  return acc;
}

Lit CircuitBuilder::or_many(const std::vector<Lit>& lits) {
  Lit acc = false_lit();
  for (Lit l : lits) acc = or_(acc, l);
  return acc;
}

// ---------------------------------------------------------------------------

BitVec BvBuilder::constant(std::uint32_t value) const {
  BitVec v;
  for (int i = 0; i < 32; ++i) {
    v.bits[static_cast<std::size_t>(i)] = c_.constant((value >> i) & 1u);
  }
  return v;
}

BitVec BvBuilder::fresh() {
  BitVec v;
  for (auto& bit : v.bits) bit = c_.fresh();
  return v;
}

bool BvBuilder::try_constant(const BitVec& v, std::uint32_t& out) const {
  std::uint32_t value = 0;
  for (int i = 0; i < 32; ++i) {
    const Lit l = v.bits[static_cast<std::size_t>(i)];
    if (!c_.is_const(l)) return false;
    if (c_.const_value(l)) value |= (1u << i);
  }
  out = value;
  return true;
}

BitVec BvBuilder::and_(const BitVec& a, const BitVec& b) {
  BitVec out;
  for (std::size_t i = 0; i < 32; ++i) out.bits[i] = c_.and_(a.bits[i], b.bits[i]);
  return out;
}

BitVec BvBuilder::or_(const BitVec& a, const BitVec& b) {
  BitVec out;
  for (std::size_t i = 0; i < 32; ++i) out.bits[i] = c_.or_(a.bits[i], b.bits[i]);
  return out;
}

BitVec BvBuilder::xor_(const BitVec& a, const BitVec& b) {
  BitVec out;
  for (std::size_t i = 0; i < 32; ++i) out.bits[i] = c_.xor_(a.bits[i], b.bits[i]);
  return out;
}

BitVec BvBuilder::not_(const BitVec& a) {
  BitVec out;
  for (std::size_t i = 0; i < 32; ++i) out.bits[i] = -a.bits[i];
  return out;
}

BitVec BvBuilder::add(const BitVec& a, const BitVec& b) {
  BitVec out;
  Lit carry = c_.false_lit();
  for (std::size_t i = 0; i < 32; ++i) {
    const Lit axb = c_.xor_(a.bits[i], b.bits[i]);
    out.bits[i] = c_.xor_(axb, carry);
    carry = c_.or_(c_.and_(a.bits[i], b.bits[i]), c_.and_(axb, carry));
  }
  return out;
}

BitVec BvBuilder::sub(const BitVec& a, const BitVec& b) {
  // a - b = a + ~b + 1.
  BitVec out;
  Lit carry = c_.true_lit();
  for (std::size_t i = 0; i < 32; ++i) {
    const Lit nb = -b.bits[i];
    const Lit axb = c_.xor_(a.bits[i], nb);
    out.bits[i] = c_.xor_(axb, carry);
    carry = c_.or_(c_.and_(a.bits[i], nb), c_.and_(axb, carry));
  }
  return out;
}

BitVec BvBuilder::neg(const BitVec& a) { return sub(constant(0), a); }

BitVec BvBuilder::mul(const BitVec& a, const BitVec& b) {
  BitVec acc = constant(0);
  for (unsigned i = 0; i < 32; ++i) {
    // acc += b[i] ? (a << i) : 0
    const BitVec shifted = shl_const(a, i);
    acc = ite(b.bits[i], add(acc, shifted), acc);
  }
  return acc;
}

void BvBuilder::udivrem(const BitVec& a, const BitVec& b, BitVec& quotient,
                        BitVec& remainder) {
  // Restoring division, MSB first.
  BitVec r = constant(0);
  BitVec q = constant(0);
  for (int i = 31; i >= 0; --i) {
    // r = (r << 1) | a[i]
    r = shl_const(r, 1);
    r.bits[0] = a.bits[static_cast<std::size_t>(i)];
    const Lit ge = ule(b, r);
    r = ite(ge, sub(r, b), r);
    q.bits[static_cast<std::size_t>(i)] = ge;
  }
  quotient = q;
  remainder = r;
}

BitVec BvBuilder::sdiv(const BitVec& a, const BitVec& b) {
  const Lit sa = a.bits[31];
  const Lit sb = b.bits[31];
  const BitVec abs_a = ite(sa, neg(a), a);
  const BitVec abs_b = ite(sb, neg(b), b);
  BitVec q;
  BitVec r;
  udivrem(abs_a, abs_b, q, r);
  const Lit flip = c_.xor_(sa, sb);
  return ite(flip, neg(q), q);
}

BitVec BvBuilder::srem(const BitVec& a, const BitVec& b) {
  const Lit sa = a.bits[31];
  const Lit sb = b.bits[31];
  const BitVec abs_a = ite(sa, neg(a), a);
  const BitVec abs_b = ite(sb, neg(b), b);
  BitVec q;
  BitVec r;
  udivrem(abs_a, abs_b, q, r);
  return ite(sa, neg(r), r);  // remainder takes the dividend's sign
}

BitVec BvBuilder::shl_const(const BitVec& a, unsigned count) const {
  BitVec out = constant(0);
  for (unsigned i = count; i < 32; ++i) out.bits[i] = a.bits[i - count];
  return out;
}

BitVec BvBuilder::lshr_const(const BitVec& a, unsigned count) const {
  BitVec out = constant(0);
  for (unsigned i = count; i < 32; ++i) out.bits[i - count] = a.bits[i];
  return out;
}

BitVec BvBuilder::shl(const BitVec& a, const BitVec& count) {
  std::uint32_t k = 0;
  if (try_constant(count, k)) return shl_const(a, k & 31u);
  BitVec acc = a;
  for (unsigned stage = 0; stage < 5; ++stage) {
    acc = ite(count.bits[stage], shl_const(acc, 1u << stage), acc);
  }
  return acc;
}

BitVec BvBuilder::lshr(const BitVec& a, const BitVec& count) {
  std::uint32_t k = 0;
  if (try_constant(count, k)) return lshr_const(a, k & 31u);
  BitVec acc = a;
  for (unsigned stage = 0; stage < 5; ++stage) {
    acc = ite(count.bits[stage], lshr_const(acc, 1u << stage), acc);
  }
  return acc;
}

Lit BvBuilder::eq(const BitVec& a, const BitVec& b) {
  Lit acc = c_.true_lit();
  for (std::size_t i = 0; i < 32; ++i) {
    acc = c_.and_(acc, -c_.xor_(a.bits[i], b.bits[i]));
  }
  return acc;
}

Lit BvBuilder::ult(const BitVec& a, const BitVec& b) {
  // Ripple comparison from LSB to MSB.
  Lit lt = c_.false_lit();
  for (std::size_t i = 0; i < 32; ++i) {
    const Lit eq_bit = -c_.xor_(a.bits[i], b.bits[i]);
    const Lit a_lt_b = c_.and_(-a.bits[i], b.bits[i]);
    lt = c_.or_(a_lt_b, c_.and_(eq_bit, lt));
  }
  return lt;
}

Lit BvBuilder::ule(const BitVec& a, const BitVec& b) { return -ult(b, a); }

Lit BvBuilder::slt(const BitVec& a, const BitVec& b) {
  const Lit sa = a.bits[31];
  const Lit sb = b.bits[31];
  // sa && !sb -> a < b; !sa && sb -> a > b; same sign -> unsigned compare.
  const Lit diff_sign = c_.xor_(sa, sb);
  return c_.mux(diff_sign, sa, ult(a, b));
}

Lit BvBuilder::sle(const BitVec& a, const BitVec& b) { return -slt(b, a); }

Lit BvBuilder::is_zero(const BitVec& a) {
  Lit any = c_.false_lit();
  for (std::size_t i = 0; i < 32; ++i) any = c_.or_(any, a.bits[i]);
  return -any;
}

BitVec BvBuilder::from_bool(Lit l) const {
  BitVec v = constant(0);
  v.bits[0] = l;
  return v;
}

BitVec BvBuilder::ite(Lit sel, const BitVec& then_v, const BitVec& else_v) {
  if (c_.is_const(sel)) return c_.const_value(sel) ? then_v : else_v;
  BitVec out;
  for (std::size_t i = 0; i < 32; ++i) {
    out.bits[i] = c_.mux(sel, then_v.bits[i], else_v.bits[i]);
  }
  return out;
}

std::uint32_t BvBuilder::model_value(const BitVec& v) const {
  std::uint32_t out = 0;
  for (int i = 0; i < 32; ++i) {
    const Lit l = v.bits[static_cast<std::size_t>(i)];
    bool bit;
    if (c_.is_const(l)) {
      bit = c_.const_value(l);
    } else {
      bit = c_.solver().lit_value(l);
    }
    if (bit) out |= (1u << i);
  }
  return out;
}

}  // namespace esv::formal::bmc

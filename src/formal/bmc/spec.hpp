// Property instrumentation — the role the Spec tool / SpC language plays in
// the paper's CBMC and BLAST experiments.
//
// "CBMC does not support any mechanism to specify temporal properties.
// Therefore, we required the use of the Spec tool in order to describe the
// properties and then a newly generated C file (consisting of the property
// described in it) is fed into CBMC."
//
// The generated monitor checks the operation-response property at the C
// level: after the application layer dispatches operation `op_code`, the
// operation's return register must hold one of the documented return codes.
// The instrumented program is then checked by the BMC or the predicate-
// abstraction engine like any other assertion-carrying program.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace esv::formal {

/// Rewrites `source` (which must contain the application-loop marker
/// statement "test_cases = test_cases + 1;") so that the response property
/// for the operation dispatched as `op_code` is asserted on every loop
/// iteration. Throws std::invalid_argument if the marker is missing.
std::string instrument_response(const std::string& source, int op_code,
                                const std::string& ret_global,
                                const std::vector<std::uint32_t>& codes);

/// Reachability query: asserts that operation `op_code` never returns
/// `code`, so a BMC counterexample is exactly an input sequence that reaches
/// the code. Used by the hybrid (simulation + formal) coverage engine.
std::string instrument_reachability(const std::string& source, int op_code,
                                    const std::string& ret_global,
                                    std::uint32_t code);

/// Turns the software's infinite application loop ("while (1) {") into a
/// single iteration so the BMC can be pointed at one step from a concrete
/// state snapshot. Throws std::invalid_argument if the loop is missing.
std::string single_iteration(const std::string& source);

}  // namespace esv::formal

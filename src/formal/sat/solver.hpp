// CDCL SAT solver — the decision procedure under the bounded model checker.
//
// Standard architecture: two-watched-literal propagation, first-UIP conflict
// analysis with clause learning, VSIDS-style activity decision heuristic,
// phase saving, and Luby restarts. Resource limits (conflicts, wall time)
// make it usable as a budgeted back end: BMC reports "budget exceeded"
// instead of hanging, which is how we reproduce the paper's ">5h" CBMC rows.
#pragma once

#include <cstdint>
#include <vector>

namespace esv::formal::sat {

/// Literal: +v asserts variable v, -v its negation. Variables are 1-based.
using Lit = std::int32_t;

enum class Result { kSat, kUnsat, kUnknown };

struct Limits {
  /// Give up after this many conflicts (0 = unlimited).
  std::uint64_t max_conflicts = 0;
  /// Give up after this much wall time in seconds (0 = unlimited).
  double max_seconds = 0;
};

struct Stats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t restarts = 0;
};

class Solver {
 public:
  Solver();

  /// Allocates a fresh variable; returns its (positive) index.
  int new_var();
  int num_vars() const { return static_cast<int>(assigns_.size()) - 1; }

  /// Adds a clause (empty clause makes the instance trivially unsat;
  /// duplicate/complementary literals are handled).
  void add_clause(std::vector<Lit> lits);
  void add_unit(Lit l) { add_clause({l}); }

  Result solve(const Limits& limits = {});

  /// Model access after kSat.
  bool value(int var) const;
  bool lit_value(Lit l) const { return l > 0 ? value(l) : !value(-l); }

  const Stats& stats() const { return stats_; }

 private:
  enum class LBool : std::int8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

  struct Clause {
    std::vector<Lit> lits;
    bool learned = false;
  };

  struct Watcher {
    std::uint32_t clause;
    Lit blocker;
  };

  static std::size_t watch_index(Lit l) {
    const auto v = static_cast<std::size_t>(l > 0 ? l : -l);
    return v * 2 + (l > 0 ? 0 : 1);
  }

  LBool lit_state(Lit l) const;
  void enqueue(Lit l, std::int32_t reason);
  std::uint32_t propagate();  // returns conflicting clause or kNoConflict
  void analyze(std::uint32_t conflict, std::vector<Lit>& learned,
               int& backtrack_level);
  void backtrack(int level);
  Lit pick_branch();
  void bump_var(int var);
  void decay_activities();
  void attach_clause(std::uint32_t index);
  static std::uint64_t luby(std::uint64_t i);

  static constexpr std::uint32_t kNoConflict = ~std::uint32_t{0};
  static constexpr std::int32_t kNoReason = -1;

  std::vector<Clause> clauses_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by watch_index(lit)
  std::vector<LBool> assigns_;                 // indexed by var
  std::vector<bool> phase_;                    // saved phases
  std::vector<std::int32_t> reason_;           // clause index or kNoReason
  std::vector<std::int32_t> level_;
  std::vector<double> activity_;
  std::vector<Lit> trail_;
  std::vector<std::size_t> trail_limits_;
  std::size_t propagate_head_ = 0;
  double var_inc_ = 1.0;
  bool unsat_ = false;
  std::vector<bool> seen_;  // scratch for analyze()
  Stats stats_;
};

}  // namespace esv::formal::sat

#include "formal/sat/solver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

namespace esv::formal::sat {

Solver::Solver() {
  // Variable 0 is unused so literals map cleanly.
  assigns_.push_back(LBool::kUndef);
  phase_.push_back(false);
  reason_.push_back(kNoReason);
  level_.push_back(0);
  activity_.push_back(0.0);
  seen_.push_back(false);
  watches_.resize(2);
}

int Solver::new_var() {
  assigns_.push_back(LBool::kUndef);
  phase_.push_back(false);
  reason_.push_back(kNoReason);
  level_.push_back(0);
  activity_.push_back(0.0);
  seen_.push_back(false);
  watches_.resize(watches_.size() + 2);
  return num_vars();
}

Solver::LBool Solver::lit_state(Lit l) const {
  const LBool v = assigns_[static_cast<std::size_t>(l > 0 ? l : -l)];
  if (v == LBool::kUndef) return LBool::kUndef;
  const bool truth = (v == LBool::kTrue) == (l > 0);
  return truth ? LBool::kTrue : LBool::kFalse;
}

bool Solver::value(int var) const {
  return assigns_[static_cast<std::size_t>(var)] == LBool::kTrue;
}

void Solver::add_clause(std::vector<Lit> lits) {
  if (unsat_) return;
  // Normalize: drop duplicates, detect tautology.
  std::sort(lits.begin(), lits.end(), [](Lit a, Lit b) {
    const int va = a > 0 ? a : -a;
    const int vb = b > 0 ? b : -b;
    return va != vb ? va < vb : a < b;
  });
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  for (std::size_t i = 0; i + 1 < lits.size(); ++i) {
    if (lits[i] == -lits[i + 1]) return;  // tautology
  }
  // Remove literals already false at level 0; satisfied clause is dropped.
  std::vector<Lit> filtered;
  for (Lit l : lits) {
    const LBool s = lit_state(l);
    if (s == LBool::kTrue && level_[static_cast<std::size_t>(std::abs(l))] == 0) {
      return;
    }
    if (s == LBool::kFalse && level_[static_cast<std::size_t>(std::abs(l))] == 0) {
      continue;
    }
    filtered.push_back(l);
  }
  if (filtered.empty()) {
    unsat_ = true;
    return;
  }
  if (filtered.size() == 1) {
    if (lit_state(filtered[0]) == LBool::kUndef) {
      enqueue(filtered[0], kNoReason);
      if (propagate() != kNoConflict) unsat_ = true;
    }
    return;
  }
  clauses_.push_back(Clause{std::move(filtered), false});
  attach_clause(static_cast<std::uint32_t>(clauses_.size() - 1));
}

void Solver::attach_clause(std::uint32_t index) {
  const Clause& c = clauses_[index];
  watches_[watch_index(-c.lits[0])].push_back(Watcher{index, c.lits[1]});
  watches_[watch_index(-c.lits[1])].push_back(Watcher{index, c.lits[0]});
}

void Solver::enqueue(Lit l, std::int32_t reason) {
  const auto var = static_cast<std::size_t>(l > 0 ? l : -l);
  assigns_[var] = l > 0 ? LBool::kTrue : LBool::kFalse;
  phase_[var] = l > 0;
  reason_[var] = reason;
  level_[var] = static_cast<std::int32_t>(trail_limits_.size());
  trail_.push_back(l);
}

std::uint32_t Solver::propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];
    ++stats_.propagations;
    auto& watchers = watches_[watch_index(p)];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < watchers.size(); ++i) {
      const Watcher w = watchers[i];
      if (lit_state(w.blocker) == LBool::kTrue) {
        watchers[keep++] = w;
        continue;
      }
      Clause& c = clauses_[w.clause];
      // Ensure the false literal -p is at position 1.
      if (c.lits[0] == -p) std::swap(c.lits[0], c.lits[1]);
      if (lit_state(c.lits[0]) == LBool::kTrue) {
        watchers[keep++] = Watcher{w.clause, c.lits[0]};
        continue;
      }
      // Find a new literal to watch.
      bool moved = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (lit_state(c.lits[k]) != LBool::kFalse) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[watch_index(-c.lits[1])].push_back(
              Watcher{w.clause, c.lits[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      watchers[keep++] = w;
      if (lit_state(c.lits[0]) == LBool::kFalse) {
        // Conflict: keep remaining watchers, return the clause.
        for (std::size_t k = i + 1; k < watchers.size(); ++k) {
          watchers[keep++] = watchers[k];
        }
        watchers.resize(keep);
        return w.clause;
      }
      enqueue(c.lits[0], static_cast<std::int32_t>(w.clause));
    }
    watchers.resize(keep);
  }
  return kNoConflict;
}

void Solver::bump_var(int var) {
  activity_[static_cast<std::size_t>(var)] += var_inc_;
  if (activity_[static_cast<std::size_t>(var)] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
}

void Solver::decay_activities() { var_inc_ /= 0.95; }

void Solver::analyze(std::uint32_t conflict, std::vector<Lit>& learned,
                     int& backtrack_level) {
  learned.clear();
  learned.push_back(0);  // placeholder for the asserting literal
  int counter = 0;
  Lit p = 0;
  std::uint32_t reason_clause = conflict;
  std::size_t trail_index = trail_.size();
  const int current_level = static_cast<int>(trail_limits_.size());

  do {
    const Clause& c = clauses_[reason_clause];
    for (const Lit q : c.lits) {
      if (q == p) continue;
      const auto var = static_cast<std::size_t>(q > 0 ? q : -q);
      if (!seen_[var] && level_[var] > 0) {
        seen_[var] = true;
        bump_var(static_cast<int>(var));
        if (level_[var] >= current_level) {
          ++counter;
        } else {
          learned.push_back(q);
        }
      }
    }
    // Pick the next seen literal from the trail.
    while (true) {
      p = trail_[--trail_index];
      const auto var = static_cast<std::size_t>(p > 0 ? p : -p);
      if (seen_[var]) break;
    }
    const auto pvar = static_cast<std::size_t>(p > 0 ? p : -p);
    seen_[pvar] = false;
    --counter;
    if (counter > 0) {
      reason_clause = static_cast<std::uint32_t>(reason_[pvar]);
    }
  } while (counter > 0);
  learned[0] = -p;

  // Compute the backtrack level (second-highest level in the clause).
  backtrack_level = 0;
  for (std::size_t i = 1; i < learned.size(); ++i) {
    const auto var =
        static_cast<std::size_t>(learned[i] > 0 ? learned[i] : -learned[i]);
    backtrack_level = std::max(backtrack_level, level_[var]);
  }
  for (const Lit l : learned) {
    seen_[static_cast<std::size_t>(l > 0 ? l : -l)] = false;
  }
}

void Solver::backtrack(int target_level) {
  while (static_cast<int>(trail_limits_.size()) > target_level) {
    const std::size_t limit = trail_limits_.back();
    trail_limits_.pop_back();
    while (trail_.size() > limit) {
      const Lit l = trail_.back();
      trail_.pop_back();
      assigns_[static_cast<std::size_t>(l > 0 ? l : -l)] = LBool::kUndef;
    }
  }
  propagate_head_ = trail_.size();
}

Lit Solver::pick_branch() {
  int best = 0;
  double best_activity = -1.0;
  for (int v = 1; v <= num_vars(); ++v) {
    if (assigns_[static_cast<std::size_t>(v)] == LBool::kUndef &&
        activity_[static_cast<std::size_t>(v)] > best_activity) {
      best = v;
      best_activity = activity_[static_cast<std::size_t>(v)];
    }
  }
  if (best == 0) return 0;
  return phase_[static_cast<std::size_t>(best)] ? best : -best;
}

std::uint64_t Solver::luby(std::uint64_t i) {
  // Finite-subsequence Luby computation; the sequence is 1-indexed.
  if (i == 0) return 1;
  std::uint64_t k = 1;
  while ((1ULL << (k + 1)) - 1 <= i) ++k;
  while (i != (1ULL << k) - 1) {
    i -= (1ULL << k) - 1;
    k = 1;
    while ((1ULL << (k + 1)) - 1 <= i) ++k;
  }
  return 1ULL << (k - 1);
}

Result Solver::solve(const Limits& limits) {
  if (unsat_) return Result::kUnsat;
  const auto start = std::chrono::steady_clock::now();
  const auto out_of_budget = [&] {
    if (limits.max_conflicts != 0 && stats_.conflicts >= limits.max_conflicts) {
      return true;
    }
    if (limits.max_seconds > 0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (elapsed >= limits.max_seconds) return true;
    }
    return false;
  };

  std::uint64_t restart_unit = 64;
  std::uint64_t conflicts_until_restart =
      restart_unit * luby(stats_.restarts + 1);
  std::vector<Lit> learned;

  for (;;) {
    const std::uint32_t conflict = propagate();
    if (conflict != kNoConflict) {
      ++stats_.conflicts;
      if (trail_limits_.empty()) return Result::kUnsat;
      if (out_of_budget()) return Result::kUnknown;
      int backtrack_level = 0;
      analyze(conflict, learned, backtrack_level);
      backtrack(backtrack_level);
      if (learned.size() == 1) {
        enqueue(learned[0], kNoReason);
      } else {
        clauses_.push_back(Clause{learned, true});
        ++stats_.learned_clauses;
        attach_clause(static_cast<std::uint32_t>(clauses_.size() - 1));
        enqueue(learned[0], static_cast<std::int32_t>(clauses_.size() - 1));
      }
      decay_activities();
      if (conflicts_until_restart > 0) --conflicts_until_restart;
    } else {
      if (conflicts_until_restart == 0) {
        ++stats_.restarts;
        conflicts_until_restart = restart_unit * luby(stats_.restarts + 1);
        backtrack(0);
        continue;
      }
      if (out_of_budget()) return Result::kUnknown;
      const Lit next = pick_branch();
      if (next == 0) return Result::kSat;
      ++stats_.decisions;
      trail_limits_.push_back(trail_.size());
      enqueue(next, kNoReason);
    }
  }
}

}  // namespace esv::formal::sat

// ESV spec files: a small text format binding propositions and temporal
// properties to a mini-C program, so verification runs can be configured
// without writing C++ (the esv-verify tool consumes these).
//
//   # EEPROM read response
//   input  op_select 0 6            # constrained-random range (inclusive)
//   input  inject_fault chance 1 100
//   prop   reading = fname == EEE_Read      # function-activity proposition
//   prop   ok      = ret_read == EEE_OK     # enum constants resolve
//   prop   busy    = eee_state != 0
//   check  response: G (reading -> F[2000] ok)
//   check  psl_response psl: always (reading -> eventually! ok)
//
// Lines: blank, '#' comments, `input`, `prop`, `check`, `fault` (a fault-
// injection directive, see docs/FAULTS.md). Proposition
// right-hand sides are <global> <op> <value> where <op> is one of
// == != < <= > >=, <global> may be `fname`, and <value> is an integer
// literal (decimal or 0x hex), an enum constant of the program, or — when
// the left side is fname — a function name.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "minic/ast.hpp"
#include "sctc/checker.hpp"

namespace esv::spec {

class SpecError : public std::runtime_error {
 public:
  SpecError(const std::string& message, int line)
      : std::runtime_error("spec line " + std::to_string(line) + ": " +
                           message),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

struct PropositionSpec {
  std::string name;
  std::string global;  // global variable name, or "fname"
  sctc::Compare op = sctc::Compare::kEq;
  std::string value_text;  // unresolved: literal / enum constant / function
  int line = 0;
};

struct PropertySpec {
  std::string name;
  std::string text;
  temporal::Dialect dialect = temporal::Dialect::kFltl;
  int line = 0;
};

struct InputSpec {
  std::string name;
  bool is_chance = false;
  std::int64_t lo = 0;  // range lo, or chance numerator
  std::int64_t hi = 0;  // range hi, or chance denominator
  int line = 0;
};

/// A `fault` directive, stored as raw text. The spec layer does not depend
/// on the fault subsystem; consumers (campaign runner, esv-verify) parse
/// the text with fault::parse_fault_line. docs/FAULTS.md has the syntax.
struct FaultLineSpec {
  std::string text;  // the directive with the leading `fault` stripped
  int line = 0;
};

struct SpecFile {
  std::vector<PropositionSpec> propositions;
  std::vector<PropertySpec> properties;
  std::vector<InputSpec> inputs;
  std::vector<FaultLineSpec> fault_lines;
};

/// Parses the text of a spec file. Throws SpecError on malformed input.
SpecFile parse_spec(std::string_view text);

/// Resolves every proposition against `program` (addresses, enum constants,
/// fname ids) and registers propositions + properties on `checker`, reading
/// values through `memory`. Throws SpecError on unresolvable names.
void apply_spec(const SpecFile& spec, const minic::Program& program,
                const sctc::MemoryReadInterface& memory,
                sctc::TemporalChecker& checker);

}  // namespace esv::spec

#include "spec/specfile.hpp"

#include <cctype>

#include "common/strings.hpp"

namespace esv::spec {

namespace {

/// Splits a line into whitespace-separated words, stopping at '#'.
std::vector<std::string> words_of(std::string_view line) {
  std::vector<std::string> out;
  std::string current;
  for (char c : line) {
    if (c == '#') break;
    if (c == ' ' || c == '\t') {
      if (!current.empty()) {
        out.push_back(current);
        current.clear();
      }
    } else {
      current += c;
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

sctc::Compare parse_op(const std::string& text, int line) {
  if (text == "==") return sctc::Compare::kEq;
  if (text == "!=") return sctc::Compare::kNe;
  if (text == "<") return sctc::Compare::kLt;
  if (text == "<=") return sctc::Compare::kLe;
  if (text == ">") return sctc::Compare::kGt;
  if (text == ">=") return sctc::Compare::kGe;
  throw SpecError("unknown comparison operator '" + text + "'", line);
}

bool parse_int(const std::string& text, std::int64_t& out) {
  if (text.empty()) return false;
  std::size_t i = 0;
  bool negative = false;
  if (text[0] == '-') {
    negative = true;
    i = 1;
  }
  if (i >= text.size()) return false;
  std::int64_t value = 0;
  if (text.size() > i + 2 && text[i] == '0' &&
      (text[i + 1] == 'x' || text[i + 1] == 'X')) {
    for (i += 2; i < text.size(); ++i) {
      const char c = static_cast<char>(std::tolower(text[i]));
      if (c >= '0' && c <= '9') {
        value = value * 16 + (c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value = value * 16 + (c - 'a' + 10);
      } else {
        return false;
      }
    }
  } else {
    for (; i < text.size(); ++i) {
      if (text[i] < '0' || text[i] > '9') return false;
      value = value * 10 + (text[i] - '0');
    }
  }
  out = negative ? -value : value;
  return true;
}

}  // namespace

SpecFile parse_spec(std::string_view text) {
  SpecFile spec;
  int line_no = 0;
  for (const std::string& raw : common::split(text, '\n')) {
    ++line_no;
    const std::string_view line = common::trim(raw);
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> w = words_of(line);
    if (w.empty()) continue;

    if (w[0] == "input") {
      // input NAME LO HI   |   input NAME chance NUM DEN
      InputSpec input;
      input.line = line_no;
      if (w.size() == 5 && w[2] == "chance") {
        input.is_chance = true;
        if (!parse_int(w[3], input.lo) || !parse_int(w[4], input.hi)) {
          throw SpecError("malformed chance", line_no);
        }
      } else if (w.size() == 4) {
        if (!parse_int(w[2], input.lo) || !parse_int(w[3], input.hi)) {
          throw SpecError("malformed input range", line_no);
        }
      } else {
        throw SpecError("expected: input NAME LO HI", line_no);
      }
      input.name = w[1];
      spec.inputs.push_back(std::move(input));
      continue;
    }

    if (w[0] == "prop") {
      // prop NAME = GLOBAL OP VALUE
      if (w.size() != 6 || w[2] != "=") {
        throw SpecError("expected: prop NAME = GLOBAL OP VALUE", line_no);
      }
      PropositionSpec prop;
      prop.line = line_no;
      prop.name = w[1];
      prop.global = w[3];
      prop.op = parse_op(w[4], line_no);
      prop.value_text = w[5];
      spec.propositions.push_back(std::move(prop));
      continue;
    }

    if (w[0] == "check") {
      // check NAME [psl]: PROPERTY-TEXT
      const std::size_t colon = line.find(':');
      if (colon == std::string_view::npos) {
        throw SpecError("expected ':' in check line", line_no);
      }
      const std::vector<std::string> head =
          words_of(line.substr(0, colon));
      if (head.size() < 2 || head.size() > 3) {
        throw SpecError("expected: check NAME [psl]: PROPERTY", line_no);
      }
      PropertySpec property;
      property.line = line_no;
      property.name = head[1];
      if (head.size() == 3) {
        if (head[2] != "psl" && head[2] != "fltl") {
          throw SpecError("unknown dialect '" + head[2] + "'", line_no);
        }
        property.dialect = head[2] == "psl" ? temporal::Dialect::kPsl
                                            : temporal::Dialect::kFltl;
      }
      property.text = std::string(common::trim(line.substr(colon + 1)));
      if (property.text.empty()) {
        throw SpecError("empty property", line_no);
      }
      spec.properties.push_back(std::move(property));
      continue;
    }

    if (w[0] == "fault") {
      // fault KIND [ARGS...] — stored raw, parsed by the fault subsystem.
      if (w.size() < 2) {
        throw SpecError("expected: fault KIND [ARGS...]", line_no);
      }
      FaultLineSpec fault;
      fault.line = line_no;
      fault.text = std::string(common::trim(line.substr(5)));
      spec.fault_lines.push_back(std::move(fault));
      continue;
    }

    throw SpecError("unknown directive '" + w[0] + "'", line_no);
  }
  return spec;
}

void apply_spec(const SpecFile& spec, const minic::Program& program,
                const sctc::MemoryReadInterface& memory,
                sctc::TemporalChecker& checker) {
  for (const PropositionSpec& prop : spec.propositions) {
    // Resolve the watched global (fname resolves via its injected slot).
    const minic::GlobalVar* global = program.find_global(prop.global);
    if (global == nullptr) {
      throw SpecError("unknown global '" + prop.global + "'", prop.line);
    }
    if (global->is_array) {
      throw SpecError("'" + prop.global + "' is an array", prop.line);
    }
    // Resolve the comparison value: integer, enum constant, or (for fname)
    // a function name.
    std::int64_t value = 0;
    if (!parse_int(prop.value_text, value)) {
      bool resolved = false;
      for (const auto& [name, constant] : program.enum_constants) {
        if (name == prop.value_text) {
          value = constant;
          resolved = true;
          break;
        }
      }
      if (!resolved && prop.global == "fname") {
        const std::uint32_t id = program.fname_id(prop.value_text);
        if (id != 0) {
          value = id;
          resolved = true;
        }
      }
      if (!resolved) {
        throw SpecError("cannot resolve value '" + prop.value_text + "'",
                        prop.line);
      }
    }
    checker.register_proposition(
        prop.name, std::make_unique<sctc::MemoryWordProposition>(
                       memory, global->address, prop.op,
                       static_cast<std::uint32_t>(value)));
  }
  for (const PropertySpec& property : spec.properties) {
    try {
      checker.add_property(property.name, property.text, property.dialect);
    } catch (const std::exception& e) {
      throw SpecError(std::string("in property '") + property.name +
                          "': " + e.what(),
                      property.line);
    }
  }
}

}  // namespace esv::spec

#include "chaos/chaos.hpp"

#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace esv::chaos {

namespace {

// splitmix64 finalizer: mixes the chaos seed with a directive index and a
// hit counter (and, in the constructor, with process identity) so every
// draw is independent and a pure function of its coordinates.
std::uint64_t mix64(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t x = a;
  x ^= b * 0x9E3779B97F4A7C15ULL;
  x ^= c * 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

std::vector<std::string> split_tokens(std::string_view text) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < text.size() && text[i] != ' ' && text[i] != '\t') ++i;
    if (i > start) tokens.emplace_back(text.substr(start, i - start));
  }
  return tokens;
}

std::uint64_t parse_u64(const std::string& token, const char* what,
                        int line) {
  if (token.empty()) throw ChaosPlanError(std::string(what) + " missing", line);
  std::uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') {
      throw ChaosPlanError("bad " + std::string(what) + " '" + token + "'",
                           line);
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

struct ActionRule {
  Point point;
  const char* name;
  Action action;
  bool needs_arg;  // milliseconds operand
};

constexpr ActionRule kActionRules[] = {
    {Point::kWireTx, "drop", Action::kDrop, false},
    {Point::kWireTx, "truncate", Action::kTruncate, false},
    {Point::kWireTx, "corrupt", Action::kCorrupt, false},
    {Point::kWireTx, "duplicate", Action::kDuplicate, false},
    {Point::kWireTx, "delay", Action::kDelay, true},
    {Point::kWireTx, "shortsend", Action::kShortSend, false},
    {Point::kWorkerSeed, "crash", Action::kCrash, false},
    {Point::kWorkerSeed, "stall", Action::kStall, true},
    {Point::kWorkerHeartbeat, "delay", Action::kDelay, true},
    {Point::kJournalWrite, "shortwrite", Action::kShortWrite, false},
    {Point::kJournalWrite, "failwrite", Action::kFailWrite, false},
    {Point::kJournalWrite, "enospc", Action::kEnospc, false},
    {Point::kJournalFsync, "failsync", Action::kFailSync, false},
};

ChaosSpec parse_directive(std::string_view text, int line) {
  const std::vector<std::string> tokens = split_tokens(text);
  if (tokens.size() < 2) {
    throw ChaosPlanError("expected 'point action ...'", line);
  }

  ChaosSpec spec;
  spec.line = line;

  bool point_known = false;
  for (std::size_t p = 0; p < kPointCount; ++p) {
    if (tokens[0] == point_name(static_cast<Point>(p))) {
      spec.point = static_cast<Point>(p);
      point_known = true;
      break;
    }
  }
  if (!point_known) {
    throw ChaosPlanError("unknown fault point '" + tokens[0] + "'", line);
  }

  const ActionRule* rule = nullptr;
  for (const ActionRule& candidate : kActionRules) {
    if (candidate.point == spec.point && tokens[1] == candidate.name) {
      rule = &candidate;
      break;
    }
  }
  if (rule == nullptr) {
    throw ChaosPlanError("action '" + tokens[1] + "' does not apply to point " +
                             tokens[0],
                         line);
  }
  spec.action = rule->action;

  std::size_t i = 2;
  if (rule->needs_arg) {
    if (i >= tokens.size()) {
      throw ChaosPlanError(
          "action '" + tokens[1] + "' needs a milliseconds operand", line);
    }
    spec.arg = parse_u64(tokens[i], "milliseconds", line);
    ++i;
  }

  bool selector_seen = false;
  for (; i < tokens.size(); ++i) {
    const std::string& option = tokens[i];
    auto next_token = [&](const char* what) -> const std::string& {
      if (i + 1 >= tokens.size()) {
        throw ChaosPlanError("'" + option + "' needs a " + what, line);
      }
      return tokens[++i];
    };
    if (option == "nth") {
      if (selector_seen) {
        throw ChaosPlanError("at most one of 'nth'/'prob' per directive",
                             line);
      }
      selector_seen = true;
      spec.nth = parse_u64(next_token("hit number"), "nth", line);
      if (spec.nth == 0) throw ChaosPlanError("nth is 1-based", line);
    } else if (option == "prob") {
      if (selector_seen) {
        throw ChaosPlanError("at most one of 'nth'/'prob' per directive",
                             line);
      }
      selector_seen = true;
      const std::string& frac = next_token("fraction A/B");
      const std::size_t slash = frac.find('/');
      if (slash == std::string::npos) {
        throw ChaosPlanError("bad probability '" + frac + "' (want A/B)",
                             line);
      }
      spec.nth = 0;
      spec.prob_num = static_cast<std::uint32_t>(
          parse_u64(frac.substr(0, slash), "probability numerator", line));
      spec.prob_den = static_cast<std::uint32_t>(
          parse_u64(frac.substr(slash + 1), "probability denominator", line));
      if (spec.prob_den == 0) {
        throw ChaosPlanError("probability denominator must be > 0", line);
      }
    } else if (option == "count") {
      spec.count = parse_u64(next_token("count"), "count", line);
    } else if (option == "role") {
      const std::string& role = next_token("role (broker|worker)");
      if (role == "broker") {
        spec.role = Role::kBroker;
      } else if (role == "worker") {
        spec.role = Role::kWorker;
      } else {
        throw ChaosPlanError("bad role '" + role + "' (want broker|worker)",
                             line);
      }
    } else if (option == "gen") {
      spec.has_generation = true;
      spec.generation = static_cast<std::uint32_t>(
          parse_u64(next_token("generation"), "gen", line));
    } else {
      throw ChaosPlanError("unknown option '" + option + "'", line);
    }
  }
  return spec;
}

}  // namespace

const char* point_name(Point point) {
  switch (point) {
    case Point::kWireTx: return "wire.tx";
    case Point::kWorkerSeed: return "worker.seed";
    case Point::kWorkerHeartbeat: return "worker.heartbeat";
    case Point::kJournalWrite: return "journal.write";
    case Point::kJournalFsync: return "journal.fsync";
  }
  return "?";
}

const char* action_name(Action action) {
  switch (action) {
    case Action::kNone: return "none";
    case Action::kDrop: return "drop";
    case Action::kTruncate: return "truncate";
    case Action::kCorrupt: return "corrupt";
    case Action::kDuplicate: return "duplicate";
    case Action::kDelay: return "delay";
    case Action::kShortSend: return "shortsend";
    case Action::kCrash: return "crash";
    case Action::kStall: return "stall";
    case Action::kShortWrite: return "shortwrite";
    case Action::kFailWrite: return "failwrite";
    case Action::kEnospc: return "enospc";
    case Action::kFailSync: return "failsync";
  }
  return "?";
}

std::string ChaosSpec::describe() const {
  std::ostringstream out;
  out << point_name(point) << ' ' << action_name(action);
  if (action == Action::kDelay || action == Action::kStall) out << ' ' << arg;
  if (nth != 0) {
    out << " nth " << nth;
  } else {
    out << " prob " << prob_num << '/' << prob_den;
  }
  out << " count " << count;
  if (role == Role::kBroker) out << " role broker";
  if (role == Role::kWorker) out << " role worker";
  if (has_generation) out << " gen " << generation;
  return out.str();
}

std::string ChaosPlan::digest() const {
  if (entries.empty()) return "";
  std::uint64_t hash = 1469598103934665603ULL;  // FNV-1a offset basis
  auto feed = [&hash](std::string_view text) {
    for (char c : text) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 1099511628211ULL;
    }
  };
  for (const ChaosSpec& spec : entries) {
    feed(spec.describe());
    feed("\n");
  }
  std::ostringstream out;
  out << std::hex << std::setfill('0') << std::setw(16) << hash;
  return out.str();
}

ChaosPlan parse_plan(std::string_view text) {
  ChaosPlan plan;
  int line = 1;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    const bool at_end = i == text.size();
    if (!at_end && text[i] != '\n' && text[i] != ';') continue;
    std::string_view piece = text.substr(start, i - start);
    if (const std::size_t hash = piece.find('#'); hash != std::string::npos) {
      piece = piece.substr(0, hash);
    }
    bool blank = true;
    for (char c : piece) {
      if (c != ' ' && c != '\t' && c != '\r') blank = false;
    }
    if (!blank) plan.entries.push_back(parse_directive(piece, line));
    if (!at_end && text[i] == '\n') ++line;
    start = i + 1;
  }
  return plan;
}

std::atomic<ChaosEngine*> ChaosEngine::installed_{nullptr};

ChaosEngine::ChaosEngine(ChaosPlan plan, std::uint64_t seed, Role role,
                         std::uint32_t worker_id, std::uint32_t generation)
    : plan_(std::move(plan)),
      seed_(mix64(seed, role == Role::kWorker ? worker_id + 1u : 0u,
                  generation)),
      role_(role),
      generation_(generation),
      fired_(plan_.entries.size(), 0) {}

ChaosEngine::~ChaosEngine() {
  ChaosEngine* self = this;
  installed_.compare_exchange_strong(self, nullptr,
                                     std::memory_order_acq_rel);
}

void ChaosEngine::set_metrics(obs::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_ = metrics;
  m_injected_ = metrics != nullptr ? &metrics->counter("chaos.injected")
                                   : nullptr;
}

void ChaosEngine::set_trace(obs::TraceWriter* trace) {
  std::lock_guard<std::mutex> lock(mutex_);
  trace_ = trace;
}

Injection ChaosEngine::decide(Point point, std::uint64_t extent) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t point_index = static_cast<std::size_t>(point);
  const std::uint64_t hit = ++hits_[point_index];

  for (std::size_t i = 0; i < plan_.entries.size(); ++i) {
    const ChaosSpec& spec = plan_.entries[i];
    if (spec.point != point) continue;
    if (spec.role != Role::kAny && spec.role != role_) continue;
    if (spec.has_generation && spec.generation != generation_) continue;
    if (spec.count != 0 && fired_[i] >= spec.count) continue;

    bool fire = false;
    if (spec.nth != 0) {
      fire = hit >= spec.nth;
    } else {
      common::Rng draw(mix64(seed_, i + 1, hit));
      fire = draw.next_chance(spec.prob_num, spec.prob_den);
    }
    if (!fire) continue;

    Injection injection{spec.action, spec.arg};
    std::string detail = spec.describe();
    if (spec.action == Action::kCorrupt) {
      if (extent == 0) continue;  // nothing to corrupt on this probe
      common::Rng draw(mix64(seed_ ^ 0xC04400FFULL, i + 1, hit));
      injection.arg = draw.next_below(extent);
      detail += " byte " + std::to_string(injection.arg);
    }

    ++fired_[i];
    ++injected_;
    log_.push_back(ChaosRecord{point, spec.action, hit, detail});
    if (m_injected_ != nullptr) {
      m_injected_->add();
      metrics_
          ->counter(std::string("chaos.") + point_name(point) + "." +
                    action_name(spec.action))
          .add();
    }
    if (trace_ != nullptr) {
      trace_->chaos_injected(point_name(point), action_name(spec.action), hit,
                             detail);
    }
    return injection;
  }
  return {};
}

std::uint64_t ChaosEngine::injected_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return injected_;
}

std::uint64_t ChaosEngine::hit_count(Point point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_[static_cast<std::size_t>(point)];
}

std::vector<ChaosRecord> ChaosEngine::log() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return log_;
}

void ChaosEngine::install(ChaosEngine* engine) {
  installed_.store(engine, std::memory_order_release);
}

ChaosEngine* install_from_env(std::uint32_t worker_id,
                              std::uint32_t generation) {
  const char* plan_text = std::getenv(kPlanEnv);
  if (plan_text == nullptr || plan_text[0] == '\0') return nullptr;
  const char* seed_text = std::getenv(kSeedEnv);
  std::uint64_t seed = 1;
  if (seed_text != nullptr && seed_text[0] != '\0') {
    seed = std::strtoull(seed_text, nullptr, 10);
  }
  ChaosPlan plan;
  try {
    plan = parse_plan(plan_text);
  } catch (const ChaosPlanError&) {
    return nullptr;  // orchestrator-validated; skew is a harness bug
  }
  if (plan.empty()) return nullptr;
  static std::unique_ptr<ChaosEngine> owner;
  owner = std::make_unique<ChaosEngine>(std::move(plan), seed, Role::kWorker,
                                        worker_id, generation);
  ChaosEngine::install(owner.get());
  return owner.get();
}

}  // namespace esv::chaos

// Self-chaos engine (docs/RESILIENCE.md): deterministic, seed-salted fault
// injection for the verifier's *own* infrastructure — the mirror image of
// src/fault/, which breaks the program under verification. Chaos breaks the
// campaign plane instead: wire frames, worker processes, journal I/O.
//
// A ChaosPlan is a list of directives, one per line (or ';'-separated),
// blank lines and '#' comments ignored:
//
//   # point action [arg] [nth N | prob A/B] [count K] [role R] [gen G]
//   wire.tx drop nth 3                   # silently lose the 3rd frame sent
//   wire.tx corrupt prob 1/50 count 2    # flip a payload byte, 2 times max
//   wire.tx delay 50 nth 1               # stall the 1st send 50 ms
//   worker.seed crash nth 2 gen 0        # SIGKILL before the 2nd seed,
//                                        #   first incarnation only
//   worker.seed stall 200 prob 1/10      # sleep 200 ms before a seed
//   worker.heartbeat delay 400 nth 5     # one late heartbeat
//   journal.write failwrite nth 4        # tear the 4th record, report EIO
//   journal.write enospc nth 1           # first record write sees ENOSPC
//   journal.fsync failsync nth 2         # second fsync reports EIO
//
// Selectors: `nth N` fires on the Nth hit of the point (1-based) and, with
// `count K`, on the K-1 hits after it; `prob A/B` draws per hit instead.
// Exactly one of nth/prob per directive; neither means `nth 1`. `count K`
// caps total injections for the directive (default 1; `count 0` = no cap).
// `role broker|worker` and `gen G` narrow a directive to one side of the
// campaign or one worker incarnation.
//
// Determinism: an engine is constructed from (plan, chaos seed, role,
// worker id, generation), and every decision is a pure function of those
// plus the per-point hit counter. Probabilistic draws use a private
// splitmix-seeded Rng per (directive, hit), so two runs with the same plan
// and seed inject identically — which is what lets the chaos sweep assert
// byte-identical recovery.
//
// Cost when off: fault points call chaos::at(), which is one relaxed atomic
// load and a branch when no engine is installed (bench_chaos_overhead holds
// this under 1% of campaign throughput).
//
// Process propagation: the broker forwards its plan to spawned workers via
// the ESV_CHAOS_PLAN / ESV_CHAOS_SEED environment; esv-worker calls
// install_from_env() at startup.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace esv::obs {
class Counter;
class MetricsRegistry;
class TraceWriter;
}  // namespace esv::obs

namespace esv::chaos {

/// Raised on malformed chaos-plan text.
class ChaosPlanError : public std::runtime_error {
 public:
  ChaosPlanError(const std::string& message, int line)
      : std::runtime_error("chaos plan line " + std::to_string(line) + ": " +
                           message),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Named infrastructure fault points. Each is probed exactly once per
/// operation by the layer that owns it.
enum class Point : std::uint8_t {
  kWireTx = 0,       // dist/wire.cpp write_frame: one probe per frame sent
  kWorkerSeed,       // dist/worker.cpp compute_loop: one probe per seed taken
  kWorkerHeartbeat,  // dist/worker.cpp heartbeat_loop: one probe per beat
  kJournalWrite,     // journal/journal.cpp write_record: one probe per record
  kJournalFsync,     // journal/journal.cpp sync_now: one probe per fsync
};
inline constexpr std::size_t kPointCount = 5;

/// Canonical point name as written in plans ("wire.tx", ...).
const char* point_name(Point point);

enum class Action : std::uint8_t {
  kNone = 0,
  // wire.tx
  kDrop,       // frame silently not sent
  kTruncate,   // only the first half of the frame bytes are sent
  kCorrupt,    // one payload byte XORed (detected by the frame CRC)
  kDuplicate,  // frame sent twice
  kDelay,      // send (or heartbeat) delayed arg milliseconds
  kShortSend,  // frame sent one byte per send(2) call
  // worker.seed
  kCrash,  // raise(SIGKILL) before computing the seed
  kStall,  // sleep arg milliseconds before computing the seed
  // worker.heartbeat reuses kDelay
  // journal.write
  kShortWrite,  // record written one byte per write(2) call (must succeed)
  kFailWrite,   // half the record written, then the write reports EIO
  kEnospc,      // write reports ENOSPC before any byte lands
  // journal.fsync
  kFailSync,  // fsync reports EIO
};

/// Canonical action name as written in plans ("drop", "failwrite", ...).
const char* action_name(Action action);

/// Which side of the campaign an engine runs on. Directives default to
/// kAny; `role broker` / `role worker` narrow them.
enum class Role : std::uint8_t { kAny = 0, kBroker, kWorker };

struct ChaosSpec {
  Point point = Point::kWireTx;
  Action action = Action::kNone;
  std::uint64_t arg = 0;  // delay/stall milliseconds

  std::uint64_t nth = 1;       // 1-based hit that starts firing (0 = use prob)
  std::uint32_t prob_num = 0;  // per-hit chance when nth == 0
  std::uint32_t prob_den = 1;
  std::uint64_t count = 1;  // max injections for this directive (0 = no cap)

  Role role = Role::kAny;
  bool has_generation = false;
  std::uint32_t generation = 0;  // fire only in this worker incarnation

  int line = 0;  // source line, for diagnostics

  /// Deterministic one-line rendering (used by the digest, logs and tests).
  std::string describe() const;
};

struct ChaosPlan {
  std::vector<ChaosSpec> entries;

  bool empty() const { return entries.empty(); }

  /// Stable 16-hex-digit FNV-1a digest over the canonical rendering of every
  /// entry (not source line numbers). Same contract as FaultPlan::digest():
  /// equal digests + equal chaos seed => identical injections. Empty plans
  /// digest to "".
  std::string digest() const;
};

/// Parses a whole chaos plan: directives separated by newlines or ';',
/// '#' comments to end of line. Throws ChaosPlanError on malformed input,
/// including an action that does not belong to its point.
ChaosPlan parse_plan(std::string_view text);

/// The decision a fault point acts on. Contextual meaning of `arg`:
/// milliseconds for kDelay/kStall, the payload byte index for kCorrupt.
struct Injection {
  Action action = Action::kNone;
  std::uint64_t arg = 0;
  explicit operator bool() const { return action != Action::kNone; }
};

/// One injection, for the engine's log.
struct ChaosRecord {
  Point point = Point::kWireTx;
  Action action = Action::kNone;
  std::uint64_t hit = 0;  // per-point hit counter value that fired
  std::string text;       // deterministic description
};

class ChaosEngine {
 public:
  /// `seed` is the campaign --chaos-seed; role/worker_id/generation salt it
  /// so every process in a campaign draws an independent deterministic
  /// stream. The plan is copied.
  ChaosEngine(ChaosPlan plan, std::uint64_t seed, Role role = Role::kBroker,
              std::uint32_t worker_id = 0, std::uint32_t generation = 0);
  ~ChaosEngine();

  ChaosEngine(const ChaosEngine&) = delete;
  ChaosEngine& operator=(const ChaosEngine&) = delete;

  // --- observability (both optional) ---
  /// Every injection bumps `chaos.injected` plus a per-point-action counter
  /// (`chaos.<point>.<action>`). Pass nullptr to detach.
  void set_metrics(obs::MetricsRegistry* metrics);
  /// Every injection is traced as a `chaos_injected` event. The writer is
  /// only ever used under the engine's own mutex. Pass nullptr to detach.
  void set_trace(obs::TraceWriter* trace);

  /// Called by chaos::at() on every probe of `point`. Thread-safe. `extent`
  /// sizes kCorrupt's byte-index draw (0 disables corruption this probe).
  Injection decide(Point point, std::uint64_t extent = 0);

  /// Total injections so far (all directives).
  std::uint64_t injected_count() const;
  /// Probe count seen for one point.
  std::uint64_t hit_count(Point point) const;
  /// Detailed records of every injection, in order.
  std::vector<ChaosRecord> log() const;

  const ChaosPlan& plan() const { return plan_; }
  Role role() const { return role_; }

  /// Installs `engine` as the process-global chaos engine probed by
  /// chaos::at(); nullptr uninstalls. The caller keeps ownership and must
  /// uninstall before destroying the engine (the destructor also
  /// self-uninstalls as a backstop). Not reentrant with concurrent probes
  /// of a *different* engine; campaigns install once before running.
  static void install(ChaosEngine* engine);
  static ChaosEngine* installed() {
    return installed_.load(std::memory_order_acquire);
  }

 private:
  ChaosPlan plan_;
  std::uint64_t seed_;
  Role role_;
  std::uint32_t generation_;

  mutable std::mutex mutex_;
  std::uint64_t hits_[kPointCount] = {};
  std::vector<std::uint64_t> fired_;  // per-directive injection counts
  std::uint64_t injected_ = 0;
  std::vector<ChaosRecord> log_;

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* m_injected_ = nullptr;
  obs::TraceWriter* trace_ = nullptr;

  static std::atomic<ChaosEngine*> installed_;
};

/// The fault-point probe. Near-zero cost when no engine is installed: one
/// relaxed-ish load and a predictable branch.
inline Injection at(Point point, std::uint64_t extent = 0) {
  ChaosEngine* engine = ChaosEngine::installed();
  if (engine == nullptr) return {};
  return engine->decide(point, extent);
}

// --- broker -> worker propagation ----------------------------------------

inline constexpr const char* kPlanEnv = "ESV_CHAOS_PLAN";
inline constexpr const char* kSeedEnv = "ESV_CHAOS_SEED";

/// Installs a worker-role engine from ESV_CHAOS_PLAN / ESV_CHAOS_SEED when
/// both are set (the engine is owned by a process-lifetime static). Returns
/// the installed engine or nullptr. A malformed env plan is ignored — the
/// orchestrator validated the plan before forwarding it, so skew here means
/// a harness bug, and a worker must not crash-loop over it.
ChaosEngine* install_from_env(std::uint32_t worker_id,
                              std::uint32_t generation);

}  // namespace esv::chaos

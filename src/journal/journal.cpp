#include "journal/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <set>
#include <sstream>

#include "chaos/chaos.hpp"
#include "dist/wire.hpp"

namespace esv::journal {

// --- CRC-32 --------------------------------------------------------------

namespace {

struct Crc32Table {
  std::uint32_t entries[256];
  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      entries[i] = crc;
    }
  }
};

const Crc32Table& crc_table() {
  static const Crc32Table table;
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
  const Crc32Table& table = crc_table();
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table.entries[(crc ^ bytes[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

// --- configuration digest ------------------------------------------------

namespace {

// Same FNV-1a 64 as FaultPlan::digest(): cheap, stable across platforms, and
// already the repo's fingerprint idiom.
class Fnv1a {
 public:
  void feed(std::string_view text) {
    for (const char c : text) feed_byte(static_cast<unsigned char>(c));
    feed_byte(0);  // field separator so {"a","bc"} != {"ab","c"}
  }
  void feed(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      feed_byte(static_cast<unsigned char>(value >> (8 * i)));
    }
  }
  std::string hex() const {
    std::ostringstream out;
    out << std::hex << std::setw(16) << std::setfill('0') << hash_;
    return out.str();
  }

 private:
  void feed_byte(unsigned char byte) {
    hash_ ^= byte;
    hash_ *= 1099511628211ull;
  }
  std::uint64_t hash_ = 1469598103934665603ull;
};

}  // namespace

std::string config_digest(const campaign::CampaignConfig& config) {
  Fnv1a digest;
  digest.feed(config.program_source);
  digest.feed(config.spec_text);
  digest.feed(static_cast<std::uint64_t>(config.approach));
  // Enum values are digest-stable: progression=0 and automaton=1 match the
  // pre-compiled-mode encoding, so old journals for those modes still
  // resume; compiled=2 and both=3 extend the space.
  digest.feed(static_cast<std::uint64_t>(config.mode));
  digest.feed(config.max_steps);
  digest.feed(config.seed_lo);
  digest.feed(config.seed_hi);
  digest.feed(static_cast<std::uint64_t>(config.witness_depth));
  digest.feed(config.fault_plan_text);
  digest.feed(static_cast<std::uint64_t>(config.fault_log_limit));
  digest.feed(static_cast<std::uint64_t>(config.collect_metrics ? 1 : 0));
  // trace_dir implies capture_traces inside the runner, so hash the
  // *effective* capture flag; the directory path itself is deployment shape.
  const bool captures = config.capture_traces || !config.trace_dir.empty();
  digest.feed(static_cast<std::uint64_t>(captures ? 1 : 0));
  // The watchdog and retry budget can change which error a seed records.
  std::ostringstream timeout_text;
  timeout_text.precision(17);
  timeout_text << config.seed_timeout_seconds;
  digest.feed(timeout_text.str());
  digest.feed(static_cast<std::uint64_t>(config.seed_retries));
  digest.feed(config.seed_mem_limit_mb);
  // Deliberately excluded: campaign_timeout_seconds and the chaos plan/seed
  // (docs/RESILIENCE.md). Both are infrastructure-only — they can abort or
  // perturb a run but never change a completed seed's bytes — so a journal
  // cut short by a deadline or a chaos schedule must resume under a clean
  // configuration.
  return digest.hex();
}

// --- record framing ------------------------------------------------------

namespace {

constexpr std::size_t kRecordHeaderBytes = 8;  // u32 length + u32 crc

void put_u32_le(std::string& out, std::uint32_t value) {
  out += static_cast<char>(value & 0xFF);
  out += static_cast<char>((value >> 8) & 0xFF);
  out += static_cast<char>((value >> 16) & 0xFF);
  out += static_cast<char>((value >> 24) & 0xFF);
}

std::uint32_t get_u32_le(const char* bytes) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[2]))
             << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[3]))
             << 24;
}

std::string frame_record(const std::string& payload) {
  std::string record;
  record.reserve(kRecordHeaderBytes + payload.size() + 1);
  put_u32_le(record, static_cast<std::uint32_t>(payload.size()));
  put_u32_le(record, crc32(payload.data(), payload.size()));
  record += payload;
  record += '\n';
  return record;
}

std::string header_payload(const campaign::CampaignConfig& config) {
  std::string out = "{\"type\":\"header\",\"version\":";
  out += std::to_string(kJournalVersion);
  out += ",\"config_digest\":" + dist::json_string(config_digest(config));
  out += ",\"seed_lo\":" + std::to_string(config.seed_lo);
  out += ",\"seed_hi\":" + std::to_string(config.seed_hi);
  out += "}";
  return out;
}

[[noreturn]] void io_error(const std::string& what, const std::string& path) {
  throw JournalError("journal: " + what + " " + path + ": " +
                     std::strerror(errno));
}

}  // namespace

// --- JournalWriter -------------------------------------------------------

JournalWriter::JournalWriter(const std::string& path,
                             const campaign::CampaignConfig& config,
                             SyncPolicy sync)
    : path_(path), sync_(sync) {
  open_and_prepare(path, config, 0);
}

JournalWriter::JournalWriter(const std::string& path,
                             const campaign::CampaignConfig& config,
                             SyncPolicy sync, std::uint64_t keep_bytes)
    : path_(path), sync_(sync) {
  open_and_prepare(path, config, keep_bytes);
}

JournalWriter::~JournalWriter() {
  try {
    close();
  } catch (const JournalError&) {
    // Destructor cleanup must not throw; an explicit close() reports errors.
  }
}

void JournalWriter::open_and_prepare(const std::string& path,
                                     const campaign::CampaignConfig& config,
                                     std::uint64_t keep_bytes) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) io_error("cannot open", path);
  if (::ftruncate(fd_, static_cast<off_t>(keep_bytes)) != 0) {
    io_error("cannot truncate", path);
  }
  if (keep_bytes == 0) {
    write_record(header_payload(config));
  }
}

void JournalWriter::append(const campaign::SeedResult& result) {
  std::string payload = "{\"type\":\"seed\",\"result\":";
  payload += dist::seed_result_to_json(result);
  payload += "}";
  std::lock_guard<std::mutex> lock(mutex_);
  write_record(payload);
}

void JournalWriter::write_record(const std::string& payload) {
  if (fd_ < 0) throw JournalError("journal: writer is closed: " + path_);
  const std::string record = frame_record(payload);
  // One write(2) per record: O_APPEND makes it atomic with respect to other
  // writers of this fd, and a crash can tear at most the record in flight.
  const char* data = record.data();
  std::size_t left = record.size();
  // Self-chaos (docs/RESILIENCE.md): kFailWrite tears the record exactly the
  // way a crashed writer would — half the bytes land, then the write reports
  // EIO — so the recovery scan's torn-tail path runs against a real file.
  // kEnospc fails before any byte lands. kShortWrite degrades the loop to
  // one-byte writes (it must still succeed byte-identically).
  std::size_t chunk_cap = 0;
  switch (chaos::at(chaos::Point::kJournalWrite).action) {
    case chaos::Action::kFailWrite: {
      const std::size_t half = record.size() / 2;
      std::size_t wrote_total = 0;
      while (wrote_total < half) {
        const ssize_t wrote =
            ::write(fd_, data + wrote_total, half - wrote_total);
        if (wrote <= 0) break;  // best effort: the tear itself is the point
        wrote_total += static_cast<std::size_t>(wrote);
      }
      errno = EIO;
      io_error("write failed on", path_);
    }
    case chaos::Action::kEnospc:
      errno = ENOSPC;
      io_error("write failed on", path_);
    case chaos::Action::kShortWrite:
      chunk_cap = 1;
      break;
    default:
      break;
  }
  while (left != 0) {
    const std::size_t ask =
        chunk_cap != 0 && chunk_cap < left ? chunk_cap : left;
    const ssize_t wrote = ::write(fd_, data, ask);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      io_error("write failed on", path_);
    }
    data += wrote;
    left -= static_cast<std::size_t>(wrote);
  }
  ++records_written_;
  ++unsynced_records_;
  if (sync_ == SyncPolicy::kRecord ||
      (sync_ == SyncPolicy::kBatch && unsynced_records_ >= kBatchSyncInterval)) {
    sync_now();
  }
}

void JournalWriter::sync_now() {
  if (chaos::at(chaos::Point::kJournalFsync).action ==
      chaos::Action::kFailSync) {
    errno = EIO;
    io_error("fsync failed on", path_);
  }
  if (::fsync(fd_) != 0) io_error("fsync failed on", path_);
  unsynced_records_ = 0;
}

void JournalWriter::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return;
  if (sync_ != SyncPolicy::kNone && unsynced_records_ != 0) sync_now();
  ::close(fd_);
  fd_ = -1;
}

// --- recovery ------------------------------------------------------------

RecoveredJournal recover(const std::string& path) {
  RecoveredJournal recovered;

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    // Missing file: a crash can precede the journal's creation (or its
    // header reaching disk); there is simply nothing to resume.
    return recovered;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) io_error("cannot read", path);
  const std::string bytes = buffer.str();

  std::set<std::uint64_t> seen_seeds;
  std::size_t pos = 0;
  bool expect_header = true;
  while (pos < bytes.size()) {
    // A record shorter than its framing, a CRC mismatch, a missing trailing
    // newline, or an unparsable payload all mean the same thing here: the
    // writer died mid-record (or the tail was otherwise damaged). Keep the
    // prefix, drop the rest.
    if (bytes.size() - pos < kRecordHeaderBytes) break;
    const std::uint32_t length = get_u32_le(bytes.data() + pos);
    const std::uint32_t expected_crc = get_u32_le(bytes.data() + pos + 4);
    const std::size_t payload_at = pos + kRecordHeaderBytes;
    if (bytes.size() - payload_at < static_cast<std::size_t>(length) + 1) break;
    if (bytes[payload_at + length] != '\n') break;
    const char* payload = bytes.data() + payload_at;
    if (crc32(payload, length) != expected_crc) break;

    campaign::SeedResult result;
    bool is_seed = false;
    try {
      const dist::Json json = dist::Json::parse({payload, length});
      const std::string type = json.string_or("type", "");
      if (expect_header) {
        if (type != "header" ||
            json.at("version").as_u64() != kJournalVersion) {
          break;
        }
        recovered.config_digest = json.at("config_digest").as_string();
        recovered.seed_lo = json.at("seed_lo").as_u64();
        recovered.seed_hi = json.at("seed_hi").as_u64();
      } else if (type == "seed") {
        result = dist::seed_result_from_json(json.at("result"));
        is_seed = true;
      } else {
        break;  // unknown record type: treat like corruption, keep the prefix
      }
    } catch (const dist::WireError&) {
      break;
    }

    if (expect_header) {
      recovered.header_valid = true;
      expect_header = false;
    } else if (is_seed && seen_seeds.insert(result.seed).second) {
      recovered.results.push_back(std::move(result));
    }
    pos = payload_at + length + 1;
    recovered.valid_bytes = pos;
  }

  recovered.tail_dropped = recovered.valid_bytes != bytes.size();
  return recovered;
}

}  // namespace esv::journal

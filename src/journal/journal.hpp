// Crash-safe campaign checkpointing (docs/JOURNAL.md).
//
// A campaign journal is a durable write-ahead log of finished seeds: one
// CRC32-checksummed, length-prefixed JSON record per completed SeedResult,
// preceded by a header record that pins the journal to the exact campaign
// configuration that produced it. If the orchestrating esv-verify process is
// killed mid-campaign — SIGKILL, OOM, power loss — a re-run with `--resume`
// replays the journal, skips every seed whose record survived, re-runs the
// rest, and produces a final report byte-identical to an uninterrupted run.
//
// Record layout (little-endian, docs/JOURNAL.md):
//
//   +----------------+----------------+---------------------+------+
//   | u32 length     | u32 CRC32      | payload (JSON text) | '\n' |
//   +----------------+----------------+---------------------+------+
//
// The CRC covers the payload bytes only. The trailing newline keeps the file
// greppable and doubles as a cheap framing check. Two payload types exist:
//
//   {"type":"header","version":1,"config_digest":"<16 hex>",
//    "seed_lo":N,"seed_hi":N}          — first record of every journal
//   {"type":"seed","result":{...}}     — one per finished seed, the lossless
//                                        wire rendering of the SeedResult
//
// Recovery is prefix-based: the scan keeps every record up to the first
// truncated or corrupt one and drops everything from there on. A torn tail
// (the orchestrator died mid-write) therefore costs exactly the seeds whose
// records were lost — they simply re-run. A journal whose header digest does
// not match the resuming campaign's configuration is rejected by the caller
// (exit 2 in esv-verify): resuming under a different config would splice
// results from two different experiments into one report.
#pragma once

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"

namespace esv::journal {

/// Raised on journal I/O failures (open, write, fsync, truncate). Corruption
/// found by the recovery scan is NOT an error — it is recovered from.
class JournalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Standard CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected,
/// init/final-xor 0xFFFFFFFF). crc32("123456789") == 0xCBF43926.
std::uint32_t crc32(const void* data, std::size_t size);

/// Stable 16-hex-digit FNV-1a digest over every configuration field that can
/// change a deterministic result byte: program, spec, approach, mode, step
/// budget, seed range, witness depth, fault plan + log limit, the metrics
/// and trace-capture flags, the watchdog/retry knobs, and the per-seed
/// memory ceiling. Deployment-shape fields (jobs, workers, worker_binary,
/// trace_dir path, sync policy) are excluded — they never change results,
/// so a journal written under --jobs=8 resumes cleanly under --workers=2.
std::string config_digest(const campaign::CampaignConfig& config);

/// How often the writer fsyncs (docs/JOURNAL.md discusses the trade-offs):
///   kRecord  fsync after every record — a crash loses at most the record
///            being written; slowest
///   kBatch   fsync every kBatchSyncInterval records and on close — bounded
///            loss, near-zero overhead (the default)
///   kNone    never fsync — the OS page cache decides; a power loss can
///            lose everything since the last writeback, a plain process
///            kill loses nothing
enum class SyncPolicy { kRecord, kBatch, kNone };

constexpr unsigned kBatchSyncInterval = 32;

constexpr std::uint64_t kJournalVersion = 1;

/// Append-only journal writer. `append` is thread-safe: the campaign's
/// worker threads and the broker's event loop both emit completion records
/// through one serialized writer, each record written with a single write(2)
/// so records never interleave.
class JournalWriter {
 public:
  /// Starts a fresh journal at `path` (truncating any previous content) and
  /// writes the header record for `config`.
  JournalWriter(const std::string& path,
                const campaign::CampaignConfig& config, SyncPolicy sync);
  /// Resumes an existing journal: truncates the file to `keep_bytes` (the
  /// valid prefix found by recover()) and appends after it. When keep_bytes
  /// is 0 (empty or unrecoverable journal) a fresh header is written.
  JournalWriter(const std::string& path,
                const campaign::CampaignConfig& config, SyncPolicy sync,
                std::uint64_t keep_bytes);
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Appends one seed-completion record. Thread-safe. Throws JournalError
  /// when the write or a policy-mandated fsync fails — a campaign that was
  /// promised a journal must not silently run without one.
  void append(const campaign::SeedResult& result);

  /// Final flush + fsync (policy permitting) + close. Idempotent; also run
  /// by the destructor, which swallows errors.
  void close();

  std::uint64_t records_written() const { return records_written_; }

 private:
  void open_and_prepare(const std::string& path,
                        const campaign::CampaignConfig& config,
                        std::uint64_t keep_bytes);
  void write_record(const std::string& payload);
  void sync_now();

  std::mutex mutex_;
  int fd_ = -1;
  std::string path_;
  SyncPolicy sync_ = SyncPolicy::kBatch;
  unsigned unsynced_records_ = 0;
  std::uint64_t records_written_ = 0;
};

/// Everything the recovery scan salvaged from a journal file.
struct RecoveredJournal {
  /// True when the file begins with a complete, well-formed header record.
  /// False for a missing, empty, or torn-before-the-header file — all of
  /// which mean "no progress to resume", never an error (a crash can land
  /// before the header reaches disk).
  bool header_valid = false;
  std::string config_digest;
  std::uint64_t seed_lo = 0;
  std::uint64_t seed_hi = 0;
  /// Completed seeds in journal order, de-duplicated (first record wins —
  /// duplicates are deterministic re-computations anyway).
  std::vector<campaign::SeedResult> results;
  /// Byte length of the valid record prefix; the resume writer truncates
  /// the file here before appending so a torn tail never corrupts the log.
  std::uint64_t valid_bytes = 0;
  /// True when the scan stopped at a truncated or corrupt record (the seeds
  /// whose records were dropped simply re-run).
  bool tail_dropped = false;
};

/// Scans `path` and returns every record that survives validation. Tolerant
/// by design: a missing or empty file, a torn header, a truncated tail
/// record, a CRC mismatch, or trailing garbage all yield the longest valid
/// prefix instead of an error. Throws JournalError only when the file exists
/// but cannot be read.
RecoveredJournal recover(const std::string& path);

}  // namespace esv::journal

#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

namespace esv::obs {

namespace {

void update_min(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t current = slot.load(std::memory_order_relaxed);
  while (value < current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

void update_max(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t current = slot.load(std::memory_order_relaxed);
  while (value > current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::record(std::uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  update_min(min_, value);
  update_max(max_, value);
  buckets_[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_[name];
}

Histogram& MetricsRegistry::histogram_impl(const std::string& name,
                                           bool timing) {
  std::lock_guard<std::mutex> lock(mutex_);
  return histograms_.try_emplace(name, timing).first->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return histogram_impl(name, /*timing=*/false);
}

Histogram& MetricsRegistry::duration_histogram(const std::string& name) {
  return histogram_impl(name, /*timing=*/true);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter.value();
  }
  for (const auto& [name, hist] : histograms_) {
    HistogramData data;
    data.count = hist.count_.load(std::memory_order_relaxed);
    data.sum = hist.sum_.load(std::memory_order_relaxed);
    data.min =
        data.count == 0 ? 0 : hist.min_.load(std::memory_order_relaxed);
    data.max = hist.max_.load(std::memory_order_relaxed);
    data.timing = hist.timing_;
    std::size_t top = 0;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (hist.buckets_[i].load(std::memory_order_relaxed) != 0) top = i + 1;
    }
    data.buckets.reserve(top);
    for (std::size_t i = 0; i < top; ++i) {
      data.buckets.push_back(hist.buckets_[i].load(std::memory_order_relaxed));
    }
    snap.histograms[name] = std::move(data);
  }
  return snap;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    counters[name] += value;
  }
  for (const auto& [name, theirs] : other.histograms) {
    HistogramData& ours = histograms[name];
    if (ours.count == 0) {
      ours.min = theirs.min;
    } else if (theirs.count != 0) {
      ours.min = std::min(ours.min, theirs.min);
    }
    ours.max = std::max(ours.max, theirs.max);
    ours.count += theirs.count;
    ours.sum += theirs.sum;
    ours.timing = ours.timing || theirs.timing;
    if (ours.buckets.size() < theirs.buckets.size()) {
      ours.buckets.resize(theirs.buckets.size(), 0);
    }
    for (std::size_t i = 0; i < theirs.buckets.size(); ++i) {
      ours.buckets[i] += theirs.buckets[i];
    }
  }
}

std::string MetricsSnapshot::to_json(bool include_timing) const {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (hist.timing && !include_timing) continue;
    out << (first ? "\n" : ",\n") << "    \"" << name
        << "\": {\"count\": " << hist.count << ", \"sum\": " << hist.sum
        << ", \"min\": " << hist.min << ", \"max\": " << hist.max
        << ", \"buckets\": [";
    for (std::size_t i = 0; i < hist.buckets.size(); ++i) {
      out << (i ? ", " : "") << hist.buckets[i];
    }
    out << "]}";
    first = false;
  }
  out << (first ? "}" : "\n  }") << "\n}\n";
  return out.str();
}

}  // namespace esv::obs

// Run metrics: a lightweight, thread-safe registry of named counters and
// value histograms, plus a deterministic snapshot type that campaigns merge
// across seeds.
//
// Design constraints, in order:
//   1. Determinism. Snapshots render as sorted JSON with integer-only
//      fields, and merging snapshots is commutative, so a campaign that
//      merges per-seed snapshots in any order produces byte-identical
//      output for any --jobs value. Wall-clock metrics are allowed but
//      carry a `timing` mark and are excluded from deterministic renders
//      (the same split the campaign report makes for its "timing" section).
//   2. Hot-path cost. Instrumented code caches Counter*/Histogram* once and
//      then pays one relaxed atomic add per event; the registry mutex is
//      only taken on first lookup of a name.
//   3. Thread safety. Counters and histogram cells are atomics; the name
//      maps are node-stable (std::map), so references handed out stay valid
//      while the registry lives.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace esv::obs {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Histogram over unsigned values (step counts, state ids, microseconds)
/// with power-of-two buckets: bucket i counts values whose bit width is i
/// (0 -> bucket 0, 1 -> bucket 1, 2..3 -> bucket 2, 4..7 -> bucket 3, ...).
/// Exact count/sum/min/max are kept alongside the buckets.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // bit_width of uint64 is 0..64

  explicit Histogram(bool timing) : timing_(timing) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// True for wall-clock-valued histograms, which deterministic renders omit.
  bool timing() const { return timing_; }

 private:
  friend class MetricsRegistry;
  const bool timing_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

/// Plain-data copy of one histogram, as stored in a snapshot.
struct HistogramData {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // 0 when count == 0
  std::uint64_t max = 0;
  std::vector<std::uint64_t> buckets;  // trailing zero buckets trimmed
  bool timing = false;
};

/// Immutable copy of a registry's state. Merging and rendering are
/// deterministic: maps iterate in name order, every field is an integer.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistogramData> histograms;

  bool empty() const { return counters.empty() && histograms.empty(); }

  /// Adds `other` into this snapshot (counter sums, bucket-wise histogram
  /// sums, min/max widening). Commutative and associative, so merge order
  /// never affects the result.
  void merge(const MetricsSnapshot& other);

  /// Sorted, integer-only JSON object. With include_timing=false every
  /// timing-marked histogram is omitted and the text is a pure function of
  /// the recorded (deterministic) events.
  std::string to_json(bool include_timing = true) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named counter. The reference stays valid for the
  /// registry's lifetime; cache it on hot paths.
  Counter& counter(const std::string& name);

  /// Finds or creates a histogram over deterministic values (steps, sizes).
  Histogram& histogram(const std::string& name);

  /// Finds or creates a timing-marked histogram (wall-clock values), which
  /// deterministic snapshot renders exclude. A name keeps the mark it was
  /// created with.
  Histogram& duration_histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

 private:
  Histogram& histogram_impl(const std::string& name, bool timing);

  mutable std::mutex mutex_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace esv::obs

#include "obs/trace.hpp"

#include <sstream>

namespace esv::obs {

namespace {

// Minimal JSON string escape; proposition/property names and fault texts are
// plain ASCII in practice, but a malicious spec must not corrupt the stream.
void escape_into(std::ostringstream& out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xF]
              << "0123456789abcdef"[c & 0xF];
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

void TraceWriter::append(std::string_view text) {
  buffer_ += text;
  buffer_ += '\n';
  ++events_;
}

void TraceWriter::seed_start(std::uint64_t seed) {
  std::ostringstream line;
  line << "{\"type\":\"seed_start\",\"seed\":" << seed << "}";
  append(line.str());
}

void TraceWriter::prop_change(std::uint64_t step, std::string_view prop,
                              bool value) {
  std::ostringstream line;
  line << "{\"type\":\"prop_change\",\"step\":" << step << ",\"prop\":\"";
  escape_into(line, prop);
  line << "\",\"value\":" << (value ? 1 : 0) << "}";
  append(line.str());
}

void TraceWriter::monitor_transition(std::uint64_t step,
                                     std::string_view property,
                                     std::string_view from,
                                     std::string_view to) {
  std::ostringstream line;
  line << "{\"type\":\"monitor_transition\",\"step\":" << step
       << ",\"property\":\"";
  escape_into(line, property);
  line << "\",\"from\":\"";
  escape_into(line, from);
  line << "\",\"to\":\"";
  escape_into(line, to);
  line << "\"}";
  append(line.str());
}

void TraceWriter::automaton_state(std::uint64_t step,
                                  std::string_view property,
                                  std::uint32_t state) {
  std::ostringstream line;
  line << "{\"type\":\"automaton_state\",\"step\":" << step
       << ",\"property\":\"";
  escape_into(line, property);
  line << "\",\"state\":" << state << "}";
  append(line.str());
}

void TraceWriter::monitor_divergence(std::uint64_t step,
                                     std::string_view property,
                                     std::string_view detail) {
  std::ostringstream line;
  line << "{\"type\":\"monitor_divergence\",\"step\":" << step
       << ",\"property\":\"";
  escape_into(line, property);
  line << "\",\"detail\":\"";
  escape_into(line, detail);
  line << "\"}";
  append(line.str());
}

void TraceWriter::fault(std::uint64_t step, std::string_view text) {
  std::ostringstream line;
  line << "{\"type\":\"fault\",\"step\":" << step << ",\"text\":\"";
  escape_into(line, text);
  line << "\"}";
  append(line.str());
}

void TraceWriter::chaos_injected(std::string_view point,
                                 std::string_view action, std::uint64_t hit,
                                 std::string_view detail) {
  std::ostringstream line;
  line << "{\"type\":\"chaos_injected\",\"point\":\"";
  escape_into(line, point);
  line << "\",\"action\":\"";
  escape_into(line, action);
  line << "\",\"hit\":" << hit;
  if (!detail.empty()) {
    line << ",\"detail\":\"";
    escape_into(line, detail);
    line << "\"";
  }
  line << "}";
  append(line.str());
}

void TraceWriter::handshake(std::uint64_t steps) {
  std::ostringstream line;
  line << "{\"type\":\"handshake\",\"steps\":" << steps << "}";
  append(line.str());
}

void TraceWriter::worker_event(std::string_view event, unsigned worker,
                               unsigned generation, std::string_view detail) {
  std::ostringstream line;
  line << "{\"type\":\"worker\",\"event\":\"";
  escape_into(line, event);
  line << "\",\"worker\":" << worker << ",\"generation\":" << generation;
  if (!detail.empty()) {
    line << ",\"detail\":\"";
    escape_into(line, detail);
    line << "\"";
  }
  line << "}";
  append(line.str());
}

void TraceWriter::campaign_event(std::string_view event,
                                 std::string_view detail) {
  std::ostringstream line;
  line << "{\"type\":\"campaign\",\"event\":\"";
  escape_into(line, event);
  line << "\"";
  if (!detail.empty()) {
    line << ",\"detail\":\"";
    escape_into(line, detail);
    line << "\"";
  }
  line << "}";
  append(line.str());
}

void TraceWriter::seed_end(std::uint64_t seed, std::uint64_t steps,
                           std::uint64_t validated, std::uint64_t violated,
                           std::uint64_t pending) {
  std::ostringstream line;
  line << "{\"type\":\"seed_end\",\"seed\":" << seed << ",\"steps\":" << steps
       << ",\"validated\":" << validated << ",\"violated\":" << violated
       << ",\"pending\":" << pending << "}";
  append(line.str());
}

}  // namespace esv::obs

// Structured run tracing: one JSON object per line (JSONL), recording how a
// verification run unfolded — proposition value changes, monitor verdict
// transitions and AR-automaton state movement, fault injections, and
// campaign seed lifecycle events.
//
// The tracer is deliberately dumb: it buffers lines in memory (like
// sim::VcdTracer) and never stamps wall-clock time, so a trace is a pure
// function of the run configuration — byte-identical across --jobs counts
// and across reruns. One TraceWriter serves one run (one campaign seed); it
// is not thread-safe and does not need to be, because campaign workers own
// fully isolated per-seed stacks.
//
// Event schema (docs/OBSERVABILITY.md):
//   {"type":"seed_start","seed":N}
//   {"type":"prop_change","step":N,"prop":"name","value":0|1}
//   {"type":"monitor_transition","step":N,"property":"name",
//    "from":"pending","to":"validated"|"violated"}
//   {"type":"automaton_state","step":N,"property":"name","state":N}
//   {"type":"monitor_divergence","step":N,"property":"name",
//    "detail":"..."}   (compiled monitor disagreed with the interpreted
//    oracle in --monitor-mode=both; docs/MONITORS.md)
//   {"type":"fault","step":N,"text":"bitflip led bit 3"}
//   {"type":"chaos_injected","point":"wire.tx","action":"drop","hit":N,
//    "detail":"..."}   (self-chaos infrastructure fault; docs/RESILIENCE.md
//    — operational, never part of the deterministic per-seed traces)
//   {"type":"handshake","steps":N}
//   {"type":"seed_end","seed":N,"steps":N,"validated":N,"violated":N,
//    "pending":N}
//   {"type":"worker","event":"spawn"|"exit"|"respawn"|"timeout",
//    "worker":N,"generation":N,"detail":"..."}   (broker lifecycle trace —
//    operational, never merged into the deterministic per-seed traces)
//   {"type":"campaign","event":"deadline"|"degraded","detail":"..."}
//    (campaign-level lifecycle; operational, like worker events)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace esv::obs {

class TraceWriter {
 public:
  TraceWriter() = default;

  void seed_start(std::uint64_t seed);
  void prop_change(std::uint64_t step, std::string_view prop, bool value);
  void monitor_transition(std::uint64_t step, std::string_view property,
                          std::string_view from, std::string_view to);
  void automaton_state(std::uint64_t step, std::string_view property,
                       std::uint32_t state);
  /// Compiled-vs-interpreted oracle mismatch (--monitor-mode=both).
  void monitor_divergence(std::uint64_t step, std::string_view property,
                          std::string_view detail);
  void fault(std::uint64_t step, std::string_view text);
  /// Self-chaos infrastructure fault injection (docs/RESILIENCE.md).
  void chaos_injected(std::string_view point, std::string_view action,
                      std::uint64_t hit, std::string_view detail = {});
  void handshake(std::uint64_t steps);
  /// Worker lifecycle event (distributed campaigns; docs/DISTRIBUTED.md).
  void worker_event(std::string_view event, unsigned worker,
                    unsigned generation, std::string_view detail = {});
  /// Campaign-level lifecycle event: deadline abort, degradation
  /// (docs/RESILIENCE.md).
  void campaign_event(std::string_view event, std::string_view detail = {});
  void seed_end(std::uint64_t seed, std::uint64_t steps,
                std::uint64_t validated, std::uint64_t violated,
                std::uint64_t pending);

  std::uint64_t event_count() const { return events_; }
  /// The buffered JSONL document.
  const std::string& text() const { return buffer_; }

 private:
  void append(std::string_view text);

  std::string buffer_;
  std::uint64_t events_ = 0;
};

}  // namespace esv::obs

// Code generator: resolved mini-C AST -> CodeImage for the microprocessor.
//
// This is the "cross-compiler" of the paper's first approach: the same C
// program that the C2SystemC translator derives a SystemC model from is here
// compiled for the processor. Function entries begin with the fname
// instrumentation (fname = FUNCTION_NAME as a store to the fname global) so
// that function-sequence properties can be monitored from memory.
#pragma once

#include "cpu/isa.hpp"

namespace esv::cpu {

/// Compiles a resolved program. Throws std::runtime_error on internal
/// inconsistencies (which sema should have prevented).
CodeImage compile_to_image(const minic::Program& program);

}  // namespace esv::cpu

// Microprocessor model (approach 1 execution platform).
//
// Executes a CodeImage against the shared AddressSpace, paced by a Clock:
// one instruction per posedge plus wait states for data-memory accesses.
// Memory-mapped devices tick once per clock cycle. The SCTC observes the
// software through the AddressSpace (variables at their linked addresses),
// using the same clock as its trigger — real operating conditions, as the
// paper puts it.
//
// Software faults (failed assert, memory fault, division by zero) put the
// core into a trapped state rather than throwing across the simulation
// kernel: real cores don't throw C++ exceptions, and the testbench usually
// wants to inspect the trap.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cpu/isa.hpp"
#include "mem/address_space.hpp"
#include "minic/io.hpp"
#include "sim/clock.hpp"
#include "sim/module.hpp"

namespace esv::cpu {

// Multicycle timing, matching small automotive MCU cores (NEC 78K0-class
// parts take 4+ clocks per instruction): every instruction pays fetch and
// decode cycles before the execute cycle, and data-memory instructions add
// bus wait states.
struct CpuTiming {
  std::uint32_t fetch_cycles = 2;
  std::uint32_t decode_cycles = 1;
  /// Additional cycles charged for each data-memory instruction.
  std::uint32_t memory_wait_states = 2;
};

class Cpu : public sim::Module {
 public:
  /// Loads the image: writes the data segment (global initializers) into
  /// memory and starts fetching at main once the clock runs.
  Cpu(sim::Simulation& sim, std::string name, const CodeImage& image,
      mem::AddressSpace& memory, minic::InputProvider& inputs,
      sim::Clock& clock, CpuTiming timing = {});

  bool halted() const { return halted_; }
  bool trapped() const { return trapped_; }

  /// When enabled, the core requests sc_stop() as it halts, so a run whose
  /// only master is this CPU ends instead of the clock ticking forever.
  void set_stop_on_halt(bool stop) { stop_on_halt_ = stop; }
  const std::string& trap_message() const { return trap_message_; }

  std::uint64_t instructions_retired() const { return instructions_; }
  std::uint64_t cycles_consumed() const { return cycles_; }
  std::uint32_t current_pc() const { return pc_; }

  /// Resets architectural state and re-initializes the data segment.
  void reset();

  /// Executes exactly one instruction (kernel-free use; returns false once
  /// halted). The clocked process uses this internally.
  bool step_instruction();

  mem::AddressSpace& memory() { return memory_; }

 private:
  struct Frame {
    std::uint32_t return_pc;
    std::vector<std::uint32_t> slots;
    bool returns_value;
    std::uint32_t fn_index;  // function this frame belongs to (fname restore)
  };

  sim::Task run(sim::Clock& clock);
  void load_data_segment();
  void trap(const std::string& message);
  std::uint32_t pop();
  void push(std::uint32_t v) { stack_.push_back(v); }

  const CodeImage& image_;
  mem::AddressSpace& memory_;
  minic::InputProvider& inputs_;
  CpuTiming timing_;

  std::uint32_t pc_ = 0;
  std::vector<std::uint32_t> stack_;
  std::vector<Frame> frames_;
  bool halted_ = false;
  bool trapped_ = false;
  bool stop_on_halt_ = false;
  std::string trap_message_;
  std::uint64_t instructions_ = 0;
  std::uint64_t cycles_ = 0;
  std::uint32_t pending_wait_states_ = 0;
};

}  // namespace esv::cpu

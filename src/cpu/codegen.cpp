#include "cpu/codegen.hpp"

#include <stdexcept>

namespace esv::cpu {

using minic::BinaryOp;
using minic::Expr;
using minic::Function;
using minic::Program;
using minic::RefKind;
using minic::Stmt;
using minic::UnaryOp;

namespace {

Opcode binary_opcode(BinaryOp op) {
  switch (op) {
    case BinaryOp::kMul: return Opcode::kMul;
    case BinaryOp::kDiv: return Opcode::kDiv;
    case BinaryOp::kMod: return Opcode::kMod;
    case BinaryOp::kAdd: return Opcode::kAdd;
    case BinaryOp::kSub: return Opcode::kSub;
    case BinaryOp::kShl: return Opcode::kShl;
    case BinaryOp::kShr: return Opcode::kShr;
    case BinaryOp::kLt: return Opcode::kLt;
    case BinaryOp::kLe: return Opcode::kLe;
    case BinaryOp::kGt: return Opcode::kGt;
    case BinaryOp::kGe: return Opcode::kGe;
    case BinaryOp::kEq: return Opcode::kEq;
    case BinaryOp::kNe: return Opcode::kNe;
    case BinaryOp::kBitAnd: return Opcode::kBitAnd;
    case BinaryOp::kBitXor: return Opcode::kBitXor;
    case BinaryOp::kBitOr: return Opcode::kBitOr;
    case BinaryOp::kLogicalAnd:
    case BinaryOp::kLogicalOr:
      break;  // lowered with jumps
  }
  throw std::logic_error("binary_opcode: unexpected operator");
}

class Codegen {
 public:
  explicit Codegen(const Program& program) : program_(program) {}

  CodeImage run() {
    image_.source = &program_;
    image_.functions.resize(program_.functions.size());
    for (const auto& fn : program_.functions) {
      gen_function(*fn);
    }
    image_.entry_pc =
        image_.functions[static_cast<std::size_t>(
                             program_.find_function("main")->index)]
            .entry_pc;
    return std::move(image_);
  }

 private:
  std::uint32_t pc() const {
    return static_cast<std::uint32_t>(image_.code.size());
  }

  std::uint32_t emit(Opcode op, std::uint32_t operand = 0, int line = 0) {
    image_.code.push_back(Instruction{op, operand, line});
    return pc() - 1;
  }

  void patch(std::uint32_t at, std::uint32_t target) {
    image_.code[at].operand = target;
  }

  void gen_function(const Function& fn) {
    FunctionInfo& info =
        image_.functions[static_cast<std::size_t>(fn.index)];
    info.source = &fn;
    info.entry_pc = pc();
    info.param_count = static_cast<std::uint32_t>(fn.params.size());
    temp_base_ = fn.max_slots;
    temp_depth_ = 0;
    temp_max_ = 0;
    break_stack_.clear();
    continue_stack_.clear();
    current_ = &fn;

    // fname = FUNCTION_NAME instrumentation.
    emit(Opcode::kPushImm, static_cast<std::uint32_t>(fn.index + 1), fn.line);
    emit(Opcode::kStoreGlobal, program_.fname_address, fn.line);

    for (const auto& stmt : fn.body) gen_stmt(*stmt);

    // Implicit return at the end of the body.
    if (fn.returns_value) {
      emit(Opcode::kPushImm, 0, fn.line);
      emit(Opcode::kRetVal, 0, fn.line);
    } else {
      emit(Opcode::kRet, 0, fn.line);
    }
    info.frame_slots = static_cast<std::uint32_t>(fn.max_slots + temp_max_);
    current_ = nullptr;
  }

  // --- statements -------------------------------------------------------------

  void gen_stmt(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::kBlock:
        for (const auto& child : s.body) gen_stmt(*child);
        return;
      case Stmt::Kind::kExpr:
        gen_expr(*s.expr);
        emit(Opcode::kPop, 0, s.line);
        return;
      case Stmt::Kind::kAssign:
        gen_assign(*s.target, *s.expr, s.line);
        return;
      case Stmt::Kind::kLocalDecl:
        if (s.expr) {
          gen_expr(*s.expr);
          emit(Opcode::kStoreLocal, static_cast<std::uint32_t>(s.slot), s.line);
        }
        return;
      case Stmt::Kind::kIf: {
        gen_expr(*s.expr);
        const std::uint32_t to_else = emit(Opcode::kJumpIfZero, 0, s.line);
        for (const auto& child : s.body) gen_stmt(*child);
        if (s.else_body.empty()) {
          patch(to_else, pc());
        } else {
          const std::uint32_t to_end = emit(Opcode::kJump, 0, s.line);
          patch(to_else, pc());
          for (const auto& child : s.else_body) gen_stmt(*child);
          patch(to_end, pc());
        }
        return;
      }
      case Stmt::Kind::kWhile: {
        const std::uint32_t cond_at = pc();
        gen_expr(*s.expr);
        const std::uint32_t to_end = emit(Opcode::kJumpIfZero, 0, s.line);
        push_loop();
        for (const auto& child : s.body) gen_stmt(*child);
        emit(Opcode::kJump, cond_at, s.line);
        patch(to_end, pc());
        pop_loop(pc(), cond_at);
        return;
      }
      case Stmt::Kind::kDoWhile: {
        const std::uint32_t body_at = pc();
        push_loop();
        for (const auto& child : s.body) gen_stmt(*child);
        const std::uint32_t cond_at = pc();
        gen_expr(*s.expr);
        emit(Opcode::kJumpIfNotZero, body_at, s.line);
        pop_loop(pc(), cond_at);
        return;
      }
      case Stmt::Kind::kFor: {
        if (s.init) gen_stmt(*s.init);
        const std::uint32_t cond_at = pc();
        std::uint32_t to_end = 0;
        const bool has_cond = s.expr != nullptr;
        if (has_cond) {
          gen_expr(*s.expr);
          to_end = emit(Opcode::kJumpIfZero, 0, s.line);
        }
        push_loop();
        for (const auto& child : s.body) gen_stmt(*child);
        const std::uint32_t step_at = pc();
        if (s.step) gen_stmt(*s.step);
        emit(Opcode::kJump, cond_at, s.line);
        if (has_cond) patch(to_end, pc());
        pop_loop(pc(), step_at);
        return;
      }
      case Stmt::Kind::kSwitch: {
        // Stash the selector in a codegen temporary, then compare per case.
        const int sel_slot = alloc_temp();
        gen_expr(*s.expr);
        emit(Opcode::kStoreLocal, static_cast<std::uint32_t>(sel_slot),
             s.line);
        std::vector<std::uint32_t> case_jumps(s.cases.size());
        std::uint32_t default_jump = 0;
        bool has_default = false;
        for (std::size_t i = 0; i < s.cases.size(); ++i) {
          if (s.cases[i].is_default) continue;
          emit(Opcode::kLoadLocal, static_cast<std::uint32_t>(sel_slot),
               s.cases[i].line);
          emit(Opcode::kPushImm,
               static_cast<std::uint32_t>(s.cases[i].value), s.cases[i].line);
          emit(Opcode::kEq, 0, s.cases[i].line);
          case_jumps[i] = emit(Opcode::kJumpIfNotZero, 0, s.cases[i].line);
        }
        for (const auto& c : s.cases) {
          if (c.is_default) has_default = true;
        }
        default_jump = emit(Opcode::kJump, 0, s.line);
        break_stack_.emplace_back();
        std::vector<std::uint32_t> case_starts(s.cases.size());
        std::uint32_t default_start = 0;
        for (std::size_t i = 0; i < s.cases.size(); ++i) {
          case_starts[i] = pc();
          if (s.cases[i].is_default) default_start = pc();
          for (const auto& child : s.cases[i].body) gen_stmt(*child);
        }
        const std::uint32_t end = pc();
        for (std::size_t i = 0; i < s.cases.size(); ++i) {
          if (!s.cases[i].is_default) patch(case_jumps[i], case_starts[i]);
        }
        patch(default_jump, has_default ? default_start : end);
        for (std::uint32_t b : break_stack_.back()) patch(b, end);
        break_stack_.pop_back();
        release_temp();
        return;
      }
      case Stmt::Kind::kReturn:
        if (s.expr) {
          gen_expr(*s.expr);
          emit(Opcode::kRetVal, 0, s.line);
        } else {
          emit(Opcode::kRet, 0, s.line);
        }
        return;
      case Stmt::Kind::kBreak:
        if (break_stack_.empty()) {
          throw std::logic_error("codegen: break without target");
        }
        break_stack_.back().push_back(emit(Opcode::kJump, 0, s.line));
        return;
      case Stmt::Kind::kContinue:
        if (continue_stack_.empty()) {
          throw std::logic_error("codegen: continue without target");
        }
        continue_stack_.back().push_back(emit(Opcode::kJump, 0, s.line));
        return;
      case Stmt::Kind::kAssert:
        gen_expr(*s.expr);
        emit(Opcode::kAssertNz, 0, s.line);
        return;
      case Stmt::Kind::kAssume:
        gen_expr(*s.expr);
        emit(Opcode::kAssumeNz, 0, s.line);
        return;
    }
  }

  void push_loop() {
    break_stack_.emplace_back();
    continue_stack_.emplace_back();
  }

  void pop_loop(std::uint32_t break_target, std::uint32_t continue_target) {
    for (std::uint32_t b : break_stack_.back()) patch(b, break_target);
    break_stack_.pop_back();
    for (std::uint32_t c : continue_stack_.back()) patch(c, continue_target);
    continue_stack_.pop_back();
  }

  void gen_assign(const Expr& target, const Expr& value, int line) {
    switch (target.kind) {
      case Expr::Kind::kVarRef:
        gen_expr(value);
        if (target.ref == RefKind::kLocal) {
          emit(Opcode::kStoreLocal, static_cast<std::uint32_t>(target.slot),
               line);
        } else {
          emit(Opcode::kStoreGlobal, target.address, line);
        }
        return;
      case Expr::Kind::kIndex:
        gen_expr(*target.children[0]);  // index
        gen_expr(value);
        emit(Opcode::kStoreIndexed, target.address, line);
        return;
      case Expr::Kind::kMemRead:
        gen_expr(*target.children[0]);  // address
        gen_expr(value);
        emit(Opcode::kStoreIndirect, 0, line);
        return;
      default:
        throw std::logic_error("codegen: invalid assignment target");
    }
  }

  // --- expressions --------------------------------------------------------------

  void gen_expr(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kIntLit:
      case Expr::Kind::kBoolLit:
        emit(Opcode::kPushImm, static_cast<std::uint32_t>(e.value), e.line);
        return;
      case Expr::Kind::kVarRef:
        switch (e.ref) {
          case RefKind::kLocal:
            emit(Opcode::kLoadLocal, static_cast<std::uint32_t>(e.slot),
                 e.line);
            return;
          case RefKind::kGlobal:
            emit(Opcode::kLoadGlobal, e.address, e.line);
            return;
          case RefKind::kConst:
            emit(Opcode::kPushImm, static_cast<std::uint32_t>(e.value),
                 e.line);
            return;
          case RefKind::kUnresolved:
            break;
        }
        throw std::logic_error("codegen: unresolved variable");
      case Expr::Kind::kIndex:
        gen_expr(*e.children[0]);
        emit(Opcode::kLoadIndexed, e.address, e.line);
        return;
      case Expr::Kind::kCall: {
        for (const auto& arg : e.children) gen_expr(*arg);
        emit(Opcode::kCall,
             static_cast<std::uint32_t>(e.callee->index), e.line);
        if (!e.callee->returns_value) {
          // Void calls in expression position cannot occur (sema); bare call
          // statements pop the pushed dummy below. Push a dummy so that the
          // statement-level kPop stays uniform.
          emit(Opcode::kPushImm, 0, e.line);
        }
        return;
      }
      case Expr::Kind::kUnary:
        gen_expr(*e.children[0]);
        switch (e.unary_op) {
          case UnaryOp::kNot: emit(Opcode::kNot, 0, e.line); return;
          case UnaryOp::kNeg: emit(Opcode::kNeg, 0, e.line); return;
          case UnaryOp::kBitNot: emit(Opcode::kBitNot, 0, e.line); return;
        }
        return;
      case Expr::Kind::kBinary: {
        if (e.binary_op == BinaryOp::kLogicalAnd) {
          gen_expr(*e.children[0]);
          const std::uint32_t to_false = emit(Opcode::kJumpIfZero, 0, e.line);
          gen_expr(*e.children[1]);
          emit(Opcode::kBool, 0, e.line);
          const std::uint32_t to_end = emit(Opcode::kJump, 0, e.line);
          patch(to_false, pc());
          emit(Opcode::kPushImm, 0, e.line);
          patch(to_end, pc());
          return;
        }
        if (e.binary_op == BinaryOp::kLogicalOr) {
          gen_expr(*e.children[0]);
          const std::uint32_t to_true = emit(Opcode::kJumpIfNotZero, 0, e.line);
          gen_expr(*e.children[1]);
          emit(Opcode::kBool, 0, e.line);
          const std::uint32_t to_end = emit(Opcode::kJump, 0, e.line);
          patch(to_true, pc());
          emit(Opcode::kPushImm, 1, e.line);
          patch(to_end, pc());
          return;
        }
        gen_expr(*e.children[0]);
        gen_expr(*e.children[1]);
        emit(binary_opcode(e.binary_op), 0, e.line);
        return;
      }
      case Expr::Kind::kTernary: {
        gen_expr(*e.children[0]);
        const std::uint32_t to_else = emit(Opcode::kJumpIfZero, 0, e.line);
        gen_expr(*e.children[1]);
        const std::uint32_t to_end = emit(Opcode::kJump, 0, e.line);
        patch(to_else, pc());
        gen_expr(*e.children[2]);
        patch(to_end, pc());
        return;
      }
      case Expr::Kind::kMemRead:
        gen_expr(*e.children[0]);
        emit(Opcode::kLoadIndirect, 0, e.line);
        return;
      case Expr::Kind::kInput:
        emit(Opcode::kInput, static_cast<std::uint32_t>(e.input_id), e.line);
        return;
    }
    throw std::logic_error("codegen: unknown expression");
  }

  int alloc_temp() {
    const int slot = temp_base_ + temp_depth_++;
    temp_max_ = std::max(temp_max_, temp_depth_);
    return slot;
  }
  void release_temp() { --temp_depth_; }

  const Program& program_;
  CodeImage image_;
  const Function* current_ = nullptr;
  int temp_base_ = 0;
  int temp_depth_ = 0;
  int temp_max_ = 0;
  std::vector<std::vector<std::uint32_t>> break_stack_;
  std::vector<std::vector<std::uint32_t>> continue_stack_;
};

}  // namespace

CodeImage compile_to_image(const Program& program) {
  return Codegen(program).run();
}

}  // namespace esv::cpu

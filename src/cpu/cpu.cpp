#include "cpu/cpu.hpp"

#include <sstream>

namespace esv::cpu {

// ---------------------------------------------------------------------------
// ISA utilities

const char* mnemonic(Opcode op) {
  switch (op) {
    case Opcode::kNop: return "nop";
    case Opcode::kPushImm: return "pushi";
    case Opcode::kPop: return "pop";
    case Opcode::kLoadGlobal: return "ldg";
    case Opcode::kStoreGlobal: return "stg";
    case Opcode::kLoadLocal: return "ldl";
    case Opcode::kStoreLocal: return "stl";
    case Opcode::kLoadIndexed: return "ldx";
    case Opcode::kStoreIndexed: return "stx";
    case Opcode::kLoadIndirect: return "ldi";
    case Opcode::kStoreIndirect: return "sti";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kDiv: return "div";
    case Opcode::kMod: return "mod";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kBitAnd: return "and";
    case Opcode::kBitOr: return "or";
    case Opcode::kBitXor: return "xor";
    case Opcode::kLt: return "lt";
    case Opcode::kLe: return "le";
    case Opcode::kGt: return "gt";
    case Opcode::kGe: return "ge";
    case Opcode::kEq: return "eq";
    case Opcode::kNe: return "ne";
    case Opcode::kNot: return "not";
    case Opcode::kNeg: return "neg";
    case Opcode::kBitNot: return "bnot";
    case Opcode::kBool: return "bool";
    case Opcode::kJump: return "jmp";
    case Opcode::kJumpIfZero: return "jz";
    case Opcode::kJumpIfNotZero: return "jnz";
    case Opcode::kCall: return "call";
    case Opcode::kRet: return "ret";
    case Opcode::kRetVal: return "retv";
    case Opcode::kInput: return "in";
    case Opcode::kAssertNz: return "assert";
    case Opcode::kAssumeNz: return "assume";
    case Opcode::kHalt: return "halt";
  }
  return "?";
}

bool is_memory_op(Opcode op) {
  switch (op) {
    case Opcode::kLoadGlobal:
    case Opcode::kStoreGlobal:
    case Opcode::kLoadIndexed:
    case Opcode::kStoreIndexed:
    case Opcode::kLoadIndirect:
    case Opcode::kStoreIndirect:
      return true;
    default:
      return false;
  }
}

std::string CodeImage::disassemble() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < code.size(); ++i) {
    for (const FunctionInfo& fn : functions) {
      if (fn.entry_pc == i && fn.source != nullptr) {
        out << fn.source->name << ":\n";
      }
    }
    out << "  " << i << ": " << mnemonic(code[i].op);
    switch (code[i].op) {
      case Opcode::kPushImm:
      case Opcode::kLoadGlobal:
      case Opcode::kStoreGlobal:
      case Opcode::kLoadLocal:
      case Opcode::kStoreLocal:
      case Opcode::kLoadIndexed:
      case Opcode::kStoreIndexed:
      case Opcode::kJump:
      case Opcode::kJumpIfZero:
      case Opcode::kJumpIfNotZero:
      case Opcode::kCall:
      case Opcode::kInput:
        out << " " << code[i].operand;
        break;
      default:
        break;
    }
    out << "\n";
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Cpu

Cpu::Cpu(sim::Simulation& sim, std::string name, const CodeImage& image,
         mem::AddressSpace& memory, minic::InputProvider& inputs,
         sim::Clock& clock, CpuTiming timing)
    : sim::Module(sim, std::move(name)),
      image_(image),
      memory_(memory),
      inputs_(inputs),
      timing_(timing) {
  reset();
  sim_.spawn(sub_name("core"), run(clock));
}

void Cpu::load_data_segment() {
  const minic::Program& program = *image_.source;
  for (const auto& g : program.globals) {
    for (std::uint32_t i = 0; i < g.words; ++i) {
      const std::int32_t v = i < g.init.size() ? g.init[i] : 0;
      memory_.write_word(g.address + i * 4, static_cast<std::uint32_t>(v));
    }
  }
}

void Cpu::reset() {
  load_data_segment();
  pc_ = image_.entry_pc;
  stack_.clear();
  frames_.clear();
  const FunctionInfo& main_info =
      image_.functions[static_cast<std::size_t>(
          image_.source->find_function("main")->index)];
  Frame frame;
  frame.return_pc = 0;
  frame.returns_value = false;
  frame.slots.assign(main_info.frame_slots, 0);
  frame.fn_index =
      static_cast<std::uint32_t>(image_.source->find_function("main")->index);
  frames_.push_back(std::move(frame));
  halted_ = false;
  trapped_ = false;
  trap_message_.clear();
  instructions_ = 0;
  cycles_ = 0;
  pending_wait_states_ = 0;
}

void Cpu::trap(const std::string& message) {
  trapped_ = true;
  halted_ = true;
  trap_message_ = message;
}

std::uint32_t Cpu::pop() {
  if (stack_.empty()) {
    trap("value stack underflow");
    return 0;
  }
  const std::uint32_t v = stack_.back();
  stack_.pop_back();
  return v;
}

sim::Task Cpu::run(sim::Clock& clock) {
  for (;;) {
    co_await clock.posedge_event();
    if (halted_) {
      if (stop_on_halt_) sim_.stop();
      co_return;
    }
    if (pending_wait_states_ > 0) {
      // Multi-cycle instruction: burn the wait state.
      --pending_wait_states_;
      ++cycles_;
      memory_.tick_devices();
      continue;
    }
    step_instruction();
    ++cycles_;
    memory_.tick_devices();
  }
}

bool Cpu::step_instruction() {
  if (halted_) return false;
  if (pc_ >= image_.code.size()) {
    trap("pc out of code range");
    return false;
  }
  const Instruction inst = image_.code[pc_];
  ++instructions_;
  // Multicycle instruction: fetch + decode cycles, plus wait states on data
  // memory, are burned after the (architecturally atomic) execute step.
  pending_wait_states_ = timing_.fetch_cycles + timing_.decode_cycles;
  if (is_memory_op(inst.op)) {
    pending_wait_states_ += timing_.memory_wait_states;
  }
  std::uint32_t next_pc = pc_ + 1;

  const auto line_tag = [&inst] {
    return " (line " + std::to_string(inst.line) + ")";
  };

  try {
    switch (inst.op) {
      case Opcode::kNop:
        break;
      case Opcode::kPushImm:
        push(inst.operand);
        break;
      case Opcode::kPop:
        pop();
        break;
      case Opcode::kLoadGlobal:
        push(memory_.read_word(inst.operand));
        break;
      case Opcode::kStoreGlobal:
        memory_.write_word(inst.operand, pop());
        break;
      case Opcode::kLoadLocal:
        push(frames_.back().slots.at(inst.operand));
        break;
      case Opcode::kStoreLocal:
        frames_.back().slots.at(inst.operand) = pop();
        break;
      case Opcode::kLoadIndexed: {
        const std::uint32_t index = pop();
        push(memory_.read_word(inst.operand + index * 4));
        break;
      }
      case Opcode::kStoreIndexed: {
        const std::uint32_t value = pop();
        const std::uint32_t index = pop();
        memory_.write_word(inst.operand + index * 4, value);
        break;
      }
      case Opcode::kLoadIndirect:
        push(memory_.read_word(pop()));
        break;
      case Opcode::kStoreIndirect: {
        const std::uint32_t value = pop();
        const std::uint32_t address = pop();
        memory_.write_word(address, value);
        break;
      }
      case Opcode::kAdd: { const auto b = pop(), a = pop(); push(a + b); break; }
      case Opcode::kSub: { const auto b = pop(), a = pop(); push(a - b); break; }
      case Opcode::kMul: { const auto b = pop(), a = pop(); push(a * b); break; }
      case Opcode::kDiv: {
        const auto b = pop(), a = pop();
        if (b == 0) {
          trap("division by zero" + line_tag());
          return false;
        }
        push(static_cast<std::uint32_t>(static_cast<std::int32_t>(a) /
                                        static_cast<std::int32_t>(b)));
        break;
      }
      case Opcode::kMod: {
        const auto b = pop(), a = pop();
        if (b == 0) {
          trap("modulo by zero" + line_tag());
          return false;
        }
        push(static_cast<std::uint32_t>(static_cast<std::int32_t>(a) %
                                        static_cast<std::int32_t>(b)));
        break;
      }
      case Opcode::kShl: { const auto b = pop(), a = pop(); push(a << (b & 31)); break; }
      case Opcode::kShr: { const auto b = pop(), a = pop(); push(a >> (b & 31)); break; }
      case Opcode::kBitAnd: { const auto b = pop(), a = pop(); push(a & b); break; }
      case Opcode::kBitOr: { const auto b = pop(), a = pop(); push(a | b); break; }
      case Opcode::kBitXor: { const auto b = pop(), a = pop(); push(a ^ b); break; }
      case Opcode::kLt: {
        const auto b = pop(), a = pop();
        push(static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b) ? 1 : 0);
        break;
      }
      case Opcode::kLe: {
        const auto b = pop(), a = pop();
        push(static_cast<std::int32_t>(a) <= static_cast<std::int32_t>(b) ? 1 : 0);
        break;
      }
      case Opcode::kGt: {
        const auto b = pop(), a = pop();
        push(static_cast<std::int32_t>(a) > static_cast<std::int32_t>(b) ? 1 : 0);
        break;
      }
      case Opcode::kGe: {
        const auto b = pop(), a = pop();
        push(static_cast<std::int32_t>(a) >= static_cast<std::int32_t>(b) ? 1 : 0);
        break;
      }
      case Opcode::kEq: { const auto b = pop(), a = pop(); push(a == b ? 1 : 0); break; }
      case Opcode::kNe: { const auto b = pop(), a = pop(); push(a != b ? 1 : 0); break; }
      case Opcode::kNot: push(pop() == 0 ? 1 : 0); break;
      case Opcode::kNeg:
        push(static_cast<std::uint32_t>(-static_cast<std::int32_t>(pop())));
        break;
      case Opcode::kBitNot: push(~pop()); break;
      case Opcode::kBool: push(pop() != 0 ? 1 : 0); break;
      case Opcode::kJump:
        next_pc = inst.operand;
        break;
      case Opcode::kJumpIfZero:
        if (pop() == 0) next_pc = inst.operand;
        break;
      case Opcode::kJumpIfNotZero:
        if (pop() != 0) next_pc = inst.operand;
        break;
      case Opcode::kCall: {
        const FunctionInfo& callee = image_.functions.at(inst.operand);
        Frame frame;
        frame.return_pc = pc_ + 1;
        frame.returns_value = callee.source->returns_value;
        frame.slots.assign(callee.frame_slots, 0);
        frame.fn_index = inst.operand;
        // Arguments were pushed left to right; pop them right to left.
        for (std::uint32_t i = callee.param_count; i > 0; --i) {
          frame.slots[i - 1] = pop();
        }
        frames_.push_back(std::move(frame));
        next_pc = callee.entry_pc;
        break;
      }
      case Opcode::kRet:
      case Opcode::kRetVal: {
        std::uint32_t value = 0;
        if (inst.op == Opcode::kRetVal) value = pop();
        const Frame frame = std::move(frames_.back());
        frames_.pop_back();
        if (frames_.empty()) {
          halted_ = true;
          return false;
        }
        if (inst.op == Opcode::kRetVal) push(value);
        next_pc = frame.return_pc;
        // Restore the caller's fname context, mirroring the derived model:
        // fname always names the function that is currently executing.
        memory_.write_word(image_.source->fname_address,
                           frames_.back().fn_index + 1);
        break;
      }
      case Opcode::kInput:
        push(inputs_.input(static_cast<int>(inst.operand),
                           image_.source->input_names.at(inst.operand)));
        break;
      case Opcode::kAssertNz:
        if (pop() == 0) {
          trap("assertion failed" + line_tag());
          return false;
        }
        break;
      case Opcode::kAssumeNz:
        if (pop() == 0) {
          // Violated assumption: the run ends without a trap.
          halted_ = true;
          return false;
        }
        break;
      case Opcode::kHalt:
        halted_ = true;
        return false;
    }
  } catch (const mem::MemoryFault& fault) {
    trap(std::string("memory fault: ") + fault.what() + line_tag());
    return false;
  } catch (const std::out_of_range&) {
    trap("frame slot out of range" + line_tag());
    return false;
  }

  pc_ = next_pc;
  return !halted_;
}

}  // namespace esv::cpu

// Instruction set of the microprocessor model.
//
// A compact 32-bit stack machine in the spirit of small automotive MCU cores:
// load/store architecture against the shared AddressSpace, one instruction
// per clock cycle plus wait states for memory accesses. The paper only
// requires that (a) the software's variables live at memory addresses the
// SCTC can read over the bus and (b) progress is paced by the processor
// clock; both hold for this core.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "minic/ast.hpp"

namespace esv::cpu {

enum class Opcode : std::uint8_t {
  kNop,
  // data movement
  kPushImm,        // push operand
  kPop,            // discard top
  kLoadGlobal,     // push mem[operand]
  kStoreGlobal,    // mem[operand] = pop
  kLoadLocal,      // push frame[operand]
  kStoreLocal,     // frame[operand] = pop
  kLoadIndexed,    // idx = pop; push mem[operand + idx*4]
  kStoreIndexed,   // val = pop, idx = pop; mem[operand + idx*4] = val
  kLoadIndirect,   // addr = pop; push mem[addr]
  kStoreIndirect,  // val = pop, addr = pop; mem[addr] = val
  // arithmetic / logic (binary ops pop rhs then lhs, push result)
  kAdd, kSub, kMul, kDiv, kMod,
  kShl, kShr,
  kBitAnd, kBitOr, kBitXor,
  kLt, kLe, kGt, kGe, kEq, kNe,  // signed comparisons, push 0/1
  kNot, kNeg, kBitNot,           // unary, operate on top
  kBool,                         // normalize top to 0/1
  // control
  kJump,           // pc = operand
  kJumpIfZero,     // if pop == 0: pc = operand
  kJumpIfNotZero,  // if pop != 0: pc = operand
  kCall,           // operand = function index; args are on the stack
  kRet,            // return void
  kRetVal,         // return pop as the call's value
  // environment
  kInput,          // push input(operand)
  kAssertNz,       // trap if pop == 0
  kAssumeNz,       // halt quietly if pop == 0 (violated assumption)
  kHalt,
};

/// Mnemonic for disassembly / debugging.
const char* mnemonic(Opcode op);

struct Instruction {
  Opcode op = Opcode::kNop;
  std::uint32_t operand = 0;
  int line = 0;  // source line, for traps and traces
};

/// Per-function metadata the Call/Ret machinery needs.
struct FunctionInfo {
  const minic::Function* source = nullptr;
  std::uint32_t entry_pc = 0;
  std::uint32_t param_count = 0;
  std::uint32_t frame_slots = 0;  // locals + codegen temporaries
};

/// A compiled program: code, per-function metadata, and the data image.
struct CodeImage {
  const minic::Program* source = nullptr;
  std::vector<Instruction> code;
  std::vector<FunctionInfo> functions;  // indexed by Function::index
  std::uint32_t entry_pc = 0;           // first instruction of main

  std::string disassemble() const;
};

/// True for instructions that access data memory (they cost wait states).
bool is_memory_op(Opcode op);

}  // namespace esv::cpu

// Clock: free-running clock generator, the sc_clock analogue and the timing
// reference for the paper's first verification approach (the SCTC triggers on
// the microprocessor clock).
#pragma once

#include <cstdint>
#include <string>

#include "sim/module.hpp"

namespace esv::sim {

class Clock final : public Module {
 public:
  /// A clock with the given period; the first posedge happens at
  /// `first_edge` (defaults to one period after time zero).
  Clock(Simulation& sim, std::string name, Time period);
  Clock(Simulation& sim, std::string name, Time period, Time first_edge);

  Event& posedge_event() { return posedge_; }
  Event& negedge_event() { return negedge_; }

  bool value() const { return value_; }
  /// Number of posedges seen so far (spurious injected edges included).
  std::uint64_t cycles() const { return cycles_; }
  Time period() const { return period_; }

  /// Fault-injection hook (fault::FaultEngine): fires one spurious
  /// out-of-phase posedge immediately. Waiters and statically sensitive
  /// methods run exactly as for a real edge, and cycles() counts it, so a
  /// checker triggered on the clock takes an extra temporal step.
  void inject_spurious_posedge() {
    ++cycles_;
    posedge_.notify();
  }

 private:
  Task generate();

  Event posedge_;
  Event negedge_;
  Time period_;
  Time first_edge_;
  bool value_ = false;
  std::uint64_t cycles_ = 0;
};

}  // namespace esv::sim

#include "sim/clock.hpp"

#include <stdexcept>

namespace esv::sim {

Clock::Clock(Simulation& sim, std::string name, Time period)
    : Clock(sim, std::move(name), period, period) {}

Clock::Clock(Simulation& sim, std::string name, Time period, Time first_edge)
    : Module(sim, std::move(name)),
      posedge_(sim, sub_name("posedge")),
      negedge_(sim, sub_name("negedge")),
      period_(period),
      first_edge_(first_edge) {
  if (period.is_zero()) throw std::invalid_argument("Clock: period must be > 0");
  sim_.spawn(sub_name("gen"), generate());
}

Task Clock::generate() {
  const Time high = Time::ps(period_.picoseconds() / 2);
  const Time low = period_ - high;
  if (!first_edge_.is_zero()) co_await sim_.delay(first_edge_);
  for (;;) {
    value_ = true;
    ++cycles_;
    posedge_.notify();
    co_await sim_.delay(high);
    value_ = false;
    negedge_.notify();
    co_await sim_.delay(low);
  }
}

}  // namespace esv::sim

#include "sim/kernel.hpp"

#include <stdexcept>
#include <utility>

#include "common/logging.hpp"
#include "obs/metrics.hpp"

namespace esv::sim {

// ---------------------------------------------------------------------------
// Task

Task Task::promise_type::get_return_object() {
  return Task(Handle::from_promise(*this));
}

Task& Task::operator=(Task&& other) noexcept {
  if (this != &other) {
    if (handle_) handle_.destroy();
    handle_ = other.handle_;
    other.handle_ = {};
  }
  return *this;
}

Task::~Task() {
  if (handle_) handle_.destroy();
}

// ---------------------------------------------------------------------------
// Process

Process::Process(Simulation& sim, std::string name)
    : sim_(sim), name_(std::move(name)) {}

ThreadProcess::ThreadProcess(Simulation& sim, std::string name, Task task)
    : Process(sim, std::move(name)), handle_(task.release()) {
  if (!handle_) throw std::invalid_argument("spawn: empty task");
  handle_.promise().process = this;
}

ThreadProcess::~ThreadProcess() {
  if (handle_) handle_.destroy();
}

void ThreadProcess::execute() {
  handle_.resume();
  if (handle_.done()) {
    state_ = State::kTerminated;
    if (handle_.promise().exception) {
      std::exception_ptr e = handle_.promise().exception;
      handle_.promise().exception = nullptr;
      std::rethrow_exception(e);
    }
  }
}

MethodProcess::MethodProcess(Simulation& sim, std::string name,
                             std::function<void()> fn)
    : Process(sim, std::move(name)), fn_(std::move(fn)) {}

void MethodProcess::execute() {
  state_ = State::kWaiting;  // methods always return to waiting-on-sensitivity
  fn_();
}

// ---------------------------------------------------------------------------
// Event

Event::Event(Simulation& sim, std::string name)
    : sim_(sim), name_(std::move(name)) {}

Event::~Event() = default;

void Event::add_waiter(Process& p) {
  waiters_.push_back(Waiter{&p, p.epoch()});
}

void Event::add_static_method(MethodProcess& m) { static_methods_.push_back(&m); }

void Event::fire() {
  ++fire_count_;
  pending_ = Pending::kNone;
  // Swap out the waiter list first: a woken process may immediately wait on
  // this event again.
  std::vector<Waiter> waiters;
  waiters.swap(waiters_);
  for (const Waiter& w : waiters) sim_.wake(*w.process, w.epoch);
  for (MethodProcess* m : static_methods_) sim_.make_runnable(*m);
}

void Event::notify() { fire(); }

void Event::notify_delta() {
  if (pending_ == Pending::kDelta) return;
  // A delta notification overrides a pending timed notification.
  ++pending_seq_;
  pending_ = Pending::kDelta;
  sim_.add_delta_event(*this);
}

void Event::notify(Time delay) {
  if (delay.is_zero()) {
    notify_delta();
    return;
  }
  const Time when = sim_.now() + delay;
  if (pending_ == Pending::kDelta) return;              // delta wins
  if (pending_ == Pending::kTimed && pending_time_ <= when) return;  // earlier wins
  ++pending_seq_;
  pending_ = Pending::kTimed;
  pending_time_ = when;
  sim_.schedule_timed_event(*this, delay, pending_seq_);
}

void Event::cancel() {
  // Invalidate anything already queued; the queue entries check pending_seq_.
  ++pending_seq_;
  pending_ = Pending::kNone;
}

// ---------------------------------------------------------------------------
// Awaiters

void EventAwaiter::await_suspend(std::coroutine_handle<Task::promise_type> h) {
  Process* p = h.promise().process;
  p->state_ = Process::State::kWaiting;
  event.add_waiter(*p);
}

void AnyEventAwaiter::await_suspend(std::coroutine_handle<Task::promise_type> h) {
  Process* p = h.promise().process;
  p->state_ = Process::State::kWaiting;
  // All events record the same epoch; the first to fire wakes the process and
  // bumps the epoch, so the remaining registrations become stale no-ops.
  for (Event* e : events) e->add_waiter(*p);
}

void DelayAwaiter::await_suspend(std::coroutine_handle<Task::promise_type> h) {
  Process* p = h.promise().process;
  p->state_ = Process::State::kWaiting;
  sim.schedule_timed_wake(*p, delay);
}

void DeltaAwaiter::await_suspend(std::coroutine_handle<Task::promise_type> h) {
  Process* p = h.promise().process;
  p->state_ = Process::State::kWaiting;
  sim.schedule_delta_wake(*p);
}

// ---------------------------------------------------------------------------
// Simulation

Simulation::Simulation() = default;
Simulation::~Simulation() = default;

ThreadProcess& Simulation::spawn(std::string name, Task task) {
  auto process =
      std::make_unique<ThreadProcess>(*this, std::move(name), std::move(task));
  ThreadProcess& ref = *process;
  processes_.push_back(std::move(process));
  make_runnable(ref);
  return ref;
}

MethodProcess& Simulation::create_method(std::string name,
                                         std::function<void()> fn,
                                         std::vector<Event*> sensitivity,
                                         bool run_at_start) {
  auto process =
      std::make_unique<MethodProcess>(*this, std::move(name), std::move(fn));
  MethodProcess& ref = *process;
  processes_.push_back(std::move(process));
  for (Event* e : sensitivity) e->add_static_method(ref);
  if (run_at_start) make_runnable(ref);
  return ref;
}

void Simulation::make_runnable(Process& p) {
  if (p.state_ == Process::State::kTerminated || p.in_runnable_) return;
  p.state_ = Process::State::kReady;
  p.in_runnable_ = true;
  runnable_.push_back(&p);
}

void Simulation::wake(Process& p, std::uint64_t epoch) {
  if (p.epoch() != epoch) return;  // stale wake-up (wait-any, cancelled wait)
  ++p.epoch_;
  make_runnable(p);
}

void Simulation::schedule_timed_wake(Process& p, Time delay) {
  TimedEntry entry;
  entry.time = now_ + delay;
  entry.seq = ++timed_seq_;
  entry.process = &p;
  entry.process_epoch = p.epoch();
  timed_queue_.push(entry);
}

void Simulation::schedule_delta_wake(Process& p) {
  delta_wakes_.push_back(DeltaWake{&p, p.epoch()});
}

void Simulation::schedule_timed_event(Event& e, Time delay,
                                      std::uint64_t event_seq) {
  TimedEntry entry;
  entry.time = now_ + delay;
  entry.seq = ++timed_seq_;
  entry.event = &e;
  entry.event_seq = event_seq;
  timed_queue_.push(entry);
}

void Simulation::add_delta_event(Event& e) { delta_events_.push_back(&e); }

void Simulation::request_update(Channel& channel) {
  update_queue_.push_back(&channel);
}

void Simulation::run_evaluate_phase() {
  while (!runnable_.empty()) {
    Process* p = runnable_.front();
    runnable_.pop_front();
    p->in_runnable_ = false;
    if (p->state_ == Process::State::kTerminated) continue;
    ++process_runs_;
    p->execute();
  }
}

void Simulation::run_update_phase() {
  std::vector<Channel*> updates;
  updates.swap(update_queue_);
  for (Channel* c : updates) c->update();
}

bool Simulation::run_delta_phase() {
  std::vector<Event*> events;
  events.swap(delta_events_);
  std::vector<DeltaWake> wakes;
  wakes.swap(delta_wakes_);
  for (Event* e : events) {
    // The notification may have been cancelled or superseded after queueing.
    if (e->pending_ == Event::Pending::kDelta) e->fire();
  }
  for (const DeltaWake& w : wakes) wake(*w.process, w.epoch);
  return !runnable_.empty();
}

Time Simulation::run(Time until) {
  const std::uint64_t deltas_before = delta_count_;
  const std::uint64_t runs_before = process_runs_;
  const Time end = run_loop(until);
  if (metrics_ != nullptr) {
    metrics_->counter("sim.delta_cycles").add(delta_count_ - deltas_before);
    metrics_->counter("sim.process_runs").add(process_runs_ - runs_before);
  }
  return end;
}

Time Simulation::run_loop(Time until) {
  while (!stop_requested_) {
    // One delta cycle: evaluate, update, delta notifications.
    if (!runnable_.empty()) {
      ++delta_count_;
      run_evaluate_phase();
      run_update_phase();
      if (run_delta_phase()) continue;
    } else {
      run_update_phase();
      if (run_delta_phase()) continue;
    }

    // sc_stop() during the delta cycle: exit before advancing time.
    if (stop_requested_) break;

    // Nothing runnable at the current time: advance to the next timed entry.
    bool advanced = false;
    while (!timed_queue_.empty()) {
      TimedEntry entry = timed_queue_.top();
      if (entry.time > until) return now_ = until;
      timed_queue_.pop();
      // Drop stale entries (superseded event notifications, woken processes).
      if (entry.event != nullptr) {
        if (entry.event->pending_ != Event::Pending::kTimed ||
            entry.event->pending_seq_ != entry.event_seq) {
          continue;
        }
      } else if (entry.process->epoch() != entry.process_epoch) {
        continue;
      }
      now_ = entry.time;
      if (entry.event != nullptr) {
        entry.event->fire();
      } else {
        wake(*entry.process, entry.process_epoch);
      }
      advanced = true;
      // Also fire everything else scheduled for the same instant.
      while (!timed_queue_.empty() && timed_queue_.top().time == now_) {
        TimedEntry next = timed_queue_.top();
        timed_queue_.pop();
        if (next.event != nullptr) {
          if (next.event->pending_ == Event::Pending::kTimed &&
              next.event->pending_seq_ == next.event_seq) {
            next.event->fire();
          }
        } else if (next.process->epoch() == next.process_epoch) {
          wake(*next.process, next.process_epoch);
        }
      }
      break;
    }
    if (!advanced && runnable_.empty()) break;  // starvation: simulation done
  }
  return now_;
}

}  // namespace esv::sim

// Discrete-event simulation kernel with SystemC semantics.
//
// The kernel reproduces the OSCI simulation cycle that the paper's SystemC
// Temporal Checker relies on:
//
//   1. evaluate phase  - run every runnable process; immediate notifications
//                        make further processes runnable within the phase
//   2. update phase    - primitive channels (Signal<T>) commit pending writes
//   3. delta phase     - delta-notified events wake their waiters; if any
//                        process became runnable, start a new delta cycle at
//                        the same simulation time
//   4. time advance    - otherwise advance to the earliest timed notification
//
// Processes come in two flavours, mirroring SC_THREAD and SC_METHOD:
//   - thread processes: C++20 coroutines returning sim::Task that suspend
//     with `co_await event`, `co_await sim.delay(t)`, ...
//   - method processes: plain callbacks with static sensitivity, re-run every
//     time one of their events fires.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace esv::obs {
class MetricsRegistry;
}

namespace esv::sim {

class Simulation;
class Event;
class Process;
class MethodProcess;

/// Primitive-channel interface: anything that defers state commits to the
/// update phase (e.g. Signal<T>) implements update() and calls
/// Simulation::request_update() from its write path.
class Channel {
 public:
  virtual ~Channel() = default;
  virtual void update() = 0;
};

/// Coroutine type for thread processes. A Task is created suspended; handing
/// it to Simulation::spawn() schedules it for time zero.
class [[nodiscard]] Task {
 public:
  struct promise_type {
    Task get_return_object();
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { exception = std::current_exception(); }

    Process* process = nullptr;
    std::exception_ptr exception;
  };

  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(other.handle_) { other.handle_ = {}; }
  Task& operator=(Task&& other) noexcept;
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task();

  Handle release() {
    Handle h = handle_;
    handle_ = {};
    return h;
  }

 private:
  Handle handle_;
};

/// Base class for both process flavours. The kernel identifies pending waits
/// with an epoch counter: waking a process bumps the epoch, so wake-ups queued
/// for an earlier epoch (e.g. the losing events of a wait-any) are ignored.
class Process {
 public:
  enum class State { kReady, kWaiting, kTerminated };

  Process(Simulation& sim, std::string name);
  virtual ~Process() = default;
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  const std::string& name() const { return name_; }
  State state() const { return state_; }
  std::uint64_t epoch() const { return epoch_; }
  Simulation& simulation() { return sim_; }

 protected:
  friend class Simulation;
  friend class Event;
  friend struct EventAwaiter;
  friend struct AnyEventAwaiter;
  friend struct DelayAwaiter;
  friend struct DeltaAwaiter;

  /// Runs the process body once (resume the coroutine / call the method).
  virtual void execute() = 0;

  Simulation& sim_;
  std::string name_;
  State state_ = State::kReady;
  std::uint64_t epoch_ = 0;  // bumped on every wake-up
  bool in_runnable_ = false;
};

/// SC_THREAD analogue: owns the coroutine frame.
class ThreadProcess final : public Process {
 public:
  ThreadProcess(Simulation& sim, std::string name, Task task);
  ~ThreadProcess() override;

 private:
  void execute() override;
  Task::Handle handle_;
};

/// SC_METHOD analogue: a callback with static sensitivity.
class MethodProcess final : public Process {
 public:
  MethodProcess(Simulation& sim, std::string name, std::function<void()> fn);

 private:
  void execute() override;
  std::function<void()> fn_;
};

/// SystemC-style event. Supports immediate, delta, and timed notification
/// with the standard override rules (immediate fires now; a pending delta
/// notification discards a pending timed one; an earlier timed notification
/// discards a later one).
class Event {
 public:
  explicit Event(Simulation& sim, std::string name = "event");
  ~Event();
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  const std::string& name() const { return name_; }

  /// Immediate notification: waiters become runnable in the current
  /// evaluate phase.
  void notify();
  /// Delta notification: waiters wake in the next delta cycle.
  void notify_delta();
  /// Timed notification after `delay`.
  void notify(Time delay);
  /// Cancels any pending delta/timed notification.
  void cancel();

  /// Number of times this event has fired (diagnostics / tests).
  std::uint64_t fire_count() const { return fire_count_; }

 private:
  friend class Simulation;
  struct Waiter {
    Process* process;
    std::uint64_t epoch;
  };

  void fire();  // wake dynamic waiters + trigger static methods
  void add_waiter(Process& p);
  void add_static_method(MethodProcess& m);

  friend struct EventAwaiter;
  friend struct AnyEventAwaiter;

  Simulation& sim_;
  std::string name_;
  std::vector<Waiter> waiters_;
  std::vector<MethodProcess*> static_methods_;
  std::uint64_t fire_count_ = 0;

  enum class Pending { kNone, kDelta, kTimed };
  Pending pending_ = Pending::kNone;
  Time pending_time_;
  std::uint64_t pending_seq_ = 0;  // validates queued timed notifications
};

/// Awaiter for `co_await event;`.
struct EventAwaiter {
  Event& event;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<Task::promise_type> h);
  void await_resume() const noexcept {}
};

inline EventAwaiter operator co_await(Event& e) { return EventAwaiter{e}; }

/// Awaiter for `co_await any_of(e1, e2, ...);` — resumes on the first event.
struct AnyEventAwaiter {
  std::vector<Event*> events;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<Task::promise_type> h);
  void await_resume() const noexcept {}
};

template <typename... Events>
AnyEventAwaiter any_of(Events&... events) {
  return AnyEventAwaiter{{(&events)...}};
}

/// Awaiter for `co_await sim.delay(t);`.
struct DelayAwaiter {
  Simulation& sim;
  Time delay;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<Task::promise_type> h);
  void await_resume() const noexcept {}
};

/// Awaiter for `co_await sim.next_delta();` — wake in the next delta cycle.
struct DeltaAwaiter {
  Simulation& sim;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<Task::promise_type> h);
  void await_resume() const noexcept {}
};

/// The simulation context. Owns all processes; everything is deterministic:
/// runnable processes execute in FIFO order of scheduling.
class Simulation {
 public:
  Simulation();
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Time now() const { return now_; }
  std::uint64_t delta_count() const { return delta_count_; }
  std::uint64_t process_runs() const { return process_runs_; }

  /// Registers a thread process; it first runs at time 0 (or at the current
  /// time if spawned mid-simulation).
  ThreadProcess& spawn(std::string name, Task task);

  /// Registers a method process with static sensitivity. If `run_at_start`
  /// the method also runs once at time 0 (SystemC default).
  MethodProcess& create_method(std::string name, std::function<void()> fn,
                               std::vector<Event*> sensitivity,
                               bool run_at_start = true);

  /// Runs until no activity remains or simulated time would pass `until`.
  /// Returns the time at which the run stopped.
  Time run(Time until = Time::max());

  /// Requests sc_stop(): the current delta cycle completes, then run() exits.
  void stop() { stop_requested_ = true; }
  bool stop_requested() const { return stop_requested_; }

  /// Channel update request (signals call this from their write path).
  void request_update(Channel& channel);

  /// Attaches a metrics registry (docs/OBSERVABILITY.md): every run() call
  /// adds the delta cycles and process executions it consumed to the
  /// `sim.delta_cycles` / `sim.process_runs` counters. Pass nullptr to
  /// detach. The kernel pays nothing per event — counters are flushed once
  /// per run() return.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  DelayAwaiter delay(Time t) { return DelayAwaiter{*this, t}; }
  DeltaAwaiter next_delta() { return DeltaAwaiter{*this}; }

 private:
  friend class Event;
  friend class ThreadProcess;
  friend struct EventAwaiter;
  friend struct AnyEventAwaiter;
  friend struct DelayAwaiter;
  friend struct DeltaAwaiter;

  struct TimedEntry {
    Time time;
    std::uint64_t seq;        // FIFO tiebreak + timed-notify validation
    Event* event = nullptr;   // either an event fires ...
    Process* process = nullptr;  // ... or a process wakes directly
    std::uint64_t process_epoch = 0;
    std::uint64_t event_seq = 0;

    bool operator>(const TimedEntry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  Time run_loop(Time until);
  void make_runnable(Process& p);
  void wake(Process& p, std::uint64_t epoch);  // epoch-checked wake-up
  void schedule_timed_wake(Process& p, Time delay);
  void schedule_delta_wake(Process& p);
  void schedule_timed_event(Event& e, Time delay, std::uint64_t event_seq);
  void add_delta_event(Event& e);
  void run_evaluate_phase();
  void run_update_phase();
  bool run_delta_phase();  // returns true if anything became runnable

  Time now_;
  std::uint64_t delta_count_ = 0;
  std::uint64_t process_runs_ = 0;
  std::uint64_t timed_seq_ = 0;
  bool stop_requested_ = false;
  obs::MetricsRegistry* metrics_ = nullptr;

  std::vector<std::unique_ptr<Process>> processes_;
  std::deque<Process*> runnable_;
  std::vector<Channel*> update_queue_;
  std::vector<Event*> delta_events_;
  struct DeltaWake {
    Process* process;
    std::uint64_t epoch;
  };
  std::vector<DeltaWake> delta_wakes_;
  std::priority_queue<TimedEntry, std::vector<TimedEntry>, std::greater<>>
      timed_queue_;
};

}  // namespace esv::sim

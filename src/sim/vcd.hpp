// VCD (Value Change Dump) tracing — waveforms for debugging verification
// runs, viewable in GTKWave & friends.
//
// Sampling is trigger-based to fit this library's monitoring style: bind the
// tracer to the same event that triggers the SCTC (processor clock or
// esw_pc_event) and every temporal step becomes one VCD sample; values are
// emitted only when they change. Signals are registered as probes — plain
// callables — so anything observable can be traced: Signal<T> values,
// memory words, proposition values, monitor verdicts.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "sim/kernel.hpp"

namespace esv::sim {

class VcdTracer {
 public:
  /// Creates a tracer; the VCD text accumulates in memory until write_to /
  /// str() is called. `timescale` is emitted verbatim (default "1ps" to
  /// match the kernel's resolution).
  explicit VcdTracer(Simulation& sim, std::string timescale = "1ps");

  /// Registers a 1-bit probe.
  void add_bool(const std::string& name, std::function<bool()> probe);
  /// Registers a 32-bit probe.
  void add_u32(const std::string& name, std::function<std::uint32_t()> probe);

  /// Samples every probe at the current simulation time, emitting changes.
  /// The first sample also emits the header and initial values.
  void sample();

  /// Convenience: samples on every firing of `trigger`.
  void sample_on(Event& trigger);

  /// Number of samples taken.
  std::uint64_t samples() const { return samples_; }

  /// The complete VCD document (header + change dump so far).
  std::string str() const;

 private:
  struct Probe {
    std::string name;
    std::string id;  // VCD identifier code
    int width;       // 1 or 32
    std::function<std::uint32_t()> read;
    std::optional<std::uint32_t> last;
  };

  static std::string id_for(std::size_t index);
  void emit_header();
  void emit_value(const Probe& probe, std::uint32_t value);

  Simulation& sim_;
  std::string timescale_;
  std::vector<Probe> probes_;
  std::ostringstream header_;
  std::ostringstream body_;
  bool header_done_ = false;
  std::uint64_t samples_ = 0;
  std::optional<std::uint64_t> last_timestamp_;
};

}  // namespace esv::sim

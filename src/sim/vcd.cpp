#include "sim/vcd.hpp"

#include <stdexcept>

namespace esv::sim {

VcdTracer::VcdTracer(Simulation& sim, std::string timescale)
    : sim_(sim), timescale_(std::move(timescale)) {}

std::string VcdTracer::id_for(std::size_t index) {
  // Printable-ASCII identifier codes, shortest first ("!", "\"", ... "!!").
  std::string id;
  std::size_t n = index;
  do {
    id += static_cast<char>('!' + n % 94);
    n /= 94;
  } while (n != 0);
  return id;
}

void VcdTracer::add_bool(const std::string& name, std::function<bool()> probe) {
  if (header_done_) {
    throw std::logic_error("VcdTracer: add probes before the first sample");
  }
  Probe p;
  p.name = name;
  p.id = id_for(probes_.size());
  p.width = 1;
  p.read = [probe = std::move(probe)] { return probe() ? 1u : 0u; };
  probes_.push_back(std::move(p));
}

void VcdTracer::add_u32(const std::string& name,
                        std::function<std::uint32_t()> probe) {
  if (header_done_) {
    throw std::logic_error("VcdTracer: add probes before the first sample");
  }
  Probe p;
  p.name = name;
  p.id = id_for(probes_.size());
  p.width = 32;
  p.read = std::move(probe);
  probes_.push_back(std::move(p));
}

void VcdTracer::emit_header() {
  header_ << "$timescale " << timescale_ << " $end\n";
  header_ << "$scope module esv $end\n";
  for (const Probe& p : probes_) {
    header_ << "$var wire " << p.width << " " << p.id << " " << p.name
            << " $end\n";
  }
  header_ << "$upscope $end\n$enddefinitions $end\n";
  header_done_ = true;
}

void VcdTracer::emit_value(const Probe& probe, std::uint32_t value) {
  if (probe.width == 1) {
    body_ << (value ? '1' : '0') << probe.id << "\n";
    return;
  }
  body_ << "b";
  bool leading = true;
  for (int bit = 31; bit >= 0; --bit) {
    const bool set = (value >> bit) & 1u;
    if (set) leading = false;
    if (!leading || bit == 0) body_ << (set ? '1' : '0');
  }
  body_ << " " << probe.id << "\n";
}

void VcdTracer::sample() {
  if (!header_done_) emit_header();
  const std::uint64_t now = sim_.now().picoseconds();
  bool stamped = false;
  for (Probe& p : probes_) {
    const std::uint32_t value = p.read();
    if (p.last.has_value() && *p.last == value) continue;
    if (!stamped) {
      if (!last_timestamp_.has_value() || *last_timestamp_ != now) {
        body_ << "#" << now << "\n";
        last_timestamp_ = now;
      }
      stamped = true;
    }
    emit_value(p, value);
    p.last = value;
  }
  ++samples_;
}

void VcdTracer::sample_on(Event& trigger) {
  sim_.create_method("vcd_sampler", [this] { sample(); }, {&trigger},
                     /*run_at_start=*/false);
}

std::string VcdTracer::str() const { return header_.str() + body_.str(); }

}  // namespace esv::sim

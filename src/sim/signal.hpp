// Signal<T>: primitive channel with SystemC evaluate/update semantics.
//
// Writes are deferred to the update phase of the current delta cycle, so all
// processes in one evaluate phase observe the same stable value; the
// value_changed event fires as a delta notification when the committed value
// differs from the previous one.
#pragma once

#include <string>
#include <utility>

#include "sim/kernel.hpp"

namespace esv::sim {

template <typename T>
class Signal final : public Channel {
 public:
  Signal(Simulation& sim, std::string name, T initial = T{})
      : sim_(sim),
        changed_(sim, name + ".value_changed"),
        name_(std::move(name)),
        current_(initial),
        next_(initial) {}

  const std::string& name() const { return name_; }

  /// Current committed value (stable within an evaluate phase).
  const T& read() const { return current_; }

  /// Schedules `value` to be committed in the update phase.
  void write(const T& value) {
    next_ = value;
    if (!update_pending_) {
      update_pending_ = true;
      sim_.request_update(*this);
    }
  }

  /// Fires (delta) whenever a committed write changed the value.
  Event& value_changed_event() { return changed_; }

  void update() override {
    update_pending_ = false;
    if (!(next_ == current_)) {
      current_ = next_;
      changed_.notify_delta();
    }
  }

 private:
  Simulation& sim_;
  Event changed_;
  std::string name_;
  T current_;
  T next_;
  bool update_pending_ = false;
};

}  // namespace esv::sim

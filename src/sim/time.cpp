#include "sim/time.hpp"

namespace esv::sim {

std::string Time::to_string() const {
  struct Unit {
    std::uint64_t factor;
    const char* name;
  };
  static constexpr Unit kUnits[] = {
      {1000000000000ULL, "s"}, {1000000000ULL, "ms"}, {1000000ULL, "us"},
      {1000ULL, "ns"},         {1ULL, "ps"},
  };
  if (ps_ == 0) return "0 s";
  for (const auto& unit : kUnits) {
    if (ps_ % unit.factor == 0) {
      return std::to_string(ps_ / unit.factor) + " " + unit.name;
    }
  }
  return std::to_string(ps_) + " ps";
}

}  // namespace esv::sim

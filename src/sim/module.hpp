// Module: organizational base class, the sc_module analogue. Modules hold
// events/signals/processes and give them hierarchical names.
#pragma once

#include <string>
#include <utility>

#include "sim/kernel.hpp"

namespace esv::sim {

class Module {
 public:
  Module(Simulation& sim, std::string name)
      : sim_(sim), name_(std::move(name)) {}
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }
  Simulation& simulation() { return sim_; }

 protected:
  /// Child-object name: "<module>.<leaf>".
  std::string sub_name(const std::string& leaf) const { return name_ + "." + leaf; }

  Simulation& sim_;
  std::string name_;
};

}  // namespace esv::sim

// Simulated time for the discrete-event kernel.
//
// Time is an integer count of picoseconds, mirroring SystemC's sc_time with a
// fixed 1 ps resolution. Integer time keeps the kernel's event ordering exact.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace esv::sim {

class Time {
 public:
  constexpr Time() = default;

  static constexpr Time ps(std::uint64_t v) { return Time(v); }
  static constexpr Time ns(std::uint64_t v) { return Time(v * 1000ULL); }
  static constexpr Time us(std::uint64_t v) { return Time(v * 1000000ULL); }
  static constexpr Time ms(std::uint64_t v) { return Time(v * 1000000000ULL); }
  static constexpr Time sec(std::uint64_t v) { return Time(v * 1000000000000ULL); }

  /// Largest representable time; used as "run forever".
  static constexpr Time max() { return Time(~std::uint64_t{0}); }
  static constexpr Time zero() { return Time(0); }

  constexpr std::uint64_t picoseconds() const { return ps_; }
  constexpr bool is_zero() const { return ps_ == 0; }

  friend constexpr auto operator<=>(Time a, Time b) = default;
  friend constexpr Time operator+(Time a, Time b) { return Time(a.ps_ + b.ps_); }
  friend constexpr Time operator-(Time a, Time b) { return Time(a.ps_ - b.ps_); }
  friend constexpr Time operator*(Time a, std::uint64_t k) { return Time(a.ps_ * k); }
  Time& operator+=(Time other) { ps_ += other.ps_; return *this; }

  /// Renders the time with the largest unit that divides it ("12 ns").
  std::string to_string() const;

 private:
  explicit constexpr Time(std::uint64_t ps) : ps_(ps) {}
  std::uint64_t ps_ = 0;
};

}  // namespace esv::sim

#include "mem/address_space.hpp"

namespace esv::mem {

std::string MemoryFault::to_hex(std::uint32_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  for (int shift = 28; shift >= 0; shift -= 4) {
    out += kDigits[(v >> shift) & 0xF];
  }
  return out;
}

AddressSpace::AddressSpace(std::uint32_t ram_bytes) {
  if (ram_bytes % 4 != 0) {
    throw std::invalid_argument("AddressSpace: RAM size must be word-aligned");
  }
  ram_.assign(ram_bytes / 4, 0);
}

void AddressSpace::map_device(std::uint32_t base, std::uint32_t bytes,
                              MmioDevice& device) {
  if (base % 4 != 0 || bytes % 4 != 0 || bytes == 0) {
    throw std::invalid_argument("map_device: range must be word-aligned");
  }
  if (base < ram_bytes()) {
    throw std::invalid_argument("map_device: range overlaps RAM");
  }
  for (const Mapping& m : mappings_) {
    const bool disjoint = base + bytes <= m.base || m.base + m.bytes <= base;
    if (!disjoint) {
      throw std::invalid_argument("map_device: range overlaps another device");
    }
  }
  mappings_.push_back(Mapping{base, bytes, &device});
}

const AddressSpace::Mapping* AddressSpace::find_mapping(
    std::uint32_t address) const {
  for (const Mapping& m : mappings_) {
    if (address >= m.base && address < m.base + m.bytes) return &m;
  }
  return nullptr;
}

void AddressSpace::check_aligned(std::uint32_t address) {
  if (address % 4 != 0) throw MemoryFault("misaligned word access", address);
}

std::uint32_t AddressSpace::read_word(std::uint32_t address) {
  check_aligned(address);
  if (address < ram_bytes()) return ram_[address / 4];
  if (const Mapping* m = find_mapping(address)) {
    return m->device->mmio_read(address - m->base);
  }
  throw MemoryFault("read from unmapped memory", address);
}

void AddressSpace::write_word(std::uint32_t address, std::uint32_t value) {
  check_aligned(address);
  if (address < ram_bytes()) {
    ram_[address / 4] = value;
    return;
  }
  if (const Mapping* m = find_mapping(address)) {
    m->device->mmio_write(address - m->base, value);
    return;
  }
  throw MemoryFault("write to unmapped memory", address);
}

void AddressSpace::tick_devices() {
  for (const Mapping& m : mappings_) m.device->tick();
}

std::uint32_t AddressSpace::sctc_read_uint(std::uint32_t address) const {
  if (address % 4 != 0 || address >= ram_bytes()) return 0;
  return ram_[address / 4];
}

}  // namespace esv::mem

// Byte-addressed 32-bit address space with memory-mapped devices.
//
// Both execution platforms use this as their memory system:
//   - approach 1: the microprocessor's bus — instruction/data RAM plus MMIO
//   - approach 2: the derived model's *virtual memory model* — the paper
//     converts every direct memory access `*(addr)` "into virtual memory
//     requests" because verification happens "without having hardware"
//
// The SCTC reads embedded-software variables out of this space through the
// sctc::MemoryReadInterface (sctc_read_uint); monitor reads are side-effect
// free and only see RAM, never device registers.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sctc/proposition.hpp"

namespace esv::mem {

/// A device with word-sized memory-mapped registers. Offsets are relative to
/// the mapping base. tick() advances device-internal time (busy counters);
/// the execution platform calls it once per instruction / statement step.
class MmioDevice {
 public:
  virtual ~MmioDevice() = default;
  virtual std::uint32_t mmio_read(std::uint32_t offset) = 0;
  virtual void mmio_write(std::uint32_t offset, std::uint32_t value) = 0;
  virtual void tick() {}
};

/// Raised on misaligned or out-of-range accesses by the software under test.
class MemoryFault : public std::runtime_error {
 public:
  MemoryFault(const std::string& what, std::uint32_t address)
      : std::runtime_error(what + " at address 0x" + to_hex(address)),
        address_(address) {}
  std::uint32_t address() const { return address_; }

 private:
  static std::string to_hex(std::uint32_t v);
  std::uint32_t address_;
};

class AddressSpace final : public sctc::MemoryReadInterface {
 public:
  /// RAM spans byte addresses [0, ram_bytes); must be word-aligned.
  explicit AddressSpace(std::uint32_t ram_bytes);

  std::uint32_t ram_bytes() const {
    return static_cast<std::uint32_t>(ram_.size() * 4);
  }

  /// Maps `device` at [base, base+bytes). The range must be word-aligned and
  /// must not overlap RAM or another device.
  void map_device(std::uint32_t base, std::uint32_t bytes, MmioDevice& device);

  /// Word access from the software under test. Dispatches to RAM or a
  /// device; throws MemoryFault on misaligned/unmapped addresses.
  std::uint32_t read_word(std::uint32_t address);
  void write_word(std::uint32_t address, std::uint32_t value);

  /// Advances all mapped devices by one step.
  void tick_devices();

  /// Monitor access (SCTC): side-effect free. RAM reads return the stored
  /// word; anything else (device registers, unmapped addresses) reads as 0
  /// so that a monitor can never fault or perturb the hardware model.
  std::uint32_t sctc_read_uint(std::uint32_t address) const override;

 private:
  struct Mapping {
    std::uint32_t base;
    std::uint32_t bytes;
    MmioDevice* device;
  };

  const Mapping* find_mapping(std::uint32_t address) const;
  static void check_aligned(std::uint32_t address);

  std::vector<std::uint32_t> ram_;
  std::vector<Mapping> mappings_;
};

}  // namespace esv::mem

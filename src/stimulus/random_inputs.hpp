// Constrained-random stimulus for the software's external inputs.
//
// The paper generates stimuli via "constrained randomization for all the
// external input variables and hardware (i.e. Data Flash) elements". This
// provider draws each `__in(name)` value from a per-input constraint:
// uniform ranges, weighted choices, or biased booleans (for fault
// injection). Everything is seeded and deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "minic/io.hpp"

namespace esv::stimulus {

class RandomInputProvider final : public minic::InputProvider {
 public:
  explicit RandomInputProvider(std::uint64_t seed) : rng_(seed) {}

  /// Uniform draw from [lo, hi] (inclusive).
  void set_range(const std::string& name, std::int64_t lo, std::int64_t hi);
  /// Weighted choice among explicit values.
  void set_weighted(const std::string& name,
                    std::vector<std::pair<std::uint32_t, std::uint32_t>>
                        value_weight_pairs);
  /// 1 with probability num/den, else 0 (fault-injection style inputs).
  void set_chance(const std::string& name, std::uint32_t num,
                  std::uint32_t den);

  /// Throws std::runtime_error for inputs with no configured constraint:
  /// the paper stresses that "all the input variables have to be
  /// constrained in order to avoid false reasoning".
  std::uint32_t input(int input_id, const std::string& name) override;

  /// Number of draws served so far (per run statistics).
  std::uint64_t draw_count() const { return draws_; }

 private:
  struct Constraint {
    enum class Kind { kRange, kWeighted, kChance } kind = Kind::kRange;
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    std::vector<std::uint32_t> values;
    std::vector<std::uint32_t> weights;
    std::uint32_t num = 0;
    std::uint32_t den = 1;
  };

  common::Rng rng_;
  std::map<std::string, Constraint> constraints_;
  std::uint64_t draws_ = 0;
};

/// Plays a fixed script of input values (in draw order, regardless of input
/// name) and then falls back to a delegate provider. Used to replay a
/// directed test — e.g. a BMC counterexample — inside a running
/// constrained-random simulation.
class ScriptedOverrideProvider final : public minic::InputProvider {
 public:
  ScriptedOverrideProvider(minic::InputProvider& fallback,
                           std::vector<std::uint32_t> script = {})
      : fallback_(fallback), script_(std::move(script)) {}

  /// Queues a new script; the next draws consume it front to back.
  void play(std::vector<std::uint32_t> script) {
    script_ = std::move(script);
    next_ = 0;
  }
  bool script_active() const { return next_ < script_.size(); }

  std::uint32_t input(int input_id, const std::string& name) override {
    if (next_ < script_.size()) return script_[next_++];
    return fallback_.input(input_id, name);
  }

 private:
  minic::InputProvider& fallback_;
  std::vector<std::uint32_t> script_;
  std::size_t next_ = 0;
};

/// The standard constraint set for the EEPROM case study main loop:
///   op_select    uniform over the 7 operations (uniform op mix)
///   rec_id       0..9 (ids 8/9 exercise the EEE_ERR_PARAMETER path)
///   wdata        full 16-bit data values
///   inject_fault 1 with the given permille (flash faults -> EEE_ERR_INTERNAL)
void configure_eeprom_inputs(RandomInputProvider& inputs,
                             std::uint32_t fault_permille = 10);

}  // namespace esv::stimulus

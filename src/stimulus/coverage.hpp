// Return-value coverage, the paper's C.(%) metric.
//
// "The Coverage (C.(%)) subcolumn describes the percentage of the return
// values that we received. 100% indicates that we received all the return
// values." One collector per operation: it samples the operation's return
// register every temporal step and records which documented codes showed up.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace esv::stimulus {

class ReturnCodeCoverage {
 public:
  explicit ReturnCodeCoverage(std::vector<std::uint32_t> expected_codes)
      : expected_(std::move(expected_codes)) {}

  /// Samples one observation; 0 ("no return yet") and undocumented values
  /// are ignored (undocumented values are counted separately as anomalies).
  void observe(std::uint32_t value);

  double percent() const {
    if (expected_.empty()) return 100.0;
    return 100.0 * static_cast<double>(observed_.size()) /
           static_cast<double>(expected_.size());
  }
  bool complete() const { return observed_.size() == expected_.size(); }
  std::size_t observed_count() const { return observed_.size(); }
  std::size_t expected_count() const { return expected_.size(); }
  const std::set<std::uint32_t>& observed() const { return observed_; }
  /// Non-zero values seen that are NOT in the documented set — a real
  /// specification violation if it ever happens.
  std::uint64_t anomaly_count() const { return anomalies_; }

  /// Merges another collector's observations into this one (campaign-style
  /// aggregation across seeds). Only codes in *this* collector's expected set
  /// count as observed; everything else the other collector saw is folded
  /// into the anomaly count, so merging collectors with mismatched expected
  /// sets cannot inflate the coverage percentage.
  void merge(const ReturnCodeCoverage& other);

  void reset() {
    observed_.clear();
    anomalies_ = 0;
  }

 private:
  std::vector<std::uint32_t> expected_;
  std::set<std::uint32_t> observed_;
  std::uint64_t anomalies_ = 0;
};

}  // namespace esv::stimulus

#include "stimulus/random_inputs.hpp"

namespace esv::stimulus {

void RandomInputProvider::set_range(const std::string& name, std::int64_t lo,
                                    std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("set_range: lo > hi");
  Constraint c;
  c.kind = Constraint::Kind::kRange;
  c.lo = lo;
  c.hi = hi;
  constraints_[name] = std::move(c);
}

void RandomInputProvider::set_weighted(
    const std::string& name,
    std::vector<std::pair<std::uint32_t, std::uint32_t>> value_weight_pairs) {
  if (value_weight_pairs.empty()) {
    throw std::invalid_argument("set_weighted: empty choice list");
  }
  Constraint c;
  c.kind = Constraint::Kind::kWeighted;
  for (const auto& [value, weight] : value_weight_pairs) {
    c.values.push_back(value);
    c.weights.push_back(weight);
  }
  constraints_[name] = std::move(c);
}

void RandomInputProvider::set_chance(const std::string& name,
                                     std::uint32_t num, std::uint32_t den) {
  if (den == 0) throw std::invalid_argument("set_chance: den == 0");
  Constraint c;
  c.kind = Constraint::Kind::kChance;
  c.num = num;
  c.den = den;
  constraints_[name] = std::move(c);
}

std::uint32_t RandomInputProvider::input(int, const std::string& name) {
  auto it = constraints_.find(name);
  if (it == constraints_.end()) {
    throw std::runtime_error(
        "unconstrained input '" + name +
        "': constrain every external input to avoid false reasoning");
  }
  ++draws_;
  const Constraint& c = it->second;
  switch (c.kind) {
    case Constraint::Kind::kRange:
      return static_cast<std::uint32_t>(rng_.next_in_range(c.lo, c.hi));
    case Constraint::Kind::kWeighted:
      return c.values[rng_.next_weighted(
          std::span<const std::uint32_t>(c.weights))];
    case Constraint::Kind::kChance:
      return rng_.next_chance(c.num, c.den) ? 1u : 0u;
  }
  return 0;
}

void configure_eeprom_inputs(RandomInputProvider& inputs,
                             std::uint32_t fault_permille) {
  inputs.set_range("op_select", 0, 6);
  inputs.set_range("rec_id", 0, 9);
  inputs.set_range("wdata", 0, 0xFFFF);
  inputs.set_chance("inject_fault", fault_permille, 1000);
}

}  // namespace esv::stimulus

#include "stimulus/coverage.hpp"

#include <algorithm>

namespace esv::stimulus {

void ReturnCodeCoverage::observe(std::uint32_t value) {
  if (value == 0) return;
  if (std::find(expected_.begin(), expected_.end(), value) !=
      expected_.end()) {
    observed_.insert(value);
  } else {
    ++anomalies_;
  }
}

void ReturnCodeCoverage::merge(const ReturnCodeCoverage& other) {
  for (std::uint32_t value : other.observed_) {
    if (std::find(expected_.begin(), expected_.end(), value) !=
        expected_.end()) {
      observed_.insert(value);
    } else {
      ++anomalies_;
    }
  }
  anomalies_ += other.anomalies_;
}

}  // namespace esv::stimulus

// TemporalChecker: the SystemC Temporal Checker (SCTC) core.
//
// The checker owns a set of named Propositions and a set of temporal
// properties (FLTL or PSL). On every trigger — a microprocessor clock edge in
// the paper's first approach, the derived model's program-counter event in
// the second — it evaluates all propositions once and advances every pending
// property monitor by one temporal step.
//
// Monitors run in one of four modes, which produce identical verdicts:
//   kProgression           — lazy formula rewriting, no build cost (the
//                            "interpreted" mode)
//   kSynthesizedAutomaton  — the paper's pipeline: the property is translated
//                            into an AR-automaton (IL) ahead of time; each
//                            step is then a table lookup. Generation time is
//                            part of the reported verification time, which is
//                            why the paper's TB-10000 column is dominated by
//                            AR-automaton generation.
//   kCompiled              — the AR-automaton lowered further into flat
//                            transition tables (temporal/compiled.hpp):
//                            propositions are evaluated once per step into a
//                            uint64_t word, each monitor step is one dense
//                            state x word-class lookup, and steady-state
//                            stepping performs zero heap allocations.
//   kBoth                  — interpreted and compiled monitors run in
//                            lockstep; any verdict or obligation divergence
//                            between them is recorded as a first-class
//                            monitor error (docs/MONITORS.md). The verdicts
//                            reported are the interpreted oracle's.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sctc/proposition.hpp"
#include "sim/kernel.hpp"
#include "sim/module.hpp"
#include "temporal/automaton.hpp"
#include "temporal/compiled.hpp"
#include "temporal/monitor.hpp"
#include "temporal/parser.hpp"

namespace esv::sctc {

enum class MonitorMode : std::uint8_t {
  kProgression,
  kSynthesizedAutomaton,
  kCompiled,
  kBoth,
};

/// Stable lower-case mode name ("progression" / "automaton" / "compiled" /
/// "both"), used by reports, the wire protocol, and the CLI.
const char* monitor_mode_name(MonitorMode mode);

/// Parses a mode name. Accepts the canonical names plus "interpreted" as an
/// alias for progression (the --monitor-mode spelling). Returns nullopt for
/// anything else.
std::optional<MonitorMode> parse_monitor_mode(std::string_view name);

/// Robustness classification of a property verdict under fault injection.
/// Fault campaigns use it to separate software robustness bugs from
/// expected degradation:
///   kHeldUnderFault     — validated, or still undecided when the run ended
///                         cleanly: the property survived the faults
///   kViolatedUnderFault — the monitor reached a definitive violation while
///                         faults were being injected
///   kMonitorError       — the run aborted (SUT fault, watchdog timeout,
///                         infrastructure error) before the monitor decided;
///                         the verdict is unusable, not a property result
enum class FaultClass {
  kNotApplicable,  // nominal run, no faults configured
  kHeldUnderFault,
  kViolatedUnderFault,
  kMonitorError,
};

/// Classifies a final verdict from a fault-injection run. `run_errored` is
/// true when the run aborted before completing (error or timeout).
FaultClass classify_under_fault(temporal::Verdict verdict, bool run_errored);

/// Stable lower-case name ("held", "violated", "monitor-error", "n/a").
const char* fault_class_name(FaultClass fault_class);

/// Per-property state and result.
struct PropertyRecord {
  std::string name;
  std::string text;
  temporal::Dialect dialect = temporal::Dialect::kFltl;
  temporal::FormulaRef formula = nullptr;

  // Active monitors depend on the checker's mode: progression alone
  // (kProgression), automaton + automaton_monitor (kSynthesizedAutomaton),
  // compiled alone (kCompiled), or progression + compiled in lockstep
  // (kBoth).
  std::unique_ptr<temporal::ProgressionMonitor> progression;
  std::unique_ptr<temporal::ArAutomaton> automaton;
  std::unique_ptr<temporal::AutomatonMonitor> automaton_monitor;
  temporal::CompiledMonitor compiled;
  /// kBoth only: the compiled fast path disagreed with the interpreted
  /// oracle at some step. The reported verdict stays the oracle's; the
  /// divergence itself is surfaced through TemporalChecker::divergences().
  bool diverged = false;

  /// Steps consumed when the verdict became final (0 while pending).
  std::uint64_t decided_at_step = 0;
  /// Simulation time when the verdict became final.
  sim::Time decided_at_time;
  /// AR-automaton size (synthesized mode only).
  std::size_t automaton_states = 0;
  /// Last AR-automaton state id written to the trace (tracing only).
  std::uint32_t traced_state = UINT32_MAX;

  temporal::Verdict verdict() const;
};

class TemporalChecker : public sim::Module {
 public:
  TemporalChecker(sim::Simulation& sim, std::string name,
                  MonitorMode mode = MonitorMode::kProgression);
  ~TemporalChecker() override;

  MonitorMode mode() const { return mode_; }

  /// Registers a named proposition. Properties refer to propositions by
  /// these names. Re-registering a name replaces the proposition.
  void register_proposition(const std::string& name,
                            std::unique_ptr<Proposition> proposition);
  /// Convenience: registers a LambdaProposition.
  void register_proposition(const std::string& name,
                            std::function<bool()> predicate);
  bool has_proposition(const std::string& name) const;

  /// Parses and instantiates a property monitor. Every proposition the
  /// property mentions must already be registered (throws std::runtime_error
  /// otherwise). Returns the property index.
  std::size_t add_property(const std::string& name, const std::string& text,
                           temporal::Dialect dialect = temporal::Dialect::kFltl);

  /// Binds the checker to a trigger event: a method process steps all
  /// monitors every time the event fires.
  void bind_trigger(sim::Event& trigger);

  /// Advances every pending monitor by one temporal step (called by the
  /// trigger, or manually in tests).
  void step_all();

  /// If set, the simulation stops as soon as any property is violated.
  void set_stop_on_violation(bool stop) { stop_on_violation_ = stop; }

  // --- observability (docs/OBSERVABILITY.md) ---
  /// Attaches a metrics registry: the checker bumps `sctc.steps`,
  /// `sctc.prop_changes`, `sctc.monitor_transitions`, `sctc.validated` /
  /// `sctc.violated`, and records decision steps into the
  /// `sctc.decide_step` histogram. Counter references are cached here, so
  /// the per-step cost is a handful of relaxed atomic adds. Pass nullptr to
  /// detach.
  void set_metrics(obs::MetricsRegistry* metrics);
  /// Attaches a JSONL tracer recording proposition value changes, monitor
  /// verdict transitions, and (in synthesized-automaton mode) AR-automaton
  /// state movement. Pass nullptr to detach.
  void set_trace(obs::TraceWriter* trace) { trace_ = trace; }

  /// Resets all monitors to their initial state (verdicts and step counts
  /// are cleared; propositions keep their own state).
  void reset_monitors();

  // --- differential oracle (kBoth; docs/MONITORS.md) ---
  /// Number of properties whose compiled monitor diverged from the
  /// interpreted oracle. Always 0 outside kBoth mode; any non-zero count is
  /// a monitor implementation bug, never a property result.
  std::size_t divergence_count() const { return divergences_.size(); }
  /// One deterministic description per diverged property (first divergence
  /// wins; later steps of an already-diverged monitor are not re-reported).
  const std::vector<std::string>& divergences() const { return divergences_; }
  /// Test hook: forces a property's compiled monitor into the given state so
  /// the divergence reporting path can be exercised (kCompiled/kBoth only).
  void corrupt_compiled_for_test(std::size_t property_index,
                                 std::uint32_t state);

  // --- results ---
  const std::vector<PropertyRecord>& properties() const { return properties_; }
  std::uint64_t steps() const { return steps_; }
  std::size_t pending_count() const;
  std::size_t validated_count() const;
  std::size_t violated_count() const;
  bool any_violated() const { return violated_count() > 0; }
  bool all_decided() const { return pending_count() == 0; }

  /// Multi-line result table.
  std::string report() const;

  // --- proposition coverage ---
  /// Number of steps in which the proposition with the given factory index
  /// evaluated to true (since construction / the last reset_monitors()).
  /// Campaign runs merge these counts across seeds into a stimulus-coverage
  /// figure: a proposition that is never (or always) true points at a
  /// constraint set that cannot exercise the property.
  std::uint64_t proposition_true_count(int prop_index) const;
  /// Names of all registered propositions, in factory index order.
  std::vector<std::string> registered_proposition_names() const;
  /// True counts for all registered propositions, aligned index-by-index
  /// with registered_proposition_names().
  std::vector<std::uint64_t> registered_proposition_true_counts() const;

  /// The formula factory (exposed for tests and tooling, e.g. IL dumps).
  temporal::FormulaFactory& factory() { return factory_; }

  // --- witness traces ---
  /// Keeps a ring buffer of the last `depth` proposition valuations (0
  /// disables, the default). When a property is violated, the buffer shows
  /// the steps leading into the violation.
  void set_witness_depth(std::size_t depth);
  /// One recorded step: (step number, proposition values by factory index).
  struct WitnessStep {
    std::uint64_t step;
    sim::Time time;
    std::vector<bool> values;
  };
  const std::vector<WitnessStep>& witness() const { return witness_; }
  /// Renders the witness buffer as a small waveform-style table.
  std::string witness_table() const;

 private:
  temporal::PropValuation make_valuation();
  void evaluate_propositions();
  void record_witness();

  MonitorMode mode_;
  temporal::FormulaFactory factory_;
  temporal::CompiledMonitorPool compiled_pool_;  // kCompiled / kBoth arenas
  std::vector<std::unique_ptr<Proposition>> propositions_by_index_;
  std::vector<PropertyRecord> properties_;
  std::vector<char> value_cache_;  // per-step proposition values
  temporal::PropWord prop_word_ = 0;  // same values, packed for compiled mode
  std::vector<std::uint64_t> true_counts_;  // per-proposition steps-true
  std::vector<std::string> divergences_;    // kBoth oracle mismatches
  std::uint64_t steps_ = 0;
  bool stop_on_violation_ = false;
  std::size_t witness_depth_ = 0;
  std::vector<WitnessStep> witness_;

  // Observability sinks (all optional; cached counters avoid registry
  // lookups on the hot path).
  obs::TraceWriter* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* m_steps_ = nullptr;
  obs::Counter* m_prop_changes_ = nullptr;
  obs::Counter* m_transitions_ = nullptr;
  obs::Counter* m_validated_ = nullptr;
  obs::Counter* m_violated_ = nullptr;
  obs::Counter* m_divergences_ = nullptr;
  obs::Histogram* m_decide_step_ = nullptr;
};

}  // namespace esv::sctc

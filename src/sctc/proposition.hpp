// Proposition: the paper's Fig. 1 interface.
//
// SCTC checks properties "which include complex structures using a base class
// Proposition. This class allows wrapping arbitrary source code entities as
// named objects." A subclass provides is_true(); the checker evaluates every
// registered proposition once per temporal step and feeds the values into the
// Boolean layer of the property monitors. Propositions are typically
// stateless, but may carry state (see RisingEdgeProposition).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>

namespace esv::sctc {

class Proposition {
 public:
  virtual ~Proposition() = default;

  /// A proposition must evaluate to either true or false.
  virtual bool is_true() = 0;
  bool is_false() { return !is_true(); }

  /// Creates a clone of the current proposition.
  virtual std::unique_ptr<Proposition> clone() const = 0;
};

/// Wraps an arbitrary predicate.
class LambdaProposition final : public Proposition {
 public:
  explicit LambdaProposition(std::function<bool()> predicate)
      : predicate_(std::move(predicate)) {}

  bool is_true() override { return predicate_(); }

  std::unique_ptr<Proposition> clone() const override {
    return std::make_unique<LambdaProposition>(predicate_);
  }

 private:
  std::function<bool()> predicate_;
};

/// Read access to a memory image, the interface the paper adds to SCTC so it
/// can "provide the ESW variable address and read its content from memory"
/// (sc_uint<32> sctc_sc_read_uint(sc_uint<32> addr)). Implemented by the
/// microprocessor memory (approach 1) and the virtual memory model
/// (approach 2).
class MemoryReadInterface {
 public:
  virtual ~MemoryReadInterface() = default;
  /// Reads the 32-bit word at byte address `address`.
  virtual std::uint32_t sctc_read_uint(std::uint32_t address) const = 0;
};

enum class Compare { kEq, kNe, kLt, kLe, kGt, kGe };

/// "variable at address <addr> <op> <value>" — monitors an embedded-software
/// variable stored in a microprocessor memory model.
class MemoryWordProposition final : public Proposition {
 public:
  MemoryWordProposition(const MemoryReadInterface& memory,
                        std::uint32_t address, Compare op, std::uint32_t value)
      : memory_(&memory), address_(address), op_(op), value_(value) {}

  bool is_true() override;

  std::unique_ptr<Proposition> clone() const override {
    return std::make_unique<MemoryWordProposition>(*memory_, address_, op_,
                                                   value_);
  }

 private:
  const MemoryReadInterface* memory_;
  std::uint32_t address_;
  Compare op_;
  std::uint32_t value_;
};

/// Stateful proposition example: true exactly in the step where the wrapped
/// proposition switches from false to true.
class RisingEdgeProposition final : public Proposition {
 public:
  explicit RisingEdgeProposition(std::unique_ptr<Proposition> inner)
      : inner_(std::move(inner)) {}

  bool is_true() override {
    const bool now = inner_->is_true();
    const bool rising = now && !previous_;
    previous_ = now;
    return rising;
  }

  std::unique_ptr<Proposition> clone() const override {
    auto copy = std::make_unique<RisingEdgeProposition>(inner_->clone());
    copy->previous_ = previous_;
    return copy;
  }

 private:
  std::unique_ptr<Proposition> inner_;
  bool previous_ = false;
};

}  // namespace esv::sctc

// EswMonitor: the paper's ESW_monitor module (Fig. 2 / Fig. 3).
//
// Wraps the SCTC in a SystemC design containing a microprocessor model and
// implements the handshake protocol between the embedded software and the
// checker:
//
//   1  define clock as trigger
//   2  while !initialized
//   3    initialized = read_from_memory(flag_address)
//   5  register the propositions
//   6  instantiate the temporal properties
//   7  forever
//   8    monitor the temporal properties
//
// The software signals readiness by setting a global `flag` variable; only
// then are propositions registered and monitors instantiated, because the
// proposition addresses are not meaningful before the software initialized
// its globals.
#pragma once

#include <functional>
#include <string>

#include "sctc/checker.hpp"
#include "sim/module.hpp"

namespace esv::sctc {

class EswMonitor : public sim::Module {
 public:
  /// `setup` is invoked once, after the handshake, to register the ESW
  /// propositions and instantiate the temporal properties on the checker.
  EswMonitor(sim::Simulation& sim, std::string name, sim::Event& trigger,
             const MemoryReadInterface& memory, std::uint32_t flag_address,
             std::function<void(TemporalChecker&)> setup,
             MonitorMode mode = MonitorMode::kProgression);

  TemporalChecker& checker() { return checker_; }
  const TemporalChecker& checker() const { return checker_; }

  /// Attaches observability sinks to the wrapped checker and records the
  /// handshake itself: once the software's flag goes high, the trigger
  /// count spent waiting is traced as a `handshake` event and added to the
  /// `sctc.handshake_steps` counter. Either pointer may be null.
  void set_observability(obs::MetricsRegistry* metrics,
                         obs::TraceWriter* trace);

  /// True once the software's flag variable was observed non-zero.
  bool initialized() const { return initialized_; }
  /// Trigger count spent waiting for the handshake.
  std::uint64_t handshake_steps() const { return handshake_steps_; }

 private:
  sim::Task run(sim::Event& trigger);

  TemporalChecker checker_;
  const MemoryReadInterface& memory_;
  std::uint32_t flag_address_;
  std::function<void(TemporalChecker&)> setup_;
  bool initialized_ = false;
  std::uint64_t handshake_steps_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceWriter* trace_ = nullptr;
};

}  // namespace esv::sctc

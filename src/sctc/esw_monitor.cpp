#include "sctc/esw_monitor.hpp"

#include <utility>

namespace esv::sctc {

EswMonitor::EswMonitor(sim::Simulation& sim, std::string name,
                       sim::Event& trigger, const MemoryReadInterface& memory,
                       std::uint32_t flag_address,
                       std::function<void(TemporalChecker&)> setup,
                       MonitorMode mode)
    : sim::Module(sim, std::move(name)),
      checker_(sim, sub_name("sctc"), mode),
      memory_(memory),
      flag_address_(flag_address),
      setup_(std::move(setup)) {
  sim_.spawn(sub_name("esw_monitor"), run(trigger));
}

void EswMonitor::set_observability(obs::MetricsRegistry* metrics,
                                   obs::TraceWriter* trace) {
  metrics_ = metrics;
  trace_ = trace;
  checker_.set_metrics(metrics);
  checker_.set_trace(trace);
}

sim::Task EswMonitor::run(sim::Event& trigger) {
  // Handshake: the checker may only call into the software once it is active
  // and has initialized its globals (paper Fig. 3, lines 3-5).
  while (!initialized_) {
    co_await trigger;
    ++handshake_steps_;
    initialized_ = memory_.sctc_read_uint(flag_address_) != 0;
  }
  if (metrics_ != nullptr) {
    metrics_->counter("sctc.handshake_steps").add(handshake_steps_);
  }
  if (trace_ != nullptr) trace_->handshake(handshake_steps_);
  // Register the propositions and instantiate the temporal properties
  // (lines 6-7). This happens exactly once.
  setup_(checker_);
  // Monitor the temporal properties forever (lines 8-9).
  for (;;) {
    co_await trigger;
    checker_.step_all();
  }
}

}  // namespace esv::sctc

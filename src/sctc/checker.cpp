#include "sctc/checker.hpp"

#include <sstream>
#include <stdexcept>

namespace esv::sctc {

namespace {

bool compare(std::uint32_t lhs, Compare op, std::uint32_t rhs) {
  switch (op) {
    case Compare::kEq: return lhs == rhs;
    case Compare::kNe: return lhs != rhs;
    case Compare::kLt: return lhs < rhs;
    case Compare::kLe: return lhs <= rhs;
    case Compare::kGt: return lhs > rhs;
    case Compare::kGe: return lhs >= rhs;
  }
  return false;
}

}  // namespace

const char* monitor_mode_name(MonitorMode mode) {
  switch (mode) {
    case MonitorMode::kProgression: return "progression";
    case MonitorMode::kSynthesizedAutomaton: return "automaton";
    case MonitorMode::kCompiled: return "compiled";
    case MonitorMode::kBoth: return "both";
  }
  return "?";
}

std::optional<MonitorMode> parse_monitor_mode(std::string_view name) {
  if (name == "progression" || name == "interpreted") {
    return MonitorMode::kProgression;
  }
  if (name == "automaton") return MonitorMode::kSynthesizedAutomaton;
  if (name == "compiled") return MonitorMode::kCompiled;
  if (name == "both") return MonitorMode::kBoth;
  return std::nullopt;
}

FaultClass classify_under_fault(temporal::Verdict verdict, bool run_errored) {
  switch (verdict) {
    case temporal::Verdict::kValidated:
      return FaultClass::kHeldUnderFault;
    case temporal::Verdict::kViolated:
      return FaultClass::kViolatedUnderFault;
    case temporal::Verdict::kPending:
      // Undecided at end of run: a clean run means the property survived
      // the whole fault schedule; an aborted run means the monitor never
      // got to finish — that is an error, not a property result.
      return run_errored ? FaultClass::kMonitorError
                         : FaultClass::kHeldUnderFault;
  }
  return FaultClass::kMonitorError;
}

const char* fault_class_name(FaultClass fault_class) {
  switch (fault_class) {
    case FaultClass::kNotApplicable: return "n/a";
    case FaultClass::kHeldUnderFault: return "held";
    case FaultClass::kViolatedUnderFault: return "violated";
    case FaultClass::kMonitorError: return "monitor-error";
  }
  return "n/a";
}

bool MemoryWordProposition::is_true() {
  return compare(memory_->sctc_read_uint(address_), op_, value_);
}

temporal::Verdict PropertyRecord::verdict() const {
  // In kBoth mode the interpreted monitor is the oracle, so progression is
  // consulted first; compiled alone answers in kCompiled mode.
  if (progression) return progression->verdict();
  if (automaton_monitor) return automaton_monitor->verdict();
  if (compiled.valid()) return compiled.verdict();
  return temporal::Verdict::kPending;
}

TemporalChecker::TemporalChecker(sim::Simulation& sim, std::string name,
                                 MonitorMode mode)
    : sim::Module(sim, std::move(name)), mode_(mode) {}

TemporalChecker::~TemporalChecker() = default;

void TemporalChecker::register_proposition(
    const std::string& name, std::unique_ptr<Proposition> proposition) {
  if (!proposition) {
    throw std::invalid_argument("register_proposition: null proposition");
  }
  temporal::FormulaRef node = factory_.prop(name);
  const auto index = static_cast<std::size_t>(node->prop_index());
  if (propositions_by_index_.size() <= index) {
    propositions_by_index_.resize(index + 1);
    value_cache_.resize(index + 1, 0);
    true_counts_.resize(index + 1, 0);
  }
  propositions_by_index_[index] = std::move(proposition);
}

void TemporalChecker::register_proposition(const std::string& name,
                                           std::function<bool()> predicate) {
  register_proposition(name,
                       std::make_unique<LambdaProposition>(std::move(predicate)));
}

bool TemporalChecker::has_proposition(const std::string& name) const {
  for (int i = 0; i < factory_.prop_count(); ++i) {
    if (factory_.prop_name(i) == name) {
      const auto idx = static_cast<std::size_t>(i);
      return idx < propositions_by_index_.size() &&
             propositions_by_index_[idx] != nullptr;
    }
  }
  return false;
}

std::size_t TemporalChecker::add_property(const std::string& name,
                                          const std::string& text,
                                          temporal::Dialect dialect) {
  PropertyRecord record;
  record.name = name;
  record.text = text;
  record.dialect = dialect;
  record.formula = temporal::parse_property(text, dialect, factory_);

  // Every proposition must be backed by a registered evaluator.
  for (int prop_index : factory_.collect_prop_indices(record.formula)) {
    const auto idx = static_cast<std::size_t>(prop_index);
    if (idx >= propositions_by_index_.size() ||
        propositions_by_index_[idx] == nullptr) {
      throw std::runtime_error("add_property(" + name +
                               "): proposition \"" +
                               factory_.prop_name(prop_index) +
                               "\" is not registered");
    }
  }

  if (mode_ == MonitorMode::kProgression || mode_ == MonitorMode::kBoth) {
    record.progression = std::make_unique<temporal::ProgressionMonitor>(
        factory_, record.formula);
  }
  if (mode_ == MonitorMode::kSynthesizedAutomaton) {
    record.automaton = std::make_unique<temporal::ArAutomaton>(
        temporal::synthesize(factory_, record.formula));
    record.automaton_states = record.automaton->state_count();
    record.automaton_monitor =
        std::make_unique<temporal::AutomatonMonitor>(*record.automaton);
  }
  if (mode_ == MonitorMode::kCompiled || mode_ == MonitorMode::kBoth) {
    // Synthesize, lower into the pool's flat arenas, and drop the source
    // automaton: the compiled tables are self-contained.
    const temporal::ArAutomaton automaton =
        temporal::synthesize(factory_, record.formula);
    record.automaton_states = automaton.state_count();
    record.compiled = compiled_pool_.compile(automaton, factory_);
  }
  properties_.push_back(std::move(record));
  return properties_.size() - 1;
}

void TemporalChecker::bind_trigger(sim::Event& trigger) {
  sim_.create_method(sub_name("trigger"), [this] { step_all(); }, {&trigger},
                     /*run_at_start=*/false);
}

void TemporalChecker::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics == nullptr) {
    m_steps_ = nullptr;
    m_prop_changes_ = nullptr;
    m_transitions_ = nullptr;
    m_validated_ = nullptr;
    m_violated_ = nullptr;
    m_divergences_ = nullptr;
    m_decide_step_ = nullptr;
    return;
  }
  m_steps_ = &metrics->counter("sctc.steps");
  m_prop_changes_ = &metrics->counter("sctc.prop_changes");
  m_transitions_ = &metrics->counter("sctc.monitor_transitions");
  m_validated_ = &metrics->counter("sctc.validated");
  m_violated_ = &metrics->counter("sctc.violated");
  m_divergences_ = &metrics->counter("sctc.divergences");
  m_decide_step_ = &metrics->histogram("sctc.decide_step");
}

void TemporalChecker::evaluate_propositions() {
  // The step-1 valuation counts every proposition as a "change" (from
  // unknown), so a trace always opens with the full initial valuation.
  // Every proposition is evaluated exactly once per step; the packed
  // prop_word_ is what the compiled monitors index their transition tables
  // with (bit i = factory proposition index i).
  const bool observe = trace_ != nullptr || m_prop_changes_ != nullptr;
  temporal::PropWord word = 0;
  for (std::size_t i = 0; i < propositions_by_index_.size(); ++i) {
    if (propositions_by_index_[i]) {
      const char value = propositions_by_index_[i]->is_true() ? 1 : 0;
      if (observe && (steps_ == 1 || value != value_cache_[i])) {
        if (m_prop_changes_ != nullptr) m_prop_changes_->add();
        if (trace_ != nullptr) {
          trace_->prop_change(steps_, factory_.prop_name(static_cast<int>(i)),
                              value != 0);
        }
      }
      value_cache_[i] = value;
      if (value) {
        ++true_counts_[i];
        if (i < temporal::kMaxPropWordBits) {
          word |= temporal::PropWord{1} << i;
        }
      }
    }
  }
  prop_word_ = word;
}

temporal::PropValuation TemporalChecker::make_valuation() {
  return [this](int prop_index) {
    return value_cache_[static_cast<std::size_t>(prop_index)] != 0;
  };
}

void TemporalChecker::set_witness_depth(std::size_t depth) {
  witness_depth_ = depth;
  witness_.clear();
}

void TemporalChecker::record_witness() {
  if (witness_depth_ == 0) return;
  WitnessStep step;
  step.step = steps_;
  step.time = sim_.now();
  step.values.reserve(value_cache_.size());
  for (char v : value_cache_) step.values.push_back(v != 0);
  witness_.push_back(std::move(step));
  if (witness_.size() > witness_depth_) {
    witness_.erase(witness_.begin());
  }
}

std::string TemporalChecker::witness_table() const {
  std::ostringstream out;
  if (witness_.empty()) {
    out << "(no witness recorded; call set_witness_depth first)\n";
    return out.str();
  }
  // Header: one row per proposition, one column per recorded step.
  out << "step:";
  for (const WitnessStep& w : witness_) out << " " << w.step;
  out << "\n";
  for (int i = 0; i < factory_.prop_count(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (idx >= propositions_by_index_.size() ||
        propositions_by_index_[idx] == nullptr) {
      continue;
    }
    out << "  " << factory_.prop_name(i) << ":";
    for (const WitnessStep& w : witness_) {
      out << " " << (idx < w.values.size() && w.values[idx] ? "1" : ".");
    }
    out << "\n";
  }
  return out.str();
}

void TemporalChecker::step_all() {
  ++steps_;
  if (m_steps_ != nullptr) m_steps_->add();
  evaluate_propositions();
  record_witness();
  // Compiled monitors read prop_word_ directly; the closure-based valuation
  // is only materialized for the modes that interpret formulas.
  temporal::PropValuation valuation;
  if (mode_ != MonitorMode::kCompiled) valuation = make_valuation();
  bool violated_now = false;
  for (PropertyRecord& record : properties_) {
    if (record.verdict() != temporal::Verdict::kPending) continue;
    temporal::Verdict v;
    if (mode_ == MonitorMode::kBoth) {
      // Lockstep differential oracle: the compiled fast path must follow the
      // interpreted monitor transition for transition — same verdict and the
      // same pending obligation (compiled states map back to hash-consed
      // obligation formulas, so pointer equality is exact). The first
      // mismatch per property is recorded; verdicts stay the oracle's.
      v = record.progression->step(valuation);
      const temporal::Verdict compiled_verdict =
          record.compiled.step(prop_word_);
      if (!record.diverged &&
          (compiled_verdict != v ||
           record.compiled.obligation() != record.progression->current())) {
        record.diverged = true;
        std::ostringstream detail;
        detail << "property " << record.name << " diverged at step " << steps_
               << ": interpreted " << temporal::to_string(v) << " \""
               << record.progression->current()->to_string()
               << "\" vs compiled "
               << temporal::to_string(compiled_verdict) << " state "
               << record.compiled.state() << " \""
               << record.compiled.obligation()->to_string() << "\"";
        divergences_.push_back(detail.str());
        if (m_divergences_ != nullptr) m_divergences_->add();
        if (trace_ != nullptr) {
          trace_->monitor_divergence(steps_, record.name, divergences_.back());
        }
      }
    } else if (record.progression) {
      v = record.progression->step(valuation);
    } else if (record.automaton_monitor) {
      v = record.automaton_monitor->step(valuation);
    } else {
      v = record.compiled.step(prop_word_);
    }
    if (trace_ != nullptr &&
        (record.automaton_monitor || record.compiled.valid())) {
      const std::uint32_t state = record.automaton_monitor
                                      ? record.automaton_monitor->state()
                                      : record.compiled.state();
      if (state != record.traced_state) {
        trace_->automaton_state(steps_, record.name, state);
        record.traced_state = state;
      }
    }
    if (v != temporal::Verdict::kPending) {
      record.decided_at_step = steps_;
      record.decided_at_time = sim_.now();
      if (v == temporal::Verdict::kViolated) violated_now = true;
      if (m_transitions_ != nullptr) {
        m_transitions_->add();
        (v == temporal::Verdict::kViolated ? m_violated_ : m_validated_)
            ->add();
        m_decide_step_->record(steps_);
      }
      if (trace_ != nullptr) {
        trace_->monitor_transition(steps_, record.name, "pending",
                                   temporal::to_string(v));
      }
    }
  }
  if (violated_now && stop_on_violation_) sim_.stop();
}

std::uint64_t TemporalChecker::proposition_true_count(int prop_index) const {
  const auto idx = static_cast<std::size_t>(prop_index);
  return idx < true_counts_.size() ? true_counts_[idx] : 0;
}

std::vector<std::string> TemporalChecker::registered_proposition_names() const {
  std::vector<std::string> names;
  for (int i = 0; i < factory_.prop_count(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (idx < propositions_by_index_.size() &&
        propositions_by_index_[idx] != nullptr) {
      names.push_back(factory_.prop_name(i));
    }
  }
  return names;
}

std::vector<std::uint64_t> TemporalChecker::registered_proposition_true_counts()
    const {
  std::vector<std::uint64_t> counts;
  for (std::size_t i = 0; i < propositions_by_index_.size(); ++i) {
    if (propositions_by_index_[i] != nullptr) {
      counts.push_back(true_counts_[i]);
    }
  }
  return counts;
}

void TemporalChecker::reset_monitors() {
  steps_ = 0;
  prop_word_ = 0;
  divergences_.clear();
  for (std::uint64_t& count : true_counts_) count = 0;
  for (PropertyRecord& record : properties_) {
    if (record.progression) record.progression->reset();
    if (record.automaton_monitor) record.automaton_monitor->reset();
    if (record.compiled.valid()) record.compiled.reset();
    record.diverged = false;
    record.decided_at_step = 0;
    record.decided_at_time = sim::Time::zero();
    record.traced_state = UINT32_MAX;
  }
}

void TemporalChecker::corrupt_compiled_for_test(std::size_t property_index,
                                                std::uint32_t state) {
  PropertyRecord& record = properties_.at(property_index);
  if (!record.compiled.valid()) {
    throw std::logic_error(
        "corrupt_compiled_for_test: property has no compiled monitor");
  }
  record.compiled.corrupt_state_for_test(state);
}

std::size_t TemporalChecker::pending_count() const {
  std::size_t n = 0;
  for (const auto& r : properties_) {
    if (r.verdict() == temporal::Verdict::kPending) ++n;
  }
  return n;
}

std::size_t TemporalChecker::validated_count() const {
  std::size_t n = 0;
  for (const auto& r : properties_) {
    if (r.verdict() == temporal::Verdict::kValidated) ++n;
  }
  return n;
}

std::size_t TemporalChecker::violated_count() const {
  std::size_t n = 0;
  for (const auto& r : properties_) {
    if (r.verdict() == temporal::Verdict::kViolated) ++n;
  }
  return n;
}

std::string TemporalChecker::report() const {
  std::ostringstream out;
  out << "SCTC " << name() << " after " << steps_ << " steps ("
      << monitor_mode_name(mode_) << " mode)\n";
  for (const std::string& divergence : divergences_) {
    out << "  MONITOR-ERROR " << divergence << "\n";
  }
  for (const auto& r : properties_) {
    out << "  [" << temporal::to_string(r.verdict()) << "] " << r.name << ": "
        << r.text;
    if (r.verdict() != temporal::Verdict::kPending) {
      out << "  (decided at step " << r.decided_at_step << ", t="
          << r.decided_at_time.to_string() << ")";
    }
    if (r.automaton_states != 0) {
      out << "  [" << r.automaton_states << " AR states]";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace esv::sctc

#include "casestudy/eeprom.hpp"

#include <stdexcept>

namespace esv::casestudy {

flash::FlashConfig eeprom_flash_config() {
  flash::FlashConfig cfg;
  cfg.pages = 8;           // matches enum PAGES in the software
  cfg.words_per_page = 64; // matches WORDS_PER_PAGE
  cfg.erase_busy_ticks = 20;
  cfg.program_busy_ticks = 4;
  return cfg;
}

std::string eee_code_name(std::uint32_t code) {
  switch (code) {
    case kEeeOk: return "EEE_OK";
    case kEeeBusy: return "EEE_BUSY";
    case kEeeErrParameter: return "EEE_ERR_PARAMETER";
    case kEeeErrPoolFull: return "EEE_ERR_POOL_FULL";
    case kEeeErrNotFound: return "EEE_ERR_NOT_FOUND";
    case kEeeErrInternal: return "EEE_ERR_INTERNAL";
    case kEeeErrRejected: return "EEE_ERR_REJECTED";
    case kEeeErrNoInstance: return "EEE_ERR_NO_INSTANCE";
    default: return "EEE_CODE_" + std::to_string(code);
  }
}

const std::vector<OperationSpec>& eeprom_operations() {
  static const std::vector<OperationSpec> kOps = {
      {"Read", "EEE_Read", "ret_read", 3,
       {kEeeOk, kEeeErrNotFound, kEeeErrParameter, kEeeErrRejected}},
      {"Write", "EEE_Write", "ret_write", 4,
       {kEeeOk, kEeeErrPoolFull, kEeeErrParameter, kEeeErrRejected,
        kEeeErrInternal}},
      {"Startup1", "EEE_Startup1", "ret_startup1", 1,
       {kEeeOk, kEeeErrNoInstance}},
      {"Startup2", "EEE_Startup2", "ret_startup2", 2,
       {kEeeOk, kEeeErrRejected}},
      {"Format", "EEE_Format", "ret_format", 0, {kEeeOk, kEeeErrInternal}},
      {"Prepare", "EEE_Prepare", "ret_prepare", 5,
       {kEeeOk, kEeeErrRejected, kEeeErrInternal}},
      {"Refresh", "EEE_Refresh", "ret_refresh", 6,
       {kEeeOk, kEeeErrRejected, kEeeErrInternal}},
  };
  return kOps;
}

const OperationSpec& operation_by_name(const std::string& name) {
  for (const OperationSpec& op : eeprom_operations()) {
    if (op.name == name) return op;
  }
  throw std::invalid_argument("unknown EEE operation '" + name + "'");
}

void register_operation_propositions(sctc::TemporalChecker& checker,
                                     const sctc::MemoryReadInterface& memory,
                                     const minic::Program& program,
                                     const OperationSpec& op) {
  // "<Name>": the operation's entry function is executing. This uses the
  // fname instrumentation exactly as the paper describes ("the function
  // names can be also used in the property specification").
  checker.register_proposition(
      op.name, std::make_unique<sctc::MemoryWordProposition>(
                   memory, program.fname_address, sctc::Compare::kEq,
                   program.fname_id(op.function)));
  // "<Name>_<CODE>": the per-operation return register holds CODE. The
  // register is cleared to 0 before the operation is dispatched, so these
  // propositions fire exactly when a return value arrives.
  const minic::GlobalVar* ret = program.find_global(op.ret_global);
  if (ret == nullptr) {
    throw std::runtime_error("case study software is missing global " +
                             op.ret_global);
  }
  for (std::uint32_t code : op.return_codes) {
    checker.register_proposition(
        op.name + "_" + eee_code_name(code),
        std::make_unique<sctc::MemoryWordProposition>(
            memory, ret->address, sctc::Compare::kEq, code));
  }
}

std::string response_property(const OperationSpec& op,
                              std::optional<std::uint32_t> bound,
                              PropertyShape shape) {
  std::string returns;
  for (std::size_t i = 0; i < op.return_codes.size(); ++i) {
    if (i != 0) returns += " || ";
    returns += op.name + "_" + eee_code_name(op.return_codes[i]);
  }
  std::string inner = "F";
  if (bound) inner += "[" + std::to_string(*bound) + "]";
  inner += " (" + returns + ")";
  const std::string outer = shape == PropertyShape::kPaperLiteral ? "F" : "G";
  return outer + " (" + op.name + " -> " + inner + ")";
}

std::string response_property_psl(const OperationSpec& op,
                                  std::optional<std::uint32_t> bound) {
  std::string returns;
  for (std::size_t i = 0; i < op.return_codes.size(); ++i) {
    if (i != 0) returns += " || ";
    returns += op.name + "_" + eee_code_name(op.return_codes[i]);
  }
  std::string inner = "eventually!";
  if (bound) inner += "[" + std::to_string(*bound) + "]";
  return "always (" + op.name + " -> " + inner + " (" + returns + "))";
}

}  // namespace esv::casestudy

#include "casestudy/eeprom.hpp"

namespace esv::casestudy {

// ---------------------------------------------------------------------------
// The EEPROM-emulation embedded software (mini-C).
//
// Re-implementation of the case study's layered structure: a Data Flash
// Access layer (DFALib) over the MMIO flash controller, and an EEPROM
// Emulation layer (EEELib) providing format / prepare / read / write /
// refresh / startup1 / startup2 (plus invalidate) to the application layer.
// The EEELib operations are written as explicit state machines with the
// shared ready/abort/error/finish states the paper describes.
//
// Page layout (word offsets inside a page):
//   0: PREPARED mark   1: ACTIVE mark   2: INVALID mark   3: reserved
//   4..: records, three words each (id, value, checksum), appended in
//   order. The checksum makes torn (power-loss-interrupted) writes
//   detectable: startup counts them and moves the write cursor past their
//   half-programmed cells; reads skip them. Invalidation appends a
//   tombstone record; refresh compacts live values onto the prepared page
//   and drops tombstones.
// Every mark is a single one-time program of an erased cell, respecting the
// flash's program-after-erase-only rule.
// ---------------------------------------------------------------------------

const char* eeprom_emulation_source() {
  return R"MINIC(
/* ======================= EEPROM emulation software ======================= */

/* --- flash controller register map (see flash/flash_controller.hpp) --- */
enum {
  FLASH_CMD    = 0xF0000000,
  FLASH_ADDR   = 0xF0000004,
  FLASH_DATA   = 0xF0000008,
  FLASH_STATUS = 0xF000000C,
  FLASH_ACK    = 0xF0000010,
  FLASH_INJECT = 0xF0000014,
  FLASH_ARRAY  = 0xF0000100
};
enum { CMD_ERASE_PAGE = 1, CMD_PROGRAM_WORD = 2 };
enum { ST_BUSY = 1, ST_ERROR = 2, ST_READY = 4 };

/* --- flash geometry (must match FlashConfig in the testbench) --- */
enum { PAGES = 8, WORDS_PER_PAGE = 64, PAGE_BYTES = 256 };
enum { DFA_POLL_LIMIT = 4096 };

/* --- DFA layer return codes --- */
enum { DFA_OK = 1, DFA_TIMEOUT = 2, DFA_FAIL = 3 };

/* --- EEE layer return codes (the values the properties watch) --- */
enum {
  EEE_OK            = 1,
  EEE_BUSY          = 2,
  EEE_ERR_PARAMETER = 3,
  EEE_ERR_POOL_FULL = 4,
  EEE_ERR_NOT_FOUND = 5,
  EEE_ERR_INTERNAL  = 6,
  EEE_ERR_REJECTED  = 7,
  EEE_ERR_NO_INSTANCE = 8
};

/* --- shared EEE state machine states --- */
enum {
  S_READY = 0, S_CHECK = 1, S_ERASE = 2, S_MARK = 3, S_COPY = 4,
  S_PROGRAM = 5, S_VERIFY = 6, S_FINISH = 7, S_ABORT = 8, S_ERROR = 9
};

/* --- page header marks (each programmed exactly once) --- */
enum { MARK_PREPARED = 0x50505050, MARK_ACTIVE = 0x41414141,
       MARK_INVALID = 0x49494949 };
enum { HDR_PREPARED = 0, HDR_ACTIVE = 1, HDR_INVALID = 2 };
/* A record is three words: id, value, checksum. The checksum makes torn
   (power-loss-interrupted) writes detectable at startup and on read. */
enum { RECORD_BASE_WORD = 4, RECORD_WORDS = 3 };
enum { CHK_SEED = 0x5A5A0000 };
enum { TOMBSTONE = 0x7EADDEAD };   /* value marking an invalidated id */
enum { MAX_IDS = 8 };

/* ============================ global state ============================ */

bool flag;              /* SCTC handshake: software initialized            */
int  eee_state;         /* current state of the running operation          */
int  eee_active_page;   /* -1 when no active page                          */
int  eee_prepared_page; /* -1 when no page is prepared                     */
int  eee_cursor;        /* next free record slot in the active page        */
int  eee_initialized;   /* startup completed                               */

int  read_value;        /* out-parameter of EEE_Read                       */

/* per-operation return registers: the testbench's coverage taps these    */
int  ret_format;
int  ret_prepare;
int  ret_read;
int  ret_write;
int  ret_refresh;
int  ret_startup1;
int  ret_startup2;

int  ret_invalidate;
int  eee_torn;          /* torn (checksum-invalid) records seen at startup */

int  current_op;        /* operation dispatched by the main loop           */
int  test_cases;        /* completed operation count                       */

/* ============================ DFA layer ============================ */

unsigned dfa_read_word(unsigned offset) {
  return *(FLASH_ARRAY + offset);
}

int dfa_status(void) {
  return *(FLASH_STATUS);
}

int dfa_busy(void) {
  int s = dfa_status();
  return (s & ST_BUSY) != 0;
}

int dfa_had_error(void) {
  int s = dfa_status();
  return (s & ST_ERROR) != 0;
}

void dfa_ack_error(void) {
  *(FLASH_ACK) = 1;
}

int dfa_wait_ready(void) {
  int i;
  for (i = 0; i < DFA_POLL_LIMIT; i++) {
    int b = dfa_busy();
    if (b == 0) { return DFA_OK; }
  }
  return DFA_TIMEOUT;
}

int dfa_erase_page(int page) {
  if (page < 0) { return DFA_FAIL; }
  if (page >= PAGES) { return DFA_FAIL; }
  *(FLASH_ADDR) = page * PAGE_BYTES;
  *(FLASH_CMD) = CMD_ERASE_PAGE;
  int w = dfa_wait_ready();
  if (w != DFA_OK) { return DFA_TIMEOUT; }
  int e = dfa_had_error();
  if (e != 0) {
    dfa_ack_error();
    return DFA_FAIL;
  }
  return DFA_OK;
}

int dfa_program_word(unsigned offset, unsigned data) {
  *(FLASH_ADDR) = offset;
  *(FLASH_DATA) = data;
  *(FLASH_CMD) = CMD_PROGRAM_WORD;
  int w = dfa_wait_ready();
  if (w != DFA_OK) { return DFA_TIMEOUT; }
  int e = dfa_had_error();
  if (e != 0) {
    dfa_ack_error();
    return DFA_FAIL;
  }
  return DFA_OK;
}

void dfa_inject_fault(void) {
  *(FLASH_INJECT) = 1;
}

/* ============================ EEE helpers ============================ */

unsigned eee_page_offset(int page) {
  return page * PAGE_BYTES;
}

unsigned eee_header(int page, int which) {
  unsigned base = eee_page_offset(page);
  return dfa_read_word(base + which * 4);
}

int eee_page_is_prepared(int page) {
  unsigned h = eee_header(page, HDR_PREPARED);
  return h == MARK_PREPARED;
}

int eee_page_is_active(int page) {
  unsigned a = eee_header(page, HDR_ACTIVE);
  if (a != MARK_ACTIVE) { return 0; }
  unsigned i = eee_header(page, HDR_INVALID);
  if (i == MARK_INVALID) { return 0; }
  return 1;
}

int eee_mark_page(int page, int which, unsigned mark) {
  unsigned base = eee_page_offset(page);
  int r = dfa_program_word(base + which * 4, mark);
  return r;
}

unsigned eee_record_offset(int page, int slot) {
  unsigned base = eee_page_offset(page);
  return base + (RECORD_BASE_WORD + slot * RECORD_WORDS) * 4;
}

int eee_slots_per_page(void) {
  return (WORDS_PER_PAGE - RECORD_BASE_WORD) / RECORD_WORDS;
}

unsigned eee_checksum(unsigned id, unsigned value) {
  return (id ^ value) ^ CHK_SEED;
}

/* 1 when the slot holds a complete, checksum-valid record. */
int eee_slot_valid(int page, int slot) {
  unsigned off = eee_record_offset(page, slot);
  unsigned rid = dfa_read_word(off);
  if (rid == 0xFFFFFFFF) { return 0; }
  unsigned value = dfa_read_word(off + 4);
  unsigned chk = dfa_read_word(off + 8);
  if (chk != eee_checksum(rid, value)) { return 0; }
  return 1;
}

/* Scans the active page backwards for the newest record with `id`.
   Returns the slot index, or -1 if the id was never written. */
int eee_find_record(int id) {
  int slot;
  for (slot = eee_cursor - 1; slot >= 0; slot--) {
    unsigned off = eee_record_offset(eee_active_page, slot);
    unsigned rid = dfa_read_word(off);
    if (rid == id) {
      int valid = eee_slot_valid(eee_active_page, slot);
      if (valid == 1) { return slot; }
      /* torn record: skip and keep scanning for an older complete one */
    }
  }
  return -1;
}

/* Appends (id, value) at the cursor. DFA_* result code. */
int eee_append_record(int id, int value) {
  unsigned off = eee_record_offset(eee_active_page, eee_cursor);
  int r = dfa_program_word(off, id);
  if (r != DFA_OK) { return r; }
  r = dfa_program_word(off + 4, value);
  if (r != DFA_OK) { return r; }
  r = dfa_program_word(off + 8, eee_checksum(id, value));
  if (r != DFA_OK) { return r; }
  eee_cursor = eee_cursor + 1;
  return DFA_OK;
}

/* Counts programmed record slots on `page` (first erased id cell stops). */
/* Scans `page` for the write cursor: the first slot whose id cell is still
   erased. Torn records (non-erased but checksum-invalid) are counted into
   eee_torn; the cursor moves past them so later writes cannot collide with
   their half-programmed cells. */
int eee_count_records(int page) {
  int slot;
  int limit = eee_slots_per_page();
  for (slot = 0; slot < limit; slot++) {
    unsigned off = eee_record_offset(page, slot);
    unsigned rid = dfa_read_word(off);
    if (rid == 0xFFFFFFFF) { return slot; }
    int valid = eee_slot_valid(page, slot);
    if (valid == 0) {
      eee_torn = eee_torn + 1;
    }
  }
  return limit;
}

/* ============================ EEE operations ============================ */

/* Format: erase the whole pool and activate page 0. */
int EEE_Format(void) {
  int page = 0;
  int result = 0;
  eee_state = S_READY;
  while (1) {
    switch (eee_state) {
      case S_READY:
        page = 0;
        eee_state = S_ERASE;
        break;
      case S_ERASE:
        if (page >= PAGES) {
          eee_state = S_MARK;
          break;
        }
        result = dfa_erase_page(page);
        if (result != DFA_OK) {
          eee_state = S_ERROR;
          break;
        }
        page = page + 1;
        break;
      case S_MARK:
        result = eee_mark_page(0, HDR_PREPARED, MARK_PREPARED);
        if (result != DFA_OK) {
          eee_state = S_ERROR;
          break;
        }
        result = eee_mark_page(0, HDR_ACTIVE, MARK_ACTIVE);
        if (result != DFA_OK) {
          eee_state = S_ERROR;
          break;
        }
        eee_state = S_FINISH;
        break;
      case S_FINISH:
        eee_active_page = 0;
        eee_prepared_page = -1;
        eee_cursor = 0;
        eee_initialized = 1;
        return EEE_OK;
      case S_ERROR:
        eee_initialized = 0;
        eee_active_page = -1;
        return EEE_ERR_INTERNAL;
      default:
        eee_state = S_ERROR;
        break;
    }
  }
  return EEE_ERR_INTERNAL;
}

/* Startup1: locate the active page. */
int EEE_Startup1(void) {
  int page;
  eee_state = S_CHECK;
  for (page = 0; page < PAGES; page++) {
    int act = eee_page_is_active(page);
    if (act == 1) {
      eee_active_page = page;
      eee_state = S_FINISH;
      return EEE_OK;
    }
  }
  eee_state = S_ABORT;
  eee_active_page = -1;
  eee_initialized = 0;
  return EEE_ERR_NO_INSTANCE;
}

/* Startup2: restore the write cursor; completes initialization. */
int EEE_Startup2(void) {
  eee_state = S_CHECK;
  if (eee_active_page < 0) {
    eee_state = S_ABORT;
    return EEE_ERR_REJECTED;
  }
  eee_cursor = eee_count_records(eee_active_page);
  /* Resume an interrupted refresh: a prepared page that is not yet active. */
  int page;
  eee_prepared_page = -1;
  for (page = 0; page < PAGES; page++) {
    int prep = eee_page_is_prepared(page);
    if (prep == 1) {
      int act = eee_page_is_active(page);
      unsigned inv = eee_header(page, HDR_INVALID);
      if (act == 0) {
        if (inv != MARK_INVALID) {
          eee_prepared_page = page;
        }
      }
    }
  }
  eee_initialized = 1;
  eee_state = S_FINISH;
  return EEE_OK;
}

/* Read: newest value of `id` into read_value. */
int EEE_Read(int id) {
  eee_state = S_CHECK;
  if (eee_initialized == 0) {
    eee_state = S_ABORT;
    return EEE_ERR_REJECTED;
  }
  if (id < 0) {
    eee_state = S_ABORT;
    return EEE_ERR_PARAMETER;
  }
  if (id >= MAX_IDS) {
    eee_state = S_ABORT;
    return EEE_ERR_PARAMETER;
  }
  eee_state = S_PROGRAM; /* scanning state */
  int slot = eee_find_record(id);
  if (slot < 0) {
    eee_state = S_FINISH;
    return EEE_ERR_NOT_FOUND;
  }
  unsigned off = eee_record_offset(eee_active_page, slot);
  unsigned stored = dfa_read_word(off + 4);
  if (stored == TOMBSTONE) {
    eee_state = S_FINISH;
    return EEE_ERR_NOT_FOUND;   /* the id was invalidated */
  }
  read_value = stored;
  eee_state = S_FINISH;
  return EEE_OK;
}

/* Invalidate: logically deletes an id by appending a tombstone record. */
int EEE_Invalidate(int id) {
  eee_state = S_CHECK;
  if (eee_initialized == 0) {
    eee_state = S_ABORT;
    return EEE_ERR_REJECTED;
  }
  if (id < 0) { eee_state = S_ABORT; return EEE_ERR_PARAMETER; }
  if (id >= MAX_IDS) {
    eee_state = S_ABORT;
    return EEE_ERR_PARAMETER;
  }
  int slot = eee_find_record(id);
  if (slot < 0) {
    eee_state = S_FINISH;
    return EEE_ERR_NOT_FOUND;
  }
  if (eee_cursor >= eee_slots_per_page()) {
    eee_state = S_ERROR;
    return EEE_ERR_POOL_FULL;
  }
  eee_state = S_PROGRAM;
  int r = eee_append_record(id, TOMBSTONE);
  if (r != DFA_OK) {
    eee_state = S_ERROR;
    return EEE_ERR_INTERNAL;
  }
  eee_state = S_FINISH;
  return EEE_OK;
}

/* Write: append a record for `id`. */
int EEE_Write(int id, int value) {
  int result = 0;
  eee_state = S_CHECK;
  while (1) {
    switch (eee_state) {
      case S_CHECK:
        if (eee_initialized == 0) {
          eee_state = S_ABORT;
          break;
        }
        if (id < 0) { eee_state = S_ABORT; break; }
        if (id >= MAX_IDS) {
          eee_state = S_ABORT;
          break;
        }
        if (eee_cursor >= eee_slots_per_page()) {
          eee_state = S_ERROR; /* pool full: distinct exit below */
          result = EEE_ERR_POOL_FULL;
          break;
        }
        eee_state = S_PROGRAM;
        break;
      case S_PROGRAM:
        result = eee_append_record(id, value);
        if (result != DFA_OK) {
          result = EEE_ERR_INTERNAL;
          eee_state = S_ERROR;
          break;
        }
        eee_state = S_VERIFY;
        break;
      case S_VERIFY: {
        unsigned off = eee_record_offset(eee_active_page, eee_cursor - 1);
        unsigned stored = dfa_read_word(off + 4);
        if (stored != value) {
          result = EEE_ERR_INTERNAL;
          eee_state = S_ERROR;
          break;
        }
        eee_state = S_FINISH;
        break;
      }
      case S_FINISH:
        return EEE_OK;
      case S_ABORT:
        if (eee_initialized == 0) { return EEE_ERR_REJECTED; }
        return EEE_ERR_PARAMETER;
      case S_ERROR:
        if (result == 0) { result = EEE_ERR_INTERNAL; }
        return result;
      default:
        eee_state = S_ERROR;
        break;
    }
  }
  return EEE_ERR_INTERNAL;
}

/* Prepare: erase the successor page and mark it PREPARED. */
int EEE_Prepare(void) {
  int result = 0;
  int target = 0;
  eee_state = S_CHECK;
  while (1) {
    switch (eee_state) {
      case S_CHECK:
        if (eee_initialized == 0) {
          eee_state = S_ABORT;
          break;
        }
        target = eee_active_page + 1;
        if (target >= PAGES) { target = 0; }
        eee_state = S_ERASE;
        break;
      case S_ERASE:
        result = dfa_erase_page(target);
        if (result != DFA_OK) {
          eee_state = S_ERROR;
          break;
        }
        eee_state = S_MARK;
        break;
      case S_MARK:
        result = eee_mark_page(target, HDR_PREPARED, MARK_PREPARED);
        if (result != DFA_OK) {
          eee_state = S_ERROR;
          break;
        }
        eee_state = S_FINISH;
        break;
      case S_FINISH:
        eee_prepared_page = target;
        return EEE_OK;
      case S_ABORT:
        return EEE_ERR_REJECTED;
      case S_ERROR:
        return EEE_ERR_INTERNAL;
      default:
        eee_state = S_ERROR;
        break;
    }
  }
  return EEE_ERR_INTERNAL;
}

/* Refresh: move the newest value of every id to the prepared page and
   switch over. */
int EEE_Refresh(void) {
  int result = 0;
  int id = 0;
  int copied = 0;
  int old_page = 0;
  eee_state = S_CHECK;
  while (1) {
    switch (eee_state) {
      case S_CHECK:
        if (eee_initialized == 0) {
          eee_state = S_ABORT;
          break;
        }
        if (eee_prepared_page < 0) {
          eee_state = S_ABORT;
          break;
        }
        id = 0;
        copied = 0;
        eee_state = S_COPY;
        break;
      case S_COPY: {
        if (id >= MAX_IDS) {
          eee_state = S_MARK;
          break;
        }
        int slot = eee_find_record(id);
        if (slot >= 0) {
          unsigned src = eee_record_offset(eee_active_page, slot);
          unsigned value = dfa_read_word(src + 4);
          if (value != TOMBSTONE) {   /* deleted ids are not carried over */
            unsigned dst = eee_record_offset(eee_prepared_page, copied);
            result = dfa_program_word(dst, id);
            if (result != DFA_OK) {
              result = EEE_ERR_INTERNAL;
              eee_state = S_ERROR;
              break;
            }
            result = dfa_program_word(dst + 4, value);
            if (result != DFA_OK) {
              result = EEE_ERR_INTERNAL;
              eee_state = S_ERROR;
              break;
            }
            result = dfa_program_word(dst + 8, eee_checksum(id, value));
            if (result != DFA_OK) {
              result = EEE_ERR_INTERNAL;
              eee_state = S_ERROR;
              break;
            }
            copied = copied + 1;
          }
        }
        id = id + 1;
        break;
      }
      case S_MARK:
        result = eee_mark_page(eee_prepared_page, HDR_ACTIVE, MARK_ACTIVE);
        if (result != DFA_OK) {
          result = EEE_ERR_INTERNAL;
          eee_state = S_ERROR;
          break;
        }
        result = eee_mark_page(eee_active_page, HDR_INVALID, MARK_INVALID);
        if (result != DFA_OK) {
          result = EEE_ERR_INTERNAL;
          eee_state = S_ERROR;
          break;
        }
        eee_state = S_FINISH;
        break;
      case S_FINISH:
        old_page = eee_active_page;
        eee_active_page = eee_prepared_page;
        eee_prepared_page = -1;
        eee_cursor = copied;
        return EEE_OK;
      case S_ABORT:
        return EEE_ERR_REJECTED;
      case S_ERROR:
        if (result == 0) { result = EEE_ERR_INTERNAL; }
        return result;
      default:
        eee_state = S_ERROR;
        break;
    }
  }
  return EEE_ERR_INTERNAL;
}

/* ============================ application layer ============================ */

/* All stimulus inputs are drawn unconditionally at the top so the draw
   order is identical on every path — both execution platforms and the
   formal engines then agree on which input is which. */
void app_dispatch(int op) {
  int id = __in(rec_id);
  int data = __in(wdata);
  current_op = op;
  if (op == 0) {
    ret_format = 0;
    ret_format = EEE_Format();
  } else if (op == 1) {
    ret_startup1 = 0;
    ret_startup1 = EEE_Startup1();
  } else if (op == 2) {
    ret_startup2 = 0;
    ret_startup2 = EEE_Startup2();
  } else if (op == 3) {
    ret_read = 0;
    ret_read = EEE_Read(id);
  } else if (op == 4) {
    ret_write = 0;
    ret_write = EEE_Write(id, data);
  } else if (op == 5) {
    ret_prepare = 0;
    ret_prepare = EEE_Prepare();
  } else if (op == 6) {
    ret_refresh = 0;
    ret_refresh = EEE_Refresh();
  } else {
    ret_invalidate = 0;
    ret_invalidate = EEE_Invalidate(id);
  }
}

void main(void) {
  /* Initialization & SCTC handshake protocol. */
  eee_active_page = -1;
  eee_prepared_page = -1;
  eee_initialized = 0;
  flag = true;

  while (1) {
    int op = __in(op_select);
    int fault = __in(inject_fault);
    if (op < 0) { op = -op; }
    op = op % 8;
    if (fault == 1) {
      dfa_inject_fault();
    }
    app_dispatch(op);
    test_cases = test_cases + 1;
  }
}
)MINIC";
}

}  // namespace esv::casestudy

// Case-study definitions: the EEPROM-emulation software, its operations,
// return codes, propositions, and temporal properties.
//
// The paper extracts its FLTL property set from the case study's
// specification manual: one property per EEELib operation (format, prepare,
// read, write, refresh, startup1, startup2), each of the shape
//
//     F (Read -> F[b] (EEE_OK || ...))          (paper property (A))
//
// i.e. calling the operation leads, within time bound b, to one of its
// documented return values. We provide that literal shape plus the
// always-variant G (Read -> F[b] (...)) which checks *every* call; the
// coverage metric (percentage of documented return values observed) matches
// the paper's C.(%) column.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "flash/flash_controller.hpp"
#include "mem/address_space.hpp"
#include "minic/ast.hpp"
#include "sctc/checker.hpp"

namespace esv::casestudy {

/// The embedded software (mini-C source text). Compile with minic::compile.
const char* eeprom_emulation_source();

/// Flash geometry matching the enums inside the software.
flash::FlashConfig eeprom_flash_config();

/// MMIO base the software's register enums assume.
inline constexpr std::uint32_t kFlashMmioBase = 0xF0000000;

/// EEE return codes (values mirror the software's enum).
inline constexpr std::uint32_t kEeeOk = 1;
inline constexpr std::uint32_t kEeeBusy = 2;
inline constexpr std::uint32_t kEeeErrParameter = 3;
inline constexpr std::uint32_t kEeeErrPoolFull = 4;
inline constexpr std::uint32_t kEeeErrNotFound = 5;
inline constexpr std::uint32_t kEeeErrInternal = 6;
inline constexpr std::uint32_t kEeeErrRejected = 7;
inline constexpr std::uint32_t kEeeErrNoInstance = 8;

/// Name of an EEE return code ("EEE_OK").
std::string eee_code_name(std::uint32_t code);

struct OperationSpec {
  std::string name;       // property name: "Read"
  std::string function;   // EEELib entry: "EEE_Read"
  std::string ret_global; // per-op return register: "ret_read"
  int op_code;            // main-loop dispatch value
  std::vector<std::uint32_t> return_codes;  // documented return values
};

/// All seven operations, in the paper's table order:
/// Read, Write, Startup1, Startup2, Format, Prepare, Refresh.
const std::vector<OperationSpec>& eeprom_operations();

/// Finds an operation by name; throws std::invalid_argument if unknown.
const OperationSpec& operation_by_name(const std::string& name);

/// Registers the propositions an operation's property needs on `checker`:
///   "<Name>"          — the operation's function is executing (fname)
///   "<Name>_<CODE>"   — the operation's return register holds CODE
/// Reads happen through `memory` (microprocessor memory in approach 1, the
/// virtual memory model in approach 2 — identical code, as in the paper).
void register_operation_propositions(sctc::TemporalChecker& checker,
                                     const sctc::MemoryReadInterface& memory,
                                     const minic::Program& program,
                                     const OperationSpec& op);

enum class PropertyShape {
  kPaperLiteral,  // F (Op -> F[b] (codes...))   — the shape printed in the paper
  kGlobally,      // G (Op -> F[b] (codes...))   — checks every call
};

/// Builds the FLTL property text for `op`. No bound when `bound` is empty
/// (a pure LTL property, the paper's "No-TB" columns).
std::string response_property(const OperationSpec& op,
                              std::optional<std::uint32_t> bound,
                              PropertyShape shape = PropertyShape::kGlobally);

/// The same property in the PSL dialect (SCTC "supports specification of
/// properties either in PSL or FLTL"); parses to the identical formula.
std::string response_property_psl(const OperationSpec& op,
                                  std::optional<std::uint32_t> bound);

}  // namespace esv::casestudy

#include "casestudy/harness.hpp"

#include <chrono>

#include "cpu/codegen.hpp"
#include "cpu/cpu.hpp"
#include "esw/esw_program.hpp"
#include "esw/esw_model.hpp"
#include "esw/interpreter.hpp"
#include "flash/flash_controller.hpp"
#include "minic/sema.hpp"
#include "sctc/esw_monitor.hpp"
#include "sim/clock.hpp"
#include "stimulus/coverage.hpp"
#include "stimulus/random_inputs.hpp"

namespace esv::casestudy {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// RAM large enough for the software's data segment, rounded up.
std::uint32_t ram_bytes_for(const minic::Program& program) {
  const std::uint32_t end = program.data_segment_end();
  return (end + 0xFFFu) & ~0xFFFu;
}

void fill_result_from_checker(ExperimentResult& result,
                              const sctc::TemporalChecker& checker) {
  const sctc::PropertyRecord& record = checker.properties().front();
  result.verdict = record.verdict();
  result.temporal_steps = checker.steps();
  result.automaton_states = record.automaton_states;
}

}  // namespace

ExperimentResult run_with_microprocessor(const OperationSpec& op,
                                         const ExperimentConfig& config) {
  ExperimentResult result;
  result.operation = op.name;

  // Build the platform (not counted as verification time: this is the
  // compile/link step of the design flow).
  minic::Program program = minic::compile(eeprom_emulation_source());
  cpu::CodeImage image = cpu::compile_to_image(program);
  mem::AddressSpace memory(ram_bytes_for(program));
  flash::FlashController flash_dev(eeprom_flash_config());
  memory.map_device(kFlashMmioBase, flash_dev.window_bytes(), flash_dev);
  stimulus::RandomInputProvider inputs(config.seed);
  stimulus::configure_eeprom_inputs(inputs, config.fault_permille);
  stimulus::ReturnCodeCoverage coverage(op.return_codes);

  const std::uint32_t flag_addr = program.find_global("flag")->address;
  const std::uint32_t tc_addr = program.find_global("test_cases")->address;
  const std::uint32_t ret_addr =
      program.find_global(op.ret_global)->address;
  result.property_text = response_property(op, config.time_bound, config.shape);

  sim::Simulation sim;
  sim::Clock clock(sim, "clk", sim::Time::ns(10));
  cpu::Cpu core(sim, "cpu", image, memory, inputs, clock);

  const auto started = Clock::now();
  double ar_seconds = 0.0;

  sctc::EswMonitor monitor(
      sim, "esw", clock.posedge_event(), memory, flag_addr,
      [&](sctc::TemporalChecker& checker) {
        register_operation_propositions(checker, memory, program, op);
        const auto synth_start = Clock::now();
        checker.add_property(op.name, result.property_text);
        ar_seconds = seconds_since(synth_start);
      },
      config.mode);

  // Testbench supervision: coverage sampling and stop conditions, clocked
  // like the checker.
  sim.create_method(
      "supervisor",
      [&] {
        coverage.observe(memory.sctc_read_uint(ret_addr));
        const std::uint64_t test_cases = memory.sctc_read_uint(tc_addr);
        const bool decided = monitor.initialized() &&
                             monitor.checker().all_decided();
        if (test_cases >= config.max_test_cases || decided ||
            core.trapped() || core.halted() ||
            clock.cycles() >= config.max_steps) {
          sim.stop();
        }
      },
      {&clock.posedge_event()}, /*run_at_start=*/false);

  sim.run();

  result.verification_seconds = seconds_since(started);
  result.ar_generation_seconds = ar_seconds;
  result.test_cases = memory.sctc_read_uint(tc_addr);
  result.coverage_percent = coverage.percent();
  result.coverage_anomalies = coverage.anomaly_count();
  result.cpu_trapped = core.trapped();
  fill_result_from_checker(result, monitor.checker());
  return result;
}

ExperimentResult run_with_esw_model(const OperationSpec& op,
                                    const ExperimentConfig& config) {
  ExperimentResult result;
  result.operation = op.name;

  minic::Program program = minic::compile(eeprom_emulation_source());
  esw::EswProgram lowered = esw::lower_program(program);
  mem::AddressSpace memory(ram_bytes_for(program));
  flash::FlashController flash_dev(eeprom_flash_config());
  memory.map_device(kFlashMmioBase, flash_dev.window_bytes(), flash_dev);
  stimulus::RandomInputProvider inputs(config.seed);
  stimulus::configure_eeprom_inputs(inputs, config.fault_permille);
  stimulus::ReturnCodeCoverage coverage(op.return_codes);

  const std::uint32_t tc_addr = program.find_global("test_cases")->address;
  const std::uint32_t ret_addr =
      program.find_global(op.ret_global)->address;
  result.property_text = response_property(op, config.time_bound, config.shape);

  sim::Simulation sim;
  sctc::TemporalChecker checker(sim, "sctc", config.mode);
  register_operation_propositions(checker, memory, program, op);

  const auto started = Clock::now();
  const auto synth_start = Clock::now();
  checker.add_property(op.name, result.property_text);
  result.ar_generation_seconds = seconds_since(synth_start);

  if (config.esw_in_kernel) {
    // The paper's setup: the derived model is a thread process whose
    // pc event triggers the checker through the kernel.
    esw::EswModel model(sim, "esw", program, lowered, memory, inputs);
    checker.bind_trigger(model.pc_event());
    sim.create_method(
        "supervisor",
        [&] {
          coverage.observe(memory.sctc_read_uint(ret_addr));
          if (checker.all_decided() || model.finished() ||
              memory.sctc_read_uint(tc_addr) >= config.max_test_cases ||
              model.interpreter().steps_executed() >= config.max_steps) {
            sim.stop();
          }
        },
        {&model.pc_event()}, /*run_at_start=*/false);
    sim.run();
  } else {
    // Kernel-free lockstep: identical semantics (one statement = one
    // temporal step), maximum speed.
    esw::Interpreter interpreter(program, lowered, memory, inputs);
    std::uint64_t steps = 0;
    while (steps < config.max_steps) {
      if (!interpreter.step()) break;
      ++steps;
      checker.step_all();
      coverage.observe(memory.sctc_read_uint(ret_addr));
      if (checker.all_decided()) break;
      if (memory.sctc_read_uint(tc_addr) >= config.max_test_cases) break;
    }
  }

  result.verification_seconds = seconds_since(started);
  result.test_cases = memory.sctc_read_uint(tc_addr);
  result.coverage_percent = coverage.percent();
  result.coverage_anomalies = coverage.anomaly_count();
  fill_result_from_checker(result, checker);
  return result;
}

}  // namespace esv::casestudy

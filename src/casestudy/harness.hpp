// Experiment harness for the case study: runs one EEELib operation property
// under either verification approach and reports the paper's Fig. 8 metrics
// (verification time, test cases, return-value coverage).
//
// Approach 1 (run_with_microprocessor): the software is compiled and executed
// on the clocked microprocessor model inside the simulation kernel; the
// EswMonitor performs the flag handshake and the SCTC triggers on the
// processor clock. Verification time includes the full kernel overhead —
// that overhead *is* the paper's point of comparison.
//
// Approach 2 (run_with_esw_model): the same software goes through the
// C2SystemC derivation and runs statement-by-statement; the SCTC triggers on
// the program-counter event. No processor, no clock — hence the up-to-900x
// speedup the paper reports.
//
// In both approaches the reported verification time includes AR-automaton
// generation when the checker runs in synthesized-automaton mode (the
// paper's TB columns "include large AR-automaton generation time").
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "casestudy/eeprom.hpp"
#include "sctc/checker.hpp"
#include "temporal/monitor.hpp"

namespace esv::casestudy {

struct ExperimentConfig {
  /// Stop after this many completed operations (the paper's T.C. budget:
  /// 10,000 for approach 1, 100,000 for approach 2).
  std::uint64_t max_test_cases = 10000;
  /// Safety budget: clock cycles (approach 1) or statements (approach 2).
  std::uint64_t max_steps = 200'000'000;
  /// Property time bound; empty = pure LTL (the No-TB columns).
  std::optional<std::uint32_t> time_bound;
  /// Monitor mode; kSynthesizedAutomaton reproduces the AR-generation cost.
  sctc::MonitorMode mode = sctc::MonitorMode::kProgression;
  /// Property shape (see eeprom.hpp).
  PropertyShape shape = PropertyShape::kGlobally;
  /// Stimulus seed and flash fault-injection rate.
  std::uint64_t seed = 1;
  std::uint32_t fault_permille = 10;
  /// Approach 2 only: run the derived model inside the simulation kernel
  /// (EswModel thread + esw_pc_event + checker method), exactly like the
  /// paper's SystemC setup, instead of the default kernel-free lockstep.
  /// Slower; the difference is the kernel's share of the cost.
  bool esw_in_kernel = false;
};

struct ExperimentResult {
  std::string operation;
  std::string property_text;
  /// Wall-clock verification time: AR generation + simulation (V.T.).
  double verification_seconds = 0.0;
  /// Of which: AR-automaton generation (0 in progression mode).
  double ar_generation_seconds = 0.0;
  std::uint64_t test_cases = 0;           // T.C.
  double coverage_percent = 0.0;          // C.(%)
  temporal::Verdict verdict = temporal::Verdict::kPending;
  std::uint64_t temporal_steps = 0;       // SCTC trigger count
  std::size_t automaton_states = 0;       // synthesized mode only
  std::uint64_t coverage_anomalies = 0;   // undocumented return values seen
  bool cpu_trapped = false;               // approach 1 only
};

/// Approach 1: verification using the microprocessor model.
ExperimentResult run_with_microprocessor(const OperationSpec& op,
                                         const ExperimentConfig& config);

/// Approach 2: verification on the derived SystemC ESW model.
ExperimentResult run_with_esw_model(const OperationSpec& op,
                                    const ExperimentConfig& config);

}  // namespace esv::casestudy

// Multi-seed verification campaigns.
//
// The paper's simulation-based checking explores exactly one stimulus trace
// per run, so confidence comes from running *many* seeds — the campaign-style
// dynamic verification that statistical model checking of SystemC advocates
// (Ngo & Legay; Ngo, Legay & Quilbeuf). A campaign fans a seed range out over
// a pool of worker threads. Each worker owns a fully isolated verification
// stack — its own mini-C compile, simulation kernel, ESW model (or
// microprocessor model), stimulus provider, and SCTC — so seeds never share
// mutable state and the per-seed results are independent of scheduling.
//
// Determinism guarantee: for a fixed (program, spec, approach, mode,
// max_steps, seed range), the verdict table, per-seed results, and merged
// coverage are identical for any jobs count. Every seed writes into a
// pre-sized slot indexed by (seed - seed_lo); aggregation walks the slots in
// seed order on the calling thread after all workers have joined. Only the
// wall-clock figures vary between runs.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sctc/checker.hpp"
#include "temporal/monitor.hpp"

namespace esv::campaign {

struct SeedResult;

struct CampaignConfig {
  std::string program_source;  // mini-C source text
  std::string spec_text;       // ESV spec-file text
  int approach = 2;            // 1 = microprocessor model, 2 = derived model
  sctc::MonitorMode mode = sctc::MonitorMode::kProgression;
  std::uint64_t max_steps = 1'000'000;  // per-seed statement/cycle budget
  std::uint64_t seed_lo = 1;            // inclusive
  std::uint64_t seed_hi = 1;            // inclusive
  unsigned jobs = 1;                    // worker threads (clamped to >= 1)
  std::size_t witness_depth = 0;  // violation witness steps kept per seed

  // --- distributed execution (docs/DISTRIBUTED.md) ---
  /// Worker *processes* for the out-of-process broker
  /// (dist::run_distributed). 0 keeps the campaign in process; campaign::run
  /// itself always runs in process and ignores this field. Total parallelism
  /// of a distributed run is workers x jobs (processes x threads).
  unsigned workers = 0;
  /// esv-worker binary the broker spawns. Empty lets the broker fall back to
  /// dist::default_worker_binary() (ESV_WORKER_BIN or the sibling of the
  /// running executable).
  std::string worker_binary;

  // --- fault injection (docs/FAULTS.md) ---
  /// Fault-plan text (the --faults file). Parsed together with any `fault`
  /// lines embedded in the spec; both target the same plan. Empty plus an
  /// empty spec fault section means a nominal campaign.
  std::string fault_plan_text;
  /// Detailed fault-log records kept per seed (counts stay exact beyond
  /// the limit; 0 keeps every record).
  std::size_t fault_log_limit = 64;

  // --- observability (docs/OBSERVABILITY.md) ---
  /// Collect per-seed run metrics (kernel, checker, fault, stimulus
  /// counters) and merge them into CampaignReport::metrics. The merged
  /// snapshot is deterministic: byte-identical for any jobs count.
  bool collect_metrics = false;
  /// Keep each seed's JSONL event trace in SeedResult::trace_jsonl.
  bool capture_traces = false;
  /// When non-empty, also write every seed's trace to
  /// `<trace_dir>/seed_<N>.trace.jsonl` (the directory is created; files are
  /// written on the calling thread after the workers join, so their bytes
  /// are independent of scheduling). Implies capture_traces.
  std::string trace_dir;

  // --- hardening ---
  /// Per-seed wall-clock watchdog in seconds; a seed past the deadline is
  /// stopped and recorded with error_kind "timeout". 0 disables. Timeouts
  /// depend on the wall clock, so enabling the watchdog trades the
  /// cross-jobs determinism guarantee for liveness.
  double seed_timeout_seconds = 0.0;
  /// Bounded retries for seeds that die with an infrastructure error (not
  /// a fault of the software under test, not a timeout). The last attempt's
  /// result is kept; SeedResult::attempts records how many ran. Retries
  /// wait out a short exponential backoff between attempts.
  unsigned seed_retries = 0;
  /// Whole-campaign wall-clock deadline in seconds (--campaign-timeout);
  /// past it the run aborts in a structured way: every unfinished seed is
  /// captured as a deterministic "infrastructure" error naming the deadline
  /// and CampaignReport::deadline_exceeded is set (esv-verify exits 3).
  /// 0 disables. Orchestrator-side only: never crosses the wire to workers
  /// and is excluded from the journal config digest, so an aborted run can
  /// be resumed with a fresh (or no) deadline. Like seed_timeout_seconds,
  /// enabling it trades cross-run determinism for a bounded wall clock.
  double campaign_timeout_seconds = 0.0;
  /// Per-seed address-space ceiling in MiB, enforced by esv-worker via
  /// RLIMIT_AS around seed execution (distributed runs only; the in-process
  /// runner ignores it because a process-wide limit would also cap the
  /// orchestrator). A seed past the ceiling records a structured "sut"
  /// error capture instead of killing the whole shard. 0 disables.
  std::uint64_t seed_mem_limit_mb = 0;

  // --- checkpointing (docs/JOURNAL.md) -----------------------------------
  // Neither field crosses the wire: the journal lives with the orchestrator.
  /// When set, invoked once per freshly computed SeedResult, after the seed
  /// finishes and before the campaign completes — the write-ahead journal's
  /// hook. In-process runs call it from worker threads (callee serializes);
  /// the broker calls it from its event loop before acking the RESULT.
  /// Never called for resume_results. Must not throw.
  std::function<void(const SeedResult&)> on_result;
  /// Seeds already completed by a previous interrupted run (recovered from
  /// a journal). Slots for these seeds are pre-filled and skipped; results
  /// whose seed falls outside [seed_lo, seed_hi] are ignored.
  std::vector<SeedResult> resume_results;
};

/// Per-property outcome of one seed.
struct PropertyOutcome {
  temporal::Verdict verdict = temporal::Verdict::kPending;
  std::uint64_t decided_at_step = 0;  // 0 while pending
  /// Robustness classification; kNotApplicable on nominal (fault-free) runs.
  sctc::FaultClass fault_class = sctc::FaultClass::kNotApplicable;
};

/// Everything one seed produced. `properties` is index-aligned with
/// CampaignReport::property_names, `prop_true_counts` with
/// CampaignReport::coverage.
struct SeedResult {
  std::uint64_t seed = 0;
  std::vector<PropertyOutcome> properties;
  std::uint64_t steps = 0;       // temporal steps taken by the checker
  std::uint64_t statements = 0;  // executed statements (a2) / cycles (a1)
  std::uint64_t draws = 0;       // stimulus values drawn
  bool finished = false;         // SUT ran to completion within the budget
  std::string error;    // non-empty if the run aborted (assertion, trap, ...)
  /// Error taxonomy, empty when error is empty:
  ///   "sut"            — fault of the software under test (assertion,
  ///                      runtime fault, memory fault, CPU trap)
  ///   "timeout"        — the per-seed watchdog stopped the run
  ///   "infrastructure" — anything else that escaped the verification
  ///                      stack; eligible for bounded retry
  std::string error_kind;
  unsigned attempts = 1;  // runs of this seed (> 1 after retries)
  std::string witness;  // violation witness table (witness_depth > 0 only)
  std::vector<std::uint64_t> prop_true_counts;
  std::uint64_t injected_faults = 0;  // faults injected into this seed's run
  std::string fault_log;  // deterministic rendered fault log (may truncate)
  /// FaultPlan::digest() of the active plan, recorded when the seed errored
  /// in a fault campaign: the (digest, seed) pair makes any crash report —
  /// local or shipped back from a remote worker — reproducible with one
  /// `esv-verify --seed=N --faults=PLAN` run against the matching plan file.
  std::string fault_plan_digest;
  /// Per-seed metrics snapshot (collect_metrics only). Deterministic.
  obs::MetricsSnapshot metrics;
  /// Per-seed JSONL event trace (capture_traces / trace_dir only).
  /// Deterministic: contains no wall-clock data.
  std::string trace_jsonl;
  double wall_ms = 0.0;  // timing only; excluded from deterministic output
};

/// Per-property verdict tally over all seeds.
struct PropertyAggregate {
  std::string name;
  std::uint64_t validated = 0;
  std::uint64_t violated = 0;
  std::uint64_t pending = 0;  // pending at budget
  std::optional<std::uint64_t> first_violation_seed;
  // Fault-campaign classification tallies (zero on nominal campaigns).
  std::uint64_t held_under_fault = 0;
  std::uint64_t violated_under_fault = 0;
  std::uint64_t monitor_errors = 0;
};

/// Merged proposition coverage: in how many of the campaign's temporal steps
/// (summed over every seed) was the proposition true.
struct PropositionCoverage {
  std::string name;
  std::uint64_t true_steps = 0;
  std::uint64_t total_steps = 0;
  double percent() const {
    return total_steps == 0
               ? 0.0
               : 100.0 * static_cast<double>(true_steps) /
                     static_cast<double>(total_steps);
  }
};

struct CampaignReport {
  // Configuration echo (jobs affects only timing, never results).
  std::uint64_t seed_lo = 0;
  std::uint64_t seed_hi = 0;
  int approach = 2;
  sctc::MonitorMode mode = sctc::MonitorMode::kProgression;
  std::uint64_t max_steps = 0;
  unsigned jobs = 1;

  std::vector<std::string> property_names;
  std::vector<SeedResult> seeds;  // ascending seed order, one slot per seed
  std::vector<PropertyAggregate> per_property;
  std::vector<PropositionCoverage> coverage;

  std::uint64_t validated_total = 0;  // over seeds x properties
  std::uint64_t violated_total = 0;
  std::uint64_t pending_total = 0;
  std::uint64_t violated_seeds = 0;  // seeds with >= 1 violated property
  std::uint64_t error_seeds = 0;     // seeds whose run aborted
  std::uint64_t timeout_seeds = 0;   // subset of error_seeds: watchdog hits
  std::uint64_t retried_seeds = 0;   // seeds that needed more than 1 attempt

  // Fault-campaign totals (fault_campaign == false on nominal runs).
  bool fault_campaign = false;
  std::uint64_t fault_plan_entries = 0;
  std::uint64_t injected_faults_total = 0;
  std::uint64_t held_under_fault_total = 0;
  std::uint64_t violated_under_fault_total = 0;
  std::uint64_t monitor_error_total = 0;

  // Merged per-seed metrics (collect_metrics only). Merging walks the seed
  // slots in ascending order on the calling thread; the snapshot renders
  // byte-identically for any jobs count.
  bool has_metrics = false;
  obs::MetricsSnapshot metrics;

  // --- distributed-run operational data (docs/DISTRIBUTED.md) ---
  // Everything below is timing-class information: it describes how the run
  // was executed, never what it computed, and is excluded from every
  // deterministic rendering so distributed and in-process reports stay
  // byte-identical.
  bool distributed = false;
  unsigned workers = 0;  // worker processes (distributed runs only)
  /// Broker-side `dist.*` counters (frames, bytes, steals, respawns, queue
  /// depth) plus per-worker counters merged from METRICS frames.
  obs::MetricsSnapshot dist_metrics;
  /// Worker lifecycle JSONL (spawn/exit/respawn/timeout events).
  std::string dist_events_jsonl;
  /// The campaign finished in-process after every worker slot died with no
  /// respawn budget left (docs/RESILIENCE.md "graceful degradation"). The
  /// per-seed results are unaffected; only this flag and timing differ.
  bool degraded = false;
  /// campaign_timeout_seconds elapsed before every seed finished; the
  /// unfinished seeds hold deterministic deadline captures (error_kind
  /// "infrastructure") and esv-verify exits 3.
  bool deadline_exceeded = false;
  /// Self-chaos (--chaos, docs/RESILIENCE.md): orchestrator-side chaos.*
  /// counters and the chaos_injected event JSONL. Worker-side chaos
  /// counters ride home inside dist_metrics instead. Operational only —
  /// rendered in the timing section, never in deterministic output.
  obs::MetricsSnapshot chaos_metrics;
  std::string chaos_events_jsonl;

  std::uint64_t total_steps = 0;
  std::uint64_t total_statements = 0;
  std::uint64_t total_draws = 0;
  double wall_seconds = 0.0;  // timing only

  std::uint64_t seed_count() const { return seed_hi - seed_lo + 1; }
  bool any_violated() const { return violated_total > 0; }
  double seeds_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(seed_count()) / wall_seconds
               : 0.0;
  }

  /// Deterministic multi-line result table: per-seed verdict rows, the
  /// per-property tally, and merged coverage. Contains no timing and no
  /// jobs count, so it is bit-identical across jobs settings.
  std::string verdict_table() const;
  /// Deterministic one-paragraph tally (the --quiet output).
  std::string summary() const;
  /// JSON report. With include_timing=false the wall-clock fields (and the
  /// jobs count) are omitted and the output is bit-identical across jobs
  /// settings; the schema is documented in docs/CAMPAIGN.md.
  std::string to_json(bool include_timing = true) const;
};

/// Runs the campaign. Throws (spec::SpecError, minic::SemaError,
/// std::invalid_argument, ...) on configuration errors — a malformed spec or
/// program fails before any worker starts. Per-seed faults of the software
/// under test (assertion failures, CPU traps, memory faults) do not abort
/// the campaign; they are recorded in SeedResult::error.
CampaignReport run(const CampaignConfig& config);

}  // namespace esv::campaign

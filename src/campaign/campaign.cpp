#include "campaign/campaign.hpp"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "campaign/seed_runner.hpp"

namespace esv::campaign {

CampaignReport run(const CampaignConfig& config) {
  const auto started = std::chrono::steady_clock::now();

  // Validate the whole configuration on the calling thread before any worker
  // starts: spec parse errors, program compile errors, unresolvable
  // propositions, property parse errors, and malformed or unresolvable fault
  // plans all surface here.
  const CampaignSetup setup = prepare_campaign(config);

  CampaignReport report = make_report_skeleton(config, setup);

  const std::uint64_t count = config.seed_hi - config.seed_lo + 1;
  const unsigned jobs = static_cast<unsigned>(
      std::min<std::uint64_t>(std::max(1u, config.jobs), count));
  report.jobs = jobs;

  // Seeds recovered from a checkpoint journal fill their slots up front and
  // are never re-run (and never re-journaled): results are pure functions of
  // (config, seed), so a recovered record is as good as a fresh computation.
  std::vector<char> done(count, 0);
  for (const SeedResult& recovered : config.resume_results) {
    if (recovered.seed < config.seed_lo || recovered.seed > config.seed_hi) {
      continue;
    }
    const std::uint64_t index = recovered.seed - config.seed_lo;
    if (done[index]) continue;
    report.seeds[index] = recovered;
    done[index] = 1;
  }

  std::atomic<std::uint64_t> cursor{0};

  // Whole-campaign deadline (--campaign-timeout): workers stop claiming new
  // seeds past it; the unclaimed slots get deterministic deadline captures
  // after the join. A seed already running finishes (per-seed preemption is
  // seed_timeout_seconds' job).
  const bool deadline_active = config.campaign_timeout_seconds > 0.0;
  const auto deadline =
      started + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(
                        config.campaign_timeout_seconds));

  const auto worker = [&] {
    SeedRunner runner(config, setup);
    for (;;) {
      if (deadline_active && std::chrono::steady_clock::now() >= deadline) {
        break;
      }
      const std::uint64_t index =
          cursor.fetch_add(1, std::memory_order_relaxed);
      if (index >= count) break;
      if (done[index]) continue;
      report.seeds[index] = runner.run_seed(config.seed_lo + index);
      done[index] = 1;
      if (config.on_result) config.on_result(report.seeds[index]);
    }
  };

  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  // Deadline-cut slots: structured, deterministic captures. Not journaled
  // (on_result never ran for them), so a --resume recomputes them.
  for (std::uint64_t index = 0; index < count; ++index) {
    if (done[index]) continue;
    report.deadline_exceeded = true;
    SeedResult& slot = report.seeds[index];
    slot.seed = config.seed_lo + index;
    slot.error = "campaign: wall-clock deadline exceeded (--campaign-timeout)";
    slot.error_kind = "infrastructure";
    slot.fault_plan_digest = setup.plan_digest;
  }

  finalize_report(config, setup, report);

  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  return report;
}

}  // namespace esv::campaign

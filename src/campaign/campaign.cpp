#include "campaign/campaign.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "cpu/codegen.hpp"
#include "cpu/cpu.hpp"
#include "esw/esw_model.hpp"
#include "mem/address_space.hpp"
#include "minic/sema.hpp"
#include "spec/specfile.hpp"
#include "stimulus/random_inputs.hpp"

namespace esv::campaign {

namespace {

std::uint32_t memory_bytes(const minic::Program& program) {
  // Same rounding as the esv-verify single-run path: data segment rounded up
  // to a 4 KiB page.
  return (program.data_segment_end() + 0xFFFu) & ~0xFFFu;
}

void configure_inputs(const spec::SpecFile& specfile,
                      stimulus::RandomInputProvider& inputs) {
  for (const auto& input : specfile.inputs) {
    if (input.is_chance) {
      inputs.set_chance(input.name, static_cast<std::uint32_t>(input.lo),
                        static_cast<std::uint32_t>(input.hi));
    } else {
      inputs.set_range(input.name, input.lo, input.hi);
    }
  }
}

/// Immutable per-worker verification stack. Each worker compiles its own
/// copy of the program so no AST, lowering, or code image is ever shared
/// between threads (the front end has no synchronization and needs none).
struct WorkerStack {
  explicit WorkerStack(const CampaignConfig& config)
      : program(minic::compile(config.program_source)) {
    if (config.approach == 2) {
      lowered = esw::lower_program(program);
    } else {
      image = cpu::compile_to_image(program);
    }
  }

  minic::Program program;
  std::optional<esw::EswProgram> lowered;  // approach 2
  std::optional<cpu::CodeImage> image;     // approach 1
};

SeedResult run_seed(const WorkerStack& stack, const spec::SpecFile& specfile,
                    const CampaignConfig& config, std::uint64_t seed) {
  const auto started = std::chrono::steady_clock::now();
  SeedResult result;
  result.seed = seed;

  mem::AddressSpace memory(memory_bytes(stack.program));
  stimulus::RandomInputProvider inputs(seed);
  configure_inputs(specfile, inputs);

  sim::Simulation sim;
  sctc::TemporalChecker checker(sim, "sctc", config.mode);
  spec::apply_spec(specfile, stack.program, memory, checker);
  checker.set_stop_on_violation(true);
  if (config.witness_depth != 0) {
    checker.set_witness_depth(config.witness_depth);
  }

  try {
    if (config.approach == 2) {
      esw::EswModel model(sim, "esw", stack.program, *stack.lowered, memory,
                          inputs);
      checker.bind_trigger(model.pc_event());
      sim.create_method(
          "supervisor",
          [&] {
            if (model.finished() || checker.all_decided() ||
                model.interpreter().steps_executed() >= config.max_steps) {
              sim.stop();
            }
          },
          {&model.pc_event()}, /*run_at_start=*/false);
      sim.run();
      result.finished = model.finished();
      result.statements = model.interpreter().steps_executed();
    } else {
      sim::Clock clock(sim, "clk", sim::Time::ns(10));
      cpu::Cpu core(sim, "cpu", *stack.image, memory, inputs, clock);
      core.set_stop_on_halt(true);
      checker.bind_trigger(clock.posedge_event());
      sim.create_method(
          "supervisor",
          [&] {
            if (checker.all_decided() || clock.cycles() >= config.max_steps) {
              sim.stop();
            }
          },
          {&clock.posedge_event()}, /*run_at_start=*/false);
      sim.run();
      result.finished = core.halted() && !core.trapped();
      result.statements = clock.cycles();
      if (core.trapped()) result.error = "CPU trapped: " + core.trap_message();
    }
  } catch (const std::exception& e) {
    // A fault of the software under test (assertion failure, memory fault,
    // arithmetic fault). The verdicts reached so far are still reported.
    result.error = e.what();
  }

  for (const sctc::PropertyRecord& record : checker.properties()) {
    PropertyOutcome outcome;
    outcome.verdict = record.verdict();
    outcome.decided_at_step = record.decided_at_step;
    result.properties.push_back(outcome);
  }
  result.steps = checker.steps();
  result.draws = inputs.draw_count();
  // Factory indices are assigned in registration order, which apply_spec
  // fixes to the spec-file order — identical for every seed, so the counts
  // align across seeds (and with CampaignReport::coverage) by position.
  result.prop_true_counts = checker.registered_proposition_true_counts();
  if (config.witness_depth != 0 && checker.any_violated()) {
    result.witness = checker.witness_table();
  }
  result.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - started)
          .count();
  return result;
}

}  // namespace

CampaignReport run(const CampaignConfig& config) {
  if (config.approach != 1 && config.approach != 2) {
    throw std::invalid_argument("campaign: approach must be 1 or 2");
  }
  if (config.seed_hi < config.seed_lo) {
    throw std::invalid_argument("campaign: empty seed range (hi < lo)");
  }

  const auto started = std::chrono::steady_clock::now();

  // Validate the whole configuration on the calling thread before any worker
  // starts: spec parse errors, program compile errors, unresolvable
  // propositions, and property parse errors all surface here.
  const spec::SpecFile specfile = spec::parse_spec(config.spec_text);

  CampaignReport report;
  report.seed_lo = config.seed_lo;
  report.seed_hi = config.seed_hi;
  report.approach = config.approach;
  report.mode = config.mode;
  report.max_steps = config.max_steps;

  std::vector<std::string> prop_names;
  {
    WorkerStack probe(config);
    mem::AddressSpace memory(memory_bytes(probe.program));
    sim::Simulation sim;
    sctc::TemporalChecker checker(sim, "sctc", config.mode);
    spec::apply_spec(specfile, probe.program, memory, checker);
    for (const sctc::PropertyRecord& record : checker.properties()) {
      report.property_names.push_back(record.name);
    }
    prop_names = checker.registered_proposition_names();
  }

  const std::uint64_t count = config.seed_hi - config.seed_lo + 1;
  const unsigned jobs = static_cast<unsigned>(
      std::min<std::uint64_t>(std::max(1u, config.jobs), count));
  report.jobs = jobs;
  report.seeds.resize(count);

  std::atomic<std::uint64_t> cursor{0};
  std::mutex failure_mutex;
  std::exception_ptr failure;

  const auto worker = [&] {
    try {
      const WorkerStack stack(config);
      for (;;) {
        const std::uint64_t index =
            cursor.fetch_add(1, std::memory_order_relaxed);
        if (index >= count) break;
        report.seeds[index] =
            run_seed(stack, specfile, config, config.seed_lo + index);
      }
    } catch (...) {
      // Unexpected infrastructure failure (run_seed already absorbs faults
      // of the software under test). Remember the first one and drain the
      // remaining seeds so sibling workers terminate quickly.
      {
        const std::lock_guard<std::mutex> lock(failure_mutex);
        if (!failure) failure = std::current_exception();
      }
      cursor.store(count, std::memory_order_relaxed);
    }
  };

  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  if (failure) std::rethrow_exception(failure);

  // Deterministic aggregation: walk the seed slots in ascending seed order
  // on the calling thread.
  for (const std::string& name : prop_names) {
    PropositionCoverage cov;
    cov.name = name;
    report.coverage.push_back(std::move(cov));
  }
  for (const std::string& name : report.property_names) {
    PropertyAggregate agg;
    agg.name = name;
    report.per_property.push_back(std::move(agg));
  }
  for (const SeedResult& seed : report.seeds) {
    bool seed_violated = false;
    for (std::size_t p = 0; p < seed.properties.size(); ++p) {
      switch (seed.properties[p].verdict) {
        case temporal::Verdict::kValidated:
          ++report.per_property[p].validated;
          ++report.validated_total;
          break;
        case temporal::Verdict::kViolated:
          ++report.per_property[p].violated;
          ++report.violated_total;
          seed_violated = true;
          if (!report.per_property[p].first_violation_seed) {
            report.per_property[p].first_violation_seed = seed.seed;
          }
          break;
        case temporal::Verdict::kPending:
          ++report.per_property[p].pending;
          ++report.pending_total;
          break;
      }
    }
    if (seed_violated) ++report.violated_seeds;
    if (!seed.error.empty()) ++report.error_seeds;
    for (std::size_t i = 0;
         i < seed.prop_true_counts.size() && i < report.coverage.size(); ++i) {
      report.coverage[i].true_steps += seed.prop_true_counts[i];
    }
    for (PropositionCoverage& cov : report.coverage) {
      cov.total_steps += seed.steps;
    }
    report.total_steps += seed.steps;
    report.total_statements += seed.statements;
    report.total_draws += seed.draws;
  }

  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  return report;
}

}  // namespace esv::campaign

// CampaignReport rendering: the deterministic verdict table / summary and
// the JSON report (schema documented in docs/CAMPAIGN.md).
#include <cmath>
#include <iomanip>
#include <sstream>

#include "campaign/campaign.hpp"

namespace esv::campaign {

namespace {

const char* mode_name(sctc::MonitorMode mode) {
  return sctc::monitor_mode_name(mode);
}

char verdict_letter(temporal::Verdict v) {
  switch (v) {
    case temporal::Verdict::kValidated: return 'V';
    case temporal::Verdict::kViolated: return 'X';
    case temporal::Verdict::kPending: return 'P';
  }
  return '?';
}

const char* verdict_json(temporal::Verdict v) {
  switch (v) {
    case temporal::Verdict::kValidated: return "validated";
    case temporal::Verdict::kViolated: return "violated";
    case temporal::Verdict::kPending: return "pending";
  }
  return "unknown";
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream hex;
          hex << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(static_cast<unsigned char>(c));
          out += hex.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Fixed-precision percentage so the deterministic outputs never depend on
/// floating-point formatting defaults.
std::string percent_text(double percent) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(2) << percent;
  return out.str();
}

const char* fault_class_json(sctc::FaultClass fault_class) {
  return sctc::fault_class_name(fault_class);
}

}  // namespace

std::string CampaignReport::verdict_table() const {
  std::ostringstream out;
  out << "campaign seeds " << seed_lo << ".." << seed_hi << "  approach="
      << approach << "  mode=" << mode_name(mode) << "  max-steps="
      << max_steps << "\n";
  if (fault_campaign) {
    out << "fault plan: " << fault_plan_entries << " entries, "
        << injected_faults_total << " faults injected\n";
  }
  out << "properties:";
  for (const std::string& name : property_names) out << " " << name;
  out << "\n";
  for (const SeedResult& seed : seeds) {
    out << "  seed " << std::setw(8) << seed.seed << "  [";
    for (const PropertyOutcome& p : seed.properties) {
      out << verdict_letter(p.verdict);
    }
    out << "]  steps=" << seed.steps << "  statements=" << seed.statements;
    if (fault_campaign) out << "  faults=" << seed.injected_faults;
    if (!seed.finished) out << "  unfinished";
    if (seed.attempts > 1) out << "  attempts=" << seed.attempts;
    if (!seed.error.empty()) {
      out << "  error";
      if (!seed.error_kind.empty()) out << "[" << seed.error_kind << "]";
      out << ": " << seed.error;
      if (!seed.fault_plan_digest.empty()) {
        out << "  plan=" << seed.fault_plan_digest;
      }
    }
    out << "\n";
  }
  out << "property tally:\n";
  for (const PropertyAggregate& agg : per_property) {
    out << "  " << agg.name << ": validated=" << agg.validated
        << " violated=" << agg.violated << " pending=" << agg.pending;
    if (fault_campaign) {
      out << "  under-fault: held=" << agg.held_under_fault
          << " violated=" << agg.violated_under_fault
          << " monitor-errors=" << agg.monitor_errors;
    }
    if (agg.first_violation_seed) {
      out << "  (first violation @seed " << *agg.first_violation_seed << ")";
    }
    out << "\n";
  }
  out << "merged proposition coverage:\n";
  for (const PropositionCoverage& cov : coverage) {
    out << "  " << cov.name << ": " << percent_text(cov.percent()) << "% ("
        << cov.true_steps << "/" << cov.total_steps << " steps)\n";
  }
  out << summary();
  return out.str();
}

std::string CampaignReport::summary() const {
  std::ostringstream out;
  out << "totals: " << seed_count() << " seeds, " << violated_seeds
      << " with violations, " << error_seeds << " with errors";
  if (timeout_seeds != 0) out << " (" << timeout_seeds << " timed out)";
  if (retried_seeds != 0) out << ", " << retried_seeds << " retried";
  out << "; verdicts " << validated_total << " validated / " << violated_total
      << " violated / " << pending_total << " pending; " << total_steps
      << " temporal steps, " << total_statements << " statements, "
      << total_draws << " stimulus draws\n";
  if (fault_campaign) {
    out << "faults: " << injected_faults_total << " injected from "
        << fault_plan_entries << " plan entries; classification "
        << held_under_fault_total << " held / " << violated_under_fault_total
        << " violated-under-fault / " << monitor_error_total
        << " monitor-errors\n";
  }
  return out.str();
}

std::string CampaignReport::to_json(bool include_timing) const {
  std::ostringstream out;
  out << "{\n  \"campaign\": {"
      << "\"seed_lo\": " << seed_lo << ", \"seed_hi\": " << seed_hi
      << ", \"approach\": " << approach << ", \"mode\": \"" << mode_name(mode)
      << "\", \"max_steps\": " << max_steps;
  if (include_timing) out << ", \"jobs\": " << jobs;
  out << "},\n";

  out << "  \"properties\": [";
  for (std::size_t i = 0; i < property_names.size(); ++i) {
    out << (i ? ", " : "") << "\"" << json_escape(property_names[i]) << "\"";
  }
  out << "],\n";

  out << "  \"seeds\": [\n";
  for (std::size_t s = 0; s < seeds.size(); ++s) {
    const SeedResult& seed = seeds[s];
    out << "    {\"seed\": " << seed.seed << ", \"verdicts\": [";
    for (std::size_t p = 0; p < seed.properties.size(); ++p) {
      out << (p ? ", " : "") << "\"" << verdict_json(seed.properties[p].verdict)
          << "\"";
    }
    out << "], \"decided_at_step\": [";
    for (std::size_t p = 0; p < seed.properties.size(); ++p) {
      out << (p ? ", " : "") << seed.properties[p].decided_at_step;
    }
    out << "], \"steps\": " << seed.steps
        << ", \"statements\": " << seed.statements
        << ", \"draws\": " << seed.draws
        << ", \"finished\": " << (seed.finished ? "true" : "false");
    if (fault_campaign) {
      out << ", \"faults\": " << seed.injected_faults
          << ", \"fault_classes\": [";
      for (std::size_t p = 0; p < seed.properties.size(); ++p) {
        out << (p ? ", " : "") << "\""
            << fault_class_json(seed.properties[p].fault_class) << "\"";
      }
      out << "]";
      if (!seed.fault_log.empty()) {
        out << ", \"fault_log\": \"" << json_escape(seed.fault_log) << "\"";
      }
    }
    if (seed.attempts > 1) {
      out << ", \"attempts\": " << seed.attempts;
    }
    if (!seed.error.empty()) {
      out << ", \"error\": \"" << json_escape(seed.error) << "\""
          << ", \"error_kind\": \"" << json_escape(seed.error_kind) << "\"";
      if (!seed.fault_plan_digest.empty()) {
        out << ", \"fault_plan_digest\": \""
            << json_escape(seed.fault_plan_digest) << "\"";
      }
      if (include_timing) {
        // How long the failing attempt ran before it died — the number that
        // makes --seed-timeout / --seed-retries tuning data-driven. Wall
        // clock, hence timing-gated like every other nondeterministic field.
        out << ", \"error_wall_ms\": " << std::fixed << std::setprecision(3)
            << seed.wall_ms;
        out.unsetf(std::ios_base::floatfield);
      }
    }
    if (!seed.witness.empty()) {
      out << ", \"witness\": \"" << json_escape(seed.witness) << "\"";
    }
    if (include_timing) {
      out << ", \"wall_ms\": " << std::fixed << std::setprecision(3)
          << seed.wall_ms;
      out.unsetf(std::ios_base::floatfield);
    }
    out << "}" << (s + 1 < seeds.size() ? "," : "") << "\n";
  }
  out << "  ],\n";

  out << "  \"aggregate\": {\n    \"per_property\": [\n";
  for (std::size_t i = 0; i < per_property.size(); ++i) {
    const PropertyAggregate& agg = per_property[i];
    out << "      {\"name\": \"" << json_escape(agg.name)
        << "\", \"validated\": " << agg.validated
        << ", \"violated\": " << agg.violated
        << ", \"pending\": " << agg.pending;
    if (fault_campaign) {
      out << ", \"held_under_fault\": " << agg.held_under_fault
          << ", \"violated_under_fault\": " << agg.violated_under_fault
          << ", \"monitor_errors\": " << agg.monitor_errors;
    }
    out << ", \"first_violation_seed\": ";
    if (agg.first_violation_seed) {
      out << *agg.first_violation_seed;
    } else {
      out << "null";
    }
    out << "}" << (i + 1 < per_property.size() ? "," : "") << "\n";
  }
  out << "    ],\n    \"coverage\": [\n";
  for (std::size_t i = 0; i < coverage.size(); ++i) {
    const PropositionCoverage& cov = coverage[i];
    out << "      {\"prop\": \"" << json_escape(cov.name)
        << "\", \"true_steps\": " << cov.true_steps
        << ", \"total_steps\": " << cov.total_steps << ", \"percent\": "
        << percent_text(cov.percent()) << "}"
        << (i + 1 < coverage.size() ? "," : "") << "\n";
  }
  out << "    ],\n";
  out << "    \"validated\": " << validated_total
      << ", \"violated\": " << violated_total
      << ", \"pending\": " << pending_total
      << ", \"violated_seeds\": " << violated_seeds
      << ", \"error_seeds\": " << error_seeds
      << ", \"timeout_seeds\": " << timeout_seeds
      << ", \"retried_seeds\": " << retried_seeds;
  if (fault_campaign) {
    out << ",\n    \"fault\": {\"plan_entries\": " << fault_plan_entries
        << ", \"injected\": " << injected_faults_total
        << ", \"held\": " << held_under_fault_total
        << ", \"violated\": " << violated_under_fault_total
        << ", \"monitor_errors\": " << monitor_error_total << "}";
  }
  out << ",\n    \"total_steps\": " << total_steps
      << ", \"total_statements\": " << total_statements
      << ", \"total_draws\": " << total_draws << "\n  }";

  if (has_metrics) {
    // Campaign metrics are merged from per-seed snapshots that carry no
    // wall-clock histograms, so the snapshot body is deterministic either
    // way; the include_timing flag is still honoured for uniformity. The
    // block leads with the monitor mode and (timing runs only) the
    // steps-per-second rate, so a BENCH_* style throughput figure is
    // reproducible from the report JSON alone: mode, steps, and rate all
    // live next to the counters that produced them.
    const std::string snapshot = metrics.to_json(include_timing);
    out << ",\n  \"metrics\": {\"monitor_mode\": \"" << mode_name(mode)
        << "\",";
    if (include_timing) {
      out << " \"steps_per_second\": " << std::fixed << std::setprecision(1)
          << (wall_seconds > 0.0
                  ? static_cast<double>(total_steps) / wall_seconds
                  : 0.0)
          << ",";
      out.unsetf(std::ios_base::floatfield);
    }
    // Splice the snapshot's fields into the wrapper object (the snapshot
    // renders as "{\n  \"counters\": ..." and ends with "}\n").
    std::string body = snapshot.substr(1);
    while (!body.empty() && body.back() == '\n') body.pop_back();
    out << body;
  }

  if (include_timing) {
    out << ",\n  \"timing\": {\"wall_seconds\": " << std::fixed
        << std::setprecision(3) << wall_seconds
        << ", \"seeds_per_second\": " << std::setprecision(1)
        << seeds_per_second();
    out.unsetf(std::ios_base::floatfield);
    if (distributed) out << ", \"workers\": " << workers;
    // Operational resilience flags (docs/RESILIENCE.md): how the run ended,
    // never what it computed — hence timing-class.
    if (degraded) out << ", \"degraded\": true";
    if (deadline_exceeded) out << ", \"aborted\": \"deadline\"";
    out << "}";
    if (distributed && !dist_metrics.empty()) {
      // Operational only: how the run was executed (frames, bytes, steals,
      // respawns), never what it computed — hence timing-class.
      out << ",\n  \"dist\": " << dist_metrics.to_json(/*include_timing=*/true);
    }
    if (!chaos_metrics.empty()) {
      // Orchestrator-side self-chaos counters (--chaos); operational like
      // the dist block. Worker-side chaos counters land in "dist" instead.
      out << ",\n  \"chaos\": " << chaos_metrics.to_json(/*include_timing=*/true);
    }
  }
  out << "\n}\n";
  return out.str();
}

}  // namespace esv::campaign

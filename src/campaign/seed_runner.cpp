#include "campaign/seed_runner.hpp"

#include <chrono>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <new>
#include <fstream>
#include <optional>
#include <sstream>
#include <thread>

#include "common/rng.hpp"
#include "cpu/codegen.hpp"
#include "cpu/cpu.hpp"
#include "esw/esw_model.hpp"
#include "esw/interpreter.hpp"
#include "fault/fault_engine.hpp"
#include "mem/address_space.hpp"
#include "minic/sema.hpp"
#include "obs/trace.hpp"
#include "stimulus/random_inputs.hpp"

namespace esv::campaign {

namespace {

std::uint32_t memory_bytes(const minic::Program& program) {
  // Same rounding as the esv-verify single-run path: data segment rounded up
  // to a 4 KiB page.
  return (program.data_segment_end() + 0xFFFu) & ~0xFFFu;
}

void configure_inputs(const spec::SpecFile& specfile,
                      stimulus::RandomInputProvider& inputs) {
  for (const auto& input : specfile.inputs) {
    if (input.is_chance) {
      inputs.set_chance(input.name, static_cast<std::uint32_t>(input.lo),
                        static_cast<std::uint32_t>(input.hi));
    } else {
      inputs.set_range(input.name, input.lo, input.hi);
    }
  }
}

std::string watchdog_message(double timeout_seconds) {
  // Deterministic text: mentions the configured budget, never the measured
  // time, so two timed-out runs of the same config render identically.
  std::ostringstream out;
  out << "watchdog: seed exceeded the " << timeout_seconds
      << "s wall-clock budget";
  return out.str();
}

std::string mem_ceiling_message(std::uint64_t limit_mb) {
  // Deterministic for the same reason: the configured ceiling, never the
  // failed allocation's size or address.
  return "memory ceiling: allocation failed under the " +
         std::to_string(limit_mb) + " MiB per-seed limit";
}

/// bad_alloc taxonomy: under a configured per-seed ceiling (esv-worker's
/// RLIMIT_AS guard) an exhausted address space is a *deterministic* property
/// of the software under test — retrying it would reproduce it — so it is
/// classified "sut". Without a ceiling it is genuine host memory pressure,
/// i.e. infrastructure, and eligible for the bounded retry policy.
void classify_bad_alloc(const CampaignConfig& config, SeedResult& result) {
  if (config.seed_mem_limit_mb != 0) {
    result.error = mem_ceiling_message(config.seed_mem_limit_mb);
    result.error_kind = "sut";
  } else {
    result.error = "allocation failed (std::bad_alloc)";
    result.error_kind = "infrastructure";
  }
}

/// Exponential backoff with deterministic jitter between infrastructure
/// retries (docs/RESILIENCE.md): attempt n waits ~10ms * 2^n capped at
/// 500ms, scaled into [50%, 100%] by a draw seeded from (seed, attempt) —
/// reproducible, and desynchronized across seeds so a pool of retrying
/// workers does not stampede whatever resource just failed.
void backoff_before_retry(std::uint64_t seed, unsigned attempt) {
  double delay = 0.010;
  for (unsigned i = 0; i < attempt && delay < 0.5; ++i) delay *= 2.0;
  if (delay > 0.5) delay = 0.5;
  common::Rng jitter(seed * 0x9E3779B97F4A7C15ULL + attempt + 1);
  delay *= 0.5 +
           0.5 * (static_cast<double>(jitter.next_below(1024)) / 1024.0);
  std::this_thread::sleep_for(std::chrono::duration<double>(delay));
}

/// Immutable per-worker verification stack. Each worker compiles its own
/// copy of the program so no AST, lowering, or code image is ever shared
/// between threads (the front end has no synchronization and needs none).
struct VerifStack {
  explicit VerifStack(const CampaignConfig& config)
      : program(minic::compile(config.program_source)) {
    if (config.approach == 2) {
      lowered = esw::lower_program(program);
    } else {
      image = cpu::compile_to_image(program);
    }
  }

  minic::Program program;
  std::optional<esw::EswProgram> lowered;  // approach 2
  std::optional<cpu::CodeImage> image;     // approach 1
};

}  // namespace

struct SeedRunner::Stack : VerifStack {
  using VerifStack::VerifStack;
};

CampaignSetup prepare_campaign(const CampaignConfig& config) {
  if (config.approach != 1 && config.approach != 2) {
    throw std::invalid_argument("campaign: approach must be 1 or 2");
  }
  if (config.seed_hi < config.seed_lo) {
    throw std::invalid_argument("campaign: empty seed range (hi < lo)");
  }

  CampaignSetup setup;
  setup.specfile = spec::parse_spec(config.spec_text);
  setup.plan = fault::parse_plan(config.fault_plan_text);
  for (const spec::FaultLineSpec& fl : setup.specfile.fault_lines) {
    setup.plan.entries.push_back(fault::parse_fault_line(fl.text, fl.line));
  }

  // Probe compile: surfaces program compile errors, unresolvable
  // propositions, and property parse errors, and fixes the property /
  // proposition registration order every seed will reproduce.
  VerifStack probe(config);
  mem::AddressSpace memory(memory_bytes(probe.program));
  sim::Simulation sim;
  sctc::TemporalChecker checker(sim, "sctc", config.mode);
  spec::apply_spec(setup.specfile, probe.program, memory, checker);
  for (const sctc::PropertyRecord& record : checker.properties()) {
    setup.property_names.push_back(record.name);
  }
  setup.proposition_names = checker.registered_proposition_names();

  // Resolve memory-fault targets once, against the probe compile. Every
  // worker compiles the identical source, so the addresses are valid for
  // all of them and resolution errors surface before any worker starts.
  setup.plan.resolve([&probe](const std::string& name,
                              std::uint32_t& address) {
    const minic::GlobalVar* global = probe.program.find_global(name);
    if (global == nullptr || global->is_array) return false;
    address = global->address;
    return true;
  });
  if (!setup.plan.empty()) setup.plan_digest = setup.plan.digest();
  return setup;
}

SeedRunner::SeedRunner(const CampaignConfig& config,
                       const CampaignSetup& setup)
    : config_(config), setup_(setup) {
  // A worker that cannot even build its stack still consumes seeds and
  // records a structured error per seed, so the campaign always finishes
  // and sibling workers are unaffected.
  try {
    stack_ = std::make_unique<Stack>(config);
  } catch (const std::exception& e) {
    stack_error_ = std::string("worker setup failed: ") + e.what();
  } catch (...) {
    stack_error_ = "worker setup failed: unknown exception";
  }
}

SeedRunner::~SeedRunner() = default;

SeedResult SeedRunner::run_attempt(std::uint64_t seed) {
  const auto started = std::chrono::steady_clock::now();
  SeedResult result;
  result.seed = seed;

  const spec::SpecFile& specfile = setup_.specfile;
  const fault::FaultPlan& plan = setup_.plan;
  const CampaignConfig& config = config_;
  Stack& stack = *stack_;

  // Cooperative wall-clock watchdog. A worker thread cannot be killed, so
  // the deadline is polled from the supervisor; the check runs every 1024
  // events to keep it off the hot path.
  const bool watchdog = config.seed_timeout_seconds > 0.0;
  const auto deadline =
      started + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(
                        watchdog ? config.seed_timeout_seconds : 0.0));
  std::uint32_t watchdog_tick = 0;
  bool timed_out = false;

  mem::AddressSpace memory(memory_bytes(stack.program));
  stimulus::RandomInputProvider inputs(seed);
  configure_inputs(specfile, inputs);

  std::optional<fault::FaultEngine> faults;
  if (!plan.empty()) {
    faults.emplace(plan, seed, config.fault_log_limit);
    faults->bind_memory(memory);
  }

  // Observability sinks are per seed: a private registry and tracer, so no
  // cross-thread state exists and the snapshots/traces are pure functions of
  // (config, seed) — the campaign merges them deterministically afterwards.
  std::optional<obs::MetricsRegistry> metrics;
  if (config.collect_metrics) metrics.emplace();
  const bool tracing = config.capture_traces || !config.trace_dir.empty();
  obs::TraceWriter trace;
  if (tracing) trace.seed_start(seed);

  sim::Simulation sim;
  if (metrics) sim.set_metrics(&*metrics);
  sctc::TemporalChecker checker(sim, "sctc", config.mode);
  if (metrics) checker.set_metrics(&*metrics);
  if (tracing) checker.set_trace(&trace);
  if (faults) {
    if (metrics) faults->set_metrics(&*metrics);
    if (tracing) faults->set_trace(&trace);
  }
  spec::apply_spec(specfile, stack.program, memory, checker);
  checker.set_stop_on_violation(true);
  if (config.witness_depth != 0) {
    checker.set_witness_depth(config.witness_depth);
  }

  // Test-only divergence hook: when the variable names this seed (and the
  // mode carries compiled monitors), property 0's compiled monitor is forced
  // one state off the interpreted oracle, producing a deterministic
  // "monitor"-kind error capture. Lets resume/retry tests prove that monitor
  // errors are journaled and never re-run without patching the checker.
  if (const char* env = std::getenv("ESV_CAMPAIGN_TEST_DIVERGE_SEED")) {
    if (config.mode == sctc::MonitorMode::kBoth &&
        std::strtoull(env, nullptr, 10) == seed &&
        !checker.properties().empty()) {
      const sctc::PropertyRecord& record = checker.properties().front();
      if (record.automaton_states > 1) {
        checker.corrupt_compiled_for_test(
            0, (record.compiled.state() + 1) % record.automaton_states);
      }
    }
  }

  try {
    if (config.approach == 2) {
      esw::EswModel model(sim, "esw", stack.program, *stack.lowered, memory,
                          inputs);
      // Registration order matters: the checker's trigger method is created
      // first, so on every pc event the monitors step on the pre-fault state
      // and the engine then injects for that step.
      checker.bind_trigger(model.pc_event());
      sim.create_method(
          "supervisor",
          [&] {
            if (faults) faults->on_step(checker.steps());
            if (watchdog && (++watchdog_tick & 1023u) == 0 &&
                std::chrono::steady_clock::now() >= deadline) {
              timed_out = true;
              sim.stop();
              return;
            }
            if (model.finished() || checker.all_decided() ||
                model.interpreter().steps_executed() >= config.max_steps) {
              sim.stop();
            }
          },
          {&model.pc_event()}, /*run_at_start=*/false);
      sim.run();
      result.finished = model.finished();
      result.statements = model.interpreter().steps_executed();
    } else {
      sim::Clock clock(sim, "clk", sim::Time::ns(10));
      cpu::Cpu core(sim, "cpu", *stack.image, memory, inputs, clock);
      core.set_stop_on_halt(true);
      if (faults) faults->bind_clock(clock);
      checker.bind_trigger(clock.posedge_event());
      sim.create_method(
          "supervisor",
          [&] {
            if (faults) faults->on_step(checker.steps());
            if (watchdog && (++watchdog_tick & 1023u) == 0 &&
                std::chrono::steady_clock::now() >= deadline) {
              timed_out = true;
              sim.stop();
              return;
            }
            if (checker.all_decided() || clock.cycles() >= config.max_steps) {
              sim.stop();
            }
          },
          {&clock.posedge_event()}, /*run_at_start=*/false);
      sim.run();
      result.finished = core.halted() && !core.trapped();
      result.statements = clock.cycles();
      if (core.trapped()) {
        result.error = "CPU trapped: " + core.trap_message();
        result.error_kind = "sut";
      }
    }
  } catch (const esw::AssertionFailure& e) {
    // Faults of the software under test: the verdicts reached so far are
    // still reported, and the campaign carries on.
    result.error = e.what();
    result.error_kind = "sut";
  } catch (const esw::RuntimeFault& e) {
    result.error = e.what();
    result.error_kind = "sut";
  } catch (const mem::MemoryFault& e) {
    result.error = e.what();
    result.error_kind = "sut";
  } catch (const std::bad_alloc&) {
    classify_bad_alloc(config, result);
  } catch (const std::exception& e) {
    // Anything else escaping the verification stack is an infrastructure
    // error — eligible for the bounded retry policy in run_seed().
    result.error = e.what();
    result.error_kind = "infrastructure";
  }
  if (timed_out) {
    result.error = watchdog_message(config.seed_timeout_seconds);
    result.error_kind = "timeout";
    result.finished = false;
  }
  // kBoth differential oracle: a compiled monitor disagreeing with the
  // interpreted oracle is a first-class result — a monitor implementation
  // bug, never a property verdict and never retried (it is deterministic
  // for the seed, so a retry would just reproduce it).
  if (checker.divergence_count() != 0 && result.error.empty()) {
    result.error = "monitor divergence: " + checker.divergences().front();
    if (checker.divergence_count() > 1) {
      result.error += " (+" +
                      std::to_string(checker.divergence_count() - 1) +
                      " more)";
    }
    result.error_kind = "monitor";
  }

  const bool run_errored = !result.error.empty();
  for (const sctc::PropertyRecord& record : checker.properties()) {
    PropertyOutcome outcome;
    outcome.verdict = record.verdict();
    outcome.decided_at_step = record.decided_at_step;
    if (!plan.empty()) {
      // A diverged monitor's verdict is unusable regardless of how the run
      // ended; pin it to the monitor-error class explicitly.
      outcome.fault_class =
          record.diverged
              ? sctc::FaultClass::kMonitorError
              : sctc::classify_under_fault(outcome.verdict, run_errored);
    }
    result.properties.push_back(outcome);
  }
  result.steps = checker.steps();
  result.draws = inputs.draw_count();
  // Factory indices are assigned in registration order, which apply_spec
  // fixes to the spec-file order — identical for every seed, so the counts
  // align across seeds (and with CampaignReport::coverage) by position.
  result.prop_true_counts = checker.registered_proposition_true_counts();
  if (config.witness_depth != 0 && checker.any_violated()) {
    result.witness = checker.witness_table();
  }
  if (faults) {
    result.injected_faults = faults->injected_count();
    result.fault_log = faults->log_text();
  }
  if (metrics) {
    metrics->counter("stimulus.draws").add(result.draws);
    metrics->counter(config.approach == 2 ? "esw.statements" : "cpu.cycles")
        .add(result.statements);
    result.metrics = metrics->snapshot();
  }
  if (tracing) {
    std::uint64_t validated = 0;
    std::uint64_t violated = 0;
    std::uint64_t pending = 0;
    for (const PropertyOutcome& outcome : result.properties) {
      switch (outcome.verdict) {
        case temporal::Verdict::kValidated: ++validated; break;
        case temporal::Verdict::kViolated: ++violated; break;
        case temporal::Verdict::kPending: ++pending; break;
      }
    }
    trace.seed_end(seed, result.steps, validated, violated, pending);
    result.trace_jsonl = trace.text();
  }
  result.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - started)
          .count();
  return result;
}

SeedResult SeedRunner::run_seed(std::uint64_t seed) {
  SeedResult result;
  if (!stack_) {
    result.seed = seed;
    result.error = stack_error_;
    result.error_kind = "infrastructure";
  } else {
    // Bounded retry: only infrastructure errors are retried — a fault of
    // the software under test is a result, and a timeout would only burn
    // another full timeout's worth of wall clock.
    for (unsigned attempt = 0;; ++attempt) {
      // Timed out here too so attempts that die before run_attempt's own
      // stamp (a bad_alloc while building the address space, say) still
      // carry a duration into the report's error capture.
      const auto attempt_started = std::chrono::steady_clock::now();
      try {
        result = run_attempt(seed);
      } catch (const std::bad_alloc&) {
        result = SeedResult{};
        result.seed = seed;
        classify_bad_alloc(config_, result);
      } catch (const std::exception& e) {
        result = SeedResult{};
        result.seed = seed;
        result.error = e.what();
        result.error_kind = "infrastructure";
      } catch (...) {
        result = SeedResult{};
        result.seed = seed;
        result.error = "unknown exception";
        result.error_kind = "infrastructure";
      }
      if (result.wall_ms == 0.0) {
        result.wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - attempt_started)
                             .count();
      }
      result.attempts = attempt + 1;
      if (result.error_kind != "infrastructure" ||
          attempt >= config_.seed_retries) {
        break;
      }
      backoff_before_retry(seed, attempt);
    }
  }
  // Errored seeds in a fault campaign carry the plan digest so the crash
  // report alone pins down the reproducing `--seed=N --faults=...` run.
  if (!result.error.empty() && !setup_.plan_digest.empty()) {
    result.fault_plan_digest = setup_.plan_digest;
  }
  return result;
}

CampaignReport make_report_skeleton(const CampaignConfig& config,
                                    const CampaignSetup& setup) {
  CampaignReport report;
  report.seed_lo = config.seed_lo;
  report.seed_hi = config.seed_hi;
  report.approach = config.approach;
  report.mode = config.mode;
  report.max_steps = config.max_steps;
  report.fault_campaign = !setup.plan.empty();
  report.fault_plan_entries = setup.plan.entries.size();
  report.property_names = setup.property_names;
  report.seeds.resize(config.seed_hi - config.seed_lo + 1);
  return report;
}

void finalize_report(const CampaignConfig& config, const CampaignSetup& setup,
                     CampaignReport& report) {
  // Deterministic aggregation: walk the seed slots in ascending seed order
  // on the calling thread.
  report.coverage.clear();
  report.per_property.clear();
  for (const std::string& name : setup.proposition_names) {
    PropositionCoverage cov;
    cov.name = name;
    report.coverage.push_back(std::move(cov));
  }
  for (const std::string& name : report.property_names) {
    PropertyAggregate agg;
    agg.name = name;
    report.per_property.push_back(std::move(agg));
  }
  for (const SeedResult& seed : report.seeds) {
    bool seed_violated = false;
    for (std::size_t p = 0; p < seed.properties.size(); ++p) {
      switch (seed.properties[p].verdict) {
        case temporal::Verdict::kValidated:
          ++report.per_property[p].validated;
          ++report.validated_total;
          break;
        case temporal::Verdict::kViolated:
          ++report.per_property[p].violated;
          ++report.violated_total;
          seed_violated = true;
          if (!report.per_property[p].first_violation_seed) {
            report.per_property[p].first_violation_seed = seed.seed;
          }
          break;
        case temporal::Verdict::kPending:
          ++report.per_property[p].pending;
          ++report.pending_total;
          break;
      }
      switch (seed.properties[p].fault_class) {
        case sctc::FaultClass::kNotApplicable:
          break;
        case sctc::FaultClass::kHeldUnderFault:
          ++report.per_property[p].held_under_fault;
          ++report.held_under_fault_total;
          break;
        case sctc::FaultClass::kViolatedUnderFault:
          ++report.per_property[p].violated_under_fault;
          ++report.violated_under_fault_total;
          break;
        case sctc::FaultClass::kMonitorError:
          ++report.per_property[p].monitor_errors;
          ++report.monitor_error_total;
          break;
      }
    }
    if (seed_violated) ++report.violated_seeds;
    if (!seed.error.empty()) {
      ++report.error_seeds;
      if (seed.error_kind == "timeout") ++report.timeout_seeds;
    }
    if (seed.attempts > 1) ++report.retried_seeds;
    report.injected_faults_total += seed.injected_faults;
    for (std::size_t i = 0;
         i < seed.prop_true_counts.size() && i < report.coverage.size(); ++i) {
      report.coverage[i].true_steps += seed.prop_true_counts[i];
    }
    for (PropositionCoverage& cov : report.coverage) {
      cov.total_steps += seed.steps;
    }
    report.total_steps += seed.steps;
    report.total_statements += seed.statements;
    report.total_draws += seed.draws;
  }
  if (config.collect_metrics) {
    report.has_metrics = true;
    for (const SeedResult& seed : report.seeds) {
      report.metrics.merge(seed.metrics);
    }
    report.metrics.counters["campaign.seeds"] = report.seeds.size();
  }
  if (!config.trace_dir.empty()) {
    // Trace files are written here, on the calling thread after all results
    // are in and in ascending seed order, so the on-disk bytes are as
    // scheduling-independent as the in-memory results.
    std::filesystem::create_directories(config.trace_dir);
    for (const SeedResult& seed : report.seeds) {
      const std::filesystem::path path =
          std::filesystem::path(config.trace_dir) /
          ("seed_" + std::to_string(seed.seed) + ".trace.jsonl");
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << seed.trace_jsonl;
      if (!out) {
        throw std::runtime_error("campaign: cannot write trace file " +
                                 path.string());
      }
    }
  }
}

}  // namespace esv::campaign

// Per-seed campaign execution, factored out of the thread-pool runner so the
// in-process pool (campaign::run) and the out-of-process worker shards
// (src/dist/, tools/esv-worker) execute seeds through exactly the same code
// path. Determinism across deployment shapes — any --jobs count, any
// --workers count, or the plain in-process runner — follows from this
// sharing: a SeedResult is a pure function of (CampaignConfig, seed)
// regardless of which process or thread computed it.
//
// Split of responsibilities:
//   prepare_campaign()    validate the whole configuration once (spec parse,
//                         fault-plan parse + resolve, property probe); throws
//                         on configuration errors before any seed runs
//   SeedRunner            one per worker thread; owns an isolated
//                         verification stack and runs seeds with the bounded
//                         infrastructure-retry policy
//   make_report_skeleton  the config-echo half of a CampaignReport
//   finalize_report       deterministic aggregation over report.seeds in
//                         ascending seed order, metrics merge, and trace_dir
//                         file writing — shared by the pool and the broker
#pragma once

#include <memory>
#include <string>

#include "campaign/campaign.hpp"
#include "fault/fault_plan.hpp"
#include "spec/specfile.hpp"

namespace esv::campaign {

/// Validated, immutable, shareable campaign state. One instance serves every
/// worker thread of a process; workers never mutate it.
struct CampaignSetup {
  spec::SpecFile specfile;
  fault::FaultPlan plan;  // merged --faults + spec fault lines, resolved
  std::vector<std::string> property_names;
  std::vector<std::string> proposition_names;
  /// FaultPlan::digest() of the resolved plan; empty on nominal campaigns.
  /// Stamped into SeedResult::fault_plan_digest of every errored seed so a
  /// crash report names the exact plan needed to reproduce it.
  std::string plan_digest;
};

/// Validates the configuration (approach, seed range, spec, program, fault
/// plan) and resolves everything that can fail before a single seed runs.
/// Throws spec::SpecError, minic::SemaError, fault::FaultPlanError,
/// std::invalid_argument, ... on configuration errors.
CampaignSetup prepare_campaign(const CampaignConfig& config);

/// One per worker thread. Construction compiles a private copy of the
/// program (no AST, lowering, or code image is ever shared between threads);
/// a construction failure is latched and reported per seed as an
/// infrastructure error instead of thrown, so sibling workers are unaffected.
class SeedRunner {
 public:
  SeedRunner(const CampaignConfig& config, const CampaignSetup& setup);
  ~SeedRunner();
  SeedRunner(const SeedRunner&) = delete;
  SeedRunner& operator=(const SeedRunner&) = delete;

  /// Runs one seed under the bounded retry policy: infrastructure errors are
  /// retried up to config.seed_retries times, SUT faults and timeouts are
  /// results. Never throws; every failure is captured in the SeedResult.
  SeedResult run_seed(std::uint64_t seed);

 private:
  struct Stack;
  SeedResult run_attempt(std::uint64_t seed);

  const CampaignConfig& config_;
  const CampaignSetup& setup_;
  std::unique_ptr<Stack> stack_;
  std::string stack_error_;
};

/// Fills the configuration-echo fields of a report (seed range, approach,
/// mode, property names, fault-campaign header) and pre-sizes the seed slots.
CampaignReport make_report_skeleton(const CampaignConfig& config,
                                    const CampaignSetup& setup);

/// Aggregates report.seeds (which must hold one slot per seed, ascending) on
/// the calling thread: per-property tallies, merged coverage, totals, the
/// merged metrics snapshot, and the trace_dir files. Byte-identical output
/// for any schedule that produced the same per-seed results.
void finalize_report(const CampaignConfig& config, const CampaignSetup& setup,
                     CampaignReport& report);

}  // namespace esv::campaign

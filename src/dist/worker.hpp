// esv-worker: the out-of-process campaign shard executor. The broker
// (src/dist/broker.*) spawns one esv-worker per --workers slot; each worker
// connects back over the broker's Unix-domain socket, receives the campaign
// configuration in the HELLO reply, runs `jobs` compute threads over the
// seeds it is ASSIGNed, and streams one RESULT frame per finished seed.
// Crash isolation is the point: a seed that takes the whole process down
// (stack overflow, OOM kill, a real segfault in the verification stack)
// costs only the seeds in flight on this worker, which the broker
// re-dispatches elsewhere.
#pragma once

namespace esv::dist {

/// Entry point of the esv-worker tool. Expects:
///   esv-worker --connect=SOCKET_PATH --id=N --generation=G
/// Returns 2 on usage errors; on transport loss or SHUTDOWN the process
/// exits directly (it has nothing to clean up by design).
int worker_main(int argc, char** argv);

}  // namespace esv::dist

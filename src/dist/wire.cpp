#include "dist/wire.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

#include "chaos/chaos.hpp"

namespace esv::dist {

// --- Json ----------------------------------------------------------------

namespace {

class JsonParserImpl;

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing data after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw WireError("wire json: " + message + " at offset " +
                    std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Json value;
        value.type_ = Json::Type::kString;
        value.scalar_ = parse_string();
        return value;
      }
      case 't': {
        if (!consume("true")) fail("bad literal");
        Json value;
        value.type_ = Json::Type::kBool;
        value.bool_ = true;
        return value;
      }
      case 'f': {
        if (!consume("false")) fail("bad literal");
        Json value;
        value.type_ = Json::Type::kBool;
        value.bool_ = false;
        return value;
      }
      case 'n': {
        if (!consume("null")) fail("bad literal");
        return Json{};
      }
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json value;
    value.type_ = Json::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      value.members_[std::move(key)] = parse_value();
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return value;
      }
      fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json value;
    value.type_ = Json::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    for (;;) {
      value.items_.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return value;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          // The writers only \u-escape control characters; decode the full
          // BMP anyway so foreign-but-valid frames do not wedge the stream.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    Json value;
    value.type_ = Json::Type::kNumber;
    value.scalar_ = std::string(text_.substr(start, pos_ - start));
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Json Json::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

namespace {

[[noreturn]] void type_error(const char* wanted) {
  throw WireError(std::string("wire json: value is not ") + wanted);
}

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("a bool");
  return bool_;
}

std::uint64_t Json::as_u64() const {
  if (type_ != Type::kNumber) type_error("a number");
  std::uint64_t out = 0;
  const auto result =
      std::from_chars(scalar_.data(), scalar_.data() + scalar_.size(), out);
  if (result.ec != std::errc{} ||
      result.ptr != scalar_.data() + scalar_.size()) {
    type_error("an unsigned integer");
  }
  return out;
}

double Json::as_double() const {
  if (type_ != Type::kNumber) type_error("a number");
  try {
    return std::stod(scalar_);
  } catch (const std::exception&) {
    type_error("a double");
  }
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("a string");
  return scalar_;
}

const std::vector<Json>& Json::items() const {
  if (type_ != Type::kArray) type_error("an array");
  return items_;
}

bool Json::has(const std::string& key) const {
  return type_ == Type::kObject && members_.count(key) != 0;
}

const std::map<std::string, Json>& Json::members() const {
  if (type_ != Type::kObject) type_error("an object");
  return members_;
}

const Json& Json::at(const std::string& key) const {
  if (type_ != Type::kObject) type_error("an object");
  const auto it = members_.find(key);
  if (it == members_.end()) {
    throw WireError("wire json: missing member \"" + key + "\"");
  }
  return it->second;
}

std::uint64_t Json::u64_or(const std::string& key,
                           std::uint64_t fallback) const {
  return has(key) ? at(key).as_u64() : fallback;
}

double Json::double_or(const std::string& key, double fallback) const {
  return has(key) ? at(key).as_double() : fallback;
}

std::string Json::string_or(const std::string& key,
                            const std::string& fallback) const {
  return has(key) ? at(key).as_string() : fallback;
}

bool Json::bool_or(const std::string& key, bool fallback) const {
  return has(key) ? at(key).as_bool() : fallback;
}

void json_escape_into(std::string& out, std::string_view text) {
  static const char* kHex = "0123456789abcdef";
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
}

std::string json_string(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  json_escape_into(out, text);
  out += '"';
  return out;
}

// --- framing -------------------------------------------------------------

namespace {

// CRC-32 (IEEE 802.3, reflected, init/final-xor 0xFFFFFFFF) — the same
// function as journal::crc32, duplicated here because the journal layer
// links *on top of* the wire layer.
struct Crc32Table {
  std::uint32_t entries[256];
  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) != 0 ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
      }
      entries[i] = crc;
    }
  }
};

std::uint32_t frame_crc32(const char* data, std::size_t size) {
  static const Crc32Table table;
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^
          table.entries[(crc ^ static_cast<unsigned char>(data[i])) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

std::uint32_t decode_u32(const char* bytes) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[2]))
             << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[3]))
             << 24;
}

void encode_u32(std::uint32_t value, char* bytes) {
  bytes[0] = static_cast<char>(value & 0xFF);
  bytes[1] = static_cast<char>((value >> 8) & 0xFF);
  bytes[2] = static_cast<char>((value >> 16) & 0xFF);
  bytes[3] = static_cast<char>((value >> 24) & 0xFF);
}

// Per-syscall transfer cap (set_io_chunk_limit_for_test); 0 = unlimited.
std::atomic<std::size_t> io_chunk_limit{0};

std::size_t chunked(std::size_t size) {
  const std::size_t limit = io_chunk_limit.load(std::memory_order_relaxed);
  return limit != 0 && limit < size ? limit : size;
}

void send_all(int fd, const char* data, std::size_t size) {
  while (size != 0) {
    const ssize_t sent = ::send(fd, data, chunked(size), MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      throw WireError(std::string("wire: send failed: ") +
                      std::strerror(errno));
    }
    if (sent == 0) {
      // Cannot happen for a SOCK_STREAM send of size > 0, but if it ever
      // did, looping forever would be the worst possible response.
      throw WireError("wire: send made no progress");
    }
    data += sent;
    size -= static_cast<std::size_t>(sent);
  }
}

bool recv_all(int fd, char* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, chunked(size - got), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw WireError(std::string("wire: recv failed: ") +
                      std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF at a frame boundary
      throw WireError("wire: EOF inside a frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void check_frame_crc(const char* payload, std::uint32_t length,
                     std::uint32_t expected) {
  if (frame_crc32(payload, length) != expected) {
    throw WireError("wire: frame crc mismatch (stream corruption)");
  }
}

}  // namespace

void set_io_chunk_limit_for_test(std::size_t bytes) {
  io_chunk_limit.store(bytes, std::memory_order_relaxed);
}

void FrameReader::feed(const char* data, std::size_t size) {
  buffer_.append(data, size);
}

std::optional<std::string> FrameReader::next() {
  if (buffer_.size() < kFrameHeaderBytes) return std::nullopt;
  const std::uint32_t length = decode_u32(buffer_.data());
  if (length > kMaxFramePayload) {
    throw WireError("wire: frame length " + std::to_string(length) +
                    " exceeds the protocol maximum");
  }
  if (buffer_.size() < kFrameHeaderBytes + length) return std::nullopt;
  const std::uint32_t expected_crc = decode_u32(buffer_.data() + 4);
  check_frame_crc(buffer_.data() + kFrameHeaderBytes, length, expected_crc);
  std::string payload = buffer_.substr(kFrameHeaderBytes, length);
  buffer_.erase(0, kFrameHeaderBytes + length);
  return payload;
}

void write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    throw WireError("wire: frame payload too large");
  }
  char header[kFrameHeaderBytes];
  encode_u32(static_cast<std::uint32_t>(payload.size()), header);
  encode_u32(frame_crc32(payload.data(), payload.size()), header + 4);
  // One buffered send per frame so concurrent writers (worker threads and
  // the heartbeat) interleave at frame granularity under their send mutex.
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  frame.append(header, kFrameHeaderBytes);
  frame.append(payload);

  if (const chaos::Injection injection =
          chaos::at(chaos::Point::kWireTx, payload.size())) {
    switch (injection.action) {
      case chaos::Action::kDrop:
        return;  // the frame vanishes in flight
      case chaos::Action::kTruncate:
        send_all(fd, frame.data(), frame.size() / 2);
        return;
      case chaos::Action::kCorrupt:
        // Flip a payload byte; the header CRC still covers the original
        // bytes, so the receiver must detect this.
        frame[kFrameHeaderBytes + injection.arg] =
            static_cast<char>(frame[kFrameHeaderBytes + injection.arg] ^ 0x20);
        break;
      case chaos::Action::kDuplicate:
        send_all(fd, frame.data(), frame.size());
        break;  // falls through to the normal (second) send
      case chaos::Action::kDelay:
        std::this_thread::sleep_for(std::chrono::milliseconds(injection.arg));
        break;
      case chaos::Action::kShortSend:
        for (std::size_t i = 0; i < frame.size(); ++i) {
          send_all(fd, frame.data() + i, 1);
        }
        return;
      default:
        break;
    }
  }
  send_all(fd, frame.data(), frame.size());
}

std::optional<std::string> read_frame(int fd) {
  char header[kFrameHeaderBytes];
  if (!recv_all(fd, header, kFrameHeaderBytes)) return std::nullopt;
  const std::uint32_t length = decode_u32(header);
  if (length > kMaxFramePayload) {
    throw WireError("wire: frame length " + std::to_string(length) +
                    " exceeds the protocol maximum");
  }
  std::string payload(length, '\0');
  if (length != 0 && !recv_all(fd, payload.data(), length)) {
    throw WireError("wire: EOF inside a frame");
  }
  check_frame_crc(payload.data(), length, decode_u32(header + 4));
  return payload;
}

// --- domain serialization ------------------------------------------------

namespace {

void append_u64(std::string& out, std::uint64_t value) {
  out += std::to_string(value);
}

std::string double_text(double value) {
  // Timing-only fields; round-tripping to ~17 significant digits is enough.
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

}  // namespace

std::string config_to_json(const campaign::CampaignConfig& config) {
  std::string out = "{";
  out += "\"program_source\":" + json_string(config.program_source);
  out += ",\"spec_text\":" + json_string(config.spec_text);
  out += ",\"approach\":";
  append_u64(out, static_cast<std::uint64_t>(config.approach));
  out += ",\"mode\":";
  out += json_string(sctc::monitor_mode_name(config.mode));
  out += ",\"max_steps\":";
  append_u64(out, config.max_steps);
  out += ",\"jobs\":";
  append_u64(out, config.jobs);
  out += ",\"witness_depth\":";
  append_u64(out, config.witness_depth);
  out += ",\"fault_plan_text\":" + json_string(config.fault_plan_text);
  out += ",\"fault_log_limit\":";
  append_u64(out, config.fault_log_limit);
  out += ",\"collect_metrics\":";
  out += config.collect_metrics ? "true" : "false";
  out += ",\"capture_traces\":";
  out += config.capture_traces ? "true" : "false";
  out += ",\"seed_timeout_seconds\":" + double_text(config.seed_timeout_seconds);
  out += ",\"seed_retries\":";
  append_u64(out, config.seed_retries);
  out += ",\"seed_mem_limit_mb\":";
  append_u64(out, config.seed_mem_limit_mb);
  // on_result and resume_results stay host-side by design: journaling and
  // resume are orchestrator concerns, workers only ever compute fresh seeds.
  out += "}";
  return out;
}

campaign::CampaignConfig config_from_json(const Json& json) {
  campaign::CampaignConfig config;
  config.program_source = json.at("program_source").as_string();
  config.spec_text = json.at("spec_text").as_string();
  config.approach = static_cast<int>(json.at("approach").as_u64());
  if (const auto mode = sctc::parse_monitor_mode(json.at("mode").as_string())) {
    config.mode = *mode;
  } else {
    throw WireError("config: unknown monitor mode \"" +
                    json.at("mode").as_string() + "\"");
  }
  config.max_steps = json.at("max_steps").as_u64();
  config.jobs = static_cast<unsigned>(json.u64_or("jobs", 1));
  config.witness_depth =
      static_cast<std::size_t>(json.u64_or("witness_depth", 0));
  config.fault_plan_text = json.string_or("fault_plan_text", "");
  config.fault_log_limit =
      static_cast<std::size_t>(json.u64_or("fault_log_limit", 64));
  config.collect_metrics = json.bool_or("collect_metrics", false);
  config.capture_traces = json.bool_or("capture_traces", false);
  config.seed_timeout_seconds = json.double_or("seed_timeout_seconds", 0.0);
  config.seed_retries = static_cast<unsigned>(json.u64_or("seed_retries", 0));
  config.seed_mem_limit_mb = json.u64_or("seed_mem_limit_mb", 0);
  return config;
}

std::string metrics_to_json(const obs::MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ',';
    out += json_string(name);
    out += ':';
    append_u64(out, value);
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : snapshot.histograms) {
    if (!first) out += ',';
    out += json_string(name);
    out += ":{\"count\":";
    append_u64(out, hist.count);
    out += ",\"sum\":";
    append_u64(out, hist.sum);
    out += ",\"min\":";
    append_u64(out, hist.min);
    out += ",\"max\":";
    append_u64(out, hist.max);
    out += ",\"timing\":";
    out += hist.timing ? "true" : "false";
    out += ",\"buckets\":[";
    for (std::size_t i = 0; i < hist.buckets.size(); ++i) {
      if (i != 0) out += ',';
      append_u64(out, hist.buckets[i]);
    }
    out += "]}";
    first = false;
  }
  out += "}}";
  return out;
}

obs::MetricsSnapshot metrics_from_json(const Json& json) {
  obs::MetricsSnapshot snapshot;
  if (json.has("counters")) {
    for (const auto& [name, value] : json.at("counters").members()) {
      snapshot.counters[name] = value.as_u64();
    }
  }
  if (json.has("histograms")) {
    for (const auto& [name, value] : json.at("histograms").members()) {
      obs::HistogramData data;
      data.count = value.at("count").as_u64();
      data.sum = value.at("sum").as_u64();
      data.min = value.at("min").as_u64();
      data.max = value.at("max").as_u64();
      data.timing = value.bool_or("timing", false);
      for (const Json& bucket : value.at("buckets").items()) {
        data.buckets.push_back(bucket.as_u64());
      }
      snapshot.histograms[name] = std::move(data);
    }
  }
  return snapshot;
}

std::string seed_result_to_json(const campaign::SeedResult& result) {
  std::string out = "{\"seed\":";
  append_u64(out, result.seed);
  out += ",\"properties\":[";
  for (std::size_t i = 0; i < result.properties.size(); ++i) {
    const campaign::PropertyOutcome& p = result.properties[i];
    if (i != 0) out += ',';
    out += "{\"verdict\":";
    append_u64(out, static_cast<std::uint64_t>(p.verdict));
    out += ",\"decided_at_step\":";
    append_u64(out, p.decided_at_step);
    out += ",\"fault_class\":";
    append_u64(out, static_cast<std::uint64_t>(p.fault_class));
    out += "}";
  }
  out += "],\"steps\":";
  append_u64(out, result.steps);
  out += ",\"statements\":";
  append_u64(out, result.statements);
  out += ",\"draws\":";
  append_u64(out, result.draws);
  out += ",\"finished\":";
  out += result.finished ? "true" : "false";
  out += ",\"error\":" + json_string(result.error);
  out += ",\"error_kind\":" + json_string(result.error_kind);
  out += ",\"attempts\":";
  append_u64(out, result.attempts);
  out += ",\"witness\":" + json_string(result.witness);
  out += ",\"prop_true_counts\":[";
  for (std::size_t i = 0; i < result.prop_true_counts.size(); ++i) {
    if (i != 0) out += ',';
    append_u64(out, result.prop_true_counts[i]);
  }
  out += "],\"injected_faults\":";
  append_u64(out, result.injected_faults);
  out += ",\"fault_log\":" + json_string(result.fault_log);
  out += ",\"fault_plan_digest\":" + json_string(result.fault_plan_digest);
  out += ",\"metrics\":" + metrics_to_json(result.metrics);
  out += ",\"trace_jsonl\":" + json_string(result.trace_jsonl);
  out += ",\"wall_ms\":" + double_text(result.wall_ms);
  out += "}";
  return out;
}

campaign::SeedResult seed_result_from_json(const Json& json) {
  campaign::SeedResult result;
  result.seed = json.at("seed").as_u64();
  for (const Json& p : json.at("properties").items()) {
    campaign::PropertyOutcome outcome;
    outcome.verdict =
        static_cast<temporal::Verdict>(p.at("verdict").as_u64());
    outcome.decided_at_step = p.at("decided_at_step").as_u64();
    outcome.fault_class =
        static_cast<sctc::FaultClass>(p.at("fault_class").as_u64());
    result.properties.push_back(outcome);
  }
  result.steps = json.at("steps").as_u64();
  result.statements = json.at("statements").as_u64();
  result.draws = json.at("draws").as_u64();
  result.finished = json.at("finished").as_bool();
  result.error = json.at("error").as_string();
  result.error_kind = json.at("error_kind").as_string();
  result.attempts = static_cast<unsigned>(json.at("attempts").as_u64());
  result.witness = json.at("witness").as_string();
  for (const Json& count : json.at("prop_true_counts").items()) {
    result.prop_true_counts.push_back(count.as_u64());
  }
  result.injected_faults = json.at("injected_faults").as_u64();
  result.fault_log = json.at("fault_log").as_string();
  result.fault_plan_digest = json.string_or("fault_plan_digest", "");
  result.metrics = metrics_from_json(json.at("metrics"));
  result.trace_jsonl = json.at("trace_jsonl").as_string();
  result.wall_ms = json.double_or("wall_ms", 0.0);
  return result;
}

}  // namespace esv::dist

// Frame vocabulary of the broker <-> worker protocol (docs/DISTRIBUTED.md).
//
// Every frame is one length-prefixed JSON object with a "type" member. Six
// frame kinds exist:
//
//   HELLO      worker -> broker   {"type":"hello","worker":N,"generation":N,
//                                  "pid":N,"protocol":1}
//              broker -> worker   {"type":"hello","protocol":1,
//                                  "config":{...}}  (campaign config reply)
//   ASSIGN     broker -> worker   {"type":"assign","seeds":[S,...]}
//   RESULT     worker -> broker   {"type":"result","result":{SeedResult}}
//   METRICS    worker -> broker   {"type":"metrics","metrics":{snapshot}}
//   HEARTBEAT  worker -> broker   {"type":"heartbeat","queued":N,"busy":N}
//   SHUTDOWN   broker -> worker   {"type":"shutdown"}
//
// The protocol is strictly broker-driven: workers never originate work, and
// a worker that receives SHUTDOWN replies with one final METRICS frame and
// exits. Unknown frame types are a WireError (stream corruption), not an
// extension point — bump kProtocolVersion instead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dist/wire.hpp"

namespace esv::dist {

// Version 2 added the payload CRC-32 to the frame header (wire.hpp).
constexpr std::uint64_t kProtocolVersion = 2;

enum class FrameKind {
  kHello,
  kAssign,
  kResult,
  kMetrics,
  kHeartbeat,
  kShutdown,
};

struct Frame {
  FrameKind kind = FrameKind::kHello;
  Json body;
};

/// Parses one frame payload; throws WireError on malformed JSON, a missing
/// "type", or an unknown frame kind.
Frame parse_frame(std::string_view payload);

std::string make_worker_hello(unsigned worker, unsigned generation, int pid);
std::string make_broker_hello(const campaign::CampaignConfig& config);
std::string make_assign(const std::vector<std::uint64_t>& seeds);
std::string make_result(const campaign::SeedResult& result);
std::string make_metrics(const obs::MetricsSnapshot& snapshot);
std::string make_heartbeat(std::uint64_t queued, std::uint64_t busy);
std::string make_shutdown();

}  // namespace esv::dist

// Campaign broker: runs a multi-seed campaign across out-of-process worker
// shards (tools/esv-worker) with crash isolation. The broker owns a Unix
// domain socket, spawns `config.workers` worker processes, shards the seed
// range to them with a work-stealing scheduler, and merges the streamed
// RESULT frames into the same CampaignReport the in-process runner builds —
// finalized by the shared campaign::finalize_report, so every deterministic
// rendering is byte-identical for any workers x jobs combination and for the
// in-process runner.
//
// Failure containment (the failure matrix in docs/DISTRIBUTED.md):
//   * worker crash (exit, signal, SIGKILL) — its in-flight seeds are
//     re-dispatched to surviving workers under config.seed_retries; the slot
//     respawns up to BrokerOptions::max_respawns times
//   * worker hang — no frame within heartbeat_timeout_seconds is treated as
//     a crash: SIGKILL, then the crash path above
//   * re-dispatch budget exhausted, or every worker dead with no respawns
//     left — the affected seeds become deterministic `infrastructure`-kind
//     SeedResults; the campaign itself still completes
#pragma once

#include <string>

#include "campaign/campaign.hpp"

namespace esv::dist {

struct BrokerOptions {
  /// Respawn budget per worker slot (a slot that keeps dying stays dead
  /// after this many respawns).
  unsigned max_respawns = 2;
  /// A worker silent for this long (no result, metrics, or heartbeat; the
  /// worker side heartbeats every 200ms) is SIGKILLed and treated as
  /// crashed. Also bounds the spawn -> HELLO handshake.
  double heartbeat_timeout_seconds = 30.0;
  /// How long to wait after SHUTDOWN for the final METRICS frames before
  /// killing stragglers.
  double shutdown_grace_seconds = 5.0;
  /// Seeds per ASSIGN frame; 0 picks clamp(count / (workers * 4), 1, 64).
  std::uint64_t shard_size = 0;
};

/// Resolves the esv-worker binary: $ESV_WORKER_BIN if set, else the
/// `esv-worker` sibling of the running executable (/proc/self/exe). Returns
/// an empty string when neither resolves to an executable file.
std::string default_worker_binary();

/// Runs `config` distributed over config.workers processes (clamped to at
/// least 1 and at most the seed count). Throws std::invalid_argument when no
/// worker binary can be resolved, plus everything campaign::run throws on
/// configuration errors (the broker validates the config before spawning).
campaign::CampaignReport run_distributed(const campaign::CampaignConfig& config);
campaign::CampaignReport run_distributed(const campaign::CampaignConfig& config,
                                         const BrokerOptions& options);

}  // namespace esv::dist

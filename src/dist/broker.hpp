// Campaign broker: runs a multi-seed campaign across out-of-process worker
// shards (tools/esv-worker) with crash isolation. The broker owns a Unix
// domain socket, spawns `config.workers` worker processes, shards the seed
// range to them with a work-stealing scheduler, and merges the streamed
// RESULT frames into the same CampaignReport the in-process runner builds —
// finalized by the shared campaign::finalize_report, so every deterministic
// rendering is byte-identical for any workers x jobs combination and for the
// in-process runner.
//
// Failure containment (the matrices in docs/DISTRIBUTED.md and
// docs/RESILIENCE.md):
//   * worker crash (exit, signal, SIGKILL) — its in-flight seeds are
//     re-dispatched to surviving workers under config.seed_retries, and the
//     slot respawns up to BrokerOptions::max_respawns times; both waits use
//     exponential backoff with deterministic jitter
//   * worker hang — no frame within heartbeat_timeout_seconds is treated as
//     a crash: SIGKILL, then the crash path above. An optional progress
//     watchdog additionally kills workers holding seeds when no RESULT has
//     landed anywhere for progress_timeout_seconds
//   * lost ASSIGN — a worker heartbeating idle while seeds are booked to it
//     gets its booking re-sent (duplicate RESULTs are deduped)
//   * every worker dead with no respawns left — the broker degrades: the
//     remaining seeds run in-process on --jobs threads and the report gains
//     an operational `degraded` flag (degrade_in_process=false restores the
//     old behaviour: deterministic `infrastructure`-kind abandonment)
//   * per-seed re-dispatch budget exhausted — that seed becomes a
//     deterministic `infrastructure`-kind SeedResult (poison-seed guard)
//   * config.campaign_timeout_seconds exceeded — structured abort: the
//     remaining seeds get deterministic deadline captures and the report is
//     marked deadline_exceeded
#pragma once

#include <string>

#include "campaign/campaign.hpp"

namespace esv::dist {

struct BrokerOptions {
  /// Respawn budget per worker slot (a slot that keeps dying stays dead
  /// after this many respawns).
  unsigned max_respawns = 2;
  /// A worker silent for this long (no result, metrics, or heartbeat; the
  /// worker side heartbeats every 200ms) is SIGKILLed and treated as
  /// crashed. Also bounds the spawn -> HELLO handshake.
  double heartbeat_timeout_seconds = 30.0;
  /// How long to wait after SHUTDOWN for the final METRICS frames before
  /// killing stragglers.
  double shutdown_grace_seconds = 5.0;
  /// Seeds per ASSIGN frame; 0 picks clamp(count / (workers * 4), 1, 64).
  std::uint64_t shard_size = 0;

  /// Exponential backoff for worker respawns and crashed-seed re-dispatch:
  /// attempt n (0-based) waits base * 2^n seconds, capped, then jittered
  /// deterministically into [50%, 100%] of that (seeded by backoff_seed).
  double backoff_base_seconds = 0.05;
  double backoff_cap_seconds = 2.0;
  std::uint64_t backoff_seed = 1;

  /// Progress watchdog: when > 0 and no RESULT has landed for this long
  /// while seeds are booked to workers, every worker holding seeds is
  /// killed (and recovered through the normal crash path). Catches lost
  /// work that heartbeats alone would keep alive forever. 0 disables.
  double progress_timeout_seconds = 0.0;
  /// A connected worker heartbeating queued=0/busy=0 while seeds are booked
  /// to it lost an ASSIGN in flight; its booking is re-sent after this long
  /// (rate limited per ASSIGN). Duplicate results are deduped, so this is
  /// always safe.
  double reassign_after_seconds = 1.0;
  /// When every slot is dead with no respawn budget left, finish the
  /// remaining seeds in-process instead of abandoning them
  /// (docs/RESILIENCE.md "graceful degradation").
  bool degrade_in_process = true;

  /// Self-chaos plan forwarded to every spawned worker via ESV_CHAOS_PLAN /
  /// ESV_CHAOS_SEED (docs/RESILIENCE.md). Empty forwards nothing — and
  /// scrubs any inherited chaos environment so chaos never leaks into
  /// child processes of a clean campaign.
  std::string chaos_plan_text;
  std::uint64_t chaos_seed = 1;
};

/// Resolves the esv-worker binary: $ESV_WORKER_BIN if set, else the
/// `esv-worker` sibling of the running executable (/proc/self/exe). Returns
/// an empty string when neither resolves to an executable file.
std::string default_worker_binary();

/// Runs `config` distributed over config.workers processes (clamped to at
/// least 1 and at most the seed count). Throws std::invalid_argument when no
/// worker binary can be resolved, plus everything campaign::run throws on
/// configuration errors (the broker validates the config before spawning).
campaign::CampaignReport run_distributed(const campaign::CampaignConfig& config);
campaign::CampaignReport run_distributed(const campaign::CampaignConfig& config,
                                         const BrokerOptions& options);

}  // namespace esv::dist

#include "dist/broker.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "campaign/seed_runner.hpp"
#include "dist/protocol.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace esv::dist {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point then) {
  return std::chrono::duration<double>(Clock::now() - then).count();
}

struct WorkerSlot {
  unsigned id = 0;
  unsigned generation = 0;
  pid_t pid = -1;
  bool alive = false;      // process running (not yet reaped)
  bool kill_sent = false;  // SIGKILL already delivered this incarnation
  bool retired = false;    // respawn budget exhausted; stays down
  unsigned respawns = 0;

  int fd = -1;
  bool connected = false;
  FrameReader reader;
  /// Seed *indices* dispatched to this incarnation and not yet resulted.
  std::deque<std::uint64_t> assigned;
  Clock::time_point last_seen{};
};

struct PendingConn {
  int fd = -1;
  FrameReader reader;
};

class Broker {
 public:
  Broker(const campaign::CampaignConfig& config, const BrokerOptions& options)
      : config_(config),
        options_(options),
        setup_(campaign::prepare_campaign(config)) {
    // MSG_NOSIGNAL only covers send(); a worker vanishing between poll() and
    // any other write path would still raise SIGPIPE and kill the broker.
    // Ignoring it process-wide turns every such race into a clean WireError.
    std::signal(SIGPIPE, SIG_IGN);
    count_ = config.seed_hi - config.seed_lo + 1;
    jobs_ = config.jobs < 1 ? 1 : config.jobs;
    std::uint64_t workers = config.workers < 1 ? 1 : config.workers;
    workers_ = static_cast<unsigned>(std::min<std::uint64_t>(workers, count_));
    shard_ = options.shard_size != 0
                 ? options.shard_size
                 : std::clamp<std::uint64_t>(count_ / (workers_ * 4), 1, 64);

    binary_ = config.worker_binary.empty() ? default_worker_binary()
                                           : config.worker_binary;
    if (binary_.empty() || ::access(binary_.c_str(), X_OK) != 0) {
      throw std::invalid_argument(
          "dist: cannot resolve an executable esv-worker binary (set "
          "ESV_WORKER_BIN or install esv-worker next to the running "
          "executable)" +
          (binary_.empty() ? std::string()
                           : "; tried '" + binary_ + "'"));
    }

    // What crosses the wire: trace_dir stays broker-side (files are written
    // by finalize_report after the merge), so workers just capture traces.
    // Checkpointing stays broker-side too — workers always compute fresh.
    wire_config_ = config;
    wire_config_.capture_traces =
        config.capture_traces || !config.trace_dir.empty();
    wire_config_.on_result = nullptr;
    wire_config_.resume_results.clear();

    report_ = campaign::make_report_skeleton(config, setup_);
    report_.jobs = jobs_;
    filled_.assign(count_, 0);
    crash_count_.assign(count_, 0);
    // Seeds recovered from a checkpoint journal fill their slots up front;
    // they are never dispatched and never re-journaled.
    for (const campaign::SeedResult& recovered : config.resume_results) {
      if (recovered.seed < config.seed_lo || recovered.seed > config.seed_hi) {
        continue;
      }
      const std::uint64_t index = recovered.seed - config.seed_lo;
      if (filled_[index]) continue;
      report_.seeds[index] = recovered;
      filled_[index] = 1;
      ++filled_count_;
    }
    for (std::uint64_t i = 0; i < count_; ++i) {
      if (!filled_[i]) pending_.push_back(i);
    }

    open_socket();
    slots_.resize(workers_);
    for (unsigned i = 0; i < workers_; ++i) slots_[i].id = i;
  }

  ~Broker() { cleanup(); }

  campaign::CampaignReport run() {
    Clock::time_point start = Clock::now();
    // A fully resumed campaign has nothing left to dispatch: don't spawn.
    if (filled_count_ < count_) {
      for (WorkerSlot& slot : slots_) spawn(slot);
      event_loop();
    }
    shutdown_workers();

    report_.distributed = true;
    report_.workers = workers_;
    obs::MetricsSnapshot dist = metrics_.snapshot();
    dist.merge(worker_metrics_);
    report_.dist_metrics = std::move(dist);
    report_.dist_events_jsonl = events_.text();
    campaign::finalize_report(config_, setup_, report_);
    report_.wall_seconds = seconds_since(start);
    return std::move(report_);
  }

 private:
  // --- socket plumbing ---------------------------------------------------

  void open_socket() {
    std::string base = "/tmp";
    if (const char* tmpdir = std::getenv("TMPDIR")) {
      // sun_path is ~108 bytes; fall back to /tmp when TMPDIR is too deep.
      if (std::strlen(tmpdir) > 0 && std::strlen(tmpdir) < 60) base = tmpdir;
    }
    std::string tmpl = base + "/esv-dist.XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) == nullptr) {
      throw std::runtime_error("dist: mkdtemp failed for broker socket dir");
    }
    sock_dir_ = buf.data();
    sock_path_ = sock_dir_ + "/broker.sock";

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) throw std::runtime_error("dist: socket() failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (sock_path_.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("dist: broker socket path too long");
    }
    std::memcpy(addr.sun_path, sock_path_.c_str(), sock_path_.size() + 1);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(listen_fd_, static_cast<int>(workers_) + 4) != 0) {
      throw std::runtime_error("dist: cannot bind broker socket " +
                               sock_path_);
    }
    int flags = ::fcntl(listen_fd_, F_GETFL, 0);
    ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK);
  }

  void cleanup() {
    for (PendingConn& conn : pending_conns_) {
      if (conn.fd >= 0) ::close(conn.fd);
    }
    pending_conns_.clear();
    for (WorkerSlot& slot : slots_) {
      if (slot.fd >= 0) ::close(slot.fd);
      slot.fd = -1;
      if (slot.alive && slot.pid > 0) {
        ::kill(slot.pid, SIGKILL);
        int status = 0;
        while (::waitpid(slot.pid, &status, 0) < 0 && errno == EINTR) {
        }
        slot.alive = false;
      }
    }
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    if (!sock_path_.empty()) ::unlink(sock_path_.c_str());
    if (!sock_dir_.empty()) ::rmdir(sock_dir_.c_str());
    sock_path_.clear();
    sock_dir_.clear();
  }

  // --- worker lifecycle --------------------------------------------------

  void spawn(WorkerSlot& slot) {
    pid_t pid = ::fork();
    if (pid < 0) {
      slot.retired = true;
      events_.worker_event("spawn_failed", slot.id, slot.generation,
                           "fork failed");
      return;
    }
    if (pid == 0) {
      std::string connect_arg = "--connect=" + sock_path_;
      std::string id_arg = "--id=" + std::to_string(slot.id);
      std::string gen_arg = "--generation=" + std::to_string(slot.generation);
      ::execl(binary_.c_str(), "esv-worker", connect_arg.c_str(),
              id_arg.c_str(), gen_arg.c_str(), static_cast<char*>(nullptr));
      ::_exit(127);  // exec failed; the parent reaps this as a crash
    }
    slot.pid = pid;
    slot.alive = true;
    slot.kill_sent = false;
    slot.connected = false;
    slot.fd = -1;
    slot.reader = FrameReader();
    slot.last_seen = Clock::now();
    metrics_.counter("dist.spawns").add();
    events_.worker_event(slot.generation == 0 ? "spawn" : "respawn", slot.id,
                         slot.generation);
    if (slot.generation != 0) metrics_.counter("dist.respawns").add();
  }

  void kill_slot(WorkerSlot& slot) {
    if (slot.alive && slot.pid > 0 && !slot.kill_sent) {
      ::kill(slot.pid, SIGKILL);
      slot.kill_sent = true;
    }
  }

  void reap_workers() {
    for (WorkerSlot& slot : slots_) {
      if (!slot.alive || slot.pid <= 0) continue;
      int status = 0;
      pid_t reaped = ::waitpid(slot.pid, &status, WNOHANG);
      if (reaped != slot.pid) continue;
      slot.alive = false;
      std::string reason;
      if (WIFEXITED(status)) {
        reason = "exited with status " + std::to_string(WEXITSTATUS(status));
      } else if (WIFSIGNALED(status)) {
        reason = "killed by signal " + std::to_string(WTERMSIG(status));
      } else {
        reason = "stopped";
      }
      on_worker_down(slot, reason);
    }
  }

  void check_timeouts() {
    if (options_.heartbeat_timeout_seconds <= 0.0) return;
    for (WorkerSlot& slot : slots_) {
      if (!slot.alive || slot.kill_sent) continue;
      if (seconds_since(slot.last_seen) < options_.heartbeat_timeout_seconds)
        continue;
      metrics_.counter("dist.timeouts").add();
      events_.worker_event("timeout", slot.id, slot.generation,
                           "no frame within heartbeat timeout");
      kill_slot(slot);  // the reap path classifies it as a crash
    }
  }

  /// The single exit point for a dead incarnation: salvage buffered frames,
  /// re-dispatch or abandon its seeds, and respawn the slot if the budget
  /// allows. Called exactly once per incarnation (from reap_workers).
  void on_worker_down(WorkerSlot& slot, const std::string& reason) {
    if (slot.fd >= 0) {
      // The process is dead, so EOF is guaranteed: drain whatever RESULT /
      // METRICS frames it managed to send before dying.
      drain_fd(slot);
      ::close(slot.fd);
      slot.fd = -1;
    }
    slot.connected = false;
    metrics_.counter("dist.worker_exits").add();
    events_.worker_event("exit", slot.id, slot.generation, reason);
    if (draining_) {
      slot.assigned.clear();
      return;
    }
    for (std::uint64_t index : slot.assigned) {
      if (filled_[index]) continue;
      ++crash_count_[index];
      if (crash_count_[index] <= config_.seed_retries) {
        pending_.push_front(index);
        metrics_.counter("dist.redispatched_seeds").add();
      } else {
        abandon(index,
                "worker crashed while running this seed (" + reason +
                    ") and the --seed-retries re-dispatch budget is spent");
      }
    }
    slot.assigned.clear();
    if (filled_count_ >= count_) return;
    if (slot.respawns >= options_.max_respawns) {
      slot.retired = true;
      return;
    }
    ++slot.respawns;
    ++slot.generation;
    spawn(slot);
  }

  // --- scheduling --------------------------------------------------------

  bool send_to(WorkerSlot& slot, const std::string& payload) {
    try {
      write_frame(slot.fd, payload);
    } catch (const WireError&) {
      ::close(slot.fd);
      slot.fd = -1;
      slot.connected = false;
      kill_slot(slot);  // reap re-dispatches everything it held
      return false;
    }
    metrics_.counter("dist.frames_tx").add();
    metrics_.counter("dist.bytes_tx").add(payload.size() + 4);
    return true;
  }

  /// Keeps a connected worker fed: tops its outstanding set up to a shard
  /// from the pending queue, and when the queue is dry and the worker is
  /// idle, steals the tail of the busiest worker's outstanding seeds. Stolen
  /// seeds stay queued on the victim too (there is no CANCEL frame); the
  /// broker keeps the first RESULT per seed, which is safe because results
  /// are deterministic.
  void top_up(WorkerSlot& slot) {
    if (!slot.connected) return;
    const std::size_t low_water = std::max<std::size_t>(2 * jobs_, 2);
    if (slot.assigned.size() >= low_water) return;

    std::vector<std::uint64_t> seeds;
    while (!pending_.empty() && seeds.size() < shard_) {
      std::uint64_t index = pending_.front();
      pending_.pop_front();
      if (filled_[index]) continue;
      slot.assigned.push_back(index);
      seeds.push_back(config_.seed_lo + index);
    }

    if (seeds.empty() && slot.assigned.empty()) {
      WorkerSlot* victim = nullptr;
      for (WorkerSlot& other : slots_) {
        if (other.id == slot.id || !other.connected) continue;
        if (victim == nullptr ||
            other.assigned.size() > victim->assigned.size()) {
          victim = &other;
        }
      }
      if (victim != nullptr && victim->assigned.size() >= 2) {
        std::size_t take = victim->assigned.size() / 2;
        while (take-- > 0) {
          std::uint64_t index = victim->assigned.back();
          victim->assigned.pop_back();
          slot.assigned.push_back(index);
          seeds.push_back(config_.seed_lo + index);
        }
        metrics_.counter("dist.steals").add();
        metrics_.counter("dist.stolen_seeds").add(seeds.size());
        events_.worker_event("steal", slot.id, slot.generation,
                             std::to_string(seeds.size()) +
                                 " seeds from worker " +
                                 std::to_string(victim->id));
      }
    }

    if (!seeds.empty()) {
      metrics_.counter("dist.assign_frames").add();
      send_to(slot, make_assign(seeds));
    }
  }

  void abandon(std::uint64_t index, const std::string& reason) {
    campaign::SeedResult result;
    result.seed = config_.seed_lo + index;
    result.error = "distributed: " + reason;
    result.error_kind = "infrastructure";
    result.attempts = std::max(1u, crash_count_[index]);
    result.fault_plan_digest = setup_.plan_digest;
    report_.seeds[index] = std::move(result);
    filled_[index] = 1;
    ++filled_count_;
    metrics_.counter("dist.abandoned_seeds").add();
  }

  void abandon_remaining(const std::string& reason) {
    for (std::uint64_t index = 0; index < count_; ++index) {
      if (!filled_[index]) abandon(index, reason);
    }
  }

  // --- frame handling ----------------------------------------------------

  void handle_result(const Json& body) {
    campaign::SeedResult result = seed_result_from_json(body.at("result"));
    if (result.seed < config_.seed_lo || result.seed > config_.seed_hi) return;
    std::uint64_t index = result.seed - config_.seed_lo;
    for (WorkerSlot& slot : slots_) {
      auto it = std::find(slot.assigned.begin(), slot.assigned.end(), index);
      if (it != slot.assigned.end()) slot.assigned.erase(it);
    }
    if (filled_[index]) {
      metrics_.counter("dist.duplicate_results").add();
      return;
    }
    // Write-ahead ordering: the journal record hits the log before the seed
    // is acknowledged as filled, so a broker killed between the two re-runs
    // the seed instead of losing it. Broker-synthesized abandonment results
    // are deliberately NOT journaled — they record a transient infrastructure
    // failure, and a resumed run should retry those seeds, not replay them.
    if (config_.on_result) config_.on_result(result);
    report_.seeds[index] = std::move(result);
    filled_[index] = 1;
    ++filled_count_;
    metrics_.counter("dist.results_rx").add();
  }

  void handle_frame(WorkerSlot& slot, const std::string& payload) {
    slot.last_seen = Clock::now();
    metrics_.counter("dist.frames_rx").add();
    metrics_.counter("dist.bytes_rx").add(payload.size() + 4);
    Frame frame;
    try {
      frame = parse_frame(payload);
    } catch (const WireError&) {
      kill_slot(slot);  // stream corruption: treat the incarnation as dead
      return;
    }
    switch (frame.kind) {
      case FrameKind::kResult:
        handle_result(frame.body);
        break;
      case FrameKind::kMetrics:
        try {
          worker_metrics_.merge(metrics_from_json(frame.body.at("metrics")));
        } catch (const WireError&) {
        }
        break;
      case FrameKind::kHeartbeat:
        metrics_.counter("dist.heartbeats_rx").add();
        metrics_.duration_histogram("dist.worker_queue_depth")
            .record(frame.body.u64_or("queued", 0));
        break;
      default:
        break;  // late HELLO / broker-bound kinds: nothing to do
    }
  }

  /// Reads until EOF on a dead incarnation's socket, salvaging complete
  /// frames. Safe to block: the peer process has exited, so the kernel
  /// delivers the buffered bytes and then EOF.
  void drain_fd(WorkerSlot& slot) {
    char buf[65536];
    for (;;) {
      ssize_t n = ::recv(slot.fd, buf, sizeof buf, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      slot.reader.feed(buf, static_cast<std::size_t>(n));
      while (std::optional<std::string> payload = slot.reader.next()) {
        handle_frame(slot, *payload);
      }
    }
  }

  void attach_worker(PendingConn& conn, const Json& hello) {
    unsigned id = static_cast<unsigned>(hello.u64_or("worker", ~0u));
    unsigned generation =
        static_cast<unsigned>(hello.u64_or("generation", ~0u));
    bool version_ok = hello.u64_or("protocol", 0) == kProtocolVersion;
    WorkerSlot* slot =
        id < slots_.size() && version_ok ? &slots_[id] : nullptr;
    if (slot == nullptr || slot->generation != generation || !slot->alive ||
        slot->connected) {
      ::close(conn.fd);  // stale incarnation or protocol skew
      conn.fd = -1;
      return;
    }
    slot->fd = conn.fd;
    conn.fd = -1;
    slot->reader = std::move(conn.reader);
    slot->connected = true;
    slot->last_seen = Clock::now();
    events_.worker_event("connect", slot->id, slot->generation);
    if (send_to(*slot, make_broker_hello(wire_config_))) {
      // A worker that finishes its handshake while the broker is already
      // draining (it was respawned just before the last seed landed) gets an
      // immediate SHUTDOWN, so the drain never waits out the grace period.
      if (draining_) {
        send_to(*slot, make_shutdown());
      } else {
        top_up(*slot);
      }
    }
  }

  // --- event loop --------------------------------------------------------

  void accept_connections() {
    for (;;) {
      int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN / EWOULDBLOCK: drained
      }
      PendingConn conn;
      conn.fd = fd;
      pending_conns_.push_back(std::move(conn));
    }
  }

  /// One recv() on a readable pre-HELLO connection; a complete HELLO frame
  /// promotes it to its worker slot.
  void read_pending(PendingConn& conn) {
    char buf[4096];
    ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
    if (n < 0 && (errno == EINTR || errno == EAGAIN)) return;
    if (n <= 0) {
      ::close(conn.fd);
      conn.fd = -1;
      return;
    }
    conn.reader.feed(buf, static_cast<std::size_t>(n));
    std::optional<std::string> payload = conn.reader.next();
    if (!payload) return;
    try {
      Frame frame = parse_frame(*payload);
      if (frame.kind == FrameKind::kHello) {
        attach_worker(conn, frame.body);
        return;
      }
    } catch (const WireError&) {
    }
    ::close(conn.fd);  // first frame was not a well-formed HELLO
    conn.fd = -1;
  }

  /// One recv() on a connected worker socket. EOF just closes the fd; seed
  /// accounting waits for the authoritative reap.
  void read_worker(WorkerSlot& slot) {
    char buf[65536];
    ssize_t n = ::recv(slot.fd, buf, sizeof buf, 0);
    if (n < 0 && (errno == EINTR || errno == EAGAIN)) return;
    if (n <= 0) {
      ::close(slot.fd);
      slot.fd = -1;
      slot.connected = false;
      return;
    }
    slot.reader.feed(buf, static_cast<std::size_t>(n));
    while (std::optional<std::string> payload = slot.reader.next()) {
      handle_frame(slot, *payload);
      if (!slot.connected) break;  // handle_frame killed the incarnation
    }
  }

  void poll_io(int timeout_ms) {
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    // Index-based bookkeeping for the pre-HELLO connections: the accept
    // below push_backs into pending_conns_, which can reallocate, so
    // pointers/references taken here would dangle. Accepts only append, so
    // indices below the snapshot count stay stable.
    const std::size_t polled_pending = pending_conns_.size();
    for (PendingConn& conn : pending_conns_) {
      fds.push_back({conn.fd, POLLIN, 0});
    }
    std::vector<WorkerSlot*> slot_order;
    for (WorkerSlot& slot : slots_) {
      if (slot.fd < 0) continue;
      fds.push_back({slot.fd, POLLIN, 0});
      slot_order.push_back(&slot);
    }
    int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready <= 0) return;
    if (fds[0].revents != 0) accept_connections();
    std::size_t cursor = 1;
    for (std::size_t i = 0; i < polled_pending; ++i) {
      PendingConn& conn = pending_conns_[i];
      if (fds[cursor++].revents != 0 && conn.fd >= 0) read_pending(conn);
    }
    for (WorkerSlot* slot : slot_order) {
      if (fds[cursor++].revents != 0 && slot->fd >= 0) read_worker(*slot);
    }
    pending_conns_.erase(
        std::remove_if(pending_conns_.begin(), pending_conns_.end(),
                       [](const PendingConn& conn) { return conn.fd < 0; }),
        pending_conns_.end());
  }

  void event_loop() {
    while (filled_count_ < count_) {
      reap_workers();
      check_timeouts();
      if (filled_count_ >= count_) break;
      bool any_alive = false;
      for (const WorkerSlot& slot : slots_) any_alive |= slot.alive;
      if (!any_alive) {
        abandon_remaining(
            "no live workers remain (respawn budget exhausted)");
        break;
      }
      for (WorkerSlot& slot : slots_) top_up(slot);
      poll_io(100);
    }
  }

  void shutdown_workers() {
    draining_ = true;
    for (WorkerSlot& slot : slots_) {
      if (slot.connected) send_to(slot, make_shutdown());
    }
    Clock::time_point deadline =
        Clock::now() +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(options_.shutdown_grace_seconds));
    for (;;) {
      reap_workers();  // drains each exiting worker's final METRICS frame
      bool any_alive = false;
      for (const WorkerSlot& slot : slots_) any_alive |= slot.alive;
      if (!any_alive) break;
      if (Clock::now() >= deadline) {
        for (WorkerSlot& slot : slots_) {
          if (!slot.alive) continue;
          events_.worker_event("killed_at_shutdown", slot.id, slot.generation);
          kill_slot(slot);
        }
        reap_blocking();
        break;
      }
      poll_io(50);
    }
  }

  void reap_blocking() {
    for (WorkerSlot& slot : slots_) {
      if (!slot.alive || slot.pid <= 0) continue;
      int status = 0;
      while (::waitpid(slot.pid, &status, 0) < 0 && errno == EINTR) {
      }
      slot.alive = false;
      on_worker_down(slot, "killed at shutdown");
    }
  }

  const campaign::CampaignConfig& config_;
  BrokerOptions options_;
  campaign::CampaignSetup setup_;
  campaign::CampaignConfig wire_config_;
  campaign::CampaignReport report_;

  std::uint64_t count_ = 0;
  unsigned jobs_ = 1;
  unsigned workers_ = 1;
  std::uint64_t shard_ = 1;
  std::string binary_;

  std::string sock_dir_;
  std::string sock_path_;
  int listen_fd_ = -1;

  std::vector<WorkerSlot> slots_;
  std::vector<PendingConn> pending_conns_;
  std::deque<std::uint64_t> pending_;  // undispatched seed indices
  std::vector<char> filled_;
  std::vector<unsigned> crash_count_;  // crashes while the seed was in flight
  std::uint64_t filled_count_ = 0;
  bool draining_ = false;

  obs::MetricsRegistry metrics_;
  obs::MetricsSnapshot worker_metrics_;
  obs::TraceWriter events_;
};

}  // namespace

std::string default_worker_binary() {
  if (const char* env = std::getenv("ESV_WORKER_BIN")) {
    if (*env != '\0') return env;
  }
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  std::string path(buf);
  std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return "";
  std::string sibling = path.substr(0, slash + 1) + "esv-worker";
  return ::access(sibling.c_str(), X_OK) == 0 ? sibling : "";
}

campaign::CampaignReport run_distributed(
    const campaign::CampaignConfig& config) {
  return run_distributed(config, BrokerOptions{});
}

campaign::CampaignReport run_distributed(const campaign::CampaignConfig& config,
                                         const BrokerOptions& options) {
  Broker broker(config, options);
  return broker.run();
}

}  // namespace esv::dist

#include "dist/broker.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "campaign/seed_runner.hpp"
#include "chaos/chaos.hpp"
#include "common/rng.hpp"
#include "dist/protocol.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace esv::dist {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point then) {
  return std::chrono::duration<double>(Clock::now() - then).count();
}

struct WorkerSlot {
  unsigned id = 0;
  unsigned generation = 0;
  pid_t pid = -1;
  bool alive = false;      // process running (not yet reaped)
  bool kill_sent = false;  // SIGKILL already delivered this incarnation
  bool retired = false;    // respawn budget exhausted; stays down
  unsigned respawns = 0;
  bool spawn_pending = false;  // respawn scheduled, waiting out the backoff
  Clock::time_point spawn_at{};

  int fd = -1;
  bool connected = false;
  FrameReader reader;
  /// Seed *indices* dispatched to this incarnation and not yet resulted.
  std::deque<std::uint64_t> assigned;
  Clock::time_point last_seen{};
  Clock::time_point last_assign{};  // rate-limits lost-ASSIGN re-sends
};

struct PendingConn {
  int fd = -1;
  FrameReader reader;
};

class Broker {
 public:
  Broker(const campaign::CampaignConfig& config, const BrokerOptions& options)
      : config_(config),
        options_(options),
        setup_(campaign::prepare_campaign(config)),
        backoff_rng_(options.backoff_seed),
        chaos_seed_text_(std::to_string(options.chaos_seed)) {
    // MSG_NOSIGNAL only covers send(); a worker vanishing between poll() and
    // any other write path would still raise SIGPIPE and kill the broker.
    // Ignoring it process-wide turns every such race into a clean WireError.
    std::signal(SIGPIPE, SIG_IGN);
    count_ = config.seed_hi - config.seed_lo + 1;
    jobs_ = config.jobs < 1 ? 1 : config.jobs;
    std::uint64_t workers = config.workers < 1 ? 1 : config.workers;
    workers_ = static_cast<unsigned>(std::min<std::uint64_t>(workers, count_));
    shard_ = options.shard_size != 0
                 ? options.shard_size
                 : std::clamp<std::uint64_t>(count_ / (workers_ * 4), 1, 64);

    binary_ = config.worker_binary.empty() ? default_worker_binary()
                                           : config.worker_binary;
    if (binary_.empty() || ::access(binary_.c_str(), X_OK) != 0) {
      throw std::invalid_argument(
          "dist: cannot resolve an executable esv-worker binary (set "
          "ESV_WORKER_BIN or install esv-worker next to the running "
          "executable)" +
          (binary_.empty() ? std::string()
                           : "; tried '" + binary_ + "'"));
    }

    // What crosses the wire: trace_dir stays broker-side (files are written
    // by finalize_report after the merge), so workers just capture traces.
    // Checkpointing stays broker-side too — workers always compute fresh.
    wire_config_ = config;
    wire_config_.capture_traces =
        config.capture_traces || !config.trace_dir.empty();
    wire_config_.on_result = nullptr;
    wire_config_.resume_results.clear();

    report_ = campaign::make_report_skeleton(config, setup_);
    report_.jobs = jobs_;
    filled_.assign(count_, 0);
    crash_count_.assign(count_, 0);
    // Seeds recovered from a checkpoint journal fill their slots up front;
    // they are never dispatched and never re-journaled.
    for (const campaign::SeedResult& recovered : config.resume_results) {
      if (recovered.seed < config.seed_lo || recovered.seed > config.seed_hi) {
        continue;
      }
      const std::uint64_t index = recovered.seed - config.seed_lo;
      if (filled_[index]) continue;
      report_.seeds[index] = recovered;
      filled_[index] = 1;
      ++filled_count_;
    }
    for (std::uint64_t i = 0; i < count_; ++i) {
      if (!filled_[i]) pending_.push_back(i);
    }

    open_socket();
    slots_.resize(workers_);
    for (unsigned i = 0; i < workers_; ++i) slots_[i].id = i;
  }

  ~Broker() { cleanup(); }

  campaign::CampaignReport run() {
    Clock::time_point start = Clock::now();
    last_progress_ = start;
    if (config_.campaign_timeout_seconds > 0.0) {
      deadline_active_ = true;
      deadline_tp_ = start + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(
                                     config_.campaign_timeout_seconds));
    }
    // A fully resumed campaign has nothing left to dispatch: don't spawn.
    if (filled_count_ < count_) {
      for (WorkerSlot& slot : slots_) spawn(slot);
      event_loop();
    }
    shutdown_workers();
    // Only a deadline abort leaves slots unfilled past the event loop
    // (abandonment and degradation both fill every slot).
    if (filled_count_ < count_) fill_deadline_errors();

    report_.distributed = true;
    report_.workers = workers_;
    obs::MetricsSnapshot dist = metrics_.snapshot();
    dist.merge(worker_metrics_);
    report_.dist_metrics = std::move(dist);
    report_.dist_events_jsonl = events_.text();
    campaign::finalize_report(config_, setup_, report_);
    report_.wall_seconds = seconds_since(start);
    return std::move(report_);
  }

 private:
  // --- socket plumbing ---------------------------------------------------

  void open_socket() {
    std::string base = "/tmp";
    if (const char* tmpdir = std::getenv("TMPDIR")) {
      // sun_path is ~108 bytes; fall back to /tmp when TMPDIR is too deep.
      if (std::strlen(tmpdir) > 0 && std::strlen(tmpdir) < 60) base = tmpdir;
    }
    std::string tmpl = base + "/esv-dist.XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) == nullptr) {
      throw std::runtime_error("dist: mkdtemp failed for broker socket dir");
    }
    sock_dir_ = buf.data();
    sock_path_ = sock_dir_ + "/broker.sock";

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) throw std::runtime_error("dist: socket() failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (sock_path_.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("dist: broker socket path too long");
    }
    std::memcpy(addr.sun_path, sock_path_.c_str(), sock_path_.size() + 1);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(listen_fd_, static_cast<int>(workers_) + 4) != 0) {
      throw std::runtime_error("dist: cannot bind broker socket " +
                               sock_path_);
    }
    int flags = ::fcntl(listen_fd_, F_GETFL, 0);
    ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK);
  }

  void cleanup() {
    for (PendingConn& conn : pending_conns_) {
      if (conn.fd >= 0) ::close(conn.fd);
    }
    pending_conns_.clear();
    for (WorkerSlot& slot : slots_) {
      if (slot.fd >= 0) ::close(slot.fd);
      slot.fd = -1;
      if (slot.alive && slot.pid > 0) {
        ::kill(slot.pid, SIGKILL);
        int status = 0;
        while (::waitpid(slot.pid, &status, 0) < 0 && errno == EINTR) {
        }
        slot.alive = false;
      }
    }
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    if (!sock_path_.empty()) ::unlink(sock_path_.c_str());
    if (!sock_dir_.empty()) ::rmdir(sock_dir_.c_str());
    sock_path_.clear();
    sock_dir_.clear();
  }

  // --- worker lifecycle --------------------------------------------------

  void spawn(WorkerSlot& slot) {
    pid_t pid = ::fork();
    if (pid < 0) {
      slot.retired = true;
      events_.worker_event("spawn_failed", slot.id, slot.generation,
                           "fork failed");
      return;
    }
    if (pid == 0) {
      // Self-chaos propagation: the plan rides the environment, salted on
      // the worker side by id and generation. A chaos-free campaign scrubs
      // the variables so nothing leaks in from the test environment.
      if (!options_.chaos_plan_text.empty()) {
        ::setenv(chaos::kPlanEnv, options_.chaos_plan_text.c_str(), 1);
        ::setenv(chaos::kSeedEnv, chaos_seed_text_.c_str(), 1);
      } else {
        ::unsetenv(chaos::kPlanEnv);
        ::unsetenv(chaos::kSeedEnv);
      }
      std::string connect_arg = "--connect=" + sock_path_;
      std::string id_arg = "--id=" + std::to_string(slot.id);
      std::string gen_arg = "--generation=" + std::to_string(slot.generation);
      ::execl(binary_.c_str(), "esv-worker", connect_arg.c_str(),
              id_arg.c_str(), gen_arg.c_str(), static_cast<char*>(nullptr));
      ::_exit(127);  // exec failed; the parent reaps this as a crash
    }
    slot.pid = pid;
    slot.alive = true;
    slot.kill_sent = false;
    slot.spawn_pending = false;
    slot.connected = false;
    slot.fd = -1;
    slot.reader = FrameReader();
    slot.last_seen = Clock::now();
    metrics_.counter("dist.spawns").add();
    events_.worker_event(slot.generation == 0 ? "spawn" : "respawn", slot.id,
                         slot.generation);
    if (slot.generation != 0) metrics_.counter("dist.respawns").add();
  }

  void kill_slot(WorkerSlot& slot) {
    if (slot.alive && slot.pid > 0 && !slot.kill_sent) {
      ::kill(slot.pid, SIGKILL);
      slot.kill_sent = true;
    }
  }

  void reap_workers() {
    for (WorkerSlot& slot : slots_) {
      if (!slot.alive || slot.pid <= 0) continue;
      int status = 0;
      pid_t reaped = ::waitpid(slot.pid, &status, WNOHANG);
      if (reaped != slot.pid) continue;
      slot.alive = false;
      std::string reason;
      if (WIFEXITED(status)) {
        reason = "exited with status " + std::to_string(WEXITSTATUS(status));
      } else if (WIFSIGNALED(status)) {
        reason = "killed by signal " + std::to_string(WTERMSIG(status));
      } else {
        reason = "stopped";
      }
      on_worker_down(slot, reason);
    }
  }

  void check_timeouts() {
    if (options_.heartbeat_timeout_seconds <= 0.0) return;
    for (WorkerSlot& slot : slots_) {
      if (!slot.alive || slot.kill_sent) continue;
      if (seconds_since(slot.last_seen) < options_.heartbeat_timeout_seconds)
        continue;
      metrics_.counter("dist.timeouts").add();
      events_.worker_event("timeout", slot.id, slot.generation,
                           "no frame within heartbeat timeout");
      kill_slot(slot);  // the reap path classifies it as a crash
    }
  }

  /// The single exit point for a dead incarnation: salvage buffered frames,
  /// re-dispatch or abandon its seeds, and respawn the slot if the budget
  /// allows. Called exactly once per incarnation (from reap_workers).
  void on_worker_down(WorkerSlot& slot, const std::string& reason) {
    if (slot.fd >= 0) {
      // The process is dead, so EOF is guaranteed: drain whatever RESULT /
      // METRICS frames it managed to send before dying.
      drain_fd(slot);
      ::close(slot.fd);
      slot.fd = -1;
    }
    slot.connected = false;
    metrics_.counter("dist.worker_exits").add();
    events_.worker_event("exit", slot.id, slot.generation, reason);
    if (draining_) {
      slot.assigned.clear();
      return;
    }
    for (std::uint64_t index : slot.assigned) {
      if (filled_[index]) continue;
      ++crash_count_[index];
      if (crash_count_[index] <= config_.seed_retries) {
        // Backed-off re-dispatch: a seed that just took a worker down waits
        // out an exponential delay before landing on the next one, so a
        // poison seed cannot saw through the whole fleet in one poll cycle.
        deferred_.push_back(
            {Clock::now() + backoff_delay(crash_count_[index] - 1), index});
        metrics_.counter("dist.redispatched_seeds").add();
      } else {
        abandon(index,
                "worker crashed while running this seed (" + reason +
                    ") and the --seed-retries re-dispatch budget is spent");
      }
    }
    slot.assigned.clear();
    if (filled_count_ >= count_ && deferred_.empty()) return;
    if (slot.respawns >= options_.max_respawns) {
      slot.retired = true;
      return;
    }
    ++slot.respawns;
    ++slot.generation;
    slot.spawn_pending = true;
    slot.spawn_at = Clock::now() + backoff_delay(slot.respawns - 1);
  }

  /// Exponential backoff with deterministic jitter (docs/RESILIENCE.md):
  /// base * 2^attempt capped at the ceiling, scaled into [50%, 100%] by a
  /// draw from the broker's private backoff Rng.
  Clock::duration backoff_delay(unsigned attempt) {
    double delay = options_.backoff_base_seconds;
    for (unsigned i = 0; i < attempt; ++i) {
      if (delay >= options_.backoff_cap_seconds) break;
      delay *= 2.0;
    }
    if (delay > options_.backoff_cap_seconds) {
      delay = options_.backoff_cap_seconds;
    }
    if (delay < 0.0) delay = 0.0;
    delay *= 0.5 +
             0.5 * (static_cast<double>(backoff_rng_.next_below(1024)) /
                    1024.0);
    metrics_.duration_histogram("dist.backoff_ms")
        .record(static_cast<std::uint64_t>(delay * 1000.0));
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(delay));
  }

  /// Moves due re-dispatches from the backoff bench to the pending queue.
  void promote_deferred() {
    const Clock::time_point now = Clock::now();
    for (std::size_t i = 0; i < deferred_.size();) {
      if (deferred_[i].first <= now) {
        pending_.push_front(deferred_[i].second);
        deferred_[i] = deferred_.back();
        deferred_.pop_back();
      } else {
        ++i;
      }
    }
  }

  /// Spawns slots whose respawn backoff has elapsed.
  void maybe_respawn() {
    if (draining_) return;
    const Clock::time_point now = Clock::now();
    for (WorkerSlot& slot : slots_) {
      if (slot.spawn_pending && now >= slot.spawn_at) spawn(slot);
    }
  }

  /// Progress watchdog (BrokerOptions::progress_timeout_seconds): seeds are
  /// booked but no RESULT has landed anywhere for a full window — kill every
  /// worker holding seeds and let the crash path recover the work. This is
  /// the backstop for losses heartbeats cannot see.
  void check_progress() {
    if (options_.progress_timeout_seconds <= 0.0) return;
    bool outstanding = false;
    for (const WorkerSlot& slot : slots_) {
      outstanding |= !slot.assigned.empty();
    }
    if (!outstanding) {
      last_progress_ = Clock::now();
      return;
    }
    if (seconds_since(last_progress_) < options_.progress_timeout_seconds) {
      return;
    }
    for (WorkerSlot& slot : slots_) {
      if (!slot.alive || slot.kill_sent || slot.assigned.empty()) continue;
      metrics_.counter("dist.progress_timeouts").add();
      events_.worker_event("progress_timeout", slot.id, slot.generation,
                           std::to_string(slot.assigned.size()) +
                               " seeds outstanding with no campaign progress");
      kill_slot(slot);
    }
    last_progress_ = Clock::now();
  }

  // --- scheduling --------------------------------------------------------

  bool send_to(WorkerSlot& slot, const std::string& payload) {
    try {
      write_frame(slot.fd, payload);
    } catch (const WireError&) {
      ::close(slot.fd);
      slot.fd = -1;
      slot.connected = false;
      kill_slot(slot);  // reap re-dispatches everything it held
      return false;
    }
    metrics_.counter("dist.frames_tx").add();
    metrics_.counter("dist.bytes_tx").add(payload.size() + kFrameHeaderBytes);
    return true;
  }

  /// Keeps a connected worker fed: tops its outstanding set up to a shard
  /// from the pending queue, and when the queue is dry and the worker is
  /// idle, steals the tail of the busiest worker's outstanding seeds. Stolen
  /// seeds stay queued on the victim too (there is no CANCEL frame); the
  /// broker keeps the first RESULT per seed, which is safe because results
  /// are deterministic.
  void top_up(WorkerSlot& slot) {
    if (!slot.connected) return;
    const std::size_t low_water = std::max<std::size_t>(2 * jobs_, 2);
    if (slot.assigned.size() >= low_water) return;

    std::vector<std::uint64_t> seeds;
    while (!pending_.empty() && seeds.size() < shard_) {
      std::uint64_t index = pending_.front();
      pending_.pop_front();
      if (filled_[index]) continue;
      slot.assigned.push_back(index);
      seeds.push_back(config_.seed_lo + index);
    }

    if (seeds.empty() && slot.assigned.empty()) {
      WorkerSlot* victim = nullptr;
      for (WorkerSlot& other : slots_) {
        if (other.id == slot.id || !other.connected) continue;
        if (victim == nullptr ||
            other.assigned.size() > victim->assigned.size()) {
          victim = &other;
        }
      }
      if (victim != nullptr && victim->assigned.size() >= 2) {
        std::size_t take = victim->assigned.size() / 2;
        while (take-- > 0) {
          std::uint64_t index = victim->assigned.back();
          victim->assigned.pop_back();
          slot.assigned.push_back(index);
          seeds.push_back(config_.seed_lo + index);
        }
        metrics_.counter("dist.steals").add();
        metrics_.counter("dist.stolen_seeds").add(seeds.size());
        events_.worker_event("steal", slot.id, slot.generation,
                             std::to_string(seeds.size()) +
                                 " seeds from worker " +
                                 std::to_string(victim->id));
      }
    }

    if (!seeds.empty()) {
      metrics_.counter("dist.assign_frames").add();
      slot.last_assign = Clock::now();
      send_to(slot, make_assign(seeds));
    }
  }

  void abandon(std::uint64_t index, const std::string& reason) {
    campaign::SeedResult result;
    result.seed = config_.seed_lo + index;
    result.error = "distributed: " + reason;
    result.error_kind = "infrastructure";
    result.attempts = std::max(1u, crash_count_[index]);
    result.fault_plan_digest = setup_.plan_digest;
    report_.seeds[index] = std::move(result);
    filled_[index] = 1;
    ++filled_count_;
    metrics_.counter("dist.abandoned_seeds").add();
  }

  void abandon_remaining(const std::string& reason) {
    for (std::uint64_t index = 0; index < count_; ++index) {
      if (!filled_[index]) abandon(index, reason);
    }
  }

  // --- frame handling ----------------------------------------------------

  void handle_result(const Json& body) {
    campaign::SeedResult result = seed_result_from_json(body.at("result"));
    if (result.seed < config_.seed_lo || result.seed > config_.seed_hi) return;
    std::uint64_t index = result.seed - config_.seed_lo;
    for (WorkerSlot& slot : slots_) {
      auto it = std::find(slot.assigned.begin(), slot.assigned.end(), index);
      if (it != slot.assigned.end()) slot.assigned.erase(it);
    }
    if (filled_[index]) {
      metrics_.counter("dist.duplicate_results").add();
      return;
    }
    // Write-ahead ordering: the journal record hits the log before the seed
    // is acknowledged as filled, so a broker killed between the two re-runs
    // the seed instead of losing it. Broker-synthesized abandonment results
    // are deliberately NOT journaled — they record a transient infrastructure
    // failure, and a resumed run should retry those seeds, not replay them.
    if (config_.on_result) config_.on_result(result);
    report_.seeds[index] = std::move(result);
    filled_[index] = 1;
    ++filled_count_;
    last_progress_ = Clock::now();
    metrics_.counter("dist.results_rx").add();
  }

  void handle_frame(WorkerSlot& slot, const std::string& payload) {
    slot.last_seen = Clock::now();
    metrics_.counter("dist.frames_rx").add();
    metrics_.counter("dist.bytes_rx").add(payload.size() + kFrameHeaderBytes);
    Frame frame;
    try {
      frame = parse_frame(payload);
    } catch (const WireError&) {
      kill_slot(slot);  // stream corruption: treat the incarnation as dead
      return;
    }
    switch (frame.kind) {
      case FrameKind::kResult:
        handle_result(frame.body);
        break;
      case FrameKind::kMetrics:
        try {
          worker_metrics_.merge(metrics_from_json(frame.body.at("metrics")));
        } catch (const WireError&) {
        }
        break;
      case FrameKind::kHeartbeat: {
        metrics_.counter("dist.heartbeats_rx").add();
        const std::uint64_t queued = frame.body.u64_or("queued", 0);
        metrics_.duration_histogram("dist.worker_queue_depth").record(queued);
        // Lost-ASSIGN recovery: the worker says it is completely idle, yet
        // seeds are booked to this incarnation — an ASSIGN never arrived.
        // Re-send the booking (rate limited); duplicate RESULTs are deduped,
        // so a merely-slow worker costs a redundant computation, never a
        // wrong report.
        if (!draining_ && queued == 0 && frame.body.u64_or("busy", 0) == 0 &&
            !slot.assigned.empty() && options_.reassign_after_seconds > 0.0 &&
            seconds_since(slot.last_assign) >=
                options_.reassign_after_seconds) {
          std::vector<std::uint64_t> seeds;
          for (std::uint64_t index : slot.assigned) {
            seeds.push_back(config_.seed_lo + index);
          }
          metrics_.counter("dist.reassigns").add();
          events_.worker_event("reassign", slot.id, slot.generation,
                               std::to_string(seeds.size()) +
                                   " booked seeds re-sent to an idle worker");
          slot.last_assign = Clock::now();
          send_to(slot, make_assign(seeds));
        }
        break;
      }
      default:
        break;  // late HELLO / broker-bound kinds: nothing to do
    }
  }

  /// Reads until EOF on a dead incarnation's socket, salvaging complete
  /// frames. Safe to block: the peer process has exited, so the kernel
  /// delivers the buffered bytes and then EOF.
  void drain_fd(WorkerSlot& slot) {
    char buf[65536];
    try {
      for (;;) {
        ssize_t n = ::recv(slot.fd, buf, sizeof buf, 0);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) break;
        slot.reader.feed(buf, static_cast<std::size_t>(n));
        while (std::optional<std::string> payload = slot.reader.next()) {
          handle_frame(slot, *payload);
        }
      }
    } catch (const WireError&) {
      // Corrupt tail on a dead worker's stream: stop salvaging; the seeds
      // it still held re-dispatch through the normal crash path.
    }
  }

  void attach_worker(PendingConn& conn, const Json& hello) {
    unsigned id = static_cast<unsigned>(hello.u64_or("worker", ~0u));
    unsigned generation =
        static_cast<unsigned>(hello.u64_or("generation", ~0u));
    bool version_ok = hello.u64_or("protocol", 0) == kProtocolVersion;
    WorkerSlot* slot =
        id < slots_.size() && version_ok ? &slots_[id] : nullptr;
    if (slot == nullptr || slot->generation != generation || !slot->alive ||
        slot->connected) {
      ::close(conn.fd);  // stale incarnation or protocol skew
      conn.fd = -1;
      return;
    }
    slot->fd = conn.fd;
    conn.fd = -1;
    slot->reader = std::move(conn.reader);
    slot->connected = true;
    slot->last_seen = Clock::now();
    events_.worker_event("connect", slot->id, slot->generation);
    if (send_to(*slot, make_broker_hello(wire_config_))) {
      // A worker that finishes its handshake while the broker is already
      // draining (it was respawned just before the last seed landed) gets an
      // immediate SHUTDOWN, so the drain never waits out the grace period.
      if (draining_) {
        send_to(*slot, make_shutdown());
      } else {
        top_up(*slot);
      }
    }
  }

  // --- event loop --------------------------------------------------------

  void accept_connections() {
    for (;;) {
      int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN / EWOULDBLOCK: drained
      }
      PendingConn conn;
      conn.fd = fd;
      pending_conns_.push_back(std::move(conn));
    }
  }

  /// One recv() on a readable pre-HELLO connection; a complete HELLO frame
  /// promotes it to its worker slot.
  void read_pending(PendingConn& conn) {
    char buf[4096];
    ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
    if (n < 0 && (errno == EINTR || errno == EAGAIN)) return;
    if (n <= 0) {
      ::close(conn.fd);
      conn.fd = -1;
      return;
    }
    conn.reader.feed(buf, static_cast<std::size_t>(n));
    std::optional<std::string> payload;
    try {
      payload = conn.reader.next();
    } catch (const WireError&) {
      ::close(conn.fd);  // corrupt pre-HELLO stream: drop the connection
      conn.fd = -1;
      return;
    }
    if (!payload) return;
    try {
      Frame frame = parse_frame(*payload);
      if (frame.kind == FrameKind::kHello) {
        attach_worker(conn, frame.body);
        return;
      }
    } catch (const WireError&) {
    }
    ::close(conn.fd);  // first frame was not a well-formed HELLO
    conn.fd = -1;
  }

  /// One recv() on a connected worker socket. EOF just closes the fd; seed
  /// accounting waits for the authoritative reap.
  void read_worker(WorkerSlot& slot) {
    char buf[65536];
    ssize_t n = ::recv(slot.fd, buf, sizeof buf, 0);
    if (n < 0 && (errno == EINTR || errno == EAGAIN)) return;
    if (n <= 0) {
      ::close(slot.fd);
      slot.fd = -1;
      slot.connected = false;
      return;
    }
    slot.reader.feed(buf, static_cast<std::size_t>(n));
    try {
      while (std::optional<std::string> payload = slot.reader.next()) {
        handle_frame(slot, *payload);
        if (!slot.connected) break;  // handle_frame killed the incarnation
      }
    } catch (const WireError&) {
      // Framing-level corruption (oversized length or a CRC mismatch): the
      // stream cannot be resynchronized, so the incarnation is killed and
      // its seeds recovered whole through the crash path.
      ::close(slot.fd);
      slot.fd = -1;
      slot.connected = false;
      kill_slot(slot);
    }
  }

  void poll_io(int timeout_ms) {
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    // Index-based bookkeeping for the pre-HELLO connections: the accept
    // below push_backs into pending_conns_, which can reallocate, so
    // pointers/references taken here would dangle. Accepts only append, so
    // indices below the snapshot count stay stable.
    const std::size_t polled_pending = pending_conns_.size();
    for (PendingConn& conn : pending_conns_) {
      fds.push_back({conn.fd, POLLIN, 0});
    }
    std::vector<WorkerSlot*> slot_order;
    for (WorkerSlot& slot : slots_) {
      if (slot.fd < 0) continue;
      fds.push_back({slot.fd, POLLIN, 0});
      slot_order.push_back(&slot);
    }
    int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready <= 0) return;
    if (fds[0].revents != 0) accept_connections();
    std::size_t cursor = 1;
    for (std::size_t i = 0; i < polled_pending; ++i) {
      PendingConn& conn = pending_conns_[i];
      if (fds[cursor++].revents != 0 && conn.fd >= 0) read_pending(conn);
    }
    for (WorkerSlot* slot : slot_order) {
      if (fds[cursor++].revents != 0 && slot->fd >= 0) read_worker(*slot);
    }
    pending_conns_.erase(
        std::remove_if(pending_conns_.begin(), pending_conns_.end(),
                       [](const PendingConn& conn) { return conn.fd < 0; }),
        pending_conns_.end());
  }

  void event_loop() {
    while (filled_count_ < count_) {
      reap_workers();
      check_timeouts();
      check_progress();
      promote_deferred();
      maybe_respawn();
      if (filled_count_ >= count_) break;
      if (deadline_active_ && Clock::now() >= deadline_tp_) {
        // Structured deadline abort: stop dispatching, shut the fleet down,
        // and let run() capture the unfinished seeds deterministically.
        metrics_.counter("dist.deadline_aborts").add();
        events_.campaign_event(
            "deadline", std::to_string(count_ - filled_count_) +
                            " seeds unfinished at --campaign-timeout");
        report_.deadline_exceeded = true;
        break;
      }
      bool any_alive = false;
      bool any_scheduled = false;
      for (const WorkerSlot& slot : slots_) {
        any_alive |= slot.alive;
        any_scheduled |= slot.spawn_pending;
      }
      if (!any_alive && !any_scheduled) {
        if (options_.degrade_in_process) {
          degrade_in_process();
        } else {
          abandon_remaining(
              "no live workers remain (respawn budget exhausted)");
        }
        break;
      }
      for (WorkerSlot& slot : slots_) top_up(slot);
      // Tighten the poll when a backoff timer (re-dispatch or respawn) is
      // pending so due timers fire promptly.
      poll_io(!deferred_.empty() || any_scheduled ? 10 : 100);
    }
  }

  /// Graceful degradation (docs/RESILIENCE.md): every worker slot is dead
  /// with no respawn budget left, so the remaining seeds finish in-process
  /// on jobs_ threads through the same SeedRunner path the workers use. The
  /// per-seed results are identical by construction; only the operational
  /// `degraded` flag and the timing section differ from a healthy run.
  void degrade_in_process() {
    report_.degraded = true;
    metrics_.counter("dist.degradations").add();
    std::vector<std::uint64_t> remaining;
    for (std::uint64_t index = 0; index < count_; ++index) {
      if (!filled_[index]) remaining.push_back(index);
    }
    events_.campaign_event(
        "degraded", std::to_string(remaining.size()) +
                        " seeds moved in-process (no live workers remain "
                        "and the respawn budget is spent)");
    pending_.clear();
    deferred_.clear();
    if (remaining.empty()) return;
    std::atomic<std::size_t> cursor{0};
    std::mutex mutex;
    const unsigned threads = static_cast<unsigned>(
        std::min<std::size_t>(jobs_, remaining.size()));
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        campaign::SeedRunner runner(wire_config_, setup_);
        for (;;) {
          const std::size_t at = cursor.fetch_add(1);
          if (at >= remaining.size()) return;
          if (deadline_active_ && Clock::now() >= deadline_tp_) return;
          const std::uint64_t index = remaining[at];
          campaign::SeedResult result =
              runner.run_seed(config_.seed_lo + index);
          std::lock_guard<std::mutex> lock(mutex);
          if (filled_[index]) continue;
          if (config_.on_result) config_.on_result(result);
          report_.seeds[index] = std::move(result);
          filled_[index] = 1;
          ++filled_count_;
        }
      });
    }
    for (std::thread& thread : pool) thread.join();
  }

  /// Deterministic captures for seeds a deadline abort left unfinished.
  /// These are never journaled (the resume path should recompute them) and
  /// carry error_kind "infrastructure" like abandonment.
  void fill_deadline_errors() {
    report_.deadline_exceeded = true;
    for (std::uint64_t index = 0; index < count_; ++index) {
      if (filled_[index]) continue;
      campaign::SeedResult result;
      result.seed = config_.seed_lo + index;
      result.error =
          "campaign: wall-clock deadline exceeded (--campaign-timeout)";
      result.error_kind = "infrastructure";
      result.attempts = std::max(1u, crash_count_[index]);
      result.fault_plan_digest = setup_.plan_digest;
      report_.seeds[index] = std::move(result);
      filled_[index] = 1;
      ++filled_count_;
      metrics_.counter("dist.deadline_seeds").add();
    }
  }

  void shutdown_workers() {
    draining_ = true;
    for (WorkerSlot& slot : slots_) {
      if (slot.connected) send_to(slot, make_shutdown());
    }
    Clock::time_point deadline =
        Clock::now() +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(options_.shutdown_grace_seconds));
    for (;;) {
      reap_workers();  // drains each exiting worker's final METRICS frame
      bool any_alive = false;
      for (const WorkerSlot& slot : slots_) any_alive |= slot.alive;
      if (!any_alive) break;
      if (Clock::now() >= deadline) {
        for (WorkerSlot& slot : slots_) {
          if (!slot.alive) continue;
          events_.worker_event("killed_at_shutdown", slot.id, slot.generation);
          kill_slot(slot);
        }
        reap_blocking();
        break;
      }
      poll_io(50);
    }
  }

  void reap_blocking() {
    for (WorkerSlot& slot : slots_) {
      if (!slot.alive || slot.pid <= 0) continue;
      int status = 0;
      while (::waitpid(slot.pid, &status, 0) < 0 && errno == EINTR) {
      }
      slot.alive = false;
      on_worker_down(slot, "killed at shutdown");
    }
  }

  const campaign::CampaignConfig& config_;
  BrokerOptions options_;
  campaign::CampaignSetup setup_;
  campaign::CampaignConfig wire_config_;
  campaign::CampaignReport report_;

  std::uint64_t count_ = 0;
  unsigned jobs_ = 1;
  unsigned workers_ = 1;
  std::uint64_t shard_ = 1;
  std::string binary_;

  std::string sock_dir_;
  std::string sock_path_;
  int listen_fd_ = -1;

  std::vector<WorkerSlot> slots_;
  std::vector<PendingConn> pending_conns_;
  std::deque<std::uint64_t> pending_;  // undispatched seed indices
  /// Crashed-seed re-dispatches waiting out their backoff: (due, index).
  std::vector<std::pair<Clock::time_point, std::uint64_t>> deferred_;
  std::vector<char> filled_;
  std::vector<unsigned> crash_count_;  // crashes while the seed was in flight
  std::uint64_t filled_count_ = 0;
  bool draining_ = false;

  common::Rng backoff_rng_;
  std::string chaos_seed_text_;
  Clock::time_point last_progress_{};  // progress-watchdog anchor
  bool deadline_active_ = false;
  Clock::time_point deadline_tp_{};

  obs::MetricsRegistry metrics_;
  obs::MetricsSnapshot worker_metrics_;
  obs::TraceWriter events_;
};

}  // namespace

std::string default_worker_binary() {
  if (const char* env = std::getenv("ESV_WORKER_BIN")) {
    if (*env != '\0') return env;
  }
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  std::string path(buf);
  std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return "";
  std::string sibling = path.substr(0, slash + 1) + "esv-worker";
  return ::access(sibling.c_str(), X_OK) == 0 ? sibling : "";
}

campaign::CampaignReport run_distributed(
    const campaign::CampaignConfig& config) {
  return run_distributed(config, BrokerOptions{});
}

campaign::CampaignReport run_distributed(const campaign::CampaignConfig& config,
                                         const BrokerOptions& options) {
  Broker broker(config, options);
  return broker.run();
}

}  // namespace esv::dist

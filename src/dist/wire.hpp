// Wire layer of the distributed campaign runner (docs/DISTRIBUTED.md):
//
//   * a minimal JSON value type — just enough to parse the protocol's own
//     output; the repo's serializers are hand-written streams, and the wire
//     must round-trip them losslessly (uint64-exact numbers, escaped
//     strings), which rules out double-based general-purpose parsers
//   * length-prefixed framing: every frame is a 4-byte little-endian payload
//     length, a 4-byte little-endian CRC-32 of the payload, then one JSON
//     object. The CRC turns any in-flight byte corruption into a WireError —
//     a killed worker incarnation and a re-dispatched seed — instead of a
//     silently wrong result (docs/RESILIENCE.md)
//   * lossless serialization of the domain types that cross the process
//     boundary: CampaignConfig (broker -> worker), SeedResult and
//     MetricsSnapshot (worker -> broker)
//
// Framing and JSON are transport-agnostic: FrameReader consumes bytes from
// any stream, and the fd helpers work on any connected SOCK_STREAM socket.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/campaign.hpp"
#include "obs/metrics.hpp"

namespace esv::dist {

/// Raised on malformed frames, malformed JSON, or transport failures.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Minimal immutable JSON value. Numbers keep their source text so uint64
/// payloads (seeds, counters) survive exactly; accessors throw WireError on
/// type mismatches so a corrupt frame becomes a clean protocol error.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one JSON document (trailing whitespace allowed, nothing else).
  static Json parse(std::string_view text);

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const;
  std::uint64_t as_u64() const;
  double as_double() const;
  const std::string& as_string() const;
  const std::vector<Json>& items() const;  // arrays

  /// Object member access. at() throws WireError when the key is absent.
  bool has(const std::string& key) const;
  const Json& at(const std::string& key) const;
  const std::map<std::string, Json>& members() const;  // objects

  /// Lenient object accessors for optional fields.
  std::uint64_t u64_or(const std::string& key, std::uint64_t fallback) const;
  double double_or(const std::string& key, double fallback) const;
  std::string string_or(const std::string& key,
                        const std::string& fallback) const;
  bool bool_or(const std::string& key, bool fallback) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  std::string scalar_;  // number text or string value
  std::vector<Json> items_;
  std::map<std::string, Json> members_;
  friend class JsonParser;
};

/// Escapes `text` for embedding in a JSON string literal (same escaping as
/// the report/trace renderers: ", \, control characters).
void json_escape_into(std::string& out, std::string_view text);
/// `"..."` — a complete escaped JSON string literal.
std::string json_string(std::string_view text);

// --- framing -------------------------------------------------------------

/// Hard ceiling on a single frame; a length beyond this is treated as stream
/// corruption rather than an allocation request.
constexpr std::uint32_t kMaxFramePayload = 256u * 1024u * 1024u;

/// Frame header: u32 little-endian payload length + u32 little-endian
/// payload CRC-32 (same polynomial as journal::crc32).
constexpr std::size_t kFrameHeaderBytes = 8;

/// Test/chaos seam: caps the byte count of every send(2)/recv(2) syscall so
/// the partial-transfer reassembly paths run deterministically under test.
/// 0 (the default) restores unlimited transfers. Not for production use.
void set_io_chunk_limit_for_test(std::size_t bytes);

/// Incremental frame decoder for poll()-driven readers: feed() raw bytes,
/// next() pops complete payloads.
class FrameReader {
 public:
  void feed(const char* data, std::size_t size);
  std::optional<std::string> next();

 private:
  std::string buffer_;
};

/// Writes one frame (blocking, loops over partial sends, suppresses
/// SIGPIPE). Throws WireError when the peer is gone.
void write_frame(int fd, std::string_view payload);

/// Blocking read of one frame. Returns nullopt on a clean EOF at a frame
/// boundary; throws WireError on mid-frame EOF or transport errors.
std::optional<std::string> read_frame(int fd);

// --- domain serialization ------------------------------------------------

std::string config_to_json(const campaign::CampaignConfig& config);
campaign::CampaignConfig config_from_json(const Json& json);

std::string seed_result_to_json(const campaign::SeedResult& result);
campaign::SeedResult seed_result_from_json(const Json& json);

std::string metrics_to_json(const obs::MetricsSnapshot& snapshot);
obs::MetricsSnapshot metrics_from_json(const Json& json);

}  // namespace esv::dist

#include "dist/protocol.hpp"

namespace esv::dist {

Frame parse_frame(std::string_view payload) {
  Frame frame;
  frame.body = Json::parse(payload);
  const std::string& type = frame.body.at("type").as_string();
  if (type == "hello") {
    frame.kind = FrameKind::kHello;
  } else if (type == "assign") {
    frame.kind = FrameKind::kAssign;
  } else if (type == "result") {
    frame.kind = FrameKind::kResult;
  } else if (type == "metrics") {
    frame.kind = FrameKind::kMetrics;
  } else if (type == "heartbeat") {
    frame.kind = FrameKind::kHeartbeat;
  } else if (type == "shutdown") {
    frame.kind = FrameKind::kShutdown;
  } else {
    throw WireError("protocol: unknown frame type \"" + type + "\"");
  }
  return frame;
}

std::string make_worker_hello(unsigned worker, unsigned generation, int pid) {
  std::string out = "{\"type\":\"hello\",\"worker\":";
  out += std::to_string(worker);
  out += ",\"generation\":";
  out += std::to_string(generation);
  out += ",\"pid\":";
  out += std::to_string(pid);
  out += ",\"protocol\":";
  out += std::to_string(kProtocolVersion);
  out += "}";
  return out;
}

std::string make_broker_hello(const campaign::CampaignConfig& config) {
  std::string out = "{\"type\":\"hello\",\"protocol\":";
  out += std::to_string(kProtocolVersion);
  out += ",\"config\":";
  out += config_to_json(config);
  out += "}";
  return out;
}

std::string make_assign(const std::vector<std::uint64_t>& seeds) {
  std::string out = "{\"type\":\"assign\",\"seeds\":[";
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(seeds[i]);
  }
  out += "]}";
  return out;
}

std::string make_result(const campaign::SeedResult& result) {
  return "{\"type\":\"result\",\"result\":" + seed_result_to_json(result) +
         "}";
}

std::string make_metrics(const obs::MetricsSnapshot& snapshot) {
  return "{\"type\":\"metrics\",\"metrics\":" + metrics_to_json(snapshot) +
         "}";
}

std::string make_heartbeat(std::uint64_t queued, std::uint64_t busy) {
  return "{\"type\":\"heartbeat\",\"queued\":" + std::to_string(queued) +
         ",\"busy\":" + std::to_string(busy) + "}";
}

std::string make_shutdown() { return "{\"type\":\"shutdown\"}"; }

}  // namespace esv::dist

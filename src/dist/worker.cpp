#include "dist/worker.hpp"

#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <exception>
#include <fcntl.h>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "campaign/seed_runner.hpp"
#include "chaos/chaos.hpp"
#include "dist/protocol.hpp"
#include "obs/metrics.hpp"

namespace esv::dist {
namespace {

struct WorkerState {
  int fd = -1;
  unsigned id = 0;
  unsigned generation = 0;

  // One mutex serializes every outbound frame: results from the compute
  // threads, heartbeats from the heartbeat thread, the final metrics frame.
  std::mutex send_mutex;
  obs::MetricsRegistry metrics;

  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<std::uint64_t> queue;  // assigned seeds not yet picked up
  bool closed = false;              // no more ASSIGNs will arrive
  std::atomic<std::uint64_t> busy{0};
  std::atomic<bool> stop_heartbeat{false};
};

void send_payload(WorkerState& state, const std::string& payload) {
  std::lock_guard<std::mutex> lock(state.send_mutex);
  write_frame(state.fd, payload);
  state.metrics.counter("dist.worker.frames_tx").add();
  state.metrics.counter("dist.worker.bytes_tx")
      .add(payload.size() + kFrameHeaderBytes);
}

/// Test hook: ESV_WORKER_TEST_CRASH_SEED=<seed> makes a generation-0 worker
/// die with SIGKILL the moment it picks up that seed, exactly like a real
/// mid-seed crash. ESV_WORKER_TEST_CRASH_LATCH=<path> arms the hook at most
/// once across the whole campaign (the first worker to reach the seed
/// O_CREAT|O_EXCLs the latch file and dies; everyone after sees the file and
/// runs the seed normally), so crash tests converge no matter which worker
/// the seed lands on first.
void maybe_test_crash(const WorkerState& state, std::uint64_t seed) {
  if (state.generation != 0) return;
  const char* crash_seed = std::getenv("ESV_WORKER_TEST_CRASH_SEED");
  if (crash_seed == nullptr || std::strtoull(crash_seed, nullptr, 10) != seed)
    return;
  if (const char* latch = std::getenv("ESV_WORKER_TEST_CRASH_LATCH")) {
    int fd = ::open(latch, O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0) return;  // someone already crashed on this seed
    ::close(fd);
  }
  ::raise(SIGKILL);
}

// ASan maps terabytes of shadow memory, which makes an address-space ceiling
// meaningless; the guard compiles to a no-op there.
#if defined(__SANITIZE_ADDRESS__)
#define ESV_WORKER_NO_AS_CEILING 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ESV_WORKER_NO_AS_CEILING 1
#endif
#endif

/// Per-seed address-space ceiling (--seed-mem-limit). RLIMIT_AS is
/// process-wide, so the ceiling is expressed as *headroom above the worker's
/// baseline* VM size — measured from /proc/self/statm the first time a seed
/// arms the guard — and is held while any compute thread is inside a seed: a
/// refcount sets the soft limit on the first entry and restores the original
/// on the last exit. A seed that outgrows the ceiling gets std::bad_alloc
/// from the verification stack's allocations, which the seed runner
/// classifies as a structured "sut" error capture; the shard itself (and
/// every other seed on it) survives. Best-effort: a failing setrlimit
/// disables the guard rather than the worker.
class SeedMemCeiling {
 public:
  explicit SeedMemCeiling(std::uint64_t limit_mb) : limit_mb_(limit_mb) {}

  void enter() {
#ifndef ESV_WORKER_NO_AS_CEILING
    if (limit_mb_ == 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (++active_ != 1 || broken_) return;
    rlimit current{};
    if (::getrlimit(RLIMIT_AS, &current) != 0) {
      broken_ = true;
      return;
    }
    saved_soft_ = current.rlim_cur;
    rlim_t ceiling = baseline_bytes() + (limit_mb_ << 20);
    if (current.rlim_max != RLIM_INFINITY && ceiling > current.rlim_max) {
      ceiling = current.rlim_max;
    }
    rlimit wanted = current;
    wanted.rlim_cur = ceiling;
    if (::setrlimit(RLIMIT_AS, &wanted) != 0) broken_ = true;
#endif
  }

  void leave() {
#ifndef ESV_WORKER_NO_AS_CEILING
    if (limit_mb_ == 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (--active_ != 0 || broken_) return;
    rlimit current{};
    if (::getrlimit(RLIMIT_AS, &current) == 0) {
      current.rlim_cur = saved_soft_;
      ::setrlimit(RLIMIT_AS, &current);
    }
#endif
  }

 private:
#ifndef ESV_WORKER_NO_AS_CEILING
  rlim_t baseline_bytes() {
    if (baseline_ != 0) return baseline_;
    std::uint64_t pages = 0;
    if (std::FILE* statm = std::fopen("/proc/self/statm", "r")) {
      if (std::fscanf(statm, "%lu", &pages) != 1) pages = 0;
      std::fclose(statm);
    }
    const long page = ::sysconf(_SC_PAGESIZE);
    baseline_ = pages != 0 && page > 0
                    ? static_cast<rlim_t>(pages) * static_cast<rlim_t>(page)
                    : (static_cast<rlim_t>(256) << 20);  // conservative guess
    return baseline_;
  }

  std::mutex mutex_;
  unsigned active_ = 0;
  bool broken_ = false;
  rlim_t saved_soft_ = RLIM_INFINITY;
  rlim_t baseline_ = 0;
#endif
  const std::uint64_t limit_mb_;
};

class SeedMemCeilingScope {
 public:
  explicit SeedMemCeilingScope(SeedMemCeiling& ceiling) : ceiling_(ceiling) {
    ceiling_.enter();
  }
  ~SeedMemCeilingScope() { ceiling_.leave(); }

 private:
  SeedMemCeiling& ceiling_;
};

void compute_loop(WorkerState& state, const campaign::CampaignConfig& config,
                  const campaign::CampaignSetup& setup,
                  SeedMemCeiling& mem_ceiling) {
  campaign::SeedRunner runner(config, setup);
  obs::Counter& seeds_run = state.metrics.counter("dist.worker.seeds_run");
  for (;;) {
    std::uint64_t seed = 0;
    {
      std::unique_lock<std::mutex> lock(state.queue_mutex);
      state.queue_cv.wait(
          lock, [&] { return state.closed || !state.queue.empty(); });
      if (state.queue.empty()) return;
      seed = state.queue.front();
      state.queue.pop_front();
    }
    state.busy.fetch_add(1, std::memory_order_relaxed);
    maybe_test_crash(state, seed);
    // Self-chaos worker.seed point (docs/RESILIENCE.md): crash reproduces a
    // real mid-seed death (the broker re-dispatches under --seed-retries);
    // stall exercises the heartbeat-keeps-us-alive / progress-watchdog
    // boundary without killing anything.
    if (const chaos::Injection injection =
            chaos::at(chaos::Point::kWorkerSeed)) {
      if (injection.action == chaos::Action::kCrash) ::raise(SIGKILL);
      if (injection.action == chaos::Action::kStall) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(injection.arg));
      }
    }
    campaign::SeedResult result;
    {
      SeedMemCeilingScope ceiling(mem_ceiling);
      result = runner.run_seed(seed);
    }
    seeds_run.add();
    try {
      send_payload(state, make_result(result));
    } catch (const WireError&) {
      std::_Exit(0);  // broker is gone; nothing left to report to
    }
    state.busy.fetch_sub(1, std::memory_order_relaxed);
  }
}

void heartbeat_loop(WorkerState& state) {
  while (!state.stop_heartbeat.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    std::uint64_t queued = 0;
    {
      std::lock_guard<std::mutex> lock(state.queue_mutex);
      queued = state.queue.size();
    }
    // Self-chaos worker.heartbeat point: a late beat must at worst look like
    // a silent worker to the broker (heartbeat timeout -> kill -> respawn),
    // never corrupt anything.
    if (const chaos::Injection injection =
            chaos::at(chaos::Point::kWorkerHeartbeat)) {
      if (injection.action == chaos::Action::kDelay) {
        std::this_thread::sleep_for(std::chrono::milliseconds(injection.arg));
      }
    }
    try {
      send_payload(state, make_heartbeat(
                              queued, state.busy.load(std::memory_order_relaxed)));
      state.metrics.counter("dist.worker.heartbeats_tx").add();
    } catch (const WireError&) {
      std::_Exit(0);
    }
  }
}

int fail_usage(const char* message) {
  std::fprintf(stderr, "esv-worker: %s\n", message);
  std::fprintf(stderr,
               "usage: esv-worker --connect=SOCKET --id=N --generation=G\n");
  return 2;
}

}  // namespace

int worker_main(int argc, char** argv) {
  std::string socket_path;
  unsigned id = 0;
  unsigned generation = 0;
  bool have_id = false;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--connect=", 0) == 0) {
      socket_path = arg.substr(10);
    } else if (arg.rfind("--id=", 0) == 0) {
      id = static_cast<unsigned>(
          std::strtoul(std::string(arg.substr(5)).c_str(), nullptr, 10));
      have_id = true;
    } else if (arg.rfind("--generation=", 0) == 0) {
      generation = static_cast<unsigned>(
          std::strtoul(std::string(arg.substr(13)).c_str(), nullptr, 10));
    } else {
      return fail_usage("unknown argument");
    }
  }
  if (socket_path.empty() || !have_id) {
    return fail_usage("--connect and --id are required");
  }

  // A broker that dies mid-read turns our next send into SIGPIPE; ignoring
  // it here (not just in the esv-worker shim) means every embedding of
  // worker_main converts a dead peer into a WireError and a structured exit
  // instead of a signal death the broker would misread as a worker crash.
  std::signal(SIGPIPE, SIG_IGN);

  // Self-chaos (docs/RESILIENCE.md): the broker forwards --chaos through the
  // environment; injections here are salted by worker id and generation.
  chaos::ChaosEngine* chaos_engine = chaos::install_from_env(id, generation);

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return fail_usage("socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return fail_usage("socket path too long");
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return fail_usage("cannot connect to broker socket");
  }

  WorkerState state;
  state.fd = fd;
  state.id = id;
  state.generation = generation;
  // Worker-side chaos counters ride home in the final METRICS frame and
  // surface under the report's operational "dist" block.
  if (chaos_engine != nullptr) chaos_engine->set_metrics(&state.metrics);

  campaign::CampaignConfig config;
  try {
    write_frame(fd, make_worker_hello(id, generation, ::getpid()));
    std::optional<std::string> reply = read_frame(fd);
    if (!reply) return 1;  // broker vanished before configuring us
    Frame frame = parse_frame(*reply);
    if (frame.kind != FrameKind::kHello ||
        frame.body.at("protocol").as_u64() != kProtocolVersion) {
      return fail_usage("protocol mismatch in broker hello");
    }
    config = config_from_json(frame.body.at("config"));
  } catch (const WireError& error) {
    std::fprintf(stderr, "esv-worker: handshake failed: %s\n", error.what());
    return 1;
  }

  // The broker validated this exact config before spawning us, so a setup
  // failure here means broker/worker version skew — die loudly and let the
  // broker's crash path classify the assigned seeds.
  campaign::CampaignSetup setup;
  try {
    setup = campaign::prepare_campaign(config);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "esv-worker: campaign setup failed: %s\n",
                 error.what());
    return 1;
  }

  unsigned jobs = config.jobs < 1 ? 1 : config.jobs;
  SeedMemCeiling mem_ceiling(config.seed_mem_limit_mb);
  std::vector<std::thread> compute;
  compute.reserve(jobs);
  for (unsigned i = 0; i < jobs; ++i) {
    compute.emplace_back([&state, &config, &setup, &mem_ceiling] {
      compute_loop(state, config, setup, mem_ceiling);
    });
  }
  std::thread heartbeat([&state] { heartbeat_loop(state); });

  // Main thread: the inbound frame loop. ASSIGN feeds the queue; SHUTDOWN
  // triggers the final METRICS frame and a direct exit (compute threads are
  // either idle or working on seeds the broker has already written off).
  for (;;) {
    std::optional<std::string> payload;
    try {
      payload = read_frame(fd);
    } catch (const WireError&) {
      std::_Exit(0);
    }
    if (!payload) std::_Exit(0);  // broker closed the stream
    state.metrics.counter("dist.worker.frames_rx").add();
    state.metrics.counter("dist.worker.bytes_rx")
        .add(payload->size() + kFrameHeaderBytes);
    Frame frame;
    try {
      frame = parse_frame(*payload);
    } catch (const WireError& error) {
      std::fprintf(stderr, "esv-worker: bad frame: %s\n", error.what());
      std::_Exit(1);
    }
    switch (frame.kind) {
      case FrameKind::kAssign: {
        state.metrics.counter("dist.worker.assigns_rx").add();
        std::lock_guard<std::mutex> lock(state.queue_mutex);
        for (const Json& seed : frame.body.at("seeds").items()) {
          state.queue.push_back(seed.as_u64());
        }
        state.queue_cv.notify_all();
        break;
      }
      case FrameKind::kShutdown: {
        // Drain in-flight sends, then report metrics and exit. Seeds still
        // queued or running are intentionally dropped: the broker only sends
        // SHUTDOWN once every seed slot is filled.
        state.stop_heartbeat.store(true, std::memory_order_relaxed);
        try {
          send_payload(state, make_metrics(state.metrics.snapshot()));
        } catch (const WireError&) {
        }
        std::_Exit(0);
      }
      default:
        break;  // HELLO/RESULT/METRICS/HEARTBEAT are not broker->worker
    }
  }
}

}  // namespace esv::dist

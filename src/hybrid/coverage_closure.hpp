// Hybrid simulation + formal verification — the paper's stated future work:
// "In future, we would like to combine the simulation-based verification and
// formal verification approach in order to improve the coverage."
//
// The engine closes return-code coverage holes that constrained-random
// simulation cannot (or is very unlikely to) hit:
//
//   1. RANDOM PHASE   — simulate the derived ESW model with constrained-
//                       random stimulus until the coverage of the target
//                       operation stops improving.
//   2. FORMAL PHASE   — for each still-unobserved return code, snapshot the
//                       *live* simulation state (all scalar globals) and ask
//                       the bounded model checker for inputs that reach the
//                       code within one application-loop iteration starting
//                       from exactly that state (the Spec tool generates the
//                       reachability query; unreachable codes come back as
//                       "safe", which is itself a useful certificate).
//   3. DIRECTED PHASE — replay the counterexample's input vector in the
//                       running simulation (ScriptedOverrideProvider) and
//                       observe the code. The SCTC monitors keep checking
//                       throughout, so directed tests are verified too.
//   4. Repeat until coverage is complete, every hole is proven unreachable
//      from the current state, or the round budget runs out.
//
// The formal model treats unmodeled hardware reads as nondeterministic, so a
// directed test can occasionally miss its target (the real flash returns
// something the havoc model didn't predict); the loop simply tries again
// from the new state in the next round.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "casestudy/eeprom.hpp"
#include "formal/bmc/bmc.hpp"

namespace esv::hybrid {

struct ClosureConfig {
  /// Random-phase budget per round (test cases).
  std::uint64_t random_test_cases = 200;
  /// Maximum random+formal rounds.
  std::size_t max_rounds = 6;
  /// Per-query BMC budget.
  formal::bmc::BmcOptions bmc;
  std::uint64_t seed = 1;
  /// Random-phase constraint: fault-injection rate (permille). 0 makes
  /// EEE_ERR_INTERNAL unreachable by random stimulus — the formal phase
  /// must find it.
  std::uint32_t fault_permille = 0;
  /// Random-phase constraint: highest record id drawn randomly. 7 keeps all
  /// random ids valid, so EEE_ERR_PARAMETER needs the formal phase too.
  std::uint32_t max_random_rec_id = 7;
  /// Statement budget per simulated test case (safety).
  std::uint64_t max_steps_per_case = 100000;
};

struct DirectedTest {
  std::uint32_t target_code = 0;
  std::vector<std::pair<std::string, std::uint32_t>> inputs;
  bool hit = false;  // did the replay actually observe the code?
};

struct ClosureResult {
  std::string operation;
  double random_coverage_percent = 0;   // after the random phases alone
  double final_coverage_percent = 0;    // after directed tests
  std::size_t rounds = 0;
  std::uint64_t random_test_cases = 0;
  std::vector<DirectedTest> directed_tests;
  /// Codes the BMC *proved* unreachable from every queried state.
  std::vector<std::uint32_t> proven_unreachable;
  /// Codes still open when the budget ran out.
  std::vector<std::uint32_t> unresolved;
  double seconds = 0;

  bool closed() const { return unresolved.empty(); }
};

/// Runs coverage closure for one EEELib operation.
ClosureResult close_coverage(const casestudy::OperationSpec& op,
                             const ClosureConfig& config = {});

}  // namespace esv::hybrid

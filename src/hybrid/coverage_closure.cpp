#include "hybrid/coverage_closure.hpp"

#include <algorithm>
#include <chrono>

#include "esw/esw_program.hpp"
#include "esw/interpreter.hpp"
#include "flash/flash_controller.hpp"
#include "formal/bmc/spec.hpp"
#include "minic/sema.hpp"
#include "stimulus/coverage.hpp"
#include "stimulus/random_inputs.hpp"

namespace esv::hybrid {

namespace {

using Clock = std::chrono::steady_clock;

std::uint32_t ram_bytes_for(const minic::Program& program) {
  return (program.data_segment_end() + 0xFFFu) & ~0xFFFu;
}

}  // namespace

ClosureResult close_coverage(const casestudy::OperationSpec& op,
                             const ClosureConfig& config) {
  using casestudy::eeprom_emulation_source;

  ClosureResult result;
  result.operation = op.name;
  const auto started = Clock::now();

  // Live simulation platform (approach 2).
  minic::Program program = minic::compile(eeprom_emulation_source());
  esw::EswProgram lowered = esw::lower_program(program);
  mem::AddressSpace memory(ram_bytes_for(program));
  flash::FlashController flash_dev(casestudy::eeprom_flash_config());
  memory.map_device(casestudy::kFlashMmioBase, flash_dev.window_bytes(),
                    flash_dev);

  stimulus::RandomInputProvider random(config.seed);
  random.set_range("op_select", 0, 6);
  random.set_range("rec_id", 0,
                   static_cast<std::int64_t>(config.max_random_rec_id));
  random.set_range("wdata", 0, 0xFFFF);
  random.set_chance("inject_fault", config.fault_permille, 1000);
  stimulus::ScriptedOverrideProvider provider(random);

  esw::Interpreter interp(program, lowered, memory, provider);
  stimulus::ReturnCodeCoverage coverage(op.return_codes);

  const std::uint32_t tc_addr = program.find_global("test_cases")->address;
  const std::uint32_t ret_addr =
      program.find_global(op.ret_global)->address;

  // Runs the live simulation until `n` more test cases completed, sampling
  // coverage every statement.
  const auto simulate_cases = [&](std::uint64_t n) {
    const std::uint64_t target = memory.sctc_read_uint(tc_addr) + n;
    std::uint64_t budget = n * config.max_steps_per_case;
    while (budget-- > 0 && memory.sctc_read_uint(tc_addr) < target) {
      if (!interp.step()) break;
      coverage.observe(memory.sctc_read_uint(ret_addr));
    }
  };

  const auto missing_codes = [&] {
    std::vector<std::uint32_t> missing;
    for (std::uint32_t code : op.return_codes) {
      if (coverage.observed().count(code) == 0) missing.push_back(code);
    }
    return missing;
  };

  for (std::size_t round = 0; round < config.max_rounds; ++round) {
    result.rounds = round + 1;

    // 1. Random phase.
    simulate_cases(config.random_test_cases);
    result.random_test_cases += config.random_test_cases;
    if (round == 0) result.random_coverage_percent = coverage.percent();
    if (coverage.complete()) break;

    // 2+3. Formal phase + directed replay, one query per open code.
    for (std::uint32_t code : missing_codes()) {
      // Snapshot every scalar global of the *live* state.
      formal::bmc::BmcOptions bmc = config.bmc;
      for (const auto& g : program.globals) {
        if (g.is_array) continue;
        bmc.initial_globals[g.address] = memory.sctc_read_uint(g.address);
      }
      // Pin the dispatched operation: the query only concerns this op, and
      // pinning folds every other dispatch branch out of the formula.
      bmc.input_ranges["op_select"] = {op.op_code, op.op_code};
      bmc.input_ranges["rec_id"] = {0, 15};  // may exceed the random range
      bmc.input_ranges["wdata"] = {0, 0xFFFF};
      bmc.input_ranges["inject_fault"] = {0, 1};

      const std::string query = formal::single_iteration(
          formal::instrument_reachability(eeprom_emulation_source(),
                                          op.op_code, op.ret_global, code));
      minic::Program query_program = minic::compile(query);
      const formal::bmc::BmcResult r =
          formal::bmc::check(query_program, bmc);

      if (r.status == formal::bmc::BmcResult::Status::kCounterexample) {
        DirectedTest test;
        test.target_code = code;
        test.inputs = r.inputs;
        // Replay: the counterexample's input values, in draw order.
        std::vector<std::uint32_t> script;
        for (const auto& [name, value] : r.inputs) script.push_back(value);
        provider.play(script);
        simulate_cases(1);
        test.hit = coverage.observed().count(code) != 0;
        if (!test.hit) {
          // The counterexample may have leaned on a nondeterministic
          // hardware read the real flash does not reproduce. Mutation
          // retry: force fault injection on and replay once more (a
          // standard coverage-driven test-generation heuristic).
          std::vector<std::uint32_t> mutated = script;
          for (std::size_t i = 0;
               i < r.inputs.size() && i < mutated.size(); ++i) {
            if (r.inputs[i].first == "inject_fault") mutated[i] = 1;
          }
          provider.play(std::move(mutated));
          simulate_cases(1);
          test.hit = coverage.observed().count(code) != 0;
        }
        result.directed_tests.push_back(std::move(test));
      } else if (r.status == formal::bmc::BmcResult::Status::kSafe) {
        // A real certificate: from this state, one iteration can never
        // produce the code, under any inputs.
        if (std::find(result.proven_unreachable.begin(),
                      result.proven_unreachable.end(),
                      code) == result.proven_unreachable.end()) {
          result.proven_unreachable.push_back(code);
        }
      }
      // kBoundedSafe / budget statuses: undecided this round; keep trying.
    }
    if (coverage.complete()) break;
  }

  result.final_coverage_percent = coverage.percent();
  result.unresolved = missing_codes();
  // Proven-unreachable codes are resolved, not open.
  for (std::uint32_t code : result.proven_unreachable) {
    result.unresolved.erase(std::remove(result.unresolved.begin(),
                                        result.unresolved.end(), code),
                            result.unresolved.end());
  }
  result.seconds =
      std::chrono::duration<double>(Clock::now() - started).count();
  return result;
}

}  // namespace esv::hybrid

// FaultEngine: the imperative half of the fault-injection subsystem.
//
// The engine executes a resolved FaultPlan against a set of bound hardware
// targets. It is driven once per temporal step — the campaign supervisor
// calls on_step(step) on every program-counter event (approach 2) or clock
// posedge (approach 1) — and applies every plan entry whose window covers
// the step and whose per-step chance fires:
//
//   bitflip / stuckbit -> mem::AddressSpace word writes (globals in RAM)
//   flashfail          -> flash::FlashController::inject_fault(op)
//   canfault           -> can::CanController TX corrupt / drop / delay hooks
//   clockjitter        -> sim::Clock::inject_spurious_posedge()
//
// Determinism: the engine owns a private Rng seeded from the run seed mixed
// with a fault-stream constant, so fault randomness never perturbs the
// stimulus stream and vice versa. Plan entries are evaluated in plan order
// on every step, and chance draws depend only on (seed, plan, step), so the
// injected-fault sequence — and the FaultLog — is a pure function of the
// configuration, independent of thread scheduling or wall clock.
//
// Entries whose target kind is not bound (e.g. a flashfail plan run on a
// platform without a flash controller) still consume their chance draws but
// inject nothing; binding is part of the configuration, so this too is
// deterministic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault_plan.hpp"

namespace esv::obs {
class Counter;
class MetricsRegistry;
class TraceWriter;
}  // namespace esv::obs

namespace esv::mem {
class AddressSpace;
}
namespace esv::flash {
class FlashController;
}
namespace esv::can {
class CanController;
}
namespace esv::sim {
class Clock;
}

namespace esv::fault {

/// One injected fault, for the per-run log.
struct FaultRecord {
  std::uint64_t step = 0;
  std::string text;  // deterministic description of what was injected
};

class FaultEngine {
 public:
  /// `plan` must outlive the engine and must be resolved. `log_limit` caps
  /// the number of detailed FaultRecords kept (the injected-fault *count* is
  /// always exact); 0 keeps every record.
  FaultEngine(const FaultPlan& plan, std::uint64_t seed,
              std::size_t log_limit = 64);

  // --- target binding (all optional) ---
  void bind_memory(mem::AddressSpace& memory) { memory_ = &memory; }
  void bind_flash(flash::FlashController& flash) { flash_ = &flash; }
  void bind_can(can::CanController& can) { can_ = &can; }
  void bind_clock(sim::Clock& clock) { clock_ = &clock; }

  // --- observability (docs/OBSERVABILITY.md, both optional) ---
  /// Every injection bumps the `fault.injected` counter. Pass nullptr to
  /// detach.
  void set_metrics(obs::MetricsRegistry* metrics);
  /// Every injection is traced as a `fault` event with the same
  /// deterministic description the FaultLog records. Pass nullptr to detach.
  void set_trace(obs::TraceWriter* trace) { trace_ = trace; }

  /// Applies every plan entry active at `step`. Call exactly once per
  /// temporal step, with a monotonically advancing step number.
  void on_step(std::uint64_t step);

  /// Total faults injected so far (exact, unaffected by the log limit).
  std::uint64_t injected_count() const { return injected_; }

  /// Detailed records of the first `log_limit` injections.
  const std::vector<FaultRecord>& log() const { return log_; }

  /// Deterministic multi-line rendering of the log; notes how many records
  /// were suppressed by the log limit.
  std::string log_text() const;

 private:
  void record(std::uint64_t step, std::string text);

  const FaultPlan& plan_;
  common::Rng rng_;
  std::size_t log_limit_;

  mem::AddressSpace* memory_ = nullptr;
  flash::FlashController* flash_ = nullptr;
  can::CanController* can_ = nullptr;
  sim::Clock* clock_ = nullptr;

  std::uint64_t injected_ = 0;
  std::vector<FaultRecord> log_;
  obs::Counter* m_injected_ = nullptr;
  obs::TraceWriter* trace_ = nullptr;
};

}  // namespace esv::fault

#include "fault/fault_engine.hpp"

#include <sstream>

#include "can/can_controller.hpp"
#include "flash/flash_controller.hpp"
#include "mem/address_space.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/clock.hpp"

namespace esv::fault {

namespace {

// Mixed into the run seed so the fault stream and the stimulus stream of the
// same seed are decorrelated (both feed xoshiro through different states).
constexpr std::uint64_t kFaultStreamSalt = 0xFA17F1A6'5EED5A17ULL;

flash::FlashController::FaultOp to_flash_op(FlashFailOp op) {
  switch (op) {
    case FlashFailOp::kErase: return flash::FlashController::FaultOp::kErase;
    case FlashFailOp::kProgram:
      return flash::FlashController::FaultOp::kProgram;
    case FlashFailOp::kAny: break;
  }
  return flash::FlashController::FaultOp::kAny;
}

}  // namespace

FaultEngine::FaultEngine(const FaultPlan& plan, std::uint64_t seed,
                         std::size_t log_limit)
    : plan_(plan), rng_(seed ^ kFaultStreamSalt), log_limit_(log_limit) {}

void FaultEngine::set_metrics(obs::MetricsRegistry* metrics) {
  m_injected_ =
      metrics == nullptr ? nullptr : &metrics->counter("fault.injected");
}

void FaultEngine::record(std::uint64_t step, std::string text) {
  ++injected_;
  if (m_injected_ != nullptr) m_injected_->add();
  if (trace_ != nullptr) trace_->fault(step, text);
  if (log_limit_ == 0 || log_.size() < log_limit_) {
    log_.push_back(FaultRecord{step, std::move(text)});
  }
}

void FaultEngine::on_step(std::uint64_t step) {
  for (const FaultSpec& entry : plan_.entries) {
    if (!entry.active_at(step)) continue;

    if (entry.kind == FaultKind::kStuckBit) {
      // Stuck-at bits are levels, not events: re-asserted on every step of
      // the window, no chance draw. Logged only when the bit actually moves.
      if (memory_ == nullptr) continue;
      const std::uint32_t mask = 1u << entry.bit;
      const std::uint32_t word = memory_->read_word(entry.address);
      const std::uint32_t forced =
          entry.stuck_value ? (word | mask) : (word & ~mask);
      if (forced != word) {
        memory_->write_word(entry.address, forced);
        record(step, entry.describe());
      }
      continue;
    }

    // Event-style faults: one chance draw per active step, always consumed
    // so the stream depends only on (seed, plan, step), not on bindings.
    if (!rng_.next_chance(entry.prob_num, entry.prob_den)) continue;

    switch (entry.kind) {
      case FaultKind::kBitFlip: {
        const std::uint32_t bit =
            static_cast<std::uint32_t>(rng_.next_below(32));
        if (memory_ == nullptr) break;
        const std::uint32_t word = memory_->read_word(entry.address);
        memory_->write_word(entry.address, word ^ (1u << bit));
        std::ostringstream text;
        text << entry.describe() << " bit " << bit;
        record(step, text.str());
        break;
      }
      case FaultKind::kFlashFail:
        if (flash_ == nullptr) break;
        flash_->inject_fault(to_flash_op(entry.flash_op));
        record(step, entry.describe());
        break;
      case FaultKind::kCanFault: {
        // The corrupt mask is drawn even when no controller is bound, to
        // keep the rng stream binding-independent.
        std::uint32_t mask = 0;
        if (entry.can_op == CanFaultOp::kCorrupt) {
          mask = static_cast<std::uint32_t>(rng_.next_u64());
          if (mask == 0) mask = 1;
        }
        if (can_ == nullptr) break;
        switch (entry.can_op) {
          case CanFaultOp::kCorrupt: can_->fault_corrupt_next_tx(mask); break;
          case CanFaultOp::kDrop: can_->fault_drop_next_tx(); break;
          case CanFaultOp::kDelay:
            can_->fault_delay_next_tx(entry.delay_ticks);
            break;
        }
        record(step, entry.describe());
        break;
      }
      case FaultKind::kClockJitter:
        if (clock_ == nullptr) break;
        clock_->inject_spurious_posedge();
        record(step, entry.describe());
        break;
      case FaultKind::kStuckBit:
        break;  // handled above
    }
  }
}

std::string FaultEngine::log_text() const {
  std::ostringstream out;
  for (const FaultRecord& rec : log_) {
    out << "step " << rec.step << ": " << rec.text << "\n";
  }
  if (injected_ > log_.size()) {
    out << "(" << injected_ - log_.size()
        << " more faults injected, log limit reached)\n";
  }
  return out.str();
}

}  // namespace esv::fault

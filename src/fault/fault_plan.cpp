#include "fault/fault_plan.hpp"

#include <iomanip>
#include <sstream>

#include "common/strings.hpp"

namespace esv::fault {

namespace {

std::vector<std::string> words_of(std::string_view line) {
  std::vector<std::string> out;
  std::string current;
  for (char c : line) {
    if (c == '#') break;
    if (c == ' ' || c == '\t') {
      if (!current.empty()) {
        out.push_back(current);
        current.clear();
      }
    } else {
      current += c;
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = value;
  return true;
}

bool parse_u32(const std::string& text, std::uint32_t& out) {
  std::uint64_t value = 0;
  if (!parse_u64(text, value) || value > UINT32_MAX) return false;
  out = static_cast<std::uint32_t>(value);
  return true;
}

/// Consumes the trailing `window LO..HI` / `prob N/D` clauses, in any order.
void parse_clauses(const std::vector<std::string>& w, std::size_t first,
                   FaultSpec& spec, int line) {
  std::size_t i = first;
  while (i < w.size()) {
    if (w[i] == "window") {
      if (i + 1 >= w.size()) throw FaultPlanError("window needs LO..HI", line);
      const std::string& range = w[i + 1];
      const std::size_t dots = range.find("..");
      if (dots == std::string::npos ||
          !parse_u64(range.substr(0, dots), spec.from) ||
          !parse_u64(range.substr(dots + 2), spec.until)) {
        throw FaultPlanError("malformed window '" + range + "' (want LO..HI)",
                             line);
      }
      if (spec.until < spec.from) {
        throw FaultPlanError("empty window (HI < LO)", line);
      }
      i += 2;
    } else if (w[i] == "prob") {
      if (i + 1 >= w.size()) throw FaultPlanError("prob needs N/D", line);
      const std::string& frac = w[i + 1];
      const std::size_t slash = frac.find('/');
      if (slash == std::string::npos ||
          !parse_u32(frac.substr(0, slash), spec.prob_num) ||
          !parse_u32(frac.substr(slash + 1), spec.prob_den) ||
          spec.prob_den == 0) {
        throw FaultPlanError("malformed prob '" + frac + "' (want N/D)", line);
      }
      i += 2;
    } else {
      throw FaultPlanError("unexpected token '" + w[i] + "'", line);
    }
  }
}

}  // namespace

std::string FaultSpec::describe() const {
  std::ostringstream out;
  switch (kind) {
    case FaultKind::kBitFlip:
      out << "bitflip " << target;
      break;
    case FaultKind::kStuckBit:
      out << "stuckbit " << target << " bit " << bit << " = " << stuck_value;
      break;
    case FaultKind::kFlashFail:
      out << "flashfail "
          << (flash_op == FlashFailOp::kErase     ? "erase"
              : flash_op == FlashFailOp::kProgram ? "program"
                                                  : "any");
      break;
    case FaultKind::kCanFault:
      out << "canfault "
          << (can_op == CanFaultOp::kCorrupt ? "corrupt"
              : can_op == CanFaultOp::kDrop  ? "drop"
                                             : "delay");
      if (can_op == CanFaultOp::kDelay) out << " " << delay_ticks;
      break;
    case FaultKind::kClockJitter:
      out << "clockjitter";
      break;
  }
  return out.str();
}

void FaultPlan::resolve(
    const std::function<bool(const std::string&, std::uint32_t&)>& resolver) {
  for (FaultSpec& entry : entries) {
    if (entry.kind != FaultKind::kBitFlip &&
        entry.kind != FaultKind::kStuckBit) {
      entry.resolved = true;
      continue;
    }
    if (!resolver(entry.target, entry.address)) {
      throw FaultPlanError(
          "cannot resolve fault target '" + entry.target + "'", entry.line);
    }
    entry.resolved = true;
  }
}

std::string FaultPlan::digest() const {
  if (entries.empty()) return "";
  std::uint64_t hash = 1469598103934665603ull;  // FNV-1a 64
  const auto mix = [&hash](const std::string& text) {
    for (const unsigned char c : text) {
      hash ^= c;
      hash *= 1099511628211ull;
    }
  };
  for (const FaultSpec& entry : entries) {
    std::ostringstream line;
    line << entry.describe() << " window " << entry.from << ".." << entry.until
         << " prob " << entry.prob_num << "/" << entry.prob_den << "\n";
    mix(line.str());
  }
  std::ostringstream out;
  out << std::hex << std::setw(16) << std::setfill('0') << hash;
  return out.str();
}

FaultSpec parse_fault_line(std::string_view text, int line) {
  const std::vector<std::string> w = words_of(text);
  if (w.empty()) throw FaultPlanError("empty fault directive", line);

  FaultSpec spec;
  spec.line = line;
  std::size_t clauses = 1;

  if (w[0] == "bitflip") {
    spec.kind = FaultKind::kBitFlip;
    if (w.size() < 2) throw FaultPlanError("bitflip needs a target", line);
    spec.target = w[1];
    clauses = 2;
  } else if (w[0] == "stuckbit") {
    spec.kind = FaultKind::kStuckBit;
    if (w.size() < 4) {
      throw FaultPlanError("expected: stuckbit TARGET BIT VALUE", line);
    }
    spec.target = w[1];
    if (!parse_u32(w[2], spec.bit) || spec.bit > 31) {
      throw FaultPlanError("stuckbit bit must be 0..31", line);
    }
    if (!parse_u32(w[3], spec.stuck_value) || spec.stuck_value > 1) {
      throw FaultPlanError("stuckbit value must be 0 or 1", line);
    }
    clauses = 4;
  } else if (w[0] == "flashfail") {
    spec.kind = FaultKind::kFlashFail;
    clauses = 1;
    if (w.size() > 1 && w[1] != "window" && w[1] != "prob") {
      if (w[1] == "erase") {
        spec.flash_op = FlashFailOp::kErase;
      } else if (w[1] == "program") {
        spec.flash_op = FlashFailOp::kProgram;
      } else if (w[1] == "any") {
        spec.flash_op = FlashFailOp::kAny;
      } else {
        throw FaultPlanError(
            "flashfail op must be erase, program, or any", line);
      }
      clauses = 2;
    }
  } else if (w[0] == "canfault") {
    spec.kind = FaultKind::kCanFault;
    if (w.size() < 2) {
      throw FaultPlanError("expected: canfault corrupt|drop|delay", line);
    }
    if (w[1] == "corrupt") {
      spec.can_op = CanFaultOp::kCorrupt;
    } else if (w[1] == "drop") {
      spec.can_op = CanFaultOp::kDrop;
    } else if (w[1] == "delay") {
      spec.can_op = CanFaultOp::kDelay;
    } else {
      throw FaultPlanError("canfault op must be corrupt, drop, or delay",
                           line);
    }
    clauses = 2;
    if (spec.can_op == CanFaultOp::kDelay && w.size() > 2 &&
        w[2] != "window" && w[2] != "prob") {
      if (!parse_u32(w[2], spec.delay_ticks) || spec.delay_ticks == 0) {
        throw FaultPlanError("canfault delay ticks must be > 0", line);
      }
      clauses = 3;
    }
  } else if (w[0] == "clockjitter") {
    spec.kind = FaultKind::kClockJitter;
    clauses = 1;
  } else {
    throw FaultPlanError("unknown fault kind '" + w[0] + "'", line);
  }

  parse_clauses(w, clauses, spec, line);
  return spec;
}

FaultPlan parse_plan(std::string_view text) {
  FaultPlan plan;
  int line_no = 0;
  for (const std::string& raw : common::split(text, '\n')) {
    ++line_no;
    const std::string_view line = common::trim(raw);
    if (line.empty() || line[0] == '#') continue;
    plan.entries.push_back(parse_fault_line(line, line_no));
  }
  return plan;
}

}  // namespace esv::fault

// Fault plans: the declarative half of the fault-injection subsystem.
//
// A FaultPlan is a list of fault directives — what to break, where, when,
// and how often. Plans come from a standalone plan file (`--faults=FILE`)
// or from `fault ...` lines embedded in an ESV spec file; both use the same
// one-directive-per-line syntax:
//
//   # kind target [args] [window LO..HI] [prob N/D]
//   bitflip  led            window 100..500 prob 1/50   # flip a random bit
//   stuckbit eee_state 2 1  window 0..1000              # bit 2 stuck at 1
//   flashfail erase         window 0..9999  prob 1/10   # next erase fails
//   canfault corrupt        prob 1/20                   # corrupt next TX frame
//   canfault delay 8        window 50..90               # next TX +8 busy ticks
//   clockjitter             window 200..220 prob 1/4    # spurious clock edge
//
// `window LO..HI` bounds the fault to temporal steps [LO, HI] (inclusive;
// default: the whole run). `prob N/D` is the per-step chance of injecting
// while the window is active (default 1/1). `stuckbit` ignores `prob`: a
// stuck-at bit is re-asserted on every step of its window.
//
// Memory-fault targets (`bitflip`, `stuckbit`) name a global variable of
// the program under verification; FaultPlan::resolve() turns names into
// addresses before any run starts, so a plan naming an unknown global is a
// configuration error, never a mid-campaign surprise.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace esv::fault {

/// Raised on malformed fault-plan text or unresolvable targets.
class FaultPlanError : public std::runtime_error {
 public:
  FaultPlanError(const std::string& message, int line)
      : std::runtime_error("fault plan line " + std::to_string(line) + ": " +
                           message),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

enum class FaultKind {
  kBitFlip,      // flip one random bit of a global (memory)
  kStuckBit,     // force one bit of a global to 0/1 (memory)
  kFlashFail,    // arm a transient flash command failure
  kCanFault,     // corrupt / drop / delay the next CAN transmission
  kClockJitter,  // fire a spurious clock posedge
};

enum class FlashFailOp { kAny, kErase, kProgram };
enum class CanFaultOp { kCorrupt, kDrop, kDelay };

struct FaultSpec {
  FaultKind kind = FaultKind::kBitFlip;

  std::string target;         // global name (memory faults)
  std::uint32_t address = 0;  // resolved byte address (memory faults)
  bool resolved = false;

  std::uint32_t bit = 0;          // stuckbit: bit index 0..31
  std::uint32_t stuck_value = 0;  // stuckbit: forced value, 0 or 1

  FlashFailOp flash_op = FlashFailOp::kAny;
  CanFaultOp can_op = CanFaultOp::kCorrupt;
  std::uint32_t delay_ticks = 4;  // canfault delay

  std::uint64_t from = 0;  // active step window, inclusive
  std::uint64_t until = UINT64_MAX;
  std::uint32_t prob_num = 1;  // per-step injection chance num/den
  std::uint32_t prob_den = 1;

  int line = 0;  // source line, for diagnostics

  bool active_at(std::uint64_t step) const {
    return step >= from && step <= until;
  }
  /// Deterministic one-line rendering (used by fault logs and tests).
  std::string describe() const;
};

struct FaultPlan {
  std::vector<FaultSpec> entries;

  bool empty() const { return entries.empty(); }

  /// Resolves every memory-fault target. The resolver returns true and fills
  /// the address for a known (scalar) global; resolve() throws
  /// FaultPlanError for anything it cannot resolve.
  void resolve(
      const std::function<bool(const std::string&, std::uint32_t&)>& resolver);

  /// Stable 16-hex-digit FNV-1a digest over the canonical rendering of every
  /// entry (kind, target, bit values, window, probability — not source line
  /// numbers). Two plans with the same digest inject identically for a given
  /// seed, so error reports stamp it to make crashes reproducible. Empty
  /// plans digest to "".
  std::string digest() const;
};

/// Parses a whole fault-plan file: one directive per line, blank lines and
/// '#' comments ignored. Throws FaultPlanError on malformed input.
FaultPlan parse_plan(std::string_view text);

/// Parses a single directive (the remainder of a spec-file `fault` line).
/// `line` is the source line number used in diagnostics.
FaultSpec parse_fault_line(std::string_view text, int line);

}  // namespace esv::fault

// Observability overhead: what metrics collection and event tracing cost on
// the approach-2 hot path.
//
// The acceptance bar (docs/OBSERVABILITY.md) is < 5% slowdown with metrics
// enabled and tracing off — metrics are meant to be cheap enough to leave on
// for whole campaigns. Tracing allocates a JSONL line per event, so it is
// measured separately and is expected to cost more; it is a per-run
// debugging tool, not a campaign default.
//
// Micro level: the raw counter/histogram cells (the unit the checker and
// kernel pay per event). Macro level: a full campaign seed sweep with the
// observability layer off / metrics / metrics+traces.
#include <benchmark/benchmark.h>

#include "campaign/campaign.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace esv;

void BM_CounterAdd(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("bench.counter");
  for (auto _ : state) {
    counter.add();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramRecord(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Histogram& hist = registry.histogram("bench.hist");
  std::uint64_t value = 0;
  for (auto _ : state) {
    hist.record(value++ & 0xFFFF);
  }
  benchmark::DoNotOptimize(hist.count());
}
BENCHMARK(BM_HistogramRecord);

void BM_TraceEvent(benchmark::State& state) {
  // One prop_change line per iteration; the buffer grows like a real trace.
  obs::TraceWriter trace;
  std::uint64_t step = 0;
  for (auto _ : state) {
    trace.prop_change(++step, "led_on", (step & 1) != 0);
    if (trace.text().size() > (1u << 22)) {
      state.PauseTiming();
      trace = obs::TraceWriter();
      state.ResumeTiming();
    }
  }
  benchmark::DoNotOptimize(trace.event_count());
}
BENCHMARK(BM_TraceEvent);

// End-to-end: the blinker workload from bench_fault_overhead, approach 2,
// 8 seeds per iteration. The nominal / metrics delta is the figure the
// acceptance bar is about.
const char* kProgram = R"(
enum { LED_OFF = 0, LED_ON = 1 };
int led;
int ticks_on;
int cycles;
void update(int enable) {
  if (enable == 1) {
    if (led == LED_OFF) { led = LED_ON; } else { led = LED_OFF; }
  } else {
    led = LED_OFF;
  }
  if (led == LED_ON) { ticks_on = ticks_on + 1; }
}
void main(void) {
  led = LED_OFF;
  while (cycles < 2000) {
    int enable = __in(enable);
    update(enable);
    cycles = cycles + 1;
  }
}
)";

const char* kSpec = R"(
input enable 0 1
prop led_on   = led == LED_ON
prop led_off  = led == LED_OFF
prop finished = cycles >= 2000
check legal: G (led_on || led_off)
check terminates: F finished
)";

void run_campaign(benchmark::State& state, bool metrics, bool traces) {
  std::uint64_t steps = 0;
  for (auto _ : state) {
    campaign::CampaignConfig config;
    config.program_source = kProgram;
    config.spec_text = kSpec;
    config.seed_lo = 1;
    config.seed_hi = 8;
    config.collect_metrics = metrics;
    config.capture_traces = traces;
    const campaign::CampaignReport report = campaign::run(config);
    steps += report.total_steps;
    benchmark::DoNotOptimize(report.total_steps);
  }
  state.counters["steps_per_s"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kIsRate);
}

void BM_CampaignObservabilityOff(benchmark::State& state) {
  run_campaign(state, /*metrics=*/false, /*traces=*/false);
}
BENCHMARK(BM_CampaignObservabilityOff)->Unit(benchmark::kMillisecond);

void BM_CampaignWithMetrics(benchmark::State& state) {
  run_campaign(state, /*metrics=*/true, /*traces=*/false);
}
BENCHMARK(BM_CampaignWithMetrics)->Unit(benchmark::kMillisecond);

void BM_CampaignWithMetricsAndTraces(benchmark::State& state) {
  run_campaign(state, /*metrics=*/true, /*traces=*/true);
}
BENCHMARK(BM_CampaignWithMetricsAndTraces)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

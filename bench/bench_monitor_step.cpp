// Steady-state monitor stepping throughput: interpreted (progression) vs
// AR-automaton table walk vs the compiled flat-transition-table lowering
// (docs/MONITORS.md). Every mode consumes the *same* pre-evaluated
// proposition stream — exactly the checker's contract, where propositions
// are evaluated once per step and the monitors only differ in how they
// advance — so the numbers isolate the per-step monitor cost.
//
//   bench_monitor_step [--steps=N] [--gate=STEPS_PER_SEC] [--gate-ratio=R]
//                      [--json=FILE]
//
//   --steps=N       measured steps per mode (default 2,000,000)
//   --gate=S        regression gate: exit 1 if the compiled mode falls below
//                   S steps/s
//   --gate-ratio=R  exit 1 if compiled/interpreted speedup falls below R
//                   (the repo's recorded floor is 5x; BENCH_monitor.json)
//   --json=FILE     also write the result object to FILE
//
// The gates make the binary usable as an opt-in CTest perf check:
//   ctest -C perf -L perf        (or: cmake --build build --target check-perf)
#include <charconv>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "temporal/automaton.hpp"
#include "temporal/compiled.hpp"
#include "temporal/monitor.hpp"
#include "temporal/parser.hpp"

namespace {

using namespace esv::temporal;

constexpr const char* kProperty = "G (req -> F[64] (ack || err))";
constexpr int kPropCount = 3;

/// Pre-generated proposition stream, cycled during measurement. 8192 steps
/// of the ablation bench's distribution: req 1/8, ack 1/4, err 1/16.
struct Stimulus {
  std::vector<PropWord> words;
  std::vector<std::vector<bool>> values;

  Stimulus() {
    esv::common::Rng rng(1234);
    words.reserve(8192);
    values.reserve(8192);
    for (int i = 0; i < 8192; ++i) {
      std::vector<bool> vals(kPropCount);
      vals[0] = rng.next_chance(1, 8);
      vals[1] = rng.next_chance(1, 4);
      vals[2] = rng.next_chance(1, 16);
      PropWord word = 0;
      for (int p = 0; p < kPropCount; ++p) {
        if (vals[static_cast<std::size_t>(p)]) word |= PropWord{1} << p;
      }
      words.push_back(word);
      values.push_back(std::move(vals));
    }
  }
};

double steps_per_second(std::uint64_t steps,
                        std::chrono::steady_clock::duration elapsed) {
  const double seconds = std::chrono::duration<double>(elapsed).count();
  return seconds > 0.0 ? static_cast<double>(steps) / seconds : 0.0;
}

template <typename StepFn>
double measure(std::uint64_t steps, const StepFn& step_once) {
  // One untimed pass over the stimulus warms caches and the formula factory.
  for (std::size_t i = 0; i < 8192; ++i) step_once(i % 8192);
  const auto started = std::chrono::steady_clock::now();
  for (std::uint64_t s = 0; s < steps; ++s) step_once(s % 8192);
  return steps_per_second(steps, std::chrono::steady_clock::now() - started);
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  const auto result =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return result.ec == std::errc{} && result.ptr == text.data() + text.size();
}

bool parse_double(const std::string& text, double& out) {
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return !text.empty() && end == text.c_str() + text.size() && out > 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t steps = 2'000'000;
  double gate = 0.0;        // absolute compiled steps/s floor
  double gate_ratio = 0.0;  // compiled/interpreted speedup floor
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const std::string& prefix, std::string& out) {
      if (arg.rfind(prefix, 0) != 0) return false;
      out = arg.substr(prefix.size());
      return true;
    };
    std::string value;
    if (value_of("--steps=", value)) {
      if (!parse_u64(value, steps) || steps == 0) {
        std::cerr << "--steps must be a positive integer\n";
        return 2;
      }
    } else if (value_of("--gate=", value)) {
      if (!parse_double(value, gate)) {
        std::cerr << "--gate must be a positive steps/s figure\n";
        return 2;
      }
    } else if (value_of("--gate-ratio=", value)) {
      if (!parse_double(value, gate_ratio)) {
        std::cerr << "--gate-ratio must be a positive speedup factor\n";
        return 2;
      }
    } else if (value_of("--json=", value)) {
      json_path = value;
    } else {
      std::cerr << "usage: bench_monitor_step [--steps=N] [--gate=S]"
                   " [--gate-ratio=R] [--json=FILE]\n";
      return 2;
    }
  }

  const Stimulus stimulus;

  FormulaFactory factory;
  FormulaRef formula = parse_fltl(kProperty, factory);
  const ArAutomaton automaton = synthesize(factory, formula);
  CompiledMonitorPool pool;
  CompiledMonitor compiled = pool.compile(automaton, factory);
  AutomatonMonitor table(automaton);
  ProgressionMonitor interpreted(factory, formula);

  const double interpreted_sps = measure(steps, [&](std::size_t i) {
    const std::vector<bool>& vals = stimulus.values[i];
    if (interpreted.step([&vals](int index) {
          return vals[static_cast<std::size_t>(index)];
        }) != Verdict::kPending) {
      interpreted.reset();
    }
  });
  const double automaton_sps = measure(steps, [&](std::size_t i) {
    const std::vector<bool>& vals = stimulus.values[i];
    if (table.step([&vals](int index) {
          return vals[static_cast<std::size_t>(index)];
        }) != Verdict::kPending) {
      table.reset();
    }
  });
  const double compiled_sps = measure(steps, [&](std::size_t i) {
    if (compiled.step(stimulus.words[i]) != Verdict::kPending) {
      compiled.reset();
    }
  });

  const double speedup =
      interpreted_sps > 0.0 ? compiled_sps / interpreted_sps : 0.0;

  std::ostringstream json;
  json << "{\n";
  json << "  \"property\": \"" << kProperty << "\",\n";
  json << "  \"steps\": " << steps << ",\n";
  json << "  \"ar_states\": " << automaton.state_count() << ",\n";
  json << "  \"table_entries\": " << pool.table_entries() << ",\n";
  json << "  \"interpreted_steps_per_second\": "
       << static_cast<std::uint64_t>(interpreted_sps) << ",\n";
  json << "  \"automaton_steps_per_second\": "
       << static_cast<std::uint64_t>(automaton_sps) << ",\n";
  json << "  \"compiled_steps_per_second\": "
       << static_cast<std::uint64_t>(compiled_sps) << ",\n";
  json << "  \"speedup_compiled_vs_interpreted\": "
       << static_cast<std::uint64_t>(speedup * 100.0) / 100.0 << "\n";
  json << "}\n";

  std::cout << json.str();
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 2;
    }
    out << json.str();
  }

  if (gate > 0.0 && compiled_sps < gate) {
    std::cerr << "GATE FAILED: compiled mode at "
              << static_cast<std::uint64_t>(compiled_sps)
              << " steps/s, gate is " << static_cast<std::uint64_t>(gate)
              << "\n";
    return 1;
  }
  if (gate_ratio > 0.0 && speedup < gate_ratio) {
    std::cerr << "GATE FAILED: compiled/interpreted speedup " << speedup
              << "x, gate is " << gate_ratio << "x\n";
    return 1;
  }
  return 0;
}

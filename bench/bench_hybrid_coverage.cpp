// Extension bench: the paper's future work — "combine the simulation-based
// verification and formal verification approach in order to improve the
// coverage".
//
// Setup: the constrained-random stimulus is deliberately narrow (no fault
// injection, record ids only 0..7), so two return codes per write-class
// operation are random-unreachable. The hybrid engine snapshots the live
// simulation state, asks the BMC for directed inputs per uncovered code,
// and replays them. Reported per operation: coverage after random alone vs
// after closure, directed tests generated/hit, and wall time.
#include <cstdio>

#include "hybrid/coverage_closure.hpp"

int main() {
  using namespace esv;
  using namespace esv::hybrid;

  std::printf("=====================================================================\n");
  std::printf("Hybrid coverage closure (simulation + formal, the paper's future work)\n");
  std::printf("random stimulus: no faults, ids 0..7 (PARAMETER/INTERNAL unreachable)\n");
  std::printf("%-9s | %10s | %10s | %8s | %6s | %8s\n", "Operation",
              "random C%", "hybrid C%", "directed", "hits", "time(s)");
  std::printf("---------------------------------------------------------------------\n");

  bool improved_somewhere = false;
  for (const char* name : {"Read", "Write", "Prepare", "Refresh"}) {
    ClosureConfig config;
    config.seed = 11;
    config.random_test_cases = 150;
    config.max_rounds = 5;
    config.fault_permille = 0;
    config.max_random_rec_id = 7;
    config.bmc.unwind = 12;
    config.bmc.max_gates = 6'000'000;
    config.bmc.max_seconds = 30;

    const ClosureResult r =
        close_coverage(casestudy::operation_by_name(name), config);
    std::size_t hits = 0;
    for (const DirectedTest& t : r.directed_tests) hits += t.hit ? 1 : 0;
    std::printf("%-9s | %9.1f%% | %9.1f%% | %8zu | %6zu | %8.2f\n", name,
                r.random_coverage_percent, r.final_coverage_percent,
                r.directed_tests.size(), hits, r.seconds);
    if (r.final_coverage_percent > r.random_coverage_percent) {
      improved_somewhere = true;
    }
  }
  std::printf("---------------------------------------------------------------------\n");
  std::printf("formal-directed tests %s coverage beyond random simulation\n",
              improved_somewhere ? "IMPROVED" : "did NOT improve");
  return improved_somewhere ? 0 : 1;
}

// Campaign scaling: seeds/sec of the multi-seed campaign runner at
// 1/2/4/8 workers over a fixed seed range, plus a determinism cross-check
// (every jobs count must produce the bit-identical verdict table and merged
// coverage). Speedup is bounded by the machine's core count — the table
// prints the available hardware concurrency so the numbers can be read in
// context.
#include <cstdio>
#include <string>
#include <thread>

#include "campaign/campaign.hpp"

namespace {

// A blinker-style workload sized so one seed is a few milliseconds of
// interpretation: per-seed cost dominates campaign bookkeeping and the
// scaling measurement reflects the runner, not the fixed overhead.
const char* kProgram = R"(
enum { LED_OFF = 0, LED_ON = 1 };

bool flag;
int led;
int ticks_on;
int cycles;
int glitches;

void update(int enable) {
  if (enable == 1) {
    if (led == LED_OFF) {
      led = LED_ON;
    } else {
      led = LED_OFF;
    }
  } else {
    led = LED_OFF;
  }
  if (led == LED_ON) {
    ticks_on = ticks_on + 1;
  }
}

void main(void) {
  led = LED_OFF;
  ticks_on = 0;
  glitches = 0;
  flag = true;
  while (cycles < 4000) {
    int enable = __in(enable);
    update(enable);
    if (__in(noise) == 1) {
      glitches = glitches + 1;
    }
    cycles = cycles + 1;
  }
}
)";

const char* kSpec = R"(
input enable 0 1
input noise chance 1 50

prop led_on   = led == LED_ON
prop led_off  = led == LED_OFF
prop finished = cycles >= 4000

check legal: G (led_on || led_off)
check terminates: F finished
check responds: G (led_on -> F[40] led_off)
)";

}  // namespace

int main() {
  using esv::campaign::CampaignConfig;
  using esv::campaign::CampaignReport;

  CampaignConfig config;
  config.program_source = kProgram;
  config.spec_text = kSpec;
  config.seed_lo = 1;
  config.seed_hi = 64;

  std::printf("campaign scaling: seeds %llu..%llu, %llu seeds, "
              "hardware threads: %u\n",
              static_cast<unsigned long long>(config.seed_lo),
              static_cast<unsigned long long>(config.seed_hi),
              static_cast<unsigned long long>(config.seed_hi -
                                              config.seed_lo + 1),
              std::thread::hardware_concurrency());
  std::printf("%-6s %12s %12s %10s %s\n", "jobs", "wall (s)", "seeds/sec",
              "speedup", "deterministic");

  std::string baseline_table;
  double baseline_rate = 0.0;
  for (unsigned jobs : {1u, 2u, 4u, 8u}) {
    config.jobs = jobs;
    const CampaignReport report = esv::campaign::run(config);
    const std::string table = report.verdict_table();
    if (jobs == 1) {
      baseline_table = table;
      baseline_rate = report.seeds_per_second();
    }
    const bool deterministic = table == baseline_table;
    std::printf("%-6u %12.3f %12.1f %9.2fx %s\n", jobs, report.wall_seconds,
                report.seeds_per_second(),
                baseline_rate > 0.0 ? report.seeds_per_second() / baseline_rate
                                    : 0.0,
                deterministic ? "yes" : "NO — BUG");
    if (!deterministic) return 1;
    if (report.any_violated() || report.error_seeds != 0) {
      std::printf("unexpected violations/errors in the scaling workload\n");
      return 1;
    }
  }
  return 0;
}

// Reproduces Fig. 8: "1st and 2nd approaches results".
//
// For every EEELib operation property the paper reports, per approach:
//   V.T.(s)  verification time (AR-automaton generation + simulation)
//   T.C.     number of constrained-random test cases applied
//   C.(%)    percentage of the documented return values observed
//
// Columns: approach 1 (microprocessor model, no time bound) and approach 2
// (derived SystemC ESW model) with TB=1000, TB=10000, and no time bound.
//
// Absolute numbers differ from the paper (different host, scaled test-case
// budgets); the qualitative shape is what this harness checks:
//   - the second approach is orders of magnitude faster per test case,
//   - larger time bounds avoid spurious violations (better coverage),
//   - the TB-10000 verification time is dominated by AR generation,
//   - no property of the shipped software is ever violated under No-TB.
//
// Budgets scale with ESV_BENCH_SCALE (default 1): T.C. budgets are
// 300 * scale for approach 1 and 3000 * scale for approach 2 (the paper
// used 10,000 and 100,000; scale 33 reproduces them in full).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "casestudy/harness.hpp"

namespace {

using namespace esv;
using namespace esv::casestudy;

std::uint64_t bench_scale() {
  if (const char* env = std::getenv("ESV_BENCH_SCALE")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::uint64_t>(v);
  }
  return 1;
}

const char* verdict_str(temporal::Verdict v) {
  switch (v) {
    case temporal::Verdict::kPending: return "safe(pend)";
    case temporal::Verdict::kValidated: return "validated";
    case temporal::Verdict::kViolated: return "VIOLATED";
  }
  return "?";
}

void print_cell(const ExperimentResult& r) {
  std::printf(" %9.3f %7llu %6.1f%% %-10s |", r.verification_seconds,
              static_cast<unsigned long long>(r.test_cases),
              r.coverage_percent, verdict_str(r.verdict));
}

}  // namespace

int main() {
  const std::uint64_t scale = bench_scale();
  const std::uint64_t a1_tc = 300 * scale;
  const std::uint64_t a2_tc = 3000 * scale;

  std::printf("==============================================================="
              "=====================\n");
  std::printf("Fig. 8 — 1st approach (microprocessor model) vs 2nd approach "
              "(SystemC ESW model)\n");
  std::printf("T.C. budgets: %llu (approach 1), %llu (approach 2); "
              "ESV_BENCH_SCALE=%llu\n",
              static_cast<unsigned long long>(a1_tc),
              static_cast<unsigned long long>(a2_tc),
              static_cast<unsigned long long>(scale));
  std::printf("Cells: V.T.(s)  T.C.  C.(%%)  verdict\n");
  std::printf("%-9s| %-38s| %-38s| %-38s| %-38s|\n", "Property",
              "  uP model, No-TB", "  ESW model, TB-1000",
              "  ESW model, TB-10000", "  ESW model, No-TB");

  double max_speedup = 0;
  double total_ar_tb10000 = 0;
  double total_vt_tb10000 = 0;
  bool any_violation_no_tb = false;

  for (const OperationSpec& op : eeprom_operations()) {
    std::printf("%-9s|", op.name.c_str());

    // Approach 1, no time bound (the paper used no bound here because
    // triggering on each statement "requires a large number of system
    // clock cycles").
    ExperimentConfig a1;
    a1.max_test_cases = a1_tc;
    a1.mode = sctc::MonitorMode::kSynthesizedAutomaton;
    a1.seed = 20080310;
    const ExperimentResult r1 = run_with_microprocessor(op, a1);
    print_cell(r1);

    // Approach 2 with TB-1000, TB-10000, and no bound.
    ExperimentResult r2_last;
    double best_a2_time = 0;
    for (const auto& bound :
         {std::optional<std::uint32_t>(1000),
          std::optional<std::uint32_t>(10000),
          std::optional<std::uint32_t>()}) {
      ExperimentConfig a2;
      a2.max_test_cases = a2_tc;
      a2.time_bound = bound;
      a2.mode = sctc::MonitorMode::kSynthesizedAutomaton;
      a2.seed = 20080310;
      const ExperimentResult r2 = run_with_esw_model(op, a2);
      print_cell(r2);
      if (bound.has_value() && *bound == 10000) {
        total_ar_tb10000 += r2.ar_generation_seconds;
        total_vt_tb10000 += r2.verification_seconds;
      }
      if (!bound.has_value()) {
        r2_last = r2;
        best_a2_time = r2.verification_seconds;
        if (r2.verdict == temporal::Verdict::kViolated) {
          any_violation_no_tb = true;
        }
      }
    }
    std::printf("\n");

    // Speedup: per-test-case time, approach 1 vs approach 2 (no bound).
    if (best_a2_time > 0 && r2_last.test_cases > 0 && r1.test_cases > 0) {
      const double t1 = r1.verification_seconds /
                        static_cast<double>(r1.test_cases);
      const double t2 = best_a2_time / static_cast<double>(r2_last.test_cases);
      if (t2 > 0) max_speedup = std::max(max_speedup, t1 / t2);
    }
  }

  std::printf("---------------------------------------------------------------"
              "---------------------\n");
  std::printf("max per-test-case speedup of approach 2 over approach 1: "
              "%.0fx (paper: up to 900x)\n", max_speedup);
  std::printf("TB-10000 verification time spent in AR-automaton generation: "
              "%.1f%% (paper: \"includes large AR-automaton generation "
              "time\")\n",
              total_vt_tb10000 > 0
                  ? 100.0 * total_ar_tb10000 / total_vt_tb10000
                  : 0.0);
  std::printf("violations under No-TB: %s (paper: all properties safe, no "
              "false positives/negatives)\n",
              any_violation_no_tb ? "YES (UNEXPECTED)" : "none");
  return any_violation_no_tb ? 1 : 0;
}

// Ablation A1: AR-automaton generation cost as a function of the time bound.
//
// The paper notes that the TB-10000 verification times "include large
// AR-automaton generation time" and that properties without a time bound can
// outperform bounded ones. The mechanism: each F[b] contributes O(b) states
// to the Accept/Reject automaton. This bench measures synthesis time and
// reports the state count for the case study's Read response property across
// bounds, plus the unbounded variant.
#include <benchmark/benchmark.h>

#include "casestudy/eeprom.hpp"
#include "temporal/automaton.hpp"
#include "temporal/parser.hpp"

namespace {

using namespace esv;

void BM_ArSynthesisBound(benchmark::State& state) {
  const auto bound = static_cast<std::uint32_t>(state.range(0));
  const auto& op = casestudy::operation_by_name("Read");
  const std::string text =
      bound == 0 ? casestudy::response_property(op, std::nullopt)
                 : casestudy::response_property(op, bound);
  std::size_t states = 0;
  for (auto _ : state) {
    temporal::FormulaFactory factory;
    temporal::FormulaRef formula = temporal::parse_fltl(text, factory);
    temporal::ArAutomaton automaton = temporal::synthesize(factory, formula);
    states = automaton.state_count();
    benchmark::DoNotOptimize(automaton);
  }
  state.counters["ar_states"] = static_cast<double>(states);
}

BENCHMARK(BM_ArSynthesisBound)
    ->Arg(0)       // no time bound (pure LTL)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// The same sweep for a single-proposition property isolates the per-state
// cost from the alphabet size (2^props transitions per state).
void BM_ArSynthesisSingleProp(benchmark::State& state) {
  const auto bound = static_cast<std::uint32_t>(state.range(0));
  const std::string text = "G (req -> F[" + std::to_string(bound) + "] ack)";
  std::size_t states = 0;
  for (auto _ : state) {
    temporal::FormulaFactory factory;
    temporal::FormulaRef formula = temporal::parse_fltl(text, factory);
    temporal::ArAutomaton automaton = temporal::synthesize(factory, formula);
    states = automaton.state_count();
    benchmark::DoNotOptimize(automaton);
  }
  state.counters["ar_states"] = static_cast<double>(states);
}

BENCHMARK(BM_ArSynthesisSingleProp)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

// Self-chaos probe overhead (docs/RESILIENCE.md): what an armed-but-idle
// chaos engine costs a campaign, and what a single chaos::at() probe costs
// at a fault point.
//
// The acceptance bar is < 1% campaign slowdown with an engine installed and
// every fault point armed but never firing — chaos must be cheap enough
// that shipping the probes in production builds is a non-decision. Two
// levels guarantee that:
//
//   micro: chaos::at() with no engine installed is one atomic load and a
//   branch (sub-nanosecond); with an engine installed but the directive
//   already spent, it is one mutex round-trip plus a plan scan — paid only
//   per *infrastructure operation* (frame sent, journal record, seed
//   dispatched), never per simulation step.
//
//   macro: an in-process campaign's compute path contains no fault points
//   at all, so an installed engine must not move seeds/s beyond noise.
//
//   bench_chaos_overhead [--seeds=N] [--reps=R] [--gate-overhead=PCT]
//                        [--json=FILE]
//
//   --seeds=N           campaign seeds per measured run (default 8)
//   --reps=R            interleaved repetitions per variant (default 3)
//   --gate-overhead=P   exit 1 if the installed-engine campaign is more
//                       than P percent slower (the recorded bar is 1;
//                       BENCH_chaos.json)
//   --json=FILE         also write the result object to FILE
//
// The gate makes the binary usable as an opt-in CTest perf check:
//   ctest -C perf -L perf        (or: cmake --build build --target check-perf)
#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "campaign/campaign.hpp"
#include "chaos/chaos.hpp"

namespace {

using namespace esv;

const char* kProgram = R"(
enum { LED_OFF = 0, LED_ON = 1 };
int led;
int ticks_on;
int cycles;
void update(int enable) {
  if (enable == 1) {
    if (led == LED_OFF) { led = LED_ON; } else { led = LED_OFF; }
  } else {
    led = LED_OFF;
  }
  if (led == LED_ON) { ticks_on = ticks_on + 1; }
}
void main(void) {
  led = LED_OFF;
  while (cycles < 2000) {
    int enable = __in(enable);
    update(enable);
    cycles = cycles + 1;
  }
}
)";

const char* kSpec = R"(
input enable 0 1
prop led_on   = led == LED_ON
prop led_off  = led == LED_OFF
prop finished = cycles >= 2000
check legal: G (led_on || led_off)
check terminates: F finished
)";

/// One fully armed directive per fault point; every one either fires once
/// and is spent (count 1 default) or can never fire in-process — the
/// steady state a long chaos campaign's probe sites live in.
const char* kArmedPlan =
    "wire.tx drop nth 1\n"
    "worker.seed crash nth 1\n"
    "worker.heartbeat delay 100 nth 1\n"
    "journal.write failwrite nth 1\n"
    "journal.fsync failsync nth 1\n";

double campaign_seconds(std::uint64_t seeds) {
  campaign::CampaignConfig config;
  config.program_source = kProgram;
  config.spec_text = kSpec;
  config.seed_lo = 1;
  config.seed_hi = seeds;
  const auto started = std::chrono::steady_clock::now();
  const campaign::CampaignReport report = campaign::run(config);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  if (report.error_seeds != 0) {
    std::cerr << "campaign errored during measurement\n";
    std::exit(2);
  }
  return elapsed;
}

/// ns per chaos::at() probe over `iters` calls; `sink` defeats dead-code
/// elimination.
double probe_ns(std::uint64_t iters, std::uint64_t& sink) {
  const auto started = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    if (chaos::at(chaos::Point::kWireTx)) ++sink;
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  return seconds * 1e9 / static_cast<double>(iters);
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  const auto result =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return result.ec == std::errc{} && result.ptr == text.data() + text.size();
}

bool parse_double(const std::string& text, double& out) {
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return !text.empty() && end == text.c_str() + text.size() && out > 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seeds = 8;
  std::uint64_t reps = 3;
  double gate_overhead = 0.0;  // percent; 0 = no gate
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const std::string& prefix, std::string& out) {
      if (arg.rfind(prefix, 0) != 0) return false;
      out = arg.substr(prefix.size());
      return true;
    };
    std::string value;
    if (value_of("--seeds=", value)) {
      if (!parse_u64(value, seeds) || seeds == 0) {
        std::cerr << "--seeds must be a positive integer\n";
        return 2;
      }
    } else if (value_of("--reps=", value)) {
      if (!parse_u64(value, reps) || reps == 0) {
        std::cerr << "--reps must be a positive integer\n";
        return 2;
      }
    } else if (value_of("--gate-overhead=", value)) {
      if (!parse_double(value, gate_overhead)) {
        std::cerr << "--gate-overhead must be a positive percentage\n";
        return 2;
      }
    } else if (value_of("--json=", value)) {
      json_path = value;
    } else {
      std::cerr << "usage: bench_chaos_overhead [--seeds=N] [--reps=R]"
                   " [--gate-overhead=PCT] [--json=FILE]\n";
      return 2;
    }
  }

  // --- micro: the probe itself ------------------------------------------
  constexpr std::uint64_t kProbeIters = 20'000'000;
  std::uint64_t sink = 0;

  const double ns_uninstalled = probe_ns(kProbeIters, sink);

  chaos::ChaosEngine engine(chaos::parse_plan(kArmedPlan), 1);
  chaos::ChaosEngine::install(&engine);
  (void)chaos::at(chaos::Point::kWireTx);  // spend the wire.tx directive
  const double ns_installed_miss = probe_ns(kProbeIters, sink);
  chaos::ChaosEngine::install(nullptr);

  // --- macro: a real campaign, engine off vs armed-but-idle -------------
  // Interleaved reps with alternating order (a fixed order hands whichever
  // variant runs first the residual turbo headroom, which shows up as a
  // phantom 2-3% "overhead"), best-of per variant: the minimum is the run
  // least disturbed by scheduler noise, which is the honest estimate for a
  // workload whose two variants execute identical instructions.
  campaign_seconds(seeds);  // warm-up: page caches, allocator, factories
  double off_seconds = 1e300;
  double armed_seconds = 1e300;
  const auto measure_off = [&] {
    off_seconds = std::min(off_seconds, campaign_seconds(seeds));
  };
  const auto measure_armed = [&] {
    chaos::ChaosEngine rep_engine(chaos::parse_plan(kArmedPlan), 1);
    chaos::ChaosEngine::install(&rep_engine);
    armed_seconds = std::min(armed_seconds, campaign_seconds(seeds));
    chaos::ChaosEngine::install(nullptr);
  };
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    if (rep % 2 == 0) {
      measure_off();
      measure_armed();
    } else {
      measure_armed();
      measure_off();
    }
  }
  const double off_sps = static_cast<double>(seeds) / off_seconds;
  const double armed_sps = static_cast<double>(seeds) / armed_seconds;
  const double overhead_percent =
      off_seconds > 0.0 ? (armed_seconds / off_seconds - 1.0) * 100.0 : 0.0;

  std::ostringstream json;
  json << "{\n";
  json << "  \"seeds_per_rep\": " << seeds << ",\n";
  json << "  \"reps\": " << reps << ",\n";
  json << "  \"probe_ns_no_engine\": "
       << static_cast<std::uint64_t>(ns_uninstalled * 1000.0) / 1000.0
       << ",\n";
  json << "  \"probe_ns_engine_installed_miss\": "
       << static_cast<std::uint64_t>(ns_installed_miss * 1000.0) / 1000.0
       << ",\n";
  json << "  \"campaign_seeds_per_second_no_engine\": "
       << static_cast<std::uint64_t>(off_sps * 100.0) / 100.0 << ",\n";
  json << "  \"campaign_seeds_per_second_engine_armed\": "
       << static_cast<std::uint64_t>(armed_sps * 100.0) / 100.0 << ",\n";
  json << "  \"campaign_overhead_percent\": "
       << static_cast<std::int64_t>(overhead_percent * 1000.0) / 1000.0
       << "\n";
  json << "}\n";

  std::cout << json.str();
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 2;
    }
    out << json.str();
  }

  if (gate_overhead > 0.0 && overhead_percent > gate_overhead) {
    std::cerr << "GATE FAILED: armed chaos engine costs " << overhead_percent
              << "% campaign throughput, gate is " << gate_overhead << "%\n";
    return 1;
  }
  return 0;
}

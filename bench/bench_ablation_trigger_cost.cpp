// Ablation A3: where the up-to-900x speedup comes from.
//
// Approach 1 pays for (a) instruction-level execution — many instructions
// and bus/device cycles per C statement — and (b) the simulation kernel:
// every clock edge is a scheduled event that wakes the CPU process, the
// checker method, and the supervisor. Approach 2 executes one statement per
// temporal step with no kernel in the loop. This bench runs a fixed
// test-case budget through both paths and reports wall time per test case.
#include <benchmark/benchmark.h>

#include "casestudy/harness.hpp"

namespace {

using namespace esv::casestudy;

void BM_Approach1PerTestCase(benchmark::State& state) {
  std::uint64_t test_cases = 0;
  for (auto _ : state) {
    ExperimentConfig config;
    config.max_test_cases = 25;
    config.seed = 5;
    const ExperimentResult r =
        run_with_microprocessor(operation_by_name("Write"), config);
    test_cases += r.test_cases;
    benchmark::DoNotOptimize(r);
  }
  state.counters["test_cases_per_s"] = benchmark::Counter(
      static_cast<double>(test_cases), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Approach1PerTestCase)->Unit(benchmark::kMillisecond);

void BM_Approach2PerTestCase(benchmark::State& state) {
  std::uint64_t test_cases = 0;
  for (auto _ : state) {
    ExperimentConfig config;
    config.max_test_cases = 25;
    config.seed = 5;
    const ExperimentResult r =
        run_with_esw_model(operation_by_name("Write"), config);
    test_cases += r.test_cases;
    benchmark::DoNotOptimize(r);
  }
  state.counters["test_cases_per_s"] = benchmark::Counter(
      static_cast<double>(test_cases), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Approach2PerTestCase)->Unit(benchmark::kMillisecond);

// The paper's literal setup for approach 2: the derived model runs as a
// kernel thread and the pc event triggers the checker through the
// scheduler. The delta to BM_Approach2PerTestCase is the kernel's share of
// the cost; the delta to BM_Approach1PerTestCase is the instruction-level
// execution share.
void BM_Approach2InKernelPerTestCase(benchmark::State& state) {
  std::uint64_t test_cases = 0;
  for (auto _ : state) {
    ExperimentConfig config;
    config.max_test_cases = 25;
    config.seed = 5;
    config.esw_in_kernel = true;
    const ExperimentResult r =
        run_with_esw_model(operation_by_name("Write"), config);
    test_cases += r.test_cases;
    benchmark::DoNotOptimize(r);
  }
  state.counters["test_cases_per_s"] = benchmark::Counter(
      static_cast<double>(test_cases), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Approach2InKernelPerTestCase)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

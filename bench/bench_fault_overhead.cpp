// Fault-injection overhead: what a fault plan costs per temporal step, and
// what it adds to an end-to-end campaign seed.
//
// The engine is on the campaign hot path — on_step() runs once per pc event
// / clock edge — so its cost with an *inactive* plan (empty, or a window
// that never opens) bounds the tax every fault campaign pays, and the
// active-plan numbers show the marginal cost of actually injecting.
#include <benchmark/benchmark.h>

#include "campaign/campaign.hpp"
#include "fault/fault_engine.hpp"
#include "fault/fault_plan.hpp"
#include "mem/address_space.hpp"

namespace {

using namespace esv;

fault::FaultPlan resolved_plan(const char* text) {
  fault::FaultPlan plan = fault::parse_plan(text);
  plan.resolve([](const std::string&, std::uint32_t& address) {
    address = 0x40;
    return true;
  });
  return plan;
}

void run_steps(benchmark::State& state, const fault::FaultPlan& plan) {
  mem::AddressSpace memory(0x1000);
  fault::FaultEngine engine(plan, /*seed=*/1, /*log_limit=*/8);
  engine.bind_memory(memory);
  std::uint64_t step = 0;
  for (auto _ : state) {
    engine.on_step(step++);
  }
  benchmark::DoNotOptimize(engine.injected_count());
  state.counters["steps_per_s"] =
      benchmark::Counter(static_cast<double>(step), benchmark::Counter::kIsRate);
}

void BM_StepEmptyPlan(benchmark::State& state) {
  run_steps(state, fault::FaultPlan{});
}
BENCHMARK(BM_StepEmptyPlan);

void BM_StepInactiveWindow(benchmark::State& state) {
  // Window never opens within the benchmark's step range: the per-step cost
  // is one active_at() check per entry.
  run_steps(state,
            resolved_plan("bitflip x window 999999999999..999999999999\n"
                          "stuckbit x 3 1 window 999999999999..999999999999"));
}
BENCHMARK(BM_StepInactiveWindow);

void BM_StepActiveStuckBit(benchmark::State& state) {
  run_steps(state, resolved_plan("stuckbit x 3 1"));
}
BENCHMARK(BM_StepActiveStuckBit);

void BM_StepActiveBitFlipRare(benchmark::State& state) {
  // The realistic shape: a rare event fault pays one rng draw per step.
  run_steps(state, resolved_plan("bitflip x prob 1/1024"));
}
BENCHMARK(BM_StepActiveBitFlipRare);

// End-to-end: a campaign seed with and without a fault plan. The workload is
// the blinker sample scaled to a few thousand statements per seed.
const char* kProgram = R"(
enum { LED_OFF = 0, LED_ON = 1 };
int led;
int ticks_on;
int cycles;
void update(int enable) {
  if (enable == 1) {
    if (led == LED_OFF) { led = LED_ON; } else { led = LED_OFF; }
  } else {
    led = LED_OFF;
  }
  if (led == LED_ON) { ticks_on = ticks_on + 1; }
}
void main(void) {
  led = LED_OFF;
  while (cycles < 2000) {
    int enable = __in(enable);
    update(enable);
    cycles = cycles + 1;
  }
}
)";

const char* kSpec = R"(
input enable 0 1
prop led_on   = led == LED_ON
prop led_off  = led == LED_OFF
prop finished = cycles >= 2000
check legal: G (led_on || led_off)
check terminates: F finished
)";

void run_campaign(benchmark::State& state, const char* plan_text) {
  std::uint64_t seeds = 0;
  for (auto _ : state) {
    campaign::CampaignConfig config;
    config.program_source = kProgram;
    config.spec_text = kSpec;
    config.seed_lo = 1;
    config.seed_hi = 8;
    config.fault_plan_text = plan_text;
    const campaign::CampaignReport report = campaign::run(config);
    seeds += report.seed_count();
    benchmark::DoNotOptimize(report.total_steps);
  }
  state.counters["seeds_per_s"] = benchmark::Counter(
      static_cast<double>(seeds), benchmark::Counter::kIsRate);
}

void BM_CampaignNominal(benchmark::State& state) { run_campaign(state, ""); }
BENCHMARK(BM_CampaignNominal)->Unit(benchmark::kMillisecond);

void BM_CampaignWithInactivePlan(benchmark::State& state) {
  run_campaign(state,
               "bitflip led window 999999999999..999999999999\n");
}
BENCHMARK(BM_CampaignWithInactivePlan)->Unit(benchmark::kMillisecond);

void BM_CampaignWithRareFaults(benchmark::State& state) {
  run_campaign(state, "bitflip ticks_on prob 1/512\n");
}
BENCHMARK(BM_CampaignWithRareFaults)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

// Reproduces Fig. 7: "BLAST and CBMC results".
//
// For each of the seven EEELib operation properties, the paper runs two
// state-of-the-art formal software checkers on the case study (properties
// compiled to C monitors via the Spec tool / SpC):
//
//   BLAST  — aborts with exceptions on every property ("we surmise resulted
//            from theorem prover"; plus the documented integer-overflow
//            limit at 2^30 - 1)
//   CBMC   — spends >5 hours unwinding loops (limit 20) and times out
//
// Our reproduction runs the predicate-abstraction engine (BLAST role) and
// the bounded model checker (CBMC role) on the instrumented software with
// the same unwinding limit of 20 and explicit resource budgets. Expected
// shape: *every* property row fails — exceptions for the abstraction,
// unwind/solver budgets for BMC — and no row reports a counterexample,
// matching the paper's experience that neither tool completes.
#include <cstdio>

#include "casestudy/eeprom.hpp"
#include "formal/absref/absref.hpp"
#include "formal/bmc/bmc.hpp"
#include "formal/bmc/spec.hpp"
#include "minic/sema.hpp"

int main() {
  using namespace esv;
  using namespace esv::casestudy;

  std::printf("=====================================================================\n");
  std::printf("Fig. 7 — formal baselines on the EEPROM case study (unwind limit 20)\n");
  std::printf("%-9s | %-32s | %-32s\n", "Property",
              "BLAST-role (pred. abstraction)", "CBMC-role (BMC)");
  std::printf("%-9s | %9s  %-20s | %9s  %-20s\n", "", "V.T.(s)", "Result",
              "V.T.(s)", "Result");
  std::printf("---------------------------------------------------------------------\n");

  bool all_failed = true;
  for (const OperationSpec& op : eeprom_operations()) {
    const std::string instrumented = formal::instrument_response(
        eeprom_emulation_source(), op.op_code, op.ret_global, op.return_codes);
    minic::Program program_a = minic::compile(instrumented);
    minic::Program program_b = minic::compile(instrumented);

    formal::absref::AbsRefOptions blast_opts;
    blast_opts.max_seconds = 60;
    const auto blast = formal::absref::check_assertions(program_a, blast_opts);

    formal::bmc::BmcOptions cbmc_opts;
    cbmc_opts.unwind = 20;  // the paper's unwinding limit
    cbmc_opts.max_gates = 8'000'000;
    cbmc_opts.max_seconds = 60;
    cbmc_opts.input_ranges["op_select"] = {0, 6};
    cbmc_opts.input_ranges["rec_id"] = {0, 9};
    cbmc_opts.input_ranges["wdata"] = {0, 0xFFFF};
    cbmc_opts.input_ranges["inject_fault"] = {0, 1};
    const auto cbmc = formal::bmc::check(program_b, cbmc_opts);

    std::printf("%-9s | %9.2f  %-20s | %9.2f  %-20s\n", op.name.c_str(),
                blast.seconds, to_string(blast.status), cbmc.seconds,
                to_string(cbmc.status));

    const bool blast_failed =
        blast.status == formal::absref::AbsRefResult::Status::kException ||
        blast.status == formal::absref::AbsRefResult::Status::kBudgetExceeded;
    const bool cbmc_failed =
        cbmc.status != formal::bmc::BmcResult::Status::kSafe &&
        cbmc.status != formal::bmc::BmcResult::Status::kCounterexample;
    if (!blast_failed || !cbmc_failed) all_failed = false;
  }

  std::printf("---------------------------------------------------------------------\n");
  std::printf("expected shape: every row fails to complete (paper: BLAST "
              "exceptions, CBMC >5h unwinding) — %s\n",
              all_failed ? "REPRODUCED" : "NOT reproduced");
  return all_failed ? 0 : 1;
}

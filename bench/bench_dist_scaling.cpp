// Distributed campaign scaling: seeds/sec of the out-of-process broker at
// workers=1,2,4 against the in-process runner on the same seed range, plus
// the determinism cross-check (every shape must produce the bit-identical
// verdict table). Results are recorded to BENCH_dist.json (first argv, or
// ./BENCH_dist.json) so runs can be compared across machines.
//
// The worker binary is resolved like the CLI: $ESV_WORKER_BIN first, then
// the esv-worker sibling of the usual tools directory relative to this
// executable (build/bench/ -> build/tools/esv-worker).
#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign.hpp"
#include "dist/broker.hpp"

namespace {

const char* kProgram = R"(
enum { LED_OFF = 0, LED_ON = 1 };

int led;
int ticks_on;
int cycles;
int glitches;

void update(int enable) {
  if (enable == 1) {
    if (led == LED_OFF) {
      led = LED_ON;
    } else {
      led = LED_OFF;
    }
  } else {
    led = LED_OFF;
  }
  if (led == LED_ON) {
    ticks_on = ticks_on + 1;
  }
}

void main(void) {
  led = LED_OFF;
  while (cycles < 4000) {
    int enable = __in(enable);
    update(enable);
    if (__in(noise) == 1) {
      glitches = glitches + 1;
    }
    cycles = cycles + 1;
  }
}
)";

const char* kSpec = R"(
input enable 0 1
input noise chance 1 50

prop led_on   = led == LED_ON
prop led_off  = led == LED_OFF
prop finished = cycles >= 4000

check legal: G (led_on || led_off)
check terminates: F finished
check responds: G (led_on -> F[40] led_off)
)";

std::string worker_binary() {
  std::string binary = esv::dist::default_worker_binary();
  if (!binary.empty()) return binary;
  // bench binaries live in build/bench/, the tools in build/tools/.
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  std::string path(buf);
  std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return "";
  std::string sibling = path.substr(0, slash) + "/../tools/esv-worker";
  return ::access(sibling.c_str(), X_OK) == 0 ? sibling : "";
}

struct Row {
  std::string shape;
  unsigned workers = 0;
  double wall_seconds = 0.0;
  double seeds_per_second = 0.0;
  bool deterministic = false;
};

}  // namespace

int main(int argc, char** argv) {
  using esv::campaign::CampaignConfig;
  using esv::campaign::CampaignReport;

  CampaignConfig config;
  config.program_source = kProgram;
  config.spec_text = kSpec;
  config.seed_lo = 1;
  config.seed_hi = 64;
  config.jobs = 1;
  config.worker_binary = worker_binary();
  if (config.worker_binary.empty()) {
    std::fprintf(stderr,
                 "bench_dist_scaling: cannot resolve esv-worker "
                 "(set ESV_WORKER_BIN)\n");
    return 1;
  }

  const std::uint64_t seeds = config.seed_hi - config.seed_lo + 1;
  std::printf("distributed campaign scaling: %llu seeds, jobs=1 per worker, "
              "hardware threads: %u\n",
              static_cast<unsigned long long>(seeds),
              std::thread::hardware_concurrency());
  std::printf("%-12s %12s %12s %10s %s\n", "shape", "wall (s)", "seeds/sec",
              "speedup", "deterministic");

  std::vector<Row> rows;
  std::string baseline_table;
  double baseline_rate = 0.0;

  const auto record = [&](const std::string& shape, unsigned workers,
                          const CampaignReport& report) -> bool {
    const std::string table = report.verdict_table();
    if (baseline_table.empty()) {
      baseline_table = table;
      baseline_rate = report.seeds_per_second();
    }
    Row row;
    row.shape = shape;
    row.workers = workers;
    row.wall_seconds = report.wall_seconds;
    row.seeds_per_second = report.seeds_per_second();
    row.deterministic = table == baseline_table;
    rows.push_back(row);
    std::printf("%-12s %12.3f %12.1f %9.2fx %s\n", shape.c_str(),
                row.wall_seconds, row.seeds_per_second,
                baseline_rate > 0.0 ? row.seeds_per_second / baseline_rate
                                    : 0.0,
                row.deterministic ? "yes" : "NO — BUG");
    return row.deterministic && !report.any_violated() &&
           report.error_seeds == 0;
  };

  if (!record("in-process", 0, esv::campaign::run(config))) return 1;
  for (unsigned workers : {1u, 2u, 4u}) {
    config.workers = workers;
    if (!record("workers=" + std::to_string(workers), workers,
                esv::dist::run_distributed(config))) {
      return 1;
    }
  }

  const std::string out_path = argc > 1 ? argv[1] : "BENCH_dist.json";
  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"dist_scaling\",\n  \"seeds\": %llu,\n"
               "  \"jobs_per_worker\": 1,\n  \"hardware_threads\": %u,\n"
               "  \"rows\": [\n",
               static_cast<unsigned long long>(seeds),
               std::thread::hardware_concurrency());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(out,
                 "    {\"shape\": \"%s\", \"workers\": %u, "
                 "\"wall_seconds\": %.3f, \"seeds_per_second\": %.1f, "
                 "\"deterministic\": %s}%s\n",
                 row.shape.c_str(), row.workers, row.wall_seconds,
                 row.seeds_per_second, row.deterministic ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("recorded: %s\n", out_path.c_str());
  return 0;
}

// Ablation A2: per-step monitoring cost — lazy progression vs synthesized
// AR-automaton.
//
// The design choice behind SCTC's synthesis engine: an explicit automaton
// pays generation time up front (see bench_ablation_ar_synthesis) but then
// monitors with a table lookup per step, while formula progression rebuilds
// the pending obligation every step. This bench measures the steady-state
// step cost of both modes on the same property and trace distribution.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "temporal/automaton.hpp"
#include "temporal/monitor.hpp"
#include "temporal/parser.hpp"

namespace {

using namespace esv::temporal;

constexpr const char* kProperty = "G (req -> F[64] (ack || err))";

void BM_ProgressionStep(benchmark::State& state) {
  FormulaFactory factory;
  FormulaRef formula = parse_fltl(kProperty, factory);
  ProgressionMonitor monitor(factory, formula);
  esv::common::Rng rng(1234);
  std::vector<bool> vals(3);
  for (auto _ : state) {
    vals[0] = rng.next_chance(1, 8);   // req
    vals[1] = rng.next_chance(1, 4);   // ack
    vals[2] = rng.next_chance(1, 16);  // err
    const Verdict v = monitor.step(
        [&vals](int index) { return vals[static_cast<std::size_t>(index)]; });
    benchmark::DoNotOptimize(v);
    if (v != Verdict::kPending) monitor.reset();
  }
  state.counters["factory_nodes"] =
      static_cast<double>(factory.node_count());
}
BENCHMARK(BM_ProgressionStep);

void BM_AutomatonStep(benchmark::State& state) {
  FormulaFactory factory;
  FormulaRef formula = parse_fltl(kProperty, factory);
  ArAutomaton automaton = synthesize(factory, formula);
  AutomatonMonitor monitor(automaton);
  esv::common::Rng rng(1234);
  std::vector<bool> vals(3);
  for (auto _ : state) {
    vals[0] = rng.next_chance(1, 8);
    vals[1] = rng.next_chance(1, 4);
    vals[2] = rng.next_chance(1, 16);
    const Verdict v = monitor.step(
        [&vals](int index) { return vals[static_cast<std::size_t>(index)]; });
    benchmark::DoNotOptimize(v);
    if (v != Verdict::kPending) monitor.reset();
  }
  state.counters["ar_states"] = static_cast<double>(automaton.state_count());
}
BENCHMARK(BM_AutomatonStep);

}  // namespace

BENCHMARK_MAIN();

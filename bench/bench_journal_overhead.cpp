// Checkpoint-journal overhead: what the write-ahead journal costs a campaign
// under each fsync policy, plus the raw per-record append and the recovery
// scan (docs/JOURNAL.md).
//
// The trade the policies make: `record` buys per-seed durability with one
// fsync per record, `batch` (the default) amortizes the fsync over
// kBatchSyncInterval records, `none` leaves durability to the page cache.
// The journal only has to keep up with seed *completion* — a seed costs
// milliseconds of simulation, so even the record policy should be noise at
// the campaign level; these benches put numbers on that claim.
//
// Micro level: JournalWriter::append per policy and recover() over a large
// journal. Macro level: a full campaign seed sweep with the journal off /
// batch / record.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "campaign/campaign.hpp"
#include "journal/journal.hpp"

namespace {

using namespace esv;

const char* kProgram = R"(
enum { LED_OFF = 0, LED_ON = 1 };
int led;
int ticks_on;
int cycles;
void update(int enable) {
  if (enable == 1) {
    if (led == LED_OFF) { led = LED_ON; } else { led = LED_OFF; }
  } else {
    led = LED_OFF;
  }
  if (led == LED_ON) { ticks_on = ticks_on + 1; }
}
void main(void) {
  led = LED_OFF;
  while (cycles < 2000) {
    int enable = __in(enable);
    update(enable);
    cycles = cycles + 1;
  }
}
)";

const char* kSpec = R"(
input enable 0 1
prop led_on   = led == LED_ON
prop led_off  = led == LED_OFF
prop finished = cycles >= 2000
check legal: G (led_on || led_off)
check terminates: F finished
)";

campaign::CampaignConfig blinker_config() {
  campaign::CampaignConfig config;
  config.program_source = kProgram;
  config.spec_text = kSpec;
  config.seed_lo = 1;
  config.seed_hi = 8;
  config.collect_metrics = true;
  return config;
}

std::string bench_path(const char* stem) {
  return "/tmp/esv_bench_journal_" + std::to_string(::getpid()) + "_" + stem +
         ".bin";
}

/// A realistic finished-seed record: two properties, coverage counts, and a
/// metrics snapshot, like a campaign seed produces.
campaign::SeedResult sample_result(std::uint64_t seed) {
  campaign::SeedResult result;
  result.seed = seed;
  result.properties.resize(2);
  result.properties[0].verdict = temporal::Verdict::kValidated;
  result.properties[1].verdict = temporal::Verdict::kValidated;
  result.steps = 2000;
  result.statements = 26000;
  result.draws = 2000;
  result.finished = true;
  result.prop_true_counts = {1000, 1000};
  result.metrics.counters["esw.statements"] = 26000;
  result.metrics.counters["sctc.steps"] = 2000;
  return result;
}

void run_append(benchmark::State& state, journal::SyncPolicy sync) {
  const std::string path = bench_path("append");
  const campaign::CampaignConfig config = blinker_config();
  std::uint64_t seed = 0;
  journal::JournalWriter writer(path, config, sync);
  for (auto _ : state) {
    writer.append(sample_result(++seed));
  }
  writer.close();
  state.SetItemsProcessed(static_cast<int64_t>(seed));
  std::remove(path.c_str());
}

void BM_AppendSyncRecord(benchmark::State& state) {
  run_append(state, journal::SyncPolicy::kRecord);
}
BENCHMARK(BM_AppendSyncRecord);

void BM_AppendSyncBatch(benchmark::State& state) {
  run_append(state, journal::SyncPolicy::kBatch);
}
BENCHMARK(BM_AppendSyncBatch);

void BM_AppendSyncNone(benchmark::State& state) {
  run_append(state, journal::SyncPolicy::kNone);
}
BENCHMARK(BM_AppendSyncNone);

// Recovery scan over a 10k-record journal: the --resume startup cost.
void BM_RecoverTenThousandRecords(benchmark::State& state) {
  const std::string path = bench_path("recover");
  const campaign::CampaignConfig config = blinker_config();
  {
    journal::JournalWriter writer(path, config, journal::SyncPolicy::kNone);
    for (std::uint64_t seed = 1; seed <= 10'000; ++seed) {
      writer.append(sample_result(seed));
    }
    writer.close();
  }
  for (auto _ : state) {
    const journal::RecoveredJournal recovered = journal::recover(path);
    benchmark::DoNotOptimize(recovered.results.size());
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_RecoverTenThousandRecords)->Unit(benchmark::kMillisecond);

// End-to-end: the blinker campaign with the journal off / batch / record.
// The off / record delta is the worst-case price of crash safety.
void run_campaign(benchmark::State& state, bool journaled,
                  journal::SyncPolicy sync) {
  const std::string path = bench_path("campaign");
  std::uint64_t steps = 0;
  for (auto _ : state) {
    campaign::CampaignConfig config = blinker_config();
    journal::JournalWriter writer(path, config, sync);
    if (journaled) {
      config.on_result = [&](const campaign::SeedResult& result) {
        writer.append(result);
      };
    }
    const campaign::CampaignReport report = campaign::run(config);
    writer.close();
    steps += report.total_steps;
    benchmark::DoNotOptimize(report.total_steps);
  }
  state.counters["steps_per_s"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kIsRate);
  std::remove(path.c_str());
}

void BM_CampaignJournalOff(benchmark::State& state) {
  run_campaign(state, /*journaled=*/false, journal::SyncPolicy::kNone);
}
BENCHMARK(BM_CampaignJournalOff)->Unit(benchmark::kMillisecond);

void BM_CampaignJournalBatch(benchmark::State& state) {
  run_campaign(state, /*journaled=*/true, journal::SyncPolicy::kBatch);
}
BENCHMARK(BM_CampaignJournalBatch)->Unit(benchmark::kMillisecond);

void BM_CampaignJournalRecord(benchmark::State& state) {
  run_campaign(state, /*journaled=*/true, journal::SyncPolicy::kRecord);
}
BENCHMARK(BM_CampaignJournalRecord)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

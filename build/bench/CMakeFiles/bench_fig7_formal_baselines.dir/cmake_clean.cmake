file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_formal_baselines.dir/bench_fig7_formal_baselines.cpp.o"
  "CMakeFiles/bench_fig7_formal_baselines.dir/bench_fig7_formal_baselines.cpp.o.d"
  "bench_fig7_formal_baselines"
  "bench_fig7_formal_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_formal_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

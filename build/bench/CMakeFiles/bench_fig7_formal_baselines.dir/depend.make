# Empty dependencies file for bench_fig7_formal_baselines.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ar_synthesis.dir/bench_ablation_ar_synthesis.cpp.o"
  "CMakeFiles/bench_ablation_ar_synthesis.dir/bench_ablation_ar_synthesis.cpp.o.d"
  "bench_ablation_ar_synthesis"
  "bench_ablation_ar_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ar_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

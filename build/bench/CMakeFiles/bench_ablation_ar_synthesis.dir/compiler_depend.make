# Empty compiler generated dependencies file for bench_ablation_ar_synthesis.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_monitor_mode.dir/bench_ablation_monitor_mode.cpp.o"
  "CMakeFiles/bench_ablation_monitor_mode.dir/bench_ablation_monitor_mode.cpp.o.d"
  "bench_ablation_monitor_mode"
  "bench_ablation_monitor_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_monitor_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

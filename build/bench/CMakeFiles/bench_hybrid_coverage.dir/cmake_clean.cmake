file(REMOVE_RECURSE
  "CMakeFiles/bench_hybrid_coverage.dir/bench_hybrid_coverage.cpp.o"
  "CMakeFiles/bench_hybrid_coverage.dir/bench_hybrid_coverage.cpp.o.d"
  "bench_hybrid_coverage"
  "bench_hybrid_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hybrid_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

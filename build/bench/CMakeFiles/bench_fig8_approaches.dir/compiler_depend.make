# Empty compiler generated dependencies file for bench_fig8_approaches.
# This may be replaced when dependencies are built.

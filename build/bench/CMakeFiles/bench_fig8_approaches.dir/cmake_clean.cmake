file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_approaches.dir/bench_fig8_approaches.cpp.o"
  "CMakeFiles/bench_fig8_approaches.dir/bench_fig8_approaches.cpp.o.d"
  "bench_fig8_approaches"
  "bench_fig8_approaches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_approaches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/window_lift.dir/window_lift.cpp.o"
  "CMakeFiles/window_lift.dir/window_lift.cpp.o.d"
  "window_lift"
  "window_lift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_lift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for window_lift.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for eeprom_verification.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/eeprom_verification.dir/eeprom_verification.cpp.o"
  "CMakeFiles/eeprom_verification.dir/eeprom_verification.cpp.o.d"
  "eeprom_verification"
  "eeprom_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eeprom_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

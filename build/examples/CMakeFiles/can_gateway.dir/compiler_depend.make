# Empty compiler generated dependencies file for can_gateway.
# This may be replaced when dependencies are built.

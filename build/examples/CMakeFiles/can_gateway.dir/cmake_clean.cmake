file(REMOVE_RECURSE
  "CMakeFiles/can_gateway.dir/can_gateway.cpp.o"
  "CMakeFiles/can_gateway.dir/can_gateway.cpp.o.d"
  "can_gateway"
  "can_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/can_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for formal_vs_simulation.
# This may be replaced when dependencies are built.

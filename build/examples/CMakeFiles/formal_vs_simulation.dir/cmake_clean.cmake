file(REMOVE_RECURSE
  "CMakeFiles/formal_vs_simulation.dir/formal_vs_simulation.cpp.o"
  "CMakeFiles/formal_vs_simulation.dir/formal_vs_simulation.cpp.o.d"
  "formal_vs_simulation"
  "formal_vs_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/formal_vs_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

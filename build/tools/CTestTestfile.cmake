# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(esv_verify_smoke_a2 "/root/repo/build/tools/esv-verify" "/root/repo/examples/data/blinker.c" "/root/repo/examples/data/blinker.esv" "--quiet")
set_tests_properties(esv_verify_smoke_a2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(esv_verify_smoke_a1 "/root/repo/build/tools/esv-verify" "/root/repo/examples/data/blinker.c" "/root/repo/examples/data/blinker.esv" "--approach=1" "--quiet")
set_tests_properties(esv_verify_smoke_a1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")

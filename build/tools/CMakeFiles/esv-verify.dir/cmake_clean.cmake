file(REMOVE_RECURSE
  "CMakeFiles/esv-verify.dir/esv_verify.cpp.o"
  "CMakeFiles/esv-verify.dir/esv_verify.cpp.o.d"
  "esv-verify"
  "esv-verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esv-verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for esv-verify.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/temporal_parser_test.dir/temporal_parser_test.cpp.o"
  "CMakeFiles/temporal_parser_test.dir/temporal_parser_test.cpp.o.d"
  "temporal_parser_test"
  "temporal_parser_test.pdb"
  "temporal_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

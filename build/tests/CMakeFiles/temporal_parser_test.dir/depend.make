# Empty dependencies file for temporal_parser_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/temporal_monitor_test.dir/temporal_monitor_test.cpp.o"
  "CMakeFiles/temporal_monitor_test.dir/temporal_monitor_test.cpp.o.d"
  "temporal_monitor_test"
  "temporal_monitor_test.pdb"
  "temporal_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for temporal_monitor_test.
# This may be replaced when dependencies are built.

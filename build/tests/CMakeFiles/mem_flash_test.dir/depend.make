# Empty dependencies file for mem_flash_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mem_flash_test.dir/mem_flash_test.cpp.o"
  "CMakeFiles/mem_flash_test.dir/mem_flash_test.cpp.o.d"
  "mem_flash_test"
  "mem_flash_test.pdb"
  "mem_flash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_flash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for minic_frontend_test.
# This may be replaced when dependencies are built.

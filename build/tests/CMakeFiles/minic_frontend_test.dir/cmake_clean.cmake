file(REMOVE_RECURSE
  "CMakeFiles/minic_frontend_test.dir/minic_frontend_test.cpp.o"
  "CMakeFiles/minic_frontend_test.dir/minic_frontend_test.cpp.o.d"
  "minic_frontend_test"
  "minic_frontend_test.pdb"
  "minic_frontend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minic_frontend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

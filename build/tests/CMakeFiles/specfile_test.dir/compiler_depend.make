# Empty compiler generated dependencies file for specfile_test.
# This may be replaced when dependencies are built.

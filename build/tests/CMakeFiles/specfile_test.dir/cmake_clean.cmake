file(REMOVE_RECURSE
  "CMakeFiles/specfile_test.dir/specfile_test.cpp.o"
  "CMakeFiles/specfile_test.dir/specfile_test.cpp.o.d"
  "specfile_test"
  "specfile_test.pdb"
  "specfile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specfile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

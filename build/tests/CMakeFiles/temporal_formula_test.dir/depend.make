# Empty dependencies file for temporal_formula_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/temporal_formula_test.dir/temporal_formula_test.cpp.o"
  "CMakeFiles/temporal_formula_test.dir/temporal_formula_test.cpp.o.d"
  "temporal_formula_test"
  "temporal_formula_test.pdb"
  "temporal_formula_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_formula_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/assume_test.dir/assume_test.cpp.o"
  "CMakeFiles/assume_test.dir/assume_test.cpp.o.d"
  "assume_test"
  "assume_test.pdb"
  "assume_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assume_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for assume_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sctc_checker_test.dir/sctc_checker_test.cpp.o"
  "CMakeFiles/sctc_checker_test.dir/sctc_checker_test.cpp.o.d"
  "sctc_checker_test"
  "sctc_checker_test.pdb"
  "sctc_checker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sctc_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sctc_checker_test.
# This may be replaced when dependencies are built.

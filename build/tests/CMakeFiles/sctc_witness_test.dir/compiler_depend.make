# Empty compiler generated dependencies file for sctc_witness_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sctc_witness_test.dir/sctc_witness_test.cpp.o"
  "CMakeFiles/sctc_witness_test.dir/sctc_witness_test.cpp.o.d"
  "sctc_witness_test"
  "sctc_witness_test.pdb"
  "sctc_witness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sctc_witness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

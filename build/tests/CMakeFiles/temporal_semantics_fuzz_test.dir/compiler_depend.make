# Empty compiler generated dependencies file for temporal_semantics_fuzz_test.
# This may be replaced when dependencies are built.

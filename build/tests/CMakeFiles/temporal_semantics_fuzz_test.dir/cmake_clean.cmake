file(REMOVE_RECURSE
  "CMakeFiles/temporal_semantics_fuzz_test.dir/temporal_semantics_fuzz_test.cpp.o"
  "CMakeFiles/temporal_semantics_fuzz_test.dir/temporal_semantics_fuzz_test.cpp.o.d"
  "temporal_semantics_fuzz_test"
  "temporal_semantics_fuzz_test.pdb"
  "temporal_semantics_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_semantics_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/absref_test.dir/absref_test.cpp.o"
  "CMakeFiles/absref_test.dir/absref_test.cpp.o.d"
  "absref_test"
  "absref_test.pdb"
  "absref_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/absref_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

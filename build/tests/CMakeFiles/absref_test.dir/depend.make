# Empty dependencies file for absref_test.
# This may be replaced when dependencies are built.

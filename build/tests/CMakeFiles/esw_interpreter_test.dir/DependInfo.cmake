
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/esw_interpreter_test.cpp" "tests/CMakeFiles/esw_interpreter_test.dir/esw_interpreter_test.cpp.o" "gcc" "tests/CMakeFiles/esw_interpreter_test.dir/esw_interpreter_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/esw/CMakeFiles/esv_esw.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/esv_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/minic/CMakeFiles/esv_minic.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/esv_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sctc/CMakeFiles/esv_sctc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/esv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/temporal/CMakeFiles/esv_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/esv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for esw_interpreter_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/esw_interpreter_test.dir/esw_interpreter_test.cpp.o"
  "CMakeFiles/esw_interpreter_test.dir/esw_interpreter_test.cpp.o.d"
  "esw_interpreter_test"
  "esw_interpreter_test.pdb"
  "esw_interpreter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esw_interpreter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

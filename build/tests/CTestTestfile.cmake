# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_kernel_test[1]_include.cmake")
include("/root/repo/build/tests/sim_signal_clock_test[1]_include.cmake")
include("/root/repo/build/tests/temporal_formula_test[1]_include.cmake")
include("/root/repo/build/tests/temporal_parser_test[1]_include.cmake")
include("/root/repo/build/tests/temporal_monitor_test[1]_include.cmake")
include("/root/repo/build/tests/sctc_checker_test[1]_include.cmake")
include("/root/repo/build/tests/minic_frontend_test[1]_include.cmake")
include("/root/repo/build/tests/mem_flash_test[1]_include.cmake")
include("/root/repo/build/tests/esw_interpreter_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/casestudy_test[1]_include.cmake")
include("/root/repo/build/tests/sat_solver_test[1]_include.cmake")
include("/root/repo/build/tests/bmc_test[1]_include.cmake")
include("/root/repo/build/tests/absref_test[1]_include.cmake")
include("/root/repo/build/tests/hybrid_test[1]_include.cmake")
include("/root/repo/build/tests/sim_vcd_test[1]_include.cmake")
include("/root/repo/build/tests/differential_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/sctc_witness_test[1]_include.cmake")
include("/root/repo/build/tests/specfile_test[1]_include.cmake")
include("/root/repo/build/tests/assume_test[1]_include.cmake")
include("/root/repo/build/tests/temporal_semantics_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/can_test[1]_include.cmake")
include("/root/repo/build/tests/integration_soak_test[1]_include.cmake")

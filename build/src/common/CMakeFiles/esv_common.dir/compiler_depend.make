# Empty compiler generated dependencies file for esv_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/esv_common.dir/logging.cpp.o"
  "CMakeFiles/esv_common.dir/logging.cpp.o.d"
  "CMakeFiles/esv_common.dir/rng.cpp.o"
  "CMakeFiles/esv_common.dir/rng.cpp.o.d"
  "CMakeFiles/esv_common.dir/strings.cpp.o"
  "CMakeFiles/esv_common.dir/strings.cpp.o.d"
  "libesv_common.a"
  "libesv_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esv_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

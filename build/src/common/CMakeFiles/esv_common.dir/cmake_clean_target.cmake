file(REMOVE_RECURSE
  "libesv_common.a"
)

# Empty dependencies file for esv_casestudy.
# This may be replaced when dependencies are built.

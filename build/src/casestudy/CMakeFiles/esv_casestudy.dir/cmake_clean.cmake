file(REMOVE_RECURSE
  "CMakeFiles/esv_casestudy.dir/eeprom.cpp.o"
  "CMakeFiles/esv_casestudy.dir/eeprom.cpp.o.d"
  "CMakeFiles/esv_casestudy.dir/eeprom_source.cpp.o"
  "CMakeFiles/esv_casestudy.dir/eeprom_source.cpp.o.d"
  "CMakeFiles/esv_casestudy.dir/harness.cpp.o"
  "CMakeFiles/esv_casestudy.dir/harness.cpp.o.d"
  "libesv_casestudy.a"
  "libesv_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esv_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libesv_casestudy.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/esv_flash.dir/flash_controller.cpp.o"
  "CMakeFiles/esv_flash.dir/flash_controller.cpp.o.d"
  "libesv_flash.a"
  "libesv_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esv_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libesv_flash.a"
)

# Empty compiler generated dependencies file for esv_flash.
# This may be replaced when dependencies are built.

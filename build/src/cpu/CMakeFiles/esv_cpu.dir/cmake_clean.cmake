file(REMOVE_RECURSE
  "CMakeFiles/esv_cpu.dir/codegen.cpp.o"
  "CMakeFiles/esv_cpu.dir/codegen.cpp.o.d"
  "CMakeFiles/esv_cpu.dir/cpu.cpp.o"
  "CMakeFiles/esv_cpu.dir/cpu.cpp.o.d"
  "libesv_cpu.a"
  "libesv_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esv_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

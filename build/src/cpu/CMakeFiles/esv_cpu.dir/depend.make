# Empty dependencies file for esv_cpu.
# This may be replaced when dependencies are built.

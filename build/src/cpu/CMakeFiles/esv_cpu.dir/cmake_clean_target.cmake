file(REMOVE_RECURSE
  "libesv_cpu.a"
)

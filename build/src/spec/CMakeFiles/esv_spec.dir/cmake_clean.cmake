file(REMOVE_RECURSE
  "CMakeFiles/esv_spec.dir/specfile.cpp.o"
  "CMakeFiles/esv_spec.dir/specfile.cpp.o.d"
  "libesv_spec.a"
  "libesv_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esv_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

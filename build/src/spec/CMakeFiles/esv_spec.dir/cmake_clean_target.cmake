file(REMOVE_RECURSE
  "libesv_spec.a"
)

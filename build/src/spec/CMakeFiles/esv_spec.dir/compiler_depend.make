# Empty compiler generated dependencies file for esv_spec.
# This may be replaced when dependencies are built.

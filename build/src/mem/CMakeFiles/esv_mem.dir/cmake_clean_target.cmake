file(REMOVE_RECURSE
  "libesv_mem.a"
)

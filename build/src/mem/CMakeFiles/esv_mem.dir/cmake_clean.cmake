file(REMOVE_RECURSE
  "CMakeFiles/esv_mem.dir/address_space.cpp.o"
  "CMakeFiles/esv_mem.dir/address_space.cpp.o.d"
  "libesv_mem.a"
  "libesv_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esv_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

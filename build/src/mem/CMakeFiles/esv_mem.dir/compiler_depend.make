# Empty compiler generated dependencies file for esv_mem.
# This may be replaced when dependencies are built.

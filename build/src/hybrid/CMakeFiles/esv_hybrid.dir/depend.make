# Empty dependencies file for esv_hybrid.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libesv_hybrid.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/esv_hybrid.dir/coverage_closure.cpp.o"
  "CMakeFiles/esv_hybrid.dir/coverage_closure.cpp.o.d"
  "libesv_hybrid.a"
  "libesv_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esv_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

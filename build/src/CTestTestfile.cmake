# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("temporal")
subdirs("sctc")
subdirs("mem")
subdirs("minic")
subdirs("flash")
subdirs("can")
subdirs("cpu")
subdirs("esw")
subdirs("stimulus")
subdirs("casestudy")
subdirs("formal")
subdirs("hybrid")
subdirs("spec")

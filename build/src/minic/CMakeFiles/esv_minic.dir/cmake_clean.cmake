file(REMOVE_RECURSE
  "CMakeFiles/esv_minic.dir/lexer.cpp.o"
  "CMakeFiles/esv_minic.dir/lexer.cpp.o.d"
  "CMakeFiles/esv_minic.dir/parser.cpp.o"
  "CMakeFiles/esv_minic.dir/parser.cpp.o.d"
  "CMakeFiles/esv_minic.dir/sema.cpp.o"
  "CMakeFiles/esv_minic.dir/sema.cpp.o.d"
  "libesv_minic.a"
  "libesv_minic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esv_minic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

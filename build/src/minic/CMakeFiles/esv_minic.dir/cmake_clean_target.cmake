file(REMOVE_RECURSE
  "libesv_minic.a"
)

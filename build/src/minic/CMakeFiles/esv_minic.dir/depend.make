# Empty dependencies file for esv_minic.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for esv_sctc.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/esv_sctc.dir/checker.cpp.o"
  "CMakeFiles/esv_sctc.dir/checker.cpp.o.d"
  "CMakeFiles/esv_sctc.dir/esw_monitor.cpp.o"
  "CMakeFiles/esv_sctc.dir/esw_monitor.cpp.o.d"
  "libesv_sctc.a"
  "libesv_sctc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esv_sctc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libesv_sctc.a"
)

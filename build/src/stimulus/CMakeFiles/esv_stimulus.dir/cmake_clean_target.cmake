file(REMOVE_RECURSE
  "libesv_stimulus.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stimulus/coverage.cpp" "src/stimulus/CMakeFiles/esv_stimulus.dir/coverage.cpp.o" "gcc" "src/stimulus/CMakeFiles/esv_stimulus.dir/coverage.cpp.o.d"
  "/root/repo/src/stimulus/random_inputs.cpp" "src/stimulus/CMakeFiles/esv_stimulus.dir/random_inputs.cpp.o" "gcc" "src/stimulus/CMakeFiles/esv_stimulus.dir/random_inputs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/esv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/minic/CMakeFiles/esv_minic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for esv_stimulus.
# This may be replaced when dependencies are built.

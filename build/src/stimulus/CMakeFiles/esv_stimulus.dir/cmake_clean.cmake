file(REMOVE_RECURSE
  "CMakeFiles/esv_stimulus.dir/coverage.cpp.o"
  "CMakeFiles/esv_stimulus.dir/coverage.cpp.o.d"
  "CMakeFiles/esv_stimulus.dir/random_inputs.cpp.o"
  "CMakeFiles/esv_stimulus.dir/random_inputs.cpp.o.d"
  "libesv_stimulus.a"
  "libesv_stimulus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esv_stimulus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libesv_sim.a"
)

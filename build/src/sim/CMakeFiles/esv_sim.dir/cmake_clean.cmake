file(REMOVE_RECURSE
  "CMakeFiles/esv_sim.dir/clock.cpp.o"
  "CMakeFiles/esv_sim.dir/clock.cpp.o.d"
  "CMakeFiles/esv_sim.dir/kernel.cpp.o"
  "CMakeFiles/esv_sim.dir/kernel.cpp.o.d"
  "CMakeFiles/esv_sim.dir/time.cpp.o"
  "CMakeFiles/esv_sim.dir/time.cpp.o.d"
  "CMakeFiles/esv_sim.dir/vcd.cpp.o"
  "CMakeFiles/esv_sim.dir/vcd.cpp.o.d"
  "libesv_sim.a"
  "libesv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for esv_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libesv_esw.a"
)

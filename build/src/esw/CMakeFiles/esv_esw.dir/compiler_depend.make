# Empty compiler generated dependencies file for esv_esw.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/esv_esw.dir/esw_model.cpp.o"
  "CMakeFiles/esv_esw.dir/esw_model.cpp.o.d"
  "CMakeFiles/esv_esw.dir/esw_program.cpp.o"
  "CMakeFiles/esv_esw.dir/esw_program.cpp.o.d"
  "CMakeFiles/esv_esw.dir/interpreter.cpp.o"
  "CMakeFiles/esv_esw.dir/interpreter.cpp.o.d"
  "libesv_esw.a"
  "libesv_esw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esv_esw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libesv_formal.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/esv_formal.dir/absref/absref.cpp.o"
  "CMakeFiles/esv_formal.dir/absref/absref.cpp.o.d"
  "CMakeFiles/esv_formal.dir/bmc/bitblast.cpp.o"
  "CMakeFiles/esv_formal.dir/bmc/bitblast.cpp.o.d"
  "CMakeFiles/esv_formal.dir/bmc/bmc.cpp.o"
  "CMakeFiles/esv_formal.dir/bmc/bmc.cpp.o.d"
  "CMakeFiles/esv_formal.dir/bmc/spec.cpp.o"
  "CMakeFiles/esv_formal.dir/bmc/spec.cpp.o.d"
  "CMakeFiles/esv_formal.dir/sat/solver.cpp.o"
  "CMakeFiles/esv_formal.dir/sat/solver.cpp.o.d"
  "libesv_formal.a"
  "libesv_formal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esv_formal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

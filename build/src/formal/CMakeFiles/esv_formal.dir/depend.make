# Empty dependencies file for esv_formal.
# This may be replaced when dependencies are built.

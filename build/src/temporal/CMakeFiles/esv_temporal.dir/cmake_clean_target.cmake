file(REMOVE_RECURSE
  "libesv_temporal.a"
)

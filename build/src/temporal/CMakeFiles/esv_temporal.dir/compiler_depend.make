# Empty compiler generated dependencies file for esv_temporal.
# This may be replaced when dependencies are built.

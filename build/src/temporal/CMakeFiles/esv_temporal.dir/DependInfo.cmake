
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/temporal/automaton.cpp" "src/temporal/CMakeFiles/esv_temporal.dir/automaton.cpp.o" "gcc" "src/temporal/CMakeFiles/esv_temporal.dir/automaton.cpp.o.d"
  "/root/repo/src/temporal/formula.cpp" "src/temporal/CMakeFiles/esv_temporal.dir/formula.cpp.o" "gcc" "src/temporal/CMakeFiles/esv_temporal.dir/formula.cpp.o.d"
  "/root/repo/src/temporal/monitor.cpp" "src/temporal/CMakeFiles/esv_temporal.dir/monitor.cpp.o" "gcc" "src/temporal/CMakeFiles/esv_temporal.dir/monitor.cpp.o.d"
  "/root/repo/src/temporal/parser.cpp" "src/temporal/CMakeFiles/esv_temporal.dir/parser.cpp.o" "gcc" "src/temporal/CMakeFiles/esv_temporal.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/esv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/esv_temporal.dir/automaton.cpp.o"
  "CMakeFiles/esv_temporal.dir/automaton.cpp.o.d"
  "CMakeFiles/esv_temporal.dir/formula.cpp.o"
  "CMakeFiles/esv_temporal.dir/formula.cpp.o.d"
  "CMakeFiles/esv_temporal.dir/monitor.cpp.o"
  "CMakeFiles/esv_temporal.dir/monitor.cpp.o.d"
  "CMakeFiles/esv_temporal.dir/parser.cpp.o"
  "CMakeFiles/esv_temporal.dir/parser.cpp.o.d"
  "libesv_temporal.a"
  "libesv_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esv_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

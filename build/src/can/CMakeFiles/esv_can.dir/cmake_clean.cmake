file(REMOVE_RECURSE
  "CMakeFiles/esv_can.dir/can_controller.cpp.o"
  "CMakeFiles/esv_can.dir/can_controller.cpp.o.d"
  "libesv_can.a"
  "libesv_can.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esv_can.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libesv_can.a"
)

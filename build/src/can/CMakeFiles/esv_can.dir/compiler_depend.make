# Empty compiler generated dependencies file for esv_can.
# This may be replaced when dependencies are built.

// Tests for the bounded model checker: circuit correctness (differential
// against the concrete interpreter semantics), counterexample discovery,
// safety proofs, unwinding behaviour, and the case-study failure mode.
#include <gtest/gtest.h>

#include "casestudy/eeprom.hpp"
#include "formal/bmc/bmc.hpp"
#include "formal/bmc/spec.hpp"
#include "minic/sema.hpp"

namespace esv::formal::bmc {
namespace {

BmcResult run(const std::string& source, BmcOptions options = {}) {
  minic::Program program = minic::compile(source);
  return check(program, options);
}

TEST(BmcTest, SafeStraightLineProgram) {
  const auto r = run(R"(
    int x;
    void main(void) {
      x = 3 * 7;
      assert(x == 21);
      assert(x != 20);
    }
  )");
  EXPECT_EQ(r.status, BmcResult::Status::kSafe);
  EXPECT_EQ(r.property_assertions, 2u);
  EXPECT_EQ(r.unwinding_assertions, 0u);
}

TEST(BmcTest, FailingAssertionFound) {
  const auto r = run(R"(
    int x;
    void main(void) {
      x = 5;
      assert(x == 6);
    }
  )");
  EXPECT_EQ(r.status, BmcResult::Status::kCounterexample);
  EXPECT_EQ(r.failing_line, 5);
}

TEST(BmcTest, CounterexampleOverInputs) {
  // Fails exactly when the input is 7.
  BmcOptions options;
  options.input_ranges["a"] = {0, 100};
  const auto r = run(R"(
    void main(void) {
      int a = __in(a);
      assert(a != 7);
    }
  )", options);
  ASSERT_EQ(r.status, BmcResult::Status::kCounterexample);
  ASSERT_EQ(r.inputs.size(), 1u);
  EXPECT_EQ(r.inputs[0].first, "a");
  EXPECT_EQ(r.inputs[0].second, 7u);
}

TEST(BmcTest, InputRangeConstraintsAvoidFalsePositives) {
  // Without the range the assertion is violable; with it, safe.
  BmcOptions constrained;
  constrained.input_ranges["a"] = {0, 9};
  const char* source = R"(
    void main(void) {
      int a = __in(a);
      assert(a < 10);
    }
  )";
  EXPECT_EQ(run(source, constrained).status, BmcResult::Status::kSafe);
  EXPECT_EQ(run(source).status, BmcResult::Status::kCounterexample);
}

TEST(BmcTest, SignedArithmeticOverflowWrapFound) {
  // 46341^2 overflows int32 and wraps negative: a*a >= 0 is NOT safe.
  BmcOptions options;
  options.input_ranges["a"] = {0, 100000};
  options.max_seconds = 120;
  const auto r = run(R"(
    void main(void) {
      int a = __in(a);
      assert(a * a >= 0);
    }
  )", options);
  EXPECT_EQ(r.status, BmcResult::Status::kCounterexample);
}

TEST(BmcTest, DivisionByZeroDetected) {
  BmcOptions options;
  options.input_ranges["a"] = {0, 5};
  const auto r = run(R"(
    int x;
    void main(void) {
      int a = __in(a);
      x = 10 / a;
    }
  )", options);
  EXPECT_EQ(r.status, BmcResult::Status::kCounterexample);
  EXPECT_NE(r.detail.find("division"), std::string::npos);
}

TEST(BmcTest, FullyUnwoundLoopGivesRealProof) {
  BmcOptions options;
  options.unwind = 12;  // the loop runs 10 times: fully unwound
  const auto r = run(R"(
    int sum;
    void main(void) {
      int i;
      sum = 0;
      for (i = 0; i < 10; i++) { sum += i; }
      assert(sum == 45);
    }
  )", options);
  EXPECT_EQ(r.status, BmcResult::Status::kSafe);
  EXPECT_EQ(r.unwinding_assertions, 0u);
}

TEST(BmcTest, InsufficientUnwindingIsOnlyBoundedSafe) {
  BmcOptions options;
  options.unwind = 3;  // loop needs 10 iterations
  const auto r = run(R"(
    int sum;
    void main(void) {
      int i;
      sum = 0;
      for (i = 0; i < 10; i++) { sum += i; }
      assert(sum >= 0);
    }
  )", options);
  EXPECT_EQ(r.status, BmcResult::Status::kBoundedSafe);
  EXPECT_GT(r.unwinding_assertions, 0u);
}

TEST(BmcTest, BugBeyondUnwindBoundIsMissed) {
  // The bug manifests at iteration 9; unwind 3 cannot see it — the classic
  // BMC boundedness caveat the paper mentions ("CBMC can be used for
  // finding errors and not for proving correctness").
  const char* source = R"(
    int i;
    void main(void) {
      for (i = 0; i < 20; i++) {
        assert(i != 9);
      }
    }
  )";
  BmcOptions shallow;
  shallow.unwind = 3;
  EXPECT_EQ(run(source, shallow).status, BmcResult::Status::kBoundedSafe);
  BmcOptions deep;
  deep.unwind = 15;
  EXPECT_EQ(run(source, deep).status, BmcResult::Status::kCounterexample);
}

TEST(BmcTest, FunctionInliningWithReturnValues) {
  const auto r = run(R"(
    int out;
    int add3(int a, int b, int c) { return a + b + c; }
    void main(void) {
      out = add3(1, 2, 3);
      assert(out == 6);
    }
  )");
  EXPECT_EQ(r.status, BmcResult::Status::kSafe);
}

TEST(BmcTest, RecursionBeyondDepthReportsBudget) {
  BmcOptions options;
  options.max_inline_depth = 8;
  const auto r = run(R"(
    int f(int n) {
      if (n <= 0) { return 0; }
      return f(n - 1) + 1;
    }
    void main(void) {
      int x = f(100);
      assert(x == 100);
    }
  )", options);
  EXPECT_EQ(r.status, BmcResult::Status::kBudgetExceeded);
}

TEST(BmcTest, SwitchFallthroughSemantics) {
  BmcOptions options;
  options.input_ranges["v"] = {0, 4};
  const auto r = run(R"(
    int out;
    void main(void) {
      int v = __in(v);
      out = 0;
      switch (v) {
        case 0: out = 10; break;
        case 1:
        case 2: out = 20; break;
        default: out = 99;
      }
      assert(out == 10 || out == 20 || out == 99);
      assert(v != 1 || out == 20);
      assert(v != 3 || out == 99);
    }
  )", options);
  EXPECT_EQ(r.status, BmcResult::Status::kSafe);
}

TEST(BmcTest, BreakContinueSemantics) {
  const auto r = run(R"(
    int hits;
    void main(void) {
      int i;
      hits = 0;
      for (i = 0; i < 8; i++) {
        if (i == 2) { continue; }
        if (i == 5) { break; }
        hits = hits + 1;
      }
      assert(hits == 4);
      assert(i == 5);
    }
  )");
  EXPECT_EQ(r.status, BmcResult::Status::kSafe);
}

TEST(BmcTest, ShortCircuitGuardsDivision) {
  BmcOptions options;
  options.input_ranges["a"] = {0, 3};
  const auto r = run(R"(
    int ok;
    void main(void) {
      int a = __in(a);
      ok = (a != 0) && (6 / a >= 2);
      assert(a != 2 || ok == 1);
    }
  )", options);
  // The division-by-zero check sits behind the short-circuit guard, so the
  // program is safe.
  EXPECT_EQ(r.status, BmcResult::Status::kSafe);
}

TEST(BmcTest, ArraysWithSymbolicIndex) {
  BmcOptions options;
  options.input_ranges["k"] = {0, 3};
  const auto r = run(R"(
    int t[4];
    void main(void) {
      int k = __in(k);
      t[0] = 10; t[1] = 11; t[2] = 12; t[3] = 13;
      t[k] = 99;
      assert(t[k] == 99);
    }
  )", options);
  EXPECT_EQ(r.status, BmcResult::Status::kSafe);
}

TEST(BmcTest, GateBudgetStopsExplosion) {
  BmcOptions options;
  options.unwind = 50;
  options.max_gates = 5000;  // tiny budget
  const auto r = run(R"(
    int acc;
    void main(void) {
      int i;
      acc = __in(x);
      for (i = 0; i < 50; i++) { acc = acc * acc + 1; }
      assert(acc != 123);
    }
  )", options);
  EXPECT_EQ(r.status, BmcResult::Status::kBudgetExceeded);
}

// --- circuit validation: signed division/remainder against C semantics -------

struct DivCase {
  std::int32_t a;
  std::int32_t b;
};

class SignedDivisionTest : public ::testing::TestWithParam<DivCase> {};

TEST_P(SignedDivisionTest, CircuitMatchesCSemantics) {
  const DivCase& tc = GetParam();
  const std::int32_t q = tc.a / tc.b;
  const std::int32_t r = tc.a % tc.b;
  // The inputs range over a window around the case so the division circuit
  // is really symbolic; the assertion pins the interesting point.
  BmcOptions options;
  options.input_ranges["a"] = {tc.a - 1, tc.a + 1};
  options.input_ranges["b"] = {tc.b, tc.b + 1};  // window excludes 0
  const std::string source =
      "int qq; int rr;\n"
      "void main(void) {\n"
      "  int a = __in(a);\n"
      "  int b = __in(b);\n"
      "  qq = a / b;\n"
      "  rr = a % b;\n"
      "  assert(!(a == (" + std::to_string(tc.a) + ") && b == (" +
      std::to_string(tc.b) + ")) || (qq == (" + std::to_string(q) +
      ") && rr == (" + std::to_string(r) + ")));\n"
      "}\n";
  const auto result = run(source, options);
  EXPECT_EQ(result.status, BmcResult::Status::kSafe)
      << tc.a << " / " << tc.b;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SignedDivisionTest,
    ::testing::Values(DivCase{7, 2}, DivCase{-7, 2}, DivCase{7, -3},
                      DivCase{-7, -3}, DivCase{0, 5}, DivCase{1, 1},
                      DivCase{100000, 7}, DivCase{-100000, 9},
                      DivCase{2147483647, 2}, DivCase{-2147483647, 3},
                      DivCase{6, 6}, DivCase{-5, 5}),
    [](const ::testing::TestParamInfo<DivCase>& info) {
      const auto sgn = [](std::int32_t v) {
        return v < 0 ? "m" + std::to_string(-v) : std::to_string(v);
      };
      return sgn(info.param.a) + "_over_" + sgn(info.param.b);
    });

// --- the paper's Fig. 7 failure mode on the case study ------------------------

TEST(BmcCaseStudyTest, SpecInstrumentationInsertsMonitor) {
  const auto& read = casestudy::operation_by_name("Read");
  const std::string instrumented = instrument_response(
      casestudy::eeprom_emulation_source(), read.op_code, read.ret_global,
      read.return_codes);
  EXPECT_NE(instrumented.find("Spec-tool generated"), std::string::npos);
  EXPECT_NE(instrumented.find("assert(ret_read == 1"), std::string::npos);
  // Still a valid program.
  EXPECT_NO_THROW(minic::compile(instrumented));
}

TEST(BmcCaseStudyTest, EepromUnwindingExceedsBudget) {
  const auto& read = casestudy::operation_by_name("Read");
  const std::string instrumented = instrument_response(
      casestudy::eeprom_emulation_source(), read.op_code, read.ret_global,
      read.return_codes);
  minic::Program program = minic::compile(instrumented);
  BmcOptions options;
  options.unwind = 20;           // the paper's unwinding limit
  options.max_gates = 2'000'000; // keep the test fast; the bench uses more
  options.input_ranges["op_select"] = {0, 6};
  options.input_ranges["rec_id"] = {0, 9};
  options.input_ranges["wdata"] = {0, 0xFFFF};
  options.input_ranges["inject_fault"] = {0, 1};
  const BmcResult r = check(program, options);
  // The unbounded main loop + deep poll loops make full unwinding
  // infeasible: either the budget blows or only bounded-safety remains.
  EXPECT_TRUE(r.status == BmcResult::Status::kBudgetExceeded ||
              r.status == BmcResult::Status::kBoundedSafe ||
              r.status == BmcResult::Status::kSolverTimeout)
      << to_string(r.status);
  EXPECT_NE(r.status, BmcResult::Status::kCounterexample);
}

}  // namespace
}  // namespace esv::formal::bmc

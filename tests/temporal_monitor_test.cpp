// Tests for the progression monitor, AR-automaton synthesis, and their
// equivalence (property-based, over random traces).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "temporal/automaton.hpp"
#include "temporal/monitor.hpp"
#include "temporal/parser.hpp"

namespace esv::temporal {
namespace {

/// A trace step assigns values to proposition indices 0..n-1.
using Step = std::vector<bool>;

PropValuation valuation(const Step& step) {
  return [&step](int index) {
    return index >= 0 && static_cast<std::size_t>(index) < step.size() &&
           step[static_cast<std::size_t>(index)];
  };
}

Verdict run_progression(FormulaFactory& f, FormulaRef prop,
                        const std::vector<Step>& trace) {
  ProgressionMonitor mon(f, prop);
  for (const Step& s : trace) {
    if (mon.step(valuation(s)) != Verdict::kPending) break;
  }
  return mon.verdict();
}

TEST(MonitorTest, GlobalPropertyViolatedOnFirstFalse) {
  FormulaFactory f;
  FormulaRef prop = parse_fltl("G a", f);
  ProgressionMonitor mon(f, prop);
  EXPECT_EQ(mon.step(valuation({true})), Verdict::kPending);
  EXPECT_EQ(mon.step(valuation({true})), Verdict::kPending);
  EXPECT_EQ(mon.step(valuation({false})), Verdict::kViolated);
  // Verdict is sticky.
  EXPECT_EQ(mon.step(valuation({true})), Verdict::kViolated);
  EXPECT_EQ(mon.steps(), 3u);
}

TEST(MonitorTest, EventuallyValidatedWhenSeen) {
  FormulaFactory f;
  FormulaRef prop = parse_fltl("F a", f);
  ProgressionMonitor mon(f, prop);
  EXPECT_EQ(mon.step(valuation({false})), Verdict::kPending);
  EXPECT_EQ(mon.step(valuation({true})), Verdict::kValidated);
}

TEST(MonitorTest, BoundedResponseWithinBudget) {
  FormulaFactory f;
  // index 0 = req, 1 = ack.
  FormulaRef prop = parse_fltl("G (req -> F[2] ack)", f);
  // req at step 0, ack at step 2 (within F[2]); fine.
  EXPECT_EQ(run_progression(
                f, prop, {{true, false}, {false, false}, {false, true}}),
            Verdict::kPending);  // G keeps watching
  // req at step 0, no ack by step 2: violated.
  EXPECT_EQ(run_progression(
                f, prop, {{true, false}, {false, false}, {false, false}}),
            Verdict::kViolated);
}

TEST(MonitorTest, VerdictAtEndUsesFiniteSemantics) {
  FormulaFactory f;
  ProgressionMonitor strong(f, parse_fltl("F a", f));
  strong.step(valuation({false}));
  EXPECT_EQ(strong.verdict_at_end(), Verdict::kViolated);

  ProgressionMonitor weak(f, parse_fltl("G a", f));
  weak.step(valuation({true}));
  EXPECT_EQ(weak.verdict_at_end(), Verdict::kValidated);
}

TEST(MonitorTest, ResetRestores) {
  FormulaFactory f;
  ProgressionMonitor mon(f, parse_fltl("G a", f));
  mon.step(valuation({false}));
  EXPECT_EQ(mon.verdict(), Verdict::kViolated);
  mon.reset();
  EXPECT_EQ(mon.verdict(), Verdict::kPending);
  EXPECT_EQ(mon.steps(), 0u);
  EXPECT_EQ(mon.step(valuation({true})), Verdict::kPending);
}

TEST(MonitorTest, TrivialProperties) {
  FormulaFactory f;
  ProgressionMonitor t(f, f.constant(true));
  EXPECT_EQ(t.verdict(), Verdict::kValidated);
  ProgressionMonitor fo(f, f.constant(false));
  EXPECT_EQ(fo.verdict(), Verdict::kViolated);
}

// --- AR-automaton synthesis -------------------------------------------------

TEST(AutomatonTest, BoundedEventuallyHasLinearStates) {
  FormulaFactory f;
  FormulaRef prop = parse_fltl("F[10] a", f);
  ArAutomaton a = synthesize(f, prop);
  // States: F[10] a ... F[1] a, a, plus true and false sinks = 13.
  EXPECT_EQ(a.state_count(), 13u);
  EXPECT_EQ(a.assignment_count(), 2u);
}

TEST(AutomatonTest, StateCountGrowsWithBound) {
  FormulaFactory f;
  const std::size_t s100 =
      synthesize(f, parse_fltl("F[100] a", f)).state_count();
  const std::size_t s1000 =
      synthesize(f, parse_fltl("F[1000] a", f)).state_count();
  EXPECT_GT(s1000, s100);
  EXPECT_EQ(s1000 - s100, 900u);
}

TEST(AutomatonTest, SinksSelfLoop) {
  FormulaFactory f;
  ArAutomaton a = synthesize(f, parse_fltl("F[2] a", f));
  for (const auto& state : a.states()) {
    if (state.verdict != Verdict::kPending) {
      for (auto next : state.next) {
        EXPECT_EQ(a.states()[next].obligation, state.obligation);
      }
    }
  }
}

TEST(AutomatonTest, MonitorMatchesHandTrace) {
  FormulaFactory f;
  ArAutomaton a = synthesize(f, parse_fltl("G (req -> F[2] ack)", f));
  AutomatonMonitor mon(a);
  EXPECT_EQ(mon.step(valuation({true, false})), Verdict::kPending);
  EXPECT_EQ(mon.step(valuation({false, false})), Verdict::kPending);
  EXPECT_EQ(mon.step(valuation({false, false})), Verdict::kViolated);
}

TEST(AutomatonTest, StateLimitEnforced) {
  FormulaFactory f;
  SynthesisOptions opts;
  opts.max_states = 10;
  EXPECT_THROW(synthesize(f, parse_fltl("F[100] a", f), opts),
               SynthesisLimitError);
}

TEST(AutomatonTest, PropLimitEnforced) {
  FormulaFactory f;
  SynthesisOptions opts;
  opts.max_props = 2;
  EXPECT_THROW(synthesize(f, parse_fltl("F (a && b && c)", f), opts),
               SynthesisLimitError);
}

TEST(AutomatonTest, IlDumpContainsStatesAndProps) {
  FormulaFactory f;
  ArAutomaton a = synthesize(f, parse_fltl("F[1] ok", f));
  const std::string il = a.to_il(f, "demo");
  EXPECT_NE(il.find("ar-automaton \"demo\""), std::string::npos);
  EXPECT_NE(il.find("b0=ok"), std::string::npos);
  EXPECT_NE(il.find("initial: s0"), std::string::npos);
  EXPECT_NE(il.find("[validated]"), std::string::npos);
  EXPECT_NE(il.find("[violated]"), std::string::npos);
}

// --- Property-based equivalence: progression == synthesized automaton -------

struct EquivalenceCase {
  const char* name;
  const char* property;
  int prop_count;
};

class MonitorEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(MonitorEquivalenceTest, ProgressionAndAutomatonAgreeOnRandomTraces) {
  const EquivalenceCase& tc = GetParam();
  FormulaFactory f;
  FormulaRef prop = parse_fltl(tc.property, f);
  ArAutomaton automaton = synthesize(f, prop);
  common::Rng rng(0xC0FFEE ^ std::hash<std::string>{}(tc.name));

  for (int trial = 0; trial < 200; ++trial) {
    ProgressionMonitor pm(f, prop);
    AutomatonMonitor am(automaton);
    const int len = static_cast<int>(rng.next_below(30)) + 1;
    for (int i = 0; i < len; ++i) {
      Step step(static_cast<std::size_t>(tc.prop_count));
      for (int p = 0; p < tc.prop_count; ++p) step[p] = rng.next_chance(1, 2);
      const Verdict pv = pm.step(valuation(step));
      const Verdict av = am.step(valuation(step));
      ASSERT_EQ(pv, av) << tc.name << " trial " << trial << " step " << i;
      if (pv != Verdict::kPending) break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Properties, MonitorEquivalenceTest,
    ::testing::Values(
        EquivalenceCase{"globally", "G a", 1},
        EquivalenceCase{"eventually", "F a", 1},
        EquivalenceCase{"bounded_eventually", "F[5] a", 1},
        EquivalenceCase{"bounded_always", "G[5] a", 1},
        EquivalenceCase{"next2", "X[2] a", 1},
        EquivalenceCase{"response", "G (a -> F b)", 2},
        EquivalenceCase{"bounded_response", "G (a -> F[3] b)", 2},
        EquivalenceCase{"until", "a U b", 2},
        EquivalenceCase{"bounded_until", "a U[4] b", 2},
        EquivalenceCase{"release", "a R b", 2},
        EquivalenceCase{"weak_until", "a W b", 2},
        EquivalenceCase{"nested", "G (a -> X (b U c))", 3},
        EquivalenceCase{"paper_shape", "F (a -> F[6] (b || c))", 3},
        EquivalenceCase{"conjunction", "G a && F b", 2},
        EquivalenceCase{"iff", "G (a <-> b)", 2}),
    [](const ::testing::TestParamInfo<EquivalenceCase>& info) {
      return info.param.name;
    });

// --- Bounded-operator edge cases (campaign seed traces hit all of these) ---

// F[0] f collapses to f: the window is "now".
TEST(EdgeCaseTest, EventuallyZeroBoundCollapsesToOperand) {
  FormulaFactory f;
  EXPECT_EQ(parse_fltl("F[0] a", f), f.prop("a"));

  // Verdict arrives on the very first step, in both modes.
  FormulaRef prop = parse_fltl("F[0] a", f);
  ProgressionMonitor pm_true(f, prop);
  EXPECT_EQ(pm_true.step(valuation({true})), Verdict::kValidated);
  ProgressionMonitor pm_false(f, prop);
  EXPECT_EQ(pm_false.step(valuation({false})), Verdict::kViolated);

  ArAutomaton a = synthesize(f, prop);
  AutomatonMonitor am_true(a);
  EXPECT_EQ(am_true.step(valuation({true})), Verdict::kValidated);
  AutomatonMonitor am_false(a);
  EXPECT_EQ(am_false.step(valuation({false})), Verdict::kViolated);

  // Inside a response property F[0] behaves like plain implication.
  EXPECT_EQ(parse_fltl("G (a -> F[0] b)", f), parse_fltl("G (a -> b)", f));
}

// a U[0] b collapses to b (window of one step), G[0] likewise.
TEST(EdgeCaseTest, UntilZeroBoundCollapsesToRhs) {
  FormulaFactory f;
  // Parse first so "a" takes proposition index 0 before prop() lookups.
  FormulaRef prop = parse_fltl("a U[0] b", f);
  EXPECT_EQ(prop, f.prop("b"));
  EXPECT_EQ(parse_fltl("G[0] a", f), f.prop("a"));
  EXPECT_EQ(parse_fltl("a R[0] b", f), f.prop("b"));

  ProgressionMonitor pm(f, prop);
  // a alone cannot satisfy the zero-width window.
  EXPECT_EQ(pm.step(valuation({true, false})), Verdict::kViolated);
  ArAutomaton a = synthesize(f, prop);
  AutomatonMonitor am(a);
  EXPECT_EQ(am.step(valuation({false, true})), Verdict::kValidated);
}

// X[n] where the trace ends before step n: pending at the budget in both
// modes, and strong (violated) under finite-trace end-of-trace semantics.
TEST(EdgeCaseTest, NextPastEndOfTrace) {
  FormulaFactory f;
  FormulaRef prop = parse_fltl("X[3] a", f);
  ArAutomaton automaton = synthesize(f, prop);

  ProgressionMonitor pm(f, prop);
  AutomatonMonitor am(automaton);
  for (int step = 0; step < 2; ++step) {  // trace ends after 2 < 3 steps
    EXPECT_EQ(pm.step(valuation({true})), Verdict::kPending);
    EXPECT_EQ(am.step(valuation({true})), Verdict::kPending);
  }
  // Pending at budget: no decision was forced...
  EXPECT_EQ(pm.verdict(), Verdict::kPending);
  EXPECT_EQ(am.verdict(), Verdict::kPending);
  // ...but if the trace ends here, X (strong) fails on the missing state.
  EXPECT_EQ(pm.verdict_at_end(), Verdict::kViolated);

  // With enough trace the value at exactly step n decides.
  ProgressionMonitor pm2(f, prop);
  AutomatonMonitor am2(automaton);
  for (int step = 0; step < 3; ++step) {
    pm2.step(valuation({false}));
    am2.step(valuation({false}));
  }
  EXPECT_EQ(pm2.step(valuation({true})), Verdict::kValidated);
  EXPECT_EQ(am2.step(valuation({true})), Verdict::kValidated);
}

// Pending-at-budget for a bounded response: a trace that stops mid-window
// leaves the verdict pending in both modes, and both modes agree step by
// step up to the budget.
TEST(EdgeCaseTest, PendingAtBudgetInBothModes) {
  FormulaFactory f;
  FormulaRef prop = parse_fltl("G (a -> F[10] b)", f);
  ArAutomaton automaton = synthesize(f, prop);

  ProgressionMonitor pm(f, prop);
  AutomatonMonitor am(automaton);
  // Step 0 raises the obligation; the budget ends the trace inside the
  // 10-step window with b never seen.
  for (int step = 0; step < 5; ++step) {
    const Step s{step == 0, false};
    EXPECT_EQ(pm.step(valuation(s)), Verdict::kPending) << "step " << step;
    EXPECT_EQ(am.step(valuation(s)), Verdict::kPending) << "step " << step;
  }
  EXPECT_EQ(pm.verdict(), Verdict::kPending);
  EXPECT_EQ(am.verdict(), Verdict::kPending);
  // End-of-trace semantics resolve the open strong obligation to violated.
  EXPECT_EQ(pm.verdict_at_end(), Verdict::kViolated);

  // An unbounded G with no open obligation is weak: pending while running,
  // validated if the trace ends.
  ProgressionMonitor weak(f, parse_fltl("G (a -> F[10] b)", f));
  EXPECT_EQ(weak.step(valuation({false, false})), Verdict::kPending);
  EXPECT_EQ(weak.verdict_at_end(), Verdict::kValidated);
}

// The paper reports that properties with *no* time bound sometimes outperform
// bounded ones because the AR-automaton for a large bound is expensive to
// generate. Sanity-check the mechanism: unbounded response has O(1) states,
// bounded response O(bound).
TEST(AutomatonTest, UnboundedResponseIsSmallerThanBounded) {
  FormulaFactory f;
  const auto unbounded = synthesize(f, parse_fltl("G (a -> F b)", f));
  const auto bounded = synthesize(f, parse_fltl("G (a -> F[1000] b)", f));
  EXPECT_LT(unbounded.state_count(), 10u);
  EXPECT_GT(bounded.state_count(), 1000u);
}

}  // namespace
}  // namespace esv::temporal

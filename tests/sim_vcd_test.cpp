// Tests for the VCD tracer.
#include <gtest/gtest.h>

#include <set>

#include "sim/clock.hpp"
#include "sim/vcd.hpp"

namespace esv::sim {
namespace {

TEST(VcdTest, HeaderDeclaresProbes) {
  Simulation sim;
  VcdTracer vcd(sim);
  bool flag = false;
  std::uint32_t word = 0;
  vcd.add_bool("flag", [&] { return flag; });
  vcd.add_u32("word", [&] { return word; });
  vcd.sample();
  const std::string out = vcd.str();
  EXPECT_NE(out.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 1 ! flag $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 32 \" word $end"), std::string::npos);
  EXPECT_NE(out.find("$enddefinitions $end"), std::string::npos);
}

TEST(VcdTest, EmitsOnlyChanges) {
  Simulation sim;
  VcdTracer vcd(sim);
  std::uint32_t value = 5;
  vcd.add_u32("v", [&] { return value; });
  vcd.sample();        // initial: emitted
  vcd.sample();        // unchanged: nothing
  value = 6;
  vcd.sample();        // change: emitted
  const std::string out = vcd.str();
  EXPECT_NE(out.find("b101 !"), std::string::npos);
  EXPECT_NE(out.find("b110 !"), std::string::npos);
  // Exactly two value lines for this probe.
  std::size_t count = 0;
  for (std::size_t pos = out.find("b1"); pos != std::string::npos;
       pos = out.find("b1", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 2u);
}

TEST(VcdTest, TimestampsFollowSimulationTime) {
  Simulation sim;
  Clock clk(sim, "clk", Time::ns(10));
  VcdTracer vcd(sim);
  vcd.add_bool("clk", [&] { return clk.value(); });
  vcd.add_u32("cycles", [&] {
    return static_cast<std::uint32_t>(clk.cycles());
  });
  vcd.sample_on(clk.posedge_event());
  sim.run(Time::ns(50));
  const std::string out = vcd.str();
  EXPECT_EQ(vcd.samples(), 5u);
  EXPECT_NE(out.find("#10000"), std::string::npos);  // 10 ns in ps
  EXPECT_NE(out.find("#50000"), std::string::npos);
  EXPECT_NE(out.find("1!"), std::string::npos);      // clk high at posedge
}

TEST(VcdTest, BoolValueChanges) {
  Simulation sim;
  VcdTracer vcd(sim);
  bool b = false;
  vcd.add_bool("b", [&] { return b; });
  vcd.sample();
  b = true;
  vcd.sample();
  b = false;
  vcd.sample();
  const std::string out = vcd.str();
  EXPECT_NE(out.find("0!"), std::string::npos);
  EXPECT_NE(out.find("1!"), std::string::npos);
}

TEST(VcdTest, AddAfterSampleRejected) {
  Simulation sim;
  VcdTracer vcd(sim);
  vcd.add_bool("a", [] { return true; });
  vcd.sample();
  EXPECT_THROW(vcd.add_bool("b", [] { return false; }), std::logic_error);
}

TEST(VcdTest, IdentifierCodesAreUniqueForManyProbes) {
  Simulation sim;
  VcdTracer vcd(sim);
  for (int i = 0; i < 200; ++i) {
    vcd.add_bool("p" + std::to_string(i), [] { return false; });
  }
  vcd.sample();
  const std::string out = vcd.str();
  // 200 probes all declared; spot-check the two-character code region
  // (index 94 encodes as "!\"" in base-94 with the low digit first).
  EXPECT_NE(out.find("$var wire 1 !\" p94 $end"), std::string::npos);
  // All identifier codes are distinct.
  std::set<std::string> ids;
  std::size_t pos = 0;
  while ((pos = out.find("$var wire 1 ", pos)) != std::string::npos) {
    pos += 12;
    const std::size_t space = out.find(' ', pos);
    ids.insert(out.substr(pos, space - pos));
  }
  EXPECT_EQ(ids.size(), 200u);
}

}  // namespace
}  // namespace esv::sim

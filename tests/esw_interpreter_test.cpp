// Tests for the C2SystemC lowering and the derived-model interpreter.
#include <gtest/gtest.h>

#include "esw/esw_model.hpp"
#include "esw/esw_program.hpp"
#include "esw/interpreter.hpp"
#include "flash/flash_controller.hpp"
#include "minic/sema.hpp"

namespace esv::esw {
namespace {

/// Test fixture bundling program + lowering + memory + interpreter.
struct Runner {
  explicit Runner(const std::string& source,
                  minic::InputProvider* provider = nullptr)
      : program(minic::compile(source)),
        lowered(lower_program(program)),
        memory(0x10000),
        interp(program, lowered, memory,
               provider != nullptr ? *provider : zero_inputs) {}

  /// Runs to completion (with a safety budget).
  void run(std::uint64_t budget = 100000) {
    interp.run(budget);
    ASSERT_TRUE(interp.finished()) << "program did not finish in budget";
  }

  minic::Program program;
  EswProgram lowered;
  mem::AddressSpace memory;
  minic::ZeroInputProvider zero_inputs;
  Interpreter interp;
};

TEST(EswLoweringTest, OpCountsAndStructure) {
  Runner r(R"(
    int x;
    void main(void) {
      x = 1;
      if (x == 1) { x = 2; } else { x = 3; }
    }
  )");
  // main: SetFname, Eval, CondJump, Eval, Jump, Eval, Return.
  const auto& ops = r.lowered.functions[0].ops;
  ASSERT_EQ(ops.size(), 7u);
  EXPECT_EQ(ops[0].kind, EswOp::Kind::kSetFname);
  EXPECT_EQ(ops[2].kind, EswOp::Kind::kCondJump);
  EXPECT_EQ(ops[4].kind, EswOp::Kind::kJump);
  EXPECT_EQ(ops.back().kind, EswOp::Kind::kReturn);
}

TEST(EswLoweringTest, CallsExtractedToAnf) {
  Runner r(R"(
    int g;
    int two(void) { return 2; }
    void main(void) { g = two() + three(); }
    int three(void) { return 3; }
  )");
  r.run();
  EXPECT_EQ(r.interp.global("g"), 5u);
}

TEST(EswLoweringTest, ShortCircuitCallRejected) {
  EXPECT_THROW(
      {
        Runner r("int f(void) { return 1; } int x; "
                 "void main(void) { x = x && f(); }");
      },
      LoweringError);
  EXPECT_THROW(
      {
        Runner r("int f(void) { return 1; } int x; "
                 "void main(void) { x = x ? f() : 0; }");
      },
      LoweringError);
}

TEST(EswInterpreterTest, ArithmeticAndGlobals) {
  Runner r(R"(
    int a; int b; int c; int d; int e; int f;
    void main(void) {
      a = 7 + 3 * 2;         // 13
      b = (20 - 5) / 3;      // 5
      c = 17 % 5;            // 2
      d = (1 << 4) | 3;      // 19
      e = ~0 & 0xFF;         // 255
      f = -5 + 2;            // -3
    }
  )");
  r.run();
  EXPECT_EQ(r.interp.global("a"), 13u);
  EXPECT_EQ(r.interp.global("b"), 5u);
  EXPECT_EQ(r.interp.global("c"), 2u);
  EXPECT_EQ(r.interp.global("d"), 19u);
  EXPECT_EQ(r.interp.global("e"), 255u);
  EXPECT_EQ(static_cast<std::int32_t>(r.interp.global("f")), -3);
}

TEST(EswInterpreterTest, SignedComparisonsAndLogic) {
  Runner r(R"(
    int lt; int ge; int land; int lor; int not_;
    void main(void) {
      lt = -1 < 1;
      ge = -1 >= 1;
      land = 2 && 0;
      lor = 0 || 3;
      not_ = !5;
    }
  )");
  r.run();
  EXPECT_EQ(r.interp.global("lt"), 1u);
  EXPECT_EQ(r.interp.global("ge"), 0u);
  EXPECT_EQ(r.interp.global("land"), 0u);
  EXPECT_EQ(r.interp.global("lor"), 1u);
  EXPECT_EQ(r.interp.global("not_"), 0u);
}

TEST(EswInterpreterTest, ControlFlowLoops) {
  Runner r(R"(
    int sum; int fact; int count;
    void main(void) {
      int i;
      sum = 0;
      for (i = 1; i <= 10; i++) { sum += i; }
      fact = 1;
      i = 5;
      while (i > 1) { fact = fact * i; i--; }
      count = 0;
      do { count++; } while (count < 3);
    }
  )");
  r.run();
  EXPECT_EQ(r.interp.global("sum"), 55u);
  EXPECT_EQ(r.interp.global("fact"), 120u);
  EXPECT_EQ(r.interp.global("count"), 3u);
}

TEST(EswInterpreterTest, BreakContinueNested) {
  Runner r(R"(
    int hits;
    void main(void) {
      int i; int j;
      hits = 0;
      for (i = 0; i < 5; i++) {
        if (i == 1) { continue; }
        if (i == 4) { break; }
        for (j = 0; j < 10; j++) {
          if (j == 2) { break; }
          hits++;
        }
      }
    }
  )");
  r.run();
  EXPECT_EQ(r.interp.global("hits"), 6u);  // i in {0,2,3}, 2 inner hits each
}

TEST(EswInterpreterTest, SwitchWithFallthroughAndDefault) {
  Runner r(R"(
    int out0; int out1; int out2; int out9;
    int classify(int v) {
      int r;
      r = 0;
      switch (v) {
        case 0: r = 100; break;
        case 1:          // falls through to 2
        case 2: r = 200; break;
        default: r = 900;
      }
      return r;
    }
    void main(void) {
      out0 = classify(0);
      out1 = classify(1);
      out2 = classify(2);
      out9 = classify(42);
    }
  )");
  r.run();
  EXPECT_EQ(r.interp.global("out0"), 100u);
  EXPECT_EQ(r.interp.global("out1"), 200u);
  EXPECT_EQ(r.interp.global("out2"), 200u);
  EXPECT_EQ(r.interp.global("out9"), 900u);
}

TEST(EswInterpreterTest, RecursionWorks) {
  Runner r(R"(
    int result;
    int fib(int n) {
      if (n < 2) { return n; }
      int a = fib(n - 1);
      int b = fib(n - 2);
      return a + b;
    }
    void main(void) { result = fib(10); }
  )");
  r.run();
  EXPECT_EQ(r.interp.global("result"), 55u);
}

TEST(EswInterpreterTest, ArraysAndIndexing) {
  Runner r(R"(
    int table[5];
    int sum;
    void main(void) {
      int i;
      for (i = 0; i < 5; i++) { table[i] = i * i; }
      sum = 0;
      for (i = 0; i < 5; i++) { sum += table[i]; }
    }
  )");
  r.run();
  EXPECT_EQ(r.interp.global("sum"), 30u);
}

TEST(EswInterpreterTest, FnameTracksCurrentFunction) {
  Runner r(R"(
    int probe1; int probe2;
    void helper(void) { probe1 = fname; }
    void main(void) {
      helper();
      probe2 = fname;
    }
  )");
  const std::uint32_t helper_id = r.program.fname_id("helper");
  const std::uint32_t main_id = r.program.fname_id("main");
  r.run();
  EXPECT_EQ(r.interp.global("probe1"), helper_id);
  EXPECT_EQ(r.interp.global("probe2"), main_id);  // restored after return
}

TEST(EswInterpreterTest, GlobalInitializersApplied) {
  Runner r(R"(
    enum { SEED = 11 };
    int x = SEED;
    int arr[4] = {1, 2, 3};
    int y;
    void main(void) { y = x + arr[0] + arr[1] + arr[2] + arr[3]; }
  )");
  r.run();
  EXPECT_EQ(r.interp.global("y"), 11u + 1 + 2 + 3 + 0);
}

TEST(EswInterpreterTest, ScriptedInputs) {
  class Script : public minic::InputProvider {
   public:
    std::uint32_t input(int, const std::string&) override {
      return values[next_ == values.size() ? values.size() - 1 : next_++];
    }
    std::vector<std::uint32_t> values{10, 20, 30};

   private:
    std::size_t next_ = 0;
  };
  Script script;
  Runner r(R"(
    int total;
    void main(void) {
      total = __in(req) + __in(req) + __in(req);
    }
  )", &script);
  r.run();
  EXPECT_EQ(r.interp.global("total"), 60u);
}

TEST(EswInterpreterTest, AssertFailureThrows) {
  Runner r(R"(
    int x;
    void main(void) {
      x = 3;
      assert(x == 3);
      assert(x == 4);
    }
  )");
  EXPECT_THROW(r.interp.run(1000), AssertionFailure);
}

TEST(EswInterpreterTest, DivisionByZeroFaults) {
  Runner r("int x; void main(void) { x = 1 / (x - x); }");
  EXPECT_THROW(r.interp.run(1000), RuntimeFault);
}

TEST(EswInterpreterTest, ResetRestartsProgram) {
  Runner r("int x; void main(void) { x = x + 1; }");
  r.run();
  EXPECT_EQ(r.interp.global("x"), 1u);
  r.interp.reset();
  EXPECT_FALSE(r.interp.finished());
  r.run();
  EXPECT_EQ(r.interp.global("x"), 1u);  // globals re-initialized
}

TEST(EswInterpreterTest, StepCountsAreStatementLevel) {
  Runner r(R"(
    int x;
    void main(void) {
      x = 1;       // step (+ SetFname step before it)
      x = 2;       // step
      x = 3;       // step
    }
  )");
  // SetFname, three Evals, Return = 5 steps.
  EXPECT_TRUE(r.interp.step());
  EXPECT_TRUE(r.interp.step());
  EXPECT_TRUE(r.interp.step());
  EXPECT_TRUE(r.interp.step());
  EXPECT_FALSE(r.interp.step());  // Return of main ends the program
  EXPECT_EQ(r.interp.steps_executed(), 5u);
}

TEST(EswInterpreterTest, MemoryMappedFlashAccess) {
  flash::FlashConfig cfg;
  cfg.pages = 2;
  cfg.words_per_page = 4;
  cfg.program_busy_ticks = 2;
  flash::FlashController flash_dev(cfg);
  Runner r(R"(
    unsigned status;
    void main(void) {
      // program word 0 = 0xAB via the controller
      *(0xF0000004) = 0;        // ADDR
      *(0xF0000008) = 0xAB;     // DATA
      *(0xF0000000) = 2;        // CMD = PROGRAM_WORD
      status = *(0xF000000C);   // read STATUS (busy)
      while ((*(0xF000000C) & 1) == 1) { status = 1; }
      status = *(0xF000000C);
    }
  )");
  r.memory.map_device(0xF0000000, flash_dev.window_bytes(), flash_dev);
  r.run();
  EXPECT_EQ(flash_dev.word_at(0), 0xABu);
  EXPECT_EQ(r.interp.global("status") & flash::FlashController::kStatusReady,
            flash::FlashController::kStatusReady);
}

TEST(EswModelTest, PcEventDrivesChecker) {
  minic::Program program = minic::compile(R"(
    int x;
    void main(void) {
      x = 1;
      x = 2;
      x = 3;
    }
  )");
  EswProgram lowered = lower_program(program);
  mem::AddressSpace memory(0x10000);
  minic::ZeroInputProvider inputs;
  sim::Simulation sim;
  EswModel model(sim, "esw", program, lowered, memory, inputs);
  sctc::TemporalChecker checker(sim, "sctc");
  checker.register_proposition("x_is_3", [&memory, &program] {
    return memory.sctc_read_uint(program.find_global("x")->address) == 3;
  });
  checker.add_property("reaches3", "F x_is_3");
  checker.bind_trigger(model.pc_event());
  sim.run();
  EXPECT_TRUE(model.finished());
  EXPECT_EQ(checker.validated_count(), 1u);
  // 5 statements = 5 pc events.
  EXPECT_EQ(checker.steps(), 5u);
}

TEST(EswModelTest, StandaloneRunStopsWhenDecided) {
  minic::Program program = minic::compile(R"(
    int x;
    void main(void) {
      while (1) { x = x + 1; }
    }
  )");
  EswProgram lowered = lower_program(program);
  mem::AddressSpace memory(0x10000);
  minic::ZeroInputProvider inputs;
  Interpreter interp(program, lowered, memory, inputs);
  sim::Simulation sim;
  sctc::TemporalChecker checker(sim, "sctc");
  checker.register_proposition("x_big", [&interp] {
    return interp.global("x") >= 10;
  });
  checker.add_property("grows", "F x_big");
  const std::uint64_t steps = run_standalone(interp, checker, 1000000);
  EXPECT_EQ(checker.validated_count(), 1u);
  EXPECT_LT(steps, 100u);  // decided long before the budget
}

}  // namespace
}  // namespace esv::esw

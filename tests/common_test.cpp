#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "common/strings.hpp"

namespace esv::common {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, NextBelowStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(RngTest, NextBelowRejectsZeroBound) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.next_in_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit in 200 draws
}

TEST(RngTest, NextInRangeSinglePoint) {
  Rng rng(3);
  EXPECT_EQ(rng.next_in_range(5, 5), 5);
}

TEST(RngTest, NextInRangeRejectsInverted) {
  Rng rng(3);
  EXPECT_THROW(rng.next_in_range(2, 1), std::invalid_argument);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(rng.next_chance(1, 1));
    EXPECT_FALSE(rng.next_chance(0, 100));
  }
}

TEST(RngTest, ChanceRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    if (rng.next_chance(25, 100)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(trials), 0.25, 0.03);
}

TEST(RngTest, WeightedRespectsZeroWeights) {
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    const auto idx = rng.next_weighted({0, 5, 0, 3});
    EXPECT_TRUE(idx == 1 || idx == 3);
  }
}

TEST(RngTest, WeightedAllZeroThrows) {
  Rng rng(13);
  EXPECT_THROW(rng.next_weighted({0, 0}), std::invalid_argument);
}

TEST(StringsTest, JoinBasic) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(StringsTest, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, TrimEdges) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(StringsTest, WithThousands) {
  EXPECT_EQ(with_thousands(0), "0");
  EXPECT_EQ(with_thousands(999), "999");
  EXPECT_EQ(with_thousands(1000), "1,000");
  EXPECT_EQ(with_thousands(1234567), "1,234,567");
}

}  // namespace
}  // namespace esv::common

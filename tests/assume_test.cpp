// __assume(e) across the whole toolchain: simulation platforms end the run
// quietly when an assumption fails; formal engines prune the search space.
#include <gtest/gtest.h>

#include "cpu/codegen.hpp"
#include "cpu/cpu.hpp"
#include "esw/esw_program.hpp"
#include "esw/interpreter.hpp"
#include "formal/absref/absref.hpp"
#include "formal/bmc/bmc.hpp"
#include "minic/parser.hpp"
#include "minic/sema.hpp"

namespace esv {
namespace {

constexpr const char* kGuardedProgram = R"(
  int x;
  int reached;
  void main(void) {
    x = __in(a);
    __assume(x >= 0 && x < 10);
    reached = 1;
    assert(x < 10);
  }
)";

TEST(AssumeTest, InterpreterEndsRunQuietlyOnViolation) {
  // Zero inputs satisfy the assumption; a scripted provider violating it
  // must end the run without executing the rest.
  class Fixed : public minic::InputProvider {
   public:
    explicit Fixed(std::uint32_t v) : v_(v) {}
    std::uint32_t input(int, const std::string&) override { return v_; }

   private:
    std::uint32_t v_;
  };

  minic::Program program = minic::compile(kGuardedProgram);
  esw::EswProgram lowered = esw::lower_program(program);

  {
    Fixed ok(5);
    mem::AddressSpace memory(0x2000);
    esw::Interpreter interp(program, lowered, memory, ok);
    interp.run(1000);
    EXPECT_TRUE(interp.finished());
    EXPECT_EQ(interp.global("reached"), 1u);
  }
  {
    Fixed bad(99);
    mem::AddressSpace memory(0x2000);
    esw::Interpreter interp(program, lowered, memory, bad);
    EXPECT_NO_THROW(interp.run(1000));  // no AssertionFailure
    EXPECT_TRUE(interp.finished());
    EXPECT_EQ(interp.global("reached"), 0u);  // rest was skipped
  }
}

TEST(AssumeTest, CpuHaltsWithoutTrap) {
  class Fixed : public minic::InputProvider {
   public:
    std::uint32_t input(int, const std::string&) override { return 1000; }
  };
  minic::Program program = minic::compile(kGuardedProgram);
  cpu::CodeImage image = cpu::compile_to_image(program);
  sim::Simulation sim;
  mem::AddressSpace memory(0x2000);
  Fixed inputs;
  sim::Clock clock(sim, "clk", sim::Time::ns(10));
  cpu::Cpu core(sim, "cpu", image, memory, inputs, clock);
  core.set_stop_on_halt(true);
  sim.run(sim::Time::ms(1));
  EXPECT_TRUE(core.halted());
  EXPECT_FALSE(core.trapped());
  EXPECT_EQ(memory.sctc_read_uint(program.find_global("reached")->address),
            0u);
}

TEST(AssumeTest, BmcExcludesViolatingPaths) {
  // Without the assume the assertion is violable; with it, provably safe —
  // even though the input itself is unconstrained in the options.
  minic::Program program = minic::compile(kGuardedProgram);
  const auto r = formal::bmc::check(program);
  EXPECT_EQ(r.status, formal::bmc::BmcResult::Status::kSafe);

  minic::Program unguarded = minic::compile(R"(
    int x;
    void main(void) {
      x = __in(a);
      assert(x < 10);
    }
  )");
  EXPECT_EQ(formal::bmc::check(unguarded).status,
            formal::bmc::BmcResult::Status::kCounterexample);
}

TEST(AssumeTest, AbsRefPrunesAssumedFalsePaths) {
  const auto r = formal::absref::check_assertions(minic::compile(R"(
    int mode = 0;
    void main(void) {
      mode = __in(m);
      __assume(mode == 1);
      assert(mode == 1);
    }
  )"));
  EXPECT_EQ(r.status, formal::absref::AbsRefResult::Status::kSafe);
}

TEST(AssumeTest, SyntaxErrors) {
  EXPECT_THROW(minic::compile("void main(void) { __assume; }"),
               minic::ParseError);
  EXPECT_THROW(minic::compile("void main(void) { __assume(1) }"),
               minic::ParseError);
  EXPECT_THROW(minic::compile("void main(void) { __assume(undefined); }"),
               minic::SemaError);
}

// A loop condition containing a call must be re-evaluated (and the call
// re-executed) on every iteration after ANF extraction.
TEST(LoweringRegressionTest, CallInLoopConditionReevaluates) {
  minic::Program program = minic::compile(R"(
    int calls;
    int next(void) { calls = calls + 1; return calls; }
    int total;
    void main(void) {
      while (next() < 5) {
        total = total + 1;
      }
    }
  )");
  esw::EswProgram lowered = esw::lower_program(program);
  mem::AddressSpace memory(0x2000);
  minic::ZeroInputProvider inputs;
  esw::Interpreter interp(program, lowered, memory, inputs);
  interp.run(100000);
  ASSERT_TRUE(interp.finished());
  EXPECT_EQ(interp.global("calls"), 5u);  // evaluated until it returned 5
  EXPECT_EQ(interp.global("total"), 4u);
}

}  // namespace
}  // namespace esv

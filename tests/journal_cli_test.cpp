// End-to-end crash-safety tests for the campaign journal (docs/JOURNAL.md):
// kill -9 the orchestrator mid-campaign, then --resume, and demand a final
// --report byte-identical to an uninterrupted run — under both the
// in-process runner (--jobs) and the distributed broker (--workers). Plus
// the CLI validation surface (--journal/--resume/--journal-sync/
// --seed-mem-limit usage errors exit 2) and the per-seed memory ceiling.
// The binary paths and sample data directory are injected by CMake.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "journal/journal.hpp"

#ifndef ESV_VERIFY_BIN
#error "ESV_VERIFY_BIN must be defined by the build"
#endif
#ifndef ESV_DATA_DIR
#error "ESV_DATA_DIR must be defined by the build"
#endif

#if defined(__SANITIZE_ADDRESS__)
#define ESV_ASAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ESV_ASAN_BUILD 1
#endif
#endif

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

RunResult run_cli(const std::string& args) {
  const std::string command =
      std::string(ESV_VERIFY_BIN) + " " + args + " 2>&1";
  RunResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[512];
  while (fgets(buffer, sizeof buffer, pipe) != nullptr) {
    result.output += buffer;
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string blinker_c() { return std::string(ESV_DATA_DIR) + "/blinker.c"; }
std::string blinker_esv() { return std::string(ESV_DATA_DIR) + "/blinker.esv"; }
std::string sample_args() { return blinker_c() + " " + blinker_esv(); }

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "esv_jcli_" + std::to_string(::getpid()) +
         "_" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

/// A blinker slowed to ~thousands of statements per seed, so a campaign over
/// a few dozen seeds stays alive long enough to be killed mid-flight.
const char* kSlowBlinker = R"(
enum { LED_OFF = 0, LED_ON = 1 };

int led;
int cycles;

void update(int enable) {
  if (enable == 1) {
    if (led == LED_OFF) {
      led = LED_ON;
    } else {
      led = LED_OFF;
    }
  } else {
    led = LED_OFF;
  }
}

void main(void) {
  led = LED_OFF;
  while (cycles < 4000) {
    int enable = __in(enable);
    update(enable);
    cycles = cycles + 1;
  }
}
)";

const char* kSlowBlinkerSpec = R"(
input enable 0 1

prop led_on    = led == LED_ON
prop led_off   = led == LED_OFF
prop finished  = cycles >= 4000

check legal: G (led_on || led_off)
check terminates: F finished
)";

struct SlowSample {
  std::string program;
  std::string spec;
  std::string args() const { return program + " " + spec; }
};

SlowSample write_slow_sample(const std::string& tag) {
  SlowSample sample;
  sample.program = temp_path(tag + "_slow.c");
  sample.spec = temp_path(tag + "_slow.esv");
  write_file(sample.program, kSlowBlinker);
  write_file(sample.spec, kSlowBlinkerSpec);
  return sample;
}

/// fork/execs esv-verify so the test can SIGKILL it mid-campaign (popen
/// offers no pid). stdout/stderr go to /dev/null.
pid_t spawn_cli(const std::vector<std::string>& args) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  FILE* sink = std::freopen("/dev/null", "w", stdout);
  (void)sink;
  sink = std::freopen("/dev/null", "w", stderr);
  (void)sink;
  std::vector<char*> argv;
  std::string binary = ESV_VERIFY_BIN;
  argv.push_back(binary.data());
  std::vector<std::string> owned = args;
  for (std::string& arg : owned) argv.push_back(arg.data());
  argv.push_back(nullptr);
  ::execv(ESV_VERIFY_BIN, argv.data());
  _exit(127);
}

/// Runs the slow-blinker campaign with a journal, SIGKILLs it once at least
/// `min_records` seeds hit the journal, and returns how many seed records
/// the journal held at kill time (0 if the run finished first — still a
/// valid resume test, just not an interrupted one).
std::size_t kill_mid_campaign(const SlowSample& sample,
                              const std::string& journal,
                              const std::vector<std::string>& extra_args,
                              std::size_t min_records) {
  // --report matters even though the killed run never writes it: requesting
  // a report turns metrics collection on, which is part of the config
  // digest, and the resume run will ask for a report.
  std::vector<std::string> args = {sample.program,
                                   sample.spec,
                                   "--campaign=1..24",
                                   "--journal=" + journal,
                                   "--journal-sync=record",
                                   "--report=" + journal + ".killed.json",
                                   "--quiet"};
  args.insert(args.end(), extra_args.begin(), extra_args.end());
  const pid_t pid = spawn_cli(args);
  EXPECT_GT(pid, 0);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  std::size_t at_kill = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    // A finished child means the campaign outran the poll; resume still
    // has to reproduce the report, so carry on.
    if (::waitpid(pid, nullptr, WNOHANG) == pid) return 0;
    const esv::journal::RecoveredJournal snapshot =
        esv::journal::recover(journal);
    if (snapshot.results.size() >= min_records) {
      at_kill = snapshot.results.size();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
  return at_kill;
}

/// The tentpole acceptance check: reference run, killed run, resumed run;
/// the resumed report must be byte-identical to the reference report.
void expect_resume_byte_identical(const std::string& tag,
                                  const std::vector<std::string>& extra_args,
                                  const std::string& extra_cli) {
  const SlowSample sample = write_slow_sample(tag);
  const std::string journal = temp_path(tag + ".journal");
  const std::string reference_report = temp_path(tag + "_ref.json");
  const std::string resumed_report = temp_path(tag + "_resumed.json");
  std::remove(journal.c_str());

  const RunResult reference =
      run_cli(sample.args() + " --campaign=1..24 --quiet " + extra_cli +
              " --report=" + reference_report + " --report-timing=off");
  ASSERT_EQ(reference.exit_code, 0) << reference.output;

  const std::size_t at_kill =
      kill_mid_campaign(sample, journal, extra_args, /*min_records=*/3);
  // Not a hard assert: on a heavily loaded machine the campaign can finish
  // before the poll sees 3 records, and resume must still be correct.
  EXPECT_LT(at_kill, 24u) << "campaign was not interrupted mid-flight";

  const RunResult resumed =
      run_cli(sample.args() + " --campaign=1..24 " + extra_cli +
              " --journal=" + journal + " --resume" +
              " --report=" + resumed_report + " --report-timing=off");
  ASSERT_EQ(resumed.exit_code, 0) << resumed.output;
  EXPECT_NE(resumed.output.find("journal: resumed"), std::string::npos)
      << resumed.output;

  const std::string reference_bytes = read_file(reference_report);
  ASSERT_FALSE(reference_bytes.empty());
  EXPECT_EQ(read_file(resumed_report), reference_bytes)
      << "resumed report differs from the uninterrupted run";

  std::remove(sample.program.c_str());
  std::remove(sample.spec.c_str());
  std::remove((journal + ".killed.json").c_str());
  std::remove(journal.c_str());
  std::remove(reference_report.c_str());
  std::remove(resumed_report.c_str());
}

TEST(JournalCliTest, KillNineThenResumeIsByteIdenticalInProcess) {
  expect_resume_byte_identical("jobs", {"--jobs=8"}, "--jobs=8");
}

TEST(JournalCliTest, KillNineThenResumeIsByteIdenticalDistributed) {
  expect_resume_byte_identical("workers", {"--workers=2", "--jobs=2"},
                               "--workers=2 --jobs=2");
}

TEST(JournalCliTest, ResumeDropsACorruptTailAndReproducesTheReport) {
  const std::string journal = temp_path("tail.journal");
  const std::string reference_report = temp_path("tail_ref.json");
  const std::string resumed_report = temp_path("tail_resumed.json");
  std::remove(journal.c_str());

  const RunResult reference =
      run_cli(sample_args() + " --campaign=1..10 --jobs=2 --quiet" +
              " --report=" + reference_report + " --report-timing=off");
  ASSERT_EQ(reference.exit_code, 0) << reference.output;

  // The journaled run requests a report too: metrics collection rides on
  // --report and is covered by the config digest the resume run checks.
  const std::string journaled_report = temp_path("tail_journaled.json");
  const RunResult journaled =
      run_cli(sample_args() + " --campaign=1..10 --jobs=2 --quiet" +
              " --journal=" + journal + " --report=" + journaled_report +
              " --report-timing=off");
  ASSERT_EQ(journaled.exit_code, 0) << journaled.output;
  std::remove(journaled_report.c_str());

  // Tear the journal mid-record, as a crash during a write would.
  const std::string bytes = read_file(journal);
  ASSERT_GT(bytes.size(), 200u);
  write_file(journal, bytes.substr(0, bytes.size() - 137));

  const RunResult resumed =
      run_cli(sample_args() + " --campaign=1..10 --jobs=2" +
              " --journal=" + journal + " --resume" +
              " --report=" + resumed_report + " --report-timing=off");
  ASSERT_EQ(resumed.exit_code, 0) << resumed.output;
  EXPECT_NE(resumed.output.find("corrupt tail dropped"), std::string::npos)
      << resumed.output;
  EXPECT_EQ(read_file(resumed_report), read_file(reference_report));

  std::remove(journal.c_str());
  std::remove(reference_report.c_str());
  std::remove(resumed_report.c_str());
}

TEST(JournalCliTest, ResumeRejectsAForeignJournalWithExitTwo) {
  const std::string journal = temp_path("foreign.journal");
  std::remove(journal.c_str());
  const RunResult first = run_cli(sample_args() +
                                  " --campaign=1..6 --quiet --journal=" +
                                  journal);
  ASSERT_EQ(first.exit_code, 0) << first.output;

  // Same inputs, different seed range: splicing those results would yield a
  // report no single campaign ever computed.
  const RunResult mismatch = run_cli(sample_args() +
                                     " --campaign=1..7 --journal=" + journal +
                                     " --resume");
  EXPECT_EQ(mismatch.exit_code, 2) << mismatch.output;
  EXPECT_NE(mismatch.output.find("different campaign configuration"),
            std::string::npos)
      << mismatch.output;
  std::remove(journal.c_str());
}

TEST(JournalCliTest, ResumeOfAMissingJournalStartsFresh) {
  const std::string journal = temp_path("fresh.journal");
  const std::string reference_report = temp_path("fresh_ref.json");
  const std::string resumed_report = temp_path("fresh_resumed.json");
  std::remove(journal.c_str());

  const RunResult reference =
      run_cli(sample_args() + " --campaign=1..6 --quiet" +
              " --report=" + reference_report + " --report-timing=off");
  ASSERT_EQ(reference.exit_code, 0) << reference.output;

  // --resume against a journal that never got written (the orchestrator
  // died before the header landed) is a fresh start, not an error.
  const RunResult resumed =
      run_cli(sample_args() + " --campaign=1..6" + " --journal=" + journal +
              " --resume --report=" + resumed_report + " --report-timing=off");
  EXPECT_EQ(resumed.exit_code, 0) << resumed.output;
  EXPECT_NE(resumed.output.find("journal: resumed 0 of 6"), std::string::npos)
      << resumed.output;
  EXPECT_EQ(read_file(resumed_report), read_file(reference_report));

  std::remove(journal.c_str());
  std::remove(reference_report.c_str());
  std::remove(resumed_report.c_str());
}

TEST(JournalCliTest, MonitorErrorsAreReplayedNotRerunOnResume) {
  // --resume x --monitor-mode=both: a journaled "monitor"-kind error capture
  // (compiled monitor diverged from the interpreted oracle) must be replayed
  // from the journal, never re-run. The ESV_CAMPAIGN_TEST_DIVERGE_SEED hook
  // forces the divergence only in the first run; if resume re-ran the seed
  // it would now come back clean and the reports would differ.
  const std::string journal = temp_path("monitor.journal");
  const std::string first_report = temp_path("monitor_first.json");
  const std::string resumed_report = temp_path("monitor_resumed.json");
  std::remove(journal.c_str());

  ::setenv("ESV_CAMPAIGN_TEST_DIVERGE_SEED", "5", 1);
  const RunResult first =
      run_cli(sample_args() +
              " --campaign=1..12 --jobs=2 --monitor-mode=both --quiet" +
              " --journal=" + journal + " --report=" + first_report +
              " --report-timing=off");
  ::unsetenv("ESV_CAMPAIGN_TEST_DIVERGE_SEED");
  ASSERT_EQ(first.exit_code, 1) << first.output;
  const std::string first_json = read_file(first_report);
  ASSERT_NE(first_json.find("\"error_kind\": \"monitor\""), std::string::npos)
      << first_json;
  ASSERT_NE(first_json.find("monitor divergence"), std::string::npos);

  const RunResult resumed =
      run_cli(sample_args() +
              " --campaign=1..12 --jobs=2 --monitor-mode=both" +
              " --journal=" + journal + " --resume --report=" +
              resumed_report + " --report-timing=off");
  EXPECT_EQ(resumed.exit_code, 1) << resumed.output;
  EXPECT_NE(resumed.output.find("journal: resumed 12 of 12"),
            std::string::npos)
      << resumed.output;
  EXPECT_EQ(read_file(resumed_report), first_json);

  std::remove(journal.c_str());
  std::remove(first_report.c_str());
  std::remove(resumed_report.c_str());
}

TEST(JournalCliTest, JournalFlagValidationExitsTwo) {
  struct Case {
    const char* flags;
    const char* message;
  };
  const Case cases[] = {
      {"--journal=/tmp/j.bin", "--journal is only available in campaign"},
      {"--campaign=1..4 --resume", "--resume requires --journal"},
      {"--campaign=1..4 --journal-sync=batch",
       "--journal-sync requires --journal"},
      {"--campaign=1..4 --journal=/tmp/j.bin --journal-sync=eventually",
       "--journal-sync must be record, batch, or none"},
      {"--campaign=1..4 --journal=", "--journal expects a file path"},
      {"--campaign=1..4 --seed-mem-limit=64", "--seed-mem-limit requires"},
      {"--campaign=1..4 --workers=2 --seed-mem-limit=0",
       "--seed-mem-limit must be a positive"},
      {"--report-timing=sometimes", "--report-timing must be on or off"},
  };
  for (const Case& test_case : cases) {
    const RunResult r = run_cli(sample_args() + " " + test_case.flags);
    EXPECT_EQ(r.exit_code, 2) << test_case.flags << "\n" << r.output;
    EXPECT_NE(r.output.find(test_case.message), std::string::npos)
        << test_case.flags << "\n"
        << r.output;
  }
}

TEST(JournalCliTest, UnwritableJournalPathExitsTwo) {
  const RunResult r =
      run_cli(sample_args() +
              " --campaign=1..4 --journal=/nonexistent/dir/j.bin --quiet");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("journal"), std::string::npos) << r.output;
}

/// A program whose globals demand a ~128 MiB address space per seed run.
const char* kHungryProgram = R"(
int buf[33554432];
int led;
int cycles;

void main(void) {
  led = 0;
  while (cycles < 5) {
    int enable = __in(enable);
    if (enable == 1) { led = 1; } else { led = 0; }
    cycles = cycles + 1;
  }
}
)";

const char* kHungrySpec = R"(
input enable 0 1

prop on  = led == 1
prop off = led == 0

check legal: G (on || off)
)";

TEST(JournalCliTest, SeedMemLimitTurnsARunawaySeedIntoASutError) {
#ifdef ESV_ASAN_BUILD
  GTEST_SKIP() << "RLIMIT_AS ceiling is disabled under AddressSanitizer";
#else
  const std::string program = temp_path("hungry.c");
  const std::string spec = temp_path("hungry.esv");
  const std::string report = temp_path("hungry_report.json");
  write_file(program, kHungryProgram);
  write_file(spec, kHungrySpec);

  // Control: without a ceiling the 128 MiB program verifies cleanly, so any
  // failure below is the ceiling's doing, not the program's.
  const RunResult unlimited = run_cli(program + " " + spec +
                                      " --campaign=1..2 --workers=2 --quiet");
  ASSERT_EQ(unlimited.exit_code, 0) << unlimited.output;

  // With a 64 MiB ceiling every seed's allocation fails; the shard survives
  // and records a structured "sut" error capture instead of dying.
  const RunResult limited =
      run_cli(program + " " + spec +
              " --campaign=1..2 --workers=2 --seed-mem-limit=64 --quiet" +
              " --report=" + report + " --report-timing=off");
  EXPECT_EQ(limited.exit_code, 1) << limited.output;
  const std::string json = read_file(report);
  EXPECT_NE(json.find("\"error_kind\": \"sut\""), std::string::npos) << json;
  EXPECT_NE(json.find("memory ceiling"), std::string::npos) << json;

  std::remove(program.c_str());
  std::remove(spec.c_str());
  std::remove(report.c_str());
#endif
}

}  // namespace

// TraceWriter unit tests: the JSONL event schema is golden-tested line by
// line (docs/OBSERVABILITY.md documents it; tools parse it), and the string
// escaper is checked against hostile fault texts.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace esv::obs {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(ObsTraceTest, GoldenEventSchema) {
  TraceWriter trace;
  trace.seed_start(7);
  trace.prop_change(1, "led_on", true);
  trace.prop_change(2, "led_on", false);
  trace.automaton_state(2, "legal", 3);
  trace.monitor_transition(5, "legal", "pending", "violated");
  trace.fault(4, "bitflip led bit 3");
  trace.handshake(12);
  trace.seed_end(7, 200, 1, 1, 0);

  const std::vector<std::string> lines = lines_of(trace.text());
  ASSERT_EQ(lines.size(), 8u);
  EXPECT_EQ(lines[0], "{\"type\":\"seed_start\",\"seed\":7}");
  EXPECT_EQ(lines[1],
            "{\"type\":\"prop_change\",\"step\":1,\"prop\":\"led_on\","
            "\"value\":1}");
  EXPECT_EQ(lines[2],
            "{\"type\":\"prop_change\",\"step\":2,\"prop\":\"led_on\","
            "\"value\":0}");
  EXPECT_EQ(lines[3],
            "{\"type\":\"automaton_state\",\"step\":2,\"property\":\"legal\","
            "\"state\":3}");
  EXPECT_EQ(lines[4],
            "{\"type\":\"monitor_transition\",\"step\":5,"
            "\"property\":\"legal\",\"from\":\"pending\","
            "\"to\":\"violated\"}");
  EXPECT_EQ(lines[5],
            "{\"type\":\"fault\",\"step\":4,\"text\":\"bitflip led bit 3\"}");
  EXPECT_EQ(lines[6], "{\"type\":\"handshake\",\"steps\":12}");
  EXPECT_EQ(lines[7],
            "{\"type\":\"seed_end\",\"seed\":7,\"steps\":200,"
            "\"validated\":1,\"violated\":1,\"pending\":0}");
  EXPECT_EQ(trace.event_count(), 8u);
}

TEST(ObsTraceTest, EscapesHostileText) {
  TraceWriter trace;
  trace.fault(1, "quote\" backslash\\ newline\n tab\t bell\x07");
  EXPECT_EQ(trace.text(),
            "{\"type\":\"fault\",\"step\":1,\"text\":\"quote\\\" "
            "backslash\\\\ newline\\n tab\\t bell\\u0007\"}\n");
}

TEST(ObsTraceTest, EmptyTraceIsEmptyText) {
  TraceWriter trace;
  EXPECT_EQ(trace.text(), "");
  EXPECT_EQ(trace.event_count(), 0u);
}

TEST(ObsTraceTest, IdenticalEventSequencesRenderIdentically) {
  const auto emit = [] {
    TraceWriter trace;
    trace.seed_start(3);
    for (std::uint64_t step = 1; step <= 50; ++step) {
      trace.prop_change(step, "p", (step & 1) != 0);
    }
    trace.seed_end(3, 50, 0, 0, 1);
    return std::string(trace.text());
  };
  EXPECT_EQ(emit(), emit());
}

}  // namespace
}  // namespace esv::obs

// Tests for the checker's witness-trace ring buffer.
#include <gtest/gtest.h>

#include "sctc/checker.hpp"

namespace esv::sctc {
namespace {

TEST(WitnessTest, DisabledByDefault) {
  sim::Simulation sim;
  TemporalChecker checker(sim, "sctc");
  checker.register_proposition("a", [] { return true; });
  checker.add_property("p", "G a");
  checker.step_all();
  EXPECT_TRUE(checker.witness().empty());
  EXPECT_NE(checker.witness_table().find("no witness"), std::string::npos);
}

TEST(WitnessTest, RingBufferKeepsLastN) {
  sim::Simulation sim;
  TemporalChecker checker(sim, "sctc");
  int x = 0;
  checker.register_proposition("small", [&x] { return x < 3; });
  checker.add_property("p", "G small");
  checker.set_witness_depth(3);
  for (x = 0; x < 6; ++x) checker.step_all();
  ASSERT_EQ(checker.witness().size(), 3u);
  EXPECT_EQ(checker.witness()[0].step, 4u);
  EXPECT_EQ(checker.witness()[2].step, 6u);
  // Values captured per step: small was false from x==3 on.
  EXPECT_FALSE(checker.witness()[2].values[0]);
}

TEST(WitnessTest, TableShowsPropositionRows) {
  sim::Simulation sim;
  TemporalChecker checker(sim, "sctc");
  int x = 0;
  checker.register_proposition("low", [&x] { return x < 2; });
  checker.register_proposition("high", [&x] { return x >= 2; });
  checker.add_property("p", "G (low || high)");
  checker.set_witness_depth(4);
  for (x = 0; x < 4; ++x) checker.step_all();
  const std::string table = checker.witness_table();
  EXPECT_NE(table.find("step: 1 2 3 4"), std::string::npos);
  EXPECT_NE(table.find("low: 1 1 . ."), std::string::npos);
  EXPECT_NE(table.find("high: . . 1 1"), std::string::npos);
}

TEST(WitnessTest, CapturesStepsLeadingIntoViolation) {
  sim::Simulation sim;
  TemporalChecker checker(sim, "sctc");
  int x = 0;
  checker.register_proposition("ok", [&x] { return x != 5; });
  checker.add_property("p", "G ok");
  checker.set_witness_depth(2);
  for (x = 0; x < 8 && !checker.any_violated(); ++x) checker.step_all();
  ASSERT_EQ(checker.witness().size(), 2u);
  // The last recorded step is the violating one (ok false).
  EXPECT_FALSE(checker.witness().back().values[0]);
  EXPECT_TRUE(checker.witness().front().values[0]);
}

}  // namespace
}  // namespace esv::sctc

// Integration tests for the self-chaos engine (docs/RESILIENCE.md) at
// campaign scale. The headline invariant, swept across 200+ seeded
// single-fault schedules: a campaign under any single infrastructure fault
// ends either byte-identical to the fault-free run (every deterministic
// rendering: verdict table, summary, timing-free JSON, merged metrics) or
// in a deterministic structured abort — never a hang, never silent data
// loss. The CLI half covers --chaos/--chaos-seed/--campaign-timeout flag
// plumbing, journal-fault structured aborts (exit 2), the deadline abort
// (exit 3), and worker-side plan propagation end to end.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "chaos/chaos.hpp"
#include "dist/broker.hpp"

#ifndef ESV_WORKER_BIN
#error "ESV_WORKER_BIN must be defined by the build"
#endif
#ifndef ESV_VERIFY_BIN
#error "ESV_VERIFY_BIN must be defined by the build"
#endif
#ifndef ESV_DATA_DIR
#error "ESV_DATA_DIR must be defined by the build"
#endif

namespace esv::dist {
namespace {

const char* kBlinker = R"(
enum { LED_OFF = 0, LED_ON = 1 };

int led;
int cycles;

void update(int enable) {
  if (enable == 1) {
    if (led == LED_OFF) {
      led = LED_ON;
    } else {
      led = LED_OFF;
    }
  } else {
    led = LED_OFF;
  }
}

void main(void) {
  led = LED_OFF;
  while (cycles < 150) {
    int enable = __in(enable);
    update(enable);
    cycles = cycles + 1;
  }
}
)";

const char* kBlinkerSpec = R"(
input enable 0 1

prop led_on    = led == LED_ON
prop led_off   = led == LED_OFF
prop finished  = cycles >= 150

check legal: G (led_on || led_off)
check terminates: F finished
)";

constexpr std::uint64_t kSeedLo = 1;
constexpr std::uint64_t kSeedHi = 4;
constexpr std::uint64_t kSeedCount = kSeedHi - kSeedLo + 1;

campaign::CampaignConfig blinker_config(unsigned workers) {
  campaign::CampaignConfig config;
  config.program_source = kBlinker;
  config.spec_text = kBlinkerSpec;
  config.seed_lo = kSeedLo;
  config.seed_hi = kSeedHi;
  config.jobs = 1;
  config.workers = workers;
  config.worker_binary = ESV_WORKER_BIN;
  config.collect_metrics = true;
  config.seed_retries = 4;  // ample for single-fault crash re-dispatch
  return config;
}

/// Broker knobs tightened so fault recovery (idle re-ASSIGN, respawn
/// backoff, shutdown grace) runs at test speed rather than production speed.
BrokerOptions fast_recovery_options() {
  BrokerOptions options;
  options.reassign_after_seconds = 0.25;
  options.backoff_base_seconds = 0.01;
  options.backoff_cap_seconds = 0.05;
  options.shutdown_grace_seconds = 0.3;
  // Workers heartbeat every 200 ms, so 2 s of silence is decisively dead;
  // the production default (30 s) would turn every wedged-worker schedule
  // into a half-minute stall.
  options.heartbeat_timeout_seconds = 2.0;
  return options;
}

/// The fault-free reference every chaos run must reproduce byte for byte.
const campaign::CampaignReport& reference_report() {
  static const campaign::CampaignReport report = [] {
    campaign::CampaignConfig config = blinker_config(/*workers=*/0);
    return campaign::run(config);
  }();
  return report;
}

void expect_same_deterministic_renderings(const campaign::CampaignReport& a,
                                          const campaign::CampaignReport& b) {
  EXPECT_EQ(a.verdict_table(), b.verdict_table());
  EXPECT_EQ(a.summary(), b.summary());
  EXPECT_EQ(a.to_json(/*include_timing=*/false),
            b.to_json(/*include_timing=*/false));
  EXPECT_EQ(a.metrics.to_json(/*include_timing=*/false),
            b.metrics.to_json(/*include_timing=*/false));
}

struct ChaosRunOutcome {
  campaign::CampaignReport report;
  std::uint64_t broker_injections = 0;  // broker-side engine only
};

/// One distributed campaign under one chaos schedule, mirroring what
/// esv-verify --chaos does: a broker-role engine installed in this process
/// plus the plan forwarded to workers through BrokerOptions (and from there
/// the ESV_CHAOS_PLAN / ESV_CHAOS_SEED environment).
ChaosRunOutcome run_with_chaos(const std::string& plan_text,
                               std::uint64_t chaos_seed) {
  chaos::ChaosEngine engine(chaos::parse_plan(plan_text), chaos_seed,
                            chaos::Role::kBroker);
  chaos::ChaosEngine::install(&engine);
  BrokerOptions options = fast_recovery_options();
  options.chaos_plan_text = plan_text;
  options.chaos_seed = chaos_seed;
  ChaosRunOutcome outcome;
  outcome.report = run_distributed(blinker_config(/*workers=*/2), options);
  chaos::ChaosEngine::install(nullptr);
  outcome.broker_injections = engine.injected_count();
  return outcome;
}

/// The invariant a single-fault schedule must satisfy: byte-identical to
/// fault-free (graceful degradation included — degraded runs compute real
/// results), or a structured divergence where every slot is filled and every
/// failed seed carries a deterministic infrastructure capture.
void expect_survived_or_structured(const ChaosRunOutcome& outcome) {
  ASSERT_EQ(outcome.report.seeds.size(), kSeedCount) << "lost seed slots";
  if (outcome.report.error_seeds == 0) {
    expect_same_deterministic_renderings(reference_report(), outcome.report);
    return;
  }
  for (const campaign::SeedResult& seed : outcome.report.seeds) {
    if (!seed.error.empty()) {
      EXPECT_EQ(seed.error_kind, "infrastructure") << seed.error;
    }
  }
}

/// Sweeps `plans` x chaos seeds {1, 7} and returns how many schedules ran.
std::size_t sweep(const std::vector<std::string>& plans) {
  std::size_t schedules = 0;
  for (const std::string& plan : plans) {
    for (const std::uint64_t chaos_seed : {1ull, 7ull}) {
      SCOPED_TRACE("plan '" + plan + "' chaos-seed " +
                   std::to_string(chaos_seed));
      const auto t0 = std::chrono::steady_clock::now();
      expect_survived_or_structured(run_with_chaos(plan, chaos_seed));
      const double took =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (took > 2.0) {
        std::fprintf(stderr, "[chaos-sweep] slow schedule (%.1fs): '%s' seed %llu\n",
                     took, plan.c_str(),
                     static_cast<unsigned long long>(chaos_seed));
      }
      ++schedules;
    }
  }
  return schedules;
}

std::vector<std::string> wire_plans(const std::string& role_suffix) {
  const char* actions[] = {"drop",      "truncate",  "corrupt",
                           "duplicate", "shortsend", "delay 5"};
  std::vector<std::string> plans;
  for (const char* action : actions) {
    for (const int nth : {1, 2, 3, 5, 8}) {
      plans.push_back(std::string("wire.tx ") + action + " nth " +
                      std::to_string(nth) + role_suffix);
    }
  }
  return plans;
}

// The four sweeps below total 210 seeded single-fault schedules (ISSUE
// acceptance: >= 200), split so ctest can run them in parallel.

TEST(ChaosSweepTest, BrokerSideWireFaultsSurviveByteIdentical) {
  EXPECT_EQ(sweep(wire_plans(" role broker")), 60u);
}

TEST(ChaosSweepTest, WorkerSideWireFaultsSurviveByteIdentical) {
  EXPECT_EQ(sweep(wire_plans(" role worker")), 60u);
}

TEST(ChaosSweepTest, UnscopedWireFaultsSurviveByteIdentical) {
  EXPECT_EQ(sweep(wire_plans("")), 60u);
}

TEST(ChaosSweepTest, WorkerProcessFaultsSurviveByteIdentical) {
  std::vector<std::string> plans;
  for (const int nth : {1, 2, 3, 5, 8}) {
    // gen 0: only the first incarnation crashes, so the respawn completes
    // the campaign (the crash-loop shape is DegradedFleet... below).
    plans.push_back("worker.seed crash nth " + std::to_string(nth) + " gen 0");
    plans.push_back("worker.seed stall 20 nth " + std::to_string(nth));
    plans.push_back("worker.heartbeat delay 300 nth " + std::to_string(nth));
  }
  EXPECT_EQ(sweep(plans), 30u);
}

TEST(ChaosSweepTest, BrokerSideInjectionsReallyFire) {
  // Guards the sweep against silently passing because nothing injected: the
  // broker's very first frame is an ASSIGN, so this schedule must fire.
  const ChaosRunOutcome outcome = run_with_chaos("wire.tx drop nth 1 role broker", 1);
  EXPECT_GE(outcome.broker_injections, 1u);
  EXPECT_EQ(outcome.report.error_seeds, 0u);
}

TEST(ChaosSweepTest, WorkerCrashChaosReallyKillsWorkers) {
  chaos::ChaosEngine engine(
      chaos::parse_plan("worker.seed crash nth 1 gen 0"), 1,
      chaos::Role::kBroker);
  chaos::ChaosEngine::install(&engine);
  BrokerOptions options = fast_recovery_options();
  options.chaos_plan_text = "worker.seed crash nth 1 gen 0";
  const campaign::CampaignReport report =
      run_distributed(blinker_config(/*workers=*/2), options);
  chaos::ChaosEngine::install(nullptr);
  EXPECT_NE(report.dist_metrics.counters.at("dist.worker_exits"), 0u);
  EXPECT_EQ(report.error_seeds, 0u);
  expect_same_deterministic_renderings(reference_report(), report);
}

TEST(ChaosSweepTest, CrashLoopExhaustsFleetAndDegradesByteIdentical) {
  // Every incarnation crashes before its first seed: the whole fleet burns
  // its respawn budget, and graceful degradation must still produce a
  // byte-identical report on the broker's own threads.
  chaos::ChaosEngine engine(chaos::parse_plan("worker.seed crash nth 1"), 1,
                            chaos::Role::kBroker);
  chaos::ChaosEngine::install(&engine);
  BrokerOptions options = fast_recovery_options();
  options.chaos_plan_text = "worker.seed crash nth 1";
  options.max_respawns = 1;
  campaign::CampaignConfig config = blinker_config(/*workers=*/2);
  config.seed_retries = 8;
  const campaign::CampaignReport report = run_distributed(config, options);
  chaos::ChaosEngine::install(nullptr);
  EXPECT_TRUE(report.degraded);
  EXPECT_EQ(report.error_seeds, 0u);
  EXPECT_NE(report.dist_metrics.counters.at("dist.degradations"), 0u);
  expect_same_deterministic_renderings(reference_report(), report);
}

TEST(ChaosSweepTest, InProcessRunnerHasNoChaosSurface) {
  // The compute path itself carries no fault points: an installed engine
  // with every point armed must never fire during an in-process campaign
  // (wire/worker/journal probes all live in the infrastructure layers).
  chaos::ChaosEngine engine(
      chaos::parse_plan("wire.tx drop nth 1; worker.seed crash nth 1;"
                        " worker.heartbeat delay 100 nth 1;"
                        " journal.write failwrite nth 1;"
                        " journal.fsync failsync nth 1"),
      1, chaos::Role::kBroker);
  chaos::ChaosEngine::install(&engine);
  campaign::CampaignConfig config = blinker_config(/*workers=*/0);
  config.jobs = 2;
  const campaign::CampaignReport report = campaign::run(config);
  chaos::ChaosEngine::install(nullptr);
  EXPECT_EQ(engine.injected_count(), 0u);
  expect_same_deterministic_renderings(reference_report(), report);
}

// --- CLI surface ---------------------------------------------------------

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

RunResult run_cli(const std::string& args) {
  const std::string command =
      std::string(ESV_VERIFY_BIN) + " " + args + " 2>&1";
  RunResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[512];
  while (fgets(buffer, sizeof buffer, pipe) != nullptr) {
    result.output += buffer;
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string sample_args() {
  return std::string(ESV_DATA_DIR) + "/blinker.c " + ESV_DATA_DIR +
         "/blinker.esv";
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "esv_chaos_" + std::to_string(::getpid()) +
         "_" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(ChaosCliTest, FlagValidationExitsTwo) {
  struct Case {
    const char* flags;
    const char* message;
  };
  const Case cases[] = {
      {"'--chaos=wire.tx drop'", "--chaos is only available in campaign"},
      {"--campaign=1..4 --chaos-seed=3", "--chaos-seed requires --chaos"},
      {"--campaign-timeout=5", "--campaign-timeout is only available"},
      {"--campaign=1..4 --chaos=", "--chaos expects a plan"},
      {"--campaign=1..4 '--chaos=wire.tx explode'", "chaos plan line 1"},
  };
  for (const Case& test_case : cases) {
    const RunResult r = run_cli(sample_args() + " " + test_case.flags);
    EXPECT_EQ(r.exit_code, 2) << test_case.flags << "\n" << r.output;
    EXPECT_NE(r.output.find(test_case.message), std::string::npos)
        << test_case.flags << "\n"
        << r.output;
  }
}

TEST(ChaosCliTest, JournalShortWriteChaosIsByteIdentical) {
  const std::string reference_report_path = temp_path("sw_ref.json");
  const std::string chaos_report_path = temp_path("sw_chaos.json");
  const std::string journal = temp_path("sw.journal");
  std::remove(journal.c_str());

  const RunResult reference =
      run_cli(sample_args() + " --campaign=1..6 --jobs=2 --quiet" +
              " --report=" + reference_report_path + " --report-timing=off");
  ASSERT_EQ(reference.exit_code, 0) << reference.output;

  // Every journal record degraded to one-byte writes: the write loop must
  // absorb it (EINTR-style chunking) and the campaign must not notice.
  const RunResult chaotic = run_cli(
      sample_args() + " --campaign=1..6 --jobs=2 --quiet" + " --journal=" +
      journal + " \"--chaos=journal.write shortwrite nth 1 count 0\"" +
      " --report=" + chaos_report_path + " --report-timing=off");
  ASSERT_EQ(chaotic.exit_code, 0) << chaotic.output;
  EXPECT_EQ(read_file(chaos_report_path), read_file(reference_report_path));

  std::remove(journal.c_str());
  std::remove(reference_report_path.c_str());
  std::remove(chaos_report_path.c_str());
}

TEST(ChaosCliTest, JournalWriteAndFsyncChaosAbortStructuredWithExitTwo) {
  struct Case {
    const char* plan;
    const char* extra;
  };
  const Case cases[] = {
      {"journal.write failwrite nth 2", ""},
      {"journal.write enospc nth 1", ""},
      {"journal.fsync failsync nth 1", " --journal-sync=record"},
  };
  for (const Case& test_case : cases) {
    const std::string journal = temp_path("abort.journal");
    std::remove(journal.c_str());
    const RunResult r = run_cli(sample_args() +
                                " --campaign=1..6 --jobs=2 --quiet" +
                                " --journal=" + journal + " \"--chaos=" +
                                test_case.plan + "\"" + test_case.extra);
    EXPECT_EQ(r.exit_code, 2) << test_case.plan << "\n" << r.output;
    EXPECT_NE(r.output.find("journal"), std::string::npos)
        << test_case.plan << "\n"
        << r.output;
    std::remove(journal.c_str());
  }
}

TEST(ChaosCliTest, ChaosMetricsLandInTheTimingReport) {
  const std::string report_path = temp_path("metrics.json");
  const std::string journal = temp_path("metrics.journal");
  std::remove(journal.c_str());
  const RunResult r = run_cli(
      sample_args() + " --campaign=1..4 --jobs=2 --quiet" + " --journal=" +
      journal + " \"--chaos=journal.write shortwrite nth 1 count 0\"" +
      " --report=" + report_path);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  const std::string json = read_file(report_path);
  EXPECT_NE(json.find("\"chaos\""), std::string::npos) << json;
  EXPECT_NE(json.find("chaos.injected"), std::string::npos) << json;
  EXPECT_NE(json.find("chaos.journal.write.shortwrite"), std::string::npos)
      << json;
  std::remove(journal.c_str());
  std::remove(report_path.c_str());
}

TEST(ChaosCliTest, DistributedChaosPropagatesToWorkersAndStaysByteIdentical) {
  const std::string reference_report_path = temp_path("dist_ref.json");
  const std::string chaos_report_path = temp_path("dist_chaos.json");

  const RunResult reference = run_cli(
      sample_args() + " --campaign=1..6 --workers=2 --seed-retries=3 --quiet" +
      " --report=" + reference_report_path + " --report-timing=off");
  ASSERT_EQ(reference.exit_code, 0) << reference.output;

  // The corrupted RESULT frame trips the broker-side CRC check: the broker
  // kills that incarnation and re-dispatches, and the report must not
  // notice. `gen 0` scopes the fault to the first incarnation — the env
  // propagation re-arms the plan in every respawned worker, so an unscoped
  // `nth 2` would crash-loop the fleet into the structured-abort path
  // instead of proving clean recovery. --seed-retries must cover the crash:
  // its default of 0 abandons a seed on the first infrastructure loss.
  const RunResult chaotic = run_cli(
      sample_args() + " --campaign=1..6 --workers=2 --seed-retries=3 --quiet" +
      " --chaos-seed=3" +
      " \"--chaos=wire.tx corrupt nth 2 role worker gen 0\"" +
      " --report=" + chaos_report_path + " --report-timing=off");
  ASSERT_EQ(chaotic.exit_code, 0) << chaotic.output;
  EXPECT_EQ(read_file(chaos_report_path), read_file(reference_report_path));

  std::remove(reference_report_path.c_str());
  std::remove(chaos_report_path.c_str());
}

TEST(ChaosCliTest, CampaignTimeoutAbortsStructuredWithExitThree) {
  const std::string report_path = temp_path("deadline.json");
  const RunResult r =
      run_cli(sample_args() + " --campaign=1..64 --jobs=1 --quiet" +
              " --campaign-timeout=0.000001 --report=" + report_path);
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_NE(r.output.find("deadline exceeded"), std::string::npos) << r.output;
  // The partial report was still written, flagged, and every unfinished
  // seed carries the deterministic deadline capture.
  const std::string json = read_file(report_path);
  EXPECT_NE(json.find("\"aborted\": \"deadline\""), std::string::npos) << json;
  EXPECT_NE(json.find("--campaign-timeout"), std::string::npos) << json;
  EXPECT_NE(json.find("\"error_kind\": \"infrastructure\""), std::string::npos)
      << json;
  std::remove(report_path.c_str());
}

}  // namespace
}  // namespace esv::dist

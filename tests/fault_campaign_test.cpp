// Fault-injection campaigns and the hardened campaign runner: determinism of
// fault logs across jobs counts, verdict classification under fault, the
// per-seed watchdog, structured error capture, and the bounded retry policy.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "campaign/campaign.hpp"
#include "fault/fault_plan.hpp"

namespace esv::campaign {
namespace {

const char* kBlinker = R"(
enum { LED_OFF = 0, LED_ON = 1 };

int led;
int ticks_on;
int cycles;

void update(int enable) {
  if (enable == 1) {
    if (led == LED_OFF) {
      led = LED_ON;
    } else {
      led = LED_OFF;
    }
  } else {
    led = LED_OFF;
  }
  if (led == LED_ON) {
    ticks_on = ticks_on + 1;
  }
}

void main(void) {
  led = LED_OFF;
  ticks_on = 0;
  while (cycles < 200) {
    int enable = __in(enable);
    update(enable);
    cycles = cycles + 1;
  }
}
)";

const char* kBlinkerSpec = R"(
input enable 0 1

prop led_on    = led == LED_ON
prop led_off   = led == LED_OFF
prop finished  = cycles >= 200

check legal: G (led_on || led_off)
check terminates: F finished
)";

CampaignConfig fault_config(std::uint64_t lo, std::uint64_t hi,
                            unsigned jobs) {
  CampaignConfig config;
  config.program_source = kBlinker;
  config.spec_text = kBlinkerSpec;
  config.seed_lo = lo;
  config.seed_hi = hi;
  config.jobs = jobs;
  // Flip random bits of `led`: G (led_on || led_off) is violated whenever a
  // flip lands outside bit 0, so some seeds violate and some hold.
  config.fault_plan_text = "bitflip led prob 1/40\n";
  return config;
}

TEST(FaultCampaignTest, FaultLogsAndVerdictsDeterministicAcrossJobs) {
  const CampaignReport serial = run(fault_config(1, 24, 1));
  const CampaignReport parallel = run(fault_config(1, 24, 8));

  EXPECT_EQ(serial.verdict_table(), parallel.verdict_table());
  EXPECT_EQ(serial.to_json(/*include_timing=*/false),
            parallel.to_json(/*include_timing=*/false));
  ASSERT_EQ(serial.seeds.size(), parallel.seeds.size());
  for (std::size_t i = 0; i < serial.seeds.size(); ++i) {
    EXPECT_EQ(serial.seeds[i].injected_faults,
              parallel.seeds[i].injected_faults);
    EXPECT_EQ(serial.seeds[i].fault_log, parallel.seeds[i].fault_log)
        << "seed " << serial.seeds[i].seed;
  }
  EXPECT_TRUE(serial.fault_campaign);
  EXPECT_EQ(serial.fault_plan_entries, 1u);
  EXPECT_GT(serial.injected_faults_total, 0u);
}

TEST(FaultCampaignTest, ObservabilityDeterministicAcrossJobs) {
  // The observability layer must not weaken the campaign determinism
  // guarantee: merged metrics and every per-seed trace are byte-identical
  // whether the sweep ran serially or on 8 workers.
  CampaignConfig serial_config = fault_config(1, 16, 1);
  serial_config.collect_metrics = true;
  serial_config.capture_traces = true;
  CampaignConfig parallel_config = fault_config(1, 16, 8);
  parallel_config.collect_metrics = true;
  parallel_config.capture_traces = true;

  const CampaignReport serial = run(serial_config);
  const CampaignReport parallel = run(parallel_config);

  ASSERT_TRUE(serial.has_metrics);
  ASSERT_TRUE(parallel.has_metrics);
  EXPECT_EQ(serial.metrics.to_json(/*include_timing=*/false),
            parallel.metrics.to_json(/*include_timing=*/false));
  EXPECT_EQ(serial.to_json(/*include_timing=*/false),
            parallel.to_json(/*include_timing=*/false));

  ASSERT_EQ(serial.seeds.size(), parallel.seeds.size());
  for (std::size_t i = 0; i < serial.seeds.size(); ++i) {
    EXPECT_EQ(serial.seeds[i].trace_jsonl, parallel.seeds[i].trace_jsonl)
        << "seed " << serial.seeds[i].seed;
    EXPECT_FALSE(serial.seeds[i].trace_jsonl.empty());
    EXPECT_EQ(serial.seeds[i].metrics.to_json(false),
              parallel.seeds[i].metrics.to_json(false));
  }

  // The merged snapshot carries the expected counters: one campaign.seeds
  // entry, and the fault.injected counter agrees with the report tally.
  EXPECT_EQ(serial.metrics.counters.at("campaign.seeds"), 16u);
  EXPECT_EQ(serial.metrics.counters.at("fault.injected"),
            serial.injected_faults_total);
  EXPECT_EQ(serial.metrics.counters.at("sctc.steps"), serial.total_steps);
  EXPECT_EQ(serial.metrics.counters.at("stimulus.draws"),
            serial.total_draws);
}

TEST(FaultCampaignTest, TraceDirWritesOneFilePerSeed) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "esv_campaign_traces";
  std::filesystem::remove_all(dir);

  CampaignConfig config = fault_config(1, 4, 2);
  config.trace_dir = dir.string();
  const CampaignReport report = run(config);

  ASSERT_EQ(report.seeds.size(), 4u);
  for (const SeedResult& seed : report.seeds) {
    const std::filesystem::path file =
        dir / ("seed_" + std::to_string(seed.seed) + ".trace.jsonl");
    ASSERT_TRUE(std::filesystem::exists(file)) << file;
    std::ifstream in(file, std::ios::binary);
    std::ostringstream contents;
    contents << in.rdbuf();
    // On-disk bytes mirror the in-memory trace exactly (trace_dir implies
    // capture_traces).
    EXPECT_EQ(contents.str(), seed.trace_jsonl);
    EXPECT_NE(contents.str().find("\"type\":\"seed_start\",\"seed\":" +
                                  std::to_string(seed.seed)),
              std::string::npos);
    EXPECT_NE(contents.str().find("\"type\":\"seed_end\""),
              std::string::npos);
  }
  std::filesystem::remove_all(dir);
}

TEST(FaultCampaignTest, TracesRecordFaultInjections) {
  CampaignConfig config = fault_config(1, 8, 2);
  config.capture_traces = true;
  config.collect_metrics = true;
  const CampaignReport report = run(config);

  std::uint64_t traced_faults = 0;
  for (const SeedResult& seed : report.seeds) {
    std::istringstream in(seed.trace_jsonl);
    std::string line;
    while (std::getline(in, line)) {
      if (line.find("\"type\":\"fault\"") != std::string::npos) {
        ++traced_faults;
      }
    }
  }
  // Every injection shows up as a fault event.
  EXPECT_EQ(traced_faults, report.injected_faults_total);
  EXPECT_GT(traced_faults, 0u);
}

TEST(FaultCampaignTest, FaultStreamDoesNotPerturbStimulus) {
  // The same seeds with and without a fault plan draw the identical stimulus
  // stream (the fault engine has its own rng): a plan whose faults never
  // change behaviour (stuck-at on a bit that is already 0 most of the run
  // cannot alter draw counts).
  CampaignConfig nominal = fault_config(1, 8, 2);
  nominal.fault_plan_text.clear();
  CampaignConfig faulty = fault_config(1, 8, 2);
  faulty.fault_plan_text = "clockjitter prob 1/2\n";  // no clock in approach 2

  const CampaignReport a = run(nominal);
  const CampaignReport b = run(faulty);
  ASSERT_EQ(a.seeds.size(), b.seeds.size());
  for (std::size_t i = 0; i < a.seeds.size(); ++i) {
    EXPECT_EQ(a.seeds[i].draws, b.seeds[i].draws);
    EXPECT_EQ(a.seeds[i].steps, b.seeds[i].steps);
  }
}

TEST(FaultCampaignTest, SpecFaultLinesMergeWithPlanFile) {
  CampaignConfig config = fault_config(1, 4, 2);
  config.spec_text = std::string(kBlinkerSpec) +
                     "\nfault stuckbit ticks_on 7 0 window 0..100\n";
  const CampaignReport report = run(config);
  EXPECT_TRUE(report.fault_campaign);
  EXPECT_EQ(report.fault_plan_entries, 2u);  // --faults entry + spec entry
}

TEST(FaultCampaignTest, ClassifiesVerdictsUnderFault) {
  const CampaignReport report = run(fault_config(1, 32, 4));
  ASSERT_TRUE(report.fault_campaign);

  // Every (seed, property) gets a classification, and the totals tally up.
  std::uint64_t classified = 0;
  for (const SeedResult& seed : report.seeds) {
    for (const PropertyOutcome& outcome : seed.properties) {
      EXPECT_NE(outcome.fault_class, sctc::FaultClass::kNotApplicable);
      ++classified;
      if (outcome.verdict == temporal::Verdict::kViolated) {
        EXPECT_EQ(outcome.fault_class,
                  sctc::FaultClass::kViolatedUnderFault);
      }
    }
  }
  EXPECT_EQ(report.held_under_fault_total +
                report.violated_under_fault_total + report.monitor_error_total,
            classified);
  // The bitflip plan violates `legal` on some seeds and leaves others clean.
  EXPECT_GT(report.violated_under_fault_total, 0u);
  EXPECT_GT(report.held_under_fault_total, 0u);

  // A nominal campaign stays entirely unclassified.
  CampaignConfig nominal = fault_config(1, 2, 1);
  nominal.fault_plan_text.clear();
  const CampaignReport clean = run(nominal);
  EXPECT_FALSE(clean.fault_campaign);
  for (const SeedResult& seed : clean.seeds) {
    for (const PropertyOutcome& outcome : seed.properties) {
      EXPECT_EQ(outcome.fault_class, sctc::FaultClass::kNotApplicable);
    }
  }
}

TEST(FaultCampaignTest, BadPlansAreConfigurationErrors) {
  CampaignConfig config = fault_config(1, 2, 1);
  config.fault_plan_text = "bitflip no_such_global\n";
  EXPECT_THROW(run(config), fault::FaultPlanError);

  config.fault_plan_text = "explode everything\n";
  EXPECT_THROW(run(config), fault::FaultPlanError);

  // Arrays are not scalar fault targets.
  config = fault_config(1, 2, 1);
  config.program_source =
      "int table[4];\nint ok;\nvoid main(void) { table[0] = 1; ok = 1; }";
  config.spec_text = "prop p = ok == 0\ncheck c: F p";
  config.fault_plan_text = "bitflip table\n";
  EXPECT_THROW(run(config), fault::FaultPlanError);
}

TEST(FaultCampaignTest, WatchdogStopsHungSeedsWithoutAbortingTheSweep) {
  CampaignConfig config;
  // `hang` is constrained to 1, so the loop never exits; only the watchdog
  // can end the seed.
  config.program_source = R"(
int spin;
void main(void) {
  spin = 1;
  while (spin == 1) {
    spin = __in(hang);
  }
}
)";
  // `spin` is only ever 0 or 1, so the property stays pending forever and
  // never stops the run by itself.
  config.spec_text = R"(
input hang 1 1
prop done = spin == 2
check free: F done
)";
  config.seed_lo = 1;
  config.seed_hi = 2;
  config.jobs = 2;
  config.max_steps = 1ULL << 62;  // effectively unbounded
  config.seed_timeout_seconds = 0.25;

  const CampaignReport report = run(config);
  ASSERT_EQ(report.seeds.size(), 2u);
  EXPECT_EQ(report.error_seeds, 2u);
  EXPECT_EQ(report.timeout_seeds, 2u);
  for (const SeedResult& seed : report.seeds) {
    EXPECT_EQ(seed.error_kind, "timeout");
    EXPECT_NE(seed.error.find("watchdog"), std::string::npos) << seed.error;
    EXPECT_FALSE(seed.finished);
  }
  // The timeout is part of the JSON report.
  EXPECT_NE(report.to_json(false).find("\"error_kind\": \"timeout\""),
            std::string::npos);
}

TEST(FaultCampaignTest, InfrastructureErrorsAreRecordedAndRetried) {
  CampaignConfig config;
  // `__in(mystery)` is never constrained by the spec, so the stimulus
  // provider throws — an infrastructure error, not a fault of the SUT.
  config.program_source = R"(
int x;
void main(void) {
  x = __in(mystery);
}
)";
  // Never-true proposition: the property stays pending, so the checker
  // cannot stop the run before the failing input draw executes.
  config.spec_text = R"(
prop any = x == 9
check c: F any
)";
  config.seed_lo = 1;
  config.seed_hi = 3;
  config.jobs = 2;
  config.seed_retries = 2;

  // The campaign must complete (the old runner rethrew the first worker
  // exception and lost the message).
  const CampaignReport report = run(config);
  ASSERT_EQ(report.seeds.size(), 3u);
  EXPECT_EQ(report.error_seeds, 3u);
  EXPECT_EQ(report.retried_seeds, 3u);
  for (const SeedResult& seed : report.seeds) {
    EXPECT_EQ(seed.error_kind, "infrastructure");
    EXPECT_NE(seed.error.find("unconstrained input"), std::string::npos)
        << seed.error;
    EXPECT_EQ(seed.attempts, 3u);  // 1 attempt + 2 retries
  }

  // SUT faults are never retried.
  CampaignConfig sut = config;
  sut.program_source = R"(
int x;
void main(void) {
  x = __in(v);
  assert(x > 9);
}
)";
  sut.spec_text = R"(
input v 0 1
prop any = x == 9
check c: F any
)";
  const CampaignReport sut_report = run(sut);
  for (const SeedResult& seed : sut_report.seeds) {
    EXPECT_EQ(seed.error_kind, "sut");
    EXPECT_NE(seed.error.find("assertion failed"), std::string::npos);
    EXPECT_EQ(seed.attempts, 1u);
  }
}

TEST(FaultCampaignTest, ApproachOneFaultCampaignIsDeterministic) {
  CampaignConfig config = fault_config(1, 4, 1);
  config.approach = 1;
  config.max_steps = 2'000'000;
  config.spec_text = R"(
input enable 0 1
prop led_on    = led == LED_ON
prop led_off   = led == LED_OFF
prop finished  = cycles >= 200
check legal: G (led_on || led_off)
check terminates: F finished
)";
  // Clock jitter is live in approach 1 (the CPU model runs off the clock).
  config.fault_plan_text = "bitflip led prob 1/100\nclockjitter prob 1/200\n";
  const CampaignReport serial = run(config);
  config.jobs = 4;
  const CampaignReport parallel = run(config);
  EXPECT_EQ(serial.verdict_table(), parallel.verdict_table());
  EXPECT_EQ(serial.to_json(false), parallel.to_json(false));
}

}  // namespace
}  // namespace esv::campaign

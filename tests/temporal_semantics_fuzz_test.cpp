// Semantic fuzzing of the temporal core: a direct recursive evaluator of
// FLTL's finite-trace semantics (one-step unfolding, with weak/strong
// resolution at the end of the trace) is compared against the progression
// monitor on randomly generated formulas and traces.
//
// The two implementations share nothing: the reference walks the original
// formula over the trace; the monitor rewrites the obligation step by step
// through the hash-consing factory (including the bound-subsumption
// simplifications). Any divergence is a bug in one of them.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "temporal/monitor.hpp"

namespace esv::temporal {
namespace {

using Trace = std::vector<std::vector<bool>>;  // trace[i][prop]

/// Reference semantics, matching the library's documented convention
/// exactly: positions 0..n-1 are trace states; position n is the empty
/// suffix, evaluated by FormulaFactory::holds_on_empty (strong operators
/// and literals fail, weak operators hold, with negation handled in NNF).
/// Bounded windows reach the empty position exactly when the bound expires
/// there (F[b] at i with i+b == n leaves the bare operand as the residual).
/// `negated` pushes an enclosing negation inward (NNF-style), so that the
/// end-of-trace resolution sees the same polarity the monitor's residual
/// formula carries.
bool ref_eval(const FormulaFactory& factory, FormulaRef f, const Trace& trace,
              std::size_t i, bool negated) {
  const std::size_t n = trace.size();
  if (i >= n) return factory.holds_on_empty(f, negated);
  switch (f->op()) {
    case Op::kTrue: return !negated;
    case Op::kFalse: return negated;
    case Op::kProp: {
      const bool v = trace[i][static_cast<std::size_t>(f->prop_index())];
      return negated ? !v : v;
    }
    case Op::kNot:
      return ref_eval(factory, f->operands()[0], trace, i, !negated);
    case Op::kAnd:  // under negation: !(a&&b) == !a || !b
      for (FormulaRef g : f->operands()) {
        const bool v = ref_eval(factory, g, trace, i, negated);
        if (negated && v) return true;
        if (!negated && !v) return false;
      }
      return !negated;
    case Op::kOr:
      for (FormulaRef g : f->operands()) {
        const bool v = ref_eval(factory, g, trace, i, negated);
        if (negated && !v) return false;
        if (!negated && v) return true;
      }
      return negated;
    case Op::kNext: {
      const std::uint32_t steps = f->bound().value();
      // Beyond the empty position the residual is still an X: strong, so
      // it fails (holds under negation).
      if (i + steps > n) return negated;
      return ref_eval(factory, f->operands()[0], trace, i + steps, negated);
    }
    case Op::kEventually:
    case Op::kAlways: {
      FormulaRef g = f->operands()[0];
      // F is an exists-window; G a forall-window; negation swaps them and
      // negates the child (!F g == G !g).
      const bool exists = (f->op() == Op::kEventually) != negated;
      const std::size_t last =
          f->bound() ? std::min<std::size_t>(n, i + *f->bound()) : n - 1;
      for (std::size_t j = i; j <= last && j < n; ++j) {
        const bool v = ref_eval(factory, g, trace, j, negated);
        if (exists && v) return true;
        if (!exists && !v) return false;
      }
      // Window expiring exactly at the empty position leaves the bare
      // operand as the residual (OP[0] g == g).
      if (f->bound() && i + *f->bound() == n) {
        return factory.holds_on_empty(g, negated);
      }
      // Residual stays an F (strong: fails) or a G (weak: holds).
      return (f->op() == Op::kEventually) ? negated : !negated;
    }
    case Op::kUntil:
    case Op::kRelease: {
      FormulaRef a = f->operands()[0];
      FormulaRef g = f->operands()[1];
      // !(a U g) == !a R !g and vice versa.
      const bool is_until = (f->op() == Op::kUntil) != negated;
      const std::size_t last =
          f->bound() ? std::min<std::size_t>(n, i + *f->bound()) : n - 1;
      for (std::size_t j = i; j <= last && j < n; ++j) {
        const bool gv = ref_eval(factory, g, trace, j, negated);
        if (is_until && gv) return true;
        if (!is_until && !gv) return false;
        if (f->bound() && j == i + *f->bound()) {
          return !is_until;  // window shut: until failed / release survived
        }
        const bool av = ref_eval(factory, a, trace, j, negated);
        if (is_until && !av) return false;
        if (!is_until && av) return true;
      }
      if (f->bound() && i + *f->bound() == n) {
        return factory.holds_on_empty(g, negated);  // OP[0] g == g
      }
      return !is_until;  // residual U is strong, residual R weak
    }
  }
  return false;
}

/// Random formula generator over `props` propositions.
FormulaRef random_formula(FormulaFactory& f, common::Rng& rng, int props,
                          int depth) {
  if (depth == 0 || rng.next_chance(1, 4)) {
    switch (rng.next_below(4)) {
      case 0: return f.constant(rng.next_chance(1, 2));
      default:
        return f.prop("p" + std::to_string(rng.next_below(
                                static_cast<std::uint64_t>(props))));
    }
  }
  const auto sub = [&] { return random_formula(f, rng, props, depth - 1); };
  const auto maybe_bound = [&]() -> std::optional<std::uint32_t> {
    if (rng.next_chance(1, 2)) return std::nullopt;
    return static_cast<std::uint32_t>(rng.next_below(6));
  };
  switch (rng.next_below(9)) {
    case 0: return f.not_(sub());
    case 1: return f.and_(sub(), sub());
    case 2: return f.or_(sub(), sub());
    case 3: return f.implies(sub(), sub());
    case 4: return f.next(sub(), 1 + static_cast<std::uint32_t>(rng.next_below(3)));
    case 5: return f.eventually(sub(), maybe_bound());
    case 6: return f.always(sub(), maybe_bound());
    case 7: return f.until(sub(), sub(), maybe_bound());
    default: return f.release(sub(), sub(), maybe_bound());
  }
}

class SemanticsFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SemanticsFuzzTest, MonitorMatchesReferenceSemantics) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 0x5EED + 17);
  const int props = 2;

  for (int trial = 0; trial < 60; ++trial) {
    FormulaFactory factory;
    // Pre-intern propositions so indices are stable.
    for (int p = 0; p < props; ++p) factory.prop("p" + std::to_string(p));
    FormulaRef formula = random_formula(factory, rng, props, 3);

    const std::size_t len = 1 + rng.next_below(10);
    Trace trace(len, std::vector<bool>(props));
    for (auto& step : trace) {
      for (int p = 0; p < props; ++p) step[static_cast<std::size_t>(p)] = rng.next_chance(1, 2);
    }

    ProgressionMonitor monitor(factory, formula);
    for (const auto& step : trace) {
      monitor.step([&step](int index) {
        return step[static_cast<std::size_t>(index)];
      });
      if (monitor.verdict() != Verdict::kPending) break;
    }

    const bool expected = ref_eval(factory, formula, trace, 0, false);
    const Verdict final_verdict = monitor.verdict_at_end();
    ASSERT_EQ(final_verdict,
              expected ? Verdict::kValidated : Verdict::kViolated)
        << "formula: " << formula->to_string() << "\ntrace length " << len
        << " trial " << trial;

    // A decided monitor must already agree with the reference (its early
    // verdict covers every extension, in particular this one).
    if (monitor.verdict() != Verdict::kPending) {
      ASSERT_EQ(monitor.verdict(),
                expected ? Verdict::kValidated : Verdict::kViolated)
          << "early verdict diverges for " << formula->to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemanticsFuzzTest, ::testing::Range(0, 30));

}  // namespace
}  // namespace esv::temporal

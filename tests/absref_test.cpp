// Tests for the predicate-abstraction (BLAST-role) checker.
#include <gtest/gtest.h>

#include "casestudy/eeprom.hpp"
#include "formal/absref/absref.hpp"
#include "formal/bmc/spec.hpp"
#include "minic/sema.hpp"

namespace esv::formal::absref {
namespace {

AbsRefResult run(const std::string& source, AbsRefOptions options = {}) {
  minic::Program program = minic::compile(source);
  return check_assertions(program, options);
}

TEST(AbsRefTest, SafeStateMachineProved) {
  // Classic predicate-abstraction success case: a lock/unlock protocol over
  // a global state variable.
  const auto r = run(R"(
    enum { UNLOCKED = 0, LOCKED = 1 };
    int state = 0;
    void lock(void)   { assert(state == UNLOCKED); state = LOCKED; }
    void unlock(void) { assert(state == LOCKED); state = UNLOCKED; }
    void main(void) {
      int i;
      for (i = 0; i < 100; i++) {
        lock();
        unlock();
      }
    }
  )");
  EXPECT_EQ(r.status, AbsRefResult::Status::kSafe);
  EXPECT_GT(r.predicates, 0u);
}

TEST(AbsRefTest, RealViolationConfirmedByReplay) {
  const auto r = run(R"(
    int state = 0;
    void main(void) {
      state = 1;
      state = 2;
      assert(state == 1);
    }
  )");
  EXPECT_EQ(r.status, AbsRefResult::Status::kCounterexample);
  EXPECT_EQ(r.failing_line, 6);
}

TEST(AbsRefTest, DoubleLockBugFound) {
  const auto r = run(R"(
    int locked = 0;
    void lock(void)   { assert(locked == 0); locked = 1; }
    void main(void) {
      lock();
      lock();
    }
  )");
  EXPECT_EQ(r.status, AbsRefResult::Status::kCounterexample);
}

TEST(AbsRefTest, BranchGuardedInvariantNeedsRefinement) {
  // Proving this needs the branch-condition predicate (mode == 1), which
  // only refinement round 1 mines.
  const auto r = run(R"(
    int mode = 0;
    int armed = 0;
    void main(void) {
      mode = 1;
      if (mode == 1) { armed = 1; }
      if (armed == 1) { assert(mode == 1); }
    }
  )");
  EXPECT_EQ(r.status, AbsRefResult::Status::kSafe);
}

TEST(AbsRefTest, FnamePredicatesWork) {
  // Function-sequence property over the fname instrumentation.
  const auto r = run(R"(
    int witness = 0;
    void helper(void) { witness = fname; }
    void main(void) {
      helper();
      assert(witness != 0);
    }
  )");
  EXPECT_EQ(r.status, AbsRefResult::Status::kSafe);
}

TEST(AbsRefTest, ProverOverflowIsFaithfullyReported) {
  // BLAST's documented weakness: values beyond 2^30 - 1 blow up the prover.
  // Memory-mapped register addresses do exactly that.
  const auto r = run(R"(
    int status = 0;
    void main(void) {
      status = *(0xF0000000);
      assert(status == status);
    }
  )");
  EXPECT_EQ(r.status, AbsRefResult::Status::kException);
  EXPECT_NE(r.detail.find("overflow"), std::string::npos);
}

TEST(AbsRefTest, BigConstantComparisonAlsoThrows) {
  const auto r = run(R"(
    int x = 0;
    void main(void) {
      x = 0x40000000;   /* 2^30: one past the prover limit */
      assert(x != 0);
    }
  )");
  EXPECT_EQ(r.status, AbsRefResult::Status::kException);
}

TEST(AbsRefTest, StateBudgetReported) {
  AbsRefOptions options;
  options.max_states = 10;
  const auto r = run(R"(
    int a = 0; int b = 0; int c = 0;
    void main(void) {
      int i;
      for (i = 0; i < 100; i++) {
        if (__in(x) == 1) { a = 1 - a; }
        if (__in(y) == 1) { b = 1 - b; }
        if (__in(z) == 1) { c = 1 - c; }
        assert(a == 0 || a == 1);
      }
    }
  )", options);
  EXPECT_EQ(r.status, AbsRefResult::Status::kBudgetExceeded);
}

TEST(AbsRefTest, SwitchStateMachineProved) {
  const auto r = run(R"(
    enum { IDLE = 0, RUN = 1, DONE = 2 };
    int st = 0;
    void main(void) {
      int i;
      for (i = 0; i < 50; i++) {
        switch (st) {
          case IDLE: st = RUN; break;
          case RUN:  st = DONE; break;
          case DONE: st = IDLE; break;
        }
        assert(st == IDLE || st == RUN || st == DONE);
      }
    }
  )");
  EXPECT_EQ(r.status, AbsRefResult::Status::kSafe);
}

// --- the paper's Fig. 7 failure mode on the case study ------------------------

TEST(AbsRefCaseStudyTest, EepromThrowsProverException) {
  // Every EEELib operation drives DFALib, whose register addresses exceed
  // 2^30 - 1: the prover throws, reproducing the "Exception" rows of Fig. 7.
  for (const char* op_name : {"Read", "Write", "Format"}) {
    const auto& op = casestudy::operation_by_name(op_name);
    const std::string instrumented = formal::instrument_response(
        casestudy::eeprom_emulation_source(), op.op_code, op.ret_global,
        op.return_codes);
    minic::Program program = minic::compile(instrumented);
    const AbsRefResult r = check_assertions(program);
    EXPECT_EQ(r.status, AbsRefResult::Status::kException) << op_name;
    EXPECT_NE(r.detail.find("overflow"), std::string::npos) << op_name;
  }
}

}  // namespace
}  // namespace esv::formal::absref

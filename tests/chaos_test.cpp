// Unit tests for the self-chaos engine (src/chaos/, docs/RESILIENCE.md):
// plan parsing and validation, the canonical digest, deterministic decide()
// schedules (nth / count / prob / role / generation selectors), the
// observability sinks, and the off-is-free fast path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "chaos/chaos.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace esv::chaos {
namespace {

TEST(ChaosPlanTest, ParsesEveryDirectiveForm) {
  const ChaosPlan plan = parse_plan(
      "# comment line\n"
      "wire.tx drop nth 3\n"
      "wire.tx corrupt prob 1/50 count 2 ; wire.tx delay 50\n"
      "worker.seed crash nth 2 role worker gen 1\n"
      "worker.seed stall 200 prob 1/10 count 0\n"
      "worker.heartbeat delay 400 nth 5\n"
      "journal.write shortwrite\n"
      "journal.write failwrite nth 4\n"
      "journal.write enospc\n"
      "journal.fsync failsync nth 2\n");
  ASSERT_EQ(plan.entries.size(), 10u);
  EXPECT_EQ(plan.entries[0].point, Point::kWireTx);
  EXPECT_EQ(plan.entries[0].action, Action::kDrop);
  EXPECT_EQ(plan.entries[0].nth, 3u);
  EXPECT_EQ(plan.entries[0].count, 1u);
  EXPECT_EQ(plan.entries[1].nth, 0u);  // prob selector
  EXPECT_EQ(plan.entries[1].prob_num, 1u);
  EXPECT_EQ(plan.entries[1].prob_den, 50u);
  EXPECT_EQ(plan.entries[1].count, 2u);
  EXPECT_EQ(plan.entries[2].action, Action::kDelay);
  EXPECT_EQ(plan.entries[2].arg, 50u);
  EXPECT_EQ(plan.entries[2].nth, 1u);  // default selector
  EXPECT_EQ(plan.entries[3].role, Role::kWorker);
  EXPECT_TRUE(plan.entries[3].has_generation);
  EXPECT_EQ(plan.entries[3].generation, 1u);
  EXPECT_EQ(plan.entries[4].count, 0u);  // uncapped
  EXPECT_EQ(plan.entries[9].point, Point::kJournalFsync);
  EXPECT_EQ(plan.entries[9].action, Action::kFailSync);
}

TEST(ChaosPlanTest, RejectsMalformedDirectives) {
  EXPECT_THROW(parse_plan("wire.tx"), ChaosPlanError);
  EXPECT_THROW(parse_plan("nowhere drop"), ChaosPlanError);
  EXPECT_THROW(parse_plan("wire.tx explode"), ChaosPlanError);
  EXPECT_THROW(parse_plan("journal.write drop"), ChaosPlanError);  // wrong point
  EXPECT_THROW(parse_plan("wire.tx delay"), ChaosPlanError);  // missing ms arg
  EXPECT_THROW(parse_plan("wire.tx drop nth 0"), ChaosPlanError);  // 1-based
  EXPECT_THROW(parse_plan("wire.tx drop nth 1 prob 1/2"), ChaosPlanError);
  EXPECT_THROW(parse_plan("wire.tx drop prob 1/0"), ChaosPlanError);
  EXPECT_THROW(parse_plan("wire.tx drop role nobody"), ChaosPlanError);
  EXPECT_THROW(parse_plan("wire.tx drop frequency 3"), ChaosPlanError);
  // Error messages carry the line number.
  try {
    parse_plan("wire.tx drop\nbogus");
    FAIL() << "expected ChaosPlanError";
  } catch (const ChaosPlanError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(ChaosPlanTest, DigestIsStableAndSelective) {
  const ChaosPlan a = parse_plan("wire.tx drop nth 3\njournal.fsync failsync");
  const ChaosPlan b =
      parse_plan("# same plan, different spelling\nwire.tx  drop  nth 3 ;"
                 " journal.fsync failsync nth 1");
  const ChaosPlan c = parse_plan("wire.tx drop nth 4");
  EXPECT_EQ(a.digest(), b.digest());  // canonical form, not source text
  EXPECT_NE(a.digest(), c.digest());
  EXPECT_EQ(a.digest().size(), 16u);
  EXPECT_EQ(ChaosPlan{}.digest(), "");
}

TEST(ChaosEngineTest, NthAndCountScheduleExactly) {
  ChaosEngine engine(parse_plan("wire.tx drop nth 3 count 2"), 1);
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) {
    fired.push_back(static_cast<bool>(engine.decide(Point::kWireTx)));
  }
  // Fires on hits 3 and 4 (count 2 starting at nth 3), never again.
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, false, false}));
  EXPECT_EQ(engine.injected_count(), 2u);
  EXPECT_EQ(engine.hit_count(Point::kWireTx), 6u);
  ASSERT_EQ(engine.log().size(), 2u);
  EXPECT_EQ(engine.log()[0].hit, 3u);
  EXPECT_EQ(engine.log()[1].action, Action::kDrop);
}

TEST(ChaosEngineTest, DecisionsAreDeterministicPerSeedAndSalt) {
  const char* plan = "wire.tx drop prob 1/3 count 0";
  const auto schedule = [&](std::uint64_t seed, Role role, std::uint32_t id,
                            std::uint32_t gen) {
    ChaosEngine engine(parse_plan(plan), seed, role, id, gen);
    std::string out;
    for (int i = 0; i < 64; ++i) {
      out += engine.decide(Point::kWireTx) ? '1' : '0';
    }
    return out;
  };
  // Same salt => identical schedule; any salt component changing => the
  // schedule changes (probabilistically certain over 64 draws).
  EXPECT_EQ(schedule(7, Role::kWorker, 2, 1), schedule(7, Role::kWorker, 2, 1));
  EXPECT_NE(schedule(7, Role::kWorker, 2, 1), schedule(8, Role::kWorker, 2, 1));
  EXPECT_NE(schedule(7, Role::kWorker, 2, 1), schedule(7, Role::kWorker, 3, 1));
  EXPECT_NE(schedule(7, Role::kWorker, 2, 1), schedule(7, Role::kWorker, 2, 2));
  // The broker role ignores the worker-id salt.
  EXPECT_EQ(schedule(7, Role::kBroker, 0, 0), schedule(7, Role::kBroker, 9, 0));
  // A 1/3 chance over 64 draws fires somewhere in (0, 64).
  const std::string bits = schedule(7, Role::kWorker, 2, 1);
  const std::size_t ones =
      static_cast<std::size_t>(std::count(bits.begin(), bits.end(), '1'));
  EXPECT_GT(ones, 0u);
  EXPECT_LT(ones, 64u);
}

TEST(ChaosEngineTest, RoleAndGenerationSelectorsFilter) {
  const ChaosPlan plan =
      parse_plan("worker.seed crash nth 1 role worker gen 2");
  ChaosEngine broker(plan, 1, Role::kBroker);
  EXPECT_FALSE(broker.decide(Point::kWorkerSeed));
  ChaosEngine wrong_gen(plan, 1, Role::kWorker, 0, 1);
  EXPECT_FALSE(wrong_gen.decide(Point::kWorkerSeed));
  ChaosEngine right(plan, 1, Role::kWorker, 0, 2);
  EXPECT_TRUE(right.decide(Point::kWorkerSeed));
}

TEST(ChaosEngineTest, CorruptDrawsAByteIndexWithinExtent) {
  ChaosEngine engine(parse_plan("wire.tx corrupt nth 1"), 1);
  // Zero extent (empty payload): nothing to corrupt, nothing recorded.
  EXPECT_FALSE(engine.decide(Point::kWireTx, 0));
  ChaosEngine engine2(parse_plan("wire.tx corrupt nth 1"), 1);
  const Injection injection = engine2.decide(Point::kWireTx, 32);
  ASSERT_TRUE(injection);
  EXPECT_EQ(injection.action, Action::kCorrupt);
  EXPECT_LT(injection.arg, 32u);
}

TEST(ChaosEngineTest, SinksRecordInjections) {
  obs::MetricsRegistry metrics;
  obs::TraceWriter trace;
  ChaosEngine engine(parse_plan("journal.fsync failsync nth 2"), 1);
  engine.set_metrics(&metrics);
  engine.set_trace(&trace);
  engine.decide(Point::kJournalFsync);
  engine.decide(Point::kJournalFsync);
  const obs::MetricsSnapshot snapshot = metrics.snapshot();
  EXPECT_EQ(snapshot.counters.at("chaos.injected"), 1u);
  EXPECT_EQ(snapshot.counters.at("chaos.journal.fsync.failsync"), 1u);
  EXPECT_NE(trace.text().find("\"type\":\"chaos_injected\""),
            std::string::npos);
  EXPECT_NE(trace.text().find("\"point\":\"journal.fsync\""),
            std::string::npos);
}

TEST(ChaosEngineTest, GlobalProbeIsInertWithoutAnInstalledEngine) {
  ASSERT_EQ(ChaosEngine::installed(), nullptr);
  EXPECT_FALSE(at(Point::kWireTx));
  EXPECT_FALSE(at(Point::kJournalWrite, 100));

  ChaosEngine engine(parse_plan("wire.tx drop nth 1"), 1);
  ChaosEngine::install(&engine);
  EXPECT_TRUE(at(Point::kWireTx));
  ChaosEngine::install(nullptr);
  EXPECT_FALSE(at(Point::kWireTx));
  EXPECT_EQ(engine.injected_count(), 1u);
}

TEST(ChaosEngineTest, InstallFromEnvHonoursTheEnvironment) {
  ASSERT_EQ(ChaosEngine::installed(), nullptr);
  EXPECT_EQ(install_from_env(0, 0), nullptr);  // nothing set: no engine

  ::setenv(kPlanEnv, "worker.seed crash nth 1", 1);
  ::setenv(kSeedEnv, "42", 1);
  ChaosEngine* engine = install_from_env(3, 1);
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine, ChaosEngine::installed());
  EXPECT_EQ(engine->role(), Role::kWorker);
  EXPECT_EQ(engine->plan().entries.size(), 1u);
  ChaosEngine::install(nullptr);

  // A malformed plan in the environment is tolerated (harness skew must not
  // crash-loop a worker), installing nothing.
  ::setenv(kPlanEnv, "not a directive", 1);
  EXPECT_EQ(install_from_env(0, 0), nullptr);
  EXPECT_EQ(ChaosEngine::installed(), nullptr);
  ::unsetenv(kPlanEnv);
  ::unsetenv(kSeedEnv);
}

}  // namespace
}  // namespace esv::chaos

// Tests for the discrete-event kernel: process scheduling, event notification
// rules, delta-cycle semantics, and time advance.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/kernel.hpp"

namespace esv::sim {
namespace {

TEST(TimeTest, UnitsAndArithmetic) {
  EXPECT_EQ(Time::ns(1).picoseconds(), 1000u);
  EXPECT_EQ(Time::us(2).picoseconds(), 2000000u);
  EXPECT_EQ((Time::ns(3) + Time::ns(4)).picoseconds(), 7000u);
  EXPECT_EQ((Time::ns(4) - Time::ns(3)).picoseconds(), 1000u);
  EXPECT_EQ((Time::ns(3) * 4).picoseconds(), 12000u);
  EXPECT_LT(Time::ns(1), Time::us(1));
  EXPECT_TRUE(Time::zero().is_zero());
}

TEST(TimeTest, ToStringPicksLargestUnit) {
  EXPECT_EQ(Time::ns(12).to_string(), "12 ns");
  EXPECT_EQ(Time::ps(1500).to_string(), "1500 ps");
  EXPECT_EQ(Time::ms(1).to_string(), "1 ms");
  EXPECT_EQ(Time::zero().to_string(), "0 s");
}

TEST(KernelTest, ThreadRunsAtTimeZero) {
  Simulation sim;
  bool ran = false;
  sim.spawn("t", [](Simulation&, bool& flag) -> Task {
    flag = true;
    co_return;
  }(sim, ran));
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), Time::zero());
}

TEST(KernelTest, DelayAdvancesTime) {
  Simulation sim;
  std::vector<std::uint64_t> stamps;
  sim.spawn("t", [](Simulation& s, std::vector<std::uint64_t>& out) -> Task {
    out.push_back(s.now().picoseconds());
    co_await s.delay(Time::ns(5));
    out.push_back(s.now().picoseconds());
    co_await s.delay(Time::ns(7));
    out.push_back(s.now().picoseconds());
  }(sim, stamps));
  sim.run();
  ASSERT_EQ(stamps.size(), 3u);
  EXPECT_EQ(stamps[0], 0u);
  EXPECT_EQ(stamps[1], 5000u);
  EXPECT_EQ(stamps[2], 12000u);
  EXPECT_EQ(sim.now(), Time::ns(12));
}

TEST(KernelTest, RunUntilStopsEarly) {
  Simulation sim;
  int wakeups = 0;
  sim.spawn("t", [](Simulation& s, int& n) -> Task {
    for (;;) {
      co_await s.delay(Time::ns(10));
      ++n;
    }
  }(sim, wakeups));
  sim.run(Time::ns(35));
  EXPECT_EQ(wakeups, 3);
  EXPECT_EQ(sim.now(), Time::ns(35));
  // Resuming continues from where we stopped.
  sim.run(Time::ns(70));
  EXPECT_EQ(wakeups, 7);
}

TEST(KernelTest, TimedEventWakesWaiter) {
  Simulation sim;
  Event ev(sim, "ev");
  std::uint64_t woke_at = 0;
  sim.spawn("waiter", [](Simulation& s, Event& e, std::uint64_t& at) -> Task {
    co_await e;
    at = s.now().picoseconds();
  }(sim, ev, woke_at));
  sim.spawn("notifier", [](Simulation& s, Event& e) -> Task {
    co_await s.delay(Time::ns(3));
    e.notify(Time::ns(2));
    co_return;
  }(sim, ev));
  sim.run();
  EXPECT_EQ(woke_at, 5000u);
}

TEST(KernelTest, ImmediateNotifyWakesInSameEvaluatePhase) {
  Simulation sim;
  Event ev(sim, "ev");
  std::vector<std::string> order;
  sim.spawn("waiter", [](Event& e, std::vector<std::string>& log) -> Task {
    co_await e;
    log.push_back("woken");
  }(ev, order));
  sim.spawn("notifier", [](Simulation& s, Event& e,
                           std::vector<std::string>& log) -> Task {
    co_await s.next_delta();  // make sure the waiter is registered first
    log.push_back("notify");
    e.notify();
    log.push_back("after-notify");
    co_return;
  }(sim, ev, order));
  sim.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "notify");
  EXPECT_EQ(order[1], "after-notify");  // notifier keeps running first
  EXPECT_EQ(order[2], "woken");
}

TEST(KernelTest, DeltaNotifyWakesInNextDeltaCycle) {
  Simulation sim;
  Event ev(sim, "ev");
  std::uint64_t delta_at_wake = 0;
  sim.spawn("waiter", [](Simulation& s, Event& e, std::uint64_t& d) -> Task {
    co_await e;
    d = s.delta_count();
  }(sim, ev, delta_at_wake));
  sim.spawn("notifier", [](Event& e) -> Task {
    e.notify_delta();
    co_return;
  }(ev));
  sim.run();
  EXPECT_EQ(sim.now(), Time::zero());  // no time passed
  EXPECT_GE(delta_at_wake, 2u);        // but a delta boundary did
}

TEST(KernelTest, EarlierTimedNotificationOverridesLater) {
  Simulation sim;
  Event ev(sim, "ev");
  std::uint64_t woke_at = 0;
  int wakes = 0;
  sim.spawn("waiter",
            [](Simulation& s, Event& e, std::uint64_t& at, int& n) -> Task {
              co_await e;
              at = s.now().picoseconds();
              ++n;
            }(sim, ev, woke_at, wakes));
  sim.spawn("notifier", [](Event& e) -> Task {
    e.notify(Time::ns(10));
    e.notify(Time::ns(4));  // earlier: overrides the 10 ns one
    co_return;
  }(ev));
  sim.run();
  EXPECT_EQ(wakes, 1);
  EXPECT_EQ(woke_at, 4000u);
}

TEST(KernelTest, LaterTimedNotificationIsDiscarded) {
  Simulation sim;
  Event ev(sim, "ev");
  int wakes = 0;
  sim.spawn("waiter", [](Event& e, int& n) -> Task {
    for (;;) {
      co_await e;
      ++n;
    }
  }(ev, wakes));
  sim.spawn("notifier", [](Event& e) -> Task {
    e.notify(Time::ns(4));
    e.notify(Time::ns(10));  // later: discarded
    co_return;
  }(ev));
  sim.run();
  EXPECT_EQ(wakes, 1);
  EXPECT_EQ(sim.now(), Time::ns(4));
}

TEST(KernelTest, CancelSuppressesPendingNotification) {
  Simulation sim;
  Event ev(sim, "ev");
  int wakes = 0;
  sim.spawn("waiter", [](Event& e, int& n) -> Task {
    co_await e;
    ++n;
  }(ev, wakes));
  sim.spawn("notifier", [](Simulation& s, Event& e) -> Task {
    e.notify(Time::ns(5));
    co_await s.delay(Time::ns(1));
    e.cancel();
    co_return;
  }(sim, ev));
  sim.run();
  EXPECT_EQ(wakes, 0);
}

TEST(KernelTest, AnyOfWakesOnFirstEventOnly) {
  Simulation sim;
  Event a(sim, "a");
  Event b(sim, "b");
  int wakes = 0;
  sim.spawn("waiter", [](Event& ea, Event& eb, int& n) -> Task {
    co_await any_of(ea, eb);
    ++n;
    co_await any_of(ea, eb);
    ++n;
  }(a, b, wakes));
  sim.spawn("notifier", [](Simulation& s, Event& ea, Event& eb) -> Task {
    co_await s.delay(Time::ns(1));
    ea.notify();  // first wake
    co_await s.delay(Time::ns(1));
    eb.notify();  // second wake; the stale registration on `a` must not fire
    co_return;
  }(sim, a, b));
  sim.run();
  EXPECT_EQ(wakes, 2);
}

TEST(KernelTest, MethodProcessRunsOnSensitivity) {
  Simulation sim;
  Event ev(sim, "ev");
  int runs = 0;
  sim.create_method("m", [&runs] { ++runs; }, {&ev}, /*run_at_start=*/false);
  sim.spawn("notifier", [](Simulation& s, Event& e) -> Task {
    for (int i = 0; i < 3; ++i) {
      co_await s.delay(Time::ns(1));
      e.notify();
    }
  }(sim, ev));
  sim.run();
  EXPECT_EQ(runs, 3);
}

TEST(KernelTest, MethodRunsAtStartByDefault) {
  Simulation sim;
  Event ev(sim, "ev");
  int runs = 0;
  sim.create_method("m", [&runs] { ++runs; }, {&ev});
  sim.run();
  EXPECT_EQ(runs, 1);
}

TEST(KernelTest, StopEndsRun) {
  Simulation sim;
  int wakeups = 0;
  sim.spawn("t", [](Simulation& s, int& n) -> Task {
    for (;;) {
      co_await s.delay(Time::ns(1));
      if (++n == 5) s.stop();
    }
  }(sim, wakeups));
  sim.run();
  EXPECT_EQ(wakeups, 5);
  EXPECT_TRUE(sim.stop_requested());
}

TEST(KernelTest, ProcessExceptionPropagatesFromRun) {
  Simulation sim;
  sim.spawn("t", [](Simulation& s) -> Task {
    co_await s.delay(Time::ns(1));
    throw std::runtime_error("boom");
  }(sim));
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(KernelTest, TwoProcessesPingPong) {
  Simulation sim;
  Event ping(sim, "ping");
  Event pong(sim, "pong");
  std::vector<int> log;
  sim.spawn("a", [](Simulation& s, Event& out, Event& in,
                    std::vector<int>& l) -> Task {
    for (int i = 0; i < 3; ++i) {
      co_await s.delay(Time::ns(1));
      l.push_back(1);
      out.notify_delta();
      co_await in;
    }
  }(sim, ping, pong, log));
  sim.spawn("b", [](Event& in, Event& out, std::vector<int>& l) -> Task {
    for (int i = 0; i < 3; ++i) {
      co_await in;
      l.push_back(2);
      out.notify_delta();
    }
  }(ping, pong, log));
  sim.run();
  ASSERT_EQ(log.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(log[i], i % 2 == 0 ? 1 : 2);
}

TEST(KernelTest, SimulationEndsWhenNoEventsRemain) {
  Simulation sim;
  sim.spawn("t", [](Simulation& s) -> Task {
    co_await s.delay(Time::ns(100));
  }(sim));
  const Time end = sim.run();
  EXPECT_EQ(end, Time::ns(100));
}

TEST(KernelTest, SpawnManyProcessesDeterministicOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.spawn("p" + std::to_string(i), [](int id, std::vector<int>& l) -> Task {
      l.push_back(id);
      co_return;
    }(i, order));
  }
  sim.run();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

}  // namespace
}  // namespace esv::sim

// End-to-end tests for the esv-verify command line, focused on the error
// paths: every usage or input mistake must exit with code 2 (never a crash,
// never a silent 0/1), and the campaign options must validate their input.
// The binary path and sample data directory are injected by CMake.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#ifndef ESV_VERIFY_BIN
#error "ESV_VERIFY_BIN must be defined by the build"
#endif
#ifndef ESV_DATA_DIR
#error "ESV_DATA_DIR must be defined by the build"
#endif

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

RunResult run_cli(const std::string& args) {
  const std::string command =
      std::string(ESV_VERIFY_BIN) + " " + args + " 2>&1";
  RunResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[512];
  while (fgets(buffer, sizeof buffer, pipe) != nullptr) {
    result.output += buffer;
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string blinker_c() { return std::string(ESV_DATA_DIR) + "/blinker.c"; }
std::string blinker_esv() { return std::string(ESV_DATA_DIR) + "/blinker.esv"; }
std::string sample_args() { return blinker_c() + " " + blinker_esv(); }

TEST(EsvVerifyCliTest, MissingArgumentsExitsTwo) {
  const RunResult r = run_cli("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(EsvVerifyCliTest, BadApproachExitsTwo) {
  for (const char* flag : {"--approach=3", "--approach=abc", "--approach="}) {
    const RunResult r = run_cli(sample_args() + " " + flag);
    EXPECT_EQ(r.exit_code, 2) << flag << "\n" << r.output;
    EXPECT_NE(r.output.find("--approach must be 1 or 2"), std::string::npos)
        << r.output;
  }
}

TEST(EsvVerifyCliTest, UnknownOptionExitsTwo) {
  const RunResult r = run_cli(sample_args() + " --frobnicate");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown option"), std::string::npos);
}

TEST(EsvVerifyCliTest, BadModeAndBadNumbersExitTwo) {
  EXPECT_EQ(run_cli(sample_args() + " --mode=psychic").exit_code, 2);
  EXPECT_EQ(run_cli(sample_args() + " --seed=banana").exit_code, 2);
  EXPECT_EQ(run_cli(sample_args() + " --max-steps=1e9").exit_code, 2);
  EXPECT_EQ(run_cli(sample_args() + " --witness=-1").exit_code, 2);
}

TEST(EsvVerifyCliTest, MalformedSeedRangeExitsTwo) {
  for (const char* flag :
       {"--campaign=abc", "--campaign=1..", "--campaign=..8", "--campaign=1-8",
        "--campaign=8..1", "--campaign=1..2..3"}) {
    const RunResult r = run_cli(sample_args() + " " + flag);
    EXPECT_EQ(r.exit_code, 2) << flag << "\n" << r.output;
    EXPECT_NE(r.output.find("--campaign"), std::string::npos) << r.output;
  }
  EXPECT_EQ(run_cli(sample_args() + " --campaign=1..4 --jobs=0").exit_code, 2);
  EXPECT_EQ(run_cli(sample_args() + " --campaign=1..4 --jobs=x").exit_code, 2);
  // VCD dumping is a single-run feature.
  EXPECT_EQ(
      run_cli(sample_args() + " --campaign=1..4 --vcd=/tmp/w.vcd").exit_code,
      2);
}

TEST(EsvVerifyCliTest, UnreadableInputFilesExitTwo) {
  const RunResult no_spec = run_cli(blinker_c() + " /nonexistent/spec.esv");
  EXPECT_EQ(no_spec.exit_code, 2);
  EXPECT_NE(no_spec.output.find("cannot open"), std::string::npos);

  const RunResult no_prog = run_cli("/nonexistent/prog.c " + blinker_esv());
  EXPECT_EQ(no_prog.exit_code, 2);
  EXPECT_NE(no_prog.output.find("cannot open"), std::string::npos);

  // Campaign mode reports unreadable inputs identically.
  const RunResult campaign =
      run_cli(blinker_c() + " /nonexistent/spec.esv --campaign=1..4");
  EXPECT_EQ(campaign.exit_code, 2);
  EXPECT_NE(campaign.output.find("cannot open"), std::string::npos);
}

TEST(EsvVerifyCliTest, MalformedSpecReportsLineAndExitsTwo) {
  const std::string path = ::testing::TempDir() + "/bad_spec.esv";
  std::ofstream(path) << "input enable 0 1\nbogus directive here\n";
  const RunResult r = run_cli(blinker_c() + " " + path);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("spec line 2"), std::string::npos) << r.output;
}

TEST(EsvVerifyCliTest, SingleRunStillExitsZeroOnCleanVerify) {
  const RunResult r = run_cli(sample_args() + " --quiet");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(EsvVerifyCliTest, MonitorModeFlagRejectsUnknownNames) {
  const RunResult r = run_cli(sample_args() + " --monitor-mode=psychic");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--monitor-mode"), std::string::npos) << r.output;
}

TEST(EsvVerifyCliTest, MonitorModeFlagSelectsEveryMode) {
  for (const char* mode : {"interpreted", "automaton", "compiled", "both"}) {
    const RunResult r =
        run_cli(sample_args() + " --monitor-mode=" + mode + " --quiet");
    EXPECT_EQ(r.exit_code, 0) << mode << "\n" << r.output;
  }
  // The full spelling is echoed in the verdict table header.
  const RunResult both = run_cli(sample_args() + " --monitor-mode=both");
  EXPECT_EQ(both.exit_code, 0) << both.output;
  EXPECT_NE(both.output.find("both mode"), std::string::npos) << both.output;
}

TEST(EsvVerifyCliTest, CampaignRunsAndWritesReport) {
  const std::string report = ::testing::TempDir() + "/campaign_report.json";
  std::remove(report.c_str());
  const RunResult r = run_cli(sample_args() + " --campaign=1..4 --jobs=2" +
                              " --report=" + report);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("campaign seeds 1..4"), std::string::npos);
  std::ifstream in(report);
  ASSERT_TRUE(in.good());
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"seed_lo\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"per_property\""), std::string::npos);
}

TEST(EsvVerifyCliTest, BadFaultAndHardeningOptionsExitTwo) {
  for (const char* flag :
       {"--seed-timeout=banana", "--seed-timeout=-1", "--seed-timeout=",
        "--seed-retries=x", "--seed-retries="}) {
    const RunResult r = run_cli(sample_args() + " " + flag);
    EXPECT_EQ(r.exit_code, 2) << flag << "\n" << r.output;
  }

  const RunResult no_plan =
      run_cli(sample_args() + " --faults=/nonexistent/plan.flt");
  EXPECT_EQ(no_plan.exit_code, 2);
  EXPECT_NE(no_plan.output.find("cannot open"), std::string::npos);

  const std::string bad_plan = ::testing::TempDir() + "/bad_plan.flt";
  std::ofstream(bad_plan) << "bitflip led\nexplode everything\n";
  const RunResult malformed =
      run_cli(sample_args() + " --faults=" + bad_plan);
  EXPECT_EQ(malformed.exit_code, 2) << malformed.output;
  EXPECT_NE(malformed.output.find("fault plan line 2"), std::string::npos)
      << malformed.output;

  // Unresolvable targets are configuration errors in campaign mode too.
  const std::string bad_target = ::testing::TempDir() + "/bad_target.flt";
  std::ofstream(bad_target) << "bitflip no_such_global\n";
  const RunResult unresolved = run_cli(sample_args() + " --campaign=1..2" +
                                       " --faults=" + bad_target);
  EXPECT_EQ(unresolved.exit_code, 2) << unresolved.output;
  EXPECT_NE(unresolved.output.find("cannot resolve fault target"),
            std::string::npos)
      << unresolved.output;
}

TEST(EsvVerifyCliTest, SingleRunWithFaultsPrintsTheLog) {
  const std::string plan = ::testing::TempDir() + "/flip_led.flt";
  std::ofstream(plan) << "bitflip led window 50..50\n";
  const RunResult r = run_cli(sample_args() + " --faults=" + plan);
  // The flipped bit usually breaks `legal` (exit 1); a bit-0 flip can
  // survive (exit 0). Either way the run completes and reports the log.
  EXPECT_TRUE(r.exit_code == 0 || r.exit_code == 1) << r.output;
  EXPECT_NE(r.output.find("faults injected: 1"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("bitflip led bit"), std::string::npos) << r.output;
}

TEST(EsvVerifyCliTest, FaultCampaignDeterministicAcrossJobs) {
  const std::string plan = ::testing::TempDir() + "/campaign_plan.flt";
  std::ofstream(plan) << "bitflip led prob 1/40\n";
  const std::string base =
      sample_args() + " --campaign=0..63 --faults=" + plan + " --quiet";
  const RunResult one = run_cli(base);
  const RunResult eight = run_cli(base + " --jobs=8");
  EXPECT_EQ(one.exit_code, eight.exit_code);
  EXPECT_EQ(one.output, eight.output);
  EXPECT_NE(one.output.find("faults:"), std::string::npos) << one.output;
}

TEST(EsvVerifyCliTest, RuntimeVerificationErrorExitsThree) {
  // The program draws an input the spec never constrains: configuration
  // parses fine, but the run itself fails — exit 3 with one diagnostic line.
  const std::string prog = ::testing::TempDir() + "/unconstrained.c";
  std::ofstream(prog) << "int x;\nvoid main(void) { x = __in(mystery); }\n";
  const std::string spec = ::testing::TempDir() + "/unconstrained.esv";
  // p is never true, so the property cannot decide and stop the run before
  // the unconstrained draw executes.
  std::ofstream(spec) << "prop p = x == 1\ncheck c: F p\n";
  const RunResult r = run_cli(prog + " " + spec);
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_NE(r.output.find("runtime error:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("unconstrained input"), std::string::npos)
      << r.output;
}

TEST(EsvVerifyCliTest, CampaignSeedTimeoutRecordsTimeoutsAndExitsOne) {
  const std::string prog = ::testing::TempDir() + "/hang.c";
  std::ofstream(prog) << "int spin;\nvoid main(void) {\n  spin = 1;\n"
                      << "  while (spin == 1) { spin = __in(hang); }\n}\n";
  const std::string spec = ::testing::TempDir() + "/hang.esv";
  std::ofstream(spec) << "input hang 1 1\nprop done = spin == 2\n"
                      << "check free: F done\n";
  const RunResult r = run_cli(prog + " " + spec +
                              " --campaign=1..2 --jobs=2" +
                              " --max-steps=999999999999" +
                              " --seed-timeout=0.25 --quiet");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("2 timed out"), std::string::npos) << r.output;
}

TEST(EsvVerifyCliTest, MetricsAndTraceFlagsWriteFiles) {
  const std::string metrics = ::testing::TempDir() + "/run_metrics.json";
  const std::string trace = ::testing::TempDir() + "/run_trace.jsonl";
  std::remove(metrics.c_str());
  std::remove(trace.c_str());
  const RunResult r = run_cli(sample_args() + " --max-steps=2000" +
                              " --metrics=" + metrics + " --trace=" + trace);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("metrics: " + metrics), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("trace: " + trace), std::string::npos) << r.output;

  std::ifstream metrics_in(metrics);
  ASSERT_TRUE(metrics_in.good());
  std::string metrics_json((std::istreambuf_iterator<char>(metrics_in)),
                           std::istreambuf_iterator<char>());
  EXPECT_NE(metrics_json.find("\"sctc.steps\": 2000"), std::string::npos)
      << metrics_json;
  EXPECT_NE(metrics_json.find("\"run.wall_us\""), std::string::npos)
      << metrics_json;

  std::ifstream trace_in(trace);
  ASSERT_TRUE(trace_in.good());
  std::string jsonl((std::istreambuf_iterator<char>(trace_in)),
                    std::istreambuf_iterator<char>());
  EXPECT_NE(jsonl.find("{\"type\":\"seed_start\",\"seed\":1}"),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"prop_change\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"seed_end\""), std::string::npos);
}

TEST(EsvVerifyCliTest, QuietSuppressesMetricsAndTraceStatusLines) {
  const std::string metrics = ::testing::TempDir() + "/quiet_metrics.json";
  const std::string trace = ::testing::TempDir() + "/quiet_trace.jsonl";
  const RunResult r =
      run_cli(sample_args() + " --quiet --max-steps=2000" +
              " --metrics=" + metrics + " --trace=" + trace);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output.find("metrics:"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("trace:"), std::string::npos) << r.output;
  // The files are still written.
  EXPECT_TRUE(std::ifstream(metrics).good());
  EXPECT_TRUE(std::ifstream(trace).good());
}

TEST(EsvVerifyCliTest, UnwritableMetricsOrTracePathExitsTwo) {
  const RunResult metrics =
      run_cli(sample_args() + " --metrics=/nonexistent/dir/m.json");
  EXPECT_EQ(metrics.exit_code, 2) << metrics.output;
  EXPECT_NE(metrics.output.find("cannot write"), std::string::npos)
      << metrics.output;

  const RunResult trace =
      run_cli(sample_args() + " --trace=/nonexistent/dir/t.jsonl");
  EXPECT_EQ(trace.exit_code, 2) << trace.output;
  EXPECT_NE(trace.output.find("cannot write"), std::string::npos)
      << trace.output;

  // Campaign mode preflights the metrics sink before any seed runs.
  const RunResult campaign = run_cli(
      sample_args() + " --campaign=1..2 --metrics=/nonexistent/dir/m.json");
  EXPECT_EQ(campaign.exit_code, 2) << campaign.output;
  EXPECT_NE(campaign.output.find("cannot write"), std::string::npos)
      << campaign.output;
}

TEST(EsvVerifyCliTest, TraceIsRejectedInCampaignMode) {
  const RunResult r =
      run_cli(sample_args() + " --campaign=1..4 --trace=/tmp/t.jsonl");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--trace is not available in campaign mode"),
            std::string::npos)
      << r.output;
}

TEST(EsvVerifyCliTest, CampaignMetricsIdenticalAcrossJobsAndInReport) {
  const std::string m1 = ::testing::TempDir() + "/campaign_m1.json";
  const std::string m8 = ::testing::TempDir() + "/campaign_m8.json";
  const std::string report = ::testing::TempDir() + "/campaign_mr.json";
  const std::string base = sample_args() + " --campaign=1..8 --quiet";
  const RunResult one =
      run_cli(base + " --metrics=" + m1 + " --report=" + report);
  const RunResult eight = run_cli(base + " --jobs=8 --metrics=" + m8);
  EXPECT_EQ(one.exit_code, 0) << one.output;
  EXPECT_EQ(eight.exit_code, 0) << eight.output;

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };
  const std::string metrics_one = slurp(m1);
  EXPECT_FALSE(metrics_one.empty());
  EXPECT_EQ(metrics_one, slurp(m8));
  EXPECT_NE(metrics_one.find("\"campaign.seeds\": 8"), std::string::npos)
      << metrics_one;
  // --report always carries the merged metrics block.
  EXPECT_NE(slurp(report).find("\"metrics\": {"), std::string::npos);
}

TEST(EsvVerifyCliTest, TraceDirAndWorkersAreCampaignOnly) {
  const RunResult trace_dir =
      run_cli(sample_args() + " --trace-dir=/tmp/td");
  EXPECT_EQ(trace_dir.exit_code, 2);
  EXPECT_NE(
      trace_dir.output.find("--trace-dir is only available in campaign mode"),
      std::string::npos)
      << trace_dir.output;

  const RunResult workers = run_cli(sample_args() + " --workers=2");
  EXPECT_EQ(workers.exit_code, 2);
  EXPECT_NE(
      workers.output.find("--workers is only available in campaign mode"),
      std::string::npos)
      << workers.output;

  for (const char* flag : {"--workers=0", "--workers=x", "--workers="}) {
    const RunResult r = run_cli(sample_args() + " --campaign=1..2 " + flag);
    EXPECT_EQ(r.exit_code, 2) << flag << "\n" << r.output;
    EXPECT_NE(r.output.find("--workers must be a positive integer"),
              std::string::npos)
        << r.output;
  }
}

TEST(EsvVerifyCliTest, CampaignTraceDirWritesPerSeedTraces) {
  const std::string dir = ::testing::TempDir() + "/campaign_traces";
  const RunResult r = run_cli(sample_args() + " --campaign=3..5 --jobs=2" +
                              " --trace-dir=" + dir + " --quiet");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  for (int seed = 3; seed <= 5; ++seed) {
    const std::string path =
        dir + "/seed_" + std::to_string(seed) + ".trace.jsonl";
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::string jsonl((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    EXPECT_NE(jsonl.find("{\"type\":\"seed_start\",\"seed\":" +
                         std::to_string(seed) + "}"),
              std::string::npos)
        << path;
    std::remove(path.c_str());
  }
}

TEST(EsvVerifyCliTest, DistributedCampaignMatchesInProcessOutput) {
  // esv-verify resolves esv-worker as its own sibling, so --workers works
  // out of the box in the build tree. Deterministic outputs (summary,
  // metrics file) must be byte-identical to the in-process runner.
  const std::string m0 = ::testing::TempDir() + "/dist_m0.json";
  const std::string m2 = ::testing::TempDir() + "/dist_m2.json";
  const std::string base = sample_args() + " --campaign=1..6 --quiet";
  const RunResult in_process = run_cli(base + " --metrics=" + m0);
  const RunResult two = run_cli(base + " --workers=2 --metrics=" + m2);
  EXPECT_EQ(in_process.exit_code, 0) << in_process.output;
  EXPECT_EQ(two.exit_code, 0) << two.output;
  EXPECT_EQ(in_process.output, two.output);

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };
  const std::string metrics = slurp(m0);
  EXPECT_FALSE(metrics.empty());
  EXPECT_EQ(metrics, slurp(m2));
}

TEST(EsvVerifyCliTest, CampaignVerdictTableIdenticalAcrossJobs) {
  // The wall/seeds-per-second line is timing; --quiet prints the
  // deterministic summary only.
  const RunResult one = run_cli(sample_args() + " --campaign=1..12 --quiet");
  const RunResult eight =
      run_cli(sample_args() + " --campaign=1..12 --jobs=8 --quiet");
  EXPECT_EQ(one.exit_code, 0);
  EXPECT_EQ(eight.exit_code, 0);
  EXPECT_EQ(one.output, eight.output);
}

}  // namespace

// Wire-layer tests for the distributed campaign runner: JSON parsing,
// length-prefixed framing (including the incremental FrameReader and a
// multi-threaded socketpair writer exercised under -DESV_TSAN=ON), protocol
// frame round-trips, and lossless domain serialization. The round-trip tests
// are the regression net for broker/worker skew: a field added to SeedResult
// without wire support shows up here, not as a silent campaign diff.
#include <gtest/gtest.h>

#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign.hpp"
#include "dist/protocol.hpp"
#include "dist/wire.hpp"
#include "obs/metrics.hpp"

namespace esv::dist {
namespace {

TEST(DistJsonTest, ParsesScalarsExactly) {
  Json doc = Json::parse(
      R"({"u":18446744073709551615,"d":0.25,"s":"a\"b\\c\nA","b":true,)"
      R"("n":null,"arr":[1,2,3]})");
  EXPECT_EQ(doc.at("u").as_u64(), 18446744073709551615ull);
  EXPECT_DOUBLE_EQ(doc.at("d").as_double(), 0.25);
  EXPECT_EQ(doc.at("s").as_string(), "a\"b\\c\nA");
  EXPECT_TRUE(doc.at("b").as_bool());
  EXPECT_EQ(doc.at("n").type(), Json::Type::kNull);
  ASSERT_EQ(doc.at("arr").items().size(), 3u);
  EXPECT_EQ(doc.at("arr").items()[2].as_u64(), 3u);
  EXPECT_TRUE(doc.has("u"));
  EXPECT_FALSE(doc.has("missing"));
  EXPECT_EQ(doc.u64_or("missing", 7), 7u);
}

TEST(DistJsonTest, RejectsMalformedDocuments) {
  EXPECT_THROW(Json::parse(""), WireError);
  EXPECT_THROW(Json::parse("{"), WireError);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), WireError);
  EXPECT_THROW(Json::parse("{'a':1}"), WireError);
  EXPECT_THROW(Json::parse("{\"a\":01x}"), WireError);
  Json doc = Json::parse("{\"a\":1}");
  EXPECT_THROW(doc.at("b"), WireError);
  EXPECT_THROW(doc.at("a").as_string(), WireError);
  EXPECT_THROW(doc.as_u64(), WireError);
}

TEST(DistJsonTest, EscapesRoundTrip) {
  const std::string nasty = "quote\" backslash\\ newline\n tab\t ctrl\x01 end";
  Json doc = Json::parse("{\"v\":" + json_string(nasty) + "}");
  EXPECT_EQ(doc.at("v").as_string(), nasty);
}

TEST(DistFramingTest, FrameReaderReassemblesByteAtATime) {
  // Encode two frames through a socketpair, then feed the reader one byte at
  // a time: framing must never depend on read boundaries.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  write_frame(fds[0], "{\"type\":\"shutdown\"}");
  write_frame(fds[0], std::string(1000, 'x'));
  ::close(fds[0]);
  std::string bytes;
  char c = 0;
  while (::read(fds[1], &c, 1) == 1) bytes.push_back(c);
  ::close(fds[1]);

  FrameReader reader;
  std::vector<std::string> frames;
  for (char byte : bytes) {
    reader.feed(&byte, 1);
    while (std::optional<std::string> payload = reader.next()) {
      frames.push_back(*payload);
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], "{\"type\":\"shutdown\"}");
  EXPECT_EQ(frames[1], std::string(1000, 'x'));
}

TEST(DistFramingTest, ReadFrameSeesCleanEofAndMidFrameEof) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  write_frame(fds[0], "{}");
  ::close(fds[0]);
  EXPECT_EQ(read_frame(fds[1]).value(), "{}");
  EXPECT_FALSE(read_frame(fds[1]).has_value());  // clean EOF
  ::close(fds[1]);

  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // 8-byte v2 header promising an 8-byte payload (CRC irrelevant — EOF hits
  // first), but only 2 payload bytes arrive before the close.
  const char truncated[] = {8, 0, 0, 0, 0, 0, 0, 0, 'h', 'a'};
  ASSERT_EQ(::send(fds[0], truncated, sizeof truncated, 0),
            static_cast<ssize_t>(sizeof truncated));
  ::close(fds[0]);
  EXPECT_THROW(read_frame(fds[1]), WireError);
  ::close(fds[1]);
}

TEST(DistFramingTest, RejectsOversizedFrames) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::uint32_t huge = kMaxFramePayload + 1;
  char header[kFrameHeaderBytes] = {static_cast<char>(huge & 0xFF),
                                    static_cast<char>((huge >> 8) & 0xFF),
                                    static_cast<char>((huge >> 16) & 0xFF),
                                    static_cast<char>((huge >> 24) & 0xFF),
                                    0, 0, 0, 0};  // dummy CRC
  ASSERT_EQ(::send(fds[0], header, sizeof header, 0),
            static_cast<ssize_t>(sizeof header));
  EXPECT_THROW(read_frame(fds[1]), WireError);
  FrameReader reader;
  reader.feed(header, sizeof header);
  EXPECT_THROW(reader.next(), WireError);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(DistFramingTest, FrameCrcDetectsPayloadCorruption) {
  // A frame whose payload is corrupted in transit must surface as a
  // WireError, never as a silently different payload — the property the
  // chaos engine's `wire.tx corrupt` action relies on.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  write_frame(fds[0], "{\"type\":\"shutdown\"}");
  ::close(fds[0]);
  std::string bytes;
  char buf[256];
  ssize_t n = 0;
  while ((n = ::read(fds[1], buf, sizeof buf)) > 0) {
    bytes.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fds[1]);
  ASSERT_GT(bytes.size(), kFrameHeaderBytes);

  bytes[kFrameHeaderBytes + 2] ^= 0x20;  // flip one payload byte
  FrameReader reader;
  reader.feed(bytes.data(), bytes.size());
  EXPECT_THROW(reader.next(), WireError);
}

TEST(DistFramingTest, ChunkedSyscallsStillDeliverWholeFrames) {
  // Force every send()/recv() down to one byte per syscall: the short-write
  // and short-read loops must reassemble the frame bit-for-bit.
  set_io_chunk_limit_for_test(1);
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payload = "{\"type\":\"shutdown\",\"pad\":\"pppp\"}";
  write_frame(fds[0], payload);
  ::close(fds[0]);
  EXPECT_EQ(read_frame(fds[1]).value(), payload);
  ::close(fds[1]);
  set_io_chunk_limit_for_test(0);
}

TEST(DistFramingTest, SendAndRecvSurviveEintrStorm) {
  // A no-SA_RESTART handler makes blocked send()/recv() actually return
  // EINTR; the storm below proves both loops retry instead of tearing the
  // frame (the worker heartbeat thread takes signals mid-send in practice).
  struct sigaction action {};
  action.sa_handler = [](int) {};
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // deliberately no SA_RESTART
  struct sigaction previous {};
  ASSERT_EQ(::sigaction(SIGUSR1, &action, &previous), 0);

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const int small_buffer = 4096;  // make the writer block mid-frame
  ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &small_buffer,
               sizeof small_buffer);

  const std::string payload(1 << 20, 'z');
  std::atomic<bool> done{false};
  std::thread writer([&] {
    write_frame(fds[0], payload);
    done.store(true);
  });
  std::thread storm([&] {
    while (!done.load()) {
      ::pthread_kill(writer.native_handle(), SIGUSR1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  FrameReader reader;
  char buf[65536];
  std::optional<std::string> got;
  while (!got) {
    ssize_t n = ::recv(fds[1], buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    ASSERT_GT(n, 0);
    reader.feed(buf, static_cast<std::size_t>(n));
    got = reader.next();
  }
  writer.join();
  storm.join();
  EXPECT_EQ(*got, payload);
  ::close(fds[0]);
  ::close(fds[1]);
  ::sigaction(SIGUSR1, &previous, nullptr);
}

// The broker serializes outbound frames per worker and workers serialize
// sends behind a mutex; this test is the TSan witness that concurrent
// write_frame calls on one socket stay frame-atomic when externally
// serialized, and that the reader reassembles an interleaved stream.
TEST(DistFramingTest, ConcurrentSerializedWritersKeepFramesIntact) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  constexpr int kThreads = 4;
  constexpr int kFramesPerThread = 200;
  std::mutex send_mutex;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kFramesPerThread; ++i) {
        std::string payload = "{\"thread\":" + std::to_string(t) +
                              ",\"i\":" + std::to_string(i) + "}";
        std::lock_guard<std::mutex> lock(send_mutex);
        write_frame(fds[0], payload);
      }
    });
  }
  std::vector<std::string> received;
  std::thread reader_thread([&] {
    while (std::optional<std::string> payload = read_frame(fds[1])) {
      received.push_back(*payload);
    }
  });
  for (std::thread& writer : writers) writer.join();
  ::close(fds[0]);
  reader_thread.join();
  ::close(fds[1]);
  ASSERT_EQ(received.size(),
            static_cast<std::size_t>(kThreads * kFramesPerThread));
  std::vector<int> next(kThreads, 0);
  for (const std::string& payload : received) {
    Json doc = Json::parse(payload);
    int thread = static_cast<int>(doc.at("thread").as_u64());
    EXPECT_EQ(doc.at("i").as_u64(), static_cast<std::uint64_t>(next[thread]));
    ++next[thread];
  }
}

TEST(DistProtocolTest, FrameBuildersRoundTripThroughParse) {
  Frame hello = parse_frame(make_worker_hello(3, 1, 4242));
  EXPECT_EQ(hello.kind, FrameKind::kHello);
  EXPECT_EQ(hello.body.at("worker").as_u64(), 3u);
  EXPECT_EQ(hello.body.at("generation").as_u64(), 1u);
  EXPECT_EQ(hello.body.at("pid").as_u64(), 4242u);
  EXPECT_EQ(hello.body.at("protocol").as_u64(), kProtocolVersion);

  Frame assign = parse_frame(make_assign({7, 8, 18446744073709551615ull}));
  EXPECT_EQ(assign.kind, FrameKind::kAssign);
  ASSERT_EQ(assign.body.at("seeds").items().size(), 3u);
  EXPECT_EQ(assign.body.at("seeds").items()[2].as_u64(),
            18446744073709551615ull);

  Frame heartbeat = parse_frame(make_heartbeat(5, 2));
  EXPECT_EQ(heartbeat.kind, FrameKind::kHeartbeat);
  EXPECT_EQ(heartbeat.body.at("queued").as_u64(), 5u);
  EXPECT_EQ(heartbeat.body.at("busy").as_u64(), 2u);

  EXPECT_EQ(parse_frame(make_shutdown()).kind, FrameKind::kShutdown);
  EXPECT_THROW(parse_frame("{\"type\":\"warp\"}"), WireError);
  EXPECT_THROW(parse_frame("{}"), WireError);
}

TEST(DistWireTest, CampaignConfigRoundTripsLosslessly) {
  campaign::CampaignConfig config;
  config.program_source = "void main(void) { }\n// \"quoted\"\n";
  config.spec_text = "prop p = x == 1\ncheck c: G p\n";
  config.approach = 1;
  config.mode = sctc::MonitorMode::kSynthesizedAutomaton;
  config.max_steps = 123456789012345ull;
  config.jobs = 3;
  config.witness_depth = 17;
  config.fault_plan_text = "fault bitflip led bit 3 at 100\n";
  config.fault_log_limit = 9;
  config.collect_metrics = true;
  config.capture_traces = true;
  config.seed_timeout_seconds = 2.5;
  config.seed_retries = 4;

  campaign::CampaignConfig copy =
      config_from_json(Json::parse(config_to_json(config)));
  EXPECT_EQ(copy.program_source, config.program_source);
  EXPECT_EQ(copy.spec_text, config.spec_text);
  EXPECT_EQ(copy.approach, config.approach);
  EXPECT_EQ(copy.mode, config.mode);
  EXPECT_EQ(copy.max_steps, config.max_steps);
  EXPECT_EQ(copy.jobs, config.jobs);
  EXPECT_EQ(copy.witness_depth, config.witness_depth);
  EXPECT_EQ(copy.fault_plan_text, config.fault_plan_text);
  EXPECT_EQ(copy.fault_log_limit, config.fault_log_limit);
  EXPECT_EQ(copy.collect_metrics, config.collect_metrics);
  EXPECT_EQ(copy.capture_traces, config.capture_traces);
  EXPECT_DOUBLE_EQ(copy.seed_timeout_seconds, config.seed_timeout_seconds);
  EXPECT_EQ(copy.seed_retries, config.seed_retries);
}

TEST(DistWireTest, EveryMonitorModeRoundTrips) {
  for (const sctc::MonitorMode mode :
       {sctc::MonitorMode::kProgression, sctc::MonitorMode::kSynthesizedAutomaton,
        sctc::MonitorMode::kCompiled, sctc::MonitorMode::kBoth}) {
    campaign::CampaignConfig config;
    config.mode = mode;
    const campaign::CampaignConfig copy =
        config_from_json(Json::parse(config_to_json(config)));
    EXPECT_EQ(copy.mode, mode) << sctc::monitor_mode_name(mode);
  }

  // An unknown mode string is a wire error, not a silent default: a broker
  // and a worker disagreeing on the monitor mode would verify different
  // things.
  std::string json = config_to_json(campaign::CampaignConfig{});
  const std::size_t at = json.find("\"progression\"");
  ASSERT_NE(at, std::string::npos);
  json.replace(at, std::string("\"progression\"").size(), "\"warp\"");
  EXPECT_THROW(config_from_json(Json::parse(json)), WireError);
}

TEST(DistWireTest, SeedResultRoundTripsLosslessly) {
  campaign::SeedResult result;
  result.seed = 18446744073709551610ull;
  result.properties.resize(2);
  result.properties[0].verdict = temporal::Verdict::kViolated;
  result.properties[0].decided_at_step = 42;
  result.properties[0].fault_class = sctc::FaultClass::kViolatedUnderFault;
  result.properties[1].verdict = temporal::Verdict::kValidated;
  result.properties[1].decided_at_step = 7;
  result.steps = 1000;
  result.statements = 2000;
  result.draws = 300;
  result.finished = true;
  result.error = "assertion \"x\" failed\nline 2";
  result.error_kind = "sut";
  result.attempts = 3;
  result.witness = "| step | led |\n";
  result.prop_true_counts = {10, 0, 18446744073709551615ull};
  result.injected_faults = 5;
  result.fault_log = "step 3: bitflip led bit 0\n";
  result.fault_plan_digest = "00ff00ff00ff00ff";
  result.metrics.counters["kernel.delta_cycles"] = 99;
  obs::HistogramData hist;
  hist.count = 2;
  hist.sum = 10;
  hist.min = 3;
  hist.max = 7;
  hist.buckets = {0, 0, 1, 1};
  result.metrics.histograms["checker.steps"] = hist;
  result.trace_jsonl = "{\"type\":\"seed_start\",\"seed\":1}\n";
  result.wall_ms = 12.75;

  campaign::SeedResult copy =
      seed_result_from_json(Json::parse(seed_result_to_json(result)));
  EXPECT_EQ(copy.seed, result.seed);
  ASSERT_EQ(copy.properties.size(), 2u);
  EXPECT_EQ(copy.properties[0].verdict, temporal::Verdict::kViolated);
  EXPECT_EQ(copy.properties[0].decided_at_step, 42u);
  EXPECT_EQ(copy.properties[0].fault_class,
            sctc::FaultClass::kViolatedUnderFault);
  EXPECT_EQ(copy.properties[1].verdict, temporal::Verdict::kValidated);
  EXPECT_EQ(copy.steps, result.steps);
  EXPECT_EQ(copy.statements, result.statements);
  EXPECT_EQ(copy.draws, result.draws);
  EXPECT_EQ(copy.finished, result.finished);
  EXPECT_EQ(copy.error, result.error);
  EXPECT_EQ(copy.error_kind, result.error_kind);
  EXPECT_EQ(copy.attempts, result.attempts);
  EXPECT_EQ(copy.witness, result.witness);
  EXPECT_EQ(copy.prop_true_counts, result.prop_true_counts);
  EXPECT_EQ(copy.injected_faults, result.injected_faults);
  EXPECT_EQ(copy.fault_log, result.fault_log);
  EXPECT_EQ(copy.fault_plan_digest, result.fault_plan_digest);
  EXPECT_EQ(copy.metrics.counters, result.metrics.counters);
  ASSERT_EQ(copy.metrics.histograms.count("checker.steps"), 1u);
  EXPECT_EQ(copy.metrics.histograms["checker.steps"].sum, 10u);
  EXPECT_EQ(copy.metrics.histograms["checker.steps"].buckets, hist.buckets);
  EXPECT_EQ(copy.trace_jsonl, result.trace_jsonl);
  EXPECT_DOUBLE_EQ(copy.wall_ms, result.wall_ms);
}

TEST(DistWireTest, MetricsSnapshotRoundTripRendersIdentically) {
  obs::MetricsRegistry registry;
  registry.counter("a.count").add(18446744073709551615ull);
  registry.counter("b.count").add(1);
  registry.histogram("c.hist").record(5);
  registry.histogram("c.hist").record(100);
  registry.duration_histogram("d.wall_us").record(123);
  obs::MetricsSnapshot snapshot = registry.snapshot();

  obs::MetricsSnapshot copy =
      metrics_from_json(Json::parse(metrics_to_json(snapshot)));
  // Byte-identical rendering in both the full and the deterministic form is
  // the property the campaign merge relies on.
  EXPECT_EQ(copy.to_json(true), snapshot.to_json(true));
  EXPECT_EQ(copy.to_json(false), snapshot.to_json(false));
}

}  // namespace
}  // namespace esv::dist

// Campaign runner tests: determinism across jobs counts, equivalence with
// the legacy single-run path, aggregation, error capture, and coverage
// merging. The determinism tests are the regression net for the thread-pool
// runner — any scheduling dependence shows up as a table diff.
#include <gtest/gtest.h>

#include <string>

#include "campaign/campaign.hpp"
#include "esw/esw_model.hpp"
#include "mem/address_space.hpp"
#include "minic/sema.hpp"
#include "spec/specfile.hpp"
#include "stimulus/coverage.hpp"
#include "stimulus/random_inputs.hpp"

namespace esv::campaign {
namespace {

const char* kBlinker = R"(
enum { LED_OFF = 0, LED_ON = 1 };

bool flag;
int led;
int ticks_on;
int cycles;

void update(int enable) {
  if (enable == 1) {
    if (led == LED_OFF) {
      led = LED_ON;
    } else {
      led = LED_OFF;
    }
  } else {
    led = LED_OFF;
  }
  if (led == LED_ON) {
    ticks_on = ticks_on + 1;
  }
}

void main(void) {
  led = LED_OFF;
  ticks_on = 0;
  flag = true;
  while (cycles < 200) {
    int enable = __in(enable);
    update(enable);
    cycles = cycles + 1;
  }
}
)";

const char* kBlinkerSpec = R"(
input enable 0 1

prop led_on    = led == LED_ON
prop led_off   = led == LED_OFF
prop finished  = cycles >= 200

check legal: G (led_on || led_off)
check terminates: F finished
check responds: G (led_on -> F[10] led_off)
)";

CampaignConfig blinker_config(std::uint64_t lo, std::uint64_t hi,
                              unsigned jobs) {
  CampaignConfig config;
  config.program_source = kBlinker;
  config.spec_text = kBlinkerSpec;
  config.seed_lo = lo;
  config.seed_hi = hi;
  config.jobs = jobs;
  return config;
}

TEST(CampaignTest, DeterministicAcrossJobsCounts) {
  const CampaignReport serial = run(blinker_config(1, 24, 1));
  const CampaignReport parallel = run(blinker_config(1, 24, 8));

  // Bit-identical verdict table, merged coverage, and timing-free JSON.
  EXPECT_EQ(serial.verdict_table(), parallel.verdict_table());
  EXPECT_EQ(serial.to_json(/*include_timing=*/false),
            parallel.to_json(/*include_timing=*/false));
  ASSERT_EQ(serial.seeds.size(), parallel.seeds.size());
  for (std::size_t i = 0; i < serial.seeds.size(); ++i) {
    EXPECT_EQ(serial.seeds[i].seed, parallel.seeds[i].seed);
    EXPECT_EQ(serial.seeds[i].steps, parallel.seeds[i].steps);
    EXPECT_EQ(serial.seeds[i].draws, parallel.seeds[i].draws);
    EXPECT_EQ(serial.seeds[i].prop_true_counts,
              parallel.seeds[i].prop_true_counts);
  }
  // The jobs count is echoed in the report but must never leak into the
  // deterministic renderings.
  EXPECT_EQ(serial.jobs, 1u);
  EXPECT_EQ(parallel.jobs, 8u);
}

TEST(CampaignTest, DeterministicAcrossJobsCountsAutomatonMode) {
  CampaignConfig config = blinker_config(1, 8, 1);
  config.mode = sctc::MonitorMode::kSynthesizedAutomaton;
  const CampaignReport serial = run(config);
  config.jobs = 8;
  const CampaignReport parallel = run(config);
  EXPECT_EQ(serial.verdict_table(), parallel.verdict_table());
}

TEST(CampaignTest, CompiledAndBothModesMatchInterpretedVerdicts) {
  const CampaignReport interpreted = run(blinker_config(1, 8, 2));
  for (const sctc::MonitorMode mode :
       {sctc::MonitorMode::kCompiled, sctc::MonitorMode::kBoth}) {
    CampaignConfig config = blinker_config(1, 8, 2);
    config.mode = mode;
    const CampaignReport report = run(config);
    // The verdict tables carry the mode name, so compare the aggregates.
    EXPECT_EQ(report.validated_total, interpreted.validated_total);
    EXPECT_EQ(report.violated_total, interpreted.violated_total);
    EXPECT_EQ(report.pending_total, interpreted.pending_total);
    EXPECT_EQ(report.total_steps, interpreted.total_steps);
    // `both` would surface any compiled-vs-interpreted divergence as an
    // errored seed (error_kind "monitor"); a correct build has none.
    EXPECT_EQ(report.error_seeds, 0u);
  }
}

TEST(CampaignTest, ReportMetricsBlockRecordsMonitorModeAndThroughput) {
  CampaignConfig config = blinker_config(1, 4, 2);
  config.mode = sctc::MonitorMode::kCompiled;
  config.collect_metrics = true;
  const CampaignReport report = run(config);

  // The metrics block alone must pin down how a BENCH_* figure was made:
  // monitor mode always, steps/s only when timing is included (so the
  // timing-free rendering stays byte-deterministic).
  const std::string deterministic = report.to_json(/*include_timing=*/false);
  EXPECT_NE(deterministic.find("\"monitor_mode\": \"compiled\""),
            std::string::npos);
  EXPECT_EQ(deterministic.find("steps_per_second"), std::string::npos);

  const std::string timed = report.to_json(/*include_timing=*/true);
  EXPECT_NE(timed.find("\"monitor_mode\": \"compiled\""), std::string::npos);
  EXPECT_NE(timed.find("\"steps_per_second\": "), std::string::npos);
}

TEST(CampaignTest, SingleSeedCampaignMatchesLegacySingleRunPath) {
  const std::uint64_t kSeed = 7;
  const CampaignReport report = run(blinker_config(kSeed, kSeed, 1));
  ASSERT_EQ(report.seeds.size(), 1u);
  const SeedResult& campaign_seed = report.seeds[0];

  // The legacy path: exactly what esv-verify does for --approach=2 --seed=7.
  minic::Program program = minic::compile(kBlinker);
  const spec::SpecFile specfile = spec::parse_spec(kBlinkerSpec);
  mem::AddressSpace memory((program.data_segment_end() + 0xFFFu) & ~0xFFFu);
  stimulus::RandomInputProvider inputs(kSeed);
  for (const auto& input : specfile.inputs) {
    inputs.set_range(input.name, input.lo, input.hi);
  }
  sim::Simulation sim;
  sctc::TemporalChecker checker(sim, "sctc");
  spec::apply_spec(specfile, program, memory, checker);
  checker.set_stop_on_violation(true);
  esw::EswProgram lowered = esw::lower_program(program);
  esw::EswModel model(sim, "esw", program, lowered, memory, inputs);
  checker.bind_trigger(model.pc_event());
  sim.create_method(
      "supervisor",
      [&] {
        if (model.finished() || checker.all_decided() ||
            model.interpreter().steps_executed() >= 1'000'000) {
          sim.stop();
        }
      },
      {&model.pc_event()}, /*run_at_start=*/false);
  sim.run();

  ASSERT_EQ(campaign_seed.properties.size(), checker.properties().size());
  for (std::size_t p = 0; p < checker.properties().size(); ++p) {
    EXPECT_EQ(campaign_seed.properties[p].verdict,
              checker.properties()[p].verdict());
    EXPECT_EQ(campaign_seed.properties[p].decided_at_step,
              checker.properties()[p].decided_at_step);
  }
  EXPECT_EQ(campaign_seed.steps, checker.steps());
  EXPECT_EQ(campaign_seed.statements, model.interpreter().steps_executed());
  EXPECT_EQ(campaign_seed.draws, inputs.draw_count());
  EXPECT_EQ(campaign_seed.finished, model.finished());
  EXPECT_EQ(campaign_seed.prop_true_counts,
            checker.registered_proposition_true_counts());
}

TEST(CampaignTest, ApproachOneCampaignIsDeterministic) {
  CampaignConfig config = blinker_config(1, 4, 1);
  config.approach = 1;
  config.max_steps = 2'000'000;
  // A violation-free spec: the run must reach the CPU halt, so `finished`
  // is meaningful. (The default spec's bounded response violates under
  // statement-granular sampling and stops the simulation early.)
  config.spec_text = R"(
input enable 0 1
prop led_on    = led == LED_ON
prop led_off   = led == LED_OFF
prop finished  = cycles >= 200
check legal: G (led_on || led_off)
check terminates: F finished
)";
  const CampaignReport serial = run(config);
  config.jobs = 4;
  const CampaignReport parallel = run(config);
  EXPECT_EQ(serial.verdict_table(), parallel.verdict_table());
  for (const SeedResult& seed : serial.seeds) {
    EXPECT_TRUE(seed.finished) << "seed " << seed.seed;
    EXPECT_TRUE(seed.error.empty()) << seed.error;
  }
}

TEST(CampaignTest, AggregatesViolationsAndWitnesses) {
  CampaignConfig config = blinker_config(1, 6, 3);
  // ticks_on < 3 is eventually violated on every seed that toggles enough.
  config.spec_text = R"(
input enable 0 1
prop calm = ticks_on < 3
check never_busy: G calm
)";
  config.witness_depth = 4;
  const CampaignReport report = run(config);

  ASSERT_EQ(report.per_property.size(), 1u);
  const PropertyAggregate& agg = report.per_property[0];
  EXPECT_EQ(agg.name, "never_busy");
  EXPECT_GT(agg.violated, 0u);
  EXPECT_EQ(agg.validated + agg.violated + agg.pending, report.seed_count());
  ASSERT_TRUE(agg.first_violation_seed.has_value());

  EXPECT_TRUE(report.any_violated());
  EXPECT_EQ(report.violated_total, agg.violated);
  bool found_witness = false;
  for (const SeedResult& seed : report.seeds) {
    if (seed.properties[0].verdict == temporal::Verdict::kViolated) {
      EXPECT_FALSE(seed.witness.empty());
      EXPECT_NE(seed.witness.find("calm"), std::string::npos);
      found_witness = true;
      // first_violation_seed is the smallest violating seed.
      EXPECT_LE(*agg.first_violation_seed, seed.seed);
    }
  }
  EXPECT_TRUE(found_witness);
}

TEST(CampaignTest, SutFaultIsRecordedNotFatal) {
  CampaignConfig config = blinker_config(1, 4, 2);
  config.program_source = R"(
int cycles;
void main(void) {
  while (cycles < 50) {
    int x = __in(x);
    assert(x < 3);
    cycles = cycles + 1;
  }
}
)";
  config.spec_text = R"(
input x 0 3
prop done = cycles >= 50
check terminates: F done
)";
  const CampaignReport report = run(config);
  EXPECT_GT(report.error_seeds, 0u);
  for (const SeedResult& seed : report.seeds) {
    if (!seed.error.empty()) {
      EXPECT_NE(seed.error.find("assertion failed"), std::string::npos)
          << seed.error;
      EXPECT_FALSE(seed.finished);
    }
  }
  // Deterministic error capture too.
  const CampaignReport again = run(config);
  EXPECT_EQ(report.verdict_table(), again.verdict_table());
}

TEST(CampaignTest, ErroredSeedsRecordFaultPlanDigest) {
  // In a fault campaign every errored seed carries the plan digest, so a
  // crash report (local or shipped back from a distributed worker) names the
  // exact (plan, seed) pair needed to reproduce it with one
  // `esv-verify --seed=N --faults=PLAN` run.
  CampaignConfig config = blinker_config(1, 6, 2);
  config.program_source = R"(
int cycles;
void main(void) {
  while (cycles < 50) {
    int x = __in(x);
    assert(x < 3);
    cycles = cycles + 1;
  }
}
)";
  config.spec_text = R"(
input x 0 3
prop done = cycles >= 50
check terminates: F done
)";
  config.fault_plan_text = "bitflip cycles window 10..10\n";
  const CampaignReport report = run(config);
  ASSERT_GT(report.error_seeds, 0u);
  std::string digest;
  for (const SeedResult& seed : report.seeds) {
    if (seed.error.empty()) {
      EXPECT_TRUE(seed.fault_plan_digest.empty()) << seed.seed;
    } else {
      ASSERT_EQ(seed.fault_plan_digest.size(), 16u) << seed.seed;
      if (digest.empty()) digest = seed.fault_plan_digest;
      EXPECT_EQ(seed.fault_plan_digest, digest);  // one plan, one digest
    }
  }
  // The digest surfaces in both renderings of the error.
  EXPECT_NE(report.verdict_table().find("plan=" + digest), std::string::npos)
      << report.verdict_table();
  EXPECT_NE(report.to_json(false).find("\"fault_plan_digest\": \"" + digest),
            std::string::npos);

  // Nominal campaigns have no plan, so errored seeds carry no digest.
  config.fault_plan_text.clear();
  const CampaignReport nominal = run(config);
  ASSERT_GT(nominal.error_seeds, 0u);
  for (const SeedResult& seed : nominal.seeds) {
    EXPECT_TRUE(seed.fault_plan_digest.empty());
  }
  EXPECT_EQ(nominal.verdict_table().find("plan="), std::string::npos);
}

TEST(CampaignTest, MergedCoverageIsSumOfSeeds) {
  const CampaignReport report = run(blinker_config(1, 10, 4));
  ASSERT_FALSE(report.coverage.empty());
  for (std::size_t c = 0; c < report.coverage.size(); ++c) {
    std::uint64_t true_sum = 0;
    for (const SeedResult& seed : report.seeds) {
      ASSERT_LT(c, seed.prop_true_counts.size());
      true_sum += seed.prop_true_counts[c];
    }
    EXPECT_EQ(report.coverage[c].true_steps, true_sum);
    EXPECT_EQ(report.coverage[c].total_steps, report.total_steps);
    EXPECT_GE(report.coverage[c].percent(), 0.0);
    EXPECT_LE(report.coverage[c].percent(), 100.0);
  }
  // led_on and led_off partition every step.
  EXPECT_EQ(report.coverage[0].name, "led_on");
  EXPECT_EQ(report.coverage[1].name, "led_off");
  EXPECT_EQ(report.coverage[0].true_steps + report.coverage[1].true_steps,
            report.total_steps);
}

TEST(CampaignTest, ConfigurationErrorsThrowBeforeWorkersStart) {
  CampaignConfig config = blinker_config(5, 1, 2);
  EXPECT_THROW(run(config), std::invalid_argument);

  config = blinker_config(1, 2, 1);
  config.approach = 3;
  EXPECT_THROW(run(config), std::invalid_argument);

  config = blinker_config(1, 2, 1);
  config.spec_text = "bogus directive";
  EXPECT_THROW(run(config), spec::SpecError);

  config = blinker_config(1, 2, 1);
  config.spec_text = "prop x = no_such_global == 0\ncheck p: G x";
  EXPECT_THROW(run(config), spec::SpecError);

  config = blinker_config(1, 2, 1);
  config.program_source = "void main(void) { undeclared = 1; }";
  EXPECT_THROW(run(config), std::exception);
}

TEST(CampaignTest, JobsLargerThanSeedRangeIsClamped) {
  const CampaignReport report = run(blinker_config(3, 4, 16));
  EXPECT_EQ(report.jobs, 2u);
  EXPECT_EQ(report.seed_count(), 2u);
  EXPECT_EQ(report.seeds[0].seed, 3u);
  EXPECT_EQ(report.seeds[1].seed, 4u);
}

// The stimulus-layer merge that campaign-style aggregation builds on.
TEST(CampaignTest, ReturnCodeCoverageMerge) {
  stimulus::ReturnCodeCoverage a({10, 20, 30});
  stimulus::ReturnCodeCoverage b({10, 20, 30});
  a.observe(10);
  b.observe(20);
  b.observe(99);  // anomaly in b
  a.merge(b);
  EXPECT_EQ(a.observed_count(), 2u);
  EXPECT_EQ(a.anomaly_count(), 1u);
  EXPECT_DOUBLE_EQ(a.percent(), 100.0 * 2 / 3);

  // Merging a collector with a different expected set cannot inflate
  // coverage: unknown codes land in the anomaly count instead.
  stimulus::ReturnCodeCoverage other({40});
  other.observe(40);
  a.merge(other);
  EXPECT_EQ(a.observed_count(), 2u);
  EXPECT_EQ(a.anomaly_count(), 2u);
}

}  // namespace
}  // namespace esv::campaign

// Integration soak: the full case study with ALL seven operation-response
// properties monitored simultaneously in one simulation — the paper runs one
// property per experiment; the checker handles the whole set at once.
#include <gtest/gtest.h>

#include "casestudy/eeprom.hpp"
#include "esw/esw_program.hpp"
#include "esw/interpreter.hpp"
#include "minic/sema.hpp"
#include "sctc/checker.hpp"
#include "stimulus/coverage.hpp"
#include "stimulus/random_inputs.hpp"

namespace esv {
namespace {

TEST(IntegrationSoakTest, AllPropertiesSimultaneouslyOnEswModel) {
  using namespace casestudy;

  minic::Program program = minic::compile(eeprom_emulation_source());
  esw::EswProgram lowered = esw::lower_program(program);
  mem::AddressSpace memory(
      (program.data_segment_end() + 0xFFFu) & ~0xFFFu);
  flash::FlashController flash_dev(eeprom_flash_config());
  memory.map_device(kFlashMmioBase, flash_dev.window_bytes(), flash_dev);
  stimulus::RandomInputProvider inputs(0xCAFE);
  stimulus::configure_eeprom_inputs(inputs, /*fault_permille=*/15);
  esw::Interpreter interp(program, lowered, memory, inputs);

  sim::Simulation sim;
  sctc::TemporalChecker checker(sim, "sctc");
  std::vector<std::unique_ptr<stimulus::ReturnCodeCoverage>> coverages;
  std::vector<std::uint32_t> ret_addrs;
  for (const OperationSpec& op : eeprom_operations()) {
    register_operation_propositions(checker, memory, program, op);
    checker.add_property(op.name, response_property(op, 20000));
    coverages.push_back(
        std::make_unique<stimulus::ReturnCodeCoverage>(op.return_codes));
    ret_addrs.push_back(program.find_global(op.ret_global)->address);
  }
  ASSERT_EQ(checker.properties().size(), 7u);

  const std::uint32_t tc_addr = program.find_global("test_cases")->address;
  std::uint64_t steps = 0;
  while (memory.sctc_read_uint(tc_addr) < 3000 && steps < 10'000'000) {
    ASSERT_TRUE(interp.step());
    ++steps;
    checker.step_all();
    for (std::size_t i = 0; i < coverages.size(); ++i) {
      coverages[i]->observe(memory.sctc_read_uint(ret_addrs[i]));
    }
    ASSERT_FALSE(checker.any_violated()) << checker.report();
  }

  EXPECT_EQ(memory.sctc_read_uint(tc_addr), 3000u);
  // Every operation executed and produced documented return values only.
  double total_coverage = 0;
  for (std::size_t i = 0; i < coverages.size(); ++i) {
    EXPECT_GT(coverages[i]->percent(), 0.0)
        << eeprom_operations()[i].name;
    EXPECT_EQ(coverages[i]->anomaly_count(), 0u)
        << eeprom_operations()[i].name;
    total_coverage += coverages[i]->percent();
  }
  // The mixed workload with fault injection reaches most return codes.
  EXPECT_GT(total_coverage / static_cast<double>(coverages.size()), 70.0);
  // The flash saw real wear: erases from formats/prepares, programs from
  // writes/refreshes, and injected failures.
  EXPECT_GT(flash_dev.erase_count(), 100u);
  EXPECT_GT(flash_dev.program_count(), 500u);
  EXPECT_GT(flash_dev.failed_op_count(), 0u);
}

TEST(IntegrationSoakTest, LongRunStaysConsistentAcrossReboots) {
  // Alternate random operation and reboots; after every startup the pool
  // must come back consistent (startup1+2 succeed once formatted).
  using namespace casestudy;
  minic::Program program = minic::compile(eeprom_emulation_source());
  esw::EswProgram lowered = esw::lower_program(program);
  mem::AddressSpace memory(
      (program.data_segment_end() + 0xFFFu) & ~0xFFFu);
  flash::FlashController flash_dev(eeprom_flash_config());
  memory.map_device(kFlashMmioBase, flash_dev.window_bytes(), flash_dev);

  const std::uint32_t tc_addr = program.find_global("test_cases")->address;
  common::Rng rng(77);
  bool formatted = false;
  for (int reboot = 0; reboot < 12; ++reboot) {
    stimulus::RandomInputProvider inputs(rng.next_u64());
    stimulus::configure_eeprom_inputs(inputs, 0);
    esw::Interpreter interp(program, lowered, memory, inputs);
    // Random number of operations, then "power loss" at a random step.
    const std::uint64_t cases = 5 + rng.next_below(40);
    std::uint64_t guard = 0;
    while (memory.sctc_read_uint(tc_addr) < cases && guard++ < 3'000'000) {
      if (!interp.step()) break;
    }
    const std::uint64_t extra = rng.next_below(2000);
    for (std::uint64_t i = 0; i < extra; ++i) {
      if (!interp.step()) break;  // cut power mid-operation
    }
    if (interp.global("ret_format") == kEeeOk) formatted = true;

    if (formatted) {
      // Reboot and verify the pool recovers. A power loss in the middle of
      // a *format* legitimately leaves no active page (EEE_ERR_NO_INSTANCE:
      // the application layer must format again); anything else must come
      // back clean.
      class BootScript : public minic::InputProvider {
       public:
        std::uint32_t input(int, const std::string& name) override {
          if (name == "op_select") return next_op_++ == 0 ? 1 : 2;
          return 0;
        }

       private:
        int next_op_ = 0;
      };
      BootScript boot;
      esw::Interpreter recover(program, lowered, memory, boot);
      std::uint64_t guard2 = 0;
      while (memory.sctc_read_uint(tc_addr) < 2 && guard2++ < 3'000'000) {
        ASSERT_TRUE(recover.step());
      }
      const std::uint32_t s1 = recover.global("ret_startup1");
      EXPECT_TRUE(s1 == kEeeOk || s1 == kEeeErrNoInstance)
          << "reboot " << reboot << ": " << s1;
      if (s1 == kEeeOk) {
        EXPECT_EQ(recover.global("ret_startup2"), kEeeOk)
            << "reboot " << reboot;
      } else {
        formatted = false;  // the next round must format first
      }
    }
  }
}

}  // namespace
}  // namespace esv

// Tests for formula construction, hash-consing, simplification, and
// progression.
#include <gtest/gtest.h>

#include "temporal/formula.hpp"

namespace esv::temporal {
namespace {

class FormulaTest : public ::testing::Test {
 protected:
  FormulaFactory f;
};

TEST_F(FormulaTest, HashConsingReturnsSamePointer) {
  FormulaRef a1 = f.prop("a");
  FormulaRef a2 = f.prop("a");
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(f.and_(a1, f.prop("b")), f.and_(f.prop("b"), a2));
  EXPECT_EQ(f.eventually(a1, 5), f.eventually(a2, 5));
  EXPECT_NE(f.eventually(a1, 5), f.eventually(a1, 6));
  EXPECT_NE(f.eventually(a1, 5), f.eventually(a1));
}

TEST_F(FormulaTest, PropIndicesAreStable) {
  FormulaRef a = f.prop("a");
  FormulaRef b = f.prop("b");
  EXPECT_EQ(a->prop_index(), 0);
  EXPECT_EQ(b->prop_index(), 1);
  EXPECT_EQ(f.prop("a")->prop_index(), 0);
  EXPECT_EQ(f.prop_name(1), "b");
  EXPECT_EQ(f.prop_count(), 2);
}

TEST_F(FormulaTest, ConstantFolding) {
  FormulaRef a = f.prop("a");
  EXPECT_EQ(f.not_(f.constant(true)), f.constant(false));
  EXPECT_EQ(f.not_(f.not_(a)), a);
  EXPECT_EQ(f.and_(a, f.constant(false)), f.constant(false));
  EXPECT_EQ(f.and_(a, f.constant(true)), a);
  EXPECT_EQ(f.or_(a, f.constant(true)), f.constant(true));
  EXPECT_EQ(f.or_(a, f.constant(false)), a);
}

TEST_F(FormulaTest, AndOrCanonicalization) {
  FormulaRef a = f.prop("a");
  FormulaRef b = f.prop("b");
  FormulaRef c = f.prop("c");
  // Flattening: (a && b) && c == a && (b && c).
  EXPECT_EQ(f.and_(f.and_(a, b), c), f.and_(a, f.and_(b, c)));
  // Idempotence.
  EXPECT_EQ(f.and_(a, a), a);
  EXPECT_EQ(f.or_(b, b), b);
  // Complement.
  EXPECT_EQ(f.and_(a, f.not_(a)), f.constant(false));
  EXPECT_EQ(f.or_(a, f.not_(a)), f.constant(true));
}

TEST_F(FormulaTest, TemporalSimplifications) {
  FormulaRef a = f.prop("a");
  EXPECT_EQ(f.eventually(f.constant(true)), f.constant(true));
  EXPECT_EQ(f.always(f.constant(false)), f.constant(false));
  EXPECT_EQ(f.eventually(a, 0), a);  // F[0] a == a
  EXPECT_EQ(f.always(a, 0), a);      // G[0] a == a
  EXPECT_EQ(f.eventually(f.eventually(a)), f.eventually(a));
  EXPECT_EQ(f.always(f.always(a)), f.always(a));
  EXPECT_EQ(f.next(a, 0), a);
  // X X a == X[2] a.
  EXPECT_EQ(f.next(f.next(a)), f.next(a, 2));
}

TEST_F(FormulaTest, UntilReleaseSimplifications) {
  FormulaRef a = f.prop("a");
  FormulaRef b = f.prop("b");
  EXPECT_EQ(f.until(a, f.constant(true)), f.constant(true));
  EXPECT_EQ(f.until(a, f.constant(false)), f.constant(false));
  EXPECT_EQ(f.until(f.constant(true), b), f.eventually(b));
  EXPECT_EQ(f.until(f.constant(false), b), b);
  EXPECT_EQ(f.release(f.constant(false), b), f.always(b));
  EXPECT_EQ(f.release(f.constant(true), b), b);
  EXPECT_EQ(f.until(a, b, 0), b);
}

TEST_F(FormulaTest, ToStringRoundTrips) {
  FormulaRef a = f.prop("req");
  FormulaRef b = f.prop("ack");
  FormulaRef prop = f.always(f.implies(a, f.eventually(b, 10)));
  // Disjuncts print in canonical (creation-id) order: F[10] ack was interned
  // before !req.
  EXPECT_EQ(prop->to_string(), "G (F[10] ack || !req)");
  EXPECT_EQ(f.until(a, b)->to_string(), "req U ack");
  EXPECT_EQ(f.next(a, 3)->to_string(), "X[3] req");
}

// --- Progression -----------------------------------------------------------

PropValuation val(std::initializer_list<std::pair<int, bool>> assignments) {
  std::vector<std::pair<int, bool>> v(assignments);
  return [v](int index) {
    for (const auto& [idx, value] : v) {
      if (idx == index) return value;
    }
    return false;
  };
}

TEST_F(FormulaTest, ProgressProposition) {
  FormulaRef a = f.prop("a");  // index 0
  EXPECT_EQ(f.progress(a, val({{0, true}})), f.constant(true));
  EXPECT_EQ(f.progress(a, val({{0, false}})), f.constant(false));
}

TEST_F(FormulaTest, ProgressNextPeelsOneStep) {
  FormulaRef a = f.prop("a");
  FormulaRef x2 = f.next(a, 2);
  FormulaRef after1 = f.progress(x2, val({}));
  EXPECT_EQ(after1, f.next(a, 1));
  FormulaRef after2 = f.progress(after1, val({}));
  EXPECT_EQ(after2, a);
}

TEST_F(FormulaTest, ProgressBoundedEventuallyCountsDown) {
  FormulaRef a = f.prop("a");  // index 0
  FormulaRef g = f.eventually(a, 2);
  // a false: F[2] a -> F[1] a -> F[0] a == a -> false.
  FormulaRef s1 = f.progress(g, val({{0, false}}));
  EXPECT_EQ(s1, f.eventually(a, 1));
  FormulaRef s2 = f.progress(s1, val({{0, false}}));
  EXPECT_EQ(s2, a);
  FormulaRef s3 = f.progress(s2, val({{0, false}}));
  EXPECT_EQ(s3, f.constant(false));
  // a true at any point: validated immediately.
  EXPECT_EQ(f.progress(g, val({{0, true}})), f.constant(true));
}

TEST_F(FormulaTest, ProgressBoundedAlwaysCountsDown) {
  FormulaRef a = f.prop("a");
  FormulaRef g = f.always(a, 2);
  FormulaRef s1 = f.progress(g, val({{0, true}}));
  EXPECT_EQ(s1, f.always(a, 1));
  FormulaRef s2 = f.progress(s1, val({{0, true}}));
  EXPECT_EQ(s2, a);
  FormulaRef s3 = f.progress(s2, val({{0, true}}));
  EXPECT_EQ(s3, f.constant(true));
  EXPECT_EQ(f.progress(g, val({{0, false}})), f.constant(false));
}

TEST_F(FormulaTest, ProgressUnboundedAlwaysStaysPending) {
  FormulaRef a = f.prop("a");
  FormulaRef g = f.always(a);
  EXPECT_EQ(f.progress(g, val({{0, true}})), g);
  EXPECT_EQ(f.progress(g, val({{0, false}})), f.constant(false));
}

TEST_F(FormulaTest, ProgressUntil) {
  FormulaRef a = f.prop("a");  // 0
  FormulaRef b = f.prop("b");  // 1
  FormulaRef u = f.until(a, b);
  // b true: satisfied.
  EXPECT_EQ(f.progress(u, val({{1, true}})), f.constant(true));
  // a true, b false: still waiting.
  EXPECT_EQ(f.progress(u, val({{0, true}})), u);
  // both false: violated.
  EXPECT_EQ(f.progress(u, val({})), f.constant(false));
}

TEST_F(FormulaTest, ProgressBoundedUntilExpires) {
  FormulaRef a = f.prop("a");
  FormulaRef b = f.prop("b");
  FormulaRef u = f.until(a, b, 1);
  FormulaRef s1 = f.progress(u, val({{0, true}}));
  EXPECT_EQ(s1, b);  // U[0] collapses to b
  EXPECT_EQ(f.progress(s1, val({{0, true}})), f.constant(false));
}

TEST_F(FormulaTest, HoldsOnEmptySemantics) {
  FormulaRef a = f.prop("a");
  EXPECT_TRUE(f.holds_on_empty(f.constant(true)));
  EXPECT_FALSE(f.holds_on_empty(f.constant(false)));
  EXPECT_FALSE(f.holds_on_empty(a));
  EXPECT_FALSE(f.holds_on_empty(f.eventually(a)));
  EXPECT_TRUE(f.holds_on_empty(f.always(a)));
  EXPECT_FALSE(f.holds_on_empty(f.until(a, f.prop("b"))));
  EXPECT_TRUE(f.holds_on_empty(f.release(a, f.prop("b"))));
  EXPECT_TRUE(f.holds_on_empty(f.not_(f.eventually(a))));
}

TEST_F(FormulaTest, CollectPropNames) {
  // Intern the propositions explicitly first: prop indices follow interning
  // order, and C++ argument evaluation order is unspecified.
  FormulaRef req = f.prop("req");
  FormulaRef ack = f.prop("ack");
  FormulaRef err = f.prop("err");
  FormulaRef prop = f.always(f.implies(req, f.eventually(f.or_(ack, err), 5)));
  const auto names = f.collect_prop_names(prop);
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "req");
  EXPECT_EQ(names[1], "ack");
  EXPECT_EQ(names[2], "err");
}

TEST_F(FormulaTest, WeakUntilHoldsForever) {
  FormulaRef a = f.prop("a");  // 0
  FormulaRef b = f.prop("b");  // 1
  FormulaRef w = f.weak_until(a, b);
  // a true forever without b: stays pending (never violated).
  FormulaRef cur = w;
  for (int i = 0; i < 10; ++i) {
    cur = f.progress(cur, val({{0, true}}));
    EXPECT_FALSE(cur->is_constant());
  }
  // b releases the obligation.
  EXPECT_EQ(f.progress(cur, val({{1, true}})), f.constant(true));
  // neither a nor b: violated.
  EXPECT_EQ(f.progress(w, val({})), f.constant(false));
}

}  // namespace
}  // namespace esv::temporal

// Unit tests for the campaign checkpoint journal (docs/JOURNAL.md): the CRC,
// the config digest, writer/recover round trips, and — the part that earns
// the "crash-safe" name — recovery from every corruption shape a torn write
// can leave behind: truncated tail, flipped CRC byte, empty file, garbage.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "campaign/campaign.hpp"
#include "journal/journal.hpp"

namespace esv::journal {
namespace {

const char* kProgram = R"(
int led;
int cycles;

void main(void) {
  led = 0;
  while (cycles < 50) {
    int enable = __in(enable);
    if (enable == 1) { led = 1; } else { led = 0; }
    cycles = cycles + 1;
  }
}
)";

const char* kSpec = R"(
input enable 0 1

prop on  = led == 1
prop off = led == 0

check legal: G (on || off)
)";

campaign::CampaignConfig small_config(std::uint64_t lo = 1,
                                      std::uint64_t hi = 8) {
  campaign::CampaignConfig config;
  config.program_source = kProgram;
  config.spec_text = kSpec;
  config.seed_lo = lo;
  config.seed_hi = hi;
  config.collect_metrics = true;
  return config;
}

std::string temp_path(const char* stem) {
  return testing::TempDir() + "esv_journal_" + stem + "_" +
         std::to_string(::getpid()) + ".bin";
}

/// A SeedResult with every field populated, so round trips exercise the full
/// serialization (witness text with newlines, metrics, fault data, ...).
campaign::SeedResult rich_result(std::uint64_t seed) {
  campaign::SeedResult result;
  result.seed = seed;
  campaign::PropertyOutcome outcome;
  outcome.verdict = temporal::Verdict::kViolated;
  outcome.decided_at_step = 41 + seed;
  outcome.fault_class = sctc::FaultClass::kViolatedUnderFault;
  result.properties.push_back(outcome);
  result.steps = 100 + seed;
  result.statements = 200 + seed;
  result.draws = 50 + seed;
  result.finished = seed % 2 == 0;
  result.error = seed % 3 == 0 ? "assertion \"x\" failed\nat line 7" : "";
  result.error_kind = result.error.empty() ? "" : "sut";
  result.attempts = 2;
  result.witness = "step | on\n  41 |  1\n";
  result.prop_true_counts = {seed, 2 * seed};
  result.injected_faults = 3;
  result.fault_log = "step 5: bitflip led bit 0\n";
  result.fault_plan_digest = "00deadbeef00cafe";
  result.metrics.counters["esw.statements"] = 200 + seed;
  result.trace_jsonl = "{\"event\":\"seed_start\",\"seed\":" +
                       std::to_string(seed) + "}\n";
  result.wall_ms = 1.25;
  return result;
}

void expect_equal_results(const campaign::SeedResult& a,
                          const campaign::SeedResult& b) {
  EXPECT_EQ(a.seed, b.seed);
  ASSERT_EQ(a.properties.size(), b.properties.size());
  for (std::size_t i = 0; i < a.properties.size(); ++i) {
    EXPECT_EQ(a.properties[i].verdict, b.properties[i].verdict);
    EXPECT_EQ(a.properties[i].decided_at_step, b.properties[i].decided_at_step);
    EXPECT_EQ(a.properties[i].fault_class, b.properties[i].fault_class);
  }
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.statements, b.statements);
  EXPECT_EQ(a.draws, b.draws);
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.error_kind, b.error_kind);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.witness, b.witness);
  EXPECT_EQ(a.prop_true_counts, b.prop_true_counts);
  EXPECT_EQ(a.injected_faults, b.injected_faults);
  EXPECT_EQ(a.fault_log, b.fault_log);
  EXPECT_EQ(a.fault_plan_digest, b.fault_plan_digest);
  EXPECT_EQ(a.metrics.counters, b.metrics.counters);
  EXPECT_EQ(a.trace_jsonl, b.trace_jsonl);
  EXPECT_DOUBLE_EQ(a.wall_ms, b.wall_ms);
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

TEST(JournalTest, Crc32MatchesKnownAnswer) {
  // The IEEE 802.3 check value: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
}

TEST(JournalTest, ConfigDigestIsStableAndCoversResultFields) {
  const campaign::CampaignConfig base = small_config();
  EXPECT_EQ(config_digest(base), config_digest(base));
  EXPECT_EQ(config_digest(base).size(), 16u);

  // Every field that can change a result byte must change the digest.
  campaign::CampaignConfig changed = base;
  changed.spec_text += "\n";
  EXPECT_NE(config_digest(base), config_digest(changed));
  changed = base;
  changed.seed_hi += 1;
  EXPECT_NE(config_digest(base), config_digest(changed));
  changed = base;
  changed.max_steps += 1;
  EXPECT_NE(config_digest(base), config_digest(changed));
  changed = base;
  changed.fault_plan_text = "bitflip led window 1..2 prob 1/2\n";
  EXPECT_NE(config_digest(base), config_digest(changed));
  changed = base;
  changed.collect_metrics = !base.collect_metrics;
  EXPECT_NE(config_digest(base), config_digest(changed));
  changed = base;
  changed.seed_mem_limit_mb = 64;
  EXPECT_NE(config_digest(base), config_digest(changed));

  // Deployment shape never affects results, so it must not affect the
  // digest: a journal written under --jobs resumes under --workers.
  changed = base;
  changed.jobs = 8;
  changed.workers = 2;
  changed.worker_binary = "/elsewhere/esv-worker";
  EXPECT_EQ(config_digest(base), config_digest(changed));
}

TEST(JournalTest, WriterRecoverRoundTripsEveryField) {
  const std::string path = temp_path("roundtrip");
  const campaign::CampaignConfig config = small_config(3, 9);
  {
    JournalWriter writer(path, config, SyncPolicy::kRecord);
    for (std::uint64_t seed = 3; seed <= 6; ++seed) {
      writer.append(rich_result(seed));
    }
    writer.close();
  }
  const RecoveredJournal recovered = recover(path);
  EXPECT_TRUE(recovered.header_valid);
  EXPECT_EQ(recovered.config_digest, config_digest(config));
  EXPECT_EQ(recovered.seed_lo, 3u);
  EXPECT_EQ(recovered.seed_hi, 9u);
  EXPECT_FALSE(recovered.tail_dropped);
  ASSERT_EQ(recovered.results.size(), 4u);
  for (std::uint64_t seed = 3; seed <= 6; ++seed) {
    expect_equal_results(recovered.results[seed - 3], rich_result(seed));
  }
  std::remove(path.c_str());
}

TEST(JournalTest, MissingAndEmptyFilesRecoverToNothing) {
  const RecoveredJournal missing = recover("/nonexistent/journal.bin");
  EXPECT_FALSE(missing.header_valid);
  EXPECT_EQ(missing.valid_bytes, 0u);
  EXPECT_TRUE(missing.results.empty());

  const std::string path = temp_path("empty");
  write_bytes(path, "");
  const RecoveredJournal empty = recover(path);
  EXPECT_FALSE(empty.header_valid);
  EXPECT_EQ(empty.valid_bytes, 0u);
  EXPECT_FALSE(empty.tail_dropped);  // nothing was there to drop
  std::remove(path.c_str());
}

TEST(JournalTest, TruncatedTailRecordIsDroppedNotFatal) {
  const std::string path = temp_path("truncated");
  const campaign::CampaignConfig config = small_config();
  {
    JournalWriter writer(path, config, SyncPolicy::kNone);
    writer.append(rich_result(1));
    writer.append(rich_result(2));
    writer.close();
  }
  const std::string full = read_bytes(path);
  const RecoveredJournal whole = recover(path);
  ASSERT_EQ(whole.results.size(), 2u);

  // Chop bytes off the tail: every cut length must recover the longest
  // valid record prefix, never throw, and report the cut as a drop.
  for (std::size_t cut = 1; cut < 40; ++cut) {
    write_bytes(path, full.substr(0, full.size() - cut));
    const RecoveredJournal recovered = recover(path);
    EXPECT_TRUE(recovered.header_valid);
    EXPECT_EQ(recovered.results.size(), 1u);
    EXPECT_TRUE(recovered.tail_dropped);
    EXPECT_LT(recovered.valid_bytes, full.size());
  }
  std::remove(path.c_str());
}

TEST(JournalTest, FlippedCrcByteDropsTheRecordAndTheRest) {
  const std::string path = temp_path("crcflip");
  const campaign::CampaignConfig config = small_config();
  {
    JournalWriter writer(path, config, SyncPolicy::kNone);
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      writer.append(rich_result(seed));
    }
    writer.close();
  }
  std::string bytes = read_bytes(path);
  const RecoveredJournal whole = recover(path);
  ASSERT_EQ(whole.results.size(), 3u);

  // Flip one payload byte of the *second* seed record. Recovery keeps the
  // header and seed 1, drops seed 2 and (by the prefix rule) seed 3.
  const std::uint64_t keep = whole.valid_bytes;  // whole file
  std::string dump = bytes;
  // Find the second seed record's start: walk the first two records.
  auto record_size = [&](std::size_t at) {
    const unsigned char* b =
        reinterpret_cast<const unsigned char*>(bytes.data() + at);
    const std::uint32_t length = static_cast<std::uint32_t>(b[0]) |
                                 static_cast<std::uint32_t>(b[1]) << 8 |
                                 static_cast<std::uint32_t>(b[2]) << 16 |
                                 static_cast<std::uint32_t>(b[3]) << 24;
    return static_cast<std::size_t>(8 + length + 1);
  };
  std::size_t second_seed = record_size(0);              // header
  second_seed += record_size(second_seed);               // seed 1
  dump[second_seed + 8 + 10] ^= 0x01;                    // payload byte
  write_bytes(path, dump);

  const RecoveredJournal recovered = recover(path);
  EXPECT_TRUE(recovered.header_valid);
  ASSERT_EQ(recovered.results.size(), 1u);
  EXPECT_EQ(recovered.results[0].seed, 1u);
  EXPECT_TRUE(recovered.tail_dropped);
  EXPECT_LT(recovered.valid_bytes, keep);
  std::remove(path.c_str());
}

TEST(JournalTest, GarbageFileRecoversToNothing) {
  const std::string path = temp_path("garbage");
  write_bytes(path, "this is not a journal at all, not even close........");
  const RecoveredJournal recovered = recover(path);
  EXPECT_FALSE(recovered.header_valid);
  EXPECT_EQ(recovered.valid_bytes, 0u);
  EXPECT_TRUE(recovered.tail_dropped);
  std::remove(path.c_str());
}

TEST(JournalTest, DuplicateSeedRecordsKeepTheFirst) {
  const std::string path = temp_path("dup");
  const campaign::CampaignConfig config = small_config();
  {
    JournalWriter writer(path, config, SyncPolicy::kNone);
    campaign::SeedResult first = rich_result(4);
    first.steps = 111;
    writer.append(first);
    campaign::SeedResult second = rich_result(4);
    second.steps = 222;
    writer.append(second);
    writer.close();
  }
  const RecoveredJournal recovered = recover(path);
  ASSERT_EQ(recovered.results.size(), 1u);
  EXPECT_EQ(recovered.results[0].steps, 111u);
  std::remove(path.c_str());
}

TEST(JournalTest, ResumeWriterTruncatesTheTornTailAndAppends) {
  const std::string path = temp_path("resume");
  const campaign::CampaignConfig config = small_config();
  {
    JournalWriter writer(path, config, SyncPolicy::kNone);
    writer.append(rich_result(1));
    writer.append(rich_result(2));
    writer.close();
  }
  // Tear the tail record in half, as a crash mid-write would.
  std::string bytes = read_bytes(path);
  write_bytes(path, bytes.substr(0, bytes.size() - 20));

  const RecoveredJournal first = recover(path);
  ASSERT_EQ(first.results.size(), 1u);
  {
    JournalWriter writer(path, config, SyncPolicy::kRecord, first.valid_bytes);
    writer.append(rich_result(2));
    writer.append(rich_result(3));
    writer.close();
  }
  const RecoveredJournal second = recover(path);
  EXPECT_TRUE(second.header_valid);
  EXPECT_FALSE(second.tail_dropped);
  ASSERT_EQ(second.results.size(), 3u);
  EXPECT_EQ(second.results[0].seed, 1u);
  EXPECT_EQ(second.results[1].seed, 2u);
  EXPECT_EQ(second.results[2].seed, 3u);
  std::remove(path.c_str());
}

TEST(JournalTest, InProcessResumeReproducesTheUninterruptedReport) {
  const std::string path = temp_path("equivalence");
  campaign::CampaignConfig config = small_config(1, 10);
  config.jobs = 4;

  // Reference: an uninterrupted run (no journal at all).
  const campaign::CampaignReport reference = campaign::run(config);

  // Interrupted run: journal every result, then keep only a prefix of the
  // journal, as if the orchestrator died after a handful of seeds.
  {
    campaign::CampaignConfig journaled = config;
    JournalWriter writer(path, config, SyncPolicy::kNone);
    journaled.on_result = [&](const campaign::SeedResult& result) {
      writer.append(result);
    };
    campaign::run(journaled);
    writer.close();
  }
  RecoveredJournal recovered = recover(path);
  ASSERT_EQ(recovered.results.size(), 10u);
  recovered.results.resize(4);  // pretend seeds after the 4th were lost

  campaign::CampaignConfig resumed = config;
  resumed.resume_results = recovered.results;
  std::uint64_t journaled_on_resume = 0;
  resumed.on_result = [&](const campaign::SeedResult&) {
    ++journaled_on_resume;
  };
  const campaign::CampaignReport report = campaign::run(resumed);

  // Only the 6 missing seeds were recomputed (and re-journaled), and every
  // deterministic rendering is byte-identical to the uninterrupted run.
  EXPECT_EQ(journaled_on_resume, 6u);
  EXPECT_EQ(report.verdict_table(), reference.verdict_table());
  EXPECT_EQ(report.summary(), reference.summary());
  EXPECT_EQ(report.to_json(/*include_timing=*/false),
            reference.to_json(/*include_timing=*/false));
  EXPECT_EQ(report.metrics.to_json(/*include_timing=*/false),
            reference.metrics.to_json(/*include_timing=*/false));
  std::remove(path.c_str());
}

TEST(JournalTest, BatchSyncPolicyCountsRecords) {
  const std::string path = temp_path("batch");
  const campaign::CampaignConfig config = small_config();
  JournalWriter writer(path, config, SyncPolicy::kBatch);
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    writer.append(rich_result(seed));
  }
  // 1 header + 40 seeds; every record is on disk regardless of fsync policy
  // once written (fsync only hardens against power loss, not process kill).
  EXPECT_EQ(writer.records_written(), 41u);
  writer.close();
  const RecoveredJournal recovered = recover(path);
  EXPECT_EQ(recovered.results.size(), 40u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace esv::journal

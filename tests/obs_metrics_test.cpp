// Metrics registry unit tests: counter/histogram semantics, deterministic
// snapshot rendering, commutative merge, and exactness under concurrent
// writers (the check-fast tier runs this, and the ESV_TSAN build makes the
// concurrency test a real data-race detector).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace esv::obs {
namespace {

TEST(ObsMetricsTest, CounterStartsAtZeroAndAccumulates) {
  MetricsRegistry registry;
  Counter& c = registry.counter("a");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name -> same counter.
  EXPECT_EQ(&registry.counter("a"), &c);
}

TEST(ObsMetricsTest, HistogramBucketsByBitWidth) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("h");
  // bit_width: 0->0, 1->1, 2..3->2, 4..7->3, 8..15->4
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 7ull, 8ull}) h.record(v);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 21u);

  const MetricsSnapshot snap = registry.snapshot();
  const HistogramData& data = snap.histograms.at("h");
  EXPECT_EQ(data.min, 0u);
  EXPECT_EQ(data.max, 8u);
  ASSERT_EQ(data.buckets.size(), 5u);  // trailing zeros trimmed
  EXPECT_EQ(data.buckets[0], 1u);      // 0
  EXPECT_EQ(data.buckets[1], 1u);      // 1
  EXPECT_EQ(data.buckets[2], 2u);      // 2, 3
  EXPECT_EQ(data.buckets[3], 1u);      // 7
  EXPECT_EQ(data.buckets[4], 1u);      // 8
}

TEST(ObsMetricsTest, EmptyHistogramSnapshotsWithZeroMin) {
  MetricsRegistry registry;
  registry.histogram("empty");
  const MetricsSnapshot snap = registry.snapshot();
  const HistogramData& data = snap.histograms.at("empty");
  EXPECT_EQ(data.count, 0u);
  EXPECT_EQ(data.min, 0u);
  EXPECT_EQ(data.max, 0u);
  EXPECT_TRUE(data.buckets.empty());
}

TEST(ObsMetricsTest, SnapshotJsonIsSortedAndIntegerOnly) {
  MetricsRegistry registry;
  registry.counter("zebra").add(1);
  registry.counter("alpha").add(2);
  registry.histogram("steps").record(5);
  const std::string json = registry.snapshot().to_json();
  // Name order is lexicographic regardless of creation order.
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zebra\""));
  EXPECT_NE(json.find("\"alpha\": 2"), std::string::npos) << json;
  EXPECT_NE(
      json.find("\"steps\": {\"count\": 1, \"sum\": 5, \"min\": 5, "
                "\"max\": 5, \"buckets\": [0, 0, 0, 1]}"),
      std::string::npos)
      << json;
}

TEST(ObsMetricsTest, TimingHistogramsAreExcludedFromDeterministicRenders) {
  MetricsRegistry registry;
  registry.histogram("steps").record(3);
  registry.duration_histogram("wall_us").record(12345);
  const MetricsSnapshot snap = registry.snapshot();
  const std::string full = snap.to_json(/*include_timing=*/true);
  const std::string deterministic = snap.to_json(/*include_timing=*/false);
  EXPECT_NE(full.find("wall_us"), std::string::npos);
  EXPECT_EQ(deterministic.find("wall_us"), std::string::npos);
  EXPECT_NE(deterministic.find("steps"), std::string::npos);
}

TEST(ObsMetricsTest, MergeIsCommutative) {
  MetricsRegistry a;
  a.counter("shared").add(3);
  a.counter("only_a").add(1);
  a.histogram("h").record(2);
  MetricsRegistry b;
  b.counter("shared").add(4);
  b.counter("only_b").add(1);
  b.histogram("h").record(100);

  MetricsSnapshot ab = a.snapshot();
  ab.merge(b.snapshot());
  MetricsSnapshot ba = b.snapshot();
  ba.merge(a.snapshot());

  EXPECT_EQ(ab.to_json(), ba.to_json());
  EXPECT_EQ(ab.counters.at("shared"), 7u);
  EXPECT_EQ(ab.histograms.at("h").count, 2u);
  EXPECT_EQ(ab.histograms.at("h").min, 2u);
  EXPECT_EQ(ab.histograms.at("h").max, 100u);
}

TEST(ObsMetricsTest, MergeWithEmptyHistogramKeepsRealMin) {
  // An empty histogram snapshots min=0; merging it must not drag a real
  // minimum down to 0.
  MetricsRegistry a;
  a.histogram("h");  // created, never recorded
  MetricsRegistry b;
  b.histogram("h").record(9);

  MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.histograms.at("h").count, 1u);
  EXPECT_EQ(merged.histograms.at("h").min, 9u);
}

TEST(ObsMetricsTest, ConcurrentWritersLoseNoEvents) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;

  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&registry, t] {
      // Mix cached-pointer hot-path use with repeated name lookups so the
      // registry mutex and the atomic cells are both exercised.
      Counter& cached = registry.counter("events");
      Histogram& hist = registry.histogram("values");
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        cached.add();
        hist.record(i + static_cast<std::uint64_t>(t));
        if ((i & 1023u) == 0) registry.counter("lookups").add();
      }
    });
  }
  for (std::thread& t : pool) t.join();

  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("events"), kThreads * kPerThread);
  EXPECT_EQ(snap.histograms.at("values").count, kThreads * kPerThread);
  EXPECT_EQ(snap.counters.at("lookups"),
            kThreads * ((kPerThread + 1023) / 1024));
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : snap.histograms.at("values").buckets) {
    bucket_total += b;
  }
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

TEST(ObsMetricsTest, ReferencesStayValidAsTheRegistryGrows) {
  MetricsRegistry registry;
  Counter& first = registry.counter("first");
  first.add();
  for (int i = 0; i < 100; ++i) {
    registry.counter("filler_" + std::to_string(i)).add();
  }
  first.add();  // must still be the same live cell (std::map is node-stable)
  EXPECT_EQ(registry.counter("first").value(), 2u);
}

}  // namespace
}  // namespace esv::obs

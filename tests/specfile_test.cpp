// Tests for the ESV spec-file parser and its binding to programs.
#include <gtest/gtest.h>

#include "mem/address_space.hpp"
#include "minic/sema.hpp"
#include "spec/specfile.hpp"

namespace esv::spec {
namespace {

TEST(SpecParseTest, FullFile) {
  const SpecFile spec = parse_spec(R"(
# a comment
input op 0 6
input fault chance 1 100

prop ready = state == 0
prop big   = counter >= 0x10
check inv: G ready
check resp psl: always (ready -> eventually! big)
check plain fltl: F big
)");
  ASSERT_EQ(spec.inputs.size(), 2u);
  EXPECT_EQ(spec.inputs[0].name, "op");
  EXPECT_EQ(spec.inputs[0].hi, 6);
  EXPECT_TRUE(spec.inputs[1].is_chance);
  EXPECT_EQ(spec.inputs[1].lo, 1);
  EXPECT_EQ(spec.inputs[1].hi, 100);

  ASSERT_EQ(spec.propositions.size(), 2u);
  EXPECT_EQ(spec.propositions[0].name, "ready");
  EXPECT_EQ(spec.propositions[0].op, sctc::Compare::kEq);
  EXPECT_EQ(spec.propositions[1].op, sctc::Compare::kGe);
  EXPECT_EQ(spec.propositions[1].value_text, "0x10");

  ASSERT_EQ(spec.properties.size(), 3u);
  EXPECT_EQ(spec.properties[0].text, "G ready");
  EXPECT_EQ(spec.properties[1].dialect, temporal::Dialect::kPsl);
  EXPECT_EQ(spec.properties[2].dialect, temporal::Dialect::kFltl);
}

TEST(SpecParseTest, Errors) {
  EXPECT_THROW(parse_spec("bogus directive"), SpecError);
  EXPECT_THROW(parse_spec("prop x state == 0"), SpecError);  // missing '='
  EXPECT_THROW(parse_spec("prop x = state ~~ 0"), SpecError);
  EXPECT_THROW(parse_spec("input x 1"), SpecError);
  EXPECT_THROW(parse_spec("input x 1 z"), SpecError);
  EXPECT_THROW(parse_spec("check noprop G x"), SpecError);  // missing ':'
  EXPECT_THROW(parse_spec("check p:"), SpecError);          // empty property
  EXPECT_THROW(parse_spec("check p weird: G x"), SpecError);
  // Error messages carry the line number.
  try {
    parse_spec("\n\nbogus");
    FAIL();
  } catch (const SpecError& e) {
    EXPECT_EQ(e.line(), 3);
  }
}

// Every parse error must point at the offending 1-based source line, with
// the "spec line N:" prefix in what() — that string is what esv-verify
// prints, so both the accessor and the rendered message are pinned here.
TEST(SpecParseTest, ErrorsCarryExactLineLocation) {
  struct Case {
    const char* text;
    int line;
  };
  const Case cases[] = {
      {"bogus", 1},
      {"input enable 0 1\nwat is this", 2},
      // Blank lines and comments still count toward the line number.
      {"# header comment\n\ninput x 0 1\n\nprop broken ~ x == 0", 5},
      {"prop a = x == 0\nprop b = y ==\ncheck p: G a", 2},
      {"input x 0 1\nprop a = x == 0\ncheck p G a", 3},
  };
  for (const Case& c : cases) {
    try {
      parse_spec(c.text);
      FAIL() << "no error for: " << c.text;
    } catch (const SpecError& e) {
      EXPECT_EQ(e.line(), c.line) << c.text;
      const std::string expected = "spec line " + std::to_string(c.line) + ":";
      EXPECT_NE(std::string(e.what()).find(expected), std::string::npos)
          << e.what();
    }
  }
}

class ApplyTest : public ::testing::Test {
 protected:
  ApplyTest()
      : program(minic::compile(R"(
          enum { READY = 0, RUN = 7 };
          int state;
          int counter;
          void work(void) { counter = counter + 1; }
          void main(void) { state = RUN; work(); state = READY; }
        )")),
        memory(0x2000),
        checker(sim, "sctc") {}

  minic::Program program;
  mem::AddressSpace memory;
  sim::Simulation sim;
  sctc::TemporalChecker checker;
};

TEST_F(ApplyTest, ResolvesEnumsAndFunctions) {
  const SpecFile spec = parse_spec(R"(
prop running  = state == RUN
prop in_work  = fname == work
check sees_run: F running
check sees_work: F in_work
)");
  apply_spec(spec, program, memory, checker);
  EXPECT_EQ(checker.properties().size(), 2u);

  // Drive the memory by hand and confirm the propositions read it.
  memory.write_word(program.find_global("state")->address, 7);
  checker.step_all();
  EXPECT_EQ(checker.properties()[0].verdict(),
            temporal::Verdict::kValidated);
  memory.write_word(program.fname_address, program.fname_id("work"));
  checker.step_all();
  EXPECT_EQ(checker.properties()[1].verdict(),
            temporal::Verdict::kValidated);
}

TEST_F(ApplyTest, RejectsUnknownNames) {
  EXPECT_THROW(apply_spec(parse_spec("prop x = missing == 0"), program,
                          memory, checker),
               SpecError);
  EXPECT_THROW(apply_spec(parse_spec("prop x = state == NO_SUCH_CONST"),
                          program, memory, checker),
               SpecError);
  EXPECT_THROW(apply_spec(parse_spec("prop x = fname == no_such_function"),
                          program, memory, checker),
               SpecError);
  // A malformed property reports the spec line, not just the parse error.
  try {
    apply_spec(parse_spec("prop ok = state == 0\ncheck bad: G (ok &&"),
               program, memory, checker);
    FAIL();
  } catch (const SpecError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

}  // namespace
}  // namespace esv::spec

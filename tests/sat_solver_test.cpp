// Tests for the CDCL SAT solver, including a brute-force differential sweep.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "formal/sat/solver.hpp"

namespace esv::formal::sat {
namespace {

TEST(SatTest, TrivialSat) {
  Solver s;
  const int a = s.new_var();
  s.add_clause({a});
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.value(a));
}

TEST(SatTest, TrivialUnsat) {
  Solver s;
  const int a = s.new_var();
  s.add_clause({a});
  s.add_clause({-a});
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatTest, EmptyClauseIsUnsat) {
  Solver s;
  s.new_var();
  s.add_clause({});
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatTest, TautologyClauseIgnored) {
  Solver s;
  const int a = s.new_var();
  s.add_clause({a, -a});
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SatTest, UnitPropagationChain) {
  Solver s;
  const int a = s.new_var();
  const int b = s.new_var();
  const int c = s.new_var();
  s.add_clause({a});
  s.add_clause({-a, b});
  s.add_clause({-b, c});
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.value(a));
  EXPECT_TRUE(s.value(b));
  EXPECT_TRUE(s.value(c));
}

TEST(SatTest, RequiresConflictAnalysis) {
  // (a|b) (a|-b) (-a|c) (-a|-c) is unsat.
  Solver s;
  const int a = s.new_var();
  const int b = s.new_var();
  const int c = s.new_var();
  s.add_clause({a, b});
  s.add_clause({a, -b});
  s.add_clause({-a, c});
  s.add_clause({-a, -c});
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatTest, PigeonholeUnsat) {
  // 5 pigeons, 4 holes.
  const int pigeons = 5;
  const int holes = 4;
  Solver s;
  std::vector<std::vector<int>> at(pigeons, std::vector<int>(holes));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) at[p][h] = s.new_var();
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(at[p][h]);
    s.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.add_clause({-at[p1][h], -at[p2][h]});
      }
    }
  }
  EXPECT_EQ(s.solve(), Result::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0u);
}

TEST(SatTest, GraphColoringSat) {
  // 3-color a 5-cycle (possible with 3 colors).
  const int n = 5;
  const int k = 3;
  Solver s;
  std::vector<std::vector<int>> color(n, std::vector<int>(k));
  for (int v = 0; v < n; ++v) {
    for (int c = 0; c < k; ++c) color[v][c] = s.new_var();
    s.add_clause({color[v][0], color[v][1], color[v][2]});
  }
  for (int v = 0; v < n; ++v) {
    const int w = (v + 1) % n;
    for (int c = 0; c < k; ++c) s.add_clause({-color[v][c], -color[w][c]});
  }
  ASSERT_EQ(s.solve(), Result::kSat);
  // Verify the model is a proper coloring.
  for (int v = 0; v < n; ++v) {
    const int w = (v + 1) % n;
    for (int c = 0; c < k; ++c) {
      EXPECT_FALSE(s.value(color[v][c]) && s.value(color[w][c]));
    }
  }
}

TEST(SatTest, ConflictLimitReturnsUnknown) {
  // A hard instance with a conflict budget of 1.
  const int pigeons = 8;
  const int holes = 7;
  Solver s;
  std::vector<std::vector<int>> at(pigeons, std::vector<int>(holes));
  for (auto& row : at) {
    for (auto& v : row) v = s.new_var();
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(at[p][h]);
    s.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.add_clause({-at[p1][h], -at[p2][h]});
      }
    }
  }
  Limits limits;
  limits.max_conflicts = 1;
  EXPECT_EQ(s.solve(limits), Result::kUnknown);
}

// Differential: random 3-CNF instances vs brute force.
class RandomCnfTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomCnfTest, MatchesBruteForce) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 77771);
  const int vars = 8;
  const int clauses = 3 + static_cast<int>(rng.next_below(40));

  std::vector<std::vector<Lit>> formula;
  for (int i = 0; i < clauses; ++i) {
    std::vector<Lit> clause;
    for (int j = 0; j < 3; ++j) {
      const int v = 1 + static_cast<int>(rng.next_below(vars));
      clause.push_back(rng.next_chance(1, 2) ? v : -v);
    }
    formula.push_back(clause);
  }

  // Brute force.
  bool brute_sat = false;
  for (std::uint32_t assignment = 0; assignment < (1u << vars); ++assignment) {
    bool all = true;
    for (const auto& clause : formula) {
      bool any = false;
      for (const Lit l : clause) {
        const int v = l > 0 ? l : -l;
        const bool val = (assignment >> (v - 1)) & 1u;
        if ((l > 0) == val) {
          any = true;
          break;
        }
      }
      if (!any) {
        all = false;
        break;
      }
    }
    if (all) {
      brute_sat = true;
      break;
    }
  }

  Solver s;
  for (int v = 0; v < vars; ++v) s.new_var();
  for (const auto& clause : formula) s.add_clause(clause);
  const Result got = s.solve();
  EXPECT_EQ(got, brute_sat ? Result::kSat : Result::kUnsat)
      << "seed " << GetParam();
  if (got == Result::kSat) {
    // The model must satisfy the formula.
    for (const auto& clause : formula) {
      bool any = false;
      for (const Lit l : clause) {
        if (s.lit_value(l)) {
          any = true;
          break;
        }
      }
      EXPECT_TRUE(any);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCnfTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace esv::formal::sat
